#pragma once

// Minimal work-queue thread pool.
//
// gridsub parallelizes embarrassingly parallel work: Monte Carlo
// replications, per-dataset table rows, and the (t0, t∞) surface sweep of
// the delayed-resubmission model. A shared pool avoids re-spawning threads
// for every bench row. The pool is exception-safe: tasks propagate
// exceptions through their futures.

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/thread_annotations.hpp"

namespace gridsub::par {

/// Fixed-size thread pool with a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `n_threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t n_threads = 0);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      core::MutexLock lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool::submit on stopped pool");
      }
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Process-wide shared pool (lazily constructed, hardware concurrency).
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  core::Mutex mutex_;
  core::CondVar cv_;
  std::deque<std::function<void()>> queue_ GRIDSUB_GUARDED_BY(mutex_);
  bool stopping_ GRIDSUB_GUARDED_BY(mutex_) = false;
};

}  // namespace gridsub::par
