#pragma once

// Data-parallel loops over index ranges.
//
// parallel_for partitions [begin, end) into contiguous blocks, one per
// worker, which matches the access pattern of gridsub's workloads (each
// index is an independent MC replication, dataset, or grid row). For
// reductions, the range is cut into fixed-grain blocks whose partials are
// combined in block order, so floating-point results are bit-identical
// regardless of thread count or scheduling.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace gridsub::par {

/// Executes body(i) for every i in [begin, end), in parallel blocks.
/// Exceptions thrown by any block are rethrown (first one wins).
void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& body,
                  ThreadPool* pool = nullptr);

/// Block-wise variant: body(block_begin, block_end) per worker block.
/// Useful when per-thread state (e.g. an RNG) must be set up once per block.
void parallel_for_blocked(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& body,
    ThreadPool* pool = nullptr);

/// Parallel reduction: maps every index through `map`, folds with `combine`
/// starting from `init`.
///
/// The range is cut into fixed-size blocks of `grain` indices — independent
/// of the pool's thread count — and partials are folded in block order, so
/// floating-point results are bit-identical for any number of threads.
template <typename T>
T parallel_reduce(std::int64_t begin, std::int64_t end, T init,
                  const std::function<T(std::int64_t)>& map,
                  const std::function<T(T, T)>& combine,
                  ThreadPool* pool = nullptr, std::int64_t grain = 2048) {
  if (begin >= end) return init;
  const std::int64_t n = end - begin;
  const std::int64_t n_blocks = (n + grain - 1) / grain;
  std::vector<T> partials(static_cast<std::size_t>(n_blocks), init);
  parallel_for_blocked(
      0, n_blocks,
      [&](std::int64_t blk_lo, std::int64_t blk_hi) {
        for (std::int64_t b = blk_lo; b < blk_hi; ++b) {
          const std::int64_t lo = begin + b * grain;
          const std::int64_t hi = std::min(end, lo + grain);
          T acc = map(lo);
          for (std::int64_t i = lo + 1; i < hi; ++i) {
            acc = combine(std::move(acc), map(i));
          }
          partials[static_cast<std::size_t>(b)] = std::move(acc);
        }
      },
      pool);
  T result = std::move(init);
  for (auto& partial : partials) {
    result = combine(std::move(result), std::move(partial));
  }
  return result;
}

}  // namespace gridsub::par
