#include "parallel/parallel_for.hpp"

#include <algorithm>
#include <exception>

namespace gridsub::par {

void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& body,
                  ThreadPool* pool) {
  parallel_for_blocked(
      begin, end,
      [&body](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) body(i);
      },
      pool);
}

void parallel_for_blocked(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& body,
    ThreadPool* pool) {
  if (begin >= end) return;
  ThreadPool& p = pool ? *pool : ThreadPool::shared();
  const auto n = static_cast<std::size_t>(end - begin);
  const std::size_t n_blocks = std::min<std::size_t>(p.thread_count(), n);
  if (n_blocks <= 1) {
    body(begin, end);
    return;
  }
  const std::size_t chunk = (n + n_blocks - 1) / n_blocks;
  std::vector<std::future<void>> futures;
  futures.reserve(n_blocks);
  for (std::size_t b = 0; b < n_blocks; ++b) {
    const std::int64_t lo = begin + static_cast<std::int64_t>(b * chunk);
    const std::int64_t hi =
        std::min<std::int64_t>(end, lo + static_cast<std::int64_t>(chunk));
    if (lo >= hi) break;
    futures.push_back(p.submit([lo, hi, &body]() { body(lo, hi); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace gridsub::par
