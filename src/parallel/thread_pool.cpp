#include "parallel/thread_pool.hpp"

#include <algorithm>

namespace gridsub::par {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    core::MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      core::MutexLock lock(mutex_);
      cv_.wait(mutex_, [this]() GRIDSUB_REQUIRES(mutex_) {
        return stopping_ || !queue_.empty();
      });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace gridsub::par
