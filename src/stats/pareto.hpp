#pragma once

// Pareto type II (Lomax) distribution — a pure power-law tail anchored at
// zero. Mixed with a log-normal bulk it reproduces the "heavy-tailed with
// occasional extreme queueing delay" shape reported for EGEE latencies.

#include "stats/distribution.hpp"

namespace gridsub::stats {

/// Lomax(alpha, lambda): survival (1 + x/lambda)^(-alpha), alpha,lambda > 0.
class ParetoLomax final : public Distribution {
 public:
  ParetoLomax(double alpha, double lambda);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  /// Mean is finite only for alpha > 1 (throws std::domain_error otherwise).
  [[nodiscard]] double mean() const override;
  /// Variance is finite only for alpha > 2 (throws otherwise).
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Distribution> clone() const override;

  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] double lambda() const { return lambda_; }

 private:
  double alpha_;
  double lambda_;
};

}  // namespace gridsub::stats
