#include "stats/pareto.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace gridsub::stats {

ParetoLomax::ParetoLomax(double alpha, double lambda)
    : alpha_(alpha), lambda_(lambda) {
  if (!(alpha > 0.0) || !(lambda > 0.0)) {
    throw std::invalid_argument("ParetoLomax: alpha and lambda must be > 0");
  }
}

double ParetoLomax::pdf(double x) const {
  if (x < 0.0) return 0.0;
  return (alpha_ / lambda_) * std::pow(1.0 + x / lambda_, -alpha_ - 1.0);
}

double ParetoLomax::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return 1.0 - std::pow(1.0 + x / lambda_, -alpha_);
}

double ParetoLomax::quantile(double p) const {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return support_upper();
  return lambda_ * (std::pow(1.0 - p, -1.0 / alpha_) - 1.0);
}

double ParetoLomax::mean() const {
  if (alpha_ <= 1.0) {
    throw std::domain_error("ParetoLomax::mean: infinite for alpha <= 1");
  }
  return lambda_ / (alpha_ - 1.0);
}

double ParetoLomax::variance() const {
  if (alpha_ <= 2.0) {
    throw std::domain_error("ParetoLomax::variance: infinite for alpha <= 2");
  }
  return lambda_ * lambda_ * alpha_ /
         ((alpha_ - 1.0) * (alpha_ - 1.0) * (alpha_ - 2.0));
}

double ParetoLomax::sample(Rng& rng) const {
  return lambda_ * (std::pow(rng.uniform01(), -1.0 / alpha_) - 1.0);
}

std::string ParetoLomax::name() const {
  std::ostringstream os;
  os << "ParetoLomax(alpha=" << alpha_ << ",lambda=" << lambda_ << ")";
  return os.str();
}

std::unique_ptr<Distribution> ParetoLomax::clone() const {
  return std::make_unique<ParetoLomax>(*this);
}

}  // namespace gridsub::stats
