#include "stats/gof.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "numerics/kahan.hpp"

namespace gridsub::stats {

double anderson_darling(std::span<const double> xs,
                        const Distribution& dist) {
  if (xs.empty()) {
    throw std::invalid_argument("anderson_darling: empty sample");
  }
  std::vector<double> u(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) u[i] = dist.cdf(xs[i]);
  std::sort(u.begin(), u.end());
  const double n = static_cast<double>(u.size());
  // Clamp away from 0/1 so the logs stay finite for samples at the edge of
  // the support (e.g. a latency exactly at a shifted distribution's floor).
  constexpr double kEdge = 1e-12;
  numerics::KahanAccumulator acc;
  for (std::size_t i = 0; i < u.size(); ++i) {
    const double ui = std::clamp(u[i], kEdge, 1.0 - kEdge);
    const double uj =
        std::clamp(u[u.size() - 1 - i], kEdge, 1.0 - kEdge);
    const double w = 2.0 * static_cast<double>(i) + 1.0;
    acc.add(w * (std::log(ui) + std::log1p(-uj)));
  }
  return -n - acc.value() / n;
}

double chi_square_gof(std::span<const double> xs, const Distribution& dist,
                      std::size_t bins) {
  if (xs.empty()) {
    throw std::invalid_argument("chi_square_gof: empty sample");
  }
  if (bins < 2) throw std::invalid_argument("chi_square_gof: bins < 2");
  const double n = static_cast<double>(xs.size());
  const double expected = n / static_cast<double>(bins);
  std::vector<std::size_t> counts(bins, 0);
  for (const double x : xs) {
    const double u = dist.cdf(x);
    auto cell = static_cast<std::size_t>(u * static_cast<double>(bins));
    cell = std::min(cell, bins - 1);
    ++counts[cell];
  }
  double stat = 0.0;
  for (const std::size_t c : counts) {
    const double d = static_cast<double>(c) - expected;
    stat += d * d / expected;
  }
  return stat;
}

double dkw_epsilon(std::size_t n, double alpha) {
  if (n == 0) throw std::invalid_argument("dkw_epsilon: n == 0");
  if (!(alpha > 0.0) || !(alpha < 1.0)) {
    throw std::invalid_argument("dkw_epsilon: alpha outside (0, 1)");
  }
  return std::sqrt(std::log(2.0 / alpha) / (2.0 * static_cast<double>(n)));
}

}  // namespace gridsub::stats
