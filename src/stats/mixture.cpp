#include "stats/mixture.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace gridsub::stats {

Mixture::Mixture(std::vector<Component> components)
    : components_(std::move(components)) {
  if (components_.empty()) {
    throw std::invalid_argument("Mixture: needs >= 1 component");
  }
  double total = 0.0;
  for (const auto& c : components_) {
    if (!(c.weight > 0.0)) {
      throw std::invalid_argument("Mixture: weights must be > 0");
    }
    if (!c.dist) throw std::invalid_argument("Mixture: null component");
    total += c.weight;
  }
  for (auto& c : components_) c.weight /= total;
}

Mixture::Mixture(const Mixture& other) {
  components_.reserve(other.components_.size());
  for (const auto& c : other.components_) {
    components_.push_back({c.weight, c.dist->clone()});
  }
}

Mixture& Mixture::operator=(const Mixture& other) {
  if (this == &other) return *this;
  Mixture tmp(other);
  components_ = std::move(tmp.components_);
  return *this;
}

double Mixture::pdf(double x) const {
  double v = 0.0;
  for (const auto& c : components_) v += c.weight * c.dist->pdf(x);
  return v;
}

double Mixture::cdf(double x) const {
  double v = 0.0;
  for (const auto& c : components_) v += c.weight * c.dist->cdf(x);
  return v;
}

double Mixture::mean() const {
  double v = 0.0;
  for (const auto& c : components_) v += c.weight * c.dist->mean();
  return v;
}

double Mixture::variance() const {
  // var = E[X^2] - mean^2 with E[X^2] = sum w_i (var_i + mean_i^2).
  double ex2 = 0.0;
  for (const auto& c : components_) {
    const double m = c.dist->mean();
    ex2 += c.weight * (c.dist->variance() + m * m);
  }
  const double m = mean();
  return ex2 - m * m;
}

double Mixture::sample(Rng& rng) const {
  double u = rng.uniform01();
  for (const auto& c : components_) {
    if (u < c.weight) return c.dist->sample(rng);
    u -= c.weight;
  }
  return components_.back().dist->sample(rng);
}

double Mixture::support_lower() const {
  double lo = components_.front().dist->support_lower();
  for (const auto& c : components_) {
    lo = std::min(lo, c.dist->support_lower());
  }
  return lo;
}

double Mixture::support_upper() const {
  double hi = components_.front().dist->support_upper();
  for (const auto& c : components_) {
    hi = std::max(hi, c.dist->support_upper());
  }
  return hi;
}

std::string Mixture::name() const {
  std::ostringstream os;
  os << "Mixture(";
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (i) os << " + ";
    os << components_[i].weight << "*" << components_[i].dist->name();
  }
  os << ")";
  return os.str();
}

std::unique_ptr<Distribution> Mixture::clone() const {
  return std::make_unique<Mixture>(*this);
}

}  // namespace gridsub::stats
