#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numerics/kahan.hpp"

namespace gridsub::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("mean: empty sample");
  numerics::KahanAccumulator acc;
  for (double x : xs) acc.add(x);
  return acc.value() / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) throw std::invalid_argument("variance: need >= 2");
  const double m = mean(xs);
  numerics::KahanAccumulator acc;
  for (double x : xs) acc.add((x - m) * (x - m));
  return acc.value() / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double quantile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty sample");
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("quantile: bad p");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double h = p * static_cast<double>(sorted.size() - 1);
  const auto i = static_cast<std::size_t>(h);
  if (i + 1 >= sorted.size()) return sorted.back();
  const double frac = h - static_cast<double>(i);
  return sorted[i] + frac * (sorted[i + 1] - sorted[i]);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double min(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("min: empty sample");
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("max: empty sample");
  return *std::max_element(xs.begin(), xs.end());
}

double skewness(std::span<const double> xs) {
  if (xs.size() < 3) throw std::invalid_argument("skewness: need >= 3");
  const double m = mean(xs);
  numerics::KahanAccumulator m2, m3;
  for (double x : xs) {
    const double d = x - m;
    m2.add(d * d);
    m3.add(d * d * d);
  }
  const double n = static_cast<double>(xs.size());
  const double s2 = m2.value() / n;
  if (!(s2 > 0.0)) throw std::invalid_argument("skewness: zero variance");
  return (m3.value() / n) / std::pow(s2, 1.5);
}

Summary summarize(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("summarize: empty sample");
  Summary s;
  s.count = xs.size();
  s.mean = mean(xs);
  s.stddev = xs.size() >= 2 ? stddev(xs) : 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.q25 = quantile(sorted, 0.25);
  s.median = quantile(sorted, 0.5);
  s.q75 = quantile(sorted, 0.75);
  return s;
}

BootstrapCI bootstrap_ci(
    std::span<const double> xs,
    const std::function<double(std::span<const double>)>& statistic,
    std::size_t n_resamples, double level, Rng& rng) {
  if (xs.empty()) throw std::invalid_argument("bootstrap_ci: empty sample");
  if (!(level > 0.0 && level < 1.0)) {
    throw std::invalid_argument("bootstrap_ci: level outside (0,1)");
  }
  BootstrapCI ci;
  ci.estimate = statistic(xs);
  std::vector<double> resample(xs.size());
  std::vector<double> stats;
  stats.reserve(n_resamples);
  for (std::size_t b = 0; b < n_resamples; ++b) {
    for (auto& v : resample) {
      v = xs[static_cast<std::size_t>(rng.uniform_int(xs.size()))];
    }
    stats.push_back(statistic(resample));
  }
  const double alpha = 1.0 - level;
  ci.lo = quantile(stats, 0.5 * alpha);
  ci.hi = quantile(stats, 1.0 - 0.5 * alpha);
  return ci;
}

}  // namespace gridsub::stats
