#include "stats/exponential.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace gridsub::stats {

Exponential::Exponential(double rate) : rate_(rate) {
  if (!(rate > 0.0)) throw std::invalid_argument("Exponential: rate <= 0");
}

double Exponential::pdf(double x) const {
  if (x < 0.0) return 0.0;
  return rate_ * std::exp(-rate_ * x);
}

double Exponential::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return -std::expm1(-rate_ * x);
}

double Exponential::quantile(double p) const {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return support_upper();
  return -std::log1p(-p) / rate_;
}

double Exponential::mean() const { return 1.0 / rate_; }

double Exponential::variance() const { return 1.0 / (rate_ * rate_); }

double Exponential::sample(Rng& rng) const { return rng.exponential(rate_); }

std::string Exponential::name() const {
  std::ostringstream os;
  os << "Exponential(rate=" << rate_ << ")";
  return os.str();
}

std::unique_ptr<Distribution> Exponential::clone() const {
  return std::make_unique<Exponential>(*this);
}

}  // namespace gridsub::stats
