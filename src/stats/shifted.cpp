#include "stats/shifted.hpp"

#include <sstream>
#include <stdexcept>

namespace gridsub::stats {

Shifted::Shifted(DistributionPtr inner, double shift)
    : inner_(std::move(inner)), shift_(shift) {
  if (!inner_) throw std::invalid_argument("Shifted: null inner");
}

Shifted::Shifted(const Shifted& other)
    : inner_(other.inner_->clone()), shift_(other.shift_) {}

Shifted& Shifted::operator=(const Shifted& other) {
  if (this == &other) return *this;
  inner_ = other.inner_->clone();
  shift_ = other.shift_;
  return *this;
}

double Shifted::pdf(double x) const { return inner_->pdf(x - shift_); }

double Shifted::cdf(double x) const { return inner_->cdf(x - shift_); }

double Shifted::quantile(double p) const {
  return shift_ + inner_->quantile(p);
}

double Shifted::mean() const { return shift_ + inner_->mean(); }

double Shifted::variance() const { return inner_->variance(); }

double Shifted::sample(Rng& rng) const { return shift_ + inner_->sample(rng); }

double Shifted::support_lower() const {
  return shift_ + inner_->support_lower();
}

double Shifted::support_upper() const {
  return shift_ + inner_->support_upper();
}

std::string Shifted::name() const {
  std::ostringstream os;
  os << "Shifted(" << inner_->name() << ",+" << shift_ << ")";
  return os.str();
}

std::unique_ptr<Distribution> Shifted::clone() const {
  return std::make_unique<Shifted>(*this);
}

}  // namespace gridsub::stats
