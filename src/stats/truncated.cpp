#include "stats/truncated.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "numerics/integration.hpp"

namespace gridsub::stats {

Truncated::Truncated(DistributionPtr inner, double lo, double hi)
    : inner_(std::move(inner)), lo_(lo), hi_(hi) {
  if (!inner_) throw std::invalid_argument("Truncated: null inner");
  if (!(hi > lo)) throw std::invalid_argument("Truncated: requires hi > lo");
  cdf_lo_ = inner_->cdf(lo_);
  mass_ = inner_->cdf(hi_) - cdf_lo_;
  if (!(mass_ > 0.0)) {
    throw std::invalid_argument("Truncated: zero mass on [lo, hi]");
  }
}

Truncated::Truncated(const Truncated& other)
    : inner_(other.inner_->clone()),
      lo_(other.lo_),
      hi_(other.hi_),
      cdf_lo_(other.cdf_lo_),
      mass_(other.mass_) {}

Truncated& Truncated::operator=(const Truncated& other) {
  if (this == &other) return *this;
  inner_ = other.inner_->clone();
  lo_ = other.lo_;
  hi_ = other.hi_;
  cdf_lo_ = other.cdf_lo_;
  mass_ = other.mass_;
  return *this;
}

double Truncated::pdf(double x) const {
  if (x < lo_ || x > hi_) return 0.0;
  return inner_->pdf(x) / mass_;
}

double Truncated::cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (inner_->cdf(x) - cdf_lo_) / mass_;
}

double Truncated::quantile(double p) const {
  if (p <= 0.0) return lo_;
  if (p >= 1.0) return hi_;
  const double q = inner_->quantile(cdf_lo_ + p * mass_);
  return std::clamp(q, lo_, hi_);
}

double Truncated::mean() const {
  const auto f = [this](double x) { return x * pdf(x); };
  return numerics::adaptive_simpson(f, lo_, hi_, 1e-8);
}

double Truncated::variance() const {
  const double m = mean();
  const auto f = [this, m](double x) {
    const double d = x - m;
    return d * d * pdf(x);
  };
  return numerics::adaptive_simpson(f, lo_, hi_, 1e-8);
}

double Truncated::sample(Rng& rng) const {
  // Inverse transform through the inner quantile restricted to the band.
  return quantile(rng.uniform01());
}

std::string Truncated::name() const {
  std::ostringstream os;
  os << "Truncated(" << inner_->name() << ",[" << lo_ << "," << hi_ << "])";
  return os.str();
}

std::unique_ptr<Distribution> Truncated::clone() const {
  return std::make_unique<Truncated>(*this);
}

}  // namespace gridsub::stats
