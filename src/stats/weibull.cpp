#include "stats/weibull.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace gridsub::stats {

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
  if (!(shape > 0.0) || !(scale > 0.0)) {
    throw std::invalid_argument("Weibull: shape and scale must be > 0");
  }
}

double Weibull::pdf(double x) const {
  if (x < 0.0) return 0.0;
  if (x == 0.0) {
    if (shape_ < 1.0) return 0.0;  // density diverges; report 0 boundary
    if (shape_ == 1.0) return 1.0 / scale_;
    return 0.0;
  }
  const double z = x / scale_;
  return (shape_ / scale_) * std::pow(z, shape_ - 1.0) *
         std::exp(-std::pow(z, shape_));
}

double Weibull::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return -std::expm1(-std::pow(x / scale_, shape_));
}

double Weibull::quantile(double p) const {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return support_upper();
  return scale_ * std::pow(-std::log1p(-p), 1.0 / shape_);
}

double Weibull::mean() const {
  return scale_ * std::exp(std::lgamma(1.0 + 1.0 / shape_));
}

double Weibull::variance() const {
  const double g1 = std::exp(std::lgamma(1.0 + 1.0 / shape_));
  const double g2 = std::exp(std::lgamma(1.0 + 2.0 / shape_));
  return scale_ * scale_ * (g2 - g1 * g1);
}

double Weibull::sample(Rng& rng) const {
  return scale_ * std::pow(-std::log(rng.uniform01()), 1.0 / shape_);
}

std::string Weibull::name() const {
  std::ostringstream os;
  os << "Weibull(k=" << shape_ << ",lambda=" << scale_ << ")";
  return os.str();
}

std::unique_ptr<Distribution> Weibull::clone() const {
  return std::make_unique<Weibull>(*this);
}

}  // namespace gridsub::stats
