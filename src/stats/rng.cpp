#include "stats/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace gridsub::stats {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // Avoid the all-zero state (probability ~0 but cheap to guard).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  for (;;) {
    const double u =
        static_cast<double>(next_u64() >> 11) * 0x1.0p-53;  // [0,1)
    if (u > 0.0) return u;
  }
}

double Rng::uniform(double a, double b) { return a + (b - a) * uniform01(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("Rng::uniform_int: n == 0");
  const std::uint64_t threshold = (0ull - n) % n;  // 2^64 mod n
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double sd) {
  if (sd < 0.0) throw std::invalid_argument("Rng::normal: sd < 0");
  return mean + sd * normal();
}

double Rng::exponential(double lambda) {
  if (!(lambda > 0.0)) {
    throw std::invalid_argument("Rng::exponential: lambda <= 0");
  }
  return -std::log(uniform01()) / lambda;
}

bool Rng::bernoulli(double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("Rng::bernoulli: p outside [0,1]");
  }
  return uniform01() < p;
}

Rng Rng::split() {
  std::uint64_t sm = next_u64() ^ 0xA5A5A5A5A5A5A5A5ull;
  return Rng(splitmix64(sm));
}

}  // namespace gridsub::stats
