#include "stats/uniform.hpp"

#include <sstream>
#include <stdexcept>

namespace gridsub::stats {

UniformDist::UniformDist(double a, double b) : a_(a), b_(b) {
  if (!(b > a)) throw std::invalid_argument("UniformDist: requires b > a");
}

double UniformDist::pdf(double x) const {
  return (x >= a_ && x <= b_) ? 1.0 / (b_ - a_) : 0.0;
}

double UniformDist::cdf(double x) const {
  if (x <= a_) return 0.0;
  if (x >= b_) return 1.0;
  return (x - a_) / (b_ - a_);
}

double UniformDist::quantile(double p) const {
  if (p <= 0.0) return a_;
  if (p >= 1.0) return b_;
  return a_ + p * (b_ - a_);
}

double UniformDist::mean() const { return 0.5 * (a_ + b_); }

double UniformDist::variance() const {
  const double w = b_ - a_;
  return w * w / 12.0;
}

double UniformDist::sample(Rng& rng) const { return rng.uniform(a_, b_); }

std::string UniformDist::name() const {
  std::ostringstream os;
  os << "Uniform(" << a_ << "," << b_ << ")";
  return os.str();
}

std::unique_ptr<Distribution> UniformDist::clone() const {
  return std::make_unique<UniformDist>(*this);
}

}  // namespace gridsub::stats
