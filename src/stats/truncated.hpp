#pragma once

// Truncation wrapper: X conditioned on lo <= X <= hi.
//
// The paper's probe campaign cancels jobs at a 10,000 s timeout; the
// observable latency distribution is therefore the bulk law conditioned to
// [0, 10^4]. This wrapper expresses that conditioning exactly (cdf, pdf,
// quantile, inverse-transform sampling) and computes moments numerically.

#include "stats/distribution.hpp"

namespace gridsub::stats {

/// Truncated(inner, lo, hi): inner conditioned on [lo, hi]. Requires
/// lo < hi and P(lo <= X <= hi) > 0.
class Truncated final : public Distribution {
 public:
  Truncated(DistributionPtr inner, double lo, double hi);

  Truncated(const Truncated& other);
  Truncated& operator=(const Truncated& other);
  Truncated(Truncated&&) noexcept = default;
  Truncated& operator=(Truncated&&) noexcept = default;

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  /// Computed by adaptive quadrature over [lo, hi].
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double support_lower() const override { return lo_; }
  [[nodiscard]] double support_upper() const override { return hi_; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Distribution> clone() const override;

  [[nodiscard]] const Distribution& inner() const { return *inner_; }
  /// Probability mass the inner law places on [lo, hi].
  [[nodiscard]] double inner_mass() const { return mass_; }

 private:
  DistributionPtr inner_;
  double lo_;
  double hi_;
  double cdf_lo_;
  double mass_;
};

}  // namespace gridsub::stats
