#pragma once

// Uniform distribution on [a, b] — used for jittered submission offsets in
// the simulator and as the simplest case in property tests.

#include "stats/distribution.hpp"

namespace gridsub::stats {

/// Uniform(a, b) with b > a.
class UniformDist final : public Distribution {
 public:
  UniformDist(double a, double b);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double support_lower() const override { return a_; }
  [[nodiscard]] double support_upper() const override { return b_; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Distribution> clone() const override;

 private:
  double a_;
  double b_;
};

}  // namespace gridsub::stats
