#pragma once

// Goodness-of-fit statistics beyond the KS distance.
//
// Used to judge parametric latency fits (gridsub-fit, the estimator
// ablation) and to size probe campaigns: the Anderson-Darling statistic
// weights the tails — exactly where grid latency models earn their keep —
// and the DKW inequality converts a campaign size into a uniform ECDF
// error band that core/uncertainty.hpp propagates to E_J bounds.

#include <cstddef>
#include <span>

#include "stats/distribution.hpp"

namespace gridsub::stats {

/// Anderson-Darling A² of a sample against a fully-specified continuous
/// distribution. Tail-sensitive counterpart of ks_statistic(); larger
/// means worse fit (rule of thumb: > 2.5 rejects at ~5% for simple
/// hypotheses). Requires a non-empty sample within the distribution's
/// support.
double anderson_darling(std::span<const double> xs,
                        const Distribution& dist);

/// Pearson chi-square statistic with `bins` equal-probability cells under
/// `dist` (expected count n/bins each; requires n >= 5*bins for the usual
/// asymptotics). Returns the statistic; degrees of freedom are bins-1 when
/// no parameter was estimated from the sample.
double chi_square_gof(std::span<const double> xs, const Distribution& dist,
                      std::size_t bins);

/// Dvoretzky-Kiefer-Wolfowitz band half-width: with probability >= 1-alpha
/// the ECDF of n iid samples stays within eps of the true CDF uniformly,
///   eps = sqrt(ln(2/alpha) / (2 n)).
double dkw_epsilon(std::size_t n, double alpha);

}  // namespace gridsub::stats
