#pragma once

// Descriptive statistics and bootstrap resampling.
//
// Reproduces the quantities of the paper's Table 1: per-trace mean and
// standard deviation of latency below the outlier timeout, the censored
// lower-bound mean ("mean with 10^5"), and outlier ratios; the bootstrap is
// used by tests and benches to put confidence bands on MC estimates.

#include <functional>
#include <span>
#include <vector>

#include "stats/rng.hpp"

namespace gridsub::stats {

/// Arithmetic mean; requires non-empty input.
double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator); requires size >= 2.
double variance(std::span<const double> xs);

/// sqrt(variance).
double stddev(std::span<const double> xs);

/// Linear-interpolation sample quantile (R type-7). p in [0,1].
double quantile(std::span<const double> xs, double p);

/// Median (type-7 quantile at 0.5).
double median(std::span<const double> xs);

double min(std::span<const double> xs);
double max(std::span<const double> xs);

/// Standardized third moment; requires size >= 3 and non-zero variance.
double skewness(std::span<const double> xs);

/// Full five-number-plus summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
  double max = 0.0;
};

/// Computes the summary in one pass over a copy of the data.
Summary summarize(std::span<const double> xs);

/// Percentile bootstrap confidence interval for `statistic`.
struct BootstrapCI {
  double estimate = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};

/// `level` is the two-sided confidence level (e.g. 0.95).
BootstrapCI bootstrap_ci(
    std::span<const double> xs,
    const std::function<double(std::span<const double>)>& statistic,
    std::size_t n_resamples, double level, Rng& rng);

}  // namespace gridsub::stats
