#pragma once

// Finite mixture of distributions.
//
// The synthetic EGEE-like trace weeks use a log-normal bulk optionally mixed
// with a Lomax tail component: the mixture keeps the calibrated first two
// moments while letting the tail index be varied independently in ablations.

#include <vector>

#include "stats/distribution.hpp"

namespace gridsub::stats {

/// Weighted mixture; weights must be positive and are normalized to sum 1.
class Mixture final : public Distribution {
 public:
  struct Component {
    double weight;
    DistributionPtr dist;
  };

  /// Takes ownership of the component distributions. Requires >= 1
  /// component, all weights > 0.
  explicit Mixture(std::vector<Component> components);

  Mixture(const Mixture& other);
  Mixture& operator=(const Mixture& other);
  Mixture(Mixture&&) noexcept = default;
  Mixture& operator=(Mixture&&) noexcept = default;

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double support_lower() const override;
  [[nodiscard]] double support_upper() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Distribution> clone() const override;

  [[nodiscard]] std::size_t component_count() const {
    return components_.size();
  }
  [[nodiscard]] double weight(std::size_t i) const {
    return components_.at(i).weight;
  }
  [[nodiscard]] const Distribution& component(std::size_t i) const {
    return *components_.at(i).dist;
  }

 private:
  std::vector<Component> components_;
};

}  // namespace gridsub::stats
