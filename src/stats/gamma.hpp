#pragma once

// Gamma distribution — used for middleware service-time components in the
// discrete-event grid simulator (matchmaking, queue service) and as a third
// candidate family in the estimator ablation.

#include "stats/distribution.hpp"

namespace gridsub::stats {

/// Gamma(shape k, scale theta), both > 0.
class GammaDist final : public Distribution {
 public:
  GammaDist(double shape, double scale);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  /// Marsaglia-Tsang squeeze sampler (exact, no inverse transform).
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Distribution> clone() const override;

  [[nodiscard]] double shape() const { return shape_; }
  [[nodiscard]] double scale() const { return scale_; }

 private:
  double shape_;
  double scale_;
};

}  // namespace gridsub::stats
