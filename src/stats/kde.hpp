#pragma once

// Gaussian kernel density estimation.
//
// The delayed-resubmission expectation in the paper's form (eq. 5) needs a
// density f̃_R, which an ECDF does not provide; KDE supplies a smooth
// estimate. Evaluation is windowed over the sorted sample (kernels beyond
// 8 bandwidths contribute < 1e-14), so a full 10^4-point grid over a 10^4
// sample trace evaluates in milliseconds.

#include <span>
#include <vector>

namespace gridsub::stats {

/// Gaussian KDE over a fixed sample.
class KernelDensity {
 public:
  /// `bandwidth` <= 0 selects Silverman's rule of thumb
  /// (0.9 * min(sd, IQR/1.34) * n^(-1/5)). Requires non-empty sample.
  explicit KernelDensity(std::span<const double> sample,
                         double bandwidth = 0.0);

  /// Density estimate at x.
  [[nodiscard]] double pdf(double x) const;

  /// Smoothed CDF estimate at x (sum of kernel CDFs).
  [[nodiscard]] double cdf(double x) const;

  [[nodiscard]] double bandwidth() const { return bandwidth_; }
  [[nodiscard]] std::size_t size() const { return sorted_.size(); }

  /// Silverman's rule-of-thumb bandwidth for a sample.
  static double silverman_bandwidth(std::span<const double> sample);

 private:
  std::vector<double> sorted_;
  double bandwidth_;
};

}  // namespace gridsub::stats
