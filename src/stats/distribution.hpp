#pragma once

// Abstract interface for univariate continuous distributions.
//
// Latency models are built from these (a parametric bulk plus an outlier
// mass, see model/). Every distribution provides pdf/cdf/quantile, the
// first two moments, and exact sampling; numerically-defaulted methods
// (quantile via root bracketing, sampling via inverse transform) can be
// overridden with closed forms.

#include <memory>
#include <string>

#include "stats/rng.hpp"

namespace gridsub::stats {

/// Univariate continuous distribution.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Probability density at x.
  [[nodiscard]] virtual double pdf(double x) const = 0;

  /// Cumulative distribution function P(X <= x).
  [[nodiscard]] virtual double cdf(double x) const = 0;

  /// Inverse CDF for p in [0, 1]; default implementation brackets the root
  /// of cdf(x) - p numerically. p == 0 / 1 map to the support bounds.
  [[nodiscard]] virtual double quantile(double p) const;

  [[nodiscard]] virtual double mean() const = 0;
  [[nodiscard]] virtual double variance() const = 0;
  [[nodiscard]] double stddev() const;

  /// Draws one sample; default is inverse-transform via quantile().
  [[nodiscard]] virtual double sample(Rng& rng) const;

  /// Lower / upper bound of the support (used by the default quantile).
  [[nodiscard]] virtual double support_lower() const { return 0.0; }
  [[nodiscard]] virtual double support_upper() const;

  /// Human-readable name with parameters, e.g. "LogNormal(mu=6.1,sigma=0.9)".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Deep copy (distributions are immutable value-like objects).
  [[nodiscard]] virtual std::unique_ptr<Distribution> clone() const = 0;
};

using DistributionPtr = std::unique_ptr<Distribution>;

}  // namespace gridsub::stats
