#include "stats/empirical.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "stats/summary.hpp"

namespace gridsub::stats {

EmpiricalDistribution::EmpiricalDistribution(std::span<const double> sample)
    : sorted_(sample.begin(), sample.end()) {
  if (sorted_.empty()) {
    throw std::invalid_argument("EmpiricalDistribution: empty sample");
  }
  std::sort(sorted_.begin(), sorted_.end());
  mean_ = stats::mean(sorted_);
  variance_ = sorted_.size() >= 2 ? stats::variance(sorted_) : 0.0;
}

double EmpiricalDistribution::pdf(double x) const {
  // Local density estimate: mass 1/n spread over the gap between the
  // neighbouring order statistics around x.
  if (sorted_.size() < 2) return 0.0;
  if (x < sorted_.front() || x > sorted_.back()) return 0.0;
  const auto hi =
      std::upper_bound(sorted_.begin(), sorted_.end(), x);
  const auto lo = (hi == sorted_.begin()) ? hi : hi - 1;
  const auto next = (hi == sorted_.end()) ? hi - 1 : hi;
  const double gap = std::max(*next - *lo, 1e-12);
  return 1.0 / (static_cast<double>(sorted_.size()) * gap);
}

double EmpiricalDistribution::cdf(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalDistribution::quantile(double p) const {
  if (p < 0.0 || p > 1.0) {
    throw std::domain_error("EmpiricalDistribution::quantile: bad p");
  }
  if (sorted_.size() == 1) return sorted_[0];
  const double h = p * static_cast<double>(sorted_.size() - 1);
  const auto i = static_cast<std::size_t>(h);
  if (i + 1 >= sorted_.size()) return sorted_.back();
  const double frac = h - static_cast<double>(i);
  return sorted_[i] + frac * (sorted_[i + 1] - sorted_[i]);
}

double EmpiricalDistribution::mean() const { return mean_; }

double EmpiricalDistribution::variance() const { return variance_; }

double EmpiricalDistribution::sample(Rng& rng) const {
  return sorted_[static_cast<std::size_t>(rng.uniform_int(sorted_.size()))];
}

double EmpiricalDistribution::support_lower() const {
  return sorted_.front();
}

double EmpiricalDistribution::support_upper() const { return sorted_.back(); }

std::string EmpiricalDistribution::name() const {
  std::ostringstream os;
  os << "Empirical(n=" << sorted_.size() << ")";
  return os.str();
}

std::unique_ptr<Distribution> EmpiricalDistribution::clone() const {
  return std::make_unique<EmpiricalDistribution>(*this);
}

}  // namespace gridsub::stats
