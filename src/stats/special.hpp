#pragma once

// Special functions backing the parametric distributions: standard normal
// pdf/cdf/quantile and the regularized incomplete gamma function. These are
// standard numerics (Acklam's inverse-normal rational approximation refined
// with one Halley step; series/continued-fraction incomplete gamma).

namespace gridsub::stats {

/// Standard normal density.
double normal_pdf(double x);

/// Standard normal CDF, accurate in both tails (erfc based).
double normal_cdf(double x);

/// Inverse standard normal CDF for p in (0, 1). Accurate to ~1e-15 after
/// Halley refinement. Throws std::domain_error outside (0, 1).
double normal_quantile(double p);

/// Regularized lower incomplete gamma P(a, x), a > 0, x >= 0.
double gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double gamma_q(double a, double x);

}  // namespace gridsub::stats
