#pragma once

// Location-shift wrapper: Y = shift + X.
//
// Grid latencies have a hard floor (credential delegation, match-making,
// dispatch — a job can never start in zero seconds). Synthetic weeks model
// latency as shift + LogNormal, which also keeps the delayed-resubmission
// dynamics realistic: no job can start before the floor, so a copy
// submitted at t0 < floor never wins instantly.

#include "stats/distribution.hpp"

namespace gridsub::stats {

/// Shifted(inner, shift): Y = shift + X, X ~ inner.
class Shifted final : public Distribution {
 public:
  /// Takes ownership of `inner`. Requires inner != nullptr.
  Shifted(DistributionPtr inner, double shift);

  Shifted(const Shifted& other);
  Shifted& operator=(const Shifted& other);
  Shifted(Shifted&&) noexcept = default;
  Shifted& operator=(Shifted&&) noexcept = default;

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double support_lower() const override;
  [[nodiscard]] double support_upper() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Distribution> clone() const override;

  [[nodiscard]] double shift() const { return shift_; }
  [[nodiscard]] const Distribution& inner() const { return *inner_; }

 private:
  DistributionPtr inner_;
  double shift_;
};

}  // namespace gridsub::stats
