#pragma once

// Empirical distribution (ECDF) over a finite sample.
//
// This is the paper's estimator: F_R is estimated directly from probe-job
// latencies (its Figure 1). The ECDF is a right-continuous step function;
// quantiles use linear interpolation between order statistics, and sampling
// is bootstrap draw with replacement.

#include <span>
#include <vector>

#include "stats/distribution.hpp"

namespace gridsub::stats {

/// ECDF-backed Distribution. The sample is copied and sorted on
/// construction; requires a non-empty sample.
class EmpiricalDistribution final : public Distribution {
 public:
  explicit EmpiricalDistribution(std::span<const double> sample);

  /// Step-function density surrogate: histogram-style constant density on
  /// the gap around x (for plotting; prefer KernelDensity for smooth pdfs).
  [[nodiscard]] double pdf(double x) const override;

  /// ECDF: (# of samples <= x) / n.
  [[nodiscard]] double cdf(double x) const override;

  /// Type-7 interpolated quantile.
  [[nodiscard]] double quantile(double p) const override;

  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;

  /// Bootstrap draw: a uniformly random sample point.
  [[nodiscard]] double sample(Rng& rng) const override;

  [[nodiscard]] double support_lower() const override;
  [[nodiscard]] double support_upper() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Distribution> clone() const override;

  [[nodiscard]] std::size_t size() const { return sorted_.size(); }
  [[nodiscard]] std::span<const double> sorted_sample() const {
    return sorted_;
  }

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
  double variance_ = 0.0;
};

}  // namespace gridsub::stats
