#pragma once

// Weibull distribution — common alternative latency-bulk model in the grid
// workload literature (e.g. Christodoulopoulos et al. 2008); used by the
// estimator-ablation bench to test sensitivity to the fitted family.

#include "stats/distribution.hpp"

namespace gridsub::stats {

/// Weibull(shape k, scale lambda), both > 0.
class Weibull final : public Distribution {
 public:
  Weibull(double shape, double scale);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Distribution> clone() const override;

  [[nodiscard]] double shape() const { return shape_; }
  [[nodiscard]] double scale() const { return scale_; }

 private:
  double shape_;
  double scale_;
};

}  // namespace gridsub::stats
