#include "stats/kde.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numerics/kahan.hpp"
#include "stats/special.hpp"
#include "stats/summary.hpp"

namespace gridsub::stats {

double KernelDensity::silverman_bandwidth(std::span<const double> sample) {
  if (sample.size() < 2) return 1.0;
  const double sd = stddev(sample);
  const double iqr = quantile(sample, 0.75) - quantile(sample, 0.25);
  double scale = sd;
  if (iqr > 0.0) scale = std::min(scale, iqr / 1.34);
  if (!(scale > 0.0)) scale = std::max(sd, 1e-6);
  return 0.9 * scale *
         std::pow(static_cast<double>(sample.size()), -0.2);
}

KernelDensity::KernelDensity(std::span<const double> sample, double bandwidth)
    : sorted_(sample.begin(), sample.end()), bandwidth_(bandwidth) {
  if (sorted_.empty()) throw std::invalid_argument("KernelDensity: empty");
  std::sort(sorted_.begin(), sorted_.end());
  if (!(bandwidth_ > 0.0)) bandwidth_ = silverman_bandwidth(sorted_);
  if (!(bandwidth_ > 0.0)) bandwidth_ = 1.0;
}

double KernelDensity::pdf(double x) const {
  constexpr double kWindow = 8.0;  // kernels beyond 8h are negligible
  const double lo = x - kWindow * bandwidth_;
  const double hi = x + kWindow * bandwidth_;
  const auto first = std::lower_bound(sorted_.begin(), sorted_.end(), lo);
  const auto last = std::upper_bound(first, sorted_.end(), hi);
  numerics::KahanAccumulator acc;
  for (auto it = first; it != last; ++it) {
    acc.add(normal_pdf((x - *it) / bandwidth_));
  }
  return acc.value() /
         (static_cast<double>(sorted_.size()) * bandwidth_);
}

double KernelDensity::cdf(double x) const {
  constexpr double kWindow = 8.0;
  const double lo = x - kWindow * bandwidth_;
  const double hi = x + kWindow * bandwidth_;
  const auto first = std::lower_bound(sorted_.begin(), sorted_.end(), lo);
  const auto last = std::upper_bound(first, sorted_.end(), hi);
  // Samples entirely below the window contribute CDF ~ 1 each.
  numerics::KahanAccumulator acc(
      static_cast<double>(first - sorted_.begin()));
  for (auto it = first; it != last; ++it) {
    acc.add(normal_cdf((x - *it) / bandwidth_));
  }
  return acc.value() / static_cast<double>(sorted_.size());
}

}  // namespace gridsub::stats
