#pragma once

// Distribution fitting and goodness of fit.
//
// Two jobs in this repository:
//  1. Calibrating the synthetic EGEE-like trace weeks: given the paper's
//     Table 1 targets (conditional mean/sd of latency below the 10^4 s
//     outlier timeout), solve for shifted-log-normal parameters whose
//     *truncated* moments match (calibrate_truncated_lognormal).
//  2. Fitting parametric latency models to measured traces (MLE), as a
//     smoother alternative to the raw ECDF — compared in the estimator
//     ablation bench.

#include <span>

#include "stats/distribution.hpp"
#include "stats/lognormal.hpp"
#include "stats/weibull.hpp"

namespace gridsub::stats {

/// MLE for LogNormal: mu = mean(ln x), sigma^2 = ML variance of ln x.
/// Requires all samples > 0 and size >= 2.
LogNormal fit_lognormal_mle(std::span<const double> xs);

/// MLE for Weibull via Newton iteration on the shape profile equation.
/// Requires all samples > 0 and size >= 2.
Weibull fit_weibull_mle(std::span<const double> xs);

/// MLE rate for Exponential (1 / mean). Requires non-empty, positive mean.
double fit_exponential_rate_mle(std::span<const double> xs);

/// Log-likelihood of a sample under a distribution (sum of log pdf;
/// returns -inf if any point has zero density).
double log_likelihood(std::span<const double> xs, const Distribution& dist);

/// Akaike information criterion: 2k - 2 lnL.
double aic(double log_lik, int n_params);

/// Two-sided Kolmogorov-Smirnov statistic sup |F_n - F|.
double ks_statistic(std::span<const double> xs, const Distribution& dist);

/// Two-sample Kolmogorov-Smirnov statistic sup |F_a - F_b| between the
/// empirical CDFs of two samples (used for workload drift detection).
double ks_two_sample(std::span<const double> xs, std::span<const double> ys);

/// Result of the truncated-moment calibration.
struct TruncatedLogNormalFit {
  double mu = 0.0;
  double sigma = 0.0;
  /// Mass the fitted law leaves above the truncation point; jobs there are
  /// indistinguishable from faults in a probe campaign.
  double tail_mass = 0.0;
  bool converged = false;
};

/// Finds LogNormal(mu, sigma) such that E[X | X <= t_cut] == target_mean and
/// SD[X | X <= t_cut] == target_sd, using closed-form truncated moments and
/// nested Brent root solves (inner: mu given sigma matches the mean;
/// outer: sigma matches the sd). Requires 0 < target_sd, and
/// 0 < target_mean < t_cut.
TruncatedLogNormalFit calibrate_truncated_lognormal(double target_mean,
                                                    double target_sd,
                                                    double t_cut);

}  // namespace gridsub::stats
