#pragma once

// Log-normal distribution — the workhorse of grid latency modeling: EGEE
// latencies are heavy-tailed with coefficient of variation between ~0.7 and
// ~2.2 across the paper's trace weeks, which log-normal covers naturally.

#include "stats/distribution.hpp"

namespace gridsub::stats {

/// LogNormal(mu, sigma): ln X ~ N(mu, sigma^2).
class LogNormal final : public Distribution {
 public:
  /// Requires sigma > 0.
  LogNormal(double mu, double sigma);

  /// Constructs the log-normal whose (untruncated) mean and standard
  /// deviation match the arguments (both > 0).
  static LogNormal from_moments(double mean, double stddev);

  /// Mean-preserving construction from the untruncated mean and the log
  /// standard deviation: mu = log(mean) - sigma_log^2/2. Requires
  /// mean > 0 and sigma_log >= 0; sigma_log == 0 is floored to 1e-12,
  /// i.e. effectively deterministic runtimes. Shared by the workload
  /// generators so the derivation and degenerate-sigma policy live in one
  /// audited place.
  static LogNormal from_mean_and_sigma_log(double mean, double sigma_log);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Distribution> clone() const override;

  [[nodiscard]] double mu() const { return mu_; }
  [[nodiscard]] double sigma() const { return sigma_; }

  /// k-th raw moment conditional on X <= t (closed form); used by the
  /// truncated-moment calibration in stats/fit. Requires t > 0.
  [[nodiscard]] double truncated_raw_moment(int k, double t) const;

 private:
  double mu_;
  double sigma_;
};

}  // namespace gridsub::stats
