#include "stats/distribution.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "numerics/rootfind.hpp"

namespace gridsub::stats {

double Distribution::support_upper() const {
  return std::numeric_limits<double>::infinity();
}

double Distribution::stddev() const { return std::sqrt(variance()); }

double Distribution::quantile(double p) const {
  if (p < 0.0 || p > 1.0) {
    throw std::domain_error("Distribution::quantile: p outside [0,1]");
  }
  if (p == 0.0) return support_lower();
  if (p == 1.0) return support_upper();
  // Bracket around [mean - 4 sd, mean + 4 sd] clipped to the support, then
  // expand geometrically until the root is enclosed.
  const double m = mean();
  const double s = std::sqrt(std::max(variance(), 1e-12));
  double lo = std::max(support_lower(), m - 4.0 * s);
  double hi = std::min(support_upper(), m + 4.0 * s);
  if (!(hi > lo)) {
    lo = support_lower();
    hi = lo + std::max(1.0, std::abs(m));
  }
  const auto g = [this, p](double x) { return cdf(x) - p; };
  // Expand toward the support bounds until sign change.
  int guard = 0;
  while (g(lo) > 0.0 && lo > support_lower() && guard++ < 200) {
    const double width = hi - lo;
    lo = std::max(support_lower(), lo - std::max(width, 1.0));
  }
  guard = 0;
  while (g(hi) < 0.0 && guard++ < 200) {
    const double width = hi - lo;
    hi += std::max(width, 1.0);
    if (hi >= support_upper()) {
      hi = std::nextafter(support_upper(), lo);
      break;
    }
  }
  const auto root = numerics::brent_root(g, lo, hi, 1e-10);
  return root.x;
}

double Distribution::sample(Rng& rng) const {
  return quantile(rng.uniform01());
}

}  // namespace gridsub::stats
