#include "stats/gamma.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "stats/special.hpp"

namespace gridsub::stats {

GammaDist::GammaDist(double shape, double scale)
    : shape_(shape), scale_(scale) {
  if (!(shape > 0.0) || !(scale > 0.0)) {
    throw std::invalid_argument("GammaDist: shape and scale must be > 0");
  }
}

double GammaDist::pdf(double x) const {
  if (x < 0.0) return 0.0;
  if (x == 0.0) {
    if (shape_ < 1.0) return 0.0;  // boundary of a diverging density
    if (shape_ == 1.0) return 1.0 / scale_;
    return 0.0;
  }
  const double log_pdf = (shape_ - 1.0) * std::log(x) - x / scale_ -
                         std::lgamma(shape_) - shape_ * std::log(scale_);
  return std::exp(log_pdf);
}

double GammaDist::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return gamma_p(shape_, x / scale_);
}

double GammaDist::mean() const { return shape_ * scale_; }

double GammaDist::variance() const { return shape_ * scale_ * scale_; }

double GammaDist::sample(Rng& rng) const {
  // Marsaglia & Tsang (2000). For k < 1 use the boost
  // Gamma(k) = Gamma(k+1) * U^(1/k).
  double k = shape_;
  double boost = 1.0;
  if (k < 1.0) {
    boost = std::pow(rng.uniform01(), 1.0 / k);
    k += 1.0;
  }
  const double d = k - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = rng.normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.uniform01();
    if (u < 1.0 - 0.0331 * x * x * x * x) return boost * d * v * scale_;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return boost * d * v * scale_;
    }
  }
}

std::string GammaDist::name() const {
  std::ostringstream os;
  os << "Gamma(k=" << shape_ << ",theta=" << scale_ << ")";
  return os.str();
}

std::unique_ptr<Distribution> GammaDist::clone() const {
  return std::make_unique<GammaDist>(*this);
}

}  // namespace gridsub::stats
