#pragma once

// Exponential distribution — memoryless baseline. Under an exponential
// latency law the single-resubmission strategy is provably indifferent to
// the timeout (the paper's strategies only pay off on heavier tails), which
// makes it a sharp sanity check used throughout the test suite.

#include "stats/distribution.hpp"

namespace gridsub::stats {

/// Exponential(rate lambda > 0).
class Exponential final : public Distribution {
 public:
  explicit Exponential(double rate);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Distribution> clone() const override;

  [[nodiscard]] double rate() const { return rate_; }

 private:
  double rate_;
};

}  // namespace gridsub::stats
