#pragma once

// Deterministic random number generation.
//
// All stochastic components (synthetic trace generation, Monte Carlo
// strategy execution, the discrete-event grid simulator) draw from this
// engine so every table, figure and test in the repository is exactly
// reproducible from a seed. The generator is xoshiro256++ (Blackman/Vigna),
// seeded through SplitMix64; `split()` derives statistically independent
// streams for parallel workers.

#include <cstdint>

namespace gridsub::stats {

/// SplitMix64 step; used for seeding and stream derivation.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256++ engine with distribution helpers.
class Rng {
 public:
  /// Seeds the four-word state via SplitMix64 from `seed`.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in (0, 1) — never exactly 0 or 1.
  double uniform01();

  /// Uniform double in [a, b).
  double uniform(double a, double b);

  /// Uniform integer in [0, n); requires n > 0. Unbiased (rejection).
  std::uint64_t uniform_int(std::uint64_t n);

  /// Standard normal deviate (Marsaglia polar method, cached pair).
  double normal();

  /// Normal with given mean and standard deviation (sd >= 0).
  double normal(double mean, double sd);

  /// Exponential with rate lambda > 0.
  double exponential(double lambda);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Derives an independent stream (jump via SplitMix64 of current state).
  Rng split();

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace gridsub::stats
