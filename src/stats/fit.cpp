#include "stats/fit.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "numerics/kahan.hpp"
#include "numerics/rootfind.hpp"
#include "stats/summary.hpp"

namespace gridsub::stats {

LogNormal fit_lognormal_mle(std::span<const double> xs) {
  if (xs.size() < 2) throw std::invalid_argument("fit_lognormal: need >= 2");
  numerics::KahanAccumulator sum_log;
  for (double x : xs) {
    if (!(x > 0.0)) {
      throw std::invalid_argument("fit_lognormal: sample must be positive");
    }
    sum_log.add(std::log(x));
  }
  const double n = static_cast<double>(xs.size());
  const double mu = sum_log.value() / n;
  numerics::KahanAccumulator ss;
  for (double x : xs) {
    const double d = std::log(x) - mu;
    ss.add(d * d);
  }
  const double sigma = std::sqrt(std::max(ss.value() / n, 1e-12));
  return LogNormal(mu, sigma);
}

Weibull fit_weibull_mle(std::span<const double> xs) {
  if (xs.size() < 2) throw std::invalid_argument("fit_weibull: need >= 2");
  std::vector<double> logs;
  logs.reserve(xs.size());
  for (double x : xs) {
    if (!(x > 0.0)) {
      throw std::invalid_argument("fit_weibull: sample must be positive");
    }
    logs.push_back(std::log(x));
  }
  const double mean_log = mean(logs);
  // Profile equation g(k) = S_xlog(k)/S_x(k) - 1/k - mean_log = 0, where
  // S_x(k) = sum x^k and S_xlog(k) = sum x^k ln x. g is increasing in k.
  const auto g = [&](double k) {
    numerics::KahanAccumulator sx, sxl;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double xk = std::pow(xs[i], k);
      sx.add(xk);
      sxl.add(xk * logs[i]);
    }
    return sxl.value() / sx.value() - 1.0 / k - mean_log;
  };
  auto root = numerics::bracket_and_solve(g, 0.05, 5.0, 60, 1e-10);
  if (!root.converged) {
    throw std::runtime_error("fit_weibull: shape solve failed");
  }
  const double k = root.x;
  numerics::KahanAccumulator sx;
  for (double x : xs) sx.add(std::pow(x, k));
  const double lambda =
      std::pow(sx.value() / static_cast<double>(xs.size()), 1.0 / k);
  return Weibull(k, lambda);
}

double fit_exponential_rate_mle(std::span<const double> xs) {
  const double m = mean(xs);
  if (!(m > 0.0)) {
    throw std::invalid_argument("fit_exponential: non-positive mean");
  }
  return 1.0 / m;
}

double log_likelihood(std::span<const double> xs, const Distribution& dist) {
  numerics::KahanAccumulator acc;
  for (double x : xs) {
    const double p = dist.pdf(x);
    if (!(p > 0.0)) return -std::numeric_limits<double>::infinity();
    acc.add(std::log(p));
  }
  return acc.value();
}

double aic(double log_lik, int n_params) {
  return 2.0 * static_cast<double>(n_params) - 2.0 * log_lik;
}

double ks_statistic(std::span<const double> xs, const Distribution& dist) {
  if (xs.empty()) throw std::invalid_argument("ks_statistic: empty sample");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double f = dist.cdf(sorted[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max(d, std::max(std::abs(f - lo), std::abs(hi - f)));
  }
  return d;
}

double ks_two_sample(std::span<const double> xs, std::span<const double> ys) {
  if (xs.empty() || ys.empty()) {
    throw std::invalid_argument("ks_two_sample: empty sample");
  }
  std::vector<double> a(xs.begin(), xs.end());
  std::vector<double> b(ys.begin(), ys.end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  double d = 0.0;
  std::size_t i = 0, j = 0;
  // Sweep the merged order, comparing the two step ECDFs at every jump.
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    d = std::max(d, std::abs(static_cast<double>(i) / na -
                             static_cast<double>(j) / nb));
  }
  return d;
}

namespace {

// Conditional moments of LogNormal(mu, sigma) given X <= t.
double trunc_mean(double mu, double sigma, double t) {
  return LogNormal(mu, sigma).truncated_raw_moment(1, t);
}

double trunc_sd(double mu, double sigma, double t) {
  const LogNormal ln(mu, sigma);
  const double m1 = ln.truncated_raw_moment(1, t);
  const double m2 = ln.truncated_raw_moment(2, t);
  return std::sqrt(std::max(m2 - m1 * m1, 0.0));
}

// Solve mu such that the truncated mean equals target (monotone in mu).
double solve_mu(double sigma, double t, double target_mean) {
  const auto g = [&](double mu) {
    return trunc_mean(mu, sigma, t) - target_mean;
  };
  const double guess = std::log(target_mean) - 0.5 * sigma * sigma;
  auto root = numerics::bracket_and_solve(g, guess - 2.0, guess + 2.0, 80,
                                          1e-11);
  if (!root.converged) {
    throw std::runtime_error("calibrate_truncated_lognormal: mu solve failed");
  }
  return root.x;
}

}  // namespace

TruncatedLogNormalFit calibrate_truncated_lognormal(double target_mean,
                                                    double target_sd,
                                                    double t_cut) {
  if (!(target_mean > 0.0) || !(target_mean < t_cut)) {
    throw std::invalid_argument(
        "calibrate_truncated_lognormal: need 0 < mean < t_cut");
  }
  if (!(target_sd > 0.0)) {
    throw std::invalid_argument("calibrate_truncated_lognormal: sd <= 0");
  }
  // Outer solve on sigma: truncated sd grows monotonically with sigma once
  // mu is re-solved to hold the truncated mean fixed.
  const auto h = [&](double sigma) {
    const double mu = solve_mu(sigma, t_cut, target_mean);
    return trunc_sd(mu, sigma, t_cut) - target_sd;
  };
  TruncatedLogNormalFit fit;
  double lo = 0.05, hi = 3.0;
  double h_lo = h(lo), h_hi = h(hi);
  int guard = 0;
  while (h_lo * h_hi > 0.0 && guard++ < 20) {
    if (h_lo > 0.0) {
      lo *= 0.5;
      h_lo = h(lo);
    } else {
      hi *= 1.5;
      if (hi > 12.0) break;
      h_hi = h(hi);
    }
  }
  if (h_lo * h_hi > 0.0) {
    fit.converged = false;
    // Return the best-effort boundary solution.
    const double sigma = (std::abs(h_lo) < std::abs(h_hi)) ? lo : hi;
    fit.sigma = sigma;
    fit.mu = solve_mu(sigma, t_cut, target_mean);
    fit.tail_mass = 1.0 - LogNormal(fit.mu, fit.sigma).cdf(t_cut);
    return fit;
  }
  auto root = numerics::brent_root(h, lo, hi, 1e-10);
  fit.sigma = root.x;
  fit.mu = solve_mu(fit.sigma, t_cut, target_mean);
  fit.tail_mass = 1.0 - LogNormal(fit.mu, fit.sigma).cdf(t_cut);
  fit.converged = true;
  return fit;
}

}  // namespace gridsub::stats
