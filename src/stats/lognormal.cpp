#include "stats/lognormal.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "stats/special.hpp"

namespace gridsub::stats {

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  if (!(sigma > 0.0)) throw std::invalid_argument("LogNormal: sigma <= 0");
}

LogNormal LogNormal::from_moments(double mean, double stddev) {
  if (!(mean > 0.0) || !(stddev > 0.0)) {
    throw std::invalid_argument("LogNormal::from_moments: need mean,sd > 0");
  }
  const double cv2 = (stddev / mean) * (stddev / mean);
  const double sigma2 = std::log1p(cv2);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return LogNormal(mu, std::sqrt(sigma2));
}

LogNormal LogNormal::from_mean_and_sigma_log(double mean, double sigma_log) {
  if (!(mean > 0.0)) {
    throw std::invalid_argument(
        "LogNormal::from_mean_and_sigma_log: mean must be > 0");
  }
  if (!(sigma_log >= 0.0)) {
    throw std::invalid_argument(
        "LogNormal::from_mean_and_sigma_log: sigma_log must be >= 0");
  }
  const double sigma = sigma_log > 0.0 ? sigma_log : 1e-12;
  return LogNormal(std::log(mean) - 0.5 * sigma * sigma, sigma);
}

double LogNormal::pdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double z = (std::log(x) - mu_) / sigma_;
  return normal_pdf(z) / (x * sigma_);
}

double LogNormal::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return normal_cdf((std::log(x) - mu_) / sigma_);
}

double LogNormal::quantile(double p) const {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return support_upper();
  return std::exp(mu_ + sigma_ * normal_quantile(p));
}

double LogNormal::mean() const { return std::exp(mu_ + 0.5 * sigma_ * sigma_); }

double LogNormal::variance() const {
  const double s2 = sigma_ * sigma_;
  return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_ + s2);
}

double LogNormal::sample(Rng& rng) const {
  return std::exp(mu_ + sigma_ * rng.normal());
}

std::string LogNormal::name() const {
  std::ostringstream os;
  os << "LogNormal(mu=" << mu_ << ",sigma=" << sigma_ << ")";
  return os.str();
}

std::unique_ptr<Distribution> LogNormal::clone() const {
  return std::make_unique<LogNormal>(*this);
}

double LogNormal::truncated_raw_moment(int k, double t) const {
  if (!(t > 0.0)) {
    throw std::invalid_argument("truncated_raw_moment: t must be > 0");
  }
  const double kd = static_cast<double>(k);
  const double lt = std::log(t);
  const double denom = normal_cdf((lt - mu_) / sigma_);
  if (denom <= 0.0) {
    throw std::domain_error("truncated_raw_moment: P(X<=t) == 0");
  }
  const double numer =
      std::exp(kd * mu_ + 0.5 * kd * kd * sigma_ * sigma_) *
      normal_cdf((lt - mu_ - kd * sigma_ * sigma_) / sigma_);
  return numer / denom;
}

}  // namespace gridsub::stats
