#pragma once

// Online strategy estimation (paper §7.2 "practical implementation").
//
// The paper tunes (t0, t∞) a posteriori on full weekly traces and shows
// (Table 6) that parameters estimated on the *previous* week transfer with
// at most a few percent of Δcost penalty. This component closes the loop
// the conclusion asks for — "systematic implementation of our methods in
// real applications": it consumes probe observations as they complete,
// maintains a sliding window, periodically re-estimates the latency model
// and the recommended strategy, and flags workload drift (two-sample KS
// between the window halves) so a client can distrust stale parameters.

#include <cstddef>
#include <deque>
#include <memory>
#include <optional>

#include "core/planner.hpp"
#include "model/discretized.hpp"

namespace gridsub::online {

struct OnlinePlannerConfig {
  std::size_t window = 600;          ///< observations kept (FIFO)
  std::size_t min_observations = 100;  ///< before the first fit
  std::size_t refit_interval = 50;   ///< observations between re-fits
  double model_step = 2.0;           ///< discretization of the fitted model
  double timeout = 10000.0;          ///< probe outlier threshold (paper)
  core::PlannerOptions planner;      ///< objective for recommendations
  /// Two-sample KS distance between window halves above which the
  /// workload is considered drifting. The two-sample KS noise floor at
  /// half-window n is ~1.36*sqrt(2/n) (0.14 for n = 200), so 0.15 stays
  /// quiet within a stationary week and trips on regime changes (~0.9 on
  /// the synthetic week pairs; see the online tests).
  double drift_threshold = 0.15;
};

class OnlinePlanner {
 public:
  explicit OnlinePlanner(OnlinePlannerConfig config = {});

  OnlinePlanner(const OnlinePlanner&) = delete;
  OnlinePlanner& operator=(const OnlinePlanner&) = delete;

  // Movable so keyed registries (serve::AdvisorService) can hold planners
  // by value through container moves/rehashes without resetting fit
  // state. The planner_ holds a reference to *model_ (not into this
  // object), so the defaulted member-wise move keeps it valid.
  OnlinePlanner(OnlinePlanner&&) = default;
  OnlinePlanner& operator=(OnlinePlanner&&) = default;

  /// Feeds one completed probe latency (seconds, in [0, timeout)).
  void observe_completed(double latency);
  /// Feeds one outlier/fault (probe canceled at the timeout).
  void observe_outlier();

  /// True once a model and recommendation are available.
  [[nodiscard]] bool ready() const { return recommendation_.has_value(); }

  /// Latest recommendation; throws std::logic_error before ready().
  [[nodiscard]] const core::Recommendation& current() const;

  /// Latest fitted model; throws std::logic_error before ready().
  [[nodiscard]] const model::DiscretizedLatencyModel& model() const;

  /// Number of model re-fits performed so far.
  [[nodiscard]] std::size_t refits() const { return refits_; }

  /// Observations currently in the window.
  [[nodiscard]] std::size_t window_size() const { return window_.size(); }

  /// Outlier fraction of the current window.
  [[nodiscard]] double window_outlier_ratio() const;

  /// Two-sample KS distance between the completed latencies of the older
  /// and newer halves of the window (0 if either half is empty).
  [[nodiscard]] double drift_statistic() const;

  /// drift_statistic() > config.drift_threshold.
  [[nodiscard]] bool drifted() const;

 private:
  struct Observation {
    double latency;  ///< meaningful only when completed
    bool completed;
  };

  void maybe_refit();
  void refit();

  OnlinePlannerConfig config_;
  std::deque<Observation> window_;
  std::size_t since_refit_ = 0;
  std::size_t refits_ = 0;
  std::unique_ptr<model::DiscretizedLatencyModel> model_;
  std::unique_ptr<core::StrategyPlanner> planner_;
  std::optional<core::Recommendation> recommendation_;
};

}  // namespace gridsub::online
