#include "online/online_planner.hpp"

#include <stdexcept>
#include <vector>

#include "stats/fit.hpp"
#include "traces/trace.hpp"

namespace gridsub::online {

OnlinePlanner::OnlinePlanner(OnlinePlannerConfig config)
    : config_(config) {
  if (config.window < 2) {
    throw std::invalid_argument("OnlinePlanner: window < 2");
  }
  if (config.min_observations < 2 || config.min_observations > config.window) {
    throw std::invalid_argument(
        "OnlinePlanner: min_observations outside [2, window]");
  }
  if (config.refit_interval == 0) {
    throw std::invalid_argument("OnlinePlanner: refit_interval == 0");
  }
  if (!(config.model_step > 0.0) || !(config.timeout > config.model_step)) {
    throw std::invalid_argument("OnlinePlanner: bad step/timeout");
  }
}

void OnlinePlanner::observe_completed(double latency) {
  if (!(latency >= 0.0) || latency >= config_.timeout) {
    throw std::invalid_argument(
        "OnlinePlanner::observe_completed: latency outside [0, timeout)");
  }
  window_.push_back({latency, true});
  if (window_.size() > config_.window) window_.pop_front();
  ++since_refit_;
  maybe_refit();
}

void OnlinePlanner::observe_outlier() {
  window_.push_back({config_.timeout, false});
  if (window_.size() > config_.window) window_.pop_front();
  ++since_refit_;
  maybe_refit();
}

void OnlinePlanner::maybe_refit() {
  if (window_.size() < config_.min_observations) return;
  if (recommendation_.has_value() && since_refit_ < config_.refit_interval) {
    return;
  }
  refit();
}

void OnlinePlanner::refit() {
  traces::Trace trace("online-window", config_.timeout);
  std::size_t completed = 0;
  for (const Observation& o : window_) {
    if (o.completed) {
      trace.add_completed(0.0, o.latency);
      ++completed;
    } else {
      trace.add_outlier(0.0);
    }
  }
  if (completed < 2) return;  // nothing to fit yet; keep accumulating
  // Rebuild model first, then the planner that references it; the old
  // recommendation is only replaced once the new one exists.
  auto fresh_model = std::make_unique<model::DiscretizedLatencyModel>(
      model::DiscretizedLatencyModel::from_trace(trace,
                                                 config_.model_step));
  auto fresh_planner =
      std::make_unique<core::StrategyPlanner>(*fresh_model);
  recommendation_ = fresh_planner->recommend(config_.planner);
  model_ = std::move(fresh_model);
  planner_ = std::move(fresh_planner);
  since_refit_ = 0;
  ++refits_;
}

const core::Recommendation& OnlinePlanner::current() const {
  if (!recommendation_.has_value()) {
    throw std::logic_error("OnlinePlanner::current: not ready");
  }
  return *recommendation_;
}

const model::DiscretizedLatencyModel& OnlinePlanner::model() const {
  if (!model_) throw std::logic_error("OnlinePlanner::model: not ready");
  return *model_;
}

double OnlinePlanner::window_outlier_ratio() const {
  if (window_.empty()) return 0.0;
  std::size_t outliers = 0;
  for (const Observation& o : window_) {
    if (!o.completed) ++outliers;
  }
  return static_cast<double>(outliers) /
         static_cast<double>(window_.size());
}

double OnlinePlanner::drift_statistic() const {
  const std::size_t half = window_.size() / 2;
  std::vector<double> older, newer;
  older.reserve(half);
  newer.reserve(window_.size() - half);
  for (std::size_t i = 0; i < window_.size(); ++i) {
    const Observation& o = window_[i];
    if (!o.completed) continue;
    (i < half ? older : newer).push_back(o.latency);
  }
  if (older.empty() || newer.empty()) return 0.0;
  return stats::ks_two_sample(older, newer);
}

bool OnlinePlanner::drifted() const {
  return drift_statistic() > config_.drift_threshold;
}

}  // namespace gridsub::online
