#include "mc/mc_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <new>
#include <stdexcept>
#include <vector>

#include "core/thread_annotations.hpp"
#include "numerics/kahan.hpp"
#include "parallel/parallel_for.hpp"

namespace gridsub::mc {

namespace {

constexpr std::size_t kBlockSize = 4096;

/// Per-replication outcome.
struct RunOutcome {
  double total_latency = 0.0;  // J
  double job_seconds = 0.0;    // integral of in-flight copies over [0, J]
  double submissions = 0.0;
};

// Each block accumulates into a worker-local BlockSums on the worker's
// stack and writes the finished block back to the shared vector exactly
// once, so the per-replication adds never touch shared cache lines. The
// alignment keeps even those single write-backs from false-sharing with a
// neighbouring block on another core. GCC flags any use of the constant as
// tuning-dependent (-Winterference-size); that is fine here — padding is an
// optimization, not ABI, so pin the build-time value.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winterference-size"
#endif
#ifdef __cpp_lib_hardware_interference_size
constexpr std::size_t kCacheLine = std::hardware_destructive_interference_size;
#else
constexpr std::size_t kCacheLine = 64;
#endif
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

/// Per-block accumulators (combined deterministically in block order).
struct alignas(kCacheLine) BlockSums {
  numerics::KahanAccumulator j, j2, job_seconds, submissions, ratio;
  std::size_t count = 0;

  void add(const RunOutcome& r) {
    j.add(r.total_latency);
    j2.add(r.total_latency * r.total_latency);
    job_seconds.add(r.job_seconds);
    submissions.add(r.submissions);
    ratio.add(r.total_latency > 0.0 ? r.job_seconds / r.total_latency : 1.0);
    ++count;
  }
};

/// The shared per-block result table workers write finished blocks back
/// to. Distinct blocks land in distinct slots, so the writes are already
/// disjoint; the mutex exists to make the lock discipline checkable
/// (GRIDSUB_GUARDED_BY) rather than implied — at one acquisition per
/// kBlockSize replications its cost is unmeasurable. take() is called
/// once, after the parallel_for join.
class BlockBoard {
 public:
  explicit BlockBoard(std::size_t n_blocks) : sums_(n_blocks) {}

  void store(std::size_t block, const BlockSums& sums)
      GRIDSUB_EXCLUDES(mu_) {
    const core::MutexLock lock(mu_);
    sums_[block] = sums;
  }

  [[nodiscard]] std::vector<BlockSums> take() GRIDSUB_EXCLUDES(mu_) {
    const core::MutexLock lock(mu_);
    return std::move(sums_);
  }

 private:
  core::Mutex mu_;
  std::vector<BlockSums> sums_ GRIDSUB_GUARDED_BY(mu_);
};

template <typename RunFn>
McResult run_blocks(const McOptions& options, RunFn&& run_one) {
  if (options.replications == 0) {
    throw std::invalid_argument("mc: replications == 0");
  }
  const std::size_t n_blocks =
      (options.replications + kBlockSize - 1) / kBlockSize;
  BlockBoard board(n_blocks);
  par::parallel_for(
      0, static_cast<std::int64_t>(n_blocks),
      [&](std::int64_t block) {
        stats::Rng rng(options.seed ^
                       (0x9E3779B97F4A7C15ull *
                        (static_cast<std::uint64_t>(block) + 1)));
        const std::size_t begin =
            static_cast<std::size_t>(block) * kBlockSize;
        const std::size_t end =
            std::min(begin + kBlockSize, options.replications);
        // Worker-local accumulation: identical add order to writing the
        // shared slot directly, so results stay bit-identical; only the
        // memory traffic changes (one write-back per block).
        BlockSums local;
        for (std::size_t i = begin; i < end; ++i) {
          local.add(run_one(rng));
        }
        board.store(static_cast<std::size_t>(block), local);
      },
      options.pool);

  // Deterministic: partials fold in ascending block order regardless of
  // which worker produced them when.
  const std::vector<BlockSums> sums = board.take();
  numerics::KahanAccumulator j, j2, job_seconds, submissions, ratio;
  std::size_t count = 0;
  for (const auto& b : sums) {
    j.add(b.j.value());
    j2.add(b.j2.value());
    job_seconds.add(b.job_seconds.value());
    submissions.add(b.submissions.value());
    ratio.add(b.ratio.value());
    count += b.count;
  }
  McResult res;
  res.replications = count;
  const double n = static_cast<double>(count);
  res.mean_latency = j.value() / n;
  const double var =
      std::max(j2.value() / n - res.mean_latency * res.mean_latency, 0.0);
  res.std_latency = std::sqrt(var);
  res.mean_submissions = submissions.value() / n;
  res.mean_parallel_ratio = ratio.value() / n;
  res.aggregate_parallel =
      j.value() > 0.0 ? job_seconds.value() / j.value() : 1.0;
  return res;
}

}  // namespace

McResult simulate_single(const model::LatencyModel& m, double t_inf,
                         const McOptions& options) {
  if (!(t_inf > 0.0)) throw std::invalid_argument("simulate_single: t_inf");
  return run_blocks(options, [&m, t_inf, &options](stats::Rng& rng) {
    RunOutcome out;
    for (std::size_t round = 0; round < options.max_rounds; ++round) {
      const double latency = m.sample(rng);
      out.submissions += 1.0;
      if (latency < t_inf) {
        out.total_latency += latency;
        out.job_seconds += latency;
        return out;
      }
      out.total_latency += t_inf;
      out.job_seconds += t_inf;
    }
    throw std::runtime_error("simulate_single: max_rounds exceeded");
  });
}

McResult simulate_multiple(const model::LatencyModel& m, int b, double t_inf,
                           const McOptions& options) {
  if (b < 1) throw std::invalid_argument("simulate_multiple: b < 1");
  if (!(t_inf > 0.0)) throw std::invalid_argument("simulate_multiple: t_inf");
  return run_blocks(options, [&m, b, t_inf, &options](stats::Rng& rng) {
    RunOutcome out;
    for (std::size_t round = 0; round < options.max_rounds; ++round) {
      double best = std::numeric_limits<double>::infinity();
      for (int i = 0; i < b; ++i) {
        best = std::min(best, m.sample(rng));
      }
      out.submissions += static_cast<double>(b);
      if (best < t_inf) {
        out.total_latency += best;
        // All b copies occupy the system until the first one starts, then
        // the rest are canceled.
        out.job_seconds += static_cast<double>(b) * best;
        return out;
      }
      out.total_latency += t_inf;
      out.job_seconds += static_cast<double>(b) * t_inf;
    }
    throw std::runtime_error("simulate_multiple: max_rounds exceeded");
  });
}

McResult simulate_delayed(const model::LatencyModel& m, double t0,
                          double t_inf, const McOptions& options) {
  if (!(t0 > 0.0) || !(t_inf > t0) || t_inf > 2.0 * t0 * (1.0 + 1e-9)) {
    throw std::invalid_argument(
        "simulate_delayed: requires 0 < t0 < t_inf <= 2*t0");
  }
  return run_blocks(options, [&m, t0, t_inf, &options](stats::Rng& rng) {
    RunOutcome out;
    double j = std::numeric_limits<double>::infinity();
    std::size_t k = 0;
    // Submit copy k at k*t0 while nothing has started yet.
    while (static_cast<double>(k) * t0 < j) {
      if (k >= options.max_rounds) {
        throw std::runtime_error("simulate_delayed: max_rounds exceeded");
      }
      const double submit = static_cast<double>(k) * t0;
      const double latency = m.sample(rng);
      if (latency < t_inf) j = std::min(j, submit + latency);
      ++k;
    }
    out.total_latency = j;
    out.submissions = static_cast<double>(k);
    // Copy i occupies [i*t0, min(i*t0 + t_inf, J)].
    for (std::size_t i = 0; i < k; ++i) {
      const double submit = static_cast<double>(i) * t0;
      out.job_seconds += std::max(0.0, std::min(submit + t_inf, j) - submit);
    }
    return out;
  });
}

}  // namespace gridsub::mc
