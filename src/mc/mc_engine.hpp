#pragma once

// Monte Carlo execution of the three submission strategies.
//
// Every analytic quantity in core/ (E_J, sigma_J, N∥, expected submission
// counts) is re-derived here by directly simulating the client-side
// protocol against latency samples drawn from the same model. The test
// suite requires agreement within Monte Carlo error; the benches use the
// engine for validation tables and for quantities with no closed form.
//
// Replications are partitioned into fixed-size blocks, each with an RNG
// stream derived from (seed, block index), so results are bit-identical
// regardless of the worker-thread count.

#include <cstdint>

#include "model/latency_model.hpp"
#include "parallel/thread_pool.hpp"

namespace gridsub::mc {

struct McOptions {
  std::size_t replications = 100000;
  std::uint64_t seed = 0xC0FFEE;
  /// Defaults to the shared pool; pass a pool to control thread count.
  par::ThreadPool* pool = nullptr;
  /// Safety valve on resubmission rounds per replication.
  std::size_t max_rounds = 1000000;
};

struct McResult {
  std::size_t replications = 0;
  double mean_latency = 0.0;        ///< empirical E_J
  double std_latency = 0.0;         ///< empirical sigma_J
  double mean_submissions = 0.0;    ///< jobs submitted per original task
  double mean_parallel_ratio = 0.0; ///< E[N∥(J)] (expectation of the ratio)
  double aggregate_parallel = 0.0;  ///< Σ job-seconds / Σ J (ratio of sums;
                                    ///< the fleet-level load measure)
};

/// Single resubmission (§4) with timeout t_inf.
McResult simulate_single(const model::LatencyModel& m, double t_inf,
                         const McOptions& options = {});

/// Multiple submission (§5): b parallel copies, collection timeout t_inf.
McResult simulate_multiple(const model::LatencyModel& m, int b, double t_inf,
                           const McOptions& options = {});

/// Delayed resubmission (§6): period t0, cancellation timeout t_inf.
McResult simulate_delayed(const model::LatencyModel& m, double t0,
                          double t_inf, const McOptions& options = {});

}  // namespace gridsub::mc
