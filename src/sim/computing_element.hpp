#pragma once

// Computing element: a site gateway with a FIFO batch queue and a fixed
// number of worker slots (the EGEE CE + local batch manager). Jobs wait in
// the queue, start when a slot frees, and run for their given runtime.
// A per-CE fault probability drops jobs silently at arrival — the client
// only finds out through its own timeout, as on the real infrastructure.
//
// Two queue lanes are provided for the related-work baselines (Subramani
// et al.'s K-Dual scheme, paper §2): the local lane has strict priority
// over the remote lane, so redundant copies shipped to foreign sites only
// run when no local work waits. Regular traffic uses the local lane.
//
// Bookkeeping is a generation-checked slot map (same scheme as
// sim::EventQueue): a JobHandle is (generation << 32) | slot index and the
// FIFO lanes are intrusive doubly-linked lists threaded through the slots,
// so submit/cancel never hashes and never allocates beyond amortized
// slot-vector growth. Slot state is struct-of-arrays: the 20-byte hot
// record (links, generation, state tag) the scheduler scan walks is a
// separate array from the cold payload (runtime, callbacks), so draining
// a deep queue stays cache-dense. Cancelling a queued job unlinks and reclaims its
// slot in O(1), but leaves a counted "ghost" at its queue position: the
// historical deque implementation only dropped canceled entries when they
// reached the queue front with a worker free, so queue_length() — and the
// WMS load ranking built on it — must keep counting them until then for
// whole-grid runs to stay byte-identical. Ghosts are just integers (a
// per-entry predecessor count plus a lane tail count), so a saturated CE
// accumulating canceled jobs costs words, not slots. Handles for jobs
// dropped at arrival (gateway down, silent fault) carry an out-of-range
// slot index, so they can never resolve; cancel() on them reports false,
// which is exactly the real infrastructure's behaviour (nothing to cancel
// — the job vanished in the submission chain).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"

namespace gridsub::sim {

class ComputingElement {
 public:
  using JobHandle = std::uint64_t;
  /// Called when the job begins execution (start time = sim.now()).
  using StartCallback = std::function<void()>;
  /// Called when the job finishes execution.
  using CompleteCallback = std::function<void()>;

  /// Queue lane: local jobs preempt remote ones *in queueing order* (a
  /// remote job never starts while a local job waits; running jobs are
  /// never preempted).
  enum class Lane { kLocal, kRemote };

  /// `slots` > 0 workers; `fault_prob` in [0,1]; metrics may be nullptr.
  ComputingElement(Simulator& sim, std::string name, int slots,
                   double fault_prob, stats::Rng rng,
                   GridMetrics* metrics = nullptr);

  ComputingElement(const ComputingElement&) = delete;
  ComputingElement& operator=(const ComputingElement&) = delete;

  /// Enqueues a job with the given runtime. Callbacks fire at start and
  /// completion unless the job is canceled (or silently faulted). The
  /// start callback may fire synchronously if a slot is free.
  JobHandle submit(double runtime, StartCallback on_start,
                   CompleteCallback on_complete = nullptr,
                   Lane lane = Lane::kLocal);

  /// Cancels a queued or running job. Returns false if unknown/finished —
  /// including stale handles whose slot has been recycled (generation
  /// check) and handles of silently-faulted submissions.
  bool cancel(JobHandle handle);

  /// Site availability (gateway up/down). While down, every submission is
  /// silently lost — the client's timeout is the only detector, exactly
  /// like the paper's "local configuration issues". Queued and running
  /// jobs are unaffected (the batch system behind the gateway keeps
  /// working).
  void set_available(bool available) { available_ = available; }
  [[nodiscard]] bool available() const { return available_; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int slots() const { return slots_; }
  [[nodiscard]] int running() const { return running_; }
  [[nodiscard]] std::size_t queue_length() const {
    return local_.count + remote_.count;
  }
  [[nodiscard]] std::size_t queue_length(Lane lane) const {
    return lane == Lane::kLocal ? local_.count : remote_.count;
  }
  /// Load metric used by the WMS ranking: (queued + running) / slots.
  [[nodiscard]] double load() const;

 private:
  static constexpr std::uint32_t kNilIndex = 0xFFFFFFFFu;

  enum class JobState : std::uint8_t {
    kFree,
    kQueued,
    kStarting,  ///< on_start in flight (handle momentarily unknown)
    kRunning
  };

  /// Hot half of a job slot — the 20 bytes the scheduler scan, lane
  /// drains, and cancel routing actually read, so a busy CE walks ~3
  /// slots per cache line instead of dragging callback payloads through.
  /// Freed slots are chained through `next` and their generation is
  /// bumped so outstanding handles go stale.
  struct JobHot {
    std::uint32_t generation = 1;
    std::uint32_t prev = kNilIndex;  ///< lane FIFO back-link while queued
    std::uint32_t next = kNilIndex;  ///< lane FIFO link / free-list link
    /// Canceled-but-undrained entries immediately ahead of this one in
    /// the lane (see the ghost-accounting note above).
    std::uint32_t ghosts_before = 0;
    JobState state = JobState::kFree;
    Lane lane = Lane::kLocal;  ///< valid while queued
  };

  /// Cold half, parallel to `hot_`: payloads touched only at submit,
  /// start, and completion of *this* job, never during scans over others.
  struct JobCold {
    double runtime = 0.0;
    SimTime enqueue_time = 0.0;
    StartCallback on_start;
    CompleteCallback on_complete;
    EventId completion_event = 0;  ///< valid while running
  };

  /// Intrusive FIFO lane over the slot vector. `count` includes ghost
  /// entries not yet drained, matching the historical deque semantics
  /// that queue_length()/load() expose to the WMS.
  struct LaneList {
    std::uint32_t head = kNilIndex;
    std::uint32_t tail = kNilIndex;
    std::size_t ghosts_tail = 0;  ///< ghosts behind the last live entry
    std::size_t count = 0;
  };

  [[nodiscard]] std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);
  void lane_unlink_to_ghost(LaneList& list, std::uint32_t index);
  void try_start_next();
  void finish_job(std::uint32_t index, std::uint32_t generation);

  Simulator& sim_;
  std::string name_;
  int slots_;
  double fault_prob_;
  stats::Rng rng_;
  GridMetrics* metrics_;

  std::vector<JobHot> hot_;    ///< struct-of-arrays job state...
  std::vector<JobCold> cold_;  ///< ...same index = same job
  std::uint32_t free_head_ = kNilIndex;
  LaneList local_;   // local lane, FIFO
  LaneList remote_;  // remote lane, FIFO, lower priority
  /// Distinct never-resolving handles for silently dropped submissions.
  std::uint32_t fault_serial_ = 1;
  int running_ = 0;
  bool available_ = true;
};

}  // namespace gridsub::sim
