#pragma once

// Computing element: a site gateway with a FIFO batch queue and a fixed
// number of worker slots (the EGEE CE + local batch manager). Jobs wait in
// the queue, start when a slot frees, and run for their given runtime.
// A per-CE fault probability drops jobs silently at arrival — the client
// only finds out through its own timeout, as on the real infrastructure.
//
// Two queue lanes are provided for the related-work baselines (Subramani
// et al.'s K-Dual scheme, paper §2): the local lane has strict priority
// over the remote lane, so redundant copies shipped to foreign sites only
// run when no local work waits. Regular traffic uses the local lane.

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"

namespace gridsub::sim {

class ComputingElement {
 public:
  using JobHandle = std::uint64_t;
  /// Called when the job begins execution (start time = sim.now()).
  using StartCallback = std::function<void()>;
  /// Called when the job finishes execution.
  using CompleteCallback = std::function<void()>;

  /// Queue lane: local jobs preempt remote ones *in queueing order* (a
  /// remote job never starts while a local job waits; running jobs are
  /// never preempted).
  enum class Lane { kLocal, kRemote };

  /// `slots` > 0 workers; `fault_prob` in [0,1]; metrics may be nullptr.
  ComputingElement(Simulator& sim, std::string name, int slots,
                   double fault_prob, stats::Rng rng,
                   GridMetrics* metrics = nullptr);

  ComputingElement(const ComputingElement&) = delete;
  ComputingElement& operator=(const ComputingElement&) = delete;

  /// Enqueues a job with the given runtime. Callbacks fire at start and
  /// completion unless the job is canceled (or silently faulted). The
  /// start callback may fire synchronously if a slot is free.
  JobHandle submit(double runtime, StartCallback on_start,
                   CompleteCallback on_complete = nullptr,
                   Lane lane = Lane::kLocal);

  /// Cancels a queued or running job. Returns false if unknown/finished.
  bool cancel(JobHandle handle);

  /// Site availability (gateway up/down). While down, every submission is
  /// silently lost — the client's timeout is the only detector, exactly
  /// like the paper's "local configuration issues". Queued and running
  /// jobs are unaffected (the batch system behind the gateway keeps
  /// working).
  void set_available(bool available) { available_ = available; }
  [[nodiscard]] bool available() const { return available_; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int slots() const { return slots_; }
  [[nodiscard]] int running() const { return running_; }
  [[nodiscard]] std::size_t queue_length() const {
    return queue_.size() + remote_queue_.size();
  }
  [[nodiscard]] std::size_t queue_length(Lane lane) const {
    return lane == Lane::kLocal ? queue_.size() : remote_queue_.size();
  }
  /// Load metric used by the WMS ranking: (queued + running) / slots.
  [[nodiscard]] double load() const;

 private:
  struct PendingJob {
    double runtime;
    SimTime enqueue_time;
    StartCallback on_start;
    CompleteCallback on_complete;
  };

  void try_start_next();
  void finish_job(JobHandle handle);

  Simulator& sim_;
  std::string name_;
  int slots_;
  double fault_prob_;
  stats::Rng rng_;
  GridMetrics* metrics_;

  std::deque<JobHandle> queue_;         // local lane, FIFO
  std::deque<JobHandle> remote_queue_;  // remote lane, FIFO, lower priority
  std::unordered_map<JobHandle, PendingJob> pending_;
  std::unordered_map<JobHandle, EventId> running_jobs_;  // completion events
  int running_ = 0;
  bool available_ = true;
  JobHandle next_handle_ = 1;
};

}  // namespace gridsub::sim
