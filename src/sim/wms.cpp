#include "sim/wms.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace gridsub::sim {

WorkloadManager::WorkloadManager(Simulator& sim,
                                 std::vector<ComputingElement*> ces,
                                 const WmsConfig& config, stats::Rng rng,
                                 GridMetrics* metrics)
    : sim_(sim),
      ces_(std::move(ces)),
      config_(config),
      network_(config.network),
      rng_(rng),
      metrics_(metrics) {
  if (ces_.empty()) {
    throw std::invalid_argument("WorkloadManager: no computing elements");
  }
  if (!(config_.info_refresh_period > 0.0)) {
    throw std::invalid_argument("WorkloadManager: info_refresh_period <= 0");
  }
  load_snapshot_.resize(ces_.size(), 0.0);
  refresh_load_snapshot();
}

void WorkloadManager::refresh_load_snapshot() {
  for (std::size_t i = 0; i < ces_.size(); ++i) {
    load_snapshot_[i] = ces_[i]->load();
  }
  sim_.schedule_daemon_in(config_.info_refresh_period,
                          [this]() { refresh_load_snapshot(); });
}

std::size_t WorkloadManager::choose_element() {
  switch (config_.dispatch) {
    case WmsConfig::Dispatch::kUniformRandom:
      return static_cast<std::size_t>(rng_.uniform_int(ces_.size()));
    case WmsConfig::Dispatch::kWeightedRandom: {
      // Weight ~ 1 / (1 + stale load).
      double total = 0.0;
      for (const double l : load_snapshot_) total += 1.0 / (1.0 + l);
      double u = rng_.uniform(0.0, total);
      for (std::size_t i = 0; i < ces_.size(); ++i) {
        u -= 1.0 / (1.0 + load_snapshot_[i]);
        if (u <= 0.0) return i;
      }
      return ces_.size() - 1;
    }
    case WmsConfig::Dispatch::kLeastLoaded:
    default: {
      // Ties broken randomly so one CE does not absorb all bursts.
      double best = load_snapshot_[0];
      for (const double l : load_snapshot_) best = std::min(best, l);
      std::vector<std::size_t> mins;
      for (std::size_t i = 0; i < ces_.size(); ++i) {
        if (load_snapshot_[i] <= best) mins.push_back(i);
      }
      return mins[static_cast<std::size_t>(rng_.uniform_int(mins.size()))];
    }
  }
}

WorkloadManager::TicketId WorkloadManager::submit(double runtime,
                                                  StartCallback on_start) {
  const TicketId ticket = next_ticket_++;
  if (metrics_) ++metrics_->jobs_submitted;
  InFlight state;
  if (config_.fault_prob > 0.0 && rng_.bernoulli(config_.fault_prob)) {
    // Lost in the submission chain; only the client timeout notices.
    state.where = InFlight::Where::kLost;
    if (metrics_) ++metrics_->jobs_faulted;
    in_flight_.emplace(ticket, state);
    return ticket;
  }
  const double matchmaking = network_.sample_path_delay(rng_);
  if (metrics_) metrics_->total_matchmaking += matchmaking;
  state.where = InFlight::Where::kMatchmaking;
  state.matchmaking_event = sim_.schedule_in(
      matchmaking, [this, ticket, runtime, cb = std::move(on_start)]() {
        dispatch_job(ticket, runtime, cb);
      });
  in_flight_.emplace(ticket, state);
  return ticket;
}

void WorkloadManager::dispatch_job(TicketId ticket, double runtime,
                                   StartCallback on_start) {
  auto it = in_flight_.find(ticket);
  if (it == in_flight_.end()) return;  // canceled during matchmaking
  const std::size_t ce_index = choose_element();
  it->second.where = InFlight::Where::kComputingElement;
  it->second.ce_index = ce_index;
  // The CE may start the job synchronously (free slot), which re-enters
  // this WMS through the start callback and erases the ticket — so the
  // handle must be written back through a fresh lookup, not `it`.
  const auto handle = ces_[ce_index]->submit(
      runtime,
      [this, ticket, cb = std::move(on_start)]() {
        // Started: the ticket is finished from the WMS point of view.
        in_flight_.erase(ticket);
        if (cb) cb();
      },
      nullptr);
  if (auto live = in_flight_.find(ticket); live != in_flight_.end()) {
    live->second.ce_handle = handle;
  }
}

bool WorkloadManager::cancel(TicketId ticket) {
  auto it = in_flight_.find(ticket);
  if (it == in_flight_.end()) return false;
  if (metrics_) ++metrics_->jobs_canceled;
  switch (it->second.where) {
    case InFlight::Where::kMatchmaking:
      sim_.cancel(it->second.matchmaking_event);
      break;
    case InFlight::Where::kComputingElement:
      ces_[it->second.ce_index]->cancel(it->second.ce_handle);
      break;
    case InFlight::Where::kLost:
      break;
  }
  in_flight_.erase(it);
  return true;
}

}  // namespace gridsub::sim
