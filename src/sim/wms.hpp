#pragma once

// Workload Management System: the EGEE meta-scheduler.
//
// Receives jobs from user interfaces, spends a match-making delay (network
// hops + ranking), then dispatches to a computing element. Crucially, the
// ranking uses *stale* load information — the WMS only refreshes its view
// of CE queues every `info_refresh_period` seconds, reproducing the paper's
// observation that meta-schedulers act on partial information and local
// policies interfere with global objectives.

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/computing_element.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"

namespace gridsub::sim {

struct WmsConfig {
  NetworkConfig network;             ///< matchmaking-path delays
  double info_refresh_period = 120;  ///< staleness of CE load info (s)
  double fault_prob = 0.01;          ///< jobs lost inside the WMS chain
  enum class Dispatch {
    kLeastLoaded,     ///< rank by (stale) load, pick the minimum
    kUniformRandom,   ///< ignore load entirely
    kWeightedRandom   ///< sample inversely proportional to (stale) load
  };
  Dispatch dispatch = Dispatch::kLeastLoaded;
};

class WorkloadManager {
 public:
  using TicketId = std::uint64_t;
  using StartCallback = std::function<void()>;

  /// `ces` must stay alive for the WMS lifetime; metrics may be nullptr.
  WorkloadManager(Simulator& sim, std::vector<ComputingElement*> ces,
                  const WmsConfig& config, stats::Rng rng,
                  GridMetrics* metrics = nullptr);

  WorkloadManager(const WorkloadManager&) = delete;
  WorkloadManager& operator=(const WorkloadManager&) = delete;

  /// Accepts a job; on_start fires when it begins executing on a worker.
  TicketId submit(double runtime, StartCallback on_start);

  /// Cancels wherever the job currently is (matchmaking or CE).
  bool cancel(TicketId ticket);

  [[nodiscard]] const std::vector<ComputingElement*>& elements() const {
    return ces_;
  }

 private:
  void refresh_load_snapshot();
  [[nodiscard]] std::size_t choose_element();
  void dispatch_job(TicketId ticket, double runtime, StartCallback on_start);

  struct InFlight {
    enum class Where { kMatchmaking, kComputingElement, kLost } where;
    EventId matchmaking_event = 0;
    std::size_t ce_index = 0;
    ComputingElement::JobHandle ce_handle = 0;
  };

  Simulator& sim_;
  std::vector<ComputingElement*> ces_;
  WmsConfig config_;
  NetworkModel network_;
  stats::Rng rng_;
  GridMetrics* metrics_;

  std::vector<double> load_snapshot_;
  std::unordered_map<TicketId, InFlight> in_flight_;
  TicketId next_ticket_ = 1;
};

}  // namespace gridsub::sim
