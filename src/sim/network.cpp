#include "sim/network.hpp"

#include <stdexcept>

namespace gridsub::sim {

NetworkModel::NetworkModel(const NetworkConfig& config)
    : config_(config),
      per_hop_(config.hop_shape, config.hop_mean / config.hop_shape) {
  if (config.hops < 1) throw std::invalid_argument("NetworkModel: hops < 1");
}

double NetworkModel::sample_path_delay(stats::Rng& rng) const {
  double total = 0.0;
  for (int i = 0; i < config_.hops; ++i) total += per_hop_.sample(rng);
  return total;
}

}  // namespace gridsub::sim
