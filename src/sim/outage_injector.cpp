#include "sim/outage_injector.hpp"

#include <stdexcept>

namespace gridsub::sim {

OutageInjector::OutageInjector(Simulator& sim,
                               std::vector<ComputingElement*> ces,
                               const OutageConfig& config, stats::Rng rng)
    : sim_(sim), ces_(std::move(ces)), config_(config), rng_(rng) {
  if (ces_.empty()) {
    throw std::invalid_argument("OutageInjector: no computing elements");
  }
  if (!(config.mean_time_to_failure > 0.0) ||
      !(config.mean_outage_duration > 0.0)) {
    throw std::invalid_argument("OutageInjector: non-positive means");
  }
  for (std::size_t i = 0; i < ces_.size(); ++i) schedule_failure(i);
}

void OutageInjector::schedule_failure(std::size_t index) {
  const double ttf =
      rng_.exponential(1.0 / config_.mean_time_to_failure);
  sim_.schedule_daemon_in(ttf, [this, index]() {
    ces_[index]->set_available(false);
    ++outages_;
    schedule_repair(index);
  });
}

void OutageInjector::schedule_repair(std::size_t index) {
  const double ttr =
      rng_.exponential(1.0 / config_.mean_outage_duration);
  sim_.schedule_daemon_in(ttr, [this, index]() {
    ces_[index]->set_available(true);
    schedule_failure(index);
  });
}

std::size_t OutageInjector::down_count() const {
  std::size_t down = 0;
  for (const auto* ce : ces_) {
    if (!ce->available()) ++down;
  }
  return down;
}

}  // namespace gridsub::sim
