#pragma once

// Hierarchical timer wheel for far-future events.
//
// The slot-map heap (event_queue.hpp) is O(log n) per push, which is fine
// until one simulation hosts 10^5-10^6 strategy clients: the timeout events
// they arm t_inf ~ 900-1500 s ahead — and usually cancel before they fire —
// then dominate the heap, and every push pays log(live timeouts) of
// cache-missing sift-up. A calendar structure makes the arm/cancel cycle
// O(1): far events land in coarse time buckets and only the bucket that
// rotates due is ever heapified, so an armed-then-canceled timeout never
// touches the heap at all (the ytsaurus delayed_executor submit/cancel
// contract, applied to a DES).
//
// Shape: kLevels rings of kBucketsPerLevel buckets each. A level-0 bucket
// spans one tick (config.tick_seconds); each higher level is
// kBucketsPerLevel times coarser. An entry is filed by its distance from
// the cursor (the absolute tick below which the owner's heap has taken
// over): under 64 ticks -> level 0, under 64^2 -> level 1, under 64^3 ->
// level 2. When the cursor crosses a higher-level bucket's window start,
// that bucket cascades: its entries re-file into finer rings, reaching
// level 0 by the time they are due. rotate_into() hands the owner the
// earliest non-empty level-0 bucket; empty stretches are skipped ring-wise
// (per-level occupancy counts), so an idle wheel never walks ticks one by
// one.
//
// Determinism: the wheel stores the same (time, seq, slot, generation)
// entries the heap orders, untouched. Bucketing only affects *when* an
// entry is handed back for heapification, never its (time, seq) rank, and
// the owner promotes every bucket whose window could precede the heap top
// before answering pop()/next_time() — so the pop sequence, including the
// FIFO tie-break among simultaneous events, is byte-identical to a
// heap-only build. Cancellation stays in the owner's slot map; canceled
// residue in buckets is filtered at promotion and bounded by the owner's
// compaction sweep (erase_if), exactly like heap residue.

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace gridsub::sim {

/// Simulation clock time (seconds); mirrors event_queue.hpp's alias
/// without pulling the queue in.
using WheelTime = double;

/// One pending event as the queue's heap stores it: absolute time, a
/// monotone push sequence (FIFO tie-break), and the generation-checked
/// slot-map handle pieces.
struct TimerEntry {
  WheelTime time;
  std::uint64_t seq;
  std::uint32_t slot;
  std::uint32_t generation;
};

struct TimerWheelConfig {
  /// Master switch: disabled, try_insert() always declines and the owner
  /// runs heap-only (the byte-identity reference path).
  bool enabled = true;
  /// Level-0 bucket width in simulated seconds. 64 s keeps the paper's
  /// timeout regime (t_inf ~ 900-1500 s) 14-23 buckets out — far enough
  /// that armed-then-canceled timeouts die in their bucket, fine enough
  /// that a promoted bucket heapifies a small batch.
  double tick_seconds = 64.0;
  /// Events closer than this many ticks to the cursor stay on the owner's
  /// heap: they are about to fire, so bucketing them would just add a
  /// promotion hop to the hot path.
  int near_ticks = 4;
};

class TimerWheel {
 public:
  explicit TimerWheel(const TimerWheelConfig& config = {});

  /// Files `entry` if it belongs in the wheel: enabled, at or beyond the
  /// near horizon, and within the covered range. Returns false — keep it
  /// on the heap — otherwise. An idle (empty) wheel re-anchors its cursor
  /// first, so a far timeout armed after a long quiet stretch still gets
  /// fine-grained buckets.
  bool try_insert(const TimerEntry& entry);

  /// Entries currently filed, canceled residue included.
  [[nodiscard]] std::size_t size() const {
    return counts_[0] + counts_[1] + counts_[2];
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Absolute time below which the wheel holds nothing: every filed entry
  /// has time >= cursor_time(). The owner's heap must win outright
  /// (top.time < cursor_time()) before a pop may skip promotion.
  [[nodiscard]] WheelTime cursor_time() const {
    return static_cast<WheelTime>(cursor_) * config_.tick_seconds;
  }

  /// Appends the earliest non-empty level-0 bucket's entries to `out`
  /// (cascading coarser rings as their windows come due) and advances the
  /// cursor past that bucket. Requires !empty().
  void rotate_into(std::vector<TimerEntry>& out);

  /// Drops every filed entry for which `dead` returns true; returns the
  /// number removed. The owner calls this from its compaction sweep so
  /// canceled residue stays O(live).
  template <typename Pred>
  std::size_t erase_if(Pred dead) {
    std::size_t removed = 0;
    for (int level = 0; level < kLevels; ++level) {
      for (auto& bucket : rings_[level]) {
        const std::size_t before = bucket.size();
        std::erase_if(bucket, dead);
        removed += before - bucket.size();
        counts_[level] -= before - bucket.size();
      }
    }
    return removed;
  }

  /// Range covered from the cursor, in seconds (beyond it: heap).
  [[nodiscard]] double range_seconds() const {
    return static_cast<double>(kRangeTicks) * config_.tick_seconds;
  }

 private:
  using Tick = std::int64_t;
  static constexpr int kLevelBits = 6;
  static constexpr int kLevels = 3;
  static constexpr Tick kBucketsPerLevel = Tick{1} << kLevelBits;
  static constexpr Tick kBucketMask = kBucketsPerLevel - 1;
  static constexpr Tick kRangeTicks = Tick{1} << (kLevels * kLevelBits);
  /// Ticks beyond 2^52 lose integer resolution in a double; times out
  /// there (e.g. the benches' 1e18 sentinel daemons) stay on the heap.
  static constexpr Tick kMaxTick = Tick{1} << 52;

  [[nodiscard]] Tick tick_of(WheelTime time) const {
    return static_cast<Tick>(time / config_.tick_seconds);
  }
  /// Files an entry (already known to be in [cursor, cursor + range)).
  void place(const TimerEntry& entry);
  /// Re-files the due level-`level` bucket into finer rings.
  void cascade(int level);
  /// Runs every cascade the current cursor position is due for.
  void cascade_due();

  TimerWheelConfig config_;
  Tick cursor_ = 0;
  std::array<std::vector<TimerEntry>, kBucketsPerLevel> rings_[kLevels];
  std::size_t counts_[kLevels] = {0, 0, 0};
  std::vector<TimerEntry> scatter_;  ///< cascade scratch (reused, no alloc)
};

}  // namespace gridsub::sim
