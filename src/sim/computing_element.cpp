#include "sim/computing_element.hpp"

#include <stdexcept>
#include <utility>

namespace gridsub::sim {

ComputingElement::ComputingElement(Simulator& sim, std::string name,
                                   int slots, double fault_prob,
                                   stats::Rng rng, GridMetrics* metrics)
    : sim_(sim),
      name_(std::move(name)),
      slots_(slots),
      fault_prob_(fault_prob),
      rng_(rng),
      metrics_(metrics) {
  if (slots < 1) throw std::invalid_argument("ComputingElement: slots < 1");
  if (fault_prob < 0.0 || fault_prob > 1.0) {
    throw std::invalid_argument("ComputingElement: fault_prob");
  }
}

double ComputingElement::load() const {
  return (static_cast<double>(queue_length()) + running_) /
         static_cast<double>(slots_);
}

ComputingElement::JobHandle ComputingElement::submit(
    double runtime, StartCallback on_start, CompleteCallback on_complete,
    Lane lane) {
  if (runtime < 0.0) {
    throw std::invalid_argument("ComputingElement::submit: runtime < 0");
  }
  const JobHandle handle = next_handle_++;
  if (metrics_) ++metrics_->jobs_dispatched;
  if (!available_) {
    // Gateway down: the job vanishes in the submission chain.
    if (metrics_) ++metrics_->jobs_faulted;
    return handle;
  }
  if (fault_prob_ > 0.0 && rng_.bernoulli(fault_prob_)) {
    // Silently lost: the handle is never queued; cancel() on it is a no-op
    // returning false, and the client's timeout is the only detector.
    if (metrics_) ++metrics_->jobs_faulted;
    return handle;
  }
  pending_.emplace(
      handle, PendingJob{runtime, sim_.now(), std::move(on_start),
                         std::move(on_complete)});
  (lane == Lane::kLocal ? queue_ : remote_queue_).push_back(handle);
  try_start_next();
  return handle;
}

bool ComputingElement::cancel(JobHandle handle) {
  if (auto it = pending_.find(handle); it != pending_.end()) {
    pending_.erase(it);
    // Lazy removal from the FIFO: skip dead handles in try_start_next().
    return true;
  }
  if (auto it = running_jobs_.find(handle); it != running_jobs_.end()) {
    sim_.cancel(it->second);
    running_jobs_.erase(it);
    --running_;
    // Slot freed: pull the next queued job.
    try_start_next();
    return true;
  }
  return false;
}

void ComputingElement::try_start_next() {
  while (running_ < slots_ && (!queue_.empty() || !remote_queue_.empty())) {
    // Strict lane priority: remote copies only start when no local job
    // waits (Subramani's dual-queue rule).
    auto& lane = !queue_.empty() ? queue_ : remote_queue_;
    const JobHandle handle = lane.front();
    lane.pop_front();
    auto it = pending_.find(handle);
    if (it == pending_.end()) continue;  // canceled while queued
    PendingJob job = std::move(it->second);
    pending_.erase(it);
    ++running_;
    if (metrics_) {
      ++metrics_->jobs_started;
      metrics_->total_queue_wait += sim_.now() - job.enqueue_time;
    }
    if (job.on_start) job.on_start();
    const EventId done = sim_.schedule_in(
        job.runtime, [this, handle, cb = std::move(job.on_complete)]() {
          finish_job(handle);
          if (cb) cb();
        });
    running_jobs_.emplace(handle, done);
  }
}

void ComputingElement::finish_job(JobHandle handle) {
  if (running_jobs_.erase(handle) == 0) return;  // already canceled
  --running_;
  if (metrics_) ++metrics_->jobs_completed;
  try_start_next();
}

}  // namespace gridsub::sim
