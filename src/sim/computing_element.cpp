#include "sim/computing_element.hpp"

#include <stdexcept>
#include <utility>

namespace gridsub::sim {

namespace {

constexpr ComputingElement::JobHandle make_handle(std::uint32_t index,
                                                  std::uint32_t generation) {
  return (static_cast<ComputingElement::JobHandle>(generation) << 32) | index;
}

}  // namespace

ComputingElement::ComputingElement(Simulator& sim, std::string name,
                                   int slots, double fault_prob,
                                   stats::Rng rng, GridMetrics* metrics)
    : sim_(sim),
      name_(std::move(name)),
      slots_(slots),
      fault_prob_(fault_prob),
      rng_(rng),
      metrics_(metrics) {
  if (slots < 1) throw std::invalid_argument("ComputingElement: slots < 1");
  if (fault_prob < 0.0 || fault_prob > 1.0) {
    throw std::invalid_argument("ComputingElement: fault_prob");
  }
}

double ComputingElement::load() const {
  return (static_cast<double>(queue_length()) + running_) /
         static_cast<double>(slots_);
}

std::uint32_t ComputingElement::acquire_slot() {
  if (free_head_ != kNilIndex) {
    const std::uint32_t index = free_head_;
    free_head_ = hot_[index].next;
    hot_[index].next = kNilIndex;
    return index;
  }
  const auto index = static_cast<std::uint32_t>(hot_.size());
  hot_.emplace_back();
  cold_.emplace_back();
  return index;
}

void ComputingElement::release_slot(std::uint32_t index) {
  JobCold& cold = cold_[index];
  cold.on_start = nullptr;
  cold.on_complete = nullptr;
  cold.completion_event = 0;
  JobHot& hot = hot_[index];
  ++hot.generation;  // stale handles now fail the generation check
  hot.state = JobState::kFree;
  hot.prev = kNilIndex;
  hot.ghosts_before = 0;
  hot.next = free_head_;
  free_head_ = index;
}

/// Unlinks a queued slot from its lane, leaving a counted ghost at its
/// position so queue_length() keeps reporting it until the lane would have
/// drained past it (the historical lazy-removal semantics).
void ComputingElement::lane_unlink_to_ghost(LaneList& list,
                                            std::uint32_t index) {
  JobHot& hot = hot_[index];
  const std::uint32_t ghosts = hot.ghosts_before + 1;
  if (hot.next != kNilIndex) {
    hot_[hot.next].ghosts_before += ghosts;
    hot_[hot.next].prev = hot.prev;
  } else {
    list.ghosts_tail += ghosts;
    list.tail = hot.prev;
  }
  if (hot.prev != kNilIndex) {
    hot_[hot.prev].next = hot.next;
  } else {
    list.head = hot.next;
  }
  // list.count is intentionally NOT decremented: the ghost still counts.
}

ComputingElement::JobHandle ComputingElement::submit(
    double runtime, StartCallback on_start, CompleteCallback on_complete,
    Lane lane) {
  if (runtime < 0.0) {
    throw std::invalid_argument("ComputingElement::submit: runtime < 0");
  }
  if (metrics_) ++metrics_->jobs_dispatched;
  if (!available_) {
    // Gateway down: the job vanishes in the submission chain.
    if (metrics_) ++metrics_->jobs_faulted;
    return make_handle(kNilIndex, fault_serial_++);
  }
  if (fault_prob_ > 0.0 && rng_.bernoulli(fault_prob_)) {
    // Silently lost: the handle never maps to a slot; cancel() on it is a
    // no-op returning false, and the client's timeout is the only detector.
    if (metrics_) ++metrics_->jobs_faulted;
    return make_handle(kNilIndex, fault_serial_++);
  }
  const std::uint32_t index = acquire_slot();
  JobCold& cold = cold_[index];
  cold.runtime = runtime;
  cold.enqueue_time = sim_.now();
  cold.on_start = std::move(on_start);
  cold.on_complete = std::move(on_complete);
  JobHot& hot = hot_[index];
  hot.state = JobState::kQueued;
  hot.lane = lane;
  const JobHandle handle = make_handle(index, hot.generation);
  LaneList& list = (lane == Lane::kLocal) ? local_ : remote_;
  if (list.tail == kNilIndex) {
    list.head = index;
  } else {
    hot_[list.tail].next = index;
  }
  hot.prev = list.tail;
  list.tail = index;
  // Ghosts behind the previous tail now sit ahead of this entry.
  hot.ghosts_before = static_cast<std::uint32_t>(list.ghosts_tail);
  list.ghosts_tail = 0;
  ++list.count;
  try_start_next();
  return handle;
}

bool ComputingElement::cancel(JobHandle handle) {
  const auto index = static_cast<std::uint32_t>(handle & 0xFFFFFFFFu);
  const auto generation = static_cast<std::uint32_t>(handle >> 32);
  if (index >= hot_.size()) return false;  // faulted or malformed handle
  JobHot& hot = hot_[index];
  if (hot.generation != generation) return false;  // already finished
  switch (hot.state) {
    case JobState::kQueued:
      // O(1) unlink; the slot is reclaimed immediately and a counted
      // ghost keeps its place in queue_length() until the lane would
      // have drained past it (old deque semantics, byte-identical load).
      lane_unlink_to_ghost(hot.lane == Lane::kLocal ? local_ : remote_,
                           index);
      release_slot(index);
      return true;
    case JobState::kRunning:
      sim_.cancel(cold_[index].completion_event);
      release_slot(index);
      --running_;
      // Slot freed: pull the next queued job.
      try_start_next();
      return true;
    case JobState::kFree:
    case JobState::kStarting:
      return false;
  }
  return false;
}

void ComputingElement::try_start_next() {
  while (running_ < slots_ && (local_.count > 0 || remote_.count > 0)) {
    // Strict lane priority: remote copies only start when no local job
    // waits (Subramani's dual-queue rule). A lane holding only ghosts
    // still takes priority until they drain — the old deque popped its
    // dead entries one by one here; bulk subtraction is observably equal
    // because nothing can inspect the queue between those pops.
    LaneList& list = (local_.count > 0) ? local_ : remote_;
    if (list.head == kNilIndex) {
      list.count -= list.ghosts_tail;  // lane is all ghosts: drain them
      list.ghosts_tail = 0;
      continue;
    }
    const std::uint32_t index = list.head;
    {
      JobHot& head = hot_[index];
      list.count -= head.ghosts_before;  // drain ghosts ahead of the head
      head.ghosts_before = 0;
      list.head = head.next;
      if (list.head == kNilIndex) {
        list.tail = kNilIndex;
      } else {
        hot_[list.head].prev = kNilIndex;
      }
      head.prev = kNilIndex;
      head.next = kNilIndex;
    }
    --list.count;
    // Move the job out of the slot before on_start runs: the callback may
    // re-enter submit()/cancel() (growing the slot arrays), so no
    // references may be held across it. While kStarting, the handle
    // reports false to cancel(), as it did between the pending- and
    // running-map eras.
    const std::uint32_t generation = hot_[index].generation;
    hot_[index].state = JobState::kStarting;
    JobCold& cold = cold_[index];
    const double runtime = cold.runtime;
    StartCallback on_start = std::move(cold.on_start);
    CompleteCallback on_complete = std::move(cold.on_complete);
    cold.on_start = nullptr;
    ++running_;
    if (metrics_) {
      ++metrics_->jobs_started;
      metrics_->total_queue_wait += sim_.now() - cold.enqueue_time;
    }
    if (on_start) on_start();
    const EventId done = sim_.schedule_in(
        runtime,
        [this, index, generation, cb = std::move(on_complete)]() mutable {
          finish_job(index, generation);
          if (cb) cb();
        });
    // Re-index (not re-use a reference): on_start may have grown the
    // arrays and moved them.
    cold_[index].completion_event = done;
    hot_[index].state = JobState::kRunning;
  }
}

void ComputingElement::finish_job(std::uint32_t index,
                                  std::uint32_t generation) {
  JobHot& hot = hot_[index];
  if (hot.state != JobState::kRunning || hot.generation != generation) {
    return;  // already canceled
  }
  release_slot(index);
  --running_;
  if (metrics_) ++metrics_->jobs_completed;
  try_start_next();
}

}  // namespace gridsub::sim
