#include "sim/computing_element.hpp"

#include <stdexcept>
#include <utility>

namespace gridsub::sim {

namespace {

constexpr ComputingElement::JobHandle make_handle(std::uint32_t index,
                                                  std::uint32_t generation) {
  return (static_cast<ComputingElement::JobHandle>(generation) << 32) | index;
}

}  // namespace

ComputingElement::ComputingElement(Simulator& sim, std::string name,
                                   int slots, double fault_prob,
                                   stats::Rng rng, GridMetrics* metrics)
    : sim_(sim),
      name_(std::move(name)),
      slots_(slots),
      fault_prob_(fault_prob),
      rng_(rng),
      metrics_(metrics) {
  if (slots < 1) throw std::invalid_argument("ComputingElement: slots < 1");
  if (fault_prob < 0.0 || fault_prob > 1.0) {
    throw std::invalid_argument("ComputingElement: fault_prob");
  }
}

double ComputingElement::load() const {
  return (static_cast<double>(queue_length()) + running_) /
         static_cast<double>(slots_);
}

std::uint32_t ComputingElement::acquire_slot() {
  if (free_head_ != kNilIndex) {
    const std::uint32_t index = free_head_;
    free_head_ = jobs_[index].next;
    jobs_[index].next = kNilIndex;
    return index;
  }
  const auto index = static_cast<std::uint32_t>(jobs_.size());
  jobs_.emplace_back();
  return index;
}

void ComputingElement::release_slot(std::uint32_t index) {
  JobSlot& slot = jobs_[index];
  slot.on_start = nullptr;
  slot.on_complete = nullptr;
  slot.completion_event = 0;
  ++slot.generation;  // stale handles now fail the generation check
  slot.state = JobSlot::State::kFree;
  slot.prev = kNilIndex;
  slot.ghosts_before = 0;
  slot.next = free_head_;
  free_head_ = index;
}

/// Unlinks a queued slot from its lane, leaving a counted ghost at its
/// position so queue_length() keeps reporting it until the lane would have
/// drained past it (the historical lazy-removal semantics).
void ComputingElement::lane_unlink_to_ghost(LaneList& list,
                                            std::uint32_t index) {
  JobSlot& slot = jobs_[index];
  const std::uint32_t ghosts = slot.ghosts_before + 1;
  if (slot.next != kNilIndex) {
    jobs_[slot.next].ghosts_before += ghosts;
    jobs_[slot.next].prev = slot.prev;
  } else {
    list.ghosts_tail += ghosts;
    list.tail = slot.prev;
  }
  if (slot.prev != kNilIndex) {
    jobs_[slot.prev].next = slot.next;
  } else {
    list.head = slot.next;
  }
  // list.count is intentionally NOT decremented: the ghost still counts.
}

ComputingElement::JobHandle ComputingElement::submit(
    double runtime, StartCallback on_start, CompleteCallback on_complete,
    Lane lane) {
  if (runtime < 0.0) {
    throw std::invalid_argument("ComputingElement::submit: runtime < 0");
  }
  if (metrics_) ++metrics_->jobs_dispatched;
  if (!available_) {
    // Gateway down: the job vanishes in the submission chain.
    if (metrics_) ++metrics_->jobs_faulted;
    return make_handle(kNilIndex, fault_serial_++);
  }
  if (fault_prob_ > 0.0 && rng_.bernoulli(fault_prob_)) {
    // Silently lost: the handle never maps to a slot; cancel() on it is a
    // no-op returning false, and the client's timeout is the only detector.
    if (metrics_) ++metrics_->jobs_faulted;
    return make_handle(kNilIndex, fault_serial_++);
  }
  const std::uint32_t index = acquire_slot();
  JobSlot& slot = jobs_[index];
  slot.runtime = runtime;
  slot.enqueue_time = sim_.now();
  slot.on_start = std::move(on_start);
  slot.on_complete = std::move(on_complete);
  slot.state = JobSlot::State::kQueued;
  slot.lane = lane;
  const JobHandle handle = make_handle(index, slot.generation);
  LaneList& list = (lane == Lane::kLocal) ? local_ : remote_;
  if (list.tail == kNilIndex) {
    list.head = index;
  } else {
    jobs_[list.tail].next = index;
  }
  slot.prev = list.tail;
  list.tail = index;
  // Ghosts behind the previous tail now sit ahead of this entry.
  slot.ghosts_before = static_cast<std::uint32_t>(list.ghosts_tail);
  list.ghosts_tail = 0;
  ++list.count;
  try_start_next();
  return handle;
}

bool ComputingElement::cancel(JobHandle handle) {
  const auto index = static_cast<std::uint32_t>(handle & 0xFFFFFFFFu);
  const auto generation = static_cast<std::uint32_t>(handle >> 32);
  if (index >= jobs_.size()) return false;  // faulted or malformed handle
  JobSlot& slot = jobs_[index];
  if (slot.generation != generation) return false;  // already finished
  switch (slot.state) {
    case JobSlot::State::kQueued:
      // O(1) unlink; the slot is reclaimed immediately and a counted
      // ghost keeps its place in queue_length() until the lane would
      // have drained past it (old deque semantics, byte-identical load).
      lane_unlink_to_ghost(slot.lane == Lane::kLocal ? local_ : remote_,
                           index);
      release_slot(index);
      return true;
    case JobSlot::State::kRunning:
      sim_.cancel(slot.completion_event);
      release_slot(index);
      --running_;
      // Slot freed: pull the next queued job.
      try_start_next();
      return true;
    case JobSlot::State::kFree:
    case JobSlot::State::kStarting:
      return false;
  }
  return false;
}

void ComputingElement::try_start_next() {
  while (running_ < slots_ && (local_.count > 0 || remote_.count > 0)) {
    // Strict lane priority: remote copies only start when no local job
    // waits (Subramani's dual-queue rule). A lane holding only ghosts
    // still takes priority until they drain — the old deque popped its
    // dead entries one by one here; bulk subtraction is observably equal
    // because nothing can inspect the queue between those pops.
    LaneList& list = (local_.count > 0) ? local_ : remote_;
    if (list.head == kNilIndex) {
      list.count -= list.ghosts_tail;  // lane is all ghosts: drain them
      list.ghosts_tail = 0;
      continue;
    }
    const std::uint32_t index = list.head;
    {
      JobSlot& head = jobs_[index];
      list.count -= head.ghosts_before;  // drain ghosts ahead of the head
      head.ghosts_before = 0;
      list.head = head.next;
      if (list.head == kNilIndex) {
        list.tail = kNilIndex;
      } else {
        jobs_[list.head].prev = kNilIndex;
      }
      head.prev = kNilIndex;
      head.next = kNilIndex;
    }
    --list.count;
    // Move the job out of the slot before on_start runs: the callback may
    // re-enter submit()/cancel() (growing jobs_), so no references may be
    // held across it. While kStarting, the handle reports false to
    // cancel(), as it did between the pending- and running-map eras.
    JobSlot& slot = jobs_[index];
    const std::uint32_t generation = slot.generation;
    const double runtime = slot.runtime;
    StartCallback on_start = std::move(slot.on_start);
    CompleteCallback on_complete = std::move(slot.on_complete);
    slot.on_start = nullptr;
    slot.state = JobSlot::State::kStarting;
    ++running_;
    if (metrics_) {
      ++metrics_->jobs_started;
      metrics_->total_queue_wait += sim_.now() - slot.enqueue_time;
    }
    if (on_start) on_start();
    const EventId done = sim_.schedule_in(
        runtime,
        [this, index, generation, cb = std::move(on_complete)]() mutable {
          finish_job(index, generation);
          if (cb) cb();
        });
    JobSlot& started = jobs_[index];  // re-read: on_start may grow jobs_
    started.completion_event = done;
    started.state = JobSlot::State::kRunning;
  }
}

void ComputingElement::finish_job(std::uint32_t index,
                                  std::uint32_t generation) {
  JobSlot& slot = jobs_[index];
  if (slot.state != JobSlot::State::kRunning ||
      slot.generation != generation) {
    return;  // already canceled
  }
  release_slot(index);
  --running_;
  if (metrics_) ++metrics_->jobs_completed;
  try_start_next();
}

}  // namespace gridsub::sim
