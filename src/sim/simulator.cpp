#include "sim/simulator.hpp"

#include <stdexcept>

namespace gridsub::sim {

EventId Simulator::schedule_at(SimTime time, SmallFn fn) {
  if (time < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  return queue_.push(time, std::move(fn));
}

EventId Simulator::schedule_in(SimTime delay, SmallFn fn) {
  if (delay < 0.0) {
    throw std::invalid_argument("Simulator::schedule_in: negative delay");
  }
  return queue_.push(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_daemon_at(SimTime time,
                                      SmallFn fn) {
  if (time < now_) {
    throw std::invalid_argument(
        "Simulator::schedule_daemon_at: time in the past");
  }
  return queue_.push(time, std::move(fn), /*daemon=*/true);
}

EventId Simulator::schedule_daemon_in(SimTime delay,
                                      SmallFn fn) {
  if (delay < 0.0) {
    throw std::invalid_argument(
        "Simulator::schedule_daemon_in: negative delay");
  }
  return queue_.push(now_ + delay, std::move(fn), /*daemon=*/true);
}

bool Simulator::cancel(EventId id) { return queue_.cancel(id); }

void Simulator::step() {
  auto fired = queue_.pop();
  now_ = fired.time;
  ++processed_;
  fired.fn();
}

void Simulator::run() {
  while (queue_.live_size() > 0) step();
}

void Simulator::run_until(SimTime t_end) {
  while (!queue_.empty() && queue_.next_time() <= t_end) step();
  if (t_end > now_) now_ = t_end;
}

}  // namespace gridsub::sim
