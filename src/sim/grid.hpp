#pragma once

// Assembled grid: simulator + heterogeneous CEs + WMS + background load.
//
// GridConfig::egee_like() produces an infrastructure whose probe latencies
// are in the paper's regime: a few-hundred-second bulk (matchmaking +
// queueing behind background jobs) with a heavy tail and a few-percent
// fault ratio.
//
// Thread-safety: a GridSimulation is single-threaded, but *distinct*
// instances share no mutable state — all randomness flows from the
// config seed through root_rng_.split() and every component holds
// per-instance state only (the audited library-wide statics are the
// const dataset registry and the parallel thread pool). The campaign
// engine (src/exp) relies on this to construct and run one grid per
// worker thread concurrently.

#include <memory>
#include <vector>

#include "sim/background_load.hpp"
#include "sim/computing_element.hpp"
#include "sim/metrics.hpp"
#include "sim/replay_load.hpp"
#include "sim/simulator.hpp"
#include "sim/wms.hpp"
#include "stats/rng.hpp"

namespace gridsub::sim {

struct CeSpec {
  int slots = 50;
  double fault_prob = 0.01;
};

struct GridConfig {
  std::vector<CeSpec> elements;  ///< one entry per computing element
  WmsConfig wms;
  BackgroundLoadConfig background;
  TimerWheelConfig timer_wheel;  ///< far-event wheel (on by default)
  std::uint64_t seed = 20090611;  ///< HPDC'09 started June 11, 2009

  /// A 12-site heterogeneous configuration tuned to the paper's latency
  /// regime (mean ≈ 300-700 s, heavy tail, ~3-5% faults).
  static GridConfig egee_like();
};

/// Owns every component of one grid instance.
class GridSimulation {
 public:
  explicit GridSimulation(const GridConfig& config);

  GridSimulation(const GridSimulation&) = delete;
  GridSimulation& operator=(const GridSimulation&) = delete;

  [[nodiscard]] Simulator& simulator() { return sim_; }
  [[nodiscard]] WorkloadManager& wms() { return *wms_; }
  [[nodiscard]] const GridMetrics& metrics() const { return metrics_; }
  [[nodiscard]] BackgroundLoad& background() { return *background_; }
  [[nodiscard]] const std::vector<std::unique_ptr<ComputingElement>>&
  elements() const {
    return ces_;
  }

  /// Derives an independent RNG stream for client components.
  [[nodiscard]] stats::Rng make_rng() { return root_rng_.split(); }

  /// Attaches a trace-replay workload source feeding this grid's WMS,
  /// starting at the current simulation time. Typically paired with
  /// `config.background.arrival_rate = 0` so the recorded workload is the
  /// only background traffic. The grid owns the returned source.
  ReplayLoad& attach_replay(const traces::Workload& workload,
                            const ReplayLoadConfig& config = {});

  /// Warms the system up: runs `duration` seconds of background-only
  /// traffic so queues reach steady state before measurement.
  void warm_up(SimTime duration);

 private:
  Simulator sim_;
  GridMetrics metrics_;
  stats::Rng root_rng_;
  std::vector<std::unique_ptr<ComputingElement>> ces_;
  std::unique_ptr<WorkloadManager> wms_;
  std::unique_ptr<BackgroundLoad> background_;
  std::vector<std::unique_ptr<ReplayLoad>> replays_;
};

}  // namespace gridsub::sim
