#include "sim/background_load.hpp"

#include <stdexcept>

#include "stats/lognormal.hpp"

namespace gridsub::sim {

BackgroundLoad::BackgroundLoad(Simulator& sim, WorkloadManager& wms,
                               const BackgroundLoadConfig& config,
                               stats::Rng rng)
    : sim_(sim), wms_(wms), config_(config), rng_(rng) {
  if (!(config.arrival_rate >= 0.0)) {
    throw std::invalid_argument("BackgroundLoad: negative arrival rate");
  }
  // The factory validates runtime_mean > 0 and runtime_sigma_log >= 0 —
  // log(mean <= 0) would otherwise silently poison mu (NaN/-inf) and every
  // runtime sample drawn after it.
  runtime_dist_ = std::make_unique<stats::LogNormal>(
      stats::LogNormal::from_mean_and_sigma_log(config.runtime_mean,
                                                config.runtime_sigma_log));
  if (config.arrival_rate > 0.0) schedule_next();
}

void BackgroundLoad::stop() { stopped_ = true; }

void BackgroundLoad::schedule_next() {
  if (stopped_) return;
  const double gap = rng_.exponential(config_.arrival_rate);
  sim_.schedule_in(gap, [this]() {
    if (stopped_) return;
    ++emitted_;
    wms_.submit(runtime_dist_->sample(rng_), nullptr);
    schedule_next();
  });
}

}  // namespace gridsub::sim
