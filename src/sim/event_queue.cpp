#include "sim/event_queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace gridsub::sim {

namespace {

/// Below this heap size, canceled residue is too small to matter; skipping
/// compaction keeps the common small-queue path branch-cheap.
constexpr std::size_t kCompactionFloor = 64;

constexpr EventId make_id(std::uint32_t index, std::uint32_t generation) {
  return (static_cast<EventId>(generation) << 32) | index;
}

}  // namespace

EventId EventQueue::push(SimTime time, SmallFn fn, bool daemon) {
  if (!fn) {
    // std::function used to defer this to a bad_function_call at fire
    // time; failing at the call site is both louder and earlier.
    throw std::invalid_argument("EventQueue::push: empty callback");
  }
  std::uint32_t index;
  if (free_head_ != kNilIndex) {
    index = free_head_;
    Slot& s = slots_[index];
    free_head_ = s.next_free;
    s.next_free = kNilIndex;
    s.fn = std::move(fn);
    s.live = true;
    s.daemon = daemon;
  } else {
    index = static_cast<std::uint32_t>(slots_.size());
    Slot& s = slots_.emplace_back();
    s.fn = std::move(fn);
    s.live = true;
    s.daemon = daemon;
  }
  const std::uint32_t generation = slots_[index].generation;
  heap_.push_back({time, next_seq_++, index, generation});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++alive_;
  if (!daemon) ++live_count_;
  return make_id(index, generation);
}

void EventQueue::release(std::uint32_t index) {
  Slot& s = slots_[index];
  s.fn = SmallFn{};  // drop any heap-held capture now, not at reuse
  s.live = false;
  ++s.generation;  // ids and heap entries naming the old tenant go stale
  s.next_free = free_head_;
  free_head_ = index;
  --alive_;
  if (!s.daemon) --live_count_;
}

bool EventQueue::cancel(EventId id) {
  const auto index = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (index >= slots_.size()) return false;
  const Slot& s = slots_[index];
  if (!s.live || s.generation != generation) return false;
  release(index);  // heap entry is dropped lazily...
  // ...unless dead entries outnumber live ones: then filter the heap in
  // place, which bounds it at O(live) under cancel/reschedule storms.
  if (heap_.size() > kCompactionFloor && heap_.size() > 2 * alive_) {
    compact();
  }
  return true;
}

void EventQueue::compact() {
  std::erase_if(heap_, [this](const Entry& e) { return entry_dead(e); });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
}

void EventQueue::drop_canceled() const {
  while (!heap_.empty() && entry_dead(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

SimTime EventQueue::next_time() const {
  drop_canceled();
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time: empty");
  return heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_canceled();
  if (heap_.empty()) throw std::logic_error("EventQueue::pop: empty");
  const Entry top = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
  Fired fired{top.time, make_id(top.slot, top.generation),
              std::move(slots_[top.slot].fn)};
  release(top.slot);
  return fired;
}

}  // namespace gridsub::sim
