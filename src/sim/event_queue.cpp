#include "sim/event_queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace gridsub::sim {

namespace {

/// Below this queued size, canceled residue is too small to matter;
/// skipping compaction keeps the common small-queue path branch-cheap.
constexpr std::size_t kCompactionFloor = 64;

constexpr EventId make_id(std::uint32_t index, std::uint32_t generation) {
  return (static_cast<EventId>(generation) << 32) | index;
}

}  // namespace

EventId EventQueue::push(SimTime time, SmallFn fn, bool daemon) {
  if (!fn) {
    // std::function used to defer this to a bad_function_call at fire
    // time; failing at the call site is both louder and earlier.
    throw std::invalid_argument("EventQueue::push: empty callback");
  }
  std::uint32_t index;
  if (free_head_ != kNilIndex) {
    index = free_head_;
    SlotMeta& s = slots_[index];
    free_head_ = s.next_free;
    s.next_free = kNilIndex;
    s.live = true;
    s.daemon = daemon;
    fns_[index] = std::move(fn);
  } else {
    index = static_cast<std::uint32_t>(slots_.size());
    SlotMeta& s = slots_.emplace_back();
    s.live = true;
    s.daemon = daemon;
    fns_.push_back(std::move(fn));
  }
  const Entry entry{time, next_seq_++, index, slots_[index].generation};
  // Far-future events go straight to a wheel bucket — O(1), no sift — and
  // reach the heap only if their bucket ever rotates due. Near/declined
  // ones take the classic heap path.
  if (!wheel_.try_insert(entry)) {
    heap_.push_back(entry);
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }
  ++alive_;
  if (!daemon) ++live_count_;
  return make_id(index, entry.generation);
}

void EventQueue::release(std::uint32_t index) {
  SlotMeta& s = slots_[index];
  fns_[index] = SmallFn{};  // drop any heap-held capture now, not at reuse
  s.live = false;
  ++s.generation;  // ids and queued entries naming the old tenant go stale
  s.next_free = free_head_;
  free_head_ = index;
  --alive_;
  if (!s.daemon) --live_count_;
}

bool EventQueue::cancel(EventId id) {
  const auto index = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (index >= slots_.size()) return false;
  const SlotMeta& s = slots_[index];
  if (!s.live || s.generation != generation) return false;
  release(index);  // heap/wheel entry is dropped lazily...
  // ...unless dead entries outnumber live ones across both structures:
  // then filter in place, which bounds the total at O(live) under
  // cancel/reschedule storms.
  if (queued() > kCompactionFloor && queued() > 2 * alive_) {
    compact();
  }
  return true;
}

void EventQueue::compact() {
  std::erase_if(heap_, [this](const Entry& e) { return entry_dead(e); });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  wheel_.erase_if([this](const Entry& e) { return entry_dead(e); });
}

void EventQueue::settle() const {
  for (;;) {
    while (!heap_.empty() && entry_dead(heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
    }
    if (wheel_.empty()) return;
    if (!heap_.empty() && heap_.front().time < wheel_.cursor_time()) return;
    // The heap top could tie or lose against a wheel entry: rotate the
    // earliest bucket in and let the heap order it (original seq intact).
    promote_buf_.clear();
    wheel_.rotate_into(promote_buf_);
    for (const Entry& e : promote_buf_) {
      if (entry_dead(e)) continue;  // canceled in its bucket: never heapified
      heap_.push_back(e);
      std::push_heap(heap_.begin(), heap_.end(), Later{});
    }
  }
}

SimTime EventQueue::next_time() const {
  settle();
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time: empty");
  return heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  settle();
  if (heap_.empty()) throw std::logic_error("EventQueue::pop: empty");
  const Entry top = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
  Fired fired{top.time, make_id(top.slot, top.generation),
              std::move(fns_[top.slot])};
  release(top.slot);
  return fired;
}

}  // namespace gridsub::sim
