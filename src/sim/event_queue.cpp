#include "sim/event_queue.hpp"

#include <stdexcept>

namespace gridsub::sim {

EventId EventQueue::push(SimTime time, std::function<void()> fn,
                         bool daemon) {
  const EventId id = next_id_++;
  heap_.push({time, id});
  callbacks_.emplace(id, Callback{std::move(fn), daemon});
  if (!daemon) ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  if (!it->second.daemon) --live_count_;
  callbacks_.erase(it);  // heap entry is dropped lazily
  return true;
}

void EventQueue::drop_canceled() const {
  while (!heap_.empty() &&
         callbacks_.find(heap_.top().id) == callbacks_.end()) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  drop_canceled();
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time: empty");
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_canceled();
  if (heap_.empty()) throw std::logic_error("EventQueue::pop: empty");
  const Entry top = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(top.id);
  Fired fired{top.time, top.id, std::move(it->second.fn)};
  if (!it->second.daemon) --live_count_;
  callbacks_.erase(it);
  return fired;
}

}  // namespace gridsub::sim
