#include "sim/event_queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace gridsub::sim {

namespace {

/// Below this heap size, canceled residue is too small to matter; skipping
/// compaction keeps the common small-queue path branch-cheap.
constexpr std::size_t kCompactionFloor = 64;

}  // namespace

EventId EventQueue::push(SimTime time, std::function<void()> fn,
                         bool daemon) {
  const EventId id = next_id_++;
  heap_.push_back({time, id});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  callbacks_.emplace(id, Callback{std::move(fn), daemon});
  if (!daemon) ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  if (!it->second.daemon) --live_count_;
  callbacks_.erase(it);  // heap entry is dropped lazily...
  // ...unless dead entries outnumber live ones: then filter the heap in
  // place, which bounds it at O(live) under cancel/reschedule storms.
  if (heap_.size() > kCompactionFloor &&
      heap_.size() > 2 * callbacks_.size()) {
    compact();
  }
  return true;
}

void EventQueue::compact() {
  std::erase_if(heap_, [this](const Entry& e) {
    return callbacks_.find(e.id) == callbacks_.end();
  });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
}

void EventQueue::drop_canceled() const {
  while (!heap_.empty() &&
         callbacks_.find(heap_.front().id) == callbacks_.end()) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

SimTime EventQueue::next_time() const {
  drop_canceled();
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time: empty");
  return heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_canceled();
  if (heap_.empty()) throw std::logic_error("EventQueue::pop: empty");
  const Entry top = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
  auto it = callbacks_.find(top.id);
  Fired fired{top.time, top.id, std::move(it->second.fn)};
  if (!it->second.daemon) --live_count_;
  callbacks_.erase(it);
  return fired;
}

}  // namespace gridsub::sim
