#include "sim/grid.hpp"

#include <stdexcept>
#include <string>

namespace gridsub::sim {

GridConfig GridConfig::egee_like() {
  GridConfig config;
  // Heterogeneous sites: a couple of large centres, several mid-sized,
  // a few small, with varying reliability — mirroring the federated,
  // independently-configured centres the paper describes.
  config.elements = {
      {200, 0.005}, {160, 0.01}, {120, 0.01}, {100, 0.02}, {80, 0.02},
      {64, 0.03},   {48, 0.02},  {40, 0.04},  {32, 0.03},  {24, 0.05},
      {16, 0.04},   {12, 0.06},
  };
  config.wms.network.hops = 5;
  config.wms.network.hop_mean = 25.0;
  config.wms.network.hop_shape = 1.2;  // high per-hop variability
  config.wms.info_refresh_period = 300.0;
  config.wms.fault_prob = 0.015;
  config.wms.dispatch = WmsConfig::Dispatch::kLeastLoaded;
  config.background.arrival_rate = 0.45;
  config.background.runtime_mean = 2200.0;
  config.background.runtime_sigma_log = 1.1;
  return config;
}

GridSimulation::GridSimulation(const GridConfig& config)
    : sim_(config.timer_wheel), root_rng_(config.seed) {
  if (config.elements.empty()) {
    throw std::invalid_argument("GridSimulation: no computing elements");
  }
  ces_.reserve(config.elements.size());
  std::vector<ComputingElement*> raw;
  raw.reserve(config.elements.size());
  for (std::size_t i = 0; i < config.elements.size(); ++i) {
    const auto& spec = config.elements[i];
    ces_.push_back(std::make_unique<ComputingElement>(
        sim_, "ce-" + std::to_string(i), spec.slots, spec.fault_prob,
        root_rng_.split(), &metrics_));
    raw.push_back(ces_.back().get());
  }
  wms_ = std::make_unique<WorkloadManager>(sim_, std::move(raw), config.wms,
                                           root_rng_.split(), &metrics_);
  background_ = std::make_unique<BackgroundLoad>(
      sim_, *wms_, config.background, root_rng_.split());
}

ReplayLoad& GridSimulation::attach_replay(const traces::Workload& workload,
                                          const ReplayLoadConfig& config) {
  replays_.push_back(std::make_unique<ReplayLoad>(sim_, *wms_, workload,
                                                  config, root_rng_.split()));
  return *replays_.back();
}

void GridSimulation::warm_up(SimTime duration) {
  if (duration < 0.0) {
    throw std::invalid_argument("GridSimulation::warm_up: negative duration");
  }
  sim_.run_until(sim_.now() + duration);
}

}  // namespace gridsub::sim
