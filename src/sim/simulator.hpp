#pragma once

// Discrete-event simulation engine.
//
// Single-threaded and deterministic: components schedule callbacks,
// run()/run_until() advances the clock monotonically. All grid components
// (WMS, computing elements, clients) hold a reference to one Simulator.
//
// Periodic housekeeping (e.g. the WMS load-information refresh) is
// scheduled as *daemon* events: they fire in time order like any other
// event but do not keep run() alive, so a simulation terminates once all
// real work has drained.

#include "sim/event_queue.hpp"

namespace gridsub::sim {

class Simulator {
 public:
  /// `wheel` tunes (or disables) the far-event timer wheel inside the
  /// event queue; the default is on and byte-identical to heap-only.
  explicit Simulator(const TimerWheelConfig& wheel = {}) : queue_(wheel) {}

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules at an absolute time (>= now).
  EventId schedule_at(SimTime time, SmallFn fn);

  /// Schedules `delay` seconds from now (delay >= 0).
  EventId schedule_in(SimTime delay, SmallFn fn);

  /// Daemon variants: the event fires normally but does not keep run()
  /// alive (use for self-rescheduling housekeeping).
  EventId schedule_daemon_at(SimTime time, SmallFn fn);
  EventId schedule_daemon_in(SimTime delay, SmallFn fn);

  /// Cancels a pending event; false if it already fired or was canceled.
  bool cancel(EventId id);

  /// Runs until no non-daemon events remain.
  void run();

  /// Runs all events with time <= t_end, then sets the clock to t_end.
  void run_until(SimTime t_end);

  /// Number of events executed so far.
  [[nodiscard]] std::size_t processed_events() const { return processed_; }

  /// Live events still scheduled (daemons included).
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

 private:
  void step();

  EventQueue queue_;
  SimTime now_ = 0.0;
  std::size_t processed_ = 0;
};

}  // namespace gridsub::sim
