#pragma once

// Strategy clients: the paper's three submission strategies executed with
// real cancel semantics against the simulated grid.
//
// Unlike the Monte Carlo engine (which samples latencies from a model),
// these clients interact with the live infrastructure: their cancellations
// free queue slots, their resubmissions add load, and — in the feedback
// experiment — many concurrent strategy clients perturb each other, the
// paper's stated future work.
//
// Built to be instantiated 10^5-10^6 times in one simulation
// (bench_scale_million): per-round protocol state is a fixed block of hot
// members reused across rounds — no shared_ptr round objects, no per-round
// allocation — with a monotone round counter as the staleness guard:
// callbacks capture the round they belong to and no-op when the client has
// moved on, which is observably identical to the historical
// fresh-state-per-round scheme (the old `settled` flag *is* a round
// mismatch). Means are folded incrementally (same Kahan order as summing
// the stored outcomes), so with `record_outcomes = false` a client costs
// O(1) memory regardless of task count.

#include <cstdint>
#include <vector>

#include "core/strategy.hpp"
#include "numerics/kahan.hpp"
#include "sim/grid.hpp"

namespace gridsub::sim {

/// Parameters of the client-side protocol for one task stream.
struct StrategySpec {
  core::StrategyKind kind = core::StrategyKind::kSingleResubmission;
  double t_inf = 900.0;  ///< timeout (all strategies)
  double t0 = 600.0;     ///< delayed only
  int b = 1;             ///< multiple only
};

/// Outcome of one task (one logical job pushed through the strategy).
struct TaskOutcome {
  double total_latency = 0.0;  ///< J: submission of first copy -> first start
  int submissions = 0;         ///< copies submitted for this task
};

/// Runs `n_tasks` sequentially: task i+1 begins when task i's job has
/// started. Designed so several clients can share one grid.
class StrategyClient {
 public:
  /// `record_outcomes = false` keeps only the running means — the
  /// configuration for million-client runs, where per-task vectors would
  /// dominate memory. Aggregate accessors are unaffected.
  StrategyClient(GridSimulation& grid, StrategySpec spec,
                 std::size_t n_tasks, double task_runtime = 1.0,
                 bool record_outcomes = true);

  StrategyClient(const StrategyClient&) = delete;
  StrategyClient& operator=(const StrategyClient&) = delete;

  /// Begins the first task.
  void start();

  [[nodiscard]] bool done() const { return completed_ >= n_tasks_; }
  [[nodiscard]] std::size_t tasks_done() const { return completed_; }
  /// Per-task records; empty when constructed with record_outcomes=false.
  [[nodiscard]] const std::vector<TaskOutcome>& outcomes() const {
    return outcomes_;
  }

  /// Mean total latency over finished tasks.
  [[nodiscard]] double mean_latency() const;
  /// Mean submissions per task.
  [[nodiscard]] double mean_submissions() const;

 private:
  /// One in-flight delayed-strategy copy; live_ stays sorted by index
  /// because copies are appended in submission order (matching the
  /// historical std::map<int, Copy> iteration order).
  struct DelayedCopy {
    int index = 0;
    WorkloadManager::TicketId ticket = 0;
    EventId timeout_event = 0;
  };

  void start_task();
  void begin_single_round();
  void begin_multiple_round();
  void delayed_submit_copy();
  /// Records the task (incremental Kahan fold, completion order) and
  /// starts the next one.
  void finish_task(double latency);

  GridSimulation& grid_;
  StrategySpec spec_;
  std::size_t n_tasks_;
  double task_runtime_;
  bool record_outcomes_;

  // --- hot per-round protocol state, reused across rounds -------------
  /// Staleness guard: bumped whenever outstanding callbacks must die
  /// (round settled, timed out, or a new task began). Callbacks capture
  /// the value at arm time and no-op on mismatch.
  std::uint64_t round_ = 0;
  SimTime task_start_ = 0.0;
  int submissions_ = 0;  ///< copies submitted for the current task
  WorkloadManager::TicketId ticket_ = 0;             // single
  std::vector<WorkloadManager::TicketId> tickets_;   // multiple (reused)
  EventId timeout_event_ = 0;                        // single & multiple
  std::vector<DelayedCopy> live_;                    // delayed (reused)
  EventId next_submit_event_ = 0;                    // delayed chain
  int next_index_ = 0;                               // delayed copy counter

  // --- aggregates -----------------------------------------------------
  std::size_t completed_ = 0;
  numerics::KahanAccumulator latency_acc_;
  numerics::KahanAccumulator submissions_acc_;
  std::vector<TaskOutcome> outcomes_;
};

}  // namespace gridsub::sim
