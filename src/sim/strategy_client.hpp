#pragma once

// Strategy clients: the paper's three submission strategies executed with
// real cancel semantics against the simulated grid.
//
// Unlike the Monte Carlo engine (which samples latencies from a model),
// these clients interact with the live infrastructure: their cancellations
// free queue slots, their resubmissions add load, and — in the feedback
// experiment — many concurrent strategy clients perturb each other, the
// paper's stated future work.

#include <functional>
#include <memory>
#include <vector>

#include "core/strategy.hpp"
#include "sim/grid.hpp"

namespace gridsub::sim {

/// Parameters of the client-side protocol for one task stream.
struct StrategySpec {
  core::StrategyKind kind = core::StrategyKind::kSingleResubmission;
  double t_inf = 900.0;  ///< timeout (all strategies)
  double t0 = 600.0;     ///< delayed only
  int b = 1;             ///< multiple only
};

/// Outcome of one task (one logical job pushed through the strategy).
struct TaskOutcome {
  double total_latency = 0.0;  ///< J: submission of first copy -> first start
  int submissions = 0;         ///< copies submitted for this task
};

/// Runs `n_tasks` sequentially: task i+1 begins when task i's job has
/// started. Designed so several clients can share one grid.
class StrategyClient {
 public:
  StrategyClient(GridSimulation& grid, StrategySpec spec,
                 std::size_t n_tasks, double task_runtime = 1.0);

  StrategyClient(const StrategyClient&) = delete;
  StrategyClient& operator=(const StrategyClient&) = delete;

  /// Begins the first task.
  void start();

  [[nodiscard]] bool done() const {
    return outcomes_.size() >= n_tasks_;
  }
  [[nodiscard]] const std::vector<TaskOutcome>& outcomes() const {
    return outcomes_;
  }

  /// Mean total latency over finished tasks.
  [[nodiscard]] double mean_latency() const;
  /// Mean submissions per task.
  [[nodiscard]] double mean_submissions() const;

 private:
  void start_task();
  void run_single_round(std::shared_ptr<TaskOutcome> outcome,
                        SimTime task_start);
  void run_multiple_round(std::shared_ptr<TaskOutcome> outcome,
                          SimTime task_start);
  void run_delayed(std::shared_ptr<TaskOutcome> outcome, SimTime task_start);
  void finish_task(const TaskOutcome& outcome);

  GridSimulation& grid_;
  StrategySpec spec_;
  std::size_t n_tasks_;
  double task_runtime_;
  std::vector<TaskOutcome> outcomes_;
};

}  // namespace gridsub::sim
