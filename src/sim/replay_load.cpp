#include "sim/replay_load.hpp"

#include <cmath>
#include <stdexcept>

namespace gridsub::sim {

ReplayLoad::ReplayLoad(Simulator& sim, WorkloadManager& wms,
                       const traces::Workload& workload,
                       const ReplayLoadConfig& config, stats::Rng rng)
    : sim_(sim), wms_(wms), workload_(workload), config_(config), rng_(rng) {
  if (!(config.time_scale > 0.0)) {
    throw std::invalid_argument("ReplayLoad: time_scale must be > 0");
  }
  if (!(config.load_multiplier >= 0.0)) {
    throw std::invalid_argument("ReplayLoad: load_multiplier must be >= 0");
  }
  if (workload_.empty()) {
    throw std::invalid_argument("ReplayLoad: empty workload");
  }
  workload_.sort_by_arrival();
  start_time_ = sim_.now();
  // Splice looped passes with one mean inter-arrival gap so the seam does
  // not create a double arrival at the same instant. A degenerate workload
  // (every arrival at the same time, duration 0) gets a 1 s seam — without
  // it, looping would reschedule forever at one sim instant and run()
  // would never return.
  const double duration = workload_.duration();
  loop_gap_ = duration > 0.0
                  ? duration / static_cast<double>(workload_.size())
                  : 1.0;
  schedule_next();
}

void ReplayLoad::stop() { stopped_ = true; }

void ReplayLoad::schedule_next() {
  if (stopped_) return;
  if (next_index_ >= workload_.size()) {
    if (!config_.loop) {
      exhausted_ = true;
      return;
    }
    next_index_ = 0;
    loop_offset_ += workload_.duration() + loop_gap_;
  }
  const auto& job = workload_.jobs()[next_index_];
  const double at =
      start_time_ + (loop_offset_ + job.arrival) / config_.time_scale;
  sim_.schedule_at(std::max(at, sim_.now()), [this]() {
    if (stopped_) return;
    emit_current();
    ++next_index_;
    schedule_next();
  });
}

void ReplayLoad::emit_current() {
  const auto& job = workload_.jobs()[next_index_];
  ++consumed_;
  // Expected copies == load_multiplier: always the integer part, plus one
  // more with the fractional probability (seed-deterministic).
  const double copies_f = config_.load_multiplier;
  auto copies = static_cast<std::uint64_t>(std::floor(copies_f));
  const double frac = copies_f - std::floor(copies_f);
  if (frac > 0.0 && rng_.bernoulli(frac)) ++copies;
  for (std::uint64_t c = 0; c < copies; ++c) {
    wms_.submit(job.runtime, nullptr);
    ++emitted_;
  }
}

}  // namespace gridsub::sim
