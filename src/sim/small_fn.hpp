#pragma once

// Small-buffer event callback.
//
// The DES hot path schedules millions of short-lived callbacks per
// simulated week (job completions, client timeouts, the WMS refresh).
// std::function's inline buffer (16 bytes on libstdc++) is too small for
// the real capture sets — ComputingElement's completion lambda alone
// carries an object pointer, a job handle and a stored std::function — so
// every schedule paid a heap allocation. SmallFn is a move-only callable
// with a 64-byte inline buffer sized for those captures; larger or
// throwing-move callables fall back to the heap transparently, so
// correctness never depends on the capture size.
//
// Dispatch is one table of three function pointers per callable type
// (invoke / relocate / destroy), chosen at construction — no virtual
// bases, no RTTI, and moving a SmallFn relocates the inline object
// without touching the heap.

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace gridsub::sim {

class SmallFn {
 public:
  /// Inline capacity: fits the simulation's biggest hot capture set
  /// (pointer + 64-bit handle + a 32-byte std::function) with headroom.
  static constexpr std::size_t kInlineSize = 64;

  SmallFn() noexcept = default;
  SmallFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, SmallFn> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &heap_ops<Fn>;
    }
  }

  SmallFn(SmallFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  /// Invokes the stored callable; requires *this to be non-empty.
  void operator()() { ops_->invoke(buf_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  /// True when a callable of type F is stored in the inline buffer (no
  /// heap). Exposed so the regression tests can pin the no-allocation
  /// guarantee for the simulation's hot capture sizes.
  template <typename F>
  [[nodiscard]] static constexpr bool stores_inline() {
    return fits_inline<std::remove_cvref_t<F>>();
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* self) noexcept;
  };

  template <typename Fn>
  [[nodiscard]] static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineSize &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  template <typename Fn>
  static constexpr Ops inline_ops{
      [](void* self) { (*std::launder(reinterpret_cast<Fn*>(self)))(); },
      [](void* dst, void* src) noexcept {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* self) noexcept {
        std::launder(reinterpret_cast<Fn*>(self))->~Fn();
      }};

  template <typename Fn>
  static constexpr Ops heap_ops{
      [](void* self) { (**std::launder(reinterpret_cast<Fn**>(self)))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](void* self) noexcept {
        delete *std::launder(reinterpret_cast<Fn**>(self));
      }};

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace gridsub::sim
