#pragma once

// Background workload generator.
//
// EGEE sites serve thousands of concurrent users; probe campaigns and
// strategy clients see queues that are already busy. This component feeds
// Poisson job arrivals with heavy-tailed runtimes into the grid (through
// the WMS, like any other user), parameterized by an arrival rate that the
// feedback experiment sweeps.

#include "sim/wms.hpp"
#include "stats/distribution.hpp"
#include "stats/rng.hpp"

namespace gridsub::sim {

struct BackgroundLoadConfig {
  double arrival_rate = 0.5;  ///< jobs per second (Poisson)
  double runtime_mean = 1800.0;
  double runtime_sigma_log = 1.0;  ///< log-normal runtime shape
};

class BackgroundLoad {
 public:
  /// Starts emitting immediately; runs for the whole simulation.
  BackgroundLoad(Simulator& sim, WorkloadManager& wms,
                 const BackgroundLoadConfig& config, stats::Rng rng);

  BackgroundLoad(const BackgroundLoad&) = delete;
  BackgroundLoad& operator=(const BackgroundLoad&) = delete;

  /// Stops scheduling further arrivals (pending ones still run).
  void stop();

  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }

 private:
  void schedule_next();

  Simulator& sim_;
  WorkloadManager& wms_;
  BackgroundLoadConfig config_;
  stats::Rng rng_;
  stats::DistributionPtr runtime_dist_;
  bool stopped_ = false;
  std::uint64_t emitted_ = 0;
};

}  // namespace gridsub::sim
