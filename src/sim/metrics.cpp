#include "sim/metrics.hpp"

// Header-only counters; this TU exists to keep the module layout uniform.

namespace gridsub::sim {

// (intentionally empty)

}  // namespace gridsub::sim
