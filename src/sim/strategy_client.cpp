#include "sim/strategy_client.hpp"

#include <algorithm>
#include <stdexcept>

namespace gridsub::sim {

StrategyClient::StrategyClient(GridSimulation& grid, StrategySpec spec,
                               std::size_t n_tasks, double task_runtime,
                               bool record_outcomes)
    : grid_(grid),
      spec_(spec),
      n_tasks_(n_tasks),
      task_runtime_(task_runtime),
      record_outcomes_(record_outcomes) {
  if (n_tasks == 0) throw std::invalid_argument("StrategyClient: no tasks");
  if (!(spec.t_inf > 0.0)) {
    throw std::invalid_argument("StrategyClient: t_inf <= 0");
  }
  if (spec.kind == core::StrategyKind::kMultipleSubmission && spec.b < 1) {
    throw std::invalid_argument("StrategyClient: b < 1");
  }
  if (spec.kind == core::StrategyKind::kDelayedResubmission &&
      !(spec.t0 > 0.0 && spec.t0 < spec.t_inf &&
        spec.t_inf <= 2.0 * spec.t0 * (1.0 + 1e-9))) {
    throw std::invalid_argument(
        "StrategyClient: delayed requires 0 < t0 < t_inf <= 2*t0");
  }
  if (record_outcomes_) outcomes_.reserve(n_tasks);
}

void StrategyClient::start() { start_task(); }

void StrategyClient::start_task() {
  if (completed_ >= n_tasks_) return;
  ++round_;  // any straggler callbacks from the previous task go stale
  task_start_ = grid_.simulator().now();
  submissions_ = 0;
  next_index_ = 0;
  live_.clear();
  switch (spec_.kind) {
    case core::StrategyKind::kSingleResubmission:
      begin_single_round();
      break;
    case core::StrategyKind::kMultipleSubmission:
      begin_multiple_round();
      break;
    case core::StrategyKind::kDelayedResubmission:
      delayed_submit_copy();
      break;
  }
}

void StrategyClient::finish_task(double latency) {
  ++completed_;
  latency_acc_.add(latency);
  submissions_acc_.add(submissions_);
  if (record_outcomes_) outcomes_.push_back({latency, submissions_});
  start_task();
}

void StrategyClient::begin_single_round() {
  ++round_;
  const std::uint64_t round = round_;
  ++submissions_;
  auto& sim = grid_.simulator();
  ticket_ = grid_.wms().submit(task_runtime_, [this, round]() {
    if (round != round_) return;
    ++round_;  // settled: the pending timeout is now stale
    grid_.simulator().cancel(timeout_event_);
    finish_task(grid_.simulator().now() - task_start_);
  });
  timeout_event_ = sim.schedule_in(spec_.t_inf, [this, round]() {
    if (round != round_) return;
    ++round_;  // a late start of this round must not double-settle
    grid_.wms().cancel(ticket_);
    begin_single_round();  // resubmit
  });
}

void StrategyClient::begin_multiple_round() {
  ++round_;
  const std::uint64_t round = round_;
  tickets_.clear();
  auto& sim = grid_.simulator();
  for (int i = 0; i < spec_.b; ++i) {
    ++submissions_;
    const auto ticket =
        grid_.wms().submit(task_runtime_, [this, round, i]() {
          if (round != round_) return;
          // Settle *before* cancelling: freeing a sibling's queue slot can
          // synchronously start another of our copies, which must see the
          // round as over.
          ++round_;
          grid_.simulator().cancel(timeout_event_);
          for (int j = 0; j < static_cast<int>(tickets_.size()); ++j) {
            if (j != i) grid_.wms().cancel(tickets_[j]);
          }
          finish_task(grid_.simulator().now() - task_start_);
        });
    tickets_.push_back(ticket);
  }
  timeout_event_ = sim.schedule_in(spec_.t_inf, [this, round]() {
    if (round != round_) return;
    ++round_;  // see above: cancels below may reentrantly start our copies
    for (const auto t : tickets_) grid_.wms().cancel(t);
    begin_multiple_round();  // resubmit collection
  });
}

/// Submits delayed copy `k` (at time task_start + k*t0) and schedules copy
/// k+1 one period later; the chain runs until some copy starts, which
/// settles the task and cancels everything outstanding.
void StrategyClient::delayed_submit_copy() {
  const std::uint64_t round = round_;
  auto& sim = grid_.simulator();
  const int k = next_index_++;
  ++submissions_;
  const auto ticket =
      grid_.wms().submit(task_runtime_, [this, round, k]() {
        if (round != round_) return;
        ++round_;  // settled (and cancels below may reenter us)
        auto& s = grid_.simulator();
        s.cancel(next_submit_event_);
        for (const DelayedCopy& copy : live_) {
          s.cancel(copy.timeout_event);
          if (copy.index != k) grid_.wms().cancel(copy.ticket);
        }
        live_.clear();
        finish_task(s.now() - task_start_);
      });
  const EventId timeout = sim.schedule_in(spec_.t_inf, [this, round, k]() {
    if (round != round_) return;
    const auto it = std::find_if(
        live_.begin(), live_.end(),
        [k](const DelayedCopy& copy) { return copy.index == k; });
    if (it == live_.end()) return;
    const auto timed_out_ticket = it->ticket;
    grid_.wms().cancel(timed_out_ticket);
    // The cancel can reentrantly start a sibling copy and settle the
    // task, clearing live_; re-check before touching the iterator.
    if (round != round_) return;
    live_.erase(std::find_if(
        live_.begin(), live_.end(),
        [k](const DelayedCopy& copy) { return copy.index == k; }));
  });
  live_.push_back({k, ticket, timeout});
  next_submit_event_ = sim.schedule_at(
      task_start_ + static_cast<double>(next_index_) * spec_.t0,
      [this, round]() {
        if (round != round_) return;
        delayed_submit_copy();
      });
}

double StrategyClient::mean_latency() const {
  if (completed_ == 0) return 0.0;
  return latency_acc_.value() / static_cast<double>(completed_);
}

double StrategyClient::mean_submissions() const {
  if (completed_ == 0) return 0.0;
  return submissions_acc_.value() / static_cast<double>(completed_);
}

}  // namespace gridsub::sim
