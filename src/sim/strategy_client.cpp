#include "sim/strategy_client.hpp"

#include <map>
#include <stdexcept>

#include "numerics/kahan.hpp"

namespace gridsub::sim {

StrategyClient::StrategyClient(GridSimulation& grid, StrategySpec spec,
                               std::size_t n_tasks, double task_runtime)
    : grid_(grid),
      spec_(spec),
      n_tasks_(n_tasks),
      task_runtime_(task_runtime) {
  if (n_tasks == 0) throw std::invalid_argument("StrategyClient: no tasks");
  if (!(spec.t_inf > 0.0)) {
    throw std::invalid_argument("StrategyClient: t_inf <= 0");
  }
  if (spec.kind == core::StrategyKind::kMultipleSubmission && spec.b < 1) {
    throw std::invalid_argument("StrategyClient: b < 1");
  }
  if (spec.kind == core::StrategyKind::kDelayedResubmission &&
      !(spec.t0 > 0.0 && spec.t0 < spec.t_inf &&
        spec.t_inf <= 2.0 * spec.t0 * (1.0 + 1e-9))) {
    throw std::invalid_argument(
        "StrategyClient: delayed requires 0 < t0 < t_inf <= 2*t0");
  }
  outcomes_.reserve(n_tasks);
}

void StrategyClient::start() { start_task(); }

void StrategyClient::start_task() {
  if (outcomes_.size() >= n_tasks_) return;
  const SimTime task_start = grid_.simulator().now();
  auto outcome = std::make_shared<TaskOutcome>();
  switch (spec_.kind) {
    case core::StrategyKind::kSingleResubmission:
      run_single_round(outcome, task_start);
      break;
    case core::StrategyKind::kMultipleSubmission:
      run_multiple_round(outcome, task_start);
      break;
    case core::StrategyKind::kDelayedResubmission:
      run_delayed(outcome, task_start);
      break;
  }
}

void StrategyClient::finish_task(const TaskOutcome& outcome) {
  outcomes_.push_back(outcome);
  start_task();
}

void StrategyClient::run_single_round(std::shared_ptr<TaskOutcome> outcome,
                                      SimTime task_start) {
  struct RoundState {
    bool settled = false;
    WorkloadManager::TicketId ticket = 0;
    EventId timeout_event = 0;
  };
  auto state = std::make_shared<RoundState>();
  ++outcome->submissions;
  auto& sim = grid_.simulator();
  state->ticket =
      grid_.wms().submit(task_runtime_, [this, state, outcome, task_start]() {
        if (state->settled) return;
        state->settled = true;
        grid_.simulator().cancel(state->timeout_event);
        outcome->total_latency = grid_.simulator().now() - task_start;
        finish_task(*outcome);
      });
  state->timeout_event =
      sim.schedule_in(spec_.t_inf, [this, state, outcome, task_start]() {
        if (state->settled) return;
        state->settled = true;
        grid_.wms().cancel(state->ticket);
        run_single_round(outcome, task_start);  // resubmit
      });
}

void StrategyClient::run_multiple_round(std::shared_ptr<TaskOutcome> outcome,
                                        SimTime task_start) {
  struct RoundState {
    bool settled = false;
    std::vector<WorkloadManager::TicketId> tickets;
    EventId timeout_event = 0;
  };
  auto state = std::make_shared<RoundState>();
  auto& sim = grid_.simulator();
  for (int i = 0; i < spec_.b; ++i) {
    ++outcome->submissions;
    const auto ticket = grid_.wms().submit(
        task_runtime_, [this, state, outcome, task_start, i]() {
          if (state->settled) return;
          state->settled = true;
          grid_.simulator().cancel(state->timeout_event);
          // Cancel the rest of the collection.
          for (int j = 0; j < static_cast<int>(state->tickets.size()); ++j) {
            if (j != i) grid_.wms().cancel(state->tickets[j]);
          }
          outcome->total_latency = grid_.simulator().now() - task_start;
          finish_task(*outcome);
        });
    state->tickets.push_back(ticket);
  }
  state->timeout_event =
      sim.schedule_in(spec_.t_inf, [this, state, outcome, task_start]() {
        if (state->settled) return;
        state->settled = true;
        for (const auto t : state->tickets) grid_.wms().cancel(t);
        run_multiple_round(outcome, task_start);  // resubmit collection
      });
}

void StrategyClient::run_delayed(std::shared_ptr<TaskOutcome> outcome,
                                 SimTime task_start) {
  struct Copy {
    WorkloadManager::TicketId ticket = 0;
    EventId timeout_event = 0;
  };
  struct DelayedState {
    bool settled = false;
    std::map<int, Copy> live;  // copy index -> handles
    EventId next_submit_event = 0;
    int next_index = 0;
  };
  auto state = std::make_shared<DelayedState>();

  // Submits copy `k` (at time task_start + k*t0) and schedules copy k+1.
  // The closure must not hold a strong reference to itself (that cycle
  // leaks); only the pending chain event in the queue keeps it alive.
  auto submit_copy = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_submit = submit_copy;
  *submit_copy = [this, state, outcome, task_start, weak_submit]() {
    if (state->settled) return;
    auto& sim = grid_.simulator();
    const int k = state->next_index++;
    ++outcome->submissions;
    Copy copy;
    copy.ticket = grid_.wms().submit(
        task_runtime_, [this, state, outcome, task_start, k]() {
          if (state->settled) return;
          state->settled = true;
          auto& s = grid_.simulator();
          s.cancel(state->next_submit_event);
          for (auto& [index, c] : state->live) {
            s.cancel(c.timeout_event);
            if (index != k) grid_.wms().cancel(c.ticket);
          }
          state->live.clear();
          outcome->total_latency = s.now() - task_start;
          finish_task(*outcome);
        });
    copy.timeout_event = sim.schedule_in(spec_.t_inf, [this, state, k]() {
      if (state->settled) return;
      auto it = state->live.find(k);
      if (it == state->live.end()) return;
      grid_.wms().cancel(it->second.ticket);
      state->live.erase(it);
    });
    state->live.emplace(k, copy);
    // Schedule the next copy one period later; the event's strong
    // reference is what keeps the recursive closure alive.
    auto self = weak_submit.lock();
    if (!self) return;
    state->next_submit_event = sim.schedule_at(
        task_start + static_cast<double>(state->next_index) * spec_.t0,
        [self]() { (*self)(); });
  };
  (*submit_copy)();
}

double StrategyClient::mean_latency() const {
  if (outcomes_.empty()) return 0.0;
  numerics::KahanAccumulator acc;
  for (const auto& o : outcomes_) acc.add(o.total_latency);
  return acc.value() / static_cast<double>(outcomes_.size());
}

double StrategyClient::mean_submissions() const {
  if (outcomes_.empty()) return 0.0;
  numerics::KahanAccumulator acc;
  for (const auto& o : outcomes_) acc.add(o.submissions);
  return acc.value() / static_cast<double>(outcomes_.size());
}

}  // namespace gridsub::sim
