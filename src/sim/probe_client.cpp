#include "sim/probe_client.hpp"

#include <memory>
#include <stdexcept>

namespace gridsub::sim {

ProbeClient::ProbeClient(GridSimulation& grid,
                         const ProbeCampaignConfig& config,
                         std::string trace_name)
    : grid_(grid),
      config_(config),
      trace_(std::move(trace_name), config.timeout) {
  if (config.n_probes == 0 || config.concurrent == 0) {
    throw std::invalid_argument("ProbeClient: empty campaign");
  }
}

void ProbeClient::start() {
  const std::size_t initial =
      std::min(config_.concurrent, config_.n_probes);
  for (std::size_t i = 0; i < initial; ++i) submit_probe();
}

void ProbeClient::submit_probe() {
  if (submitted_ >= config_.n_probes) return;
  ++submitted_;
  auto& sim = grid_.simulator();
  const SimTime submit_time = sim.now();

  // Shared one-shot state: whichever fires first (start vs timeout) wins.
  struct ProbeState {
    bool settled = false;
    WorkloadManager::TicketId ticket = 0;
    EventId timeout_event = 0;
  };
  auto state = std::make_shared<ProbeState>();

  state->ticket = grid_.wms().submit(
      config_.probe_runtime, [this, state, submit_time]() {
        if (state->settled) return;
        state->settled = true;
        grid_.simulator().cancel(state->timeout_event);
        trace_.add_completed(submit_time,
                             grid_.simulator().now() - submit_time);
        submit_probe();  // keep the in-flight count constant
      });
  state->timeout_event =
      sim.schedule_in(config_.timeout, [this, state, submit_time]() {
        if (state->settled) return;
        state->settled = true;
        grid_.wms().cancel(state->ticket);
        trace_.add_outlier(submit_time);
        submit_probe();
      });
}

}  // namespace gridsub::sim
