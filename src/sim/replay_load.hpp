#pragma once

// Trace-replay workload source.
//
// Drives the WorkloadManager from a *recorded* Workload (an SWF archive, a
// repo workload CSV, or a synthetic scenario) instead of the stationary
// Poisson BackgroundLoad. This is what makes the paper's §7 cross-week
// claim testable in the DES: the load the strategies face can follow a
// real diurnal cycle, a submission burst, or an outage backlog instead of
// a flat rate.
//
// Knobs:
//   time_scale      — replay speed: arrivals occur at recorded_t /
//                     time_scale, so 2.0 compresses a week into 3.5 days
//                     (denser load), 0.5 stretches it. Runtimes are not
//                     rescaled (use Workload::scale_runtime for that).
//   load_multiplier — expected submitted copies per recorded job: 2.0
//                     duplicates every arrival, 1.5 adds a second copy with
//                     probability one half (deterministic in the seed).
//   loop            — restart from the top when the log is exhausted, with
//                     one mean inter-arrival gap splicing the seams.

#include <cstdint>

#include "sim/wms.hpp"
#include "stats/rng.hpp"
#include "traces/workload.hpp"

namespace gridsub::sim {

struct ReplayLoadConfig {
  double time_scale = 1.0;       ///< > 0; see header comment
  double load_multiplier = 1.0;  ///< >= 0; expected copies per recorded job
  bool loop = false;             ///< repeat the workload indefinitely
};

class ReplayLoad {
 public:
  /// Copies (and sorts) the workload; starts emitting at the simulator's
  /// current time. Throws std::invalid_argument on bad knobs or an empty
  /// workload.
  ReplayLoad(Simulator& sim, WorkloadManager& wms,
             const traces::Workload& workload, const ReplayLoadConfig& config,
             stats::Rng rng);

  ReplayLoad(const ReplayLoad&) = delete;
  ReplayLoad& operator=(const ReplayLoad&) = delete;

  /// Stops scheduling further arrivals (pending ones still run).
  void stop();

  /// Jobs submitted to the WMS so far (after multiplication).
  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }

  /// Recorded jobs consumed so far (before multiplication; counts each
  /// loop pass).
  [[nodiscard]] std::uint64_t consumed() const { return consumed_; }

  /// True once the full log has been replayed (never true with loop).
  [[nodiscard]] bool exhausted() const { return exhausted_; }

 private:
  void schedule_next();
  void emit_current();

  Simulator& sim_;
  WorkloadManager& wms_;
  traces::Workload workload_;
  ReplayLoadConfig config_;
  stats::Rng rng_;
  double start_time_ = 0.0;   ///< sim time of the replay origin
  double loop_offset_ = 0.0;  ///< recorded-time shift of the current pass
  double loop_gap_ = 0.0;     ///< seam between passes (mean inter-arrival)
  std::size_t next_index_ = 0;
  std::uint64_t emitted_ = 0;
  std::uint64_t consumed_ = 0;
  bool exhausted_ = false;
  bool stopped_ = false;
};

}  // namespace gridsub::sim
