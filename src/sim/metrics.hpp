#pragma once

// Grid-wide counters, shared by the WMS and computing elements.
//
// Benches and the feedback example read these to quantify infrastructure
// load: how many jobs the brokers handled, how many were canceled (the
// administrators' complaint about aggressive strategies), queueing delays.

#include <cstdint>

namespace gridsub::sim {

struct GridMetrics {
  std::uint64_t jobs_submitted = 0;   ///< accepted by the WMS
  std::uint64_t jobs_dispatched = 0;  ///< handed to a computing element
  std::uint64_t jobs_started = 0;     ///< began execution on a worker
  std::uint64_t jobs_completed = 0;   ///< finished execution
  std::uint64_t jobs_canceled = 0;    ///< canceled by a client strategy
  std::uint64_t jobs_faulted = 0;     ///< lost to injected faults
  double total_queue_wait = 0.0;      ///< sum over started jobs (s)
  double total_matchmaking = 0.0;     ///< sum of WMS processing times (s)

  [[nodiscard]] double mean_queue_wait() const {
    return jobs_started ? total_queue_wait / static_cast<double>(jobs_started)
                        : 0.0;
  }
  [[nodiscard]] double cancel_fraction() const {
    return jobs_submitted ? static_cast<double>(jobs_canceled) /
                                static_cast<double>(jobs_submitted)
                          : 0.0;
  }
};

}  // namespace gridsub::sim
