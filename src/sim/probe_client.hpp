#pragma once

// Probe client: the paper's measurement methodology (§3.2) inside the DES.
//
// Keeps a constant number of near-zero-duration probes in flight: each
// time one starts executing (or hits the campaign timeout and is canceled)
// a replacement is submitted, so monitoring does not modulate the load.
// The collected Trace feeds the same modeling pipeline as the synthetic
// datasets — closing the loop probe → F̃ → strategy optimization entirely
// inside the repository.

#include "sim/grid.hpp"
#include "traces/trace.hpp"

namespace gridsub::sim {

struct ProbeCampaignConfig {
  std::size_t n_probes = 1000;       ///< total probes to record
  std::size_t concurrent = 10;       ///< constant in-flight count
  double timeout = 10000.0;          ///< outlier threshold (paper value)
  double probe_runtime = 1.0;        ///< /bin/hostname ≈ instantaneous
};

class ProbeClient {
 public:
  /// Binds to a grid; call start() then run the simulator.
  ProbeClient(GridSimulation& grid, const ProbeCampaignConfig& config,
              std::string trace_name = "probe-campaign");

  ProbeClient(const ProbeClient&) = delete;
  ProbeClient& operator=(const ProbeClient&) = delete;

  /// Submits the initial batch of probes.
  void start();

  /// True once n_probes results have been recorded.
  [[nodiscard]] bool done() const {
    return trace_.size() >= config_.n_probes;
  }

  [[nodiscard]] const traces::Trace& trace() const { return trace_; }

 private:
  void submit_probe();

  GridSimulation& grid_;
  ProbeCampaignConfig config_;
  traces::Trace trace_;
  std::size_t submitted_ = 0;
};

}  // namespace gridsub::sim
