#pragma once

// Network / middleware hop delays.
//
// The paper stresses that ~10 machines participate in a submission
// (credential delegation, match-making, file catalog, monitoring...). We
// model the aggregate per-hop overhead as gamma-distributed delays with a
// configurable hop count — enough to give the latency floor and bulk the
// probe campaigns observe.

#include "stats/gamma.hpp"
#include "stats/rng.hpp"

namespace gridsub::sim {

struct NetworkConfig {
  int hops = 4;              ///< middleware hops per submission
  double hop_mean = 8.0;     ///< mean delay per hop (s)
  double hop_shape = 2.0;    ///< gamma shape per hop (cv = 1/sqrt(shape))
};

/// Samples submission-path delays.
class NetworkModel {
 public:
  explicit NetworkModel(const NetworkConfig& config);

  /// Total delay across all hops for one traversal.
  [[nodiscard]] double sample_path_delay(stats::Rng& rng) const;

  [[nodiscard]] const NetworkConfig& config() const { return config_; }

 private:
  NetworkConfig config_;
  stats::GammaDist per_hop_;
};

}  // namespace gridsub::sim
