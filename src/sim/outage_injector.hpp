#pragma once

// Site-outage injection.
//
// The paper's §1 attributes a large share of grid faults to
// network/connectivity problems and local configuration issues — whole
// sites becoming unreachable for a while, not just per-job coin flips.
// This component gives each computing element an alternating up/down
// renewal process (exponential time-to-failure and time-to-repair):
// while a site is down, submissions to it are silently lost. Outages
// are scheduled as daemon events, so they never keep a simulation alive.

#include <cstdint>
#include <vector>

#include "sim/computing_element.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"

namespace gridsub::sim {

struct OutageConfig {
  double mean_time_to_failure = 250000.0;  ///< per site, exponential (s)
  double mean_outage_duration = 4000.0;    ///< per outage, exponential (s)
};

class OutageInjector {
 public:
  /// Arms the failure process on every element (all start up). The
  /// elements must outlive the injector.
  OutageInjector(Simulator& sim, std::vector<ComputingElement*> ces,
                 const OutageConfig& config, stats::Rng rng);

  OutageInjector(const OutageInjector&) = delete;
  OutageInjector& operator=(const OutageInjector&) = delete;

  /// Outages begun so far.
  [[nodiscard]] std::uint64_t outages() const { return outages_; }

  /// Sites currently down.
  [[nodiscard]] std::size_t down_count() const;

 private:
  void schedule_failure(std::size_t index);
  void schedule_repair(std::size_t index);

  Simulator& sim_;
  std::vector<ComputingElement*> ces_;
  OutageConfig config_;
  stats::Rng rng_;
  std::uint64_t outages_ = 0;
};

}  // namespace gridsub::sim
