#include "sim/timer_wheel.hpp"

#include <cassert>

namespace gridsub::sim {

TimerWheel::TimerWheel(const TimerWheelConfig& config) : config_(config) {
  assert(config_.tick_seconds > 0.0);
  assert(config_.near_ticks >= 1);
}

bool TimerWheel::try_insert(const TimerEntry& entry) {
  if (!config_.enabled) return false;
  const double near_end =
      cursor_time() + static_cast<double>(config_.near_ticks) * config_.tick_seconds;
  if (empty() && entry.time >= cursor_time() + range_seconds()) {
    // Idle wheel, far target: instead of declining (and stranding every
    // later far event on the heap), restart the window just behind the
    // target so it files at level 0. The cursor may only move while the
    // wheel is empty — filed entries' buckets are cursor-relative.
    const Tick target = tick_of(entry.time);
    if (target < kMaxTick) {
      cursor_ = target - config_.near_ticks;
      if (cursor_ < 0) cursor_ = 0;
    }
  }
  if (!(entry.time >= near_end)) return false;  // near (or NaN): heap
  if (entry.time >= cursor_time() + range_seconds()) return false;
  place(entry);
  return true;
}

void TimerWheel::place(const TimerEntry& entry) {
  const Tick tick = tick_of(entry.time);
  const Tick delta = tick - cursor_;
  assert(delta >= 0 && delta < kRangeTicks);
  int level = 0;
  while ((delta >> ((level + 1) * kLevelBits)) != 0) ++level;
  rings_[level][static_cast<std::size_t>((tick >> (level * kLevelBits)) & kBucketMask)]
      .push_back(entry);
  ++counts_[level];
}

void TimerWheel::cascade(int level) {
  auto& bucket =
      rings_[level][static_cast<std::size_t>((cursor_ >> (level * kLevelBits)) & kBucketMask)];
  if (bucket.empty()) return;
  counts_[level] -= bucket.size();
  scatter_.swap(bucket);  // bucket is now empty; place() may legally refile
                          // an entry into it (same index, next window)
  for (const TimerEntry& entry : scatter_) place(entry);
  scatter_.clear();
}

void TimerWheel::cascade_due() {
  // Coarser first: a tick on a level-2 window boundary is also on a
  // level-1 boundary, and its level-2 entries may need to pass through
  // the just-cascaded level-1 ring on their way down.
  if ((cursor_ & ((Tick{1} << (2 * kLevelBits)) - 1)) == 0) cascade(2);
  if ((cursor_ & kBucketMask) == 0) cascade(1);
}

void TimerWheel::rotate_into(std::vector<TimerEntry>& out) {
  assert(!empty());
  for (;;) {
    cascade_due();
    if (counts_[0] > 0) {
      auto& bucket = rings_[0][static_cast<std::size_t>(cursor_ & kBucketMask)];
      if (!bucket.empty()) {
        counts_[0] -= bucket.size();
        out.insert(out.end(), bucket.begin(), bucket.end());
        bucket.clear();
        ++cursor_;
        return;
      }
      ++cursor_;
      continue;
    }
    // Level 0 drained: jump ring-wise. Skipped ticks carry no entries and
    // no due cascades — the next finer-than-target boundary is exactly the
    // jump target, so nothing is passed over.
    if (counts_[1] > 0) {
      cursor_ = ((cursor_ >> kLevelBits) + 1) << kLevelBits;
      continue;
    }
    cursor_ = ((cursor_ >> (2 * kLevelBits)) + 1) << (2 * kLevelBits);
  }
}

}  // namespace gridsub::sim
