#pragma once

// Cancellable discrete-event queue.
//
// Grid clients cancel jobs all the time (that is what the paper's
// strategies *are*), so cancellation is first-class: push() returns an id,
// cancel() lazily invalidates it. Ties in time are broken by insertion
// order, which keeps runs deterministic. Canceled entries are dropped
// lazily from the heap, but cancel() compacts it whenever dead entries
// outnumber live ones — a timeout strategy that cancels and reschedules
// for a whole simulated week keeps the heap at O(live), not O(canceled).
//
// Events come in two flavours. Regular events keep the simulation alive;
// *daemon* events are housekeeping (e.g. the WMS refreshing its stale load
// snapshot every two minutes) and do not: once only daemon events remain,
// the simulation is considered finished.

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace gridsub::sim {

/// Simulation clock time (seconds).
using SimTime = double;

/// Handle to a scheduled event.
using EventId = std::uint64_t;

class EventQueue {
 public:
  /// Schedules `fn` at `time`; returns a cancellation handle. Daemon
  /// events do not count towards liveness (see live_size()).
  EventId push(SimTime time, std::function<void()> fn, bool daemon = false);

  /// Cancels a pending event. Returns false if it already ran or was
  /// canceled.
  bool cancel(EventId id);

  /// True if no events (of either kind) remain.
  [[nodiscard]] bool empty() const { return callbacks_.empty(); }

  /// Number of live (non-canceled, not-yet-run) events, daemons included.
  [[nodiscard]] std::size_t size() const { return callbacks_.size(); }

  /// Number of live non-daemon events. The simulation is "done" when this
  /// reaches zero, even if periodic daemon events are still scheduled.
  [[nodiscard]] std::size_t live_size() const { return live_count_; }

  /// Heap entries currently allocated, canceled residue included. Bounded
  /// at max(compaction floor, 2 × size()) by cancel()-time compaction; the
  /// regression test for cancel-heavy strategies asserts this bound.
  [[nodiscard]] std::size_t queued() const { return heap_.size(); }

  /// Time of the earliest live event; requires !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Extracts the earliest live event. Requires !empty().
  struct Fired {
    SimTime time;
    EventId id;
    std::function<void()> fn;
  };
  Fired pop();

 private:
  struct Callback {
    std::function<void()> fn;
    bool daemon;
  };
  struct Entry {
    SimTime time;
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // FIFO among simultaneous events
    }
  };

  void drop_canceled() const;
  void compact();

  /// Min-heap (std::push_heap/pop_heap with Later) over a plain vector so
  /// compaction can filter dead entries in place in O(n).
  mutable std::vector<Entry> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
  EventId next_id_ = 1;
  std::size_t live_count_ = 0;
};

}  // namespace gridsub::sim
