#pragma once

// Cancellable discrete-event queue.
//
// Grid clients cancel jobs all the time (that is what the paper's
// strategies *are*), so cancellation is first-class: push() returns an id,
// cancel() lazily invalidates it. Ties in time are broken by insertion
// order, which keeps runs deterministic. Canceled entries are dropped
// lazily from the heap, but cancel() compacts it whenever dead entries
// outnumber live ones — a timeout strategy that cancels and reschedules
// for a whole simulated week keeps the heap at O(live), not O(canceled).
//
// Events come in two flavours. Regular events keep the simulation alive;
// *daemon* events are housekeeping (e.g. the WMS refreshing its stale load
// snapshot every two minutes) and do not: once only daemon events remain,
// the simulation is considered finished.
//
// Storage is a generation-checked slot map, not a hash map: an EventId is
// (generation << 32) | slot index, so push is a free-list pop + vector
// write and cancel is a bounds check + generation compare — no hashing,
// and (with SmallFn's inline buffer) no heap allocation for the common
// events. Freeing a slot bumps its generation, so a stale id whose slot
// was recycled fails the generation check instead of cancelling a
// stranger's event. Pop order is unchanged from the hash-map era: the heap
// breaks time ties by a monotone push sequence number, which is exactly
// the old monotone-id FIFO rule, so simulations replay byte-identically.

#include <cstdint>
#include <vector>

#include "sim/small_fn.hpp"

namespace gridsub::sim {

/// Simulation clock time (seconds).
using SimTime = double;

/// Handle to a scheduled event: (slot generation << 32) | slot index.
/// Generations start at 1, so a valid id is never 0 and callers may keep
/// using 0 as an "unset" sentinel.
using EventId = std::uint64_t;

class EventQueue {
 public:
  /// Schedules `fn` at `time`; returns a cancellation handle. Daemon
  /// events do not count towards liveness (see live_size()).
  EventId push(SimTime time, SmallFn fn, bool daemon = false);

  /// Cancels a pending event. Returns false if it already ran or was
  /// canceled — including when the event's slot has since been recycled
  /// for a newer event (the generation check rejects the stale id).
  bool cancel(EventId id);

  /// True if no events (of either kind) remain.
  [[nodiscard]] bool empty() const { return alive_ == 0; }

  /// Number of live (non-canceled, not-yet-run) events, daemons included.
  [[nodiscard]] std::size_t size() const { return alive_; }

  /// Number of live non-daemon events. The simulation is "done" when this
  /// reaches zero, even if periodic daemon events are still scheduled.
  [[nodiscard]] std::size_t live_size() const { return live_count_; }

  /// Heap entries currently allocated, canceled residue included. Bounded
  /// at max(compaction floor, 2 × size()) by cancel()-time compaction; the
  /// regression test for cancel-heavy strategies asserts this bound.
  [[nodiscard]] std::size_t queued() const { return heap_.size(); }

  /// Time of the earliest live event; requires !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Extracts the earliest live event. Requires !empty().
  struct Fired {
    SimTime time;
    EventId id;
    SmallFn fn;
  };
  Fired pop();

 private:
  static constexpr std::uint32_t kNilIndex = 0xFFFFFFFFu;

  /// One event slot. Freed slots are chained through `next_free`; the
  /// generation is bumped on release so ids referring to the old tenant
  /// go stale.
  struct Slot {
    SmallFn fn;
    std::uint32_t generation = 1;
    std::uint32_t next_free = kNilIndex;
    bool live = false;
    bool daemon = false;
  };
  struct Entry {
    SimTime time;
    std::uint64_t seq;  ///< monotone push counter: FIFO tie-break
    std::uint32_t slot;
    std::uint32_t generation;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;  // FIFO among simultaneous events
    }
  };

  [[nodiscard]] bool entry_dead(const Entry& e) const {
    const Slot& s = slots_[e.slot];
    return !s.live || s.generation != e.generation;
  }
  /// Returns the slot to the free list and invalidates outstanding ids.
  void release(std::uint32_t index);
  void drop_canceled() const;
  void compact();

  /// Min-heap (std::push_heap/pop_heap with Later) over a plain vector so
  /// compaction can filter dead entries in place in O(n).
  mutable std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNilIndex;
  std::uint64_t next_seq_ = 1;
  std::size_t alive_ = 0;       ///< occupied slots (daemons included)
  std::size_t live_count_ = 0;  ///< occupied non-daemon slots
};

}  // namespace gridsub::sim
