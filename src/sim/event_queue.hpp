#pragma once

// Cancellable discrete-event queue.
//
// Grid clients cancel jobs all the time (that is what the paper's
// strategies *are*), so cancellation is first-class: push() returns an id,
// cancel() lazily invalidates it. Ties in time are broken by insertion
// order, which keeps runs deterministic. Canceled entries are dropped
// lazily, but cancel() compacts whenever dead entries outnumber live ones
// — a timeout strategy that cancels and reschedules for a whole simulated
// week keeps the structures at O(live), not O(canceled).
//
// Events come in two flavours. Regular events keep the simulation alive;
// *daemon* events are housekeeping (e.g. the WMS refreshing its stale load
// snapshot every two minutes) and do not: once only daemon events remain,
// the simulation is considered finished.
//
// Storage is a generation-checked slot map, not a hash map: an EventId is
// (generation << 32) | slot index, so push is a free-list pop + vector
// write and cancel is a bounds check + generation compare — no hashing,
// and (with SmallFn's inline buffer) no heap allocation for the common
// events. Slot state is struct-of-arrays: the 12-byte metadata the heap
// and compaction scans actually read (generation, liveness, free chain)
// lives apart from the 64-byte SmallFn payload, which only pop() touches.
// Freeing a slot bumps its generation, so a stale id whose slot was
// recycled fails the generation check instead of cancelling a stranger's
// event.
//
// Ordering is two-tier. Near-future events sit on a binary heap; far-future
// ones (the t_inf timeout armada that delayed/multiple strategies arm and
// usually cancel) go to a hierarchical timer wheel (timer_wheel.hpp) where
// arm and cancel are O(1) and never sift the heap. settle() promotes wheel
// buckets into the heap strictly before their window can contain the global
// minimum, and promoted entries carry their original push sequence number,
// so pop order — including the monotone-seq FIFO tie-break — is
// byte-identical to a heap-only build (construct with enabled=false for the
// reference path).

#include <cstdint>
#include <vector>

#include "sim/small_fn.hpp"
#include "sim/timer_wheel.hpp"

namespace gridsub::sim {

/// Simulation clock time (seconds).
using SimTime = double;

/// Handle to a scheduled event: (slot generation << 32) | slot index.
/// Generations start at 1, so a valid id is never 0 and callers may keep
/// using 0 as an "unset" sentinel.
using EventId = std::uint64_t;

class EventQueue {
 public:
  explicit EventQueue(const TimerWheelConfig& wheel = {}) : wheel_(wheel) {}

  /// Schedules `fn` at `time`; returns a cancellation handle. Daemon
  /// events do not count towards liveness (see live_size()).
  EventId push(SimTime time, SmallFn fn, bool daemon = false);

  /// Cancels a pending event. Returns false if it already ran or was
  /// canceled — including when the event's slot has since been recycled
  /// for a newer event (the generation check rejects the stale id).
  bool cancel(EventId id);

  /// True if no events (of either kind) remain.
  [[nodiscard]] bool empty() const { return alive_ == 0; }

  /// Number of live (non-canceled, not-yet-run) events, daemons included.
  [[nodiscard]] std::size_t size() const { return alive_; }

  /// Number of live non-daemon events. The simulation is "done" when this
  /// reaches zero, even if periodic daemon events are still scheduled.
  [[nodiscard]] std::size_t live_size() const { return live_count_; }

  /// Heap + wheel entries currently allocated, canceled residue included.
  /// Bounded at max(compaction floor, 2 × size()) by cancel()-time
  /// compaction; the regression test for cancel-heavy strategies asserts
  /// this bound.
  [[nodiscard]] std::size_t queued() const {
    return heap_.size() + wheel_.size();
  }

  /// Time of the earliest live event; requires !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Extracts the earliest live event. Requires !empty().
  struct Fired {
    SimTime time;
    EventId id;
    SmallFn fn;
  };
  Fired pop();

 private:
  static constexpr std::uint32_t kNilIndex = 0xFFFFFFFFu;

  /// Hot per-slot metadata — everything the heap/wheel scans consult.
  /// Freed slots are chained through `next_free`; the generation is bumped
  /// on release so ids referring to the old tenant go stale. The callback
  /// payload lives in the parallel `fns_` array (cold: pop()-only).
  struct SlotMeta {
    std::uint32_t generation = 1;
    std::uint32_t next_free = kNilIndex;
    bool live = false;
    bool daemon = false;
  };
  /// Pending-event record shared by the heap and the wheel; `seq` is the
  /// monotone push counter that implements the FIFO tie-break.
  using Entry = TimerEntry;
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;  // FIFO among simultaneous events
    }
  };

  [[nodiscard]] bool entry_dead(const Entry& e) const {
    const SlotMeta& s = slots_[e.slot];
    return !s.live || s.generation != e.generation;
  }
  /// Returns the slot to the free list and invalidates outstanding ids.
  void release(std::uint32_t index);
  /// Pops dead heap heads and promotes due wheel buckets until the heap
  /// top (if any) is provably the global minimum: every wheel entry has
  /// time >= wheel cursor, so `top.time < cursor_time()` ends the loop.
  /// Promotion at >= keeps time-ties flowing through the heap, where seq
  /// settles them.
  void settle() const;
  void compact();

  /// Min-heap (std::push_heap/pop_heap with Later) over a plain vector so
  /// compaction can filter dead entries in place in O(n). Mutable (with
  /// the wheel) because next_time() settles lazily.
  mutable std::vector<Entry> heap_;
  mutable TimerWheel wheel_;
  mutable std::vector<Entry> promote_buf_;  ///< settle() scratch
  std::vector<SlotMeta> slots_;
  std::vector<SmallFn> fns_;  ///< cold payloads, parallel to slots_
  std::uint32_t free_head_ = kNilIndex;
  std::uint64_t next_seq_ = 1;
  std::size_t alive_ = 0;       ///< occupied slots (daemons included)
  std::size_t live_count_ = 0;  ///< occupied non-daemon slots
};

}  // namespace gridsub::sim
