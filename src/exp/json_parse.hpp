#pragma once

// A strict parser for the subset of JSON gridsub's own writers emit:
// objects, arrays, strings, and numbers (null stands in for non-finite
// metric values, mirroring json_util.hpp's writer). Checkpoints, stage
// files, and campaign JSON are machine formats written and read only by
// gridsub, so any deviation is treated as corruption and reported with
// byte offsets via CheckpointError.
//
// Extracted from checkpoint.cpp so the streamed merge tool and the stage
// loader can parse records line-by-line without materializing whole files.

#include <charconv>
#include <cctype>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "exp/checkpoint.hpp"

namespace gridsub::exp::detail {

struct JsonValue {
  enum class Kind { kObject, kArray, kString, kNumber, kBool, kNull };
  Kind kind = Kind::kNull;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;
  std::string string;
  double number = 0.0;          // every number, parsed as double
  std::uint64_t integer = 0;    // exact value when is_integer
  bool is_integer = false;
  bool boolean = false;         // value when kind == kBool
};

class JsonParser {
 public:
  JsonParser(std::string_view text, const std::string& origin)
      : text_(text), origin_(origin) {}

  /// Parses exactly one value followed by nothing but whitespace.
  [[nodiscard]] JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing bytes after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw CheckpointError(origin_ + ": " + what + " (byte " +
                          std::to_string(pos_) + ")");
  }

  void skip_ws() {
    // Newlines included: the advisor recovery dump (serve/advisor.hpp)
    // is pretty-printed JSON, unlike the one-record-per-line checkpoint
    // format (whose line splitting happens before this parser runs).
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  [[nodiscard]] JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 'n': return null_value();
      case 't':
      case 'f': return bool_value();
      default: return number();
    }
  }

  [[nodiscard]] JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      JsonValue key = string_value();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key.string), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  [[nodiscard]] JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  [[nodiscard]] JsonValue string_value() {
    expect('"');
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.string.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': v.string.push_back('"'); break;
        case '\\': v.string.push_back('\\'); break;
        case 'n': v.string.push_back('\n'); break;
        case 't': v.string.push_back('\t'); break;
        case 'r': v.string.push_back('\r'); break;
        case 'u': {
          // The writer only emits \u00xx for control bytes.
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          const auto* first = text_.data() + pos_;
          const auto r = std::from_chars(first, first + 4, code, 16);
          if (r.ptr != first + 4 || code > 0xFF) fail("bad \\u escape");
          pos_ += 4;
          v.string.push_back(static_cast<char>(code));
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  [[nodiscard]] JsonValue bool_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      v.boolean = true;
      return v;
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return v;
    }
    fail("bad literal");
  }

  [[nodiscard]] JsonValue null_value() {
    if (text_.substr(pos_, 4) != "null") fail("bad literal");
    pos_ += 4;
    JsonValue v;
    v.kind = JsonValue::Kind::kNull;
    v.number = std::numeric_limits<double>::quiet_NaN();
    return v;
  }

  [[nodiscard]] JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a number");
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    const auto rd = std::from_chars(first, last, v.number);
    if (rd.ec != std::errc() || rd.ptr != last) fail("malformed number");
    // Plain digit runs also carry the exact 64-bit value (flat indices,
    // seeds) that a double would truncate.
    const auto ri = std::from_chars(first, last, v.integer);
    v.is_integer = ri.ec == std::errc() && ri.ptr == last;
    return v;
  }

  std::string_view text_;
  std::string origin_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Typed accessors over the parsed DOM, each failing with a named key so
// corrupt files report what is wrong, not just where.
// ---------------------------------------------------------------------------

[[nodiscard]] inline const JsonValue& get_key(const JsonValue& obj,
                                              const std::string& key,
                                              const std::string& origin) {
  for (const auto& [k, v] : obj.object) {
    if (k == key) return v;
  }
  throw CheckpointError(origin + ": missing key \"" + key + "\"");
}

[[nodiscard]] inline const std::string& get_string(
    const JsonValue& obj, const std::string& key, const std::string& origin) {
  const JsonValue& v = get_key(obj, key, origin);
  if (v.kind != JsonValue::Kind::kString) {
    throw CheckpointError(origin + ": key \"" + key + "\" is not a string");
  }
  return v.string;
}

[[nodiscard]] inline std::uint64_t get_uint(const JsonValue& obj,
                                            const std::string& key,
                                            const std::string& origin) {
  const JsonValue& v = get_key(obj, key, origin);
  if (v.kind != JsonValue::Kind::kNumber || !v.is_integer) {
    throw CheckpointError(origin + ": key \"" + key +
                          "\" is not an unsigned integer");
  }
  return v.integer;
}

[[nodiscard]] inline double get_number(const JsonValue& obj,
                                       const std::string& key,
                                       const std::string& origin) {
  const JsonValue& v = get_key(obj, key, origin);
  // null is the writer's spelling for non-finite doubles (json_util.hpp).
  if (v.kind != JsonValue::Kind::kNumber &&
      v.kind != JsonValue::Kind::kNull) {
    throw CheckpointError(origin + ": key \"" + key + "\" is not a number");
  }
  return v.number;
}

[[nodiscard]] inline bool get_bool(const JsonValue& obj,
                                   const std::string& key,
                                   const std::string& origin) {
  const JsonValue& v = get_key(obj, key, origin);
  if (v.kind != JsonValue::Kind::kBool) {
    throw CheckpointError(origin + ": key \"" + key + "\" is not a boolean");
  }
  return v.boolean;
}

[[nodiscard]] inline std::vector<std::string> get_string_array(
    const JsonValue& obj, const std::string& key, const std::string& origin) {
  const JsonValue& v = get_key(obj, key, origin);
  if (v.kind != JsonValue::Kind::kArray) {
    throw CheckpointError(origin + ": key \"" + key + "\" is not an array");
  }
  std::vector<std::string> out;
  out.reserve(v.array.size());
  for (const JsonValue& e : v.array) {
    if (e.kind != JsonValue::Kind::kString) {
      throw CheckpointError(origin + ": key \"" + key +
                            "\" holds a non-string element");
    }
    out.push_back(e.string);
  }
  return out;
}

}  // namespace gridsub::exp::detail
