#include "exp/campaign.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <future>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "stats/rng.hpp"

namespace gridsub::exp {

namespace {

// Odd multipliers keep index 0 from collapsing the hash chain; the
// constants are the SplitMix64 finalizer's own.
constexpr std::uint64_t kScenarioSalt = 0x9E3779B97F4A7C15ull;
constexpr std::uint64_t kStrategySalt = 0xBF58476D1CE4E5B9ull;
constexpr std::uint64_t kReplicationSalt = 0x94D049BB133111EBull;

void json_escape(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

// Shortest round-trip representation via std::to_chars: byte-identical for
// equal doubles, locale-independent, and re-parses to the same value.
void json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; emit null so consumers fail loudly, not subtly.
    os << "null";
    return;
  }
  char buf[32];
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  os.write(buf, r.ptr - buf);
}

}  // namespace

std::uint64_t CampaignAxes::cell_seed(std::size_t scenario,
                                      std::size_t strategy,
                                      std::size_t replication) const {
  // Chained SplitMix64: each field is folded into the *mixed* output of
  // the previous step, so every index bit passes through a full finalizer
  // before the next field lands (not just a linear accumulation).
  std::uint64_t s = root_seed;
  s = stats::splitmix64(s) ^
      kScenarioSalt * (static_cast<std::uint64_t>(scenario) + 1);
  s = stats::splitmix64(s) ^
      kStrategySalt * (static_cast<std::uint64_t>(strategy) + 1);
  s = stats::splitmix64(s) ^
      kReplicationSalt * (static_cast<std::uint64_t>(replication) + 1);
  return stats::splitmix64(s);
}

CellContext CampaignAxes::cell(std::size_t flat) const {
  CellContext ctx;
  ctx.flat = flat;
  ctx.replication = flat % replications;
  const std::size_t group = flat / replications;
  ctx.strategy = group % strategy_labels.size();
  ctx.scenario = group / strategy_labels.size();
  ctx.seed = cell_seed(ctx.scenario, ctx.strategy, ctx.replication);
  return ctx;
}

void CampaignAxes::validate() const {
  if (scenario_labels.empty()) {
    throw std::invalid_argument("CampaignAxes: no scenario labels");
  }
  if (strategy_labels.empty()) {
    throw std::invalid_argument("CampaignAxes: no strategy labels");
  }
  if (replications == 0) {
    throw std::invalid_argument("CampaignAxes: zero replications");
  }
}

CampaignResult::CampaignResult(CampaignAxes axes,
                               std::vector<CellResult> cells)
    : axes_(std::move(axes)), cells_(std::move(cells)) {
  // Aggregate in flat-index order: replications of one (scenario,
  // strategy) group are contiguous, so each group folds in a fixed order
  // regardless of the execution schedule.
  const std::size_t reps = axes_.replications;
  aggregates_.reserve(cells_.size() / std::max<std::size_t>(1, reps));
  for (std::size_t base = 0; base + reps <= cells_.size(); base += reps) {
    AggregateRow row;
    row.scenario = cells_[base].context.scenario;
    row.strategy = cells_[base].context.strategy;
    row.replications = reps;
    const CellMetrics& first = cells_[base].metrics;
    row.metrics.reserve(first.size());
    for (std::size_t m = 0; m < first.size(); ++m) {
      AggregateRow::Metric metric;
      metric.name = first[m].first;
      double sum = 0.0;
      for (std::size_t r = 0; r < reps; ++r) {
        const CellMetrics& cell = cells_[base + r].metrics;
        if (cell.size() != first.size() || cell[m].first != metric.name) {
          throw std::logic_error(
              "CampaignResult: replications of group (" +
              axes_.scenario_labels[row.scenario] + ", " +
              axes_.strategy_labels[row.strategy] +
              ") emitted mismatched metric names");
        }
        sum += cell[m].second;
      }
      metric.mean = sum / static_cast<double>(reps);
      if (reps > 1) {
        double ss = 0.0;
        for (std::size_t r = 0; r < reps; ++r) {
          const double d = cells_[base + r].metrics[m].second - metric.mean;
          ss += d * d;
        }
        metric.sem = std::sqrt(ss / static_cast<double>(reps - 1) /
                               static_cast<double>(reps));
      }
      row.metrics.push_back(std::move(metric));
    }
    aggregates_.push_back(std::move(row));
  }
}

const AggregateRow& CampaignResult::aggregate(std::size_t scenario,
                                              std::size_t strategy) const {
  // Check each axis, not just the flattened index: an off-by-one on the
  // strategy axis must throw, not alias the next scenario's group.
  if (scenario >= axes_.scenario_labels.size() ||
      strategy >= axes_.strategy_labels.size()) {
    throw std::out_of_range("CampaignResult::aggregate: bad cell group");
  }
  return aggregates_[scenario * axes_.strategy_labels.size() + strategy];
}

namespace {

const AggregateRow::Metric& find_metric(const AggregateRow& row,
                                        const std::string& name) {
  for (const auto& m : row.metrics) {
    if (m.name == name) return m;
  }
  throw std::out_of_range("CampaignResult: unknown metric '" + name + "'");
}

}  // namespace

double CampaignResult::mean(std::size_t scenario, std::size_t strategy,
                            const std::string& metric) const {
  return find_metric(aggregate(scenario, strategy), metric).mean;
}

double CampaignResult::sem(std::size_t scenario, std::size_t strategy,
                           const std::string& metric) const {
  return find_metric(aggregate(scenario, strategy), metric).sem;
}

report::Table CampaignResult::summary_table(
    const std::vector<std::string>& metrics) const {
  std::vector<std::string> names = metrics;
  if (names.empty() && !aggregates_.empty()) {
    for (const auto& m : aggregates_.front().metrics) names.push_back(m.name);
  }
  std::vector<std::string> headers = {axes_.scenario_axis,
                                      axes_.strategy_axis};
  for (const auto& n : names) headers.push_back(n);
  report::Table table(std::move(headers));
  for (const auto& row : aggregates_) {
    auto& r = table.row()
                  .cell(axes_.scenario_labels[row.scenario])
                  .cell(axes_.strategy_labels[row.strategy]);
    for (const auto& n : names) r.cell(find_metric(row, n).mean, 3);
  }
  return table;
}

void CampaignResult::write_json(std::ostream& os) const {
  os << "{\n  \"schema\": \"gridsub-campaign-v1\",\n  \"name\": ";
  json_escape(os, axes_.name);
  os << ",\n  \"root_seed\": " << axes_.root_seed;
  os << ",\n  \"axes\": {";
  json_escape(os, axes_.scenario_axis);
  os << ": [";
  for (std::size_t i = 0; i < axes_.scenario_labels.size(); ++i) {
    if (i > 0) os << ", ";
    json_escape(os, axes_.scenario_labels[i]);
  }
  os << "], ";
  json_escape(os, axes_.strategy_axis);
  os << ": [";
  for (std::size_t i = 0; i < axes_.strategy_labels.size(); ++i) {
    if (i > 0) os << ", ";
    json_escape(os, axes_.strategy_labels[i]);
  }
  os << "], \"replications\": " << axes_.replications << "},\n";
  os << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const CellResult& c = cells_[i];
    os << "    {\"scenario\": ";
    json_escape(os, axes_.scenario_labels[c.context.scenario]);
    os << ", \"strategy\": ";
    json_escape(os, axes_.strategy_labels[c.context.strategy]);
    os << ", \"replication\": " << c.context.replication;
    os << ", \"seed\": " << c.context.seed << ", \"metrics\": {";
    for (std::size_t m = 0; m < c.metrics.size(); ++m) {
      if (m > 0) os << ", ";
      json_escape(os, c.metrics[m].first);
      os << ": ";
      json_number(os, c.metrics[m].second);
    }
    os << "}}" << (i + 1 < cells_.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"aggregates\": [\n";
  for (std::size_t i = 0; i < aggregates_.size(); ++i) {
    const AggregateRow& row = aggregates_[i];
    os << "    {\"scenario\": ";
    json_escape(os, axes_.scenario_labels[row.scenario]);
    os << ", \"strategy\": ";
    json_escape(os, axes_.strategy_labels[row.strategy]);
    os << ", \"replications\": " << row.replications << ", \"metrics\": {";
    for (std::size_t m = 0; m < row.metrics.size(); ++m) {
      if (m > 0) os << ", ";
      json_escape(os, row.metrics[m].name);
      os << ": {\"mean\": ";
      json_number(os, row.metrics[m].mean);
      os << ", \"stderr\": ";
      json_number(os, row.metrics[m].sem);
      os << "}";
    }
    os << "}}" << (i + 1 < aggregates_.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

std::string CampaignResult::to_json() const {
  std::ostringstream ss;
  write_json(ss);
  return ss.str();
}

CampaignRunner::CampaignRunner(CampaignOptions options)
    : options_(std::move(options)) {}

CampaignResult CampaignRunner::run(const CampaignAxes& axes,
                                   const CellEvaluator& evaluate) const {
  axes.validate();
  if (!evaluate) {
    throw std::invalid_argument("CampaignRunner::run: null evaluator");
  }
  const std::size_t n = axes.cell_count();
  std::vector<CellResult> cells(n);
  par::ThreadPool& pool =
      options_.pool != nullptr ? *options_.pool : par::ThreadPool::shared();

  std::mutex progress_mutex;
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t flat = 0; flat < n; ++flat) {
    futures.push_back(pool.submit([this, &axes, &evaluate, &cells,
                                   &progress_mutex, flat] {
      CellResult result;
      result.context = axes.cell(flat);
      result.metrics = evaluate(result.context);
      if (options_.on_cell) {
        const std::lock_guard lock(progress_mutex);
        options_.on_cell(result);
      }
      cells[flat] = std::move(result);
    }));
  }
  // Settle every cell before touching `cells`, then surface the first
  // failure: returning early would tear down slots workers still write.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return CampaignResult(axes, std::move(cells));
}

}  // namespace gridsub::exp
