#include "exp/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <future>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "core/thread_annotations.hpp"
#include "exp/checkpoint.hpp"
#include "exp/fold.hpp"
#include "stats/rng.hpp"

namespace gridsub::exp {

namespace {

// Odd multipliers keep index 0 from collapsing the hash chain; the
// constants are the SplitMix64 finalizer's own.
constexpr std::uint64_t kScenarioSalt = 0x9E3779B97F4A7C15ull;
constexpr std::uint64_t kStrategySalt = 0xBF58476D1CE4E5B9ull;
constexpr std::uint64_t kReplicationSalt = 0x94D049BB133111EBull;

}  // namespace

std::uint64_t CampaignAxes::cell_seed(std::size_t scenario,
                                      std::size_t strategy,
                                      std::size_t replication) const {
  // Chained SplitMix64: each field is folded into the *mixed* output of
  // the previous step, so every index bit passes through a full finalizer
  // before the next field lands (not just a linear accumulation).
  std::uint64_t s = root_seed;
  s = stats::splitmix64(s) ^
      kScenarioSalt * (static_cast<std::uint64_t>(scenario) + 1);
  s = stats::splitmix64(s) ^
      kStrategySalt * (static_cast<std::uint64_t>(strategy) + 1);
  s = stats::splitmix64(s) ^
      kReplicationSalt * (static_cast<std::uint64_t>(replication) + 1);
  return stats::splitmix64(s);
}

CellContext CampaignAxes::cell(std::size_t flat) const {
  CellContext ctx;
  ctx.flat = flat;
  ctx.replication = flat % replications;
  const std::size_t group = flat / replications;
  ctx.strategy = group % strategy_labels.size();
  ctx.scenario = group / strategy_labels.size();
  ctx.seed = cell_seed(ctx.scenario, ctx.strategy, ctx.replication);
  return ctx;
}

void CampaignShard::validate() const {
  if (count == 0) {
    throw std::invalid_argument("CampaignShard: zero shard count");
  }
  if (index >= count) {
    throw std::invalid_argument("CampaignShard: index " +
                                std::to_string(index) + " not below count " +
                                std::to_string(count));
  }
}

void CampaignAxes::validate() const {
  if (scenario_labels.empty()) {
    throw std::invalid_argument("CampaignAxes: no scenario labels");
  }
  if (strategy_labels.empty()) {
    throw std::invalid_argument("CampaignAxes: no strategy labels");
  }
  if (replications == 0) {
    throw std::invalid_argument("CampaignAxes: zero replications");
  }
}

CampaignResult::CampaignResult(CampaignAxes axes,
                               std::vector<CellResult> cells)
    : axes_(std::move(axes)), cells_(std::move(cells)) {
  // Aggregate through the same streaming folds the sinks use, in flat
  // order: replications of one (scenario, strategy) group are contiguous,
  // so each group folds in a fixed order regardless of the execution
  // schedule — and the buffered and streamed paths stay byte-identical
  // by construction.
  const std::size_t reps = std::max<std::size_t>(1, axes_.replications);
  const std::size_t whole = (cells_.size() / reps) * reps;
  AggregateFold fold(axes_);
  for (std::size_t flat = 0; flat < whole; ++flat) fold.add(cells_[flat]);
  aggregates_ = fold.take_rows();
}

const AggregateRow& CampaignResult::aggregate(std::size_t scenario,
                                              std::size_t strategy) const {
  // Check each axis, not just the flattened index: an off-by-one on the
  // strategy axis must throw, not alias the next scenario's group.
  if (scenario >= axes_.scenario_labels.size() ||
      strategy >= axes_.strategy_labels.size()) {
    throw std::out_of_range("CampaignResult::aggregate: bad cell group");
  }
  return aggregates_[scenario * axes_.strategy_labels.size() + strategy];
}

double CampaignResult::mean(std::size_t scenario, std::size_t strategy,
                            const std::string& metric) const {
  return find_metric(aggregate(scenario, strategy), metric).mean;
}

double CampaignResult::sem(std::size_t scenario, std::size_t strategy,
                           const std::string& metric) const {
  return find_metric(aggregate(scenario, strategy), metric).sem;
}

report::Table CampaignResult::summary_table(
    const std::vector<std::string>& metrics) const {
  return exp::summary_table(axes_, aggregates_, metrics);
}

void CampaignResult::write_json(std::ostream& os) const {
  detail::write_campaign_json_prefix(os, axes_);
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    detail::write_campaign_json_cell(os, axes_, cells_[i],
                                     i + 1 == cells_.size());
  }
  detail::write_campaign_json_aggregates(os, axes_, aggregates_);
}

std::string CampaignResult::to_json() const {
  std::ostringstream ss;
  write_json(ss);
  return ss.str();
}

CampaignRunner::CampaignRunner(CampaignOptions options)
    : options_(std::move(options)) {}

namespace {

/// Cells already on disk before this run, restored from the checkpoint.
struct ResumeState {
  std::vector<bool> have;
  std::vector<CellMetrics> metrics;  ///< valid where have[flat]
  /// True when there is no usable checkpoint content yet (file absent or
  /// blank) and the header must be written before the first record.
  bool fresh = true;
  /// Bytes of the file that parsed cleanly; a dropped partial tail is
  /// truncated away before appending so it cannot glue onto new records.
  std::size_t valid_bytes = 0;
  /// The kept content lacks its final newline (whole-JSON clipped tail);
  /// the writer must emit '\n' before its first appended record.
  bool missing_final_newline = false;

  explicit ResumeState(std::size_t n) : have(n, false), metrics(n) {}
};

/// Loads `path` if it holds checkpoint content and verifies it belongs to
/// exactly this (axes, shard) before trusting any recorded cell.
ResumeState resume_from(const std::string& path, const CampaignAxes& axes,
                        const CampaignShard& shard) {
  ResumeState state(axes.cell_count());
  std::ifstream is(path, std::ios::binary);
  if (!is) return state;  // no checkpoint yet
  std::string content((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
  if (content.empty() ||
      content.find_first_not_of(" \t\r\n") == std::string::npos) {
    return state;  // an empty placeholder file
  }
  if (content.find('\n') == std::string::npos) {
    // A newline-less file can be the artifact of a kill during the very
    // first (header) write — but only if it reads as a clipped header.
    // Then no record can exist and the run starts fresh (the writer
    // truncates to valid_bytes = 0 before writing the new header). Any
    // other newline-less content means checkpoint_path points at some
    // unrelated file, which must never be silently overwritten.
    constexpr std::string_view kHeaderPrefix =
        "{\"schema\": \"gridsub-checkpoint-v1\"";
    const std::size_t overlap =
        std::min(content.size(), kHeaderPrefix.size());
    if (content.compare(0, overlap, kHeaderPrefix, 0, overlap) != 0) {
      throw CheckpointError(path +
                            ": not a gridsub checkpoint — refusing to "
                            "overwrite it");
    }
    return state;
  }
  CampaignCheckpoint checkpoint = parse_checkpoint(content, path);
  if (!same_campaign(checkpoint.axes, axes)) {
    throw CheckpointError(path + ": checkpoint belongs to campaign '" +
                          checkpoint.axes.name +
                          "' with different axes/replications/root seed — "
                          "refusing to resume '" + axes.name + "' from it");
  }
  if (checkpoint.shard.index != shard.index ||
      checkpoint.shard.count != shard.count) {
    throw CheckpointError(
        path + ": checkpoint was written by shard " +
        std::to_string(checkpoint.shard.index) + "/" +
        std::to_string(checkpoint.shard.count) + ", not shard " +
        std::to_string(shard.index) + "/" + std::to_string(shard.count) +
        " — resume with the same partition or merge instead");
  }
  state.fresh = false;
  state.valid_bytes = checkpoint.valid_bytes;
  state.missing_final_newline = checkpoint.missing_final_newline;
  for (CellResult& cell : checkpoint.cells) {
    state.have[cell.context.flat] = true;
    state.metrics[cell.context.flat] = std::move(cell.metrics);
  }
  return state;
}

/// The streaming core behind run / run_with_sink / run_shard.
///
/// Workers claim pending cells from an atomic cursor in ascending flat
/// order; a claim may start evaluating only when fewer than
/// `reorder_window` earlier claims are still undelivered, so completed
/// cells never pile up beyond the window. Completions land in a
/// window-sized ring and are drained — interleaved with checkpoint-
/// restored cells — to the sink in strictly ascending flat order. This
/// cannot deadlock: deliveries follow claim order, so the minimal
/// in-flight claim always has every earlier claim already delivered and
/// its own gate open.
///
/// Lock discipline (compiler-checked through the GRIDSUB_GUARDED_BY
/// annotations): every field of the reorder/delivery state is guarded by
/// `mu_`; checkpoint appends go through CheckpointWriter's own internal
/// lock *outside* `mu_`, so the two mutexes never nest. Everything not
/// annotated is either immutable after construction (owned_, pending_,
/// resume_.have, window_) or touched only before workers start / after
/// they join.
class CellStream {
 public:
  CellStream(const CampaignOptions& options, const CampaignAxes& axes,
             const CellEvaluator& evaluate, ResumeState resume,
             CampaignSink* sink)
      : options_(options),
        axes_(axes),
        evaluate_(evaluate),
        resume_(std::move(resume)),
        sink_(sink),
        shard_(options.shard),
        pool_(options.pool != nullptr ? *options.pool
                                      : par::ThreadPool::shared()) {
    if (!options_.checkpoint_path.empty()) {
      CheckpointWriter::Resume tail;
      tail.fresh = resume_.fresh;
      tail.valid_bytes = resume_.valid_bytes;
      tail.missing_final_newline = resume_.missing_final_newline;
      writer_.emplace(options_.checkpoint_path, axes_, shard_, tail);
    }

    // Owned cells in ascending flat order; the not-yet-done subset is
    // the claim list workers race down.
    for (std::size_t flat = 0; flat < axes_.cell_count(); ++flat) {
      if (!shard_.owns(flat)) continue;
      owned_.push_back(flat);
      if (!resume_.have[flat]) pending_.push_back(flat);
    }
    resumed_count_ = owned_.size() - pending_.size();
    window_ = options_.reorder_window > 0
                  ? options_.reorder_window
                  : std::max<std::size_t>(16, 2 * pool_.thread_count());
    // Claim k's completion parks in ring_[k % ring_.size()] until
    // drained; the gate keeps at most `window_` claims undelivered, so a
    // window-sized ring can never collide.
    ring_.resize(std::max<std::size_t>(
        1, std::min(window_, pending_.size())));
  }

  /// Runs the stream to completion; returns the number of cells freshly
  /// evaluated. Rethrows the lowest-claim worker error after all cells
  /// have settled.
  std::size_t run() {
    if (sink_ != nullptr) sink_->begin(axes_);

    {
      // Baseline: deliver the restored prefix (everything, on a fully
      // resumed run) and let a resume-aware ETA start from `completed`.
      const core::MutexLock lock(mu_);
      report_progress();
      try {
        drain();
      } catch (...) {
        record_error(0);
      }
    }

    const std::size_t workers =
        std::min(std::max<std::size_t>(1, pool_.thread_count()),
                 pending_.size());
    std::vector<std::future<void>> futures;
    futures.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      futures.push_back(pool_.submit([this] { worker(); }));
    }
    for (auto& f : futures) f.get();  // workers swallow their own errors

    {
      const core::MutexLock lock(mu_);
      if (first_error_) std::rethrow_exception(first_error_);
      if (deliver_pos_ != owned_.size()) {
        throw std::logic_error(
            "CampaignRunner: drained " + std::to_string(deliver_pos_) +
            " of " + std::to_string(owned_.size()) +
            " cells with no error");
      }
    }
    if (sink_ != nullptr) sink_->end();
    return pending_.size();
  }

 private:
  void worker() {
    while (true) {
      const std::size_t claim =
          next_claim_.fetch_add(1, std::memory_order_relaxed);
      if (claim >= pending_.size()) return;
      {
        core::MutexLock lock(mu_);
        gate_.wait(mu_, [this, claim]() GRIDSUB_REQUIRES(mu_) {
          return aborted_ || claim < drained_fresh_ + window_;
        });
      }
      const std::size_t flat = pending_[claim];
      try {
        CellResult result;
        result.context = axes_.cell(flat);
        result.metrics = evaluate_(result.context);
        // Record first, outside the stream lock (the writer locks
        // itself): a kill after this line leaves the cell persisted even
        // if it was never delivered, which resume handles as a benign
        // duplicate of work never re-done.
        if (writer_.has_value()) writer_->append(result);
        const core::MutexLock lock(mu_);
        ++fresh_done_;
        report_progress();
        if (!aborted_) {
          ring_[claim % ring_.size()] = std::move(result);
          drain();
        }
        gate_.notify_all();
      } catch (...) {
        // Evaluation, checkpoint-append, or sink failure: remember the
        // error, open every gate, and keep claiming — remaining cells
        // still evaluate (and checkpoint) so a rerun resumes close to
        // where this one failed.
        const core::MutexLock lock(mu_);
        record_error(claim);
        gate_.notify_all();
      }
    }
  }

  /// Delivers every cell that is ready, in flat order: restored cells
  /// immediately, fresh ones as their ring slot fills.
  void drain() GRIDSUB_REQUIRES(mu_) {
    while (deliver_pos_ < owned_.size()) {
      const std::size_t flat = owned_[deliver_pos_];
      CellResult cell;
      if (resume_.have[flat]) {
        cell.context = axes_.cell(flat);
        cell.metrics = std::move(resume_.metrics[flat]);
      } else {
        std::optional<CellResult>& slot =
            ring_[drained_fresh_ % ring_.size()];
        if (!slot.has_value()) break;  // next fresh cell still in flight
        cell = std::move(*slot);
        slot.reset();
        ++drained_fresh_;
        gate_.notify_all();
      }
      if (sink_ != nullptr) sink_->on_cell(cell);
      ++deliver_pos_;
    }
  }

  void record_error(std::size_t claim) GRIDSUB_REQUIRES(mu_) {
    // Keep the lowest-claim error: deterministic choice among racers.
    if (!first_error_ || claim < first_error_claim_) {
      first_error_ = std::current_exception();
      first_error_claim_ = claim;
    }
    aborted_ = true;
  }

  void report_progress() GRIDSUB_REQUIRES(mu_) {
    if (!options_.on_progress) return;
    CampaignProgress p;
    p.completed = resumed_count_ + fresh_done_;
    p.total = owned_.size();
    p.fresh = fresh_done_;
    p.shard = shard_;
    options_.on_progress(p);
  }

  const CampaignOptions& options_;
  const CampaignAxes& axes_;
  const CellEvaluator& evaluate_;
  ResumeState resume_;  ///< have[] immutable; metrics[] consumed in drain()
  CampaignSink* sink_;
  const CampaignShard shard_;
  par::ThreadPool& pool_;
  std::optional<CheckpointWriter> writer_;  ///< internally locked
  std::vector<std::size_t> owned_;    ///< immutable once workers start
  std::vector<std::size_t> pending_;  ///< immutable once workers start
  std::size_t resumed_count_ = 0;
  std::size_t window_ = 0;

  core::Mutex mu_;
  core::CondVar gate_;
  std::atomic<std::size_t> next_claim_{0};
  std::vector<std::optional<CellResult>> ring_ GRIDSUB_GUARDED_BY(mu_);
  std::size_t drained_fresh_ GRIDSUB_GUARDED_BY(mu_) = 0;
  std::size_t deliver_pos_ GRIDSUB_GUARDED_BY(mu_) = 0;
  std::size_t fresh_done_ GRIDSUB_GUARDED_BY(mu_) = 0;
  bool aborted_ GRIDSUB_GUARDED_BY(mu_) = false;
  std::exception_ptr first_error_ GRIDSUB_GUARDED_BY(mu_);
  std::size_t first_error_claim_ GRIDSUB_GUARDED_BY(mu_) = 0;
};

std::size_t run_cells(const CampaignOptions& options,
                      const CampaignAxes& axes,
                      const CellEvaluator& evaluate, ResumeState resume,
                      CampaignSink* sink) {
  CellStream stream(options, axes, evaluate, std::move(resume), sink);
  return stream.run();
}

}  // namespace

void CampaignRunner::run_with_sink(const CampaignAxes& axes,
                                   const CellEvaluator& evaluate,
                                   CampaignSink& sink) const {
  axes.validate();
  if (!evaluate) {
    throw std::invalid_argument("CampaignRunner::run_with_sink: null "
                                "evaluator");
  }
  options_.shard.validate();
  if (options_.shard.active()) {
    throw std::invalid_argument(
        "CampaignRunner::run_with_sink: options name shard " +
        std::to_string(options_.shard.index) + "/" +
        std::to_string(options_.shard.count) +
        " but a sink run produces the whole grid — use run_shard() and "
        "merge_checkpoints()");
  }
  ResumeState resume(axes.cell_count());
  if (!options_.checkpoint_path.empty()) {
    resume = resume_from(options_.checkpoint_path, axes, options_.shard);
  }
  (void)run_cells(options_, axes, evaluate, std::move(resume), &sink);
}

CampaignResult CampaignRunner::run(const CampaignAxes& axes,
                                   const CellEvaluator& evaluate) const {
  axes.validate();
  if (!evaluate) {
    throw std::invalid_argument("CampaignRunner::run: null evaluator");
  }
  options_.shard.validate();
  if (options_.shard.active()) {
    throw std::invalid_argument(
        "CampaignRunner::run: options name shard " +
        std::to_string(options_.shard.index) + "/" +
        std::to_string(options_.shard.count) +
        " but run() produces the whole grid — use run_shard() and "
        "merge_checkpoints()");
  }
  ResumeState resume(axes.cell_count());
  if (!options_.checkpoint_path.empty()) {
    resume = resume_from(options_.checkpoint_path, axes, options_.shard);
  }
  CollectSink collect;
  (void)run_cells(options_, axes, evaluate, std::move(resume), &collect);
  return collect.take();
}

std::size_t CampaignRunner::run_shard(const CampaignAxes& axes,
                                      const CellEvaluator& evaluate,
                                      CampaignSink* sink) const {
  axes.validate();
  if (!evaluate) {
    throw std::invalid_argument("CampaignRunner::run_shard: null evaluator");
  }
  options_.shard.validate();
  if (options_.checkpoint_path.empty()) {
    throw std::invalid_argument(
        "CampaignRunner::run_shard: options.checkpoint_path is required "
        "(the shard's cells live only in the checkpoint file)");
  }
  ResumeState resume =
      resume_from(options_.checkpoint_path, axes, options_.shard);
  return run_cells(options_, axes, evaluate, std::move(resume), sink);
}

}  // namespace gridsub::exp
