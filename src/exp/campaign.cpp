#include "exp/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <future>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "exp/checkpoint.hpp"
#include "exp/json_util.hpp"
#include "stats/rng.hpp"

namespace gridsub::exp {

namespace {

using detail::json_escape;
using detail::json_number;

// Odd multipliers keep index 0 from collapsing the hash chain; the
// constants are the SplitMix64 finalizer's own.
constexpr std::uint64_t kScenarioSalt = 0x9E3779B97F4A7C15ull;
constexpr std::uint64_t kStrategySalt = 0xBF58476D1CE4E5B9ull;
constexpr std::uint64_t kReplicationSalt = 0x94D049BB133111EBull;

}  // namespace

std::uint64_t CampaignAxes::cell_seed(std::size_t scenario,
                                      std::size_t strategy,
                                      std::size_t replication) const {
  // Chained SplitMix64: each field is folded into the *mixed* output of
  // the previous step, so every index bit passes through a full finalizer
  // before the next field lands (not just a linear accumulation).
  std::uint64_t s = root_seed;
  s = stats::splitmix64(s) ^
      kScenarioSalt * (static_cast<std::uint64_t>(scenario) + 1);
  s = stats::splitmix64(s) ^
      kStrategySalt * (static_cast<std::uint64_t>(strategy) + 1);
  s = stats::splitmix64(s) ^
      kReplicationSalt * (static_cast<std::uint64_t>(replication) + 1);
  return stats::splitmix64(s);
}

CellContext CampaignAxes::cell(std::size_t flat) const {
  CellContext ctx;
  ctx.flat = flat;
  ctx.replication = flat % replications;
  const std::size_t group = flat / replications;
  ctx.strategy = group % strategy_labels.size();
  ctx.scenario = group / strategy_labels.size();
  ctx.seed = cell_seed(ctx.scenario, ctx.strategy, ctx.replication);
  return ctx;
}

void CampaignShard::validate() const {
  if (count == 0) {
    throw std::invalid_argument("CampaignShard: zero shard count");
  }
  if (index >= count) {
    throw std::invalid_argument("CampaignShard: index " +
                                std::to_string(index) + " not below count " +
                                std::to_string(count));
  }
}

void CampaignAxes::validate() const {
  if (scenario_labels.empty()) {
    throw std::invalid_argument("CampaignAxes: no scenario labels");
  }
  if (strategy_labels.empty()) {
    throw std::invalid_argument("CampaignAxes: no strategy labels");
  }
  if (replications == 0) {
    throw std::invalid_argument("CampaignAxes: zero replications");
  }
}

CampaignResult::CampaignResult(CampaignAxes axes,
                               std::vector<CellResult> cells)
    : axes_(std::move(axes)), cells_(std::move(cells)) {
  // Aggregate in flat-index order: replications of one (scenario,
  // strategy) group are contiguous, so each group folds in a fixed order
  // regardless of the execution schedule.
  const std::size_t reps = axes_.replications;
  aggregates_.reserve(cells_.size() / std::max<std::size_t>(1, reps));
  for (std::size_t base = 0; base + reps <= cells_.size(); base += reps) {
    AggregateRow row;
    row.scenario = cells_[base].context.scenario;
    row.strategy = cells_[base].context.strategy;
    row.replications = reps;
    const CellMetrics& first = cells_[base].metrics;
    row.metrics.reserve(first.size());
    for (std::size_t m = 0; m < first.size(); ++m) {
      AggregateRow::Metric metric;
      metric.name = first[m].first;
      double sum = 0.0;
      for (std::size_t r = 0; r < reps; ++r) {
        const CellMetrics& cell = cells_[base + r].metrics;
        if (cell.size() != first.size() || cell[m].first != metric.name) {
          throw std::logic_error(
              "CampaignResult: replications of group (" +
              axes_.scenario_labels[row.scenario] + ", " +
              axes_.strategy_labels[row.strategy] +
              ") emitted mismatched metric names");
        }
        sum += cell[m].second;
      }
      metric.mean = sum / static_cast<double>(reps);
      if (reps > 1) {
        double ss = 0.0;
        for (std::size_t r = 0; r < reps; ++r) {
          const double d = cells_[base + r].metrics[m].second - metric.mean;
          ss += d * d;
        }
        metric.sem = std::sqrt(ss / static_cast<double>(reps - 1) /
                               static_cast<double>(reps));
      }
      row.metrics.push_back(std::move(metric));
    }
    aggregates_.push_back(std::move(row));
  }
}

const AggregateRow& CampaignResult::aggregate(std::size_t scenario,
                                              std::size_t strategy) const {
  // Check each axis, not just the flattened index: an off-by-one on the
  // strategy axis must throw, not alias the next scenario's group.
  if (scenario >= axes_.scenario_labels.size() ||
      strategy >= axes_.strategy_labels.size()) {
    throw std::out_of_range("CampaignResult::aggregate: bad cell group");
  }
  return aggregates_[scenario * axes_.strategy_labels.size() + strategy];
}

namespace {

const AggregateRow::Metric& find_metric(const AggregateRow& row,
                                        const std::string& name) {
  for (const auto& m : row.metrics) {
    if (m.name == name) return m;
  }
  throw std::out_of_range("CampaignResult: unknown metric '" + name + "'");
}

}  // namespace

double CampaignResult::mean(std::size_t scenario, std::size_t strategy,
                            const std::string& metric) const {
  return find_metric(aggregate(scenario, strategy), metric).mean;
}

double CampaignResult::sem(std::size_t scenario, std::size_t strategy,
                           const std::string& metric) const {
  return find_metric(aggregate(scenario, strategy), metric).sem;
}

report::Table CampaignResult::summary_table(
    const std::vector<std::string>& metrics) const {
  std::vector<std::string> names = metrics;
  if (names.empty() && !aggregates_.empty()) {
    for (const auto& m : aggregates_.front().metrics) names.push_back(m.name);
  }
  std::vector<std::string> headers = {axes_.scenario_axis,
                                      axes_.strategy_axis};
  for (const auto& n : names) headers.push_back(n);
  report::Table table(std::move(headers));
  for (const auto& row : aggregates_) {
    auto& r = table.row()
                  .cell(axes_.scenario_labels[row.scenario])
                  .cell(axes_.strategy_labels[row.strategy]);
    for (const auto& n : names) r.cell(find_metric(row, n).mean, 3);
  }
  return table;
}

void CampaignResult::write_json(std::ostream& os) const {
  os << "{\n  \"schema\": \"gridsub-campaign-v1\",\n  \"name\": ";
  json_escape(os, axes_.name);
  os << ",\n  \"root_seed\": " << axes_.root_seed;
  os << ",\n  \"axes\": {";
  json_escape(os, axes_.scenario_axis);
  os << ": [";
  for (std::size_t i = 0; i < axes_.scenario_labels.size(); ++i) {
    if (i > 0) os << ", ";
    json_escape(os, axes_.scenario_labels[i]);
  }
  os << "], ";
  json_escape(os, axes_.strategy_axis);
  os << ": [";
  for (std::size_t i = 0; i < axes_.strategy_labels.size(); ++i) {
    if (i > 0) os << ", ";
    json_escape(os, axes_.strategy_labels[i]);
  }
  os << "], \"replications\": " << axes_.replications << "},\n";
  os << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const CellResult& c = cells_[i];
    os << "    {\"scenario\": ";
    json_escape(os, axes_.scenario_labels[c.context.scenario]);
    os << ", \"strategy\": ";
    json_escape(os, axes_.strategy_labels[c.context.strategy]);
    os << ", \"replication\": " << c.context.replication;
    os << ", \"seed\": " << c.context.seed << ", \"metrics\": {";
    for (std::size_t m = 0; m < c.metrics.size(); ++m) {
      if (m > 0) os << ", ";
      json_escape(os, c.metrics[m].first);
      os << ": ";
      json_number(os, c.metrics[m].second);
    }
    os << "}}" << (i + 1 < cells_.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"aggregates\": [\n";
  for (std::size_t i = 0; i < aggregates_.size(); ++i) {
    const AggregateRow& row = aggregates_[i];
    os << "    {\"scenario\": ";
    json_escape(os, axes_.scenario_labels[row.scenario]);
    os << ", \"strategy\": ";
    json_escape(os, axes_.strategy_labels[row.strategy]);
    os << ", \"replications\": " << row.replications << ", \"metrics\": {";
    for (std::size_t m = 0; m < row.metrics.size(); ++m) {
      if (m > 0) os << ", ";
      json_escape(os, row.metrics[m].name);
      os << ": {\"mean\": ";
      json_number(os, row.metrics[m].mean);
      os << ", \"stderr\": ";
      json_number(os, row.metrics[m].sem);
      os << "}";
    }
    os << "}}" << (i + 1 < aggregates_.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

std::string CampaignResult::to_json() const {
  std::ostringstream ss;
  write_json(ss);
  return ss.str();
}

CampaignRunner::CampaignRunner(CampaignOptions options)
    : options_(std::move(options)) {}

namespace {

/// Cells already on disk before this run, restored from the checkpoint.
struct ResumeState {
  std::vector<bool> have;
  std::vector<CellMetrics> metrics;  ///< valid where have[flat]
  /// True when there is no usable checkpoint content yet (file absent or
  /// blank) and the header must be written before the first record.
  bool fresh = true;
  /// Bytes of the file that parsed cleanly; a dropped partial tail is
  /// truncated away before appending so it cannot glue onto new records.
  std::size_t valid_bytes = 0;
  /// The kept content lacks its final newline (whole-JSON clipped tail);
  /// the writer must emit '\n' before its first appended record.
  bool missing_final_newline = false;

  explicit ResumeState(std::size_t n) : have(n, false), metrics(n) {}
};

/// Loads `path` if it holds checkpoint content and verifies it belongs to
/// exactly this (axes, shard) before trusting any recorded cell.
ResumeState resume_from(const std::string& path, const CampaignAxes& axes,
                        const CampaignShard& shard) {
  ResumeState state(axes.cell_count());
  std::ifstream is(path, std::ios::binary);
  if (!is) return state;  // no checkpoint yet
  std::string content((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
  if (content.empty() ||
      content.find_first_not_of(" \t\r\n") == std::string::npos) {
    return state;  // an empty placeholder file
  }
  if (content.find('\n') == std::string::npos) {
    // A newline-less file can be the artifact of a kill during the very
    // first (header) write — but only if it reads as a clipped header.
    // Then no record can exist and the run starts fresh (run_pending
    // truncates to valid_bytes = 0 before writing the new header). Any
    // other newline-less content means checkpoint_path points at some
    // unrelated file, which must never be silently overwritten.
    constexpr std::string_view kHeaderPrefix =
        "{\"schema\": \"gridsub-checkpoint-v1\"";
    const std::size_t overlap =
        std::min(content.size(), kHeaderPrefix.size());
    if (content.compare(0, overlap, kHeaderPrefix, 0, overlap) != 0) {
      throw CheckpointError(path +
                            ": not a gridsub checkpoint — refusing to "
                            "overwrite it");
    }
    return state;
  }
  CampaignCheckpoint checkpoint = parse_checkpoint(content, path);
  if (!same_campaign(checkpoint.axes, axes)) {
    throw CheckpointError(path + ": checkpoint belongs to campaign '" +
                          checkpoint.axes.name +
                          "' with different axes/replications/root seed — "
                          "refusing to resume '" + axes.name + "' from it");
  }
  if (checkpoint.shard.index != shard.index ||
      checkpoint.shard.count != shard.count) {
    throw CheckpointError(
        path + ": checkpoint was written by shard " +
        std::to_string(checkpoint.shard.index) + "/" +
        std::to_string(checkpoint.shard.count) + ", not shard " +
        std::to_string(shard.index) + "/" + std::to_string(shard.count) +
        " — resume with the same partition or merge instead");
  }
  state.fresh = false;
  state.valid_bytes = checkpoint.valid_bytes;
  state.missing_final_newline = checkpoint.missing_final_newline;
  for (CellResult& cell : checkpoint.cells) {
    state.have[cell.context.flat] = true;
    state.metrics[cell.context.flat] = std::move(cell.metrics);
  }
  return state;
}

/// Evaluates every not-yet-done cell owned by options.shard, appending
/// each to the checkpoint file as it completes; returns the number of
/// cells freshly evaluated.
std::size_t run_pending(const CampaignOptions& options,
                        const CampaignAxes& axes,
                        const CellEvaluator& evaluate,
                        const ResumeState& resume,
                        std::vector<CellResult>& cells) {
  const std::size_t n = axes.cell_count();
  const std::vector<bool>& done = resume.have;
  par::ThreadPool& pool =
      options.pool != nullptr ? *options.pool : par::ThreadPool::shared();

  std::ofstream checkpoint;
  if (!options.checkpoint_path.empty()) {
    // Repair any kill artifact before appending: cut a dropped partial
    // tail — or a clipped first header write, where valid_bytes is 0 —
    // so it cannot glue onto new content and garble the file, and
    // terminate a kept whole-JSON tail whose newline was clipped.
    std::error_code ec;
    if (std::filesystem::exists(options.checkpoint_path, ec) && !ec) {
      std::filesystem::resize_file(options.checkpoint_path,
                                   resume.valid_bytes, ec);
      if (ec) {
        throw CheckpointError("cannot truncate checkpoint file '" +
                              options.checkpoint_path +
                              "' to its valid prefix: " + ec.message());
      }
    }
    checkpoint.open(options.checkpoint_path,
                    std::ios::binary | std::ios::app);
    if (!checkpoint) {
      throw CheckpointError("cannot open checkpoint file '" +
                            options.checkpoint_path + "' for writing");
    }
    if (resume.fresh) {
      write_checkpoint_header(checkpoint, axes, options.shard);
      checkpoint.flush();
    } else if (resume.missing_final_newline) {
      checkpoint << '\n';
      checkpoint.flush();
    }
    if (!checkpoint) {
      throw CheckpointError("cannot write checkpoint header to '" +
                            options.checkpoint_path + "'");
    }
  }

  std::mutex progress_mutex;
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t flat = 0; flat < n; ++flat) {
    if (done[flat] || !options.shard.owns(flat)) continue;
    futures.push_back(pool.submit([&options, &axes, &evaluate, &cells,
                                   &progress_mutex, &checkpoint, flat] {
      CellResult result;
      result.context = axes.cell(flat);
      result.metrics = evaluate(result.context);
      {
        const std::lock_guard lock(progress_mutex);
        if (checkpoint.is_open()) {
          // One write + flush per record: a kill can only clip the final
          // line, which readers drop (see exp/checkpoint.hpp).
          std::ostringstream line;
          append_checkpoint_cell(line, result);
          checkpoint << line.str();
          checkpoint.flush();
          if (!checkpoint) {
            // ENOSPC/EIO: fail the run instead of silently completing
            // with nothing persisted — the crash-safety promise is the
            // whole point of the file.
            throw CheckpointError("failed to append cell " +
                                  std::to_string(flat) +
                                  " to checkpoint '" +
                                  options.checkpoint_path + "'");
          }
        }
        if (options.on_cell) options.on_cell(result);
      }
      cells[flat] = std::move(result);
    }));
  }
  // Settle every cell before touching `cells`, then surface the first
  // failure: returning early would tear down slots workers still write.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return futures.size();
}

}  // namespace

CampaignResult CampaignRunner::run(const CampaignAxes& axes,
                                   const CellEvaluator& evaluate) const {
  axes.validate();
  if (!evaluate) {
    throw std::invalid_argument("CampaignRunner::run: null evaluator");
  }
  options_.shard.validate();
  if (options_.shard.active()) {
    throw std::invalid_argument(
        "CampaignRunner::run: options name shard " +
        std::to_string(options_.shard.index) + "/" +
        std::to_string(options_.shard.count) +
        " but run() produces the whole grid — use run_shard() and "
        "merge_checkpoints()");
  }
  const std::size_t n = axes.cell_count();
  ResumeState resume(n);
  if (!options_.checkpoint_path.empty()) {
    resume = resume_from(options_.checkpoint_path, axes, options_.shard);
  }
  std::vector<CellResult> cells(n);
  for (std::size_t flat = 0; flat < n; ++flat) {
    if (!resume.have[flat]) continue;
    cells[flat].context = axes.cell(flat);
    cells[flat].metrics = std::move(resume.metrics[flat]);
  }
  run_pending(options_, axes, evaluate, resume, cells);
  return CampaignResult(axes, std::move(cells));
}

std::size_t CampaignRunner::run_shard(const CampaignAxes& axes,
                                      const CellEvaluator& evaluate) const {
  axes.validate();
  if (!evaluate) {
    throw std::invalid_argument("CampaignRunner::run_shard: null evaluator");
  }
  options_.shard.validate();
  if (options_.checkpoint_path.empty()) {
    throw std::invalid_argument(
        "CampaignRunner::run_shard: options.checkpoint_path is required "
        "(the shard's cells live only in the checkpoint file)");
  }
  ResumeState resume =
      resume_from(options_.checkpoint_path, axes, options_.shard);
  std::vector<CellResult> cells(axes.cell_count());
  return run_pending(options_, axes, evaluate, resume, cells);
}

}  // namespace gridsub::exp
