#pragma once

// Streaming campaign aggregation: constant-memory folds and the sink
// interface the campaign runner drives.
//
// The buffer-then-fold path (materialize every CellResult, aggregate at
// the end) costs O(cells) memory — prohibitive at the 10^6–10^8 cells the
// million-user studies need. This header replaces it with fold-as-you-go:
//
//   MomentFold     — one metric's streaming moments (Kahan/Neumaier sum
//                    for the mean, Welford M2 for the stderr, min/max);
//   AggregateFold  — per-(scenario, strategy, metric) folds fed in
//                    ascending flat order, emitting one AggregateRow as
//                    each group's last replication lands;
//   CampaignSink   — the runner-facing consumer interface. The runner
//                    guarantees ascending flat-order delivery (a bounded
//                    reorder window covers out-of-order completion), so
//                    every fold is schedule-independent and the streamed
//                    output stays byte-identical at any thread count;
//   CollectSink    — the old in-memory path as one sink implementation
//                    (small campaigns, and the equivalence oracle);
//   FoldSink       — O(groups) summary, no per-cell storage;
//   JsonStreamSink — the canonical campaign JSON written incrementally,
//                    byte-identical to CampaignResult::write_json.
//
// Determinism survives the fold rework because both the in-memory and the
// streamed paths now run the *same* accumulation code in the same flat
// order: Kahan compensation is deterministic for a fixed addition order,
// and the runner fixes that order regardless of thread count.

#include <cstddef>
#include <iosfwd>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "exp/campaign.hpp"
#include "report/series.hpp"
#include "report/table.hpp"

namespace gridsub::exp {

/// Streaming moments of one metric: compensated mean, single-pass
/// stderr-of-the-mean (Welford), and running min/max. Deterministic for a
/// fixed add() order.
class MomentFold {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  /// Kahan-compensated mean (0 before the first add).
  [[nodiscard]] double mean() const;
  /// Sample stderr of the mean, sqrt(M2 / (n-1) / n); 0 for n < 2.
  [[nodiscard]] double sem() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  void reset();

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;           // Neumaier running sum ...
  double compensation_ = 0.0;  // ... and its correction term
  double welford_mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Folds cells delivered in ascending flat order into per-(scenario,
/// strategy) AggregateRows, one MomentFold per metric, finalizing each row
/// as its last replication arrives. Memory is O(metrics) for the open
/// group plus O(groups) for finished rows — never O(cells).
class AggregateFold {
 public:
  explicit AggregateFold(CampaignAxes axes);

  /// Folds the next cell. Cells must arrive in ascending flat order with
  /// no gaps; metric names must match within a group (std::logic_error
  /// otherwise, same contract as CampaignResult). Returns a pointer to
  /// the freshly finalized row when this cell closed its group, nullptr
  /// otherwise.
  const AggregateRow* add(const CellResult& cell);

  [[nodiscard]] const CampaignAxes& axes() const { return axes_; }
  [[nodiscard]] std::size_t folded() const { return folded_; }
  [[nodiscard]] const std::vector<AggregateRow>& rows() const {
    return rows_;
  }
  [[nodiscard]] std::vector<AggregateRow> take_rows() {
    return std::move(rows_);
  }

 private:
  CampaignAxes axes_;
  std::size_t folded_ = 0;  ///< cells folded so far == expected next flat
  std::vector<std::string> names_;     ///< metric names of the open group
  std::vector<MomentFold> open_;       ///< one fold per metric
  std::vector<AggregateRow> rows_;
};

/// The aggregated metric of one row; throws std::out_of_range for unknown
/// names (shared by CampaignResult and CampaignSummary accessors).
[[nodiscard]] const AggregateRow::Metric& find_metric(
    const AggregateRow& row, const std::string& name);

/// One row per (scenario, strategy) group with mean columns for the
/// requested metrics (all metrics when the list is empty) — the shared
/// renderer behind CampaignResult::summary_table and
/// CampaignSummary::summary_table.
[[nodiscard]] report::Table summary_table(
    const CampaignAxes& axes, const std::vector<AggregateRow>& rows,
    const std::vector<std::string>& metrics = {});

/// A campaign reduced to its per-group aggregates: what FoldSink and
/// JsonStreamSink retain. O(groups) memory, same accessor surface as
/// CampaignResult minus cells().
struct CampaignSummary {
  CampaignAxes axes;
  std::vector<AggregateRow> rows;  ///< ascending (scenario, strategy)

  /// The aggregate of one (scenario, strategy) group.
  [[nodiscard]] const AggregateRow& aggregate(std::size_t scenario,
                                              std::size_t strategy) const;
  [[nodiscard]] double mean(std::size_t scenario, std::size_t strategy,
                            const std::string& metric) const;
  [[nodiscard]] double sem(std::size_t scenario, std::size_t strategy,
                           const std::string& metric) const;
  /// Group extrema across replications (min/max of the per-cell values).
  [[nodiscard]] double min(std::size_t scenario, std::size_t strategy,
                           const std::string& metric) const;
  [[nodiscard]] double max(std::size_t scenario, std::size_t strategy,
                           const std::string& metric) const;

  [[nodiscard]] report::Table summary_table(
      const std::vector<std::string>& metrics = {}) const;

  /// Mean of `metric` against the scenario index for one strategy — the
  /// figure-friendly view of a fold summary.
  [[nodiscard]] report::Series metric_series(std::size_t strategy,
                                             const std::string& metric) const;
};

/// Consumer of a campaign's cells, driven by CampaignRunner. The runner
/// calls begin() once, then on_cell() for every cell this process holds
/// (resumed and freshly evaluated alike) in strictly ascending flat
/// order — out-of-order completions are held back in a bounded reorder
/// window — then end() once after the last cell. All three are invoked
/// from worker threads but never concurrently (the runner serializes
/// deliveries under its own lock).
class CampaignSink {
 public:
  virtual ~CampaignSink() = default;
  virtual void begin(const CampaignAxes& axes);
  virtual void on_cell(const CellResult& cell) = 0;
  virtual void end();
};

/// Buffers every cell and produces the classic in-memory CampaignResult.
/// O(cells) memory — the small-campaign default and the oracle the
/// streamed sinks are tested against.
class CollectSink final : public CampaignSink {
 public:
  void begin(const CampaignAxes& axes) override;
  void on_cell(const CellResult& cell) override;

  /// The collected result; call once, after the run.
  [[nodiscard]] CampaignResult take();

 private:
  CampaignAxes axes_;
  std::vector<CellResult> cells_;
};

/// Folds cells into per-group aggregates as they stream past. O(groups)
/// memory.
class FoldSink final : public CampaignSink {
 public:
  void begin(const CampaignAxes& axes) override;
  void on_cell(const CellResult& cell) override;

  /// The aggregate summary; call once, after the run.
  [[nodiscard]] CampaignSummary take();

 private:
  std::optional<AggregateFold> fold_;
};

/// Streams the canonical campaign JSON — byte-identical to
/// CampaignResult::write_json — to an ostream while folding aggregates,
/// without ever holding more than the open group. The stream must outlive
/// the sink; end() flushes but does not close it. Write failures raise
/// std::runtime_error at the next delivery.
class JsonStreamSink final : public CampaignSink {
 public:
  explicit JsonStreamSink(std::ostream& os);

  void begin(const CampaignAxes& axes) override;
  void on_cell(const CellResult& cell) override;
  void end() override;

  /// The aggregate summary folded alongside the JSON; call after end().
  [[nodiscard]] CampaignSummary take();

 private:
  std::ostream* os_;
  std::optional<AggregateFold> fold_;
  bool ended_ = false;
};

namespace detail {

// Shared emitters for the canonical campaign JSON, used by both
// CampaignResult::write_json (buffered) and JsonStreamSink (streamed) so
// byte-identity between the two paths holds by construction.
void write_campaign_json_prefix(std::ostream& os, const CampaignAxes& axes);
void write_campaign_json_cell(std::ostream& os, const CampaignAxes& axes,
                              const CellResult& cell, bool last);
void write_campaign_json_aggregates(std::ostream& os,
                                    const CampaignAxes& axes,
                                    const std::vector<AggregateRow>& rows);

}  // namespace detail

}  // namespace gridsub::exp
