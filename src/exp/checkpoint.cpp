#include "exp/checkpoint.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

#include "exp/json_parse.hpp"
#include "exp/json_util.hpp"

namespace gridsub::exp {

namespace {

using detail::get_key;
using detail::get_string;
using detail::get_string_array;
using detail::get_uint;
using detail::JsonParser;
using detail::JsonValue;

constexpr std::string_view kSchema = "gridsub-checkpoint-v1";

}  // namespace

bool same_campaign(const CampaignAxes& a, const CampaignAxes& b) {
  return a.name == b.name && a.scenario_axis == b.scenario_axis &&
         a.strategy_axis == b.strategy_axis &&
         a.scenario_labels == b.scenario_labels &&
         a.strategy_labels == b.strategy_labels &&
         a.replications == b.replications && a.root_seed == b.root_seed;
}

bool same_cell_metrics(const CellMetrics& a, const CellMetrics& b) {
  // Duplicate records must agree bit-for-bit, which operator== on doubles
  // cannot express (NaN metrics — written as null, parsed back as NaN —
  // would make identical records look like conflicts).
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].first != b[i].first ||
        std::memcmp(&a[i].second, &b[i].second, sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

CheckpointHeader parse_checkpoint_header(const std::string& line,
                                         const std::string& origin) {
  const std::string where = origin + " header";
  const JsonValue v = JsonParser(line, where).parse();
  if (v.kind != JsonValue::Kind::kObject) {
    throw CheckpointError(origin + ": header is not an object");
  }
  if (get_string(v, "schema", where) != kSchema) {
    throw CheckpointError(where + ": unknown schema \"" +
                          get_string(v, "schema", where) + "\" (expected " +
                          std::string(kSchema) + ")");
  }
  CheckpointHeader out;
  out.axes.name = get_string(v, "name", where);
  out.axes.scenario_axis = get_string(v, "scenario_axis", where);
  out.axes.strategy_axis = get_string(v, "strategy_axis", where);
  out.axes.scenario_labels = get_string_array(v, "scenarios", where);
  out.axes.strategy_labels = get_string_array(v, "strategies", where);
  out.axes.replications =
      static_cast<std::size_t>(get_uint(v, "replications", where));
  out.axes.root_seed = get_uint(v, "root_seed", where);
  out.shard.index = static_cast<std::size_t>(get_uint(v, "shard_index",
                                                      where));
  out.shard.count = static_cast<std::size_t>(get_uint(v, "shard_count",
                                                      where));
  try {
    out.axes.validate();
    out.shard.validate();
  } catch (const std::invalid_argument& e) {
    throw CheckpointError(where + ": " + e.what());
  }
  return out;
}

CellResult parse_checkpoint_record(const std::string& line,
                                   const std::string& origin,
                                   const CampaignAxes& axes) {
  const JsonValue v = JsonParser(line, origin).parse();
  if (v.kind != JsonValue::Kind::kObject) {
    throw CheckpointError(origin + ": record is not an object");
  }
  const std::uint64_t flat = get_uint(v, "cell", origin);
  if (flat >= axes.cell_count()) {
    throw CheckpointError(origin + ": cell index " + std::to_string(flat) +
                          " is outside the " +
                          std::to_string(axes.cell_count()) + "-cell grid");
  }
  CellResult cell;
  cell.context = axes.cell(static_cast<std::size_t>(flat));
  // The recorded seed must reproduce from the header's axes; a mismatch
  // means the file and the campaign disagree (corruption or a stale
  // checkpoint from an edited spec) and resuming would mix RNG streams.
  if (get_uint(v, "seed", origin) != cell.context.seed) {
    throw CheckpointError(origin + ": seed mismatch for cell " +
                          std::to_string(flat) +
                          " (checkpoint does not match this campaign)");
  }
  const JsonValue& metrics = get_key(v, "metrics", origin);
  if (metrics.kind != JsonValue::Kind::kObject) {
    throw CheckpointError(origin + ": \"metrics\" is not an object");
  }
  cell.metrics.reserve(metrics.object.size());
  for (const auto& [name, value] : metrics.object) {
    if (value.kind != JsonValue::Kind::kNumber &&
        value.kind != JsonValue::Kind::kNull) {
      throw CheckpointError(origin + ": metric \"" + name +
                            "\" is not a number");
    }
    cell.metrics.emplace_back(name, value.number);
  }
  return cell;
}

void write_checkpoint_header(std::ostream& os, const CampaignAxes& axes,
                             const CampaignShard& shard) {
  axes.validate();
  shard.validate();
  os << "{\"schema\": \"" << kSchema << "\", \"name\": ";
  detail::json_escape(os, axes.name);
  os << ", \"scenario_axis\": ";
  detail::json_escape(os, axes.scenario_axis);
  os << ", \"strategy_axis\": ";
  detail::json_escape(os, axes.strategy_axis);
  os << ", \"scenarios\": [";
  for (std::size_t i = 0; i < axes.scenario_labels.size(); ++i) {
    if (i > 0) os << ", ";
    detail::json_escape(os, axes.scenario_labels[i]);
  }
  os << "], \"strategies\": [";
  for (std::size_t i = 0; i < axes.strategy_labels.size(); ++i) {
    if (i > 0) os << ", ";
    detail::json_escape(os, axes.strategy_labels[i]);
  }
  os << "], \"replications\": " << axes.replications
     << ", \"root_seed\": " << axes.root_seed
     << ", \"shard_index\": " << shard.index
     << ", \"shard_count\": " << shard.count << "}\n";
}

void append_checkpoint_cell(std::ostream& os, const CellResult& cell) {
  os << "{\"cell\": " << cell.context.flat
     << ", \"seed\": " << cell.context.seed << ", \"metrics\": {";
  for (std::size_t m = 0; m < cell.metrics.size(); ++m) {
    if (m > 0) os << ", ";
    detail::json_escape(os, cell.metrics[m].first);
    os << ": ";
    detail::json_number(os, cell.metrics[m].second);
  }
  os << "}}\n";
}

CheckpointWriter::CheckpointWriter(const std::string& path,
                                   const CampaignAxes& axes,
                                   const CampaignShard& shard,
                                   const Resume& resume, IoFaultHook io_fault)
    : path_(path), io_fault_(std::move(io_fault)) {
  // Repair any kill artifact before appending: cut a dropped partial
  // tail — or a clipped first header write, where valid_bytes is 0 — so
  // it cannot glue onto new content and garble the file.
  std::error_code ec;
  if (std::filesystem::exists(path_, ec) && !ec) {
    std::filesystem::resize_file(path_, resume.valid_bytes, ec);
    if (ec) {
      throw CheckpointError("cannot truncate checkpoint file '" + path_ +
                            "' to its valid prefix: " + ec.message());
    }
  }
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_) {
    throw CheckpointError("cannot open checkpoint file '" + path_ +
                          "' for writing");
  }
  if (resume.fresh) {
    write_checkpoint_header(out_, axes, shard);
    out_.flush();
  } else if (resume.missing_final_newline) {
    out_ << '\n';
    out_.flush();
  }
  if (!out_) {
    throw CheckpointError("cannot write checkpoint header to '" + path_ +
                          "'");
  }
}

void CheckpointWriter::append(const CellResult& cell) {
  // Serialize outside the lock; one write + flush per record under it, so
  // a kill can only clip the final line (which readers drop).
  std::ostringstream line;
  append_checkpoint_cell(line, cell);
  const std::string text = line.str();
  const core::MutexLock lock(mu_);
  if (io_fault_) {
    const std::uint64_t index = writes_;
    const IoFaultDirective d = io_fault_(index, text.size());
    if (d.kind != IoFaultDirective::Kind::kNone) {
      ++writes_;
      const std::size_t keep = std::min(d.keep_bytes, text.size());
      if (d.kind != IoFaultDirective::Kind::kEnospc && keep > 0) {
        out_.write(text.data(), static_cast<std::streamsize>(keep));
        out_.flush();
      }
      const char* what =
          d.kind == IoFaultDirective::Kind::kEnospc
              ? "injected ENOSPC (no bytes written) appending cell "
              : (d.kind == IoFaultDirective::Kind::kShortWrite
                     ? "injected short write appending cell "
                     : "injected kill (torn tail) appending cell ");
      throw CheckpointError(what + std::to_string(cell.context.flat) +
                            " to checkpoint '" + path_ + "' (kept " +
                            std::to_string(keep) + " of " +
                            std::to_string(text.size()) + " bytes)");
    }
  }
  ++writes_;
  out_ << text;
  out_.flush();
  if (!out_) {
    throw CheckpointError("failed to append cell " +
                          std::to_string(cell.context.flat) +
                          " to checkpoint '" + path_ + "'");
  }
}

CampaignCheckpoint parse_checkpoint(std::string_view content,
                                    const std::string& origin) {
  CampaignCheckpoint out;

  // Split into newline-terminated lines plus a possibly unterminated tail
  // (the artifact of a writer killed mid-append).
  std::vector<std::string> lines;
  std::string tail;
  std::size_t start = 0;
  while (start < content.size()) {
    const std::size_t nl = content.find('\n', start);
    if (nl == std::string_view::npos) {
      tail = std::string(content.substr(start));
      break;
    }
    lines.push_back(std::string(content.substr(start, nl - start)));
    start = nl + 1;
  }
  if (lines.empty()) {
    throw CheckpointError(origin + ": missing checkpoint header");
  }
  const CheckpointHeader header = parse_checkpoint_header(lines.front(),
                                                          origin);
  out.axes = header.axes;
  out.shard = header.shard;

  std::vector<CellResult> by_flat(out.axes.cell_count());
  std::vector<bool> have(out.axes.cell_count(), false);
  const auto add_record = [&](const std::string& line, std::size_t lineno) {
    const std::string where = origin + ":" + std::to_string(lineno);
    CellResult cell = parse_checkpoint_record(line, where, out.axes);
    const std::size_t flat = cell.context.flat;
    if (have[flat]) {
      if (!same_cell_metrics(by_flat[flat].metrics, cell.metrics)) {
        throw CheckpointError(where + ": conflicting duplicate record for "
                              "cell " + std::to_string(flat));
      }
      return;  // benign duplicate (e.g. a rerun after a crash-less stop)
    }
    have[flat] = true;
    by_flat[flat] = std::move(cell);
  };
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    add_record(lines[i], i + 1);
  }
  out.valid_bytes = content.size();
  if (!tail.empty()) {
    // A partial final line is the expected kill artifact: drop it and let
    // the cell rerun. If it parses as a complete JSON object only the
    // terminating newline was lost, so the data is whole — keep it (and
    // still semantically validate it like any other record; a wrong seed
    // in complete JSON is corruption, not a truncated write).
    bool whole = true;
    try {
      (void)JsonParser(tail, origin + " tail").parse();
    } catch (const CheckpointError&) {
      whole = false;
      out.dropped_partial_tail = true;
      out.valid_bytes = content.size() - tail.size();
    }
    if (whole) {
      add_record(tail, lines.size() + 1);
      out.missing_final_newline = true;
    }
  }
  for (std::size_t flat = 0; flat < have.size(); ++flat) {
    if (have[flat]) out.cells.push_back(std::move(by_flat[flat]));
  }
  return out;
}

CampaignCheckpoint read_checkpoint(std::istream& is,
                                   const std::string& origin) {
  const std::string content((std::istreambuf_iterator<char>(is)),
                            std::istreambuf_iterator<char>());
  return parse_checkpoint(content, origin);
}

CampaignCheckpoint load_checkpoint(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw CheckpointError("cannot open checkpoint file '" + path + "'");
  }
  return read_checkpoint(is, path);
}

CampaignResult merge_checkpoints(std::vector<CampaignCheckpoint> shards) {
  if (shards.empty()) {
    throw CheckpointError("merge_checkpoints: no checkpoints given");
  }
  const CampaignAxes& axes = shards.front().axes;
  std::vector<CellResult> cells(axes.cell_count());
  std::vector<bool> have(axes.cell_count(), false);
  for (CampaignCheckpoint& shard : shards) {
    if (!same_campaign(shard.axes, axes)) {
      throw CheckpointError(
          "merge_checkpoints: checkpoint for campaign '" + shard.axes.name +
          "' does not match '" + axes.name + "' (axes, replications, and "
          "root seed must all agree)");
    }
    for (CellResult& cell : shard.cells) {
      const std::size_t flat = cell.context.flat;
      if (have[flat]) {
        if (!same_cell_metrics(cells[flat].metrics, cell.metrics)) {
          throw CheckpointError(
              "merge_checkpoints: shards disagree on cell " +
              std::to_string(flat) + " of campaign '" + axes.name + "'");
        }
        continue;
      }
      have[flat] = true;
      cells[flat] = std::move(cell);
    }
  }
  const auto missing =
      static_cast<std::size_t>(std::count(have.begin(), have.end(), false));
  if (missing > 0) {
    throw CheckpointError(
        "merge_checkpoints: campaign '" + axes.name + "' is incomplete: " +
        std::to_string(missing) + " of " + std::to_string(axes.cell_count()) +
        " cells missing (did every shard run to completion?)");
  }
  return CampaignResult(axes, std::move(cells));
}

}  // namespace gridsub::exp
