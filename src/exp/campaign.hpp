#pragma once

// Experiment-campaign engine: the (scenario × strategy × replication) grid.
//
// Every simulation study in this repository reduces to the same shape: a
// grid of independent cells, each deterministic in its own seed, whose
// metrics are aggregated per (scenario, strategy) group. This engine owns
// that shape once — benches declare axes and a cell evaluator, the runner
// shards cells across the par::ThreadPool, and the result renders itself
// as a report::Table or JSON.
//
// Determinism contract (the engine's one load-bearing guarantee):
//
//   seeding   — every cell's seed is a chained SplitMix64 hash of
//               (root_seed, scenario, strategy, replication) and of
//               nothing else: not thread count, not execution order,
//               not which process evaluates the cell;
//   placement — results land in a pre-sized slot indexed by the cell's
//               flat index (row-major scenario → strategy → replication);
//   fold order — aggregation folds each (scenario, strategy) group's
//               replications in ascending flat-index order, so floating-
//               point sums are schedule-independent.
//
// Together these make a campaign's output (JSON bytes included) identical
// at 1, 2, or N worker threads — and, because the per-cell seed is also
// process-independent, across interrupted-and-resumed runs and across
// N-process sharded runs merged back together (exp/checkpoint.hpp).
// CampaignRunner::run must be called from outside the pool it executes on
// (cells may not recursively launch campaigns on the same pool).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "report/table.hpp"

namespace gridsub::exp {

/// Position of one cell in the campaign grid, plus its derived seed.
struct CellContext {
  std::size_t flat = 0;         ///< index in row-major (scenario, strategy,
                                ///< replication) order
  std::size_t scenario = 0;     ///< index on the scenario axis
  std::size_t strategy = 0;     ///< index on the strategy axis
  std::size_t replication = 0;  ///< replication number within the group
  std::uint64_t seed = 0;       ///< deterministic per-cell seed
};

/// Ordered (name, value) metric list produced by one cell. All cells of a
/// (scenario, strategy) group must emit the same names in the same order.
using CellMetrics = std::vector<std::pair<std::string, double>>;

/// The sub-grid one process owns in a multi-process campaign: cells whose
/// flat index satisfies `flat % count == index`. Round-robin assignment
/// interleaves scenarios and replications, so shards stay load-balanced
/// even when cell cost varies along an axis. `{0, 1}` (the default) is
/// the whole grid.
struct CampaignShard {
  std::size_t index = 0;
  std::size_t count = 1;

  [[nodiscard]] bool active() const { return count > 1; }
  [[nodiscard]] bool owns(std::size_t flat) const {
    return flat % count == index;
  }
  /// Throws std::invalid_argument unless index < count and count >= 1.
  void validate() const;
};

/// Evaluates one cell. Called concurrently from pool workers: it must not
/// touch shared mutable state (everything it needs travels in the context
/// seed and whatever immutable state the closure captures).
using CellEvaluator = std::function<CellMetrics(const CellContext&)>;

/// The abstract campaign grid: named axes, replication count, seed policy.
/// Sim-level specs (exp/experiment.hpp) compile down to this.
struct CampaignAxes {
  std::string name = "campaign";
  std::string scenario_axis = "scenario";  ///< display name of axis 1
  std::string strategy_axis = "strategy";  ///< display name of axis 2
  std::vector<std::string> scenario_labels;
  std::vector<std::string> strategy_labels;
  std::size_t replications = 1;
  std::uint64_t root_seed = 20090611;

  [[nodiscard]] std::size_t cell_count() const {
    return scenario_labels.size() * strategy_labels.size() * replications;
  }

  /// SplitMix64 hash of (root_seed, scenario, strategy, replication):
  /// depends on indices only, never on execution order or thread count.
  [[nodiscard]] std::uint64_t cell_seed(std::size_t scenario,
                                        std::size_t strategy,
                                        std::size_t replication) const;

  /// Decodes a flat index into a full context (with seed).
  [[nodiscard]] CellContext cell(std::size_t flat) const;

  /// Throws std::invalid_argument on empty axes or zero replications.
  void validate() const;
};

/// One evaluated cell: its grid position and the metrics it produced.
struct CellResult {
  CellContext context;
  CellMetrics metrics;
};

/// Mean / standard-error summary of one (scenario, strategy) group.
struct AggregateRow {
  std::size_t scenario = 0;
  std::size_t strategy = 0;
  std::size_t replications = 0;
  struct Metric {
    std::string name;
    double mean = 0.0;
    double sem = 0.0;  ///< sample stderr of the mean (0 for 1 replication)
    double min = 0.0;  ///< smallest per-cell value across replications
    double max = 0.0;  ///< largest per-cell value across replications
  };
  std::vector<Metric> metrics;  ///< in cell metric order
};

/// Consumer of campaign cells in ascending flat order (exp/fold.hpp).
class CampaignSink;

/// Collected campaign output: per-cell metrics in flat order plus
/// per-group aggregates, renderable as a table or deterministic JSON.
class CampaignResult {
 public:
  CampaignResult(CampaignAxes axes, std::vector<CellResult> cells);

  [[nodiscard]] const CampaignAxes& axes() const { return axes_; }
  [[nodiscard]] const std::vector<CellResult>& cells() const {
    return cells_;
  }
  [[nodiscard]] const std::vector<AggregateRow>& aggregates() const {
    return aggregates_;
  }

  /// The aggregate of one (scenario, strategy) group.
  [[nodiscard]] const AggregateRow& aggregate(std::size_t scenario,
                                              std::size_t strategy) const;

  /// Aggregated mean / stderr of a named metric; throws std::out_of_range
  /// for unknown names.
  [[nodiscard]] double mean(std::size_t scenario, std::size_t strategy,
                            const std::string& metric) const;
  [[nodiscard]] double sem(std::size_t scenario, std::size_t strategy,
                           const std::string& metric) const;

  /// One row per (scenario, strategy) group with mean columns for the
  /// requested metrics (all metrics when the list is empty).
  [[nodiscard]] report::Table summary_table(
      const std::vector<std::string>& metrics = {}) const;

  /// Deterministic JSON: stable key order, shortest round-trip doubles.
  /// Identical campaigns produce byte-identical output at any thread count.
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string to_json() const;

 private:
  CampaignAxes axes_;
  std::vector<CellResult> cells_;
  std::vector<AggregateRow> aggregates_;
};

/// Monotone progress snapshot delivered to CampaignOptions::on_progress.
/// `completed` counts every cell this process holds — restored from a
/// checkpoint or freshly evaluated — so resume-aware ETAs come out right;
/// `fresh` counts only cells evaluated in this run (the rate basis).
struct CampaignProgress {
  std::size_t completed = 0;  ///< cells done so far (monotone, <= total)
  std::size_t total = 0;      ///< cells this process will hold at the end
  std::size_t fresh = 0;      ///< cells freshly evaluated this run
  CampaignShard shard;        ///< the partition this process owns
};

struct CampaignOptions {
  /// Pool to shard cells on; nullptr uses par::ThreadPool::shared().
  par::ThreadPool* pool = nullptr;
  /// Progress callback, invoked under the runner's lock: once with the
  /// resumed baseline before evaluation starts, then after every freshly
  /// completed cell. Snapshots are monotone in `completed`. Completion
  /// order is nondeterministic — do not derive results from it; the
  /// callback must not throw.
  std::function<void(const CampaignProgress&)> on_progress;
  /// Size of the reorder window that holds out-of-order cell completions
  /// back so sinks see ascending flat order: a worker may start cell k
  /// (in claim order) only when fewer than `reorder_window` earlier cells
  /// are still outstanding. Bounds both sink buffering and checkpoint
  /// record disorder. 0 picks max(16, 2 × pool threads).
  std::size_t reorder_window = 0;
  /// When non-empty, every completed cell is appended to this checkpoint
  /// file (exp/checkpoint.hpp format) and flushed as it finishes, and a
  /// later run with the same axes resumes by skipping recorded cells.
  /// Because cells are seed-pure and metric doubles round-trip exactly,
  /// an interrupted-and-resumed campaign produces byte-identical JSON to
  /// a straight-through run.
  std::string checkpoint_path;
  /// The cell partition this process owns; `{0, 1}` (default) is the
  /// whole grid. A multi-shard partition is only meaningful through
  /// run_shard() + merge_checkpoints().
  CampaignShard shard;
};

/// Executes campaign cells concurrently and deterministically.
class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignOptions options = {});

  /// Runs every cell of `axes` through `evaluate`, collecting the full
  /// in-memory result (a CollectSink under the hood). Cells are claimed
  /// from the pool dynamically (load balancing; cell costs vary). The
  /// lowest-claim cell exception is rethrown after all cells have
  /// settled — with checkpointing enabled, cells that completed before
  /// the failure are already on disk, so the rerun resumes rather than
  /// restarts. Throws std::invalid_argument when options name a
  /// multi-shard partition (use run_shard) and CheckpointError when an
  /// existing checkpoint is corrupt or belongs to a different campaign.
  [[nodiscard]] CampaignResult run(const CampaignAxes& axes,
                                   const CellEvaluator& evaluate) const;

  /// Like run(), but streams cells into `sink` in ascending flat order
  /// instead of materializing a CampaignResult: memory stays
  /// O(reorder_window) + whatever the sink keeps (O(groups) for
  /// FoldSink/JsonStreamSink). Resumed cells flow through the sink too,
  /// so a resumed run's sink output is identical to a straight one's.
  void run_with_sink(const CampaignAxes& axes, const CellEvaluator& evaluate,
                     CampaignSink& sink) const;

  /// Evaluates only this process's shard of the grid (options.shard),
  /// appending completed cells to options.checkpoint_path (required) and
  /// resuming from it when it already exists. Returns the number of cells
  /// freshly evaluated (0 when the shard was already complete). When
  /// `sink` is non-null it receives the shard's cells (resumed and fresh)
  /// in ascending flat order. The full campaign result is recovered by
  /// merge_checkpoints() / tools/gridsub_campaign_merge once every shard
  /// has run.
  [[nodiscard]] std::size_t run_shard(const CampaignAxes& axes,
                                      const CellEvaluator& evaluate,
                                      CampaignSink* sink = nullptr) const;

 private:
  CampaignOptions options_;
};

}  // namespace gridsub::exp
