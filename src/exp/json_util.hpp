#pragma once

// Internal deterministic-JSON output helpers shared by the campaign
// result writer (campaign.cpp) and the checkpoint writer (checkpoint.cpp).
// Not part of the public exp/ API.

#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <string_view>

namespace gridsub::exp::detail {

inline void json_escape(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

// Shortest round-trip representation via std::to_chars: byte-identical for
// equal doubles, locale-independent, and re-parses to the same value.
inline void json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; emit null so consumers fail loudly, not subtly.
    os << "null";
    return;
  }
  char buf[32];
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  os.write(buf, r.ptr - buf);
}

}  // namespace gridsub::exp::detail
