#pragma once

// Stage-output checkpointing for multi-stage campaigns.
//
// Staged benches (crossweek replay, Table 6 cross-week transfer) run a
// fit/tune campaign whose *outputs* parameterize later campaigns. Cell
// checkpoints (exp/checkpoint.hpp) already make each campaign kill-safe,
// but a fit stage used to live only in process memory: every shard of a
// multi-process run recomputed it, and a kill between stages lost it.
//
// run_stage() closes that gap with a two-file scheme in a shared
// directory:
//
//   <name>.stage.ckpt — the ordinary cell checkpoint of the in-progress
//            stage campaign: a kill mid-stage resumes cell-by-cell;
//   <name>.stage      — the finished stage output, written to a temp file
//            and atomically renamed. Line 1 binds the stage name and an
//            upstream-identity string (whatever inputs the stage was
//            computed from); the rest is a complete campaign checkpoint,
//            so metric doubles round-trip exactly and a reloaded stage
//            reproduces byte-identical downstream results.
//
// A later run — or a sibling shard sharing the directory — loads the
// .stage file instead of recomputing. A stage whose recorded identity or
// axes no longer match is stale (the upstream inputs changed): it is
// discarded and recomputed, loudly. Corrupt stage files raise
// CheckpointError; they cannot be kill artifacts, because the rename is
// atomic.

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>

#include "exp/campaign.hpp"

namespace gridsub::exp {

struct StageOptions {
  /// Directory holding .stage/.stage.ckpt files. Empty: run in-memory
  /// with no persistence (single-process, no resume).
  std::string dir;
  /// Pool for the stage campaign; nullptr uses par::ThreadPool::shared().
  par::ThreadPool* pool = nullptr;
  /// Progress passthrough to the stage campaign.
  std::function<void(const CampaignProgress&)> on_progress;
  /// Stream for "[stage] ..." load/evaluate messages; nullptr is quiet.
  std::ostream* log = nullptr;
};

struct StageResult {
  CampaignResult result;
  bool loaded = false;     ///< true when served from the .stage file
  std::size_t fresh = 0;   ///< cells evaluated in this process
};

/// Runs (or loads) one stage campaign over the full grid. `identity`
/// names the upstream inputs the stage outputs depend on (dataset names,
/// parameter revisions, ...); it is bound into the stage header and
/// checked on load, so a stage computed from different inputs is
/// recomputed instead of silently reused. Evaluators must be pure in the
/// cell context — everything downstream consumes travels in the metrics.
[[nodiscard]] StageResult run_stage(const CampaignAxes& axes,
                                    const CellEvaluator& evaluate,
                                    const std::string& identity,
                                    const StageOptions& options = {});

/// The .stage path run_stage() uses for a campaign name.
[[nodiscard]] std::string stage_path(const std::string& dir,
                                     const std::string& name);

}  // namespace gridsub::exp
