#include "exp/stage.hpp"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>
#include <utility>

#include "exp/checkpoint.hpp"
#include "exp/json_parse.hpp"
#include "exp/json_util.hpp"

namespace gridsub::exp {

namespace {

constexpr std::string_view kStageSchema = "gridsub-stage-v1";

std::string ckpt_path(const std::string& dir, const std::string& name) {
  return dir + "/" + name + ".stage.ckpt";
}

void log_line(const StageOptions& options, const std::string& message) {
  if (options.log != nullptr) *options.log << "[stage] " << message << "\n";
}

/// Writes line 1 of a .stage file: the stage name + upstream identity.
void write_stage_header(std::ostream& os, const std::string& name,
                        const std::string& identity) {
  os << "{\"schema\": \"" << kStageSchema << "\", \"stage\": ";
  detail::json_escape(os, name);
  os << ", \"identity\": ";
  detail::json_escape(os, identity);
  os << "}\n";
}

/// Attempts to serve the stage from an existing .stage file. Returns the
/// result on a clean load; nullopt when the file is absent or stale
/// (wrong identity/axes — the caller recomputes). Corrupt content raises
/// CheckpointError: the rename is atomic, so a bad .stage file is real
/// corruption, never a kill artifact.
std::optional<CampaignResult> load_stage(const std::string& path,
                                         const CampaignAxes& axes,
                                         const std::string& identity,
                                         const StageOptions& options) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  std::string content((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
  const std::size_t nl = content.find('\n');
  if (nl == std::string::npos) {
    throw CheckpointError(path + ": stage file has no header line");
  }
  const std::string header_line = content.substr(0, nl);
  const std::string where = path + " stage header";
  const detail::JsonValue v =
      detail::JsonParser(header_line, where).parse();
  if (v.kind != detail::JsonValue::Kind::kObject) {
    throw CheckpointError(where + ": not an object");
  }
  if (detail::get_string(v, "schema", where) != kStageSchema) {
    throw CheckpointError(where + ": unknown schema \"" +
                          detail::get_string(v, "schema", where) + "\"");
  }
  if (detail::get_string(v, "stage", where) != axes.name) {
    throw CheckpointError(where + ": holds stage '" +
                          detail::get_string(v, "stage", where) +
                          "', expected '" + axes.name + "'");
  }
  if (detail::get_string(v, "identity", where) != identity) {
    log_line(options, axes.name + ": upstream identity changed, "
                                  "recomputing");
    return std::nullopt;
  }
  CampaignCheckpoint checkpoint =
      parse_checkpoint(std::string_view(content).substr(nl + 1), path);
  if (!same_campaign(checkpoint.axes, axes)) {
    log_line(options, axes.name + ": stage axes changed, recomputing");
    return std::nullopt;
  }
  if (!checkpoint.complete()) {
    throw CheckpointError(path + ": stage file is incomplete (" +
                          std::to_string(checkpoint.cells.size()) + " of " +
                          std::to_string(axes.cell_count()) +
                          " cells) — it should never have been published");
  }
  log_line(options, axes.name + ": loaded " +
                        std::to_string(checkpoint.cells.size()) +
                        " cells from " + path);
  return CampaignResult(checkpoint.axes, std::move(checkpoint.cells));
}

/// Publishes a finished stage: temp file + atomic rename, then drops the
/// now-redundant cell checkpoint.
void publish_stage(const std::string& dir, const CampaignResult& result,
                   const std::string& identity) {
  const std::string final_path = stage_path(dir, result.axes().name);
  const std::string tmp_path =
      final_path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream os(tmp_path, std::ios::binary);
    if (!os) {
      throw CheckpointError("cannot write stage file '" + tmp_path + "'");
    }
    write_stage_header(os, result.axes().name, identity);
    write_checkpoint_header(os, result.axes());
    for (const CellResult& cell : result.cells()) {
      append_checkpoint_cell(os, cell);
    }
    os.flush();
    if (!os) {
      throw CheckpointError("failed writing stage file '" + tmp_path + "'");
    }
  }
  std::filesystem::rename(tmp_path, final_path);
  std::error_code ec;
  std::filesystem::remove(ckpt_path(dir, result.axes().name), ec);
}

}  // namespace

std::string stage_path(const std::string& dir, const std::string& name) {
  return dir + "/" + name + ".stage";
}

StageResult run_stage(const CampaignAxes& axes,
                      const CellEvaluator& evaluate,
                      const std::string& identity,
                      const StageOptions& options) {
  axes.validate();

  CampaignOptions campaign_options;
  campaign_options.pool = options.pool;
  campaign_options.on_progress = options.on_progress;

  if (options.dir.empty()) {
    CampaignResult result = CampaignRunner(campaign_options)
                                .run(axes, evaluate);
    log_line(options, axes.name + ": evaluated " +
                          std::to_string(axes.cell_count()) +
                          " cells (in-memory, no stage dir)");
    return {std::move(result), /*loaded=*/false,
            /*fresh=*/axes.cell_count()};
  }

  std::filesystem::create_directories(options.dir);
  const std::string path = stage_path(options.dir, axes.name);
  if (std::optional<CampaignResult> cached =
          load_stage(path, axes, identity, options)) {
    return {std::move(*cached), /*loaded=*/true, /*fresh=*/0};
  }
  // Stale stage output (identity or axes changed): its cell checkpoint is
  // just as stale and would fail the runner's axes check — clear both.
  std::error_code ec;
  if (std::filesystem::exists(path, ec) && !ec) {
    std::filesystem::remove(path, ec);
    std::filesystem::remove(ckpt_path(options.dir, axes.name), ec);
  }

  campaign_options.checkpoint_path = ckpt_path(options.dir, axes.name);
  std::size_t resumed = 0;
  std::size_t fresh = 0;
  auto inner = std::move(campaign_options.on_progress);
  campaign_options.on_progress =
      [&resumed, &fresh, inner](const CampaignProgress& p) {
        if (p.fresh == 0) resumed = p.completed;
        fresh = p.fresh;
        if (inner) inner(p);
      };
  CampaignResult result =
      CampaignRunner(std::move(campaign_options)).run(axes, evaluate);
  publish_stage(options.dir, result, identity);
  log_line(options, axes.name + ": evaluated " + std::to_string(fresh) +
                        " cells (resumed " + std::to_string(resumed) +
                        ") -> " + path);
  return {std::move(result), /*loaded=*/false, /*fresh=*/fresh};
}

}  // namespace gridsub::exp
