#pragma once

// Campaign checkpoint files: crash-safe persistence and multi-process
// sharding for the campaign engine.
//
// A checkpoint is a JSON-Lines file written and read only by gridsub:
//
//   line 1   header  — the full campaign identity (name, axis display
//            names, axis labels, replications, root seed) plus the shard
//            this file belongs to;
//   line 2+  records — one completed cell each:
//            {"cell": <flat>, "seed": <seed>, "metrics": {"name": v, ...}}
//
// The format round-trips exactly: metric values are written in shortest
// std::to_chars form and re-parsed with std::from_chars, so a resumed or
// merged campaign reproduces the *byte-identical* CampaignResult JSON of
// an uninterrupted single-process run (cells are seed-pure; see
// campaign.hpp's determinism contract).
//
// Crash model: records are appended and flushed one per completed cell.
// A process killed mid-write can only leave a partial final line with no
// terminating newline; readers drop that tail (the cell simply reruns on
// resume). Any *newline-terminated* line that fails to parse, a header
// that does not match the campaign being resumed, a record whose seed
// disagrees with the axes' seed rule, or conflicting duplicate records
// raise CheckpointError — corruption is a clean error, never silently
// wrong results.

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/thread_annotations.hpp"
#include "exp/campaign.hpp"

namespace gridsub::exp {

/// Raised on unreadable, corrupt, or mismatched checkpoint data.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A parsed checkpoint: the campaign identity reconstructed from the
/// header plus every completed cell on record (sorted by flat index;
/// possibly a subset of the grid when the run was interrupted or sharded).
struct CampaignCheckpoint {
  CampaignAxes axes;
  CampaignShard shard;
  std::vector<CellResult> cells;  ///< completed cells, ascending flat index
  /// True when the file ended in a partial record (the kill artifact);
  /// the tail was dropped and its cell will rerun on resume.
  bool dropped_partial_tail = false;
  /// Bytes of the stream that parsed cleanly: up to and including the
  /// last terminated record, or the whole stream when an unterminated
  /// whole-JSON tail was kept. A resuming writer truncates the file to
  /// this length before appending, so a dropped tail can never glue onto
  /// the next record.
  std::size_t valid_bytes = 0;
  /// True when the kept content does not end in a newline (a whole-JSON
  /// tail whose terminator was clipped); a resuming writer must emit
  /// '\n' before its first record.
  bool missing_final_newline = false;

  /// True when every cell of the grid is on record.
  [[nodiscard]] bool complete() const {
    return cells.size() == axes.cell_count();
  }
};

/// True when two axes describe the same campaign (name, axis display
/// names, labels, replications, and root seed all equal) — the identity a
/// resume or merge must verify before trusting recorded cells.
[[nodiscard]] bool same_campaign(const CampaignAxes& a, const CampaignAxes& b);

/// The identity a checkpoint's first line binds the file to.
struct CheckpointHeader {
  CampaignAxes axes;
  CampaignShard shard;
};

/// Parses one header line (no trailing newline). Exposed so streaming
/// readers (tools/gridsub_campaign_merge, exp/stage.cpp) can process
/// checkpoint files line-by-line in O(window) memory instead of
/// materializing them. Throws CheckpointError on anything malformed.
[[nodiscard]] CheckpointHeader parse_checkpoint_header(
    const std::string& line, const std::string& origin = "<memory>");

/// Parses one record line (no trailing newline) against the campaign the
/// header announced, verifying the flat index is in range and the
/// recorded seed reproduces from the axes. Throws CheckpointError.
[[nodiscard]] CellResult parse_checkpoint_record(const std::string& line,
                                                 const std::string& origin,
                                                 const CampaignAxes& axes);

/// Bit-exact metric equality (names, order, and double bit patterns —
/// NaN-safe, unlike operator==): the test duplicate records must pass.
[[nodiscard]] bool same_cell_metrics(const CellMetrics& a,
                                     const CellMetrics& b);

/// Writes the header line binding a checkpoint file to (axes, shard).
void write_checkpoint_header(std::ostream& os, const CampaignAxes& axes,
                             const CampaignShard& shard = {});

/// What an injected I/O fault does to one checkpoint append. Returned by
/// an IoFaultHook (the seam src/fault threads under CheckpointWriter so
/// the chaos suite can exercise every disk-failure class the crash model
/// promises to survive):
///
///   kShortWrite  keep_bytes of the record reach the file, then append()
///                throws CheckpointError — the disk filled (or errored)
///                mid-record and the writer noticed.
///   kEnospc      nothing reaches the file; append() throws — the write
///                failed before any byte landed.
///   kTornTail    keep_bytes reach the file and append() throws — but
///                this models a *kill*, not a reported error: the caller
///                simulating the crash abandons the writer, and the next
///                run's resume path must truncate the torn tail away.
struct IoFaultDirective {
  enum class Kind { kNone, kShortWrite, kEnospc, kTornTail };
  Kind kind = Kind::kNone;
  /// Record-prefix bytes that reach the file (kShortWrite / kTornTail).
  std::size_t keep_bytes = 0;
};

/// Consulted once per append() with the 0-based write index and the
/// serialized record size. Pure decisions only — the fault framework's
/// determinism contract needs the same directive for the same index.
using IoFaultHook =
    std::function<IoFaultDirective(std::uint64_t write_index,
                                   std::size_t payload_bytes)>;

/// Thread-safe appender for one shard's checkpoint file — the write side
/// of the crash model documented above, shared by every campaign worker.
///
/// Construction repairs any kill artifact before the first append: the
/// file is truncated to its parsed-clean prefix (a dropped partial tail
/// can never glue onto a new record), a fresh file gets the header line,
/// and a kept whole-JSON tail whose newline was clipped is re-terminated.
/// append() then serializes one record per completed cell and flushes it,
/// so a kill can only ever clip the final line. Workers may append
/// concurrently; the writer's own mutex orders the physical writes
/// (record order carries no meaning — readers index records by cell).
class CheckpointWriter {
 public:
  /// What a resuming run learned about the existing file (all defaults —
  /// `fresh` — for a file that does not exist yet or is blank).
  struct Resume {
    /// No usable checkpoint content yet: write the header first.
    bool fresh = true;
    /// Bytes of the file that parsed cleanly; anything after is cut.
    std::size_t valid_bytes = 0;
    /// The kept prefix lacks its final newline; emit '\n' before the
    /// first appended record.
    bool missing_final_newline = false;
  };

  /// Opens `path` for appending after repairing the tail per `resume`.
  /// Throws CheckpointError when the file cannot be truncated or opened,
  /// or the header cannot be written. `io_fault` (tests only) injects
  /// disk-failure behaviour per append; see IoFaultDirective.
  CheckpointWriter(const std::string& path, const CampaignAxes& axes,
                   const CampaignShard& shard, const Resume& resume,
                   IoFaultHook io_fault = {});

  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Appends one cell record and flushes it. Thread-safe. Throws
  /// CheckpointError on write failure (ENOSPC/EIO, real or injected): the
  /// run must fail loudly instead of silently completing with nothing
  /// persisted — crash-safety is the whole point of the file.
  void append(const CellResult& cell) GRIDSUB_EXCLUDES(mu_);

 private:
  std::string path_;
  core::Mutex mu_;
  std::ofstream out_ GRIDSUB_GUARDED_BY(mu_);
  IoFaultHook io_fault_;
  std::uint64_t writes_ GRIDSUB_GUARDED_BY(mu_) = 0;
};

/// Appends one completed cell as a single newline-terminated record.
void append_checkpoint_cell(std::ostream& os, const CellResult& cell);

/// Parses checkpoint content already in memory. `origin` names the
/// source in error messages. Throws CheckpointError on corrupt or
/// inconsistent content.
[[nodiscard]] CampaignCheckpoint parse_checkpoint(
    std::string_view content, const std::string& origin = "<memory>");

/// Parses a whole checkpoint stream. `origin` names the source in error
/// messages. Throws CheckpointError on corrupt or inconsistent content.
[[nodiscard]] CampaignCheckpoint read_checkpoint(
    std::istream& is, const std::string& origin = "<stream>");

/// Reads and parses a checkpoint file; throws CheckpointError when the
/// file cannot be opened.
[[nodiscard]] CampaignCheckpoint load_checkpoint(const std::string& path);

/// Folds shard checkpoints of one campaign into the canonical result.
/// All headers must agree on the campaign identity (shards may differ);
/// duplicate cells must agree exactly; every cell of the grid must be
/// present. The result is byte-identical to a single uninterrupted run.
[[nodiscard]] CampaignResult merge_checkpoints(
    std::vector<CampaignCheckpoint> shards);

}  // namespace gridsub::exp
