#include "exp/experiment.hpp"

#include <memory>
#include <stdexcept>

namespace gridsub::exp {

void ExperimentSpec::validate() const {
  if (scenarios.empty()) {
    throw std::invalid_argument("ExperimentSpec: no scenarios");
  }
  if (strategies.empty()) {
    throw std::invalid_argument("ExperimentSpec: no strategies");
  }
  if (replications == 0) {
    throw std::invalid_argument("ExperimentSpec: zero replications");
  }
  if (clients.clients_per_cell == 0 || clients.tasks_per_client == 0) {
    throw std::invalid_argument("ExperimentSpec: no clients or tasks");
  }
  if (clients.warm_up < 0.0) {
    throw std::invalid_argument("ExperimentSpec: negative warm_up");
  }
  for (const auto& s : scenarios) {
    if (!s.workload && !(clients.horizon > 0.0)) {
      throw std::invalid_argument(
          "ExperimentSpec: scenario '" + s.label +
          "' has no workload, so clients.horizon must be > 0");
    }
    if (s.workload && s.workload->empty()) {
      throw std::invalid_argument("ExperimentSpec: scenario '" + s.label +
                                  "' has an empty workload");
    }
  }
}

CampaignAxes ExperimentSpec::axes() const {
  CampaignAxes a;
  a.name = name;
  a.scenario_labels.reserve(scenarios.size());
  for (const auto& s : scenarios) a.scenario_labels.push_back(s.label);
  a.strategy_labels.reserve(strategies.size());
  for (const auto& s : strategies) a.strategy_labels.push_back(s.label);
  a.replications = replications;
  a.root_seed = root_seed;
  return a;
}

CellMetrics run_strategy_cell(const ScenarioCase& scenario,
                              const sim::StrategySpec& strategy,
                              const ClientConfig& clients,
                              std::uint64_t seed) {
  sim::GridConfig config = scenario.grid;
  config.seed = seed;
  sim::GridSimulation grid(config);
  if (scenario.workload) {
    grid.attach_replay(*scenario.workload, scenario.replay);
  }
  grid.warm_up(clients.warm_up);

  const sim::GridMetrics before = grid.metrics();
  std::vector<std::unique_ptr<sim::StrategyClient>> cs;
  cs.reserve(clients.clients_per_cell);
  for (std::size_t c = 0; c < clients.clients_per_cell; ++c) {
    cs.push_back(std::make_unique<sim::StrategyClient>(
        grid, strategy, clients.tasks_per_client, clients.task_runtime));
  }
  for (auto& c : cs) c->start();

  // With a replayed workload the horizon is absolute (the replay starts at
  // sim time 0); without one it counts from the end of warm-up.
  const double t_end =
      scenario.workload
          ? (clients.horizon > 0.0 ? clients.horizon
                                   : scenario.workload->duration())
          : grid.simulator().now() + clients.horizon;
  grid.simulator().run_until(t_end);

  double latency_sum = 0.0, subs_sum = 0.0;
  std::size_t done = 0;
  for (const auto& c : cs) {
    const auto n = static_cast<double>(c->outcomes().size());
    latency_sum += c->mean_latency() * n;
    subs_sum += c->mean_submissions() * n;
    done += c->outcomes().size();
  }
  const double denom = done > 0 ? static_cast<double>(done) : 1.0;
  const sim::GridMetrics& after = grid.metrics();
  const auto submitted = after.jobs_submitted - before.jobs_submitted;
  const auto canceled = after.jobs_canceled - before.jobs_canceled;
  const auto started = after.jobs_started - before.jobs_started;
  const double queue_wait = after.total_queue_wait - before.total_queue_wait;

  return CellMetrics{
      {"tasks_done", static_cast<double>(done)},
      {"mean_J", latency_sum / denom},
      {"mean_subs", subs_sum / denom},
      {"jobs_submitted", static_cast<double>(submitted)},
      {"jobs_canceled", static_cast<double>(canceled)},
      {"cancel_frac",
       submitted > 0 ? static_cast<double>(canceled) /
                           static_cast<double>(submitted)
                     : 0.0},
      {"mean_queue_wait",
       started > 0 ? queue_wait / static_cast<double>(started) : 0.0},
  };
}

CellEvaluator make_cell_evaluator(const ExperimentSpec& spec) {
  return [&spec](const CellContext& ctx) {
    return run_strategy_cell(spec.scenarios[ctx.scenario],
                             spec.strategies[ctx.strategy].spec, spec.clients,
                             ctx.seed);
  };
}

CampaignResult run_experiment(const ExperimentSpec& spec,
                              const CampaignOptions& options) {
  spec.validate();
  const CampaignRunner runner(options);
  return runner.run(spec.axes(), make_cell_evaluator(spec));
}

}  // namespace gridsub::exp
