#pragma once

// Declarative simulation experiments on the campaign engine.
//
// An ExperimentSpec names the two campaign axes concretely: scenarios
// (a grid configuration plus an optional workload to replay) and
// strategies (a sim::StrategySpec each), with shared client knobs and a
// replication count. The spec compiles to CampaignAxes + a CellEvaluator;
// run_strategy_cell() is the one place the repository builds a grid,
// attaches a replay, warms up, drives strategy clients and snapshots
// metrics — benches that need per-cell strategy resolution (e.g. the
// cross-week study, whose parameters depend on the scenario) call it
// directly from their own evaluator instead of re-rolling the loop.
//
// Concurrency: cells construct their own GridSimulation from a value
// GridConfig whose seed is the cell seed, so concurrent cells share no
// mutable state (see sim/grid.hpp's thread-safety note). ScenarioCase
// workloads are shared read-only across cells via shared_ptr.
//
// Determinism: a spec inherits the campaign engine's full contract
// (campaign.hpp) — the cell seed is derived from (root_seed, scenario,
// strategy, replication) alone, and run_strategy_cell consumes *only*
// that seed as entropy. A spec's result is therefore byte-identical at
// any thread count, across interrupted-and-resumed runs, and across
// multi-process shards merged with exp/checkpoint.hpp: pass
// CampaignOptions with a checkpoint_path (and optionally a shard) to
// run_experiment, or drive CampaignRunner::run_shard directly with
// make_cell_evaluator(spec).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exp/campaign.hpp"
#include "sim/grid.hpp"
#include "sim/replay_load.hpp"
#include "sim/strategy_client.hpp"
#include "traces/workload.hpp"

namespace gridsub::exp {

/// One point on the scenario axis: the infrastructure and its load.
struct ScenarioCase {
  std::string label;
  /// Base grid; the cell seed overwrites `grid.seed` per cell.
  sim::GridConfig grid = sim::GridConfig::egee_like();
  /// Workload replayed as (part of) the background traffic; null keeps
  /// only the grid's Poisson BackgroundLoad. Shared read-only by cells.
  std::shared_ptr<const traces::Workload> workload;
  sim::ReplayLoadConfig replay;
};

/// One point on the strategy axis.
struct StrategyCase {
  std::string label;
  sim::StrategySpec spec;
};

/// Client-side knobs shared by every cell of a spec.
struct ClientConfig {
  std::size_t clients_per_cell = 1;  ///< concurrent StrategyClients
  /// Tasks per client; oversize it (default) to keep clients active to the
  /// horizon so every load regime of the scenario is sampled.
  std::size_t tasks_per_client = 100000;
  double task_runtime = 1.0;
  double warm_up = 21600.0;  ///< seconds of load-only traffic before clients
  /// Measurement end. With a workload: absolute sim time, 0 meaning the
  /// workload's duration. Without a workload: seconds after warm-up
  /// (required > 0).
  double horizon = 0.0;
};

/// A full declarative experiment: axes × knobs × seed policy.
struct ExperimentSpec {
  std::string name = "experiment";
  std::vector<ScenarioCase> scenarios;
  std::vector<StrategyCase> strategies;
  ClientConfig clients;
  std::size_t replications = 1;
  std::uint64_t root_seed = 20090611;

  /// Throws std::invalid_argument on empty axes, zero replications, or a
  /// missing horizon for workload-less scenarios.
  void validate() const;

  /// The abstract grid this spec expands to (labels in declaration order).
  [[nodiscard]] CampaignAxes axes() const;
};

/// Executes one simulation cell: builds the grid seeded with `seed`,
/// attaches the scenario's replay (if any), warms up, runs the clients and
/// returns the standard metric set — tasks_done, mean_J, mean_subs,
/// jobs_submitted, jobs_canceled, cancel_frac, mean_queue_wait (grid
/// counters as deltas over the measurement window).
[[nodiscard]] CellMetrics run_strategy_cell(const ScenarioCase& scenario,
                                            const sim::StrategySpec& strategy,
                                            const ClientConfig& clients,
                                            std::uint64_t seed);

/// The evaluator run_experiment drives: resolves the cell's scenario and
/// strategy from the spec and calls run_strategy_cell with the cell seed.
/// For callers that operate the CampaignRunner directly (checkpointed or
/// sharded runs, benches with custom options). `spec` is captured by
/// reference and must outlive the returned evaluator.
[[nodiscard]] CellEvaluator make_cell_evaluator(const ExperimentSpec& spec);

/// Runs the spec on the campaign engine (spec need only live for the call).
[[nodiscard]] CampaignResult run_experiment(const ExperimentSpec& spec,
                                            const CampaignOptions& options = {});

}  // namespace gridsub::exp
