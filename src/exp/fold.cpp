#include "exp/fold.hpp"

#include <cmath>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "exp/json_util.hpp"

namespace gridsub::exp {

using detail::json_escape;
using detail::json_number;

// ---------------------------------------------------------------------------
// MomentFold
// ---------------------------------------------------------------------------

void MomentFold::add(double x) {
  // Neumaier-compensated sum (numerics/kahan.hpp's recurrence, inlined so
  // the fold stays one cache line): correct even when the addend exceeds
  // the running sum in magnitude.
  const double t = sum_ + x;
  if (std::abs(sum_) >= std::abs(x)) {
    compensation_ += (sum_ - t) + x;
  } else {
    compensation_ += (x - t) + sum_;
  }
  sum_ = t;
  // Welford's single-pass M2 for the variance of the mean.
  ++n_;
  const double delta = x - welford_mean_;
  welford_mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - welford_mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

double MomentFold::mean() const {
  if (n_ == 0) return 0.0;
  return (sum_ + compensation_) / static_cast<double>(n_);
}

double MomentFold::sem() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1) /
                   static_cast<double>(n_));
}

void MomentFold::reset() { *this = MomentFold(); }

// ---------------------------------------------------------------------------
// AggregateFold
// ---------------------------------------------------------------------------

AggregateFold::AggregateFold(CampaignAxes axes) : axes_(std::move(axes)) {
  axes_.validate();
  rows_.reserve(axes_.scenario_labels.size() * axes_.strategy_labels.size());
}

const AggregateRow* AggregateFold::add(const CellResult& cell) {
  if (cell.context.flat != folded_) {
    throw std::logic_error(
        "AggregateFold: cell " + std::to_string(cell.context.flat) +
        " delivered out of order (expected " + std::to_string(folded_) +
        ") — the reorder window must feed folds in flat order");
  }
  if (cell.context.replication == 0) {
    // First replication defines the group's metric schema.
    names_.clear();
    open_.assign(cell.metrics.size(), MomentFold());
    names_.reserve(cell.metrics.size());
    for (const auto& [name, value] : cell.metrics) names_.push_back(name);
  }
  const bool schema_matches = [&] {
    if (cell.metrics.size() != names_.size()) return false;
    for (std::size_t m = 0; m < names_.size(); ++m) {
      if (cell.metrics[m].first != names_[m]) return false;
    }
    return true;
  }();
  if (!schema_matches) {
    throw std::logic_error(
        "campaign '" + axes_.name + "': replications of group (" +
        axes_.scenario_labels[cell.context.scenario] + ", " +
        axes_.strategy_labels[cell.context.strategy] +
        ") emitted mismatched metric names");
  }
  for (std::size_t m = 0; m < names_.size(); ++m) {
    open_[m].add(cell.metrics[m].second);
  }
  ++folded_;
  if (cell.context.replication + 1 < axes_.replications) return nullptr;

  AggregateRow row;
  row.scenario = cell.context.scenario;
  row.strategy = cell.context.strategy;
  row.replications = axes_.replications;
  row.metrics.reserve(names_.size());
  for (std::size_t m = 0; m < names_.size(); ++m) {
    AggregateRow::Metric metric;
    metric.name = names_[m];
    metric.mean = open_[m].mean();
    metric.sem = open_[m].sem();
    metric.min = open_[m].min();
    metric.max = open_[m].max();
    row.metrics.push_back(std::move(metric));
  }
  rows_.push_back(std::move(row));
  return &rows_.back();
}

// ---------------------------------------------------------------------------
// Shared accessors and renderers
// ---------------------------------------------------------------------------

const AggregateRow::Metric& find_metric(const AggregateRow& row,
                                        const std::string& name) {
  for (const auto& m : row.metrics) {
    if (m.name == name) return m;
  }
  throw std::out_of_range("CampaignResult: unknown metric '" + name + "'");
}

report::Table summary_table(const CampaignAxes& axes,
                            const std::vector<AggregateRow>& rows,
                            const std::vector<std::string>& metrics) {
  std::vector<std::string> names = metrics;
  if (names.empty() && !rows.empty()) {
    for (const auto& m : rows.front().metrics) names.push_back(m.name);
  }
  std::vector<std::string> headers = {axes.scenario_axis,
                                      axes.strategy_axis};
  for (const auto& n : names) headers.push_back(n);
  report::Table table(std::move(headers));
  for (const auto& row : rows) {
    auto& r = table.row()
                  .cell(axes.scenario_labels[row.scenario])
                  .cell(axes.strategy_labels[row.strategy]);
    for (const auto& n : names) r.cell(find_metric(row, n).mean, 3);
  }
  return table;
}

const AggregateRow& CampaignSummary::aggregate(std::size_t scenario,
                                               std::size_t strategy) const {
  // Check each axis, not just the flattened index: an off-by-one on the
  // strategy axis must throw, not alias the next scenario's group.
  if (scenario >= axes.scenario_labels.size() ||
      strategy >= axes.strategy_labels.size()) {
    throw std::out_of_range("CampaignSummary::aggregate: bad cell group");
  }
  return rows[scenario * axes.strategy_labels.size() + strategy];
}

double CampaignSummary::mean(std::size_t scenario, std::size_t strategy,
                             const std::string& metric) const {
  return find_metric(aggregate(scenario, strategy), metric).mean;
}

double CampaignSummary::sem(std::size_t scenario, std::size_t strategy,
                            const std::string& metric) const {
  return find_metric(aggregate(scenario, strategy), metric).sem;
}

double CampaignSummary::min(std::size_t scenario, std::size_t strategy,
                            const std::string& metric) const {
  return find_metric(aggregate(scenario, strategy), metric).min;
}

double CampaignSummary::max(std::size_t scenario, std::size_t strategy,
                            const std::string& metric) const {
  return find_metric(aggregate(scenario, strategy), metric).max;
}

report::Table CampaignSummary::summary_table(
    const std::vector<std::string>& metrics) const {
  return exp::summary_table(axes, rows, metrics);
}

report::Series CampaignSummary::metric_series(
    std::size_t strategy, const std::string& metric) const {
  if (strategy >= axes.strategy_labels.size()) {
    throw std::out_of_range("CampaignSummary::metric_series: bad strategy");
  }
  report::Series series;
  series.label = axes.strategy_labels[strategy] + " " + metric;
  series.x.reserve(axes.scenario_labels.size());
  series.y.reserve(axes.scenario_labels.size());
  for (std::size_t s = 0; s < axes.scenario_labels.size(); ++s) {
    series.x.push_back(static_cast<double>(s));
    series.y.push_back(mean(s, strategy, metric));
  }
  return series;
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

void CampaignSink::begin(const CampaignAxes&) {}
void CampaignSink::end() {}

void CollectSink::begin(const CampaignAxes& axes) {
  axes_ = axes;
  cells_.clear();
  cells_.reserve(axes.cell_count());
}

void CollectSink::on_cell(const CellResult& cell) { cells_.push_back(cell); }

CampaignResult CollectSink::take() {
  return CampaignResult(std::move(axes_), std::move(cells_));
}

void FoldSink::begin(const CampaignAxes& axes) { fold_.emplace(axes); }

void FoldSink::on_cell(const CellResult& cell) {
  if (!fold_) throw std::logic_error("FoldSink: on_cell before begin");
  fold_->add(cell);
}

CampaignSummary FoldSink::take() {
  if (!fold_) throw std::logic_error("FoldSink: take before begin");
  CampaignSummary summary;
  summary.axes = fold_->axes();
  summary.rows = fold_->take_rows();
  return summary;
}

JsonStreamSink::JsonStreamSink(std::ostream& os) : os_(&os) {}

void JsonStreamSink::begin(const CampaignAxes& axes) {
  fold_.emplace(axes);
  detail::write_campaign_json_prefix(*os_, axes);
  if (!*os_) throw std::runtime_error("JsonStreamSink: write failed");
}

void JsonStreamSink::on_cell(const CellResult& cell) {
  if (!fold_) throw std::logic_error("JsonStreamSink: on_cell before begin");
  const CampaignAxes& axes = fold_->axes();
  detail::write_campaign_json_cell(*os_, axes, cell,
                                   cell.context.flat + 1 ==
                                       axes.cell_count());
  fold_->add(cell);
  if (!*os_) throw std::runtime_error("JsonStreamSink: write failed");
}

void JsonStreamSink::end() {
  if (!fold_) throw std::logic_error("JsonStreamSink: end before begin");
  detail::write_campaign_json_aggregates(*os_, fold_->axes(), fold_->rows());
  os_->flush();
  if (!*os_) throw std::runtime_error("JsonStreamSink: write failed");
  ended_ = true;
}

CampaignSummary JsonStreamSink::take() {
  if (!ended_) throw std::logic_error("JsonStreamSink: take before end");
  CampaignSummary summary;
  summary.axes = fold_->axes();
  summary.rows = fold_->take_rows();
  return summary;
}

// ---------------------------------------------------------------------------
// Canonical campaign JSON, emitted piecewise
// ---------------------------------------------------------------------------

namespace detail {

void write_campaign_json_prefix(std::ostream& os, const CampaignAxes& axes) {
  os << "{\n  \"schema\": \"gridsub-campaign-v1\",\n  \"name\": ";
  json_escape(os, axes.name);
  os << ",\n  \"root_seed\": " << axes.root_seed;
  os << ",\n  \"axes\": {";
  json_escape(os, axes.scenario_axis);
  os << ": [";
  for (std::size_t i = 0; i < axes.scenario_labels.size(); ++i) {
    if (i > 0) os << ", ";
    json_escape(os, axes.scenario_labels[i]);
  }
  os << "], ";
  json_escape(os, axes.strategy_axis);
  os << ": [";
  for (std::size_t i = 0; i < axes.strategy_labels.size(); ++i) {
    if (i > 0) os << ", ";
    json_escape(os, axes.strategy_labels[i]);
  }
  os << "], \"replications\": " << axes.replications << "},\n";
  os << "  \"cells\": [\n";
}

void write_campaign_json_cell(std::ostream& os, const CampaignAxes& axes,
                              const CellResult& cell, bool last) {
  os << "    {\"scenario\": ";
  json_escape(os, axes.scenario_labels[cell.context.scenario]);
  os << ", \"strategy\": ";
  json_escape(os, axes.strategy_labels[cell.context.strategy]);
  os << ", \"replication\": " << cell.context.replication;
  os << ", \"seed\": " << cell.context.seed << ", \"metrics\": {";
  for (std::size_t m = 0; m < cell.metrics.size(); ++m) {
    if (m > 0) os << ", ";
    json_escape(os, cell.metrics[m].first);
    os << ": ";
    json_number(os, cell.metrics[m].second);
  }
  os << "}}" << (last ? "" : ",") << "\n";
}

void write_campaign_json_aggregates(std::ostream& os,
                                    const CampaignAxes& axes,
                                    const std::vector<AggregateRow>& rows) {
  os << "  ],\n  \"aggregates\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const AggregateRow& row = rows[i];
    os << "    {\"scenario\": ";
    json_escape(os, axes.scenario_labels[row.scenario]);
    os << ", \"strategy\": ";
    json_escape(os, axes.strategy_labels[row.strategy]);
    os << ", \"replications\": " << row.replications << ", \"metrics\": {";
    for (std::size_t m = 0; m < row.metrics.size(); ++m) {
      if (m > 0) os << ", ";
      json_escape(os, row.metrics[m].name);
      os << ": {\"mean\": ";
      json_number(os, row.metrics[m].mean);
      os << ", \"stderr\": ";
      json_number(os, row.metrics[m].sem);
      os << "}";
    }
    os << "}}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace detail

}  // namespace gridsub::exp
