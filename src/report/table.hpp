#pragma once

// Fixed-width console tables for the experiment harness.
//
// Every bench binary prints the same rows the paper's tables report;
// this builder handles alignment, numeric formatting and an optional
// markdown rendering for EXPERIMENTS.md.

#include <iosfwd>
#include <string>
#include <vector>

namespace gridsub::report {

/// Column-aligned text table.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  Table& row();

  /// Appends a string cell to the current row.
  Table& cell(const std::string& value);
  /// Appends a formatted numeric cell ("%.*f" with `decimals`).
  Table& cell(double value, int decimals = 1);
  /// Appends an integer cell.
  Table& cell(long long value);
  /// Appends a percentage cell ("%+.1f%%" by default).
  Table& percent(double fraction, int decimals = 1);

  /// Renders with space padding and a header separator.
  void print(std::ostream& os) const;
  /// Renders as a GitHub-flavoured markdown table.
  void print_markdown(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats seconds with 0 decimals and an "s" suffix ("471s"), matching the
/// paper's table style.
std::string seconds(double value);

}  // namespace gridsub::report
