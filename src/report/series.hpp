#pragma once

// (x, y) series output for the paper's figures.
//
// Figures are regenerated as gnuplot-style whitespace-separated columns
// (one block per labelled series), printed to the bench's stdout and
// optionally written to .dat files for plotting.

#include <iosfwd>
#include <string>
#include <vector>

namespace gridsub::report {

/// One labelled curve.
struct Series {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;
};

/// A figure: several curves sharing axis labels.
class Figure {
 public:
  Figure(std::string title, std::string x_label, std::string y_label);

  /// Adds a curve; x and y must be the same length.
  void add(Series series);

  /// Convenience: adds a curve from parallel vectors.
  void add(const std::string& label, std::vector<double> x,
           std::vector<double> y);

  /// Prints "# <title>" then per-series blocks of "x y" lines, separated by
  /// blank lines (gnuplot's multi-block format).
  void print(std::ostream& os, int max_rows_per_series = -1) const;

  /// Writes the same content to a file.
  void write_dat(const std::string& path) const;

  [[nodiscard]] const std::vector<Series>& series() const { return series_; }
  [[nodiscard]] const std::string& title() const { return title_; }

 private:
  std::string title_;
  std::string x_label_;
  std::string y_label_;
  std::vector<Series> series_;
};

}  // namespace gridsub::report
