#include "report/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace gridsub::report {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(const std::string& value) {
  if (rows_.empty()) throw std::logic_error("Table::cell before row()");
  if (rows_.back().size() >= headers_.size()) {
    throw std::logic_error("Table::cell: row already full");
  }
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(double value, int decimals) {
  char buf[64];
  if (std::isfinite(value)) {
    // gridsub-lint: allow(printf-float) human table cell, not machine output
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  } else {
    std::snprintf(buf, sizeof(buf), "inf");
  }
  return cell(std::string(buf));
}

Table& Table::cell(long long value) {
  return cell(std::to_string(value));
}

Table& Table::percent(double fraction, int decimals) {
  char buf[64];
  if (std::isfinite(fraction)) {
    // gridsub-lint: allow(printf-float) human table cell, not machine output
    std::snprintf(buf, sizeof(buf), "%+.*f%%", decimals, 100.0 * fraction);
  } else {
    std::snprintf(buf, sizeof(buf), "n/a");
  }
  return cell(std::string(buf));
}

namespace {
std::vector<std::size_t> column_widths(
    const std::vector<std::string>& headers,
    const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(headers.size());
  for (std::size_t c = 0; c < headers.size(); ++c) {
    widths[c] = headers[c].size();
  }
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  return widths;
}
}  // namespace

void Table::print(std::ostream& os) const {
  const auto widths = column_widths(headers_, rows_);
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string value = c < cells.size() ? cells[c] : "";
      os << "  ";
      os.width(static_cast<std::streamsize>(widths[c]));
      os << value;
    }
    os << "\n";
  };
  os << std::right;
  print_row(headers_);
  std::size_t total = 2 * headers_.size();
  for (const auto w : widths) total += w;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::print_markdown(std::ostream& os) const {
  os << "|";
  for (const auto& h : headers_) os << " " << h << " |";
  os << "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) os << "---|";
  os << "\n";
  for (const auto& row : rows_) {
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << " " << (c < row.size() ? row[c] : "") << " |";
    }
    os << "\n";
  }
}

std::string seconds(double value) {
  if (!std::isfinite(value)) return "inf";
  char buf[64];
  // gridsub-lint: allow(printf-float) whole-second console label
  std::snprintf(buf, sizeof(buf), "%.0fs", value);
  return buf;
}

}  // namespace gridsub::report
