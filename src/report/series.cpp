#include "report/series.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

namespace gridsub::report {

Figure::Figure(std::string title, std::string x_label, std::string y_label)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      y_label_(std::move(y_label)) {}

void Figure::add(Series series) {
  if (series.x.size() != series.y.size()) {
    throw std::invalid_argument("Figure::add: x/y size mismatch");
  }
  series_.push_back(std::move(series));
}

void Figure::add(const std::string& label, std::vector<double> x,
                 std::vector<double> y) {
  add(Series{label, std::move(x), std::move(y)});
}

void Figure::print(std::ostream& os, int max_rows_per_series) const {
  os << "# " << title_ << "\n";
  os << "# x: " << x_label_ << ", y: " << y_label_ << "\n";
  for (const auto& s : series_) {
    os << "\n# series: " << s.label << "\n";
    const std::size_t n = s.x.size();
    std::size_t stride = 1;
    if (max_rows_per_series > 0 &&
        n > static_cast<std::size_t>(max_rows_per_series)) {
      stride = (n + static_cast<std::size_t>(max_rows_per_series) - 1) /
               static_cast<std::size_t>(max_rows_per_series);
    }
    for (std::size_t i = 0; i < n; i += stride) {
      os << s.x[i] << ' ' << s.y[i] << '\n';
    }
    // Always include the final point so curve ends are visible.
    if (stride > 1 && n > 0 && (n - 1) % stride != 0) {
      os << s.x[n - 1] << ' ' << s.y[n - 1] << '\n';
    }
  }
}

void Figure::write_dat(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("Figure::write_dat: cannot open " + path);
  print(os);
}

}  // namespace gridsub::report
