#pragma once

// Related-work baselines (paper §2), executed on the simulated grid.
//
// * Subramani et al. (HPDC'02) "K-distributed": each task is submitted to
//   the K least-loaded sites *directly* (no WMS ranking staleness); when
//   the first copy starts, the other K-1 are canceled.
// * Subramani et al. "K-Dual queue": as K-distributed, but the copy at the
//   client's home site enters the local queue while the K-1 duplicates
//   enter foreign sites' *remote* queues, which have strictly lower
//   priority — duplicates consume only otherwise-idle slots.
// * Casanova (JGC'07) redundant batch requests: K copies on K sites chosen
//   uniformly at random (no load information at all).
//
// The figure of merit is Subramani's bounded slowdown
//   slowdown = (latency + runtime) / runtime,
// so schemes are comparable across task lengths. A safety timeout guards
// against the paper's grid reality the baselines did not model — silently
// lost jobs — by resubmitting the whole round.

#include <cstddef>
#include <vector>

#include "sim/grid.hpp"

namespace gridsub::sched {

/// Which baseline protocol a RedundantClient runs.
enum class BaselineScheme {
  kKDistributed,  ///< K least-loaded sites, plain queues
  kKDualQueue,    ///< home copy local, K-1 duplicates in remote lanes
  kKRandom        ///< Casanova: K uniformly random sites
};

[[nodiscard]] constexpr std::string_view to_string(BaselineScheme s) {
  switch (s) {
    case BaselineScheme::kKDistributed:
      return "K-distributed";
    case BaselineScheme::kKDualQueue:
      return "K-dual-queue";
    case BaselineScheme::kKRandom:
      return "K-random";
  }
  return "unknown";
}

struct BaselineSpec {
  BaselineScheme scheme = BaselineScheme::kKDistributed;
  int k = 2;                      ///< copies per task (clamped to site count)
  double safety_timeout = 6000.0; ///< round resubmission guard (s)
  std::size_t home_site = 0;      ///< K-Dual home CE index
  /// Age of the load information the client ranks sites with. On EGEE the
  /// information system republished every few minutes; redundancy exists
  /// precisely to hedge this staleness (0 = omniscient fresh loads).
  double info_staleness = 300.0;
};

/// Outcome of one task under a baseline scheme.
struct BaselineOutcome {
  double latency = 0.0;     ///< submission -> first copy starts
  double slowdown = 0.0;    ///< (latency + runtime) / runtime
  int submissions = 0;      ///< total copies submitted (rounds x K)
  int rounds = 1;           ///< 1 unless the safety timeout fired
};

/// Runs `n_tasks` sequentially through a baseline scheme on a live grid
/// (mirrors sim::StrategyClient so the two are directly comparable).
class RedundantClient {
 public:
  RedundantClient(sim::GridSimulation& grid, BaselineSpec spec,
                  std::size_t n_tasks, double task_runtime);

  RedundantClient(const RedundantClient&) = delete;
  RedundantClient& operator=(const RedundantClient&) = delete;

  /// Begins the first task.
  void start();

  [[nodiscard]] bool done() const { return outcomes_.size() >= n_tasks_; }
  [[nodiscard]] const std::vector<BaselineOutcome>& outcomes() const {
    return outcomes_;
  }

  [[nodiscard]] double mean_latency() const;
  [[nodiscard]] double mean_slowdown() const;
  [[nodiscard]] double mean_submissions() const;

 private:
  void start_task();
  void run_round(std::shared_ptr<BaselineOutcome> outcome,
                 sim::SimTime task_start);
  /// The K target CE indices for this round, scheme-dependent.
  [[nodiscard]] std::vector<std::size_t> pick_sites();
  /// The (possibly stale) load view used for ranking.
  [[nodiscard]] const std::vector<double>& load_view();
  void finish_task(const BaselineOutcome& outcome);

  sim::GridSimulation& grid_;
  BaselineSpec spec_;
  std::size_t n_tasks_;
  double task_runtime_;
  stats::Rng rng_;
  std::vector<BaselineOutcome> outcomes_;
  std::vector<double> load_snapshot_;
  sim::SimTime snapshot_time_ = -1.0;
};

}  // namespace gridsub::sched
