#include "sched/redundant_client.hpp"

#include <algorithm>
#include <memory>
#include <numeric>
#include <stdexcept>

namespace gridsub::sched {

RedundantClient::RedundantClient(sim::GridSimulation& grid,
                                 BaselineSpec spec, std::size_t n_tasks,
                                 double task_runtime)
    : grid_(grid),
      spec_(spec),
      n_tasks_(n_tasks),
      task_runtime_(task_runtime),
      rng_(grid.make_rng()) {
  if (n_tasks == 0) {
    throw std::invalid_argument("RedundantClient: n_tasks == 0");
  }
  if (!(task_runtime > 0.0)) {
    // Slowdown is undefined for zero-length tasks.
    throw std::invalid_argument("RedundantClient: task_runtime <= 0");
  }
  if (spec.k < 1) throw std::invalid_argument("RedundantClient: k < 1");
  if (!(spec.safety_timeout > 0.0)) {
    throw std::invalid_argument("RedundantClient: safety_timeout <= 0");
  }
  if (spec.home_site >= grid.elements().size()) {
    throw std::invalid_argument("RedundantClient: home_site out of range");
  }
  if (spec.info_staleness < 0.0) {
    throw std::invalid_argument("RedundantClient: info_staleness < 0");
  }
  spec_.k = std::min<int>(spec_.k,
                          static_cast<int>(grid.elements().size()));
  outcomes_.reserve(n_tasks);
}

void RedundantClient::start() { start_task(); }

std::vector<std::size_t> RedundantClient::pick_sites() {
  const auto& ces = grid_.elements();
  const std::size_t n = ces.size();
  const auto k = static_cast<std::size_t>(spec_.k);

  if (spec_.scheme == BaselineScheme::kKRandom) {
    // K distinct sites, uniformly (partial Fisher-Yates).
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), 0u);
    for (std::size_t i = 0; i < k; ++i) {
      const auto j = i + static_cast<std::size_t>(
                             rng_.uniform_int(static_cast<std::uint64_t>(
                                 n - i)));
      std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
  }

  // Rank sites by the client's (possibly stale) load view.
  const auto& loads = load_view();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&loads](std::size_t a, std::size_t b) {
                     return loads[a] < loads[b];
                   });

  if (spec_.scheme == BaselineScheme::kKDualQueue) {
    // Home first, then the K-1 least-loaded foreign sites.
    std::vector<std::size_t> sites{spec_.home_site};
    for (const std::size_t s : order) {
      if (sites.size() >= k) break;
      if (s != spec_.home_site) sites.push_back(s);
    }
    return sites;
  }

  order.resize(k);
  return order;
}

const std::vector<double>& RedundantClient::load_view() {
  const auto now = grid_.simulator().now();
  if (snapshot_time_ < 0.0 || now - snapshot_time_ >= spec_.info_staleness) {
    const auto& ces = grid_.elements();
    load_snapshot_.resize(ces.size());
    for (std::size_t i = 0; i < ces.size(); ++i) {
      load_snapshot_[i] = ces[i]->load();
    }
    snapshot_time_ = now;
  }
  return load_snapshot_;
}

void RedundantClient::run_round(std::shared_ptr<BaselineOutcome> outcome,
                                sim::SimTime task_start) {
  // All K copies are submitted as one burst before the client reacts to
  // any start: a real client cannot observe a start mid-burst, and a CE
  // with a free slot starts jobs synchronously. Sites are distinct within
  // a round, so the winner is identified by its site index.
  struct RoundState {
    bool settled = false;
    bool burst_done = false;
    bool has_winner = false;
    std::size_t winner_site = 0;
    std::vector<std::pair<std::size_t, sim::ComputingElement::JobHandle>>
        copies;
    sim::EventId timeout_event = 0;
  };
  auto state = std::make_shared<RoundState>();
  auto& sim = grid_.simulator();
  const auto sites = pick_sites();

  const auto settle = [this, outcome, state,
                       task_start](std::size_t winner_site) {
    state->settled = true;
    grid_.simulator().cancel(state->timeout_event);
    for (const auto& [site, handle] : state->copies) {
      if (site == winner_site) continue;
      grid_.elements()[site]->cancel(handle);
    }
    outcome->latency = grid_.simulator().now() - task_start;
    outcome->slowdown = (outcome->latency + task_runtime_) / task_runtime_;
    finish_task(*outcome);
  };

  const auto on_start = [state, settle](std::size_t site) {
    if (state->settled || state->has_winner) return;
    if (!state->burst_done) {
      // Started synchronously during the burst: remember, settle after.
      state->has_winner = true;
      state->winner_site = site;
      return;
    }
    settle(site);
  };

  const auto& ces = grid_.elements();
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const std::size_t site = sites[i];
    const bool duplicate_lane =
        spec_.scheme == BaselineScheme::kKDualQueue && i > 0;
    outcome->submissions += 1;
    const auto handle = ces[site]->submit(
        task_runtime_, [on_start, site]() { on_start(site); }, nullptr,
        duplicate_lane ? sim::ComputingElement::Lane::kRemote
                       : sim::ComputingElement::Lane::kLocal);
    state->copies.emplace_back(site, handle);
  }
  state->burst_done = true;
  if (state->has_winner) {
    settle(state->winner_site);
    return;
  }

  state->timeout_event = sim.schedule_in(
      spec_.safety_timeout, [this, outcome, state, task_start]() {
        if (state->settled) return;
        state->settled = true;
        for (const auto& [site, handle] : state->copies) {
          grid_.elements()[site]->cancel(handle);
        }
        outcome->rounds += 1;
        run_round(outcome, task_start);
      });
}

void RedundantClient::start_task() {
  auto outcome = std::make_shared<BaselineOutcome>();
  run_round(outcome, grid_.simulator().now());
}

void RedundantClient::finish_task(const BaselineOutcome& outcome) {
  outcomes_.push_back(outcome);
  if (outcomes_.size() < n_tasks_) start_task();
}

double RedundantClient::mean_latency() const {
  if (outcomes_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& o : outcomes_) sum += o.latency;
  return sum / static_cast<double>(outcomes_.size());
}

double RedundantClient::mean_slowdown() const {
  if (outcomes_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& o : outcomes_) sum += o.slowdown;
  return sum / static_cast<double>(outcomes_.size());
}

double RedundantClient::mean_submissions() const {
  if (outcomes_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& o : outcomes_) sum += o.submissions;
  return sum / static_cast<double>(outcomes_.size());
}

}  // namespace gridsub::sched
