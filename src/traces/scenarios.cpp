#include "traces/scenarios.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "traces/generator.hpp"

namespace gridsub::traces {

namespace {

constexpr double kDay = 86400.0;
constexpr double kPi = 3.14159265358979323846;

/// Dimensionless load shape (time-average ~1 before normalization).
using ShapeFn = std::function<double(double)>;

ShapeFn stationary_shape() {
  return [](double) { return 1.0; };
}

ShapeFn diurnal_shape() {
  // Day/night sinusoid (trough at midnight, crest at noon) with a weekend
  // dip — the human submission cycle every grid workload study reports.
  return [](double t) {
    const double day_index = std::floor(t / kDay);
    const double weekday = std::fmod(day_index, 7.0);
    const double day_factor = weekday < 5.0 ? 1.0 : 0.55;
    const double phase = std::fmod(t, kDay) / kDay;
    return day_factor * (1.0 + 0.6 * std::sin(2.0 * kPi * phase - kPi / 2.0));
  };
}

ShapeFn burst_shape() {
  // Quiet floor with three 6-hour submission storms (days 1, 3, 5 at
  // 08:00) — campaign-style usage where one user floods the broker.
  return [](double t) {
    for (const double day : {1.0, 3.0, 5.0}) {
      const double start = day * kDay + 8.0 * 3600.0;
      if (t >= start && t < start + 6.0 * 3600.0) return 4.0;
    }
    return 0.6;
  };
}

ShapeFn outage_shape() {
  // Normal load, a 12-hour dead window on day 3 (site/WMS outage: nothing
  // reaches the broker), then the held-back backlog flushes at 3x until
  // the end of day 3.
  return [](double t) {
    const double outage_start = 3.0 * kDay;
    const double flush_start = outage_start + 12.0 * 3600.0;
    const double flush_end = 4.0 * kDay;
    if (t >= outage_start && t < flush_start) return 0.0;
    if (t >= flush_start && t < flush_end) return 3.0;
    return 1.0;
  };
}

ShapeFn shape_by_name(const std::string& name) {
  if (name == "stationary-week") return stationary_shape();
  if (name == "diurnal-week") return diurnal_shape();
  if (name == "burst-week") return burst_shape();
  if (name == "outage-week") return outage_shape();
  throw std::out_of_range("make_scenario: unknown scenario '" + name + "'");
}

}  // namespace

std::vector<std::string> replay_scenario_names() {
  return {"stationary-week", "diurnal-week", "burst-week", "outage-week"};
}

Workload make_scenario(const std::string& name,
                       const ScenarioConfig& config) {
  if (!(config.base_rate > 0.0)) {
    throw std::invalid_argument("make_scenario: base_rate must be > 0");
  }
  if (!(config.duration > 0.0)) {
    throw std::invalid_argument("make_scenario: duration must be > 0");
  }
  const ShapeFn shape = shape_by_name(name);

  // Normalize so the time-averaged rate equals base_rate regardless of the
  // shape: scenarios then differ only in how the same total work is spread
  // over the week. Midpoint sampling at 60 s resolves every plateau edge
  // and the sinusoid to well under the thinning noise; capping the step at
  // the duration guarantees at least one sample for short horizons.
  const double kStep = std::min(60.0, config.duration);
  double sum = 0.0, peak = 0.0;
  std::size_t n = 0;
  for (double t = 0.5 * kStep; t < config.duration; t += kStep) {
    const double s = shape(t);
    sum += s;
    peak = std::max(peak, s);
    ++n;
  }
  const double mean_shape = sum / static_cast<double>(n);
  if (!(mean_shape > 0.0) || !(peak > 0.0)) {
    throw std::runtime_error("make_scenario: degenerate shape for " + name);
  }
  const double scale = config.base_rate / mean_shape;

  WorkloadGenConfig gen;
  gen.name = name;
  gen.duration = config.duration;
  // 1% envelope headroom over the sampled peak; generate_workload clamps
  // the rate to the envelope, so a sub-sample sinusoid crest only loses a
  // vanishing sliver of mass rather than biasing the draw.
  gen.peak_rate = scale * peak * 1.01;
  gen.runtime_mean = config.runtime_mean;
  gen.runtime_sigma_log = config.runtime_sigma_log;
  gen.seed = config.seed;
  return generate_workload(
      [scale, &shape](double t) { return scale * shape(t); }, gen);
}

}  // namespace gridsub::traces
