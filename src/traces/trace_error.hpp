#pragma once

// Typed error for malformed trace/workload input.

#include <stdexcept>

namespace gridsub::traces {

/// Raised by the SWF / workload-CSV / probe-trace readers on malformed,
/// truncated, or oversized input: garbage where a number belongs, a
/// record cut off mid-line, a line past the size cap. Derives
/// std::runtime_error so pre-existing call sites that catch the base
/// keep working; new code should catch this type to distinguish corrupt
/// input from I/O failures.
class TraceFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace gridsub::traces
