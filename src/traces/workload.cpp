#include "traces/workload.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "traces/csv_util.hpp"
#include "traces/trace_error.hpp"

namespace gridsub::traces {

using detail::strip_cr;

void Workload::sort_by_arrival() {
  std::stable_sort(jobs_.begin(), jobs_.end(),
                   [](const WorkloadJob& a, const WorkloadJob& b) {
                     return a.arrival < b.arrival;
                   });
}

void Workload::rebase_to_zero() {
  if (jobs_.empty()) return;
  double first = jobs_.front().arrival;
  for (const auto& j : jobs_) first = std::min(first, j.arrival);
  for (auto& j : jobs_) j.arrival -= first;
}

double Workload::duration() const {
  double last = 0.0;
  for (const auto& j : jobs_) last = std::max(last, j.arrival);
  return last;
}

Workload Workload::window(double t0, double t1) const {
  if (!(t1 >= t0)) {
    throw std::invalid_argument("Workload::window: t1 < t0");
  }
  Workload out(name_ + "[" + std::to_string(t0) + "," + std::to_string(t1) +
               ")");
  for (const auto& j : jobs_) {
    if (j.arrival >= t0 && j.arrival < t1) {
      out.add_job(j.arrival - t0, j.runtime, j.user, j.group);
    }
  }
  return out;
}

void Workload::scale_time(double factor) {
  if (!(factor > 0.0)) {
    throw std::invalid_argument("Workload::scale_time: factor must be > 0");
  }
  for (auto& j : jobs_) j.arrival *= factor;
}

void Workload::scale_runtime(double factor) {
  if (!(factor > 0.0)) {
    throw std::invalid_argument(
        "Workload::scale_runtime: factor must be > 0");
  }
  for (auto& j : jobs_) j.runtime *= factor;
}

WorkloadStats Workload::stats() const {
  WorkloadStats s;
  s.jobs = jobs_.size();
  if (jobs_.empty()) return s;
  s.duration = duration();
  double runtime_sum = 0.0;
  for (const auto& j : jobs_) runtime_sum += j.runtime;
  s.mean_runtime = runtime_sum / static_cast<double>(jobs_.size());
  if (s.duration > 0.0) {
    s.mean_rate = static_cast<double>(jobs_.size()) / s.duration;
    // Full-hour buckets with the partial tail merged into the last one
    // (its width lands in [1h, 2h)): dividing by a full hour would
    // understate a backlog-flush tail, while dividing a tiny sliver by
    // its own width would manufacture absurd peaks from one job. A
    // sub-hour workload uses a single bucket spanning the whole log.
    constexpr double kBucket = 3600.0;
    const auto n_buckets = std::max<std::size_t>(
        1, static_cast<std::size_t>(s.duration / kBucket));
    std::vector<std::size_t> buckets(n_buckets, 0);
    for (const auto& j : jobs_) {
      auto b = static_cast<std::size_t>(j.arrival / kBucket);
      if (b >= n_buckets) b = n_buckets - 1;
      ++buckets[b];
    }
    for (std::size_t b = 0; b < n_buckets; ++b) {
      const double width =
          b + 1 < n_buckets
              ? kBucket
              : s.duration - static_cast<double>(n_buckets - 1) * kBucket;
      s.peak_hourly_rate = std::max(
          s.peak_hourly_rate, static_cast<double>(buckets[b]) / width);
    }
    s.burstiness = s.mean_rate > 0.0 ? s.peak_hourly_rate / s.mean_rate : 0.0;
  }
  return s;
}

void write_workload_csv(std::ostream& os, const Workload& w) {
  // csv_number writes shortest round-trip to_chars form. With the
  // 6-sig-fig ostream default, a week-scale arrival like 604800.25 would
  // collapse to '604800' and a month-scale one to '2.4192e+07' — silently
  // quantizing the burst structure the replay subsystem exists to
  // preserve — and stream formatting follows the imbued locale besides.
  os << "# name=" << w.name() << "\n";
  os << "arrival_time,runtime,user,group\n";
  for (const auto& j : w.jobs()) {
    detail::csv_number(os, j.arrival);
    os << ',';
    detail::csv_number(os, j.runtime);
    os << ',' << j.user << ',' << j.group << '\n';
  }
}

void write_workload_csv_file(const std::string& path, const Workload& w) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("write_workload_csv_file: cannot open " + path);
  }
  write_workload_csv(os, w);
}

Workload read_workload_csv(std::istream& is) {
  Workload w;
  std::string line;
  bool header_seen = false;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.size() > detail::kMaxLineBytes) {
      throw TraceFormatError("workload csv: oversized line " +
                             std::to_string(line_no) + " (" +
                             std::to_string(line.size()) + " bytes)");
    }
    strip_cr(line);
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::string key, value;
      if (detail::parse_comment_kv(line, key, value) && key == "name") {
        w.set_name(value);
      }
      continue;
    }
    if (!header_seen) {
      if (line.rfind("arrival_time", 0) != 0) {
        throw TraceFormatError("workload csv: missing header line");
      }
      header_seen = true;
      continue;
    }
    std::istringstream ls(line);
    std::string arrival_str, runtime_str, user_str, group_str;
    if (!std::getline(ls, arrival_str, ',') ||
        !std::getline(ls, runtime_str, ',') ||
        !std::getline(ls, user_str, ',') || !std::getline(ls, group_str)) {
      // Covers mid-record EOF too: a file cut off inside a row arrives
      // here as a line with too few fields.
      throw TraceFormatError("workload csv: malformed line " +
                             std::to_string(line_no) + ": '" + line + "'");
    }
    // Strict full-token parses: std::stod/stoi silently accepted garbage
    // suffixes ("12.5abc" -> 12.5), turning corruption into plausible
    // but wrong replay data.
    double arrival = 0.0;
    double runtime = 0.0;
    int user = 0;
    int group = 0;
    if (!detail::csv_parse_double(arrival_str, arrival) ||
        !detail::csv_parse_double(runtime_str, runtime) ||
        !detail::csv_parse_int(user_str, user) ||
        !detail::csv_parse_int(group_str, group)) {
      throw TraceFormatError("workload csv: unparseable line " +
                             std::to_string(line_no) + ": '" + line + "'");
    }
    w.add_job(arrival, runtime, user, group);
  }
  w.sort_by_arrival();
  return w;
}

Workload read_workload_csv_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("read_workload_csv_file: cannot open " + path);
  }
  return read_workload_csv(is);
}

}  // namespace gridsub::traces
