#pragma once

// Internal helpers shared by the traces CSV readers (trace_io, workload).
// One definition of the whitespace/CRLF tolerance rules, so the probe-trace
// and workload formats cannot drift in what they accept.

#include <charconv>
#include <cstddef>
#include <ostream>
#include <string>
#include <string_view>

namespace gridsub::traces::detail {

/// Hard cap on one input line. Real SWF/CSV lines are well under 1 KiB;
/// a line this long means a corrupt or hostile file, and refusing it
/// keeps a reader from buffering an arbitrarily large "line" into memory
/// (e.g. a multi-GB file with no newlines).
inline constexpr std::size_t kMaxLineBytes = 1u << 20;

/// Strict full-token double parse: the whole trimmed token must be
/// consumed (a leading '+' is tolerated for hand-written files). False
/// on empty, trailing garbage ("12.5abc"), or out-of-range input — the
/// silent-acceptance cases std::stod lets through.
[[nodiscard]] inline bool csv_parse_double(std::string_view token,
                                           double& out) {
  const auto first = token.find_first_not_of(" \t\r");
  if (first == std::string_view::npos) return false;
  const auto last = token.find_last_not_of(" \t\r");
  token = token.substr(first, last - first + 1);
  if (!token.empty() && token.front() == '+') token.remove_prefix(1);
  if (token.empty()) return false;
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto r = std::from_chars(begin, end, out);
  return r.ec == std::errc() && r.ptr == end;
}

/// Strict full-token int parse; same contract as csv_parse_double.
[[nodiscard]] inline bool csv_parse_int(std::string_view token, int& out) {
  const auto first = token.find_first_not_of(" \t\r");
  if (first == std::string_view::npos) return false;
  const auto last = token.find_last_not_of(" \t\r");
  token = token.substr(first, last - first + 1);
  if (!token.empty() && token.front() == '+') token.remove_prefix(1);
  if (token.empty()) return false;
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto r = std::from_chars(begin, end, out);
  return r.ec == std::errc() && r.ptr == end;
}

/// Writes a double in shortest round-trip std::to_chars form:
/// locale-independent, byte-identical for equal values, and re-parses to
/// the same double. The CSV writers must use this instead of `os << v` —
/// default ostream formatting truncates to 6 significant digits and
/// follows the stream's imbued locale, both of which break the
/// byte-determinism contract on written traces.
inline void csv_number(std::ostream& os, double v) {
  char buf[32];
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  os.write(buf, static_cast<std::streamsize>(r.ptr - buf));
}

/// Trims spaces, tabs, and CRs from both ends (CSV files written on
/// Windows end lines with \r\n; getline leaves the \r on the last field).
inline std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

/// Removes a trailing CR in place (call right after getline).
inline void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

/// Parses a `# key=value` metadata comment (leading '#' already verified
/// by the caller). Returns false when the line carries no '='; key and
/// value come back trimmed.
inline bool parse_comment_kv(const std::string& line, std::string& key,
                             std::string& value) {
  const auto eq = line.find('=');
  if (eq == std::string::npos) return false;
  key = trim(line.substr(1, eq - 1));
  value = trim(line.substr(eq + 1));
  return true;
}

}  // namespace gridsub::traces::detail
