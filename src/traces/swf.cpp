#include "traces/swf.hpp"

#include <fstream>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "traces/csv_util.hpp"
#include "traces/trace_error.hpp"

namespace gridsub::traces {

namespace {

// SWF field indices (0-based; the format numbers them 1-18).
constexpr std::size_t kFieldSubmit = 1;
constexpr std::size_t kFieldRuntime = 3;
constexpr std::size_t kFieldRequestedTime = 8;
constexpr std::size_t kFieldUser = 11;
constexpr std::size_t kFieldGroup = 12;

double field_or(const std::vector<double>& fields, std::size_t index,
                double fallback) {
  return index < fields.size() ? fields[index] : fallback;
}

/// SWF ids are non-negative small integers; -1 means missing. Anything
/// negative, NaN, or beyond int range (corrupt archive) maps to "unknown"
/// instead of hitting the UB of an out-of-range double->int cast.
int to_id(double v) {
  if (!(v >= 0.0) || v > 2147483646.0) return -1;
  return static_cast<int>(v);
}

}  // namespace

void for_each_swf_job(std::istream& is, const SwfReadOptions& options,
                      const std::function<bool(const WorkloadJob&)>& sink,
                      SwfReadReport* report) {
  SwfReadReport local;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.size() > detail::kMaxLineBytes) {
      throw TraceFormatError("swf: oversized line " + std::to_string(line_no) +
                             " (" + std::to_string(line.size()) + " bytes)");
    }
    detail::strip_cr(line);
    // Comments may appear anywhere, possibly indented.
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    if (line[first] == ';') continue;
    if (options.max_jobs != 0 && local.accepted >= options.max_jobs) {
      // Stop streaming: on a multi-million-line archive, --max-jobs should
      // make the read cheap, not just the result small.
      local.truncated_at = line_no;
      break;
    }
    ++local.lines;
    // Tokenize on whitespace and parse each field strictly: a garbled
    // token ("3x41") is a typed error, not a silently shortened record
    // (istream extraction would stop at the first bad byte).
    std::vector<double> fields;
    const std::string_view view = line;
    std::size_t pos = 0;
    while (pos < view.size()) {
      const auto start = view.find_first_not_of(" \t", pos);
      if (start == std::string_view::npos) break;
      auto stop = view.find_first_of(" \t", start);
      if (stop == std::string_view::npos) stop = view.size();
      double v = 0.0;
      if (!detail::csv_parse_double(view.substr(start, stop - start), v)) {
        throw TraceFormatError("swf: non-numeric field on line " +
                               std::to_string(line_no));
      }
      fields.push_back(v);
      pos = stop;
    }
    if (fields.size() <= kFieldRuntime) {
      throw TraceFormatError("swf: truncated line " +
                             std::to_string(line_no) + " (" +
                             std::to_string(fields.size()) + " fields)");
    }
    const double submit = fields[kFieldSubmit];
    double runtime = fields[kFieldRuntime];
    if (runtime < 0.0 && options.requested_time_fallback) {
      runtime = field_or(fields, kFieldRequestedTime, -1.0);
    }
    if (submit < 0.0 || runtime < 0.0) {
      ++local.dropped;
      continue;
    }
    const int user = to_id(field_or(fields, kFieldUser, -1.0));
    const int group = to_id(field_or(fields, kFieldGroup, -1.0));
    if ((options.user >= 0 && user != options.user) ||
        (options.group >= 0 && group != options.group)) {
      ++local.filtered;
      continue;
    }
    ++local.accepted;
    if (!sink(WorkloadJob{submit, runtime, user, group})) break;
  }
  if (report != nullptr) *report = local;
}

Workload read_swf(std::istream& is, const std::string& name,
                  const SwfReadOptions& options, SwfReadReport* report) {
  Workload w(name);
  for_each_swf_job(
      is, options,
      [&w](const WorkloadJob& job) {
        w.add_job(job);
        return true;
      },
      report);
  w.sort_by_arrival();
  w.rebase_to_zero();
  return w;
}

Workload read_swf_file(const std::string& path, const SwfReadOptions& options,
                       SwfReadReport* report) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("read_swf_file: cannot open " + path);
  }
  const auto slash = path.find_last_of('/');
  const std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  return read_swf(is, name, options, report);
}

}  // namespace gridsub::traces
