#include "traces/datasets.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "stats/fit.hpp"
#include "stats/lognormal.hpp"
#include "stats/shifted.hpp"
#include "traces/generator.hpp"

namespace gridsub::traces {

namespace {

// Table 1 of the paper: (mean < 10^5, mean with 10^5, sigma_R). rho is
// derived from the censored-mean identity, see header. Week sizes follow
// the paper's total of 10,893 probes: 2,005 for 2006-IX and 808 per week
// (2,005 + 11 * 808 = 10,893).
constexpr std::size_t kWeekSize = 808;
constexpr std::size_t k2006Size = 2005;

double derive_rho(double mean_less, double mean_with, double timeout) {
  return (mean_with - mean_less) / (timeout - mean_less);
}

std::vector<DatasetConfig> build_registry() {
  struct Row {
    const char* name;
    std::size_t n;
    double mean_less;
    double mean_with;
    double sigma;
    std::uint64_t seed;
  };
  // The latency floor (shift) models the fixed middleware traversal
  // (credential delegation, match-making, dispatch); EGEE probes are never
  // observed below a few tens of seconds.
  const Row rows[] = {
      {"2006-IX", k2006Size, 570.0, 1042.0, 886.0, 0xE6E51001},
      {"2007-36", kWeekSize, 446.0, 2739.0, 748.0, 0xE6E51002},
      {"2007-37", kWeekSize, 506.0, 3639.0, 848.0, 0xE6E51003},
      {"2007-38", kWeekSize, 447.0, 2739.0, 682.0, 0xE6E51004},
      {"2007-39", kWeekSize, 489.0, 3533.0, 741.0, 0xE6E51005},
      {"2007-50", kWeekSize, 660.0, 2341.0, 1046.0, 0xE6E51006},
      {"2007-51", kWeekSize, 478.0, 1716.0, 510.0, 0xE6E51007},
      {"2007-52", kWeekSize, 443.0, 1685.0, 582.0, 0xE6E51008},
      {"2007-53", kWeekSize, 449.0, 1977.0, 678.0, 0xE6E51009},
      {"2008-01", kWeekSize, 434.0, 1678.0, 317.0, 0xE6E5100A},
      {"2008-02", kWeekSize, 418.0, 1568.0, 547.0, 0xE6E5100B},
      {"2008-03", kWeekSize, 538.0, 1484.0, 1196.0, 0xE6E5100C},
  };
  std::vector<DatasetConfig> registry;
  registry.reserve(std::size(rows));
  for (const Row& r : rows) {
    DatasetConfig c;
    c.name = r.name;
    c.n_probes = r.n;
    c.target_mean = r.mean_less;
    c.target_stddev = r.sigma;
    c.timeout = 10000.0;
    c.outlier_ratio = derive_rho(r.mean_less, r.mean_with, c.timeout);
    // Floor at ~1/5 of the conditional mean, capped at 120 s.
    c.shift = std::min(120.0, 0.2 * r.mean_less);
    c.seed = r.seed;
    registry.push_back(std::move(c));
  }
  return registry;
}

}  // namespace

const std::vector<DatasetConfig>& all_datasets() {
  static const std::vector<DatasetConfig> registry = build_registry();
  return registry;
}

const DatasetConfig& dataset_by_name(const std::string& name) {
  for (const auto& c : all_datasets()) {
    if (c.name == name) return c;
  }
  throw std::out_of_range("dataset_by_name: unknown dataset '" + name + "'");
}

stats::DistributionPtr calibrated_bulk(const DatasetConfig& config) {
  // Calibrate the log-normal so that, *after shifting*, the moments
  // conditioned below the timeout match the targets: solve on the shifted
  // axis y = x - shift with cut at timeout - shift.
  const double mean_y = config.target_mean - config.shift;
  const double cut_y = config.timeout - config.shift;
  if (!(mean_y > 0.0)) {
    throw std::runtime_error("calibrated_bulk: shift >= target mean");
  }
  const auto fit = stats::calibrate_truncated_lognormal(
      mean_y, config.target_stddev, cut_y);
  if (!fit.converged) {
    throw std::runtime_error("calibrated_bulk: calibration failed for " +
                             config.name);
  }
  return std::make_unique<stats::Shifted>(
      std::make_unique<stats::LogNormal>(fit.mu, fit.sigma), config.shift);
}

double fault_ratio_for(const DatasetConfig& config) {
  const auto bulk = calibrated_bulk(config);
  const double tail_mass = 1.0 - bulk->cdf(config.timeout);
  if (tail_mass >= config.outlier_ratio) return 0.0;
  return (config.outlier_ratio - tail_mass) / (1.0 - tail_mass);
}

Trace make_trace(const DatasetConfig& config) {
  GeneratorConfig gen;
  gen.name = config.name;
  gen.n_probes = config.n_probes;
  gen.timeout = config.timeout;
  gen.fault_ratio = fault_ratio_for(config);
  gen.concurrent_probes = 10;
  gen.seed = config.seed;
  const auto bulk = calibrated_bulk(config);
  const Trace raw = generate_probe_campaign(*bulk, gen);
  // Table 1 reports *sample* statistics of the real traces; pin the
  // synthetic sample to them exactly rather than only in expectation. The
  // correction clamps at the dataset's latency floor (the fixed middleware
  // traversal) — EGEE probes are never observed faster than that, and a
  // lower clamp would hand the strategy optimizers an exploitable clump of
  // unrealistically quick jobs.
  return match_sample_moments(raw, config.target_mean, config.target_stddev,
                              /*floor=*/config.shift);
}

Trace make_union_trace() {
  Trace out("2007/08", all_datasets().front().timeout);
  for (const auto& c : all_datasets()) {
    if (c.name == "2006-IX") continue;
    out.append(make_trace(c));
  }
  return out;
}

Trace make_trace_by_name(const std::string& name) {
  if (name == "2007/08") return make_union_trace();
  return make_trace(dataset_by_name(name));
}

std::vector<std::string> all_dataset_names_with_union() {
  std::vector<std::string> names;
  names.reserve(all_datasets().size() + 1);
  bool union_inserted = false;
  for (const auto& c : all_datasets()) {
    names.push_back(c.name);
    if (!union_inserted && c.name == "2006-IX") {
      names.emplace_back("2007/08");
      union_inserted = true;
    }
  }
  return names;
}

}  // namespace gridsub::traces
