#pragma once

// Probe-job traces.
//
// The paper's reference data is a set of probe-job campaigns on the EGEE
// biomed VO: each probe is a ~zero-duration job whose measured round-trip
// is pure grid latency; probes exceeding a 10,000 s timeout are canceled
// and recorded as outliers (faults land in the same bucket). A Trace is an
// ordered log of such probes plus the campaign timeout, and computes the
// Table 1 statistics.

#include <span>
#include <string>
#include <vector>

namespace gridsub::traces {

/// Terminal state of one probe job.
enum class ProbeStatus {
  kCompleted,  ///< started execution before the campaign timeout
  kOutlier,    ///< exceeded the timeout and was canceled
  kFault       ///< failed outright (middleware error, lost job, ...)
};

/// One probe-job record. For kCompleted probes `latency` is the measured
/// submission-to-running duration; for kOutlier/kFault it is meaningless
/// and stored as the campaign timeout for bookkeeping.
struct ProbeRecord {
  double submit_time = 0.0;
  double latency = 0.0;
  ProbeStatus status = ProbeStatus::kCompleted;
};

/// Statistics mirroring the paper's Table 1 columns.
struct TraceStats {
  std::size_t total = 0;          ///< all probes, including outliers/faults
  std::size_t completed = 0;      ///< probes with measured latency
  double outlier_ratio = 0.0;     ///< rho = 1 - completed/total
  double mean_completed = 0.0;    ///< "mean < 10^5" column
  double stddev_completed = 0.0;  ///< sigma_R column
  double censored_mean = 0.0;     ///< "mean with 10^5": outliers count as
                                  ///< the timeout value (lower bound)
};

/// Ordered log of probe jobs with the campaign outlier timeout.
class Trace {
 public:
  Trace() = default;
  Trace(std::string name, double timeout);

  /// Appends a completed probe with measured latency (>= 0).
  void add_completed(double submit_time, double latency);
  /// Appends an outlier (canceled at the timeout).
  void add_outlier(double submit_time);
  /// Appends a fault.
  void add_fault(double submit_time);
  /// Appends a raw record (used by the CSV reader).
  void add_record(const ProbeRecord& record);

  /// Concatenates another trace (e.g. the weekly sets into the 2007/08
  /// union). Timeouts must match.
  void append(const Trace& other);

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  [[nodiscard]] double timeout() const { return timeout_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }
  [[nodiscard]] std::span<const ProbeRecord> records() const {
    return records_;
  }

  /// Latencies of completed probes, in submission order.
  [[nodiscard]] std::vector<double> completed_latencies() const;

  /// Number of probes with the given status.
  [[nodiscard]] std::size_t count(ProbeStatus status) const;

  /// Table 1 statistics; requires at least one completed probe.
  [[nodiscard]] TraceStats stats() const;

 private:
  std::string name_;
  double timeout_ = 10000.0;
  std::vector<ProbeRecord> records_;
};

}  // namespace gridsub::traces
