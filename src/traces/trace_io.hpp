#pragma once

// CSV persistence for probe traces.
//
// Format (one header line, then one line per probe):
//   submit_time,latency,status
// with status one of completed|outlier|fault. The trace name and timeout
// travel in '#'-prefixed comment lines so a file round-trips losslessly.

#include <iosfwd>
#include <string>

#include "traces/trace.hpp"

namespace gridsub::traces {

/// Writes a trace as CSV (with #name/#timeout header comments).
void write_csv(std::ostream& os, const Trace& trace);
void write_csv_file(const std::string& path, const Trace& trace);

/// Reads a trace written by write_csv. Throws std::runtime_error on
/// malformed input.
Trace read_csv(std::istream& is);
Trace read_csv_file(const std::string& path);

}  // namespace gridsub::traces
