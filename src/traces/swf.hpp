#pragma once

// Standard Workload Format (SWF) reader.
//
// SWF is the Parallel Workloads Archive interchange format used by the
// grid-workload studies the ROADMAP cites (Medernach's LPC analysis,
// Guazzone's grid mining): one job per line, 18 whitespace-separated
// fields, `;`-prefixed comment/header lines. We project each job onto the
// four columns the replay subsystem needs — submit time, runtime, user id,
// group id — and normalize the result into a Workload (sorted by arrival,
// rebased to t=0).
//
// The reader is deliberately tolerant of the archive's real-world warts:
// CRLF line endings, blank lines, comments anywhere, and the `-1`
// missing-value convention (a missing runtime falls back to the requested
// time; jobs with no usable runtime or a negative submit time are
// dropped and counted, not fatal). Structurally malformed data lines
// (fewer than 4 fields, non-numeric or garbled values, lines past the
// size cap) throw TraceFormatError (trace_error.hpp) with the offending
// line number — corruption is a typed error, never a silently shortened
// record.

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>

#include "traces/workload.hpp"

namespace gridsub::traces {

struct SwfReadOptions {
  std::size_t max_jobs = 0;  ///< stop after this many accepted jobs (0 = all)
  /// When the measured runtime (field 4) is missing (-1), substitute the
  /// requested time (field 9) if present.
  bool requested_time_fallback = true;
  /// Keep only jobs of this user / group id (-1 = no filter). This is how
  /// VO-level submission patterns are isolated from a site archive; filters
  /// apply while streaming, before max_jobs counts.
  int user = -1;
  int group = -1;
};

/// Per-parse accounting, filled by read_swf / for_each_swf_job.
struct SwfReadReport {
  std::size_t lines = 0;          ///< data lines seen (comments excluded)
  std::size_t accepted = 0;       ///< jobs kept
  std::size_t dropped = 0;        ///< jobs skipped (missing runtime/submit)
  std::size_t filtered = 0;       ///< jobs excluded by user/group filters
  std::size_t truncated_at = 0;   ///< lines ignored after max_jobs (0 = none)
};

/// Streaming core: parses line by line and hands each accepted job to
/// `sink` without materializing the log — month-long archives cost O(1)
/// memory beyond what the sink keeps. Jobs arrive in archive order with
/// raw submit times (per the SWF spec these are relative to the log start;
/// no sorting or rebasing happens here). `sink` returns false to stop
/// early; max_jobs/user/group in `options` are honoured as in read_swf.
void for_each_swf_job(std::istream& is, const SwfReadOptions& options,
                      const std::function<bool(const WorkloadJob&)>& sink,
                      SwfReadReport* report = nullptr);

/// Parses SWF text into a Workload named `name`. See header comment for
/// tolerance rules; `report` (optional) receives parse accounting.
Workload read_swf(std::istream& is, const std::string& name,
                  const SwfReadOptions& options = {},
                  SwfReadReport* report = nullptr);

/// Opens and parses an SWF file; the workload is named after the path's
/// final component.
Workload read_swf_file(const std::string& path,
                       const SwfReadOptions& options = {},
                       SwfReadReport* report = nullptr);

}  // namespace gridsub::traces
