#pragma once

// Standard Workload Format (SWF) reader.
//
// SWF is the Parallel Workloads Archive interchange format used by the
// grid-workload studies the ROADMAP cites (Medernach's LPC analysis,
// Guazzone's grid mining): one job per line, 18 whitespace-separated
// fields, `;`-prefixed comment/header lines. We project each job onto the
// four columns the replay subsystem needs — submit time, runtime, user id,
// group id — and normalize the result into a Workload (sorted by arrival,
// rebased to t=0).
//
// The reader is deliberately tolerant of the archive's real-world warts:
// CRLF line endings, blank lines, comments anywhere, and the `-1`
// missing-value convention (a missing runtime falls back to the requested
// time; jobs with no usable runtime or a negative submit time are
// dropped and counted, not fatal). Structurally malformed data lines
// (fewer than 4 fields, non-numeric values) throw std::runtime_error with
// the offending line number.

#include <cstddef>
#include <iosfwd>
#include <string>

#include "traces/workload.hpp"

namespace gridsub::traces {

struct SwfReadOptions {
  std::size_t max_jobs = 0;  ///< stop after this many accepted jobs (0 = all)
  /// When the measured runtime (field 4) is missing (-1), substitute the
  /// requested time (field 9) if present.
  bool requested_time_fallback = true;
};

/// Per-parse accounting, filled by read_swf.
struct SwfReadReport {
  std::size_t lines = 0;          ///< data lines seen (comments excluded)
  std::size_t accepted = 0;       ///< jobs kept
  std::size_t dropped = 0;        ///< jobs skipped (missing runtime/submit)
  std::size_t truncated_at = 0;   ///< lines ignored after max_jobs (0 = none)
};

/// Parses SWF text into a Workload named `name`. See header comment for
/// tolerance rules; `report` (optional) receives parse accounting.
Workload read_swf(std::istream& is, const std::string& name,
                  const SwfReadOptions& options = {},
                  SwfReadReport* report = nullptr);

/// Opens and parses an SWF file; the workload is named after the path's
/// final component.
Workload read_swf_file(const std::string& path,
                       const SwfReadOptions& options = {},
                       SwfReadReport* report = nullptr);

}  // namespace gridsub::traces
