#include "traces/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "traces/csv_util.hpp"
#include "traces/trace_error.hpp"

namespace gridsub::traces {

namespace {

using detail::strip_cr;
using detail::trim;

const char* status_label(ProbeStatus s) {
  switch (s) {
    case ProbeStatus::kCompleted:
      return "completed";
    case ProbeStatus::kOutlier:
      return "outlier";
    case ProbeStatus::kFault:
      return "fault";
  }
  return "unknown";
}

ProbeStatus parse_status(const std::string& s) {
  if (s == "completed") return ProbeStatus::kCompleted;
  if (s == "outlier") return ProbeStatus::kOutlier;
  if (s == "fault") return ProbeStatus::kFault;
  throw TraceFormatError("trace csv: unknown status '" + s + "'");
}

}  // namespace

void write_csv(std::ostream& os, const Trace& trace) {
  // csv_number writes shortest round-trip to_chars form: lossless (the
  // 6-sig-fig ostream default quantizes week-scale submit times) and
  // independent of any locale imbued on the stream.
  os << "# name=" << trace.name() << "\n";
  os << "# timeout=";
  detail::csv_number(os, trace.timeout());
  os << "\n";
  os << "submit_time,latency,status\n";
  for (const auto& r : trace.records()) {
    detail::csv_number(os, r.submit_time);
    os << ',';
    detail::csv_number(os, r.latency);
    os << ',' << status_label(r.status) << '\n';
  }
}

void write_csv_file(const std::string& path, const Trace& trace) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_csv_file: cannot open " + path);
  write_csv(os, trace);
}

Trace read_csv(std::istream& is) {
  std::string name = "unnamed";
  double timeout = 10000.0;
  std::string line;
  bool header_seen = false;
  std::size_t line_no = 0;
  std::vector<ProbeRecord> records;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.size() > detail::kMaxLineBytes) {
      throw TraceFormatError("trace csv: oversized line " +
                             std::to_string(line_no) + " (" +
                             std::to_string(line.size()) + " bytes)");
    }
    strip_cr(line);
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::string key, value;
      if (detail::parse_comment_kv(line, key, value)) {
        if (key == "name") {
          name = value;
        } else if (key == "timeout") {
          if (!detail::csv_parse_double(value, timeout)) {
            throw TraceFormatError("trace csv: bad timeout '" + value + "'");
          }
        }
      }
      continue;
    }
    if (!header_seen) {
      if (line.rfind("submit_time", 0) != 0) {
        throw TraceFormatError("trace csv: missing header line");
      }
      header_seen = true;
      continue;
    }
    std::istringstream ls(line);
    std::string submit_str, latency_str, status_str;
    if (!std::getline(ls, submit_str, ',') ||
        !std::getline(ls, latency_str, ',') ||
        !std::getline(ls, status_str)) {
      throw TraceFormatError("trace csv: malformed line " +
                             std::to_string(line_no) + ": '" + line + "'");
    }
    ProbeRecord r;
    if (!detail::csv_parse_double(submit_str, r.submit_time) ||
        !detail::csv_parse_double(latency_str, r.latency)) {
      throw TraceFormatError("trace csv: unparseable line " +
                             std::to_string(line_no) + ": '" + line + "'");
    }
    r.status = parse_status(trim(status_str));
    records.push_back(r);
  }
  Trace trace(name, timeout);
  for (const auto& r : records) trace.add_record(r);
  return trace;
}

Trace read_csv_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("read_csv_file: cannot open " + path);
  return read_csv(is);
}

}  // namespace gridsub::traces
