#include "traces/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gridsub::traces {

namespace {

const char* status_label(ProbeStatus s) {
  switch (s) {
    case ProbeStatus::kCompleted:
      return "completed";
    case ProbeStatus::kOutlier:
      return "outlier";
    case ProbeStatus::kFault:
      return "fault";
  }
  return "unknown";
}

ProbeStatus parse_status(const std::string& s) {
  if (s == "completed") return ProbeStatus::kCompleted;
  if (s == "outlier") return ProbeStatus::kOutlier;
  if (s == "fault") return ProbeStatus::kFault;
  throw std::runtime_error("trace csv: unknown status '" + s + "'");
}

}  // namespace

void write_csv(std::ostream& os, const Trace& trace) {
  os << "# name=" << trace.name() << "\n";
  os << "# timeout=" << trace.timeout() << "\n";
  os << "submit_time,latency,status\n";
  for (const auto& r : trace.records()) {
    os << r.submit_time << ',' << r.latency << ',' << status_label(r.status)
       << '\n';
  }
}

void write_csv_file(const std::string& path, const Trace& trace) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_csv_file: cannot open " + path);
  write_csv(os, trace);
}

Trace read_csv(std::istream& is) {
  std::string name = "unnamed";
  double timeout = 10000.0;
  std::string line;
  bool header_seen = false;
  std::vector<ProbeRecord> records;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      const auto eq = line.find('=');
      if (eq != std::string::npos) {
        std::string key = line.substr(1, eq - 1);
        key.erase(0, key.find_first_not_of(' '));
        key.erase(key.find_last_not_of(' ') + 1);
        const std::string value = line.substr(eq + 1);
        if (key == "name") {
          name = value;
        } else if (key == "timeout") {
          timeout = std::stod(value);
        }
      }
      continue;
    }
    if (!header_seen) {
      if (line.rfind("submit_time", 0) != 0) {
        throw std::runtime_error("trace csv: missing header line");
      }
      header_seen = true;
      continue;
    }
    std::istringstream ls(line);
    std::string submit_str, latency_str, status_str;
    if (!std::getline(ls, submit_str, ',') ||
        !std::getline(ls, latency_str, ',') ||
        !std::getline(ls, status_str)) {
      throw std::runtime_error("trace csv: malformed line '" + line + "'");
    }
    ProbeRecord r;
    r.submit_time = std::stod(submit_str);
    r.latency = std::stod(latency_str);
    r.status = parse_status(status_str);
    records.push_back(r);
  }
  Trace trace(name, timeout);
  for (const auto& r : records) trace.add_record(r);
  return trace;
}

Trace read_csv_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("read_csv_file: cannot open " + path);
  return read_csv(is);
}

}  // namespace gridsub::traces
