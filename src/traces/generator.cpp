#include "traces/generator.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <vector>

#include "stats/lognormal.hpp"

namespace gridsub::traces {

Trace generate_probe_campaign(const stats::Distribution& bulk,
                              const GeneratorConfig& config) {
  if (config.n_probes == 0) {
    throw std::invalid_argument("generate_probe_campaign: n_probes == 0");
  }
  if (config.concurrent_probes == 0) {
    throw std::invalid_argument(
        "generate_probe_campaign: concurrent_probes == 0");
  }
  stats::Rng rng(config.seed);
  Trace trace(config.name, config.timeout);

  struct InFlight {
    double finish_time;  // completion or cancellation instant
    double submit_time;
    double latency;      // drawn latency (may exceed timeout)
    bool fault;
  };
  const auto cmp = [](const InFlight& a, const InFlight& b) {
    return a.finish_time > b.finish_time;
  };
  std::priority_queue<InFlight, std::vector<InFlight>, decltype(cmp)> heap(
      cmp);

  std::size_t submitted = 0;
  const auto submit = [&](double now) {
    InFlight p;
    p.submit_time = now;
    p.fault = rng.bernoulli(config.fault_ratio);
    if (p.fault) {
      // Faults are detected at the campaign timeout (the probe simply never
      // starts and is canceled like an outlier).
      p.latency = config.timeout;
      p.finish_time = now + config.timeout;
    } else {
      p.latency = bulk.sample(rng);
      p.finish_time = now + std::min(p.latency, config.timeout);
    }
    heap.push(p);
    ++submitted;
  };

  const std::size_t initial =
      std::min(config.concurrent_probes, config.n_probes);
  for (std::size_t i = 0; i < initial; ++i) submit(0.0);

  while (!heap.empty()) {
    const InFlight done = heap.top();
    heap.pop();
    if (done.fault) {
      trace.add_fault(done.submit_time);
    } else if (done.latency > config.timeout) {
      trace.add_outlier(done.submit_time);
    } else {
      trace.add_completed(done.submit_time, done.latency);
    }
    if (submitted < config.n_probes) submit(done.finish_time);
  }
  return trace;
}

Trace match_sample_moments(const Trace& trace, double target_mean,
                           double target_stddev, double floor) {
  if (!(target_mean > 0.0) || !(target_stddev > 0.0)) {
    throw std::invalid_argument("match_sample_moments: targets must be > 0");
  }
  std::vector<double> values = trace.completed_latencies();
  if (values.size() < 2) {
    throw std::invalid_argument(
        "match_sample_moments: needs >= 2 completed probes");
  }
  const double hi = trace.timeout() * (1.0 - 1e-9);
  const double lo = std::min(floor, target_mean);

  const auto moments = [](const std::vector<double>& v) {
    double m = 0.0;
    for (const double x : v) m += x;
    m /= static_cast<double>(v.size());
    double ss = 0.0;
    for (const double x : v) ss += (x - m) * (x - m);
    // Population variance, matching TraceStats.
    return std::pair{m, std::sqrt(ss / static_cast<double>(v.size()))};
  };

  for (int iter = 0; iter < 32; ++iter) {
    const auto [m, s] = moments(values);
    if (std::abs(m - target_mean) <= 1e-3 * target_mean &&
        std::abs(s - target_stddev) <= 1e-3 * target_stddev) {
      break;
    }
    if (!(s > 0.0)) break;  // degenerate sample; give up gracefully
    const double scale = target_stddev / s;
    for (double& x : values) {
      x = std::clamp(target_mean + (x - m) * scale, lo, hi);
    }
  }

  Trace out(trace.name(), trace.timeout());
  std::size_t next = 0;
  for (const ProbeRecord& r : trace.records()) {
    ProbeRecord corrected = r;
    if (r.status == ProbeStatus::kCompleted) corrected.latency = values[next++];
    out.add_record(corrected);
  }
  return out;
}

Workload generate_workload(const std::function<double(double)>& rate_fn,
                           const WorkloadGenConfig& config) {
  if (!rate_fn) {
    throw std::invalid_argument("generate_workload: null rate function");
  }
  if (!(config.peak_rate > 0.0)) {
    throw std::invalid_argument("generate_workload: peak_rate must be > 0");
  }
  if (!(config.duration > 0.0)) {
    throw std::invalid_argument("generate_workload: duration must be > 0");
  }
  stats::Rng rng(config.seed);
  // Validates runtime_mean > 0 and runtime_sigma_log >= 0.
  const stats::LogNormal runtime_dist = stats::LogNormal::from_mean_and_sigma_log(
      config.runtime_mean, config.runtime_sigma_log);

  Workload w(config.name);
  // Lewis-Shedler thinning: candidate arrivals at the envelope rate, each
  // kept with probability rate(t)/peak.
  double t = 0.0;
  while (true) {
    t += rng.exponential(config.peak_rate);
    if (t >= config.duration) break;
    const double rate =
        std::clamp(rate_fn(t), 0.0, config.peak_rate);
    if (rng.uniform01() <= rate / config.peak_rate) {
      w.add_job(t, runtime_dist.sample(rng));
    }
  }
  return w;
}

}  // namespace gridsub::traces
