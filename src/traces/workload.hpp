#pragma once

// Recorded grid workloads for trace replay.
//
// A Workload is an ordered log of job arrivals (arrival time, runtime,
// user/group ids) — the minimal SWF projection the DES simulator needs to
// replay realistic *non-stationary* load (diurnal cycles, submission
// bursts, outage backlogs) instead of the stationary Poisson
// BackgroundLoad. Sources: parsed SWF archives (traces/swf.hpp), the
// repo's workload CSV (this header), or the synthetic scenario library
// (traces/scenarios.hpp).

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace gridsub::traces {

/// One recorded job arrival.
struct WorkloadJob {
  double arrival = 0.0;  ///< seconds since workload start
  double runtime = 0.0;  ///< execution time on one slot (s)
  int user = -1;         ///< submitting user id (-1 = unknown)
  int group = -1;        ///< submitting group id (-1 = unknown)
};

/// Aggregate shape statistics; benches/tests use these to characterize
/// non-stationarity without running a replay.
struct WorkloadStats {
  std::size_t jobs = 0;
  double duration = 0.0;      ///< last arrival time (s)
  double mean_rate = 0.0;     ///< jobs per second over [0, duration]
  double peak_hourly_rate = 0.0;  ///< max jobs/s over hourly buckets
  double mean_runtime = 0.0;
  /// peak_hourly_rate / mean_rate: 1 for a flat profile, larger for
  /// bursty/diurnal workloads.
  double burstiness = 0.0;
};

/// Time-ordered job log with a provenance name.
class Workload {
 public:
  Workload() = default;
  explicit Workload(std::string name) : name_(std::move(name)) {}

  /// Appends a job. Arrivals need not arrive pre-sorted; call
  /// sort_by_arrival() before replaying.
  void add_job(const WorkloadJob& job) { jobs_.push_back(job); }
  void add_job(double arrival, double runtime, int user = -1,
               int group = -1) {
    jobs_.push_back(WorkloadJob{arrival, runtime, user, group});
  }

  /// Stable sort by arrival time (preserves tie order).
  void sort_by_arrival();

  /// Shifts arrivals so the first (sorted) job arrives at 0.
  void rebase_to_zero();

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  [[nodiscard]] std::size_t size() const { return jobs_.size(); }
  [[nodiscard]] bool empty() const { return jobs_.empty(); }
  [[nodiscard]] std::span<const WorkloadJob> jobs() const { return jobs_; }

  /// Last arrival time; 0 for an empty workload.
  [[nodiscard]] double duration() const;

  /// Jobs with arrival in [t0, t1), arrivals rebased so t0 maps to 0.
  /// Requires t1 >= t0 and a sorted workload for a contiguous cut (the
  /// selection itself works on unsorted logs too).
  [[nodiscard]] Workload window(double t0, double t1) const;

  /// Multiplies every arrival by `factor` (> 0): factor < 1 compresses the
  /// timeline (denser load), factor > 1 stretches it.
  void scale_time(double factor);

  /// Multiplies every runtime by `factor` (> 0).
  void scale_runtime(double factor);

  [[nodiscard]] WorkloadStats stats() const;

 private:
  std::string name_ = "unnamed";
  std::vector<WorkloadJob> jobs_;
};

/// Repo workload CSV: `# name=<name>` metadata, an
/// `arrival_time,runtime,user,group` header line, one row per job.
/// The reader tolerates CRLF line endings, comment lines, and surrounding
/// whitespace; malformed, truncated, or oversized rows throw
/// TraceFormatError (trace_error.hpp).
void write_workload_csv(std::ostream& os, const Workload& w);
void write_workload_csv_file(const std::string& path, const Workload& w);
Workload read_workload_csv(std::istream& is);
Workload read_workload_csv_file(const std::string& path);

}  // namespace gridsub::traces
