#pragma once

// Synthetic non-stationary replay scenarios.
//
// The paper's §7 conclusion — strategy parameters tuned on one week stay
// near-optimal on later weeks — is only testable under realistic
// *non-stationary* load. When no external SWF file is available, this
// library synthesizes week-long workloads with the load shapes grid
// workload studies repeatedly observe (Medernach's LPC analysis,
// Guazzone's grid mining; see PAPERS.md):
//
//   stationary-week — constant-rate Poisson control, the BackgroundLoad
//                     regime expressed as a replayable workload;
//   diurnal-week    — day/night sinusoid with a weekend dip (the
//                     human-driven submission cycle);
//   burst-week      — a quiet floor punctuated by heavy submission bursts
//                     (campaign-style usage: one user floods the broker);
//   outage-week     — normal load, a dead window (site/WMS outage), then a
//                     backlog flush at a multiple of the normal rate.
//
// Every scenario is normalized so its *time-averaged* rate equals
// `base_rate`: scenarios differ only in how the same total work is
// distributed over the week, which isolates the effect of
// non-stationarity in E_J comparisons. Generation is deterministic in the
// seed.

#include <cstdint>
#include <string>
#include <vector>

#include "traces/workload.hpp"

namespace gridsub::traces {

struct ScenarioConfig {
  double base_rate = 0.45;         ///< time-averaged arrival rate (jobs/s)
  double duration = 604800.0;      ///< scenario length (s); default 1 week
  double runtime_mean = 2200.0;    ///< log-normal runtime mean (s)
  double runtime_sigma_log = 1.1;  ///< log-normal runtime shape
  std::uint64_t seed = 20090611;   ///< deterministic generation seed
};

/// All scenario names, stationary control first.
std::vector<std::string> replay_scenario_names();

/// Synthesizes the named scenario ("stationary-week", "diurnal-week",
/// "burst-week", "outage-week"); throws std::out_of_range for unknown
/// names. Requires base_rate > 0 and duration > 0.
Workload make_scenario(const std::string& name,
                       const ScenarioConfig& config = {});

}  // namespace gridsub::traces
