#pragma once

// Probe-campaign generator.
//
// Reproduces the paper's measurement methodology (§3.2): a constant number
// of probe jobs is kept in flight — each time a probe completes (or is
// canceled at the timeout) a new one is submitted — so monitoring does not
// modulate the system load. Latencies are drawn from a latency bulk
// distribution; a fault ratio injects outright failures. The result is a
// Trace with realistic submission timestamps.

#include <cstdint>
#include <string>

#include "stats/distribution.hpp"
#include "traces/trace.hpp"

namespace gridsub::traces {

/// Parameters of a synthetic probe campaign.
struct GeneratorConfig {
  std::string name = "synthetic";
  std::size_t n_probes = 1000;      ///< total probes to log
  std::size_t concurrent_probes = 10;  ///< constant in-flight count
  double timeout = 10000.0;         ///< cancellation threshold (outliers)
  double fault_ratio = 0.0;         ///< P(outright failure) per probe
  std::uint64_t seed = 1;           ///< RNG seed
};

/// Runs the campaign: draws each probe's latency from `bulk` (a fault with
/// probability fault_ratio, an outlier if the draw exceeds the timeout) and
/// schedules submissions so `concurrent_probes` are always in flight.
Trace generate_probe_campaign(const stats::Distribution& bulk,
                              const GeneratorConfig& config);

/// Affine-corrects the completed latencies of `trace` so their *sample*
/// mean and standard deviation equal the targets (the paper's Table 1
/// columns are sample statistics of the real traces, so exact-match is the
/// faithful reproduction). Values are clamped into [floor, trace.timeout)
/// and the correction is iterated until clamping-induced drift is below
/// 0.1%. Record order, submit times and statuses are preserved.
/// Requires at least two completed probes and positive targets.
Trace match_sample_moments(const Trace& trace, double target_mean,
                           double target_stddev, double floor = 1.0);

}  // namespace gridsub::traces
