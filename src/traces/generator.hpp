#pragma once

// Probe-campaign generator.
//
// Reproduces the paper's measurement methodology (§3.2): a constant number
// of probe jobs is kept in flight — each time a probe completes (or is
// canceled at the timeout) a new one is submitted — so monitoring does not
// modulate the system load. Latencies are drawn from a latency bulk
// distribution; a fault ratio injects outright failures. The result is a
// Trace with realistic submission timestamps.

#include <cstdint>
#include <functional>
#include <string>

#include "stats/distribution.hpp"
#include "traces/trace.hpp"
#include "traces/workload.hpp"

namespace gridsub::traces {

/// Parameters of a synthetic probe campaign.
struct GeneratorConfig {
  std::string name = "synthetic";
  std::size_t n_probes = 1000;      ///< total probes to log
  std::size_t concurrent_probes = 10;  ///< constant in-flight count
  double timeout = 10000.0;         ///< cancellation threshold (outliers)
  double fault_ratio = 0.0;         ///< P(outright failure) per probe
  std::uint64_t seed = 1;           ///< RNG seed
};

/// Runs the campaign: draws each probe's latency from `bulk` (a fault with
/// probability fault_ratio, an outlier if the draw exceeds the timeout) and
/// schedules submissions so `concurrent_probes` are always in flight.
Trace generate_probe_campaign(const stats::Distribution& bulk,
                              const GeneratorConfig& config);

/// Affine-corrects the completed latencies of `trace` so their *sample*
/// mean and standard deviation equal the targets (the paper's Table 1
/// columns are sample statistics of the real traces, so exact-match is the
/// faithful reproduction). Values are clamped into [floor, trace.timeout)
/// and the correction is iterated until clamping-induced drift is below
/// 0.1%. Record order, submit times and statuses are preserved.
/// Requires at least two completed probes and positive targets.
Trace match_sample_moments(const Trace& trace, double target_mean,
                           double target_stddev, double floor = 1.0);

/// Parameters of a synthetic workload (job-arrival) generation run.
struct WorkloadGenConfig {
  std::string name = "synthetic-load";
  double duration = 604800.0;      ///< horizon in seconds (default: 1 week)
  double peak_rate = 1.0;          ///< thinning envelope: >= sup rate_fn (1/s)
  double runtime_mean = 2200.0;    ///< log-normal runtime mean (s)
  double runtime_sigma_log = 1.1;  ///< log-normal runtime shape
  std::uint64_t seed = 1;          ///< RNG seed (fully deterministic)
};

/// Draws job arrivals from the non-homogeneous Poisson process with
/// instantaneous rate `rate_fn(t)` over [0, duration) via Lewis-Shedler
/// thinning under the `peak_rate` envelope, with log-normal runtimes.
/// rate_fn values are clamped into [0, peak_rate]; requires peak_rate > 0,
/// duration > 0, runtime_mean > 0. Deterministic in the seed.
Workload generate_workload(const std::function<double(double)>& rate_fn,
                           const WorkloadGenConfig& config);

}  // namespace gridsub::traces
