#pragma once

// Synthetic counterparts of the paper's 12 EGEE trace sets (plus the
// 2007/08 union).
//
// We do not have the original biomed-VO probe logs, so each week is
// re-created as a shifted log-normal latency bulk plus a fault mass,
// calibrated so that the three statistics the paper reports in Table 1 are
// matched on *expectation*:
//   - mean of latencies below the 10,000 s outlier timeout ("mean < 10^5"),
//   - their standard deviation (sigma_R),
//   - the outlier ratio rho, recovered from the paper's censored-mean
//     column: rho = (mean_with - mean_less) / (10^4 - mean_less).
// The models under study consume only the defective CDF F̃_R, so matching
// conditional moments + outlier mass at the same truncation reproduces the
// regime the paper's evaluation explores. Sampling is deterministic per
// dataset seed.

#include <string>
#include <vector>

#include "stats/distribution.hpp"
#include "traces/trace.hpp"

namespace gridsub::traces {

/// Calibration targets and generation parameters of one synthetic week.
struct DatasetConfig {
  std::string name;        ///< paper's dataset label, e.g. "2007-52"
  std::size_t n_probes;    ///< campaign size (paper total: 10,893)
  double target_mean;      ///< Table 1 "mean < 10^5" (seconds)
  double target_stddev;    ///< Table 1 sigma_R (seconds)
  double outlier_ratio;    ///< rho derived from Table 1 (see above)
  double shift;            ///< hard latency floor (middleware traversal)
  std::uint64_t seed;      ///< deterministic generation seed
  double timeout = 10000.0;  ///< probe cancellation threshold (paper value)
};

/// The 12 individual trace sets of the paper, in its Table 1 order
/// (2006-IX, then 2007-36..39, 2007-50..53, 2008-01..03). The 2007/08
/// union is not in this list; build it with make_union_trace().
const std::vector<DatasetConfig>& all_datasets();

/// Looks up a config by paper label (throws std::out_of_range if unknown).
const DatasetConfig& dataset_by_name(const std::string& name);

/// The calibrated latency bulk distribution for a config: a shifted
/// log-normal whose moments, conditioned below the timeout, match the
/// targets. Throws std::runtime_error if calibration fails.
stats::DistributionPtr calibrated_bulk(const DatasetConfig& config);

/// Fault probability to inject at generation so that the *total* outlier
/// mass (faults + bulk tail above the timeout) equals config.outlier_ratio.
double fault_ratio_for(const DatasetConfig& config);

/// Generates the synthetic trace for a config (deterministic in the seed).
Trace make_trace(const DatasetConfig& config);

/// Concatenation of the 11 weekly 2007/2008 traces — the paper's "2007/08"
/// row (2006-IX is excluded, as in the paper).
Trace make_union_trace();

/// Convenience: make_trace(dataset_by_name(name)), with "2007/08"
/// resolving to make_union_trace().
Trace make_trace_by_name(const std::string& name);

/// All paper dataset labels including the "2007/08" union, Table 1 order.
std::vector<std::string> all_dataset_names_with_union();

}  // namespace gridsub::traces
