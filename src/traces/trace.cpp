#include "traces/trace.hpp"

#include <cmath>
#include <stdexcept>

#include "numerics/kahan.hpp"
#include "stats/summary.hpp"

namespace gridsub::traces {

Trace::Trace(std::string name, double timeout)
    : name_(std::move(name)), timeout_(timeout) {
  if (!(timeout > 0.0)) throw std::invalid_argument("Trace: timeout <= 0");
}

void Trace::add_completed(double submit_time, double latency) {
  if (latency < 0.0) {
    throw std::invalid_argument("Trace::add_completed: negative latency");
  }
  if (latency > timeout_) {
    throw std::invalid_argument(
        "Trace::add_completed: latency exceeds the campaign timeout; record "
        "it as an outlier instead");
  }
  records_.push_back({submit_time, latency, ProbeStatus::kCompleted});
}

void Trace::add_outlier(double submit_time) {
  records_.push_back({submit_time, timeout_, ProbeStatus::kOutlier});
}

void Trace::add_fault(double submit_time) {
  records_.push_back({submit_time, timeout_, ProbeStatus::kFault});
}

void Trace::add_record(const ProbeRecord& record) {
  records_.push_back(record);
}

void Trace::append(const Trace& other) {
  if (other.timeout_ != timeout_) {
    throw std::invalid_argument("Trace::append: timeout mismatch");
  }
  records_.insert(records_.end(), other.records_.begin(),
                  other.records_.end());
}

std::vector<double> Trace::completed_latencies() const {
  std::vector<double> out;
  out.reserve(records_.size());
  for (const auto& r : records_) {
    if (r.status == ProbeStatus::kCompleted) out.push_back(r.latency);
  }
  return out;
}

std::size_t Trace::count(ProbeStatus status) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.status == status) ++n;
  }
  return n;
}

TraceStats Trace::stats() const {
  const auto lat = completed_latencies();
  if (lat.empty()) {
    throw std::logic_error("Trace::stats: no completed probes");
  }
  TraceStats s;
  s.total = records_.size();
  s.completed = lat.size();
  s.outlier_ratio =
      1.0 - static_cast<double>(s.completed) / static_cast<double>(s.total);
  s.mean_completed = stats::mean(lat);
  s.stddev_completed = lat.size() >= 2 ? stats::stddev(lat) : 0.0;
  // Censored lower bound: every outlier/fault counted at the timeout value.
  numerics::KahanAccumulator acc;
  for (const auto& r : records_) {
    acc.add(r.status == ProbeStatus::kCompleted ? r.latency : timeout_);
  }
  s.censored_mean = acc.value() / static_cast<double>(s.total);
  return s;
}

}  // namespace gridsub::traces
