#pragma once

// Uniform-grid cache of a latency model — the evaluation workhorse.
//
// Every strategy formula in the paper is an integral functional of F̃ over
// [0, t∞] with t∞ at most the probe horizon. Discretizing F̃ once on a
// uniform grid makes each E_J / sigma_J evaluation a prefix-sum lookup plus
// interpolation, which is what lets the benches sweep thousands of
// (b, t∞) and (t0, t∞) combinations per dataset in milliseconds.

#include <span>
#include <vector>

#include "model/latency_model.hpp"
#include "traces/trace.hpp"

namespace gridsub::model {

class DiscretizedLatencyModel final : public LatencyModel {
 public:
  /// Samples `source` at t = 0, step, 2*step, ..., horizon. Requires
  /// step > 0 and step <= horizon.
  explicit DiscretizedLatencyModel(const LatencyModel& source,
                                   double step = 1.0);

  /// Convenience: discretize the empirical model of a trace.
  static DiscretizedLatencyModel from_trace(const traces::Trace& trace,
                                            double step = 1.0);

  /// Builds a model directly from F̃ grid samples at t = 0, step, ...
  /// (used by core/uncertainty.hpp to evaluate perturbed ECDF bands).
  /// Requires a non-decreasing grid with values in [0, 1], ftilde[0] == 0
  /// and at least two nodes; the outlier mass is 1 - ftilde.back().
  static DiscretizedLatencyModel from_grid(std::vector<double> ftilde,
                                           double step, std::string name);

  // LatencyModel interface -------------------------------------------------
  /// Linear interpolation of the cached grid (clamps beyond the horizon).
  [[nodiscard]] double ftilde(double t) const override;
  /// Central finite difference of the cached grid.
  [[nodiscard]] double density(double t) const override;
  [[nodiscard]] double outlier_ratio() const override { return rho_; }
  [[nodiscard]] double horizon() const override { return horizon_; }
  /// Inverse-transform sampling of the discretized (piecewise-linear) law.
  [[nodiscard]] double sample(stats::Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<LatencyModel> clone() const override;

  // Grid access -------------------------------------------------------------
  [[nodiscard]] double step() const { return step_; }
  [[nodiscard]] std::size_t grid_size() const { return ftilde_.size(); }
  [[nodiscard]] double t_at(std::size_t i) const {
    return static_cast<double>(i) * step_;
  }
  /// F̃ samples at the grid nodes.
  [[nodiscard]] std::span<const double> ftilde_grid() const {
    return ftilde_;
  }
  /// Survival 1 - F̃(t), interpolated.
  [[nodiscard]] double survival_at(double t) const {
    return 1.0 - ftilde(t);
  }

 private:
  DiscretizedLatencyModel() = default;

  double step_ = 1.0;
  double horizon_ = 10000.0;
  double rho_ = 0.0;
  std::vector<double> ftilde_;
  std::string source_name_;
};

}  // namespace gridsub::model
