#pragma once

// Empirical latency model built from a probe Trace — the paper's estimator.
//
// F̃ is the cumulative histogram normalized by the *total* probe count
// (outliers included), exactly the paper's F̃_R of Figure 1. The density is
// a Gaussian-KDE estimate scaled by (1 - rho); sampling is a bootstrap draw
// over all probes (outliers sample as kNeverStarts).

#include <vector>

#include "model/latency_model.hpp"
#include "stats/kde.hpp"
#include "traces/trace.hpp"

namespace gridsub::model {

class EmpiricalLatencyModel final : public LatencyModel {
 public:
  /// Builds from a trace. `kde_bandwidth` <= 0 selects Silverman's rule.
  /// Requires at least one completed probe.
  explicit EmpiricalLatencyModel(const traces::Trace& trace,
                                 double kde_bandwidth = 0.0);

  [[nodiscard]] double ftilde(double t) const override;
  [[nodiscard]] double density(double t) const override;
  [[nodiscard]] double outlier_ratio() const override { return rho_; }
  [[nodiscard]] double horizon() const override { return horizon_; }
  [[nodiscard]] double sample(stats::Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<LatencyModel> clone() const override;

  [[nodiscard]] std::size_t completed_count() const {
    return sorted_latencies_.size();
  }
  [[nodiscard]] std::size_t total_count() const { return total_; }

 private:
  std::vector<double> sorted_latencies_;
  std::size_t total_ = 0;
  double rho_ = 0.0;
  double horizon_ = 10000.0;
  stats::KernelDensity kde_;
  std::string source_name_;
};

}  // namespace gridsub::model
