#include "model/latency_model.hpp"

// The interface is header-only; this TU anchors the vtable.

namespace gridsub::model {

// (intentionally empty)

}  // namespace gridsub::model
