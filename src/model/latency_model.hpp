#pragma once

// Latency models: the defective CDF F̃_R at the heart of the paper.
//
// A job's latency R is observed only up to the probe timeout; jobs beyond
// it — and outright faults — form an outlier mass rho. The paper works with
//   F̃_R(t) = (1 - rho) * F_R(t) = P(R <= t)   over *all* submitted jobs,
// which saturates at 1 - rho instead of 1 (it is not a proper CDF, and the
// strategy formulas are careful never to treat it as one). A LatencyModel
// exposes F̃, its density, the outlier mass, the observation horizon, and
// exact sampling (outliers sample as +infinity: such a job never starts).

#include <limits>
#include <memory>
#include <string>

#include "stats/rng.hpp"

namespace gridsub::model {

/// Sample value representing an outlier (a job that never starts).
inline constexpr double kNeverStarts =
    std::numeric_limits<double>::infinity();

/// True if a sampled latency represents an outlier/fault.
[[nodiscard]] inline bool is_outlier_sample(double latency) {
  return !(latency < kNeverStarts);
}

/// Abstract latency model.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// Defective CDF F̃(t) = P(R <= t) over all jobs; non-decreasing,
  /// F̃(0) = 0, sup F̃ = 1 - outlier_ratio().
  [[nodiscard]] virtual double ftilde(double t) const = 0;

  /// Density f̃(t) = dF̃/dt (may be an estimate for empirical models).
  [[nodiscard]] virtual double density(double t) const = 0;

  /// Outlier mass rho in [0, 1).
  [[nodiscard]] virtual double outlier_ratio() const = 0;

  /// Observation horizon (the probe campaign timeout, 10^4 s in the paper).
  /// F̃ is constant beyond it.
  [[nodiscard]] virtual double horizon() const = 0;

  /// Draws one latency; returns kNeverStarts with probability
  /// outlier_ratio().
  [[nodiscard]] virtual double sample(stats::Rng& rng) const = 0;

  /// Survival over all jobs: P(R > t) = 1 - F̃(t).
  [[nodiscard]] double survival(double t) const { return 1.0 - ftilde(t); }

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::unique_ptr<LatencyModel> clone() const = 0;
};

using LatencyModelPtr = std::unique_ptr<LatencyModel>;

}  // namespace gridsub::model
