#pragma once

// Parametric latency model: a bulk Distribution plus a fault mass.
//
// A submitted job fails outright with probability fault_ratio; otherwise
// its latency is drawn from the bulk law, and draws beyond the horizon are
// indistinguishable from faults (the probe campaign cancels them), so
//   F̃(t) = (1 - fault_ratio) * F_bulk(min(t, horizon))
// and the total outlier mass is fault_ratio + (1-fault_ratio) * tail mass.

#include "model/latency_model.hpp"
#include "stats/distribution.hpp"

namespace gridsub::model {

class ParametricLatencyModel final : public LatencyModel {
 public:
  /// Takes ownership of `bulk`. Requires fault_ratio in [0, 1) and
  /// horizon > 0.
  ParametricLatencyModel(stats::DistributionPtr bulk, double fault_ratio,
                         double horizon = 10000.0);

  ParametricLatencyModel(const ParametricLatencyModel& other);
  ParametricLatencyModel& operator=(const ParametricLatencyModel& other);
  ParametricLatencyModel(ParametricLatencyModel&&) noexcept = default;
  ParametricLatencyModel& operator=(ParametricLatencyModel&&) noexcept =
      default;

  [[nodiscard]] double ftilde(double t) const override;
  [[nodiscard]] double density(double t) const override;
  [[nodiscard]] double outlier_ratio() const override;
  [[nodiscard]] double horizon() const override { return horizon_; }
  [[nodiscard]] double sample(stats::Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<LatencyModel> clone() const override;

  [[nodiscard]] const stats::Distribution& bulk() const { return *bulk_; }
  [[nodiscard]] double fault_ratio() const { return fault_ratio_; }

 private:
  stats::DistributionPtr bulk_;
  double fault_ratio_;
  double horizon_;
  double bulk_cdf_at_horizon_;
};

}  // namespace gridsub::model
