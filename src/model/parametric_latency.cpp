#include "model/parametric_latency.hpp"

#include <sstream>
#include <stdexcept>

namespace gridsub::model {

ParametricLatencyModel::ParametricLatencyModel(stats::DistributionPtr bulk,
                                               double fault_ratio,
                                               double horizon)
    : bulk_(std::move(bulk)), fault_ratio_(fault_ratio), horizon_(horizon) {
  if (!bulk_) throw std::invalid_argument("ParametricLatencyModel: null bulk");
  if (!(fault_ratio >= 0.0 && fault_ratio < 1.0)) {
    throw std::invalid_argument(
        "ParametricLatencyModel: fault_ratio outside [0,1)");
  }
  if (!(horizon > 0.0)) {
    throw std::invalid_argument("ParametricLatencyModel: horizon <= 0");
  }
  bulk_cdf_at_horizon_ = bulk_->cdf(horizon_);
}

ParametricLatencyModel::ParametricLatencyModel(
    const ParametricLatencyModel& other)
    : bulk_(other.bulk_->clone()),
      fault_ratio_(other.fault_ratio_),
      horizon_(other.horizon_),
      bulk_cdf_at_horizon_(other.bulk_cdf_at_horizon_) {}

ParametricLatencyModel& ParametricLatencyModel::operator=(
    const ParametricLatencyModel& other) {
  if (this == &other) return *this;
  bulk_ = other.bulk_->clone();
  fault_ratio_ = other.fault_ratio_;
  horizon_ = other.horizon_;
  bulk_cdf_at_horizon_ = other.bulk_cdf_at_horizon_;
  return *this;
}

double ParametricLatencyModel::ftilde(double t) const {
  if (t <= 0.0) return 0.0;
  if (t >= horizon_) return (1.0 - fault_ratio_) * bulk_cdf_at_horizon_;
  return (1.0 - fault_ratio_) * bulk_->cdf(t);
}

double ParametricLatencyModel::density(double t) const {
  if (t <= 0.0 || t >= horizon_) return 0.0;
  return (1.0 - fault_ratio_) * bulk_->pdf(t);
}

double ParametricLatencyModel::outlier_ratio() const {
  return 1.0 - (1.0 - fault_ratio_) * bulk_cdf_at_horizon_;
}

double ParametricLatencyModel::sample(stats::Rng& rng) const {
  if (fault_ratio_ > 0.0 && rng.bernoulli(fault_ratio_)) return kNeverStarts;
  const double latency = bulk_->sample(rng);
  // Beyond the horizon the job is canceled by the campaign / strategy and
  // never observed to start.
  return latency > horizon_ ? kNeverStarts : latency;
}

std::string ParametricLatencyModel::name() const {
  std::ostringstream os;
  os << "Parametric(" << bulk_->name() << ",faults=" << fault_ratio_ << ")";
  return os.str();
}

std::unique_ptr<LatencyModel> ParametricLatencyModel::clone() const {
  return std::make_unique<ParametricLatencyModel>(*this);
}

}  // namespace gridsub::model
