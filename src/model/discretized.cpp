#include "model/discretized.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "model/empirical_latency.hpp"
#include "numerics/interpolation.hpp"

namespace gridsub::model {

DiscretizedLatencyModel::DiscretizedLatencyModel(const LatencyModel& source,
                                                 double step)
    : step_(step), horizon_(source.horizon()) {
  if (!(step > 0.0) || !(step <= horizon_)) {
    throw std::invalid_argument(
        "DiscretizedLatencyModel: need 0 < step <= horizon");
  }
  const auto n =
      static_cast<std::size_t>(std::ceil(horizon_ / step_)) + 1;
  ftilde_.resize(n);
  double prev = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = std::min(t_at(i), horizon_);
    double v = source.ftilde(t);
    v = std::clamp(v, prev, 1.0);  // enforce monotonicity under roundoff
    ftilde_[i] = v;
    prev = v;
  }
  rho_ = 1.0 - ftilde_.back();
  source_name_ = source.name();
}

DiscretizedLatencyModel DiscretizedLatencyModel::from_trace(
    const traces::Trace& trace, double step) {
  const EmpiricalLatencyModel empirical(trace);
  return DiscretizedLatencyModel(empirical, step);
}

DiscretizedLatencyModel DiscretizedLatencyModel::from_grid(
    std::vector<double> ftilde, double step, std::string name) {
  if (ftilde.size() < 2) {
    throw std::invalid_argument("from_grid: need at least two nodes");
  }
  if (!(step > 0.0)) throw std::invalid_argument("from_grid: step <= 0");
  if (ftilde.front() != 0.0) {
    throw std::invalid_argument("from_grid: ftilde[0] must be 0");
  }
  double prev = 0.0;
  for (const double v : ftilde) {
    if (!(v >= prev) || !(v <= 1.0)) {
      throw std::invalid_argument(
          "from_grid: grid must be non-decreasing within [0, 1]");
    }
    prev = v;
  }
  DiscretizedLatencyModel m;
  m.step_ = step;
  m.horizon_ = step * static_cast<double>(ftilde.size() - 1);
  m.ftilde_ = std::move(ftilde);
  m.rho_ = 1.0 - m.ftilde_.back();
  m.source_name_ = std::move(name);
  return m;
}

double DiscretizedLatencyModel::ftilde(double t) const {
  if (t <= 0.0) return 0.0;
  const double s = t / step_;
  const auto last = static_cast<double>(ftilde_.size() - 1);
  if (s >= last) return ftilde_.back();
  const auto i = static_cast<std::size_t>(s);
  const double frac = s - static_cast<double>(i);
  return ftilde_[i] + frac * (ftilde_[i + 1] - ftilde_[i]);
}

double DiscretizedLatencyModel::density(double t) const {
  if (t <= 0.0 || t >= horizon_) return 0.0;
  const double lo = std::max(t - step_, 0.0);
  const double hi = std::min(t + step_, horizon_);
  return (ftilde(hi) - ftilde(lo)) / (hi - lo);
}

double DiscretizedLatencyModel::sample(stats::Rng& rng) const {
  const double u = rng.uniform01();
  if (u > ftilde_.back()) return kNeverStarts;
  return numerics::inverse_monotone(0.0, step_, ftilde_, u);
}

std::string DiscretizedLatencyModel::name() const {
  std::ostringstream os;
  os << "Discretized(" << source_name_ << ",step=" << step_ << ")";
  return os.str();
}

std::unique_ptr<LatencyModel> DiscretizedLatencyModel::clone() const {
  return std::unique_ptr<LatencyModel>(new DiscretizedLatencyModel(*this));
}

}  // namespace gridsub::model
