#include "model/empirical_latency.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace gridsub::model {

namespace {
std::vector<double> completed_sorted(const traces::Trace& trace) {
  auto v = trace.completed_latencies();
  if (v.empty()) {
    throw std::invalid_argument(
        "EmpiricalLatencyModel: trace has no completed probes");
  }
  std::sort(v.begin(), v.end());
  return v;
}
}  // namespace

EmpiricalLatencyModel::EmpiricalLatencyModel(const traces::Trace& trace,
                                             double kde_bandwidth)
    : sorted_latencies_(completed_sorted(trace)),
      total_(trace.size()),
      horizon_(trace.timeout()),
      kde_(sorted_latencies_, kde_bandwidth),
      source_name_(trace.name()) {
  rho_ = 1.0 - static_cast<double>(sorted_latencies_.size()) /
                   static_cast<double>(total_);
}

double EmpiricalLatencyModel::ftilde(double t) const {
  if (t <= 0.0) return 0.0;
  const double tt = std::min(t, horizon_);
  const auto it = std::upper_bound(sorted_latencies_.begin(),
                                   sorted_latencies_.end(), tt);
  return static_cast<double>(it - sorted_latencies_.begin()) /
         static_cast<double>(total_);
}

double EmpiricalLatencyModel::density(double t) const {
  if (t <= 0.0 || t >= horizon_) return 0.0;
  return (1.0 - rho_) * kde_.pdf(t);
}

double EmpiricalLatencyModel::sample(stats::Rng& rng) const {
  const auto idx = static_cast<std::size_t>(rng.uniform_int(total_));
  if (idx >= sorted_latencies_.size()) return kNeverStarts;
  return sorted_latencies_[idx];
}

std::string EmpiricalLatencyModel::name() const {
  std::ostringstream os;
  os << "Empirical(" << source_name_ << ",n=" << total_ << ",rho=" << rho_
     << ")";
  return os.str();
}

std::unique_ptr<LatencyModel> EmpiricalLatencyModel::clone() const {
  return std::make_unique<EmpiricalLatencyModel>(*this);
}

}  // namespace gridsub::model
