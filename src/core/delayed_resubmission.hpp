#pragma once

// Delayed-resubmission strategy (paper §6) — the paper's novel contribution.
//
// Job 1 is submitted at t = 0. If it has not started by t0, a copy is
// submitted *without* cancelling job 1; job 1 is canceled at t∞. The
// pattern iterates with period t0 until some copy starts. The constraint
// 0 < t0 < t∞ <= 2·t0 keeps at most two copies in flight.
//
// Implementation notes (see DESIGN.md §"A note on eq. 5"):
//
// * The primary evaluator uses the exact survival form. With
//   q = 1 - F̃(t∞), s(x) = 1 - F̃(x) and s_cap(x) = s(min(x, t∞)), the
//   survival of the total latency J on t ∈ [n·t0, (n+1)·t0), n >= 1 is
//     S(t) = q^(n-1) · s_cap(t - (n-1)·t0) · s(t - n·t0),
//   (and S(t) = s(t) on [0, t0)), giving closed geometric-series forms
//     E_J    = ∫₀^{t0} s + H / (1-q)
//     E[J²]  = 2 [ ∫₀^{t0} u·s(u) du + U/(1-q) + t0·H/(1-q)² ]
//   with Φ(u) = s_cap(u + t0)·s(u),  H = ∫₀^{t0} Φ,  U = ∫₀^{t0} u·Φ(u) du.
//   Only F̃ is needed — no density estimate.
//
// * The paper's eq. 5 (density form) is also implemented, as
//   expectation_paper_eq5(), and cross-checked against the survival form
//   and Monte Carlo in the test suite.
//
// * N∥: the paper's case-by-case §6.1 formulas collapse to
//     N∥(l) = ( Σ_{k=0}^{⌊l/t0⌋} min(l - k·t0, t∞) ) / l,
//   which reproduces every printed case and the t∞/t0 asymptote. The
//   paper evaluates N∥ at l = E_J (parallel_jobs()); the distribution-
//   averaged E[N∥(J)] is provided as expected_parallel_jobs().

#include <span>
#include <vector>

#include "core/strategy.hpp"
#include "model/discretized.hpp"

namespace gridsub::core {

class DelayedResubmission {
 public:
  /// Keeps a reference to `m` (must outlive this object).
  explicit DelayedResubmission(const model::DiscretizedLatencyModel& m);

  /// Feasibility: 0 < t0 < t∞ <= 2·t0 and t∞ <= horizon.
  [[nodiscard]] bool feasible(double t0, double t_inf) const;

  /// E_J(t0, t∞) via the survival form (+inf if infeasible or q == 1).
  [[nodiscard]] double expectation(double t0, double t_inf) const;

  /// E[J²](t0, t∞).
  [[nodiscard]] double second_moment(double t0, double t_inf) const;

  [[nodiscard]] double std_deviation(double t0, double t_inf) const;

  [[nodiscard]] StrategyMetrics evaluate(double t0, double t_inf) const;

  /// The paper's eq. 5 evaluated by numerical quadrature with the model's
  /// density estimate. Kept for fidelity & cross-validation.
  [[nodiscard]] double expectation_paper_eq5(double t0, double t_inf) const;

  /// Survival P(J > t) of the total latency.
  [[nodiscard]] double survival(double t, double t0, double t_inf) const;

  /// N∥ evaluated at latency l (paper §6.1); N∥(l<=0) := 1.
  [[nodiscard]] static double parallel_jobs_at(double l, double t0,
                                               double t_inf);

  /// Paper's measure: N∥ at l = E_J(t0, t∞).
  [[nodiscard]] double parallel_jobs(double t0, double t_inf) const;

  /// Distribution-averaged E[N∥(J)] (extension; integrates over S).
  [[nodiscard]] double expected_parallel_jobs(double t0, double t_inf) const;

  /// Expected total job-seconds consumed per task. From the survival form,
  ///   E[W] = E_J + (1/(1-q)) · ∫₀^{t∞-t0} s(u+t0)·s(u) du,
  /// i.e. the expected latency plus the expected duplicated occupancy.
  /// This is the quantity an administrator bills; N∥(E_J)·E_J (the paper's
  /// accounting) underestimates it by Jensen's inequality.
  [[nodiscard]] double expected_job_seconds(double t0, double t_inf) const;

  /// Fleet-level average parallelism E[W]/E[J] — the ratio-of-sums load
  /// measure matched by mc::McResult::aggregate_parallel.
  [[nodiscard]] double fleet_parallel_jobs(double t0, double t_inf) const;

  /// Expected number of copies submitted until one starts:
  /// E[⌊J/t0⌋ + 1] = Σ_{n>=0} P(J > n·t0).
  [[nodiscard]] double expected_submissions(double t0, double t_inf) const;

  /// Global minimization of E_J over the feasible triangle, parameterized
  /// as (t0, ratio = t∞/t0) with ratio in (1, 2]. `t0_max` < 0 selects
  /// horizon/2.
  [[nodiscard]] DelayedOptimum optimize(double t0_max = -1.0) const;

  /// Minimization with the ratio t∞/t0 imposed (paper §6.2 / Table 3).
  [[nodiscard]] DelayedOptimum optimize_with_ratio(double ratio,
                                                   double t0_max = -1.0) const;

  [[nodiscard]] const model::DiscretizedLatencyModel& latency_model() const {
    return model_;
  }

 private:
  /// Interpolated prefix integrals ∫₀^t s and ∫₀^t u·s(u) du.
  [[nodiscard]] double integral_s(double t) const;
  [[nodiscard]] double integral_us(double t) const;
  /// ∫₀^L s(u+t0)·s(u) du and ∫₀^L u·s(u+t0)·s(u) du (trapezoid).
  void product_integrals(double t0, double length, double& plain,
                         double& weighted) const;
  [[nodiscard]] DelayedOptimum pack_optimum(double t0, double t_inf) const;

  const model::DiscretizedLatencyModel& model_;
  /// The model's tabulated F̃ grid, captured once so product_integrals —
  /// the tuning-objective hot path — sweeps it by index without virtual
  /// ftilde() dispatch (bit-identical arithmetic; see the .cpp).
  std::span<const double> fgrid_;
  std::vector<double> prefix_s_;   ///< ∫ (1 - F̃)
  std::vector<double> prefix_us_;  ///< ∫ u (1 - F̃(u)) du
};

}  // namespace gridsub::core
