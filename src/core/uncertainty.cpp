#include "core/uncertainty.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "stats/gof.hpp"

namespace gridsub::core {

namespace {

model::DiscretizedLatencyModel shift_grid(
    const model::DiscretizedLatencyModel& m, double delta,
    const char* label) {
  const auto grid = m.ftilde_grid();
  std::vector<double> shifted(grid.size());
  // F̃(0) = 0 must be preserved: no probe finishes instantly, band or not.
  shifted[0] = 0.0;
  for (std::size_t i = 1; i < grid.size(); ++i) {
    shifted[i] = std::clamp(grid[i] + delta, 0.0, 1.0);
    shifted[i] = std::max(shifted[i], shifted[i - 1]);  // keep monotone
  }
  return model::DiscretizedLatencyModel::from_grid(
      std::move(shifted), m.step(), std::string(label) + ":" + m.name());
}

}  // namespace

UncertaintyAnalysis::UncertaintyAnalysis(
    const model::DiscretizedLatencyModel& m, std::size_t n_probes,
    double alpha)
    : base_(m),
      epsilon_(stats::dkw_epsilon(n_probes, alpha)),
      optimistic_(shift_grid(m, stats::dkw_epsilon(n_probes, alpha),
                             "dkw-upper")),
      pessimistic_(shift_grid(m, -stats::dkw_epsilon(n_probes, alpha),
                              "dkw-lower")) {}

ExpectationBand UncertaintyAnalysis::single(double t_inf) const {
  return multiple(1, t_inf);
}

ExpectationBand UncertaintyAnalysis::multiple(int b, double t_inf) const {
  ExpectationBand band;
  band.lower = MultipleSubmission(optimistic_, b).expectation(t_inf);
  band.estimate = MultipleSubmission(base_, b).expectation(t_inf);
  band.upper = MultipleSubmission(pessimistic_, b).expectation(t_inf);
  return band;
}

ExpectationBand UncertaintyAnalysis::delayed(double t0, double t_inf) const {
  ExpectationBand band;
  band.lower = DelayedResubmission(optimistic_).expectation(t0, t_inf);
  band.estimate = DelayedResubmission(base_).expectation(t0, t_inf);
  band.upper = DelayedResubmission(pessimistic_).expectation(t0, t_inf);
  return band;
}

}  // namespace gridsub::core
