#pragma once

// Clang thread-safety annotations + the annotated lock primitives the
// concurrent layers build on.
//
// The campaign runner's determinism contract (exp/campaign.hpp) and the
// crash-safety promise of the checkpoint writer both reduce to lock
// discipline: certain state may only be touched with a specific mutex
// held. TSan checks that discipline dynamically, on the schedules a test
// run happens to see; Clang's -Wthread-safety analysis checks it
// *statically*, on every build, including Release builds that never run
// a sanitizer. This header provides
//
//   * GRIDSUB_GUARDED_BY / GRIDSUB_REQUIRES / ... — the standard
//     capability-annotation macros, expanding to nothing on compilers
//     without the analysis (GCC, MSVC);
//   * core::Mutex / core::MutexLock / core::CondVar — thin wrappers over
//     std::mutex / std::lock_guard / std::condition_variable_any that
//     carry the capability attributes. The standard-library types are
//     not annotated under libstdc++, so locking through them is
//     invisible to the analysis; locking through these wrappers is not.
//
// See docs/correctness.md for the full contract and how to run the
// analysis locally (clang++ builds get -Wthread-safety automatically).

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define GRIDSUB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GRIDSUB_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Declares a type that acts as a lockable capability.
#define GRIDSUB_CAPABILITY(x) GRIDSUB_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability for its lifetime.
#define GRIDSUB_SCOPED_CAPABILITY GRIDSUB_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only with the given capability held.
#define GRIDSUB_GUARDED_BY(x) GRIDSUB_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define GRIDSUB_PT_GUARDED_BY(x) GRIDSUB_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that must be called with the capability already held.
#define GRIDSUB_REQUIRES(...) \
  GRIDSUB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that acquires the capability (and does not release it).
#define GRIDSUB_ACQUIRE(...) \
  GRIDSUB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases a held capability.
#define GRIDSUB_RELEASE(...) \
  GRIDSUB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability when it returns `value`.
#define GRIDSUB_TRY_ACQUIRE(value, ...) \
  GRIDSUB_THREAD_ANNOTATION(try_acquire_capability(value, __VA_ARGS__))

/// Function that must be called with the capability *not* held.
#define GRIDSUB_EXCLUDES(...) \
  GRIDSUB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the discipline cannot be expressed.
#define GRIDSUB_NO_THREAD_SAFETY_ANALYSIS \
  GRIDSUB_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace gridsub::core {

/// std::mutex with the capability attribute: locking through this type is
/// visible to -Wthread-safety, so GRIDSUB_GUARDED_BY members are
/// compiler-checked.
class GRIDSUB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GRIDSUB_ACQUIRE() { mu_.lock(); }
  void unlock() GRIDSUB_RELEASE() { mu_.unlock(); }
  bool try_lock() GRIDSUB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// std::lock_guard over core::Mutex, carrying the scoped-capability
/// attribute so the analysis sees the acquire/release pair.
class GRIDSUB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GRIDSUB_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() GRIDSUB_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable usable with core::Mutex (condition_variable_any
/// accepts any BasicLockable). wait() takes the mutex itself, not a lock
/// object, so callers keep a plain MutexLock in scope and the analysis
/// still sees the capability held across the wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until `pred()` holds; `mu` must be held by the caller (it is
  /// released while blocked and reacquired before `pred` runs and before
  /// returning, as with any condition variable).
  template <typename Predicate>
  void wait(Mutex& mu, Predicate&& pred) GRIDSUB_REQUIRES(mu) {
    cv_.wait(mu, std::forward<Predicate>(pred));
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace gridsub::core
