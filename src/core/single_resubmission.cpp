#include "core/single_resubmission.hpp"

namespace gridsub::core {

SingleResubmission::SingleResubmission(
    const model::DiscretizedLatencyModel& m)
    : impl_(m, 1) {}

double SingleResubmission::expectation(double t_inf) const {
  return impl_.expectation(t_inf);
}

double SingleResubmission::std_deviation(double t_inf) const {
  return impl_.std_deviation(t_inf);
}

StrategyMetrics SingleResubmission::evaluate(double t_inf) const {
  return impl_.evaluate(t_inf);
}

double SingleResubmission::expected_submissions(double t_inf) const {
  return impl_.expected_submissions(t_inf);
}

TimeoutOptimum SingleResubmission::optimize(double t_min,
                                            double t_max) const {
  return impl_.optimize(t_min, t_max);
}

}  // namespace gridsub::core
