#pragma once

// Finite-sample uncertainty of strategy predictions.
//
// Every E_J in the paper is computed from an ECDF estimated with a probe
// campaign of n jobs. By Dvoretzky-Kiefer-Wolfowitz, with probability
// >= 1-alpha the true F̃ lies in the uniform band [F̃_n - eps, F̃_n + eps],
// eps = sqrt(ln(2/alpha)/2n). Every strategy expectation in core/ is
// *pointwise monotone decreasing* in F̃ (stochastically faster jobs finish
// sooner), so evaluating the band's edge models brackets the truth:
//   E_J(F̃+eps) <= E_J(true) <= E_J(F̃-eps)   w.p. >= 1-alpha.
// This turns "how many probes is enough?" (§7.2) into hard intervals
// instead of folklore.

#include <cstddef>

#include "core/delayed_resubmission.hpp"
#include "core/multiple_submission.hpp"
#include "model/discretized.hpp"

namespace gridsub::core {

/// A two-sided bound on a strategy expectation.
struct ExpectationBand {
  double lower = 0.0;     ///< optimistic edge: E_J under F̃ + eps
  double estimate = 0.0;  ///< point estimate under F̃
  double upper = 0.0;     ///< pessimistic edge: E_J under F̃ - eps
};

class UncertaintyAnalysis {
 public:
  /// `m` is the fitted model; `n_probes` the campaign size behind it;
  /// `alpha` the band's two-sided failure probability.
  UncertaintyAnalysis(const model::DiscretizedLatencyModel& m,
                      std::size_t n_probes, double alpha = 0.05);

  /// The DKW half-width eps.
  [[nodiscard]] double epsilon() const { return epsilon_; }

  /// Edge models (exposed for custom evaluations).
  [[nodiscard]] const model::DiscretizedLatencyModel& optimistic() const {
    return optimistic_;
  }
  [[nodiscard]] const model::DiscretizedLatencyModel& pessimistic() const {
    return pessimistic_;
  }

  /// Bands on E_J for the three strategies at fixed parameters. The upper
  /// edge is +inf when the pessimistic model cannot complete by t∞
  /// (F̃(t∞) - eps <= 0): the campaign was too small to certify anything.
  [[nodiscard]] ExpectationBand single(double t_inf) const;
  [[nodiscard]] ExpectationBand multiple(int b, double t_inf) const;
  [[nodiscard]] ExpectationBand delayed(double t0, double t_inf) const;

 private:
  const model::DiscretizedLatencyModel& base_;
  double epsilon_;
  model::DiscretizedLatencyModel optimistic_;   // F̃ + eps (capped at 1)
  model::DiscretizedLatencyModel pessimistic_;  // F̃ - eps (floored at 0)
};

}  // namespace gridsub::core
