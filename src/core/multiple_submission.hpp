#pragma once

// Multiple-submission strategy (paper §5).
//
// b copies of the job are submitted at once; when one starts, the rest are
// canceled; if none starts before t∞ the whole collection is canceled and
// resubmitted. The latency CDF of the collection is 1 - (1 - F̃)^b, so the
// single-resubmission formulas apply with that substitution (paper eqs. 3
// and 4):
//
//   E_J(t∞)  = A(t∞) / p,                 A(t) = ∫₀^t (1-F̃(u))^b du
//   E[J²]    = 2 B(t∞)/p + 2 t∞ q A(t∞)/p²,  B(t) = ∫₀^t u (1-F̃(u))^b du
//   with q = (1-F̃(t∞))^b,  p = 1 - q.
//
// (The E[J²] form follows from E[J^k] = k ∫ t^{k-1} P(J>t) dt on the
// renewal structure; expanding sigma² = E[J²] - E_J² reproduces eq. 4
// exactly.) Prefix integrals of (1-F̃)^b are cached on the model grid so an
// evaluation is O(1) and a full timeout sweep is O(grid).

#include "core/strategy.hpp"
#include "model/discretized.hpp"

namespace gridsub::core {

class MultipleSubmission {
 public:
  /// Keeps a reference to `m` (must outlive this object). Requires b >= 1.
  MultipleSubmission(const model::DiscretizedLatencyModel& m, int b);

  /// E_J at collection timeout t∞ (+inf if P(success by t∞) == 0).
  [[nodiscard]] double expectation(double t_inf) const;

  /// E[J²] at t∞.
  [[nodiscard]] double second_moment(double t_inf) const;

  /// sigma_J at t∞ (paper eq. 4 via the moment form).
  [[nodiscard]] double std_deviation(double t_inf) const;

  [[nodiscard]] StrategyMetrics evaluate(double t_inf) const;

  /// Expected number of jobs submitted until success: b / p(t∞) — the
  /// infrastructure-load counterpart of E_J.
  [[nodiscard]] double expected_submissions(double t_inf) const;

  /// Minimizes E_J over t∞ in [t_min, t_max] (defaults: one grid step to
  /// the horizon). Grid scan + Brent refinement.
  [[nodiscard]] TimeoutOptimum optimize(double t_min = -1.0,
                                        double t_max = -1.0) const;

  [[nodiscard]] int b() const { return b_; }
  [[nodiscard]] const model::DiscretizedLatencyModel& latency_model() const {
    return model_;
  }

 private:
  /// Success probability by t∞: 1 - (1-F̃(t∞))^b.
  [[nodiscard]] double success_probability(double t_inf) const;
  /// Interpolated prefix integrals.
  [[nodiscard]] double integral_a(double t) const;
  [[nodiscard]] double integral_b(double t) const;

  const model::DiscretizedLatencyModel& model_;
  int b_;
  std::vector<double> surv_pow_;    ///< (1-F̃)^b at grid nodes
  std::vector<double> prefix_a_;    ///< ∫ (1-F̃)^b
  std::vector<double> prefix_b_;    ///< ∫ u (1-F̃)^b
};

}  // namespace gridsub::core
