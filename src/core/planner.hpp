#pragma once

// Client-side strategy planner (paper §7.2 "practical implementation" and
// the conclusion's goal of integrating strategies into the middleware
// client).
//
// Two roles:
//  1. recommend(): given a latency model, score the three strategies under
//     a chosen objective (minimum latency subject to a parallel-job budget,
//     or minimum Δcost) and return the best configuration.
//  2. Cross-period transfer (Table 6): Δcost optima are estimated on past
//     data; evaluate_delayed_params() scores parameters tuned on week w-1
//     against week w's model, quantifying the estimation penalty.

#include <string>
#include <vector>

#include "core/cost.hpp"
#include "core/strategy.hpp"
#include "model/discretized.hpp"

namespace gridsub::core {

struct PlannerOptions {
  enum class Objective {
    kMinLatency,  ///< minimize E_J subject to n_parallel <= budget
    kMinCost      ///< minimize Δcost (infrastructure-friendly)
  };
  Objective objective = Objective::kMinCost;
  double max_parallel_jobs = 5.0;  ///< budget for kMinLatency
  int max_b = 10;                  ///< largest multiple-submission size tried
};

struct Recommendation {
  CostEvaluation choice;
  std::vector<CostEvaluation> candidates;  ///< everything that was scored
  std::string rationale;
};

class StrategyPlanner {
 public:
  /// Keeps a reference to `m` (must outlive this object).
  explicit StrategyPlanner(const model::DiscretizedLatencyModel& m);

  [[nodiscard]] Recommendation recommend(
      const PlannerOptions& options = {}) const;

  /// Scores externally-estimated delayed parameters on this model.
  [[nodiscard]] CostEvaluation evaluate_delayed_params(double t0,
                                                       double t_inf) const;

  [[nodiscard]] const CostModel& cost_model() const { return cost_; }

 private:
  const model::DiscretizedLatencyModel& model_;
  CostModel cost_;
};

}  // namespace gridsub::core
