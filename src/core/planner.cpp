#include "core/planner.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace gridsub::core {

StrategyPlanner::StrategyPlanner(const model::DiscretizedLatencyModel& m)
    : model_(m), cost_(m) {}

Recommendation StrategyPlanner::recommend(
    const PlannerOptions& options) const {
  if (options.max_b < 1) {
    throw std::invalid_argument("StrategyPlanner: max_b < 1");
  }
  Recommendation rec;
  rec.candidates.push_back(cost_.evaluate_single());
  for (int b = 2; b <= options.max_b; ++b) {
    rec.candidates.push_back(cost_.evaluate_multiple(b));
  }
  // Delayed: both the latency-optimal and the cost-optimal configurations.
  const DelayedOptimum latency_opt = cost_.delayed().optimize();
  rec.candidates.push_back(
      cost_.evaluate_delayed(latency_opt.t0, latency_opt.t_inf));
  rec.candidates.push_back(cost_.optimize_delayed_cost());

  const bool min_latency =
      options.objective == PlannerOptions::Objective::kMinLatency;
  const CostEvaluation* best = nullptr;
  for (const auto& c : rec.candidates) {
    if (!std::isfinite(c.expectation)) continue;
    if (min_latency && c.n_parallel > options.max_parallel_jobs) continue;
    if (!best) {
      best = &c;
      continue;
    }
    const double lhs = min_latency ? c.expectation : c.delta_cost;
    const double rhs = min_latency ? best->expectation : best->delta_cost;
    if (lhs < rhs) best = &c;
  }
  if (!best) {
    throw std::runtime_error(
        "StrategyPlanner: no feasible candidate under the given options");
  }
  rec.choice = *best;
  std::ostringstream os;
  os << to_string(rec.choice.kind);
  if (rec.choice.kind == StrategyKind::kMultipleSubmission) {
    os << " with b=" << rec.choice.b;
  } else if (rec.choice.kind == StrategyKind::kDelayedResubmission) {
    os << " with t0=" << rec.choice.t0 << "s, t_inf=" << rec.choice.t_inf
       << "s";
  } else {
    os << " with t_inf=" << rec.choice.t_inf << "s";
  }
  os << ": E_J=" << rec.choice.expectation
     << "s, N_par=" << rec.choice.n_parallel
     << ", delta_cost=" << rec.choice.delta_cost
     << (min_latency ? " (min-latency objective)" : " (min-cost objective)");
  rec.rationale = os.str();
  return rec;
}

CostEvaluation StrategyPlanner::evaluate_delayed_params(
    double t0, double t_inf) const {
  return cost_.evaluate_delayed(t0, t_inf);
}

}  // namespace gridsub::core
