#pragma once

// Shared types of the submission-strategy models (paper §§4-7).

#include <string_view>

namespace gridsub::core {

/// User-side performance of a strategy at given parameters.
struct StrategyMetrics {
  double expectation = 0.0;    ///< E_J: expected total latency (s)
  double std_deviation = 0.0;  ///< sigma_J (s)
};

/// Optimum of a timeout-parameterized strategy (single/multiple).
struct TimeoutOptimum {
  double t_inf = 0.0;  ///< optimal timeout (s)
  StrategyMetrics metrics;
};

/// Optimum of the delayed-resubmission strategy.
struct DelayedOptimum {
  double t0 = 0.0;     ///< resubmission period (s)
  double t_inf = 0.0;  ///< cancellation timeout (s)
  StrategyMetrics metrics;
  double n_parallel = 1.0;  ///< N∥ evaluated at E_J (paper's §6.1 measure)
};

/// Strategy families studied by the paper.
enum class StrategyKind {
  kSingleResubmission,  ///< §4: timeout + resubmit
  kMultipleSubmission,  ///< §5: b parallel copies
  kDelayedResubmission  ///< §6: staggered copy without cancellation
};

[[nodiscard]] constexpr std::string_view to_string(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kSingleResubmission:
      return "single-resubmission";
    case StrategyKind::kMultipleSubmission:
      return "multiple-submission";
    case StrategyKind::kDelayedResubmission:
      return "delayed-resubmission";
  }
  return "unknown";
}

/// Inverse of to_string: true and sets `out` on a known name, false
/// otherwise (callers own the error policy — the advisor recovery loader
/// treats an unknown name as a corrupt dump).
[[nodiscard]] constexpr bool strategy_kind_from_string(std::string_view name,
                                                      StrategyKind& out) {
  for (const StrategyKind kind :
       {StrategyKind::kSingleResubmission, StrategyKind::kMultipleSubmission,
        StrategyKind::kDelayedResubmission}) {
    if (name == to_string(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

}  // namespace gridsub::core
