#include "core/total_latency.hpp"

#include <cmath>
#include <stdexcept>

namespace gridsub::core {

namespace {

/// Bisection for a continuous decreasing function: smallest t in [lo, hi]
/// with fn(t) <= target (fn(lo) >= target >= fn(hi) assumed).
template <typename Fn>
double bisect_survival(Fn&& fn, double lo, double hi, double target) {
  for (int iter = 0; iter < 200 && hi - lo > 1e-9 * (1.0 + hi); ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (fn(mid) > target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

TotalLatencyDistribution TotalLatencyDistribution::single(
    const model::DiscretizedLatencyModel& m, double t_inf) {
  return multiple(m, 1, t_inf);
}

TotalLatencyDistribution TotalLatencyDistribution::multiple(
    const model::DiscretizedLatencyModel& m, int b, double t_inf) {
  if (b < 1) {
    throw std::invalid_argument("TotalLatencyDistribution: b < 1");
  }
  if (!(t_inf > 0.0) || t_inf > m.horizon()) {
    throw std::invalid_argument(
        "TotalLatencyDistribution: t_inf out of (0, horizon]");
  }
  TotalLatencyDistribution d;
  d.model_ = &m;
  d.kind_ = b == 1 ? StrategyKind::kSingleResubmission
                   : StrategyKind::kMultipleSubmission;
  d.b_ = b;
  d.t_inf_ = t_inf;
  d.q_ = std::pow(m.survival_at(t_inf), b);
  if (!(d.q_ < 1.0)) {
    throw std::invalid_argument(
        "TotalLatencyDistribution: strategy can never succeed "
        "(F~(t_inf) == 0)");
  }
  const MultipleSubmission impl(m, b);
  const StrategyMetrics metrics = impl.evaluate(t_inf);
  d.expectation_ = metrics.expectation;
  d.std_deviation_ = metrics.std_deviation;
  d.job_seconds_ = static_cast<double>(b) * metrics.expectation;
  return d;
}

TotalLatencyDistribution TotalLatencyDistribution::delayed(
    const model::DiscretizedLatencyModel& m, double t0, double t_inf) {
  TotalLatencyDistribution d;
  d.model_ = &m;
  d.kind_ = StrategyKind::kDelayedResubmission;
  d.t0_ = t0;
  d.t_inf_ = t_inf;
  d.delayed_ = std::make_unique<DelayedResubmission>(m);
  if (!d.delayed_->feasible(t0, t_inf)) {
    throw std::invalid_argument(
        "TotalLatencyDistribution: infeasible (t0, t_inf), need "
        "0 < t0 < t_inf <= 2*t0 <= horizon");
  }
  d.q_ = m.survival_at(t_inf);
  if (!(d.q_ < 1.0)) {
    throw std::invalid_argument(
        "TotalLatencyDistribution: strategy can never succeed "
        "(F~(t_inf) == 0)");
  }
  const StrategyMetrics metrics = d.delayed_->evaluate(t0, t_inf);
  d.expectation_ = metrics.expectation;
  d.std_deviation_ = metrics.std_deviation;
  d.job_seconds_ = d.delayed_->expected_job_seconds(t0, t_inf);
  return d;
}

double TotalLatencyDistribution::round_survival(double x) const {
  const double s = model_->survival_at(x);
  return b_ == 1 ? s : std::pow(s, b_);
}

double TotalLatencyDistribution::survival(double t) const {
  if (t <= 0.0) return 1.0;
  if (kind_ == StrategyKind::kDelayedResubmission) {
    return delayed_->survival(t, t0_, t_inf_);
  }
  const double k = std::floor(t / t_inf_);
  const double x = t - k * t_inf_;
  return std::pow(q_, k) * round_survival(x);
}

double TotalLatencyDistribution::quantile(double p) const {
  if (!(p >= 0.0) || p >= 1.0) {
    throw std::invalid_argument(
        "TotalLatencyDistribution::quantile: p outside [0, 1)");
  }
  const double target = 1.0 - p;  // survival level to hit
  if (target >= 1.0) return 0.0;

  if (kind_ == StrategyKind::kDelayedResubmission) {
    // Bracket by doubling: survival decays at least geometrically with
    // rate q per t0 period.
    double hi = t_inf_;
    while (survival(hi) > target) hi *= 2.0;
    return bisect_survival([this](double t) { return survival(t); }, 0.0,
                           hi, target);
  }

  // Segment-local inversion: segment k covers survival in [q^{k+1}, q^k].
  double k = 0.0;
  if (q_ > 0.0) {
    k = std::max(0.0, std::floor(std::log(target) / std::log(q_)));
    // Guard against roundoff at the segment edge.
    while (k > 0.0 && std::pow(q_, k) < target) k -= 1.0;
    while (std::pow(q_, k + 1.0) >= target) k += 1.0;
  }
  const double qk = std::pow(q_, k);
  const double local = target / qk;  // round survival to reach, in (q, 1]
  const double x = bisect_survival(
      [this](double t) { return round_survival(t); }, 0.0, t_inf_, local);
  return k * t_inf_ + x;
}

}  // namespace gridsub::core
