#include "core/cost.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace gridsub::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

CostModel::CostModel(const model::DiscretizedLatencyModel& m)
    : model_(m), delayed_(m), baseline_(SingleResubmission(m).optimize()) {
  if (!std::isfinite(baseline_.metrics.expectation) ||
      !(baseline_.metrics.expectation > 0.0)) {
    throw std::runtime_error(
        "CostModel: single-resubmission baseline has no finite optimum");
  }
}

double CostModel::delta_cost(double n_parallel, double expectation) const {
  return n_parallel * expectation / baseline_.metrics.expectation;
}

CostEvaluation CostModel::evaluate_delayed(double t0, double t_inf) const {
  CostEvaluation e;
  e.kind = StrategyKind::kDelayedResubmission;
  e.t0 = t0;
  e.t_inf = t_inf;
  e.expectation = delayed_.expectation(t0, t_inf);
  if (!std::isfinite(e.expectation)) {
    e.n_parallel = e.delta_cost = kInf;
    e.n_parallel_fleet = e.delta_cost_fleet = kInf;
    return e;
  }
  e.n_parallel =
      DelayedResubmission::parallel_jobs_at(e.expectation, t0, t_inf);
  e.delta_cost = delta_cost(e.n_parallel, e.expectation);
  e.n_parallel_fleet = delayed_.fleet_parallel_jobs(t0, t_inf);
  e.delta_cost_fleet = delta_cost(e.n_parallel_fleet, e.expectation);
  return e;
}

CostEvaluation CostModel::evaluate_multiple(int b) const {
  const MultipleSubmission multiple(model_, b);
  const TimeoutOptimum opt = multiple.optimize();
  CostEvaluation e;
  e.kind = StrategyKind::kMultipleSubmission;
  e.b = b;
  e.t_inf = opt.t_inf;
  e.expectation = opt.metrics.expectation;
  // All b copies run from submission until the first start, so the billed
  // job-seconds are exactly b·J: the fleet accounting coincides with the
  // paper's N∥ = b.
  e.n_parallel = static_cast<double>(b);
  e.delta_cost = delta_cost(e.n_parallel, e.expectation);
  e.n_parallel_fleet = e.n_parallel;
  e.delta_cost_fleet = e.delta_cost;
  return e;
}

CostEvaluation CostModel::evaluate_single() const {
  CostEvaluation e;
  e.kind = StrategyKind::kSingleResubmission;
  e.t_inf = baseline_.t_inf;
  e.expectation = baseline_.metrics.expectation;
  e.n_parallel = 1.0;
  e.delta_cost = 1.0;
  return e;
}

CostEvaluation CostModel::optimize_delayed_cost(
    double t0_lo, double t0_hi, CostDefinition definition) const {
  const double lo =
      (t0_lo > 0.0) ? t0_lo : std::max(16.0, 4.0 * model_.step());
  const double hi =
      (t0_hi > 0.0) ? t0_hi
                    : std::min(0.5 * model_.horizon(),
                               4.0 * baseline_.metrics.expectation);
  if (!(hi > lo)) {
    throw std::invalid_argument("optimize_delayed_cost: bad bounds");
  }
  const auto score = [this, definition](double t0, double t_inf) {
    if (!delayed_.feasible(t0, t_inf)) return kInf;
    const double ej = delayed_.expectation(t0, t_inf);
    if (!std::isfinite(ej)) return kInf;
    const double n_par =
        definition == CostDefinition::kFleet
            ? delayed_.fleet_parallel_jobs(t0, t_inf)
            : DelayedResubmission::parallel_jobs_at(ej, t0, t_inf);
    return delta_cost(n_par, ej);
  };
  // Coarse integer scan (8 s lattice).
  constexpr double kCoarse = 8.0;
  double best_t0 = 0.0, best_tinf = 0.0, best = kInf;
  for (double t0 = std::ceil(lo); t0 <= hi; t0 += kCoarse) {
    const double tinf_hi = std::min(2.0 * t0, model_.horizon());
    for (double t_inf = t0 + 1.0; t_inf <= tinf_hi; t_inf += kCoarse) {
      const double v = score(t0, t_inf);
      if (v < best) {
        best = v;
        best_t0 = t0;
        best_tinf = t_inf;
      }
    }
  }
  if (!std::isfinite(best)) {
    throw std::runtime_error("optimize_delayed_cost: no feasible point");
  }
  // Exhaustive integer refinement around the coarse optimum.
  const double r = kCoarse + 2.0;
  for (double t0 = std::max(std::ceil(lo), best_t0 - r);
       t0 <= std::min(hi, best_t0 + r); t0 += 1.0) {
    for (double t_inf = std::max(t0 + 1.0, best_tinf - r);
         t_inf <= std::min({2.0 * t0, model_.horizon(), best_tinf + r});
         t_inf += 1.0) {
      const double v = score(t0, t_inf);
      if (v < best) {
        best = v;
        best_t0 = t0;
        best_tinf = t_inf;
      }
    }
  }
  return evaluate_delayed(best_t0, best_tinf);
}

StabilityReport CostModel::stability(double t0, double t_inf,
                                     int radius) const {
  if (radius < 0) throw std::invalid_argument("stability: radius < 0");
  StabilityReport rep;
  const CostEvaluation base = evaluate_delayed(t0, t_inf);
  rep.base_delta_cost = base.delta_cost;
  rep.max_delta_cost = base.delta_cost;
  for (int d0 = -radius; d0 <= radius; ++d0) {
    for (int di = -radius; di <= radius; ++di) {
      const double p0 = t0 + d0;
      const double pi = t_inf + di;
      if (!delayed_.feasible(p0, pi)) continue;
      const CostEvaluation e = evaluate_delayed(p0, pi);
      if (std::isfinite(e.delta_cost)) {
        rep.max_delta_cost = std::max(rep.max_delta_cost, e.delta_cost);
      }
    }
  }
  rep.max_rel_diff =
      (rep.max_delta_cost - rep.base_delta_cost) / rep.base_delta_cost;
  return rep;
}

}  // namespace gridsub::core
