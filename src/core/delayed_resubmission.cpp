#include "core/delayed_resubmission.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "numerics/integration.hpp"
#include "numerics/kahan.hpp"
#include "numerics/optimize1d.hpp"
#include "numerics/optimize2d.hpp"

namespace gridsub::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
// Tolerance on the t∞ <= 2·t0 boundary (the formulas remain valid at
// equality; allow roundoff past it).
constexpr double kBoundaryEps = 1e-9;

double interp_prefix(const std::vector<double>& prefix, double step,
                     double t) {
  const double s = t / step;
  const auto last = static_cast<double>(prefix.size() - 1);
  if (s <= 0.0) return 0.0;
  if (s >= last) return prefix.back();
  const auto i = static_cast<std::size_t>(s);
  const double frac = s - static_cast<double>(i);
  return prefix[i] + frac * (prefix[i + 1] - prefix[i]);
}
}  // namespace

DelayedResubmission::DelayedResubmission(
    const model::DiscretizedLatencyModel& m)
    : model_(m), fgrid_(m.ftilde_grid()) {
  const double step = model_.step();
  std::vector<double> s(fgrid_.size());
  std::vector<double> us(fgrid_.size());
  for (std::size_t i = 0; i < fgrid_.size(); ++i) {
    s[i] = 1.0 - fgrid_[i];
    us[i] = model_.t_at(i) * s[i];
  }
  numerics::cumulative_trapezoid(s, step, prefix_s_);
  numerics::cumulative_trapezoid(us, step, prefix_us_);
}

bool DelayedResubmission::feasible(double t0, double t_inf) const {
  return t0 > 0.0 && t_inf > t0 &&
         t_inf <= 2.0 * t0 * (1.0 + kBoundaryEps) &&
         t_inf <= model_.horizon();
}

double DelayedResubmission::integral_s(double t) const {
  return interp_prefix(prefix_s_, model_.step(), t);
}

double DelayedResubmission::integral_us(double t) const {
  return interp_prefix(prefix_us_, model_.step(), t);
}

void DelayedResubmission::product_integrals(double t0, double length,
                                            double& plain,
                                            double& weighted) const {
  plain = 0.0;
  weighted = 0.0;
  if (!(length > 0.0)) return;
  const double step = model_.step();
  const auto n = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::ceil(length / step)));
  const double h = length / static_cast<double>(n);
  // Hot path of every (t0, t_inf) tuning objective: a Nelder-Mead fit
  // calls this hundreds of times, each a sweep of ~length/step samples.
  // Evaluate survival by an indexed lerp over the tabulated F̃ grid
  // captured at construction instead of two virtual survival_at() calls
  // per sample. The arithmetic (t/step, same lerp form, then 1 - F̃) is
  // kept identical to DiscretizedLatencyModel::ftilde, so results are
  // bit-for-bit what the virtual path produced; u increases monotonically,
  // making the grid accesses a cache-friendly forward scan.
  const double* fg = fgrid_.data();
  const auto last_index = fgrid_.size() - 1;
  const double last = static_cast<double>(last_index);
  const auto surv = [&](double t) {
    if (t <= 0.0) return 1.0;
    const double s = t / step;
    if (s >= last) return 1.0 - fg[last_index];
    const auto i = static_cast<std::size_t>(s);
    const double frac = s - static_cast<double>(i);
    return 1.0 - (fg[i] + frac * (fg[i + 1] - fg[i]));
  };
  numerics::KahanAccumulator acc_plain, acc_weighted;
  double prev_g = surv(t0) * surv(0.0);
  double prev_u = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    const double u = static_cast<double>(i) * h;
    const double g = surv(u + t0) * surv(u);
    acc_plain.add(0.5 * h * (prev_g + g));
    acc_weighted.add(0.5 * h * (prev_u * prev_g + u * g));
    prev_g = g;
    prev_u = u;
  }
  plain = acc_plain.value();
  weighted = acc_weighted.value();
}

double DelayedResubmission::expectation(double t0, double t_inf) const {
  if (!feasible(t0, t_inf)) return kInf;
  const double q = model_.survival_at(t_inf);
  const double p = 1.0 - q;
  if (!(p > 0.0)) return kInf;
  const double length = t_inf - t0;
  double p0, p1;
  product_integrals(t0, length, p0, p1);
  const double h_total =
      p0 + q * (integral_s(t0) - integral_s(length));
  return integral_s(t0) + h_total / p;
}

double DelayedResubmission::second_moment(double t0, double t_inf) const {
  if (!feasible(t0, t_inf)) return kInf;
  const double q = model_.survival_at(t_inf);
  const double p = 1.0 - q;
  if (!(p > 0.0)) return kInf;
  const double length = t_inf - t0;
  double p0, p1;
  product_integrals(t0, length, p0, p1);
  const double h_total = p0 + q * (integral_s(t0) - integral_s(length));
  const double u_total = p1 + q * (integral_us(t0) - integral_us(length));
  return 2.0 * (integral_us(t0) + u_total / p + t0 * h_total / (p * p));
}

double DelayedResubmission::std_deviation(double t0, double t_inf) const {
  const double ej = expectation(t0, t_inf);
  if (!std::isfinite(ej)) return kInf;
  const double var = second_moment(t0, t_inf) - ej * ej;
  return std::sqrt(std::max(var, 0.0));
}

StrategyMetrics DelayedResubmission::evaluate(double t0,
                                              double t_inf) const {
  StrategyMetrics m;
  m.expectation = expectation(t0, t_inf);
  m.std_deviation = std_deviation(t0, t_inf);
  return m;
}

double DelayedResubmission::expectation_paper_eq5(double t0,
                                                  double t_inf) const {
  if (!feasible(t0, t_inf)) return kInf;
  const double f_inf = model_.ftilde(t_inf);
  if (!(f_inf > 0.0)) return kInf;
  const double length = t_inf - t0;
  const double step = model_.step();
  const auto quad = [&](double lo, double hi, auto&& fn) {
    if (!(hi > lo)) return 0.0;
    const auto n = std::max<std::size_t>(
        4, static_cast<std::size_t>(std::ceil((hi - lo) / step)) * 2);
    const double h = (hi - lo) / static_cast<double>(n);
    numerics::KahanAccumulator acc(0.5 * (fn(lo) + fn(hi)));
    for (std::size_t i = 1; i < n; ++i) {
      acc.add(fn(lo + static_cast<double>(i) * h));
    }
    return acc.value() * h;
  };
  const auto f = [&](double t) { return model_.density(t); };
  const double a_int = quad(0.0, t_inf, [&](double u) { return u * f(u); });
  const double b_int = quad(0.0, length, [&](double u) { return u * f(u); });
  const double c_int =
      quad(0.0, length, [&](double u) { return f(u + t0) * f(u); });
  const double d_int =
      quad(0.0, length, [&](double u) { return u * f(u + t0) * f(u); });
  const double f0 = model_.ftilde(t0);
  const double fl = model_.ftilde(length);
  return a_int / f_inf + f0 * b_int / f_inf + t0 / f_inf +
         t0 * fl / f_inf + t0 * f0 * fl / (f_inf * f_inf) - t0 + b_int -
         t0 * c_int / (f_inf * f_inf) - d_int / f_inf;
}

double DelayedResubmission::survival(double t, double t0,
                                     double t_inf) const {
  if (t <= 0.0) return 1.0;
  const auto n = static_cast<std::size_t>(t / t0);
  if (n == 0) return model_.survival_at(t);
  const double q = model_.survival_at(t_inf);
  const double a = t - static_cast<double>(n - 1) * t0;  // in [t0, 2 t0)
  const double f1 = model_.survival_at(std::min(a, t_inf));
  const double f2 = model_.survival_at(t - static_cast<double>(n) * t0);
  if (n == 1) return f1 * f2;
  return std::pow(q, static_cast<double>(n - 1)) * f1 * f2;
}

double DelayedResubmission::parallel_jobs_at(double l, double t0,
                                             double t_inf) {
  if (!(t0 > 0.0)) throw std::invalid_argument("parallel_jobs_at: t0 <= 0");
  if (!(l > 0.0)) return 1.0;
  const auto n = static_cast<std::size_t>(l / t0);
  numerics::KahanAccumulator occupancy;
  for (std::size_t k = 0; k <= n; ++k) {
    occupancy.add(std::min(l - static_cast<double>(k) * t0, t_inf));
  }
  return occupancy.value() / l;
}

double DelayedResubmission::parallel_jobs(double t0, double t_inf) const {
  const double ej = expectation(t0, t_inf);
  if (!std::isfinite(ej)) return kInf;
  return parallel_jobs_at(ej, t0, t_inf);
}

double DelayedResubmission::expected_parallel_jobs(double t0,
                                                   double t_inf) const {
  if (!feasible(t0, t_inf)) return kInf;
  const double q = model_.survival_at(t_inf);
  if (!(q < 1.0)) return kInf;
  // E[N∥(J)] = ∫ N∥(l) dF_J(l); integrate on the model grid until the
  // survival mass is exhausted.
  const double step = model_.step();
  numerics::KahanAccumulator acc;
  double s_prev = 1.0;
  double l = 0.0;
  constexpr double kTailCut = 1e-12;
  const double l_max = 1000.0 * t0;  // hard cap; geometric decay ends first
  while (s_prev > kTailCut && l < l_max) {
    const double l_next = l + step;
    const double s_next = survival(l_next, t0, t_inf);
    const double mass = s_prev - s_next;
    if (mass > 0.0) {
      acc.add(mass * parallel_jobs_at(0.5 * (l + l_next), t0, t_inf));
    }
    s_prev = s_next;
    l = l_next;
  }
  // Remaining tail mass behaves like the asymptote N∥ -> t∞/t0.
  acc.add(s_prev * (t_inf / t0));
  return acc.value();
}

double DelayedResubmission::expected_job_seconds(double t0,
                                                 double t_inf) const {
  const double ej = expectation(t0, t_inf);
  if (!std::isfinite(ej)) return kInf;
  const double q = model_.survival_at(t_inf);
  double overlap, unused;
  product_integrals(t0, t_inf - t0, overlap, unused);
  return ej + overlap / (1.0 - q);
}

double DelayedResubmission::fleet_parallel_jobs(double t0,
                                                double t_inf) const {
  const double ej = expectation(t0, t_inf);
  if (!std::isfinite(ej) || !(ej > 0.0)) return kInf;
  return expected_job_seconds(t0, t_inf) / ej;
}

double DelayedResubmission::expected_submissions(double t0,
                                                 double t_inf) const {
  if (!feasible(t0, t_inf)) return kInf;
  const double q = model_.survival_at(t_inf);
  if (!(q < 1.0)) return kInf;
  numerics::KahanAccumulator acc(1.0);
  double n = 1.0;
  for (;;) {
    const double s = survival(n * t0, t0, t_inf);
    if (s < 1e-14 || n > 1e7) break;
    acc.add(s);
    n += 1.0;
  }
  return acc.value();
}

DelayedOptimum DelayedResubmission::pack_optimum(double t0,
                                                 double t_inf) const {
  DelayedOptimum opt;
  opt.t0 = t0;
  opt.t_inf = t_inf;
  opt.metrics = evaluate(t0, t_inf);
  opt.n_parallel = parallel_jobs(t0, t_inf);
  return opt;
}

DelayedOptimum DelayedResubmission::optimize(double t0_max) const {
  const double step = model_.step();
  const double lo = 4.0 * step;
  const double hi =
      (t0_max > 0.0) ? t0_max : 0.5 * model_.horizon();
  if (!(hi > lo)) {
    throw std::invalid_argument("DelayedResubmission::optimize: bad bounds");
  }
  // Parameterize by (t0, ratio) so the feasible region is a rectangle.
  const auto objective = [this](double t0, double ratio) {
    return expectation(t0, ratio * t0);
  };
  const auto res = numerics::grid_then_nelder_mead(
      objective, lo, hi, 1.02, 2.0, 96, 40, 1e-10);
  const double t0 = res.x;
  const double t_inf = std::min(res.y * res.x, model_.horizon());
  return pack_optimum(t0, t_inf);
}

DelayedOptimum DelayedResubmission::optimize_with_ratio(
    double ratio, double t0_max) const {
  if (!(ratio > 1.0) || !(ratio <= 2.0 + kBoundaryEps)) {
    throw std::invalid_argument(
        "optimize_with_ratio: ratio must be in (1, 2]");
  }
  const double step = model_.step();
  const double lo = 4.0 * step;
  const double hi = std::min((t0_max > 0.0) ? t0_max : 0.5 * model_.horizon(),
                             model_.horizon() / ratio);
  if (!(hi > lo)) {
    throw std::invalid_argument("optimize_with_ratio: bad bounds");
  }
  const auto res = numerics::scan_then_refine(
      [this, ratio](double t0) { return expectation(t0, ratio * t0); }, lo,
      hi, 384, 1e-6);
  return pack_optimum(res.x, ratio * res.x);
}

}  // namespace gridsub::core
