#pragma once

// Distribution of the *total* latency J under each submission strategy.
//
// The paper derives E_J and sigma_J; applications (paper §8's future work:
// makespan of real grid applications) need the full law of J. The renewal
// structure of the strategies gives closed survival forms:
//
// * single / multiple submission, timeout t∞, b copies: with
//   s_b(x) = (1 - F̃(x))^b and round-failure probability q = s_b(t∞),
//     S_J(t) = q^k · s_b(t - k·t∞),   k = ⌊t / t∞⌋.
// * delayed resubmission (period t0, cancel at t∞): the survival form of
//   core/delayed_resubmission.hpp.
//
// The class exposes survival/cdf, quantiles (exact segment-local
// inversion), expectation, billed job-seconds, and inverse-transform
// sampling — enough for the workflow/ makespan layer to compute order
// statistics of J across many tasks.

#include <memory>

#include "core/delayed_resubmission.hpp"
#include "core/multiple_submission.hpp"
#include "core/strategy.hpp"
#include "model/discretized.hpp"
#include "stats/rng.hpp"

namespace gridsub::core {

class TotalLatencyDistribution {
 public:
  /// Single resubmission (§4) with timeout t∞. `m` must outlive this
  /// object. Throws std::invalid_argument if no round can succeed
  /// (F̃(t∞) == 0) or t∞ is out of (0, horizon].
  static TotalLatencyDistribution single(
      const model::DiscretizedLatencyModel& m, double t_inf);

  /// Multiple submission (§5): b parallel copies, collection timeout t∞.
  static TotalLatencyDistribution multiple(
      const model::DiscretizedLatencyModel& m, int b, double t_inf);

  /// Delayed resubmission (§6): period t0, cancellation timeout t∞ with
  /// 0 < t0 < t∞ <= 2·t0.
  static TotalLatencyDistribution delayed(
      const model::DiscretizedLatencyModel& m, double t0, double t_inf);

  TotalLatencyDistribution(TotalLatencyDistribution&&) noexcept = default;
  TotalLatencyDistribution& operator=(TotalLatencyDistribution&&) noexcept =
      default;

  [[nodiscard]] StrategyKind kind() const { return kind_; }
  [[nodiscard]] int b() const { return b_; }
  [[nodiscard]] double t0() const { return t0_; }
  [[nodiscard]] double t_inf() const { return t_inf_; }

  /// P(J > t). Continuous, strictly positive, decays geometrically.
  [[nodiscard]] double survival(double t) const;

  /// P(J <= t) = 1 - survival(t).
  [[nodiscard]] double cdf(double t) const { return 1.0 - survival(t); }

  /// E[J] (closed form, not quadrature over survival).
  [[nodiscard]] double expectation() const { return expectation_; }

  /// sigma_J.
  [[nodiscard]] double std_deviation() const { return std_deviation_; }

  /// Expected billed job-seconds per task: E_J for single, b·E_J for
  /// multiple, the overlap-corrected form for delayed.
  [[nodiscard]] double expected_job_seconds() const { return job_seconds_; }

  /// Smallest t with P(J <= t) >= p, for p in [0, 1). Exact segment-local
  /// inversion for single/multiple; bracketed bisection for delayed.
  [[nodiscard]] double quantile(double p) const;

  /// Inverse-transform sample of J.
  [[nodiscard]] double sample(stats::Rng& rng) const {
    return quantile(rng.uniform01());
  }

  [[nodiscard]] const model::DiscretizedLatencyModel& latency_model() const {
    return *model_;
  }

 private:
  TotalLatencyDistribution() = default;

  /// Survival within one round: (1 - F̃(x))^b for x in [0, t∞].
  [[nodiscard]] double round_survival(double x) const;

  const model::DiscretizedLatencyModel* model_ = nullptr;
  StrategyKind kind_ = StrategyKind::kSingleResubmission;
  int b_ = 1;
  double t0_ = 0.0;
  double t_inf_ = 0.0;
  double q_ = 0.0;  ///< round-failure probability
  double expectation_ = 0.0;
  double std_deviation_ = 0.0;
  double job_seconds_ = 0.0;
  /// Only set for the delayed strategy (survival needs its machinery).
  std::unique_ptr<DelayedResubmission> delayed_;
};

}  // namespace gridsub::core
