#pragma once

// Strategy cost criterion (paper §7, eq. 6).
//
// A strategy that keeps N∥ copies in flight but finishes faster than the
// single-resubmission baseline can *reduce* total infrastructure load
// (fig. 7): the figure of merit is
//   Δcost = N∥ · E_J(strategy) / E_J(single resubmission at its optimum),
// with Δcost = 1 for the baseline itself and Δcost < 1 meaning the grid
// does strictly less work than under plain resubmission. The paper
// restricts (t0, t∞) to integer seconds when optimizing Δcost ("higher
// precision of resubmission is not realistic in practice") and probes the
// optimum's stability under ±5 s perturbations (Table 5); both behaviours
// are reproduced here.

#include "core/delayed_resubmission.hpp"
#include "core/multiple_submission.hpp"
#include "core/single_resubmission.hpp"
#include "core/strategy.hpp"
#include "model/discretized.hpp"

namespace gridsub::core {

/// How the "number of parallel jobs" entering eq. 6 is accounted.
enum class CostDefinition {
  /// The paper's accounting: N∥ evaluated at the point l = E_J (§6.2).
  /// Underestimates the billed load (Jensen: N∥(l)·l is convex in l).
  kPaperPoint,
  /// Exact expected job-seconds per task divided by E_J — what a grid
  /// administrator actually measures (mc::McResult::aggregate_parallel).
  kFleet,
};

/// One strategy configuration scored under the cost criterion.
struct CostEvaluation {
  StrategyKind kind = StrategyKind::kDelayedResubmission;
  double t0 = 0.0;      ///< delayed only (0 otherwise)
  double t_inf = 0.0;   ///< timeout
  int b = 1;            ///< multiple only (1 otherwise)
  double expectation = 0.0;
  double n_parallel = 1.0;        ///< paper accounting (N∥ at l = E_J)
  double delta_cost = 1.0;        ///< eq. 6 with n_parallel
  double n_parallel_fleet = 1.0;  ///< E[job-seconds] / E_J
  double delta_cost_fleet = 1.0;  ///< eq. 6 with n_parallel_fleet
};

/// Stability of a Δcost optimum under integer perturbations (Table 5).
struct StabilityReport {
  double base_delta_cost = 0.0;
  double max_delta_cost = 0.0;
  double max_rel_diff = 0.0;  ///< (max - base) / base
};

class CostModel {
 public:
  /// Keeps a reference to `m`; computes the single-resubmission baseline
  /// optimum on construction.
  explicit CostModel(const model::DiscretizedLatencyModel& m);

  /// The Δcost denominator: E_J of single resubmission at its optimum.
  [[nodiscard]] const TimeoutOptimum& baseline() const { return baseline_; }

  /// Eq. 6 for arbitrary (N∥, E_J).
  [[nodiscard]] double delta_cost(double n_parallel,
                                  double expectation) const;

  /// Scores the delayed strategy at (t0, t∞) (N∥ at l = E_J, paper §6.1).
  [[nodiscard]] CostEvaluation evaluate_delayed(double t0,
                                                double t_inf) const;

  /// Scores the multiple-submission strategy with b copies at its own
  /// latency-optimal timeout (N∥ = b, as in the paper's Table 4).
  [[nodiscard]] CostEvaluation evaluate_multiple(int b) const;

  /// Scores the single-resubmission baseline (Δcost = 1 by construction).
  [[nodiscard]] CostEvaluation evaluate_single() const;

  /// Minimizes Δcost of the delayed strategy over *integer* (t0, t∞):
  /// coarse grid scan then exhaustive integer refinement. Bounds default
  /// to t0 in [16 s, min(horizon/2, 4 × baseline E_J)]. `definition`
  /// selects which Δcost accounting is minimized.
  [[nodiscard]] CostEvaluation optimize_delayed_cost(
      double t0_lo = -1.0, double t0_hi = -1.0,
      CostDefinition definition = CostDefinition::kPaperPoint) const;

  /// Max Δcost over integer perturbations of (t0, t∞) within `radius`
  /// seconds, keeping only feasible configurations (paper Table 5, right).
  [[nodiscard]] StabilityReport stability(double t0, double t_inf,
                                          int radius = 5) const;

  [[nodiscard]] const DelayedResubmission& delayed() const {
    return delayed_;
  }
  [[nodiscard]] const model::DiscretizedLatencyModel& latency_model() const {
    return model_;
  }

 private:
  const model::DiscretizedLatencyModel& model_;
  DelayedResubmission delayed_;
  TimeoutOptimum baseline_;
};

}  // namespace gridsub::core
