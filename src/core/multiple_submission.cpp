#include "core/multiple_submission.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "numerics/integration.hpp"
#include "numerics/interpolation.hpp"
#include "numerics/optimize1d.hpp"

namespace gridsub::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

double interp_prefix(const std::vector<double>& prefix, double step,
                     double t) {
  // prefix[i] is the integral up to i*step; linear interpolation matches
  // the trapezoid construction only approximately between nodes, which is
  // fine at the step sizes used (the integrand is bounded by 1).
  const double s = t / step;
  const auto last = static_cast<double>(prefix.size() - 1);
  if (s <= 0.0) return 0.0;
  if (s >= last) return prefix.back();
  const auto i = static_cast<std::size_t>(s);
  const double frac = s - static_cast<double>(i);
  return prefix[i] + frac * (prefix[i + 1] - prefix[i]);
}
}  // namespace

MultipleSubmission::MultipleSubmission(
    const model::DiscretizedLatencyModel& m, int b)
    : model_(m), b_(b) {
  if (b < 1) throw std::invalid_argument("MultipleSubmission: b < 1");
  const auto grid = model_.ftilde_grid();
  const double step = model_.step();
  surv_pow_.resize(grid.size());
  std::vector<double> u_surv_pow(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const double s = 1.0 - grid[i];
    const double sp = (b_ == 1) ? s : std::pow(s, static_cast<double>(b_));
    surv_pow_[i] = sp;
    u_surv_pow[i] = model_.t_at(i) * sp;
  }
  numerics::cumulative_trapezoid(surv_pow_, step, prefix_a_);
  numerics::cumulative_trapezoid(u_surv_pow, step, prefix_b_);
}

double MultipleSubmission::success_probability(double t_inf) const {
  const double s = 1.0 - model_.ftilde(t_inf);
  const double q = (b_ == 1) ? s : std::pow(s, static_cast<double>(b_));
  return 1.0 - q;
}

double MultipleSubmission::integral_a(double t) const {
  return interp_prefix(prefix_a_, model_.step(), t);
}

double MultipleSubmission::integral_b(double t) const {
  return interp_prefix(prefix_b_, model_.step(), t);
}

double MultipleSubmission::expectation(double t_inf) const {
  if (!(t_inf > 0.0)) return kInf;
  const double p = success_probability(t_inf);
  if (!(p > 0.0)) return kInf;
  return integral_a(t_inf) / p;
}

double MultipleSubmission::second_moment(double t_inf) const {
  if (!(t_inf > 0.0)) return kInf;
  const double p = success_probability(t_inf);
  if (!(p > 0.0)) return kInf;
  const double q = 1.0 - p;
  const double a = integral_a(t_inf);
  const double bint = integral_b(t_inf);
  return 2.0 * bint / p + 2.0 * t_inf * q * a / (p * p);
}

double MultipleSubmission::std_deviation(double t_inf) const {
  const double ej = expectation(t_inf);
  if (!std::isfinite(ej)) return kInf;
  const double var = second_moment(t_inf) - ej * ej;
  return std::sqrt(std::max(var, 0.0));
}

StrategyMetrics MultipleSubmission::evaluate(double t_inf) const {
  StrategyMetrics m;
  m.expectation = expectation(t_inf);
  m.std_deviation = std_deviation(t_inf);
  return m;
}

double MultipleSubmission::expected_submissions(double t_inf) const {
  const double p = success_probability(t_inf);
  if (!(p > 0.0)) return kInf;
  return static_cast<double>(b_) / p;
}

TimeoutOptimum MultipleSubmission::optimize(double t_min,
                                            double t_max) const {
  const double step = model_.step();
  const double lo = (t_min > 0.0) ? t_min : step;
  const double hi = (t_max > 0.0) ? std::min(t_max, model_.horizon())
                                  : model_.horizon();
  if (!(hi > lo)) {
    throw std::invalid_argument("MultipleSubmission::optimize: bad bounds");
  }
  // Grid scan at node resolution (cheap: O(1) per node), then refine.
  double best_t = lo;
  double best_v = expectation(lo);
  const auto i_lo = static_cast<std::size_t>(std::ceil(lo / step));
  const auto i_hi = static_cast<std::size_t>(
      std::min(std::floor(hi / step),
               static_cast<double>(model_.grid_size() - 1)));
  for (std::size_t i = i_lo; i <= i_hi; ++i) {
    const double t = model_.t_at(i);
    const double v = expectation(t);
    if (v < best_v) {
      best_v = v;
      best_t = t;
    }
  }
  const double r_lo = std::max(lo, best_t - step);
  const double r_hi = std::min(hi, best_t + step);
  const auto refined = numerics::brent_minimize(
      [this](double t) { return expectation(t); }, r_lo, r_hi, 1e-6);
  TimeoutOptimum opt;
  if (refined.value < best_v) {
    opt.t_inf = refined.x;
    opt.metrics = evaluate(refined.x);
  } else {
    opt.t_inf = best_t;
    opt.metrics = evaluate(best_t);
  }
  return opt;
}

}  // namespace gridsub::core
