#pragma once

// Single-resubmission strategy (paper §4, eqs. 1-2).
//
// Wait until timeout t∞, cancel, resubmit, iterate until a job starts:
//   E_J(t∞) = (1/F̃(t∞)) ∫₀^{t∞} (1 - F̃(u)) du            (eq. 1)
// with the variance given by eq. 2. This is exactly the b = 1 case of the
// multiple-submission model, which this class delegates to; it exists as a
// separate type because the paper treats it as the baseline strategy (its
// optimum defines the Δcost denominator, eq. 6).

#include "core/multiple_submission.hpp"
#include "core/strategy.hpp"
#include "model/discretized.hpp"

namespace gridsub::core {

class SingleResubmission {
 public:
  /// Keeps a reference to `m` (must outlive this object).
  explicit SingleResubmission(const model::DiscretizedLatencyModel& m);

  /// E_J(t∞), paper eq. 1.
  [[nodiscard]] double expectation(double t_inf) const;

  /// sigma_J(t∞), paper eq. 2.
  [[nodiscard]] double std_deviation(double t_inf) const;

  [[nodiscard]] StrategyMetrics evaluate(double t_inf) const;

  /// Expected number of submissions until success: 1 / F̃(t∞).
  [[nodiscard]] double expected_submissions(double t_inf) const;

  /// Minimizes E_J over t∞ (grid scan + Brent refinement).
  [[nodiscard]] TimeoutOptimum optimize(double t_min = -1.0,
                                        double t_max = -1.0) const;

  [[nodiscard]] const model::DiscretizedLatencyModel& latency_model() const {
    return impl_.latency_model();
  }

 private:
  MultipleSubmission impl_;
};

}  // namespace gridsub::core
