#include "serve/replay_feed.hpp"

#include <set>
#include <stdexcept>
#include <string_view>
#include <thread>

namespace gridsub::serve {

namespace {

std::uint64_t fnv1a(std::string_view s, std::uint64_t h) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void validate(const ReplayFeedConfig& config) {
  if (config.ingest_threads == 0) {
    throw std::invalid_argument("replay_feed: ingest_threads == 0");
  }
  if (config.user_classes == 0 || config.sites.empty()) {
    throw std::invalid_argument("replay_feed: empty user_classes/sites");
  }
  if (config.synthetic_users == 0 || config.synthetic_vos == 0) {
    throw std::invalid_argument("replay_feed: empty synthetic population");
  }
  if (!(config.latency_scale > 0.0)) {
    throw std::invalid_argument("replay_feed: latency_scale <= 0");
  }
}

}  // namespace

AdvisorKey key_for_job(const traces::WorkloadJob& job, std::size_t index,
                       const ReplayFeedConfig& config) {
  std::size_t user = 0;
  std::size_t group = 0;
  if (job.user >= 0) {
    user = static_cast<std::size_t>(job.user);
  } else {
    user = index % config.synthetic_users;
  }
  if (job.group >= 0) {
    group = static_cast<std::size_t>(job.group);
  } else {
    group = user % config.synthetic_vos;
  }
  AdvisorKey key;
  key.vo = config.vo_prefix + std::to_string(group);
  key.user_class = "uc" + std::to_string(user % config.user_classes);
  key.site = config.sites[(user / config.user_classes) % config.sites.size()];
  return key;
}

std::size_t shard_for_key(const AdvisorKey& key,
                          const ReplayFeedConfig& config) {
  std::uint64_t h = 14695981039346656037ull;
  h = fnv1a(key.vo, h);
  h = fnv1a(key.site, h);
  h = fnv1a(key.user_class, h);
  return static_cast<std::size_t>(h % config.ingest_threads);
}

ReplayFeedReport replay_feed(AdvisorService& service,
                             const traces::Workload& workload,
                             const ReplayFeedConfig& config) {
  validate(config);
  const double timeout = service.config().planner.timeout;
  const auto jobs = workload.jobs();

  ReplayFeedReport report;
  report.jobs = jobs.size();
  report.per_thread.assign(config.ingest_threads, 0);
  std::vector<std::uint64_t> completed(config.ingest_threads, 0);
  std::vector<std::uint64_t> outliers(config.ingest_threads, 0);

  // Every worker walks the whole log in order and ingests only the keys
  // its shard owns: per-key observation order is workload order at any
  // thread count (see header comment), which is what makes the final
  // snapshot byte-identical across 1/2/8-thread feeds.
  auto worker = [&](std::size_t shard) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const AdvisorKey key = key_for_job(jobs[i], i, config);
      if (shard_for_key(key, config) != shard) continue;
      if (config.fault_hook) config.fault_hook(shard, i);
      const double latency = jobs[i].runtime * config.latency_scale;
      if (latency >= 0.0 && latency < timeout) {
        service.ingest(key, latency);
        ++completed[shard];
      } else {
        service.ingest_outlier(key);
        ++outliers[shard];
      }
      ++report.per_thread[shard];
    }
  };

  if (config.ingest_threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(config.ingest_threads);
    for (std::size_t t = 0; t < config.ingest_threads; ++t) {
      threads.emplace_back(worker, t);
    }
    for (std::thread& t : threads) t.join();
  }

  for (std::size_t t = 0; t < config.ingest_threads; ++t) {
    report.completed += completed[t];
    report.outliers += outliers[t];
  }
  std::set<AdvisorKey> distinct;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    distinct.insert(key_for_job(jobs[i], i, config));
  }
  report.keys = distinct.size();
  return report;
}

}  // namespace gridsub::serve
