#pragma once

// Strategy-advisor service (ROADMAP "long-lived strategy-advisor
// service"): the paper's end product turned into a server-shaped
// subsystem. Probe-latency observations stream in per (VO, site,
// user-class) key — the keyed split the LPC workload analysis motivates:
// per-user/per-VO arrival regimes differ enough that one global
// recommendation is wrong — and each key maintains its own
// online::OnlinePlanner (sliding window, periodic refit, drift flag).
// Clients ask "what (t0, t∞, b) should I use right now?" via advise().
//
// The serving side is built around *immutable snapshot publication*:
//
//   * A refresher (background thread or explicit refresh_now()) folds the
//     per-key planner states into an AdvisorSnapshot — a sorted, immutable
//     value — and publishes it with one atomic pointer swap. Snapshots are
//     generation-numbered; generations are strictly monotone.
//   * Readers never take a lock. advise() pins the current snapshot with a
//     hazard-pointer slot (one cache line per registered Reader), binary-
//     searches the sorted entries, and copies out a plain-old-data Advice.
//     The ingest mutex, the refresher, and snapshot reclamation are all
//     invisible to the advise() path.
//   * Reclamation is writer-side: retired snapshots are freed on the next
//     swap once no hazard slot still pins them, so a reader mid-lookup
//     keeps its snapshot alive without reference counting.
//
// Every Advice carries a writer-side FNV stamp over its payload fields;
// recomputing it reader-side (advice_stamp) proves the answer was copied
// from exactly one published entry — the torn-read canary the concurrency
// suite leans on.
//
// Determinism contract (docs/architecture.md): the *final* snapshot after
// ingestion has drained and a last refresh ran is a pure function of the
// per-key observation sequences — independent of ingest thread count,
// reader count, and how often the background refresher swapped along the
// way. write_json() therefore emits only that deterministic advice
// payload; serving metadata (generation, staleness) lives in stats().

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/cost.hpp"
#include "core/strategy.hpp"
#include "core/thread_annotations.hpp"
#include "online/online_planner.hpp"

namespace gridsub::serve {

/// Routing key for keyed planner state. Ordered lexicographically
/// (vo, site, user_class) so snapshots and JSON dumps are deterministic.
struct AdvisorKey {
  std::string vo;
  std::string site;
  std::string user_class;

  friend bool operator==(const AdvisorKey&, const AdvisorKey&) = default;
  friend auto operator<=>(const AdvisorKey&, const AdvisorKey&) = default;
};

struct AdvisorConfig {
  /// Per-key planner settings (window, refit cadence, drift threshold).
  online::OnlinePlannerConfig planner;
  /// Timeout of the documented fallback: until a key has enough
  /// observations to be ready, advise() returns plain single resubmission
  /// at this conservative timeout (the paper's untuned behaviour).
  double fallback_t_inf = 900.0;
  /// Pending observations that wake the background refresher. Larger
  /// values batch more ingestion per snapshot swap (higher staleness,
  /// fewer rebuilds).
  std::size_t refresh_pending = 64;
  /// Staleness bound, in generations (0 = unbounded). When the published
  /// snapshot is `staleness_bound` generations newer than the refresh
  /// that last rebuilt a key's entry, advise() stops serving that entry
  /// and returns the documented degraded fallback instead (Advice
  /// .degraded = true, counted in stats().degraded): bounded-staleness
  /// advice beats confidently serving a recommendation the stream has
  /// long since moved past. See docs/robustness.md.
  std::uint64_t staleness_bound = 0;
  /// Chaos seam: called (with mu_ held) just before each refresh builds
  /// generation `g`. src/fault installs a deterministic pause here; the
  /// default does nothing. Must not call back into the service.
  std::function<void(std::uint64_t)> refresh_fault;
};

/// What advise() hands back: a plain copyable value, no allocation.
struct Advice {
  bool ready = false;    ///< false = fallback (key unknown or not ready)
  bool drifted = false;  ///< planner drift flag at snapshot build time
  /// True when a *ready* entry was refused for exceeding the staleness
  /// bound and this is the degraded fallback instead. Serving metadata
  /// like `generation` — set reader-side, excluded from the stamp and
  /// from write_json().
  bool degraded = false;
  core::StrategyKind kind = core::StrategyKind::kSingleResubmission;
  double t0 = 0.0;
  double t_inf = 0.0;
  int b = 1;
  double expectation = 0.0;
  double delta_cost = 1.0;
  /// Generation of the snapshot that answered (strictly monotone per
  /// service; a reader observes a non-decreasing sequence).
  std::uint64_t generation = 0;
  /// Generation whose refresh last rebuilt this entry (0 = fallback).
  std::uint64_t entry_generation = 0;
  /// Writer-side FNV-1a over the payload fields above (advice_stamp);
  /// recompute to prove the read was not torn across a swap.
  std::uint64_t stamp = 0;
};

/// Recomputes the writer-side stamp from the payload fields (everything
/// except `generation` and `stamp` itself, which vary per snapshot while
/// the entry is reused). Equal to `a.stamp` for any untorn Advice.
[[nodiscard]] std::uint64_t advice_stamp(const Advice& a);

/// One key's published state inside a snapshot.
struct AdvisorEntry {
  AdvisorKey key;
  Advice advice;                    ///< payload advise() copies out
  std::uint64_t observations = 0;   ///< per-key ingested total at build
  std::uint64_t refits = 0;         ///< planner refits at build
  double drift_statistic = 0.0;
  double outlier_ratio = 0.0;
};

/// Immutable published state: sorted entries + the fallback advice.
/// Never mutated after publication — readers share it without locks.
struct AdvisorSnapshot {
  std::uint64_t generation = 0;
  std::uint64_t observations = 0;  ///< total observations folded in
  Advice fallback;                 ///< returned for unknown/not-ready keys
  std::vector<AdvisorEntry> entries;  ///< sorted by key

  /// Binary search; nullptr when the key has no entry.
  [[nodiscard]] const AdvisorEntry* find(const AdvisorKey& key) const;

  /// Deterministic advice payload as JSON (sorted keys, to_chars
  /// numbers). Serving metadata — generation, staleness — is excluded on
  /// purpose: the dump must be byte-identical however many ingest threads
  /// and refresher swaps produced the state (see header comment).
  void write_json(std::ostream& os) const;
};

/// Serving metadata, read under the service lock (not the advise() path).
struct AdvisorStats {
  std::uint64_t generation = 0;        ///< latest published generation
  std::uint64_t swaps = 0;             ///< snapshot publications so far
  std::uint64_t observations = 0;      ///< total observations ingested
  std::uint64_t pending = 0;           ///< ingested since the last swap
  std::uint64_t staleness_last = 0;    ///< pending folded by the last swap
  std::uint64_t staleness_max = 0;     ///< max pending any swap folded
  std::size_t keys = 0;                ///< keyed planners registered
  std::size_t readers = 0;             ///< live Reader registrations
  std::uint64_t lookups = 0;   ///< advise() calls across all Readers ever
  std::uint64_t degraded = 0;  ///< lookups answered with the degraded
                               ///< fallback (staleness bound exceeded)
};

/// Liveness-oriented view for operators and the chaos wall: is the
/// service keeping up, and how much of the traffic is degraded?
struct AdvisorHealth {
  std::uint64_t generation = 0;   ///< latest published generation
  std::uint64_t backlog = 0;      ///< observations ingested, not yet folded
  std::size_t keys = 0;           ///< entries in the published snapshot
  /// Generations since the stalest published entry was rebuilt (0 when
  /// the snapshot is empty). Under the staleness bound this is also the
  /// worst age advise() will serve as fresh.
  std::uint64_t max_entry_age = 0;
  std::uint64_t lookups = 0;   ///< as in AdvisorStats
  std::uint64_t degraded = 0;  ///< as in AdvisorStats
  /// degraded / lookups (0 when no lookups yet).
  double degraded_rate = 0.0;
};

/// Raised by warm_start(): corrupt, truncated, or mismatched recovery
/// dump, or a service that already holds state. Distinct from
/// exp::CheckpointError — recovery failures must be catchable without
/// conflating them with campaign checkpoint problems.
class RecoveryError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class AdvisorService {
 public:
  /// Hazard-slot capacity: the hard cap on concurrently registered
  /// Readers. One cache line each; raise freely if a deployment needs
  /// more reader threads.
  static constexpr std::size_t kMaxReaders = 64;

  explicit AdvisorService(AdvisorConfig config = {});

  AdvisorService(const AdvisorService&) = delete;
  AdvisorService& operator=(const AdvisorService&) = delete;

  /// Stops the refresher and frees every snapshot. All Readers must have
  /// been destroyed first (checked).
  ~AdvisorService();

  [[nodiscard]] const AdvisorConfig& config() const { return config_; }

  // --- ingestion (any thread) --------------------------------------------
  //
  // Observations for one key are folded in call order; *per-key* ordering
  // across concurrent ingest threads is the caller's contract (the replay
  // feed partitions keys statically across its threads, so each key only
  // ever sees one thread). Latency bounds are the planner's:
  // [0, planner.timeout) or std::invalid_argument.

  void ingest(const AdvisorKey& key, double latency) GRIDSUB_EXCLUDES(mu_);
  void ingest_outlier(const AdvisorKey& key) GRIDSUB_EXCLUDES(mu_);

  // --- refresh -----------------------------------------------------------

  /// Starts the background refresher: it wakes whenever
  /// `config().refresh_pending` observations accumulated and publishes a
  /// fresh snapshot. Idempotent.
  void start_refresher() GRIDSUB_EXCLUDES(mu_);

  /// Stops and joins the background refresher (pending observations stay
  /// pending). Idempotent; also called by the destructor.
  void stop_refresher() GRIDSUB_EXCLUDES(mu_);

  /// Builds and publishes a snapshot now if anything is pending or dirty;
  /// returns the published generation (unchanged when nothing to do).
  std::uint64_t refresh_now() GRIDSUB_EXCLUDES(mu_);

  // --- lock-free lookups -------------------------------------------------

 private:
  struct HazardSlot;  // defined below; Reader holds a pointer to one

 public:

  /// A registered reader: holds one hazard slot for its lifetime. Cheap
  /// to create per thread; advise() is safe from exactly the thread(s)
  /// the caller serializes per Reader (one Reader per thread is the
  /// intended shape — the slot is a single hazard cell).
  class Reader {
   public:
    /// Throws std::runtime_error when kMaxReaders are already registered.
    explicit Reader(AdvisorService& service);
    ~Reader();

    Reader(const Reader&) = delete;
    Reader& operator=(const Reader&) = delete;

    /// Lock-free lookup: pins the current snapshot via the hazard slot,
    /// copies the entry (or the fallback) out, unpins. Never blocks on
    /// the ingest mutex or the refresher.
    [[nodiscard]] Advice advise(const AdvisorKey& key) const;

   private:
    AdvisorService* service_;
    HazardSlot* slot_;
  };

  // --- introspection (locked paths; not for the hot loop) ----------------

  [[nodiscard]] AdvisorStats stats() const GRIDSUB_EXCLUDES(mu_);

  /// Health snapshot: backlog, entry age, degraded-rate. Locked path.
  [[nodiscard]] AdvisorHealth health() const GRIDSUB_EXCLUDES(mu_);

  /// Writes the current snapshot's deterministic payload
  /// (AdvisorSnapshot::write_json) under the service lock.
  void dump_json(std::ostream& os) const GRIDSUB_EXCLUDES(mu_);

  // --- crash-restart recovery (docs/robustness.md) -----------------------
  //
  // save_snapshot_file() persists the published snapshot as the same
  // deterministic write_json() payload the tests already byte-compare;
  // warm_start() rebuilds a *fresh* service from such a dump. The
  // round-trip invariant the chaos wall pins: dump → warm_start → dump
  // is byte-identical (to_chars/from_chars round-trip doubles exactly).
  // Warm entries keep serving the recovered payload until their planner
  // has re-accumulated enough post-restart observations to be ready.

  /// Atomically persists dump_json() to `path` (write temp + rename).
  /// Throws RecoveryError when the file cannot be written.
  void save_snapshot_file(const std::string& path) const GRIDSUB_EXCLUDES(mu_);

  /// Loads a recovery dump into this service, which must be virgin (no
  /// ingests, no refreshes, no prior warm start). Publishes the recovered
  /// state as generation 1. Throws RecoveryError on corrupt input, a
  /// fallback_t_inf that disagrees with this service's config, unsorted
  /// or duplicate keys, or a non-virgin service.
  void warm_start(std::istream& is, const std::string& origin)
      GRIDSUB_EXCLUDES(mu_);

  /// warm_start() from a file; `path` names the origin in errors.
  void warm_start_file(const std::string& path) GRIDSUB_EXCLUDES(mu_);

 private:
  friend class Reader;

  /// Per-key ingest state: the planner plus bookkeeping the snapshot
  /// builder folds in.
  struct KeyState {
    explicit KeyState(const online::OnlinePlannerConfig& config)
        : planner(config) {}
    online::OnlinePlanner planner;
    std::uint64_t observations = 0;
    /// Generation whose refresh last saw this key dirty (stamped into the
    /// entry as entry_generation).
    std::uint64_t changed_generation = 0;
    bool dirty = true;
    /// Recovered pre-crash state (warm_start). Served by rebuilds until
    /// the restarted planner is ready again; the diagnostics carry over
    /// so counters stay monotone across the crash.
    bool warm = false;
    Advice warm_advice;  ///< payload fields only; stamped at rebuild
    std::uint64_t warm_refits = 0;
    double warm_drift_statistic = 0.0;
    double warm_outlier_ratio = 0.0;
  };

  /// One hazard cell per Reader, padded so readers never false-share.
  /// The counters are cumulative across Reader registrations that reuse
  /// the slot; stats()/health() sum them for service-lifetime totals.
  struct alignas(64) HazardSlot {
    std::atomic<const AdvisorSnapshot*> pinned{nullptr};
    std::atomic<bool> claimed{false};
    std::atomic<std::uint64_t> lookups{0};
    std::atomic<std::uint64_t> degraded{0};
  };

  void ingest_one(const AdvisorKey& key, double latency, bool completed)
      GRIDSUB_EXCLUDES(mu_);
  std::uint64_t rebuild_and_swap() GRIDSUB_REQUIRES(mu_);
  void reclaim_retired() GRIDSUB_REQUIRES(mu_);
  void refresher_main() GRIDSUB_EXCLUDES(mu_);
  /// Sums the per-slot lookup/degraded counters (lock-free reads).
  void sum_lookup_counters(std::uint64_t& lookups,
                           std::uint64_t& degraded) const;

  AdvisorConfig config_;

  mutable core::Mutex mu_;
  /// std::map: deterministic iteration order for the snapshot builder.
  std::map<AdvisorKey, KeyState> keys_ GRIDSUB_GUARDED_BY(mu_);
  std::uint64_t observations_ GRIDSUB_GUARDED_BY(mu_) = 0;
  std::uint64_t pending_ GRIDSUB_GUARDED_BY(mu_) = 0;
  std::uint64_t generation_ GRIDSUB_GUARDED_BY(mu_) = 0;
  std::uint64_t swaps_ GRIDSUB_GUARDED_BY(mu_) = 0;
  std::uint64_t staleness_last_ GRIDSUB_GUARDED_BY(mu_) = 0;
  std::uint64_t staleness_max_ GRIDSUB_GUARDED_BY(mu_) = 0;
  bool stop_refresher_ GRIDSUB_GUARDED_BY(mu_) = false;
  core::CondVar wake_;
  std::thread refresher_;  ///< start/stop are caller-serialized

  /// Every snapshot ever published and not yet reclaimed; pruned under
  /// mu_ on each swap once no hazard slot pins the retiree.
  std::vector<std::unique_ptr<const AdvisorSnapshot>> owned_
      GRIDSUB_GUARDED_BY(mu_);

  /// The published snapshot. Swapped only under mu_; read lock-free by
  /// advise().
  std::atomic<const AdvisorSnapshot*> current_{nullptr};
  std::array<HazardSlot, kMaxReaders> slots_;
  std::atomic<std::size_t> readers_{0};
};

}  // namespace gridsub::serve
