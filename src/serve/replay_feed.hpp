#pragma once

// Replay-driven ingestion: maps a recorded workload (an SWF archive via
// traces::read_swf_file, a workload CSV, or a synthetic scenario week)
// onto advisor keys and streams it into an AdvisorService, so
// tuning-freshness-vs-load is measurable against realistic traffic.
//
// Key projection. Real SWF rows carry (user, group) ids; the grid-
// workload studies treat the group as the VO and slice users into
// classes (Medernach's per-user/per-VO arrival regimes). We project:
//
//   vo         = vo_prefix + group
//   user_class = "uc" + (user % user_classes)
//   site       = sites[(user / user_classes) % sites.size()]
//
// Synthetic scenarios carry no ids (user = group = -1); those jobs get a
// deterministic synthetic population (user = job index % synthetic_users,
// group = user % synthetic_vos) so keyed serving is exercisable without
// an archive on disk. The probe-latency observation for each job is its
// runtime scaled by latency_scale; at or beyond the service's planner
// timeout it is ingested as an outlier (the probe-timeout convention).
//
// Determinism. With N ingest threads, keys are partitioned statically
// (FNV of the key, mod N) and every thread walks the *whole* workload in
// order, ingesting only its own keys — so each key sees its observations
// in workload order no matter how many threads run, and the service's
// final snapshot is byte-identical at any thread count (the determinism
// suite pins this at 1/2/8).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/advisor.hpp"
#include "traces/workload.hpp"

namespace gridsub::serve {

struct ReplayFeedConfig {
  std::size_t ingest_threads = 1;  ///< static key partition; >= 1
  std::size_t user_classes = 2;    ///< user-class buckets per VO
  std::vector<std::string> sites = {"lpc", "nikhef"};
  std::string vo_prefix = "vo";
  /// Deterministic population for id-less (synthetic) workloads.
  std::size_t synthetic_users = 24;
  std::size_t synthetic_vos = 3;
  /// Probe latency = job runtime * latency_scale (then clipped to the
  /// planner timeout as an outlier).
  double latency_scale = 1.0;
  /// Chaos seam: called by the owning worker before each ingest, with
  /// the shard and the job's *global* workload index. src/fault installs
  /// a deterministic stall keyed on the job index (not the shard, so the
  /// stalled set is thread-count invariant); the default does nothing.
  std::function<void(std::size_t shard, std::uint64_t job_index)> fault_hook;
};

struct ReplayFeedReport {
  std::uint64_t jobs = 0;       ///< workload jobs consumed
  std::uint64_t completed = 0;  ///< ingested as completed observations
  std::uint64_t outliers = 0;   ///< ingested as outliers (>= timeout)
  std::size_t keys = 0;         ///< distinct keys touched
  std::vector<std::uint64_t> per_thread;  ///< observations per ingest shard
};

/// The key the feed files `job` under (pure; exposed for tests and for
/// benches that need the key universe up front). `index` is the job's
/// position in the workload, used only for the synthetic population.
[[nodiscard]] AdvisorKey key_for_job(const traces::WorkloadJob& job,
                                     std::size_t index,
                                     const ReplayFeedConfig& config);

/// The ingest shard (< config.ingest_threads) that owns `key`.
[[nodiscard]] std::size_t shard_for_key(const AdvisorKey& key,
                                        const ReplayFeedConfig& config);

/// Streams the whole workload into the service (blocking; spawns
/// config.ingest_threads workers). Throws std::invalid_argument on a bad
/// config. The background refresher, if started, keeps swapping
/// snapshots while this runs.
ReplayFeedReport replay_feed(AdvisorService& service,
                             const traces::Workload& workload,
                             const ReplayFeedConfig& config = {});

}  // namespace gridsub::serve
