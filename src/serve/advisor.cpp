#include "serve/advisor.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "exp/json_parse.hpp"
#include "exp/json_util.hpp"

namespace gridsub::serve {

namespace {

/// FNV-1a over the eight bytes of one word.
void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ull;
  }
}

}  // namespace

std::uint64_t advice_stamp(const Advice& a) {
  std::uint64_t h = 14695981039346656037ull;
  fnv_mix(h, a.ready ? 1u : 0u);
  fnv_mix(h, a.drifted ? 1u : 0u);
  fnv_mix(h, static_cast<std::uint64_t>(a.kind));
  fnv_mix(h, std::bit_cast<std::uint64_t>(a.t0));
  fnv_mix(h, std::bit_cast<std::uint64_t>(a.t_inf));
  fnv_mix(h, static_cast<std::uint64_t>(a.b));
  fnv_mix(h, std::bit_cast<std::uint64_t>(a.expectation));
  fnv_mix(h, std::bit_cast<std::uint64_t>(a.delta_cost));
  fnv_mix(h, a.entry_generation);
  return h;
}

// --------------------------------------------------------------------------
// AdvisorSnapshot
// --------------------------------------------------------------------------

const AdvisorEntry* AdvisorSnapshot::find(const AdvisorKey& key) const {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), key,
      [](const AdvisorEntry& e, const AdvisorKey& k) { return e.key < k; });
  if (it == entries.end() || it->key != key) return nullptr;
  return &*it;
}

void AdvisorSnapshot::write_json(std::ostream& os) const {
  using exp::detail::json_escape;
  using exp::detail::json_number;
  os << "{\n  \"advisor\": {\n    \"fallback_t_inf\": ";
  json_number(os, fallback.t_inf);
  os << ",\n    \"observations\": " << observations;
  os << ",\n    \"keys\": [";
  bool first = true;
  for (const AdvisorEntry& e : entries) {
    os << (first ? "\n" : ",\n") << "      {\"vo\": ";
    first = false;
    json_escape(os, e.key.vo);
    os << ", \"site\": ";
    json_escape(os, e.key.site);
    os << ", \"user_class\": ";
    json_escape(os, e.key.user_class);
    os << ", \"ready\": " << (e.advice.ready ? "true" : "false")
       << ", \"drifted\": " << (e.advice.drifted ? "true" : "false")
       << ", \"observations\": " << e.observations
       << ", \"refits\": " << e.refits << ", \"drift_statistic\": ";
    json_number(os, e.drift_statistic);
    os << ", \"outlier_ratio\": ";
    json_number(os, e.outlier_ratio);
    os << ",\n       \"kind\": ";
    json_escape(os, core::to_string(e.advice.kind));
    os << ", \"t0\": ";
    json_number(os, e.advice.t0);
    os << ", \"t_inf\": ";
    json_number(os, e.advice.t_inf);
    os << ", \"b\": " << e.advice.b << ", \"expectation\": ";
    json_number(os, e.advice.expectation);
    os << ", \"delta_cost\": ";
    json_number(os, e.advice.delta_cost);
    os << "}";
  }
  os << (first ? "]" : "\n    ]") << "\n  }\n}\n";
}

// --------------------------------------------------------------------------
// AdvisorService: construction / teardown
// --------------------------------------------------------------------------

AdvisorService::AdvisorService(AdvisorConfig config)
    : config_(std::move(config)) {
  if (!(config_.fallback_t_inf > 0.0)) {
    throw std::invalid_argument("AdvisorService: fallback_t_inf <= 0");
  }
  if (config_.refresh_pending == 0) {
    throw std::invalid_argument("AdvisorService: refresh_pending == 0");
  }
  // Validate the planner config eagerly (OnlinePlanner's constructor
  // checks it) so a bad config fails at service construction, not at the
  // first ingest of some unlucky key.
  (void)online::OnlinePlanner(config_.planner);

  // Publish the empty generation-0 snapshot so advise() never sees a null
  // pointer: before any refresh, every key answers with the fallback.
  auto initial = std::make_unique<AdvisorSnapshot>();
  initial->fallback.t_inf = config_.fallback_t_inf;
  initial->fallback.stamp = advice_stamp(initial->fallback);
  const AdvisorSnapshot* raw = initial.get();
  {
    const core::MutexLock lock(mu_);
    owned_.push_back(std::move(initial));
  }
  current_.store(raw, std::memory_order_seq_cst);
}

AdvisorService::~AdvisorService() {
  stop_refresher();
  assert(readers_.load(std::memory_order_seq_cst) == 0 &&
         "AdvisorService destroyed with live Readers");
}

// --------------------------------------------------------------------------
// Ingestion
// --------------------------------------------------------------------------

void AdvisorService::ingest(const AdvisorKey& key, double latency) {
  if (!(latency >= 0.0) || latency >= config_.planner.timeout) {
    throw std::invalid_argument(
        "AdvisorService::ingest: latency outside [0, timeout)");
  }
  ingest_one(key, latency, true);
}

void AdvisorService::ingest_outlier(const AdvisorKey& key) {
  ingest_one(key, 0.0, false);
}

void AdvisorService::ingest_one(const AdvisorKey& key, double latency,
                                bool completed) {
  bool wake = false;
  {
    const core::MutexLock lock(mu_);
    auto it = keys_.find(key);
    if (it == keys_.end()) {
      it = keys_.emplace(key, KeyState(config_.planner)).first;
    }
    KeyState& state = it->second;
    if (completed) {
      state.planner.observe_completed(latency);
    } else {
      state.planner.observe_outlier();
    }
    ++state.observations;
    state.dirty = true;
    ++observations_;
    ++pending_;
    wake = pending_ >= config_.refresh_pending;
  }
  if (wake) wake_.notify_one();
}

// --------------------------------------------------------------------------
// Snapshot build + publication
// --------------------------------------------------------------------------

std::uint64_t AdvisorService::rebuild_and_swap() {
  if (pending_ == 0) return generation_;
  const std::uint64_t next_gen = generation_ + 1;
  // Chaos seam: a deterministic pause keyed on the generation about to be
  // built (src/fault installs it; default none).
  if (config_.refresh_fault) config_.refresh_fault(next_gen);
  auto snap = std::make_unique<AdvisorSnapshot>();
  snap->generation = next_gen;
  snap->observations = observations_;
  snap->fallback.t_inf = config_.fallback_t_inf;
  snap->fallback.generation = next_gen;
  snap->fallback.stamp = advice_stamp(snap->fallback);
  snap->entries.reserve(keys_.size());
  // std::map iteration: entries come out key-sorted, so find() can binary
  // search and the JSON dump is deterministic.
  for (auto& [key, state] : keys_) {
    if (state.dirty) {
      state.changed_generation = next_gen;
      state.dirty = false;
    }
    AdvisorEntry e;
    e.key = key;
    e.observations = state.observations;
    // warm_refits is 0 unless warm-started: counters stay monotone
    // across a crash-restart.
    e.refits = state.warm_refits + state.planner.refits();
    e.drift_statistic = state.planner.drift_statistic();
    e.outlier_ratio = state.planner.window_outlier_ratio();
    Advice a;
    a.generation = next_gen;
    a.entry_generation = state.changed_generation;
    if (state.planner.ready()) {
      const core::CostEvaluation& c = state.planner.current().choice;
      a.ready = true;
      a.drifted = state.planner.drifted();
      a.kind = c.kind;
      a.t0 = c.t0;
      a.t_inf = c.t_inf;
      a.b = c.b;
      a.expectation = c.expectation;
      a.delta_cost = c.delta_cost;
    } else if (state.warm) {
      // Recovered entry whose restarted planner is not ready yet: keep
      // serving the pre-crash payload rather than regressing to the
      // fallback (the recovery contract, docs/robustness.md).
      a.ready = state.warm_advice.ready;
      a.drifted = state.warm_advice.drifted;
      a.kind = state.warm_advice.kind;
      a.t0 = state.warm_advice.t0;
      a.t_inf = state.warm_advice.t_inf;
      a.b = state.warm_advice.b;
      a.expectation = state.warm_advice.expectation;
      a.delta_cost = state.warm_advice.delta_cost;
      e.drift_statistic = state.warm_drift_statistic;
      e.outlier_ratio = state.warm_outlier_ratio;
    } else {
      // Not ready: the documented fallback, stamped with this entry's
      // generation so the torn-read canary still binds it to one build.
      a.t_inf = config_.fallback_t_inf;
    }
    a.stamp = advice_stamp(a);
    e.advice = a;
    snap->entries.push_back(std::move(e));
  }

  staleness_last_ = pending_;
  staleness_max_ = std::max(staleness_max_, pending_);
  pending_ = 0;
  generation_ = next_gen;
  ++swaps_;

  const AdvisorSnapshot* raw = snap.get();
  owned_.push_back(std::move(snap));
  current_.store(raw, std::memory_order_seq_cst);
  reclaim_retired();
  return next_gen;
}

void AdvisorService::reclaim_retired() {
  const AdvisorSnapshot* live = current_.load(std::memory_order_seq_cst);
  std::erase_if(owned_, [&](const std::unique_ptr<const AdvisorSnapshot>& s) {
    if (s.get() == live) return false;
    for (const HazardSlot& slot : slots_) {
      if (slot.pinned.load(std::memory_order_seq_cst) == s.get()) {
        return false;  // a reader still pins it; retry at the next swap
      }
    }
    return true;
  });
}

std::uint64_t AdvisorService::refresh_now() {
  const core::MutexLock lock(mu_);
  return rebuild_and_swap();
}

// --------------------------------------------------------------------------
// Background refresher
// --------------------------------------------------------------------------

void AdvisorService::start_refresher() {
  if (refresher_.joinable()) return;
  {
    const core::MutexLock lock(mu_);
    stop_refresher_ = false;
  }
  refresher_ = std::thread([this] { refresher_main(); });
}

void AdvisorService::stop_refresher() {
  if (!refresher_.joinable()) return;
  {
    const core::MutexLock lock(mu_);
    stop_refresher_ = true;
  }
  wake_.notify_all();
  refresher_.join();
  refresher_ = std::thread();
}

void AdvisorService::refresher_main() {
  const core::MutexLock lock(mu_);
  for (;;) {
    wake_.wait(mu_, [this]() GRIDSUB_REQUIRES(mu_) {
      return stop_refresher_ || pending_ >= config_.refresh_pending;
    });
    if (stop_refresher_) return;
    rebuild_and_swap();
  }
}

// --------------------------------------------------------------------------
// Lock-free lookups
// --------------------------------------------------------------------------

AdvisorService::Reader::Reader(AdvisorService& service)
    : service_(&service), slot_(nullptr) {
  for (HazardSlot& slot : service.slots_) {
    bool expected = false;
    if (slot.claimed.compare_exchange_strong(expected, true,
                                             std::memory_order_seq_cst)) {
      slot_ = &slot;
      break;
    }
  }
  if (slot_ == nullptr) {
    throw std::runtime_error("AdvisorService: kMaxReaders already registered");
  }
  service.readers_.fetch_add(1, std::memory_order_seq_cst);
}

AdvisorService::Reader::~Reader() {
  slot_->pinned.store(nullptr, std::memory_order_seq_cst);
  slot_->claimed.store(false, std::memory_order_seq_cst);
  service_->readers_.fetch_sub(1, std::memory_order_seq_cst);
}

Advice AdvisorService::Reader::advise(const AdvisorKey& key) const {
  // Hazard-pointer pin: publish the candidate, then re-check that it is
  // still current. If a swap raced in between, retry with the new pointer
  // — the loop advances every time the refresher publishes, so it is
  // lock-free (and in practice converges in one or two iterations; swaps
  // are rare next to lookups). seq_cst keeps the pin store ordered before
  // the validating load, which is what the writer-side scan in
  // reclaim_retired() relies on.
  const AdvisorSnapshot* snap =
      service_->current_.load(std::memory_order_seq_cst);
  for (;;) {
    slot_->pinned.store(snap, std::memory_order_seq_cst);
    const AdvisorSnapshot* check =
        service_->current_.load(std::memory_order_seq_cst);
    if (check == snap) break;
    snap = check;
  }
  const AdvisorEntry* entry = snap->find(key);
  bool degraded = false;
  Advice advice;
  if (entry != nullptr) {
    const std::uint64_t bound = service_->config_.staleness_bound;
    if (bound != 0 && entry->advice.ready &&
        snap->generation - entry->advice.entry_generation > bound) {
      // Staleness bound exceeded: the fitted recommendation is too many
      // refreshes old to trust, so serve the documented degraded
      // fallback instead (the fallback is writer-stamped, so the torn-
      // read canary still holds on this path).
      advice = snap->fallback;
      degraded = true;
    } else {
      advice = entry->advice;
    }
  } else {
    advice = snap->fallback;
  }
  advice.generation = snap->generation;
  advice.degraded = degraded;
  slot_->pinned.store(nullptr, std::memory_order_release);
  slot_->lookups.fetch_add(1, std::memory_order_relaxed);
  if (degraded) slot_->degraded.fetch_add(1, std::memory_order_relaxed);
  return advice;
}

// --------------------------------------------------------------------------
// Introspection
// --------------------------------------------------------------------------

void AdvisorService::sum_lookup_counters(std::uint64_t& lookups,
                                         std::uint64_t& degraded) const {
  for (const HazardSlot& slot : slots_) {
    lookups += slot.lookups.load(std::memory_order_relaxed);
    degraded += slot.degraded.load(std::memory_order_relaxed);
  }
}

AdvisorStats AdvisorService::stats() const {
  const core::MutexLock lock(mu_);
  AdvisorStats s;
  s.generation = generation_;
  s.swaps = swaps_;
  s.observations = observations_;
  s.pending = pending_;
  s.staleness_last = staleness_last_;
  s.staleness_max = staleness_max_;
  s.keys = keys_.size();
  s.readers = readers_.load(std::memory_order_seq_cst);
  sum_lookup_counters(s.lookups, s.degraded);
  return s;
}

AdvisorHealth AdvisorService::health() const {
  const core::MutexLock lock(mu_);
  AdvisorHealth h;
  h.generation = generation_;
  h.backlog = pending_;
  // Swaps happen under mu_, so the loaded pointer stays live while held.
  const AdvisorSnapshot* snap = current_.load(std::memory_order_seq_cst);
  h.keys = snap->entries.size();
  for (const AdvisorEntry& e : snap->entries) {
    h.max_entry_age =
        std::max(h.max_entry_age, snap->generation - e.advice.entry_generation);
  }
  sum_lookup_counters(h.lookups, h.degraded);
  if (h.lookups > 0) {
    h.degraded_rate =
        static_cast<double>(h.degraded) / static_cast<double>(h.lookups);
  }
  return h;
}

void AdvisorService::dump_json(std::ostream& os) const {
  const core::MutexLock lock(mu_);
  // Swaps happen under mu_, so the loaded pointer stays live while held.
  current_.load(std::memory_order_seq_cst)->write_json(os);
}

// --------------------------------------------------------------------------
// Crash-restart recovery
// --------------------------------------------------------------------------

void AdvisorService::save_snapshot_file(const std::string& path) const {
  // Serialize first (dump_json takes the lock), then write temp + rename
  // so a crash mid-save can never leave a half-written recovery file.
  std::ostringstream text;
  dump_json(text);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << text.str();
    out.flush();
    if (!out) {
      throw RecoveryError("failed to write recovery snapshot '" + tmp + "'");
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw RecoveryError("failed to publish recovery snapshot '" + path +
                        "': " + ec.message());
  }
}

void AdvisorService::warm_start(std::istream& is, const std::string& origin) {
  std::ostringstream buf;
  buf << is.rdbuf();
  if (is.bad()) {
    throw RecoveryError(origin + ": unreadable recovery dump");
  }
  const std::string text = buf.str();

  // Parse and extract with the strict JSON-subset machinery; its errors
  // (CheckpointError) are re-thrown as RecoveryError so callers can tell
  // a bad recovery dump from a bad campaign checkpoint.
  struct ParsedEntry {
    AdvisorKey key;
    Advice advice;  // payload fields only
    std::uint64_t observations = 0;
    std::uint64_t refits = 0;
    double drift_statistic = 0.0;
    double outlier_ratio = 0.0;
  };
  double fallback_t_inf = 0.0;
  std::uint64_t total_observations = 0;
  std::vector<ParsedEntry> parsed;
  try {
    using exp::detail::get_bool;
    using exp::detail::get_key;
    using exp::detail::get_number;
    using exp::detail::get_string;
    using exp::detail::get_uint;
    using exp::detail::JsonParser;
    using exp::detail::JsonValue;
    const JsonValue root = JsonParser(text, origin).parse();
    const JsonValue& advisor = get_key(root, "advisor", origin);
    fallback_t_inf = get_number(advisor, "fallback_t_inf", origin);
    total_observations = get_uint(advisor, "observations", origin);
    const JsonValue& keys = get_key(advisor, "keys", origin);
    if (keys.kind != JsonValue::Kind::kArray) {
      throw RecoveryError(origin + ": key \"keys\" is not an array");
    }
    parsed.reserve(keys.array.size());
    for (const JsonValue& k : keys.array) {
      if (k.kind != JsonValue::Kind::kObject) {
        throw RecoveryError(origin + ": non-object entry in \"keys\"");
      }
      ParsedEntry e;
      e.key.vo = get_string(k, "vo", origin);
      e.key.site = get_string(k, "site", origin);
      e.key.user_class = get_string(k, "user_class", origin);
      e.advice.ready = get_bool(k, "ready", origin);
      e.advice.drifted = get_bool(k, "drifted", origin);
      e.observations = get_uint(k, "observations", origin);
      e.refits = get_uint(k, "refits", origin);
      e.drift_statistic = get_number(k, "drift_statistic", origin);
      e.outlier_ratio = get_number(k, "outlier_ratio", origin);
      if (!core::strategy_kind_from_string(get_string(k, "kind", origin),
                                           e.advice.kind)) {
        throw RecoveryError(origin + ": unknown strategy kind");
      }
      e.advice.t0 = get_number(k, "t0", origin);
      e.advice.t_inf = get_number(k, "t_inf", origin);
      e.advice.b = static_cast<int>(get_uint(k, "b", origin));
      e.advice.expectation = get_number(k, "expectation", origin);
      e.advice.delta_cost = get_number(k, "delta_cost", origin);
      if (!parsed.empty() && !(parsed.back().key < e.key)) {
        throw RecoveryError(origin + ": entries not strictly key-sorted");
      }
      parsed.push_back(std::move(e));
    }
  } catch (const exp::CheckpointError& err) {
    throw RecoveryError(err.what());
  }
  if (fallback_t_inf != config_.fallback_t_inf) {
    throw RecoveryError(origin +
                        ": fallback_t_inf disagrees with this service's "
                        "config — refusing to mix recovery state");
  }

  // Publish as generation 1 on a virgin service: the recovered entries
  // must be the *only* state, or determinism of the re-dump is gone.
  const std::uint64_t gen = 1;
  auto snap = std::make_unique<AdvisorSnapshot>();
  snap->generation = gen;
  snap->observations = total_observations;
  snap->fallback.t_inf = config_.fallback_t_inf;
  snap->fallback.generation = gen;
  snap->fallback.stamp = advice_stamp(snap->fallback);
  snap->entries.reserve(parsed.size());

  const AdvisorSnapshot* raw = snap.get();
  {
    const core::MutexLock lock(mu_);
    if (generation_ != 0 || !keys_.empty() || observations_ != 0 ||
        pending_ != 0) {
      throw RecoveryError(origin +
                          ": warm_start on a service that already holds "
                          "state (must be virgin)");
    }
    for (ParsedEntry& p : parsed) {
      AdvisorEntry e;
      e.key = p.key;
      e.observations = p.observations;
      e.refits = p.refits;
      e.drift_statistic = p.drift_statistic;
      e.outlier_ratio = p.outlier_ratio;
      Advice a = p.advice;
      a.generation = gen;
      a.entry_generation = gen;
      a.stamp = advice_stamp(a);
      e.advice = a;

      KeyState state(config_.planner);
      state.observations = p.observations;
      state.changed_generation = gen;
      state.dirty = false;
      state.warm = true;
      state.warm_advice = p.advice;
      state.warm_refits = p.refits;
      state.warm_drift_statistic = p.drift_statistic;
      state.warm_outlier_ratio = p.outlier_ratio;
      keys_.emplace(std::move(p.key), std::move(state));

      snap->entries.push_back(std::move(e));
    }
    observations_ = total_observations;
    generation_ = gen;
    ++swaps_;
    owned_.push_back(std::move(snap));
    current_.store(raw, std::memory_order_seq_cst);
    reclaim_retired();
  }
}

void AdvisorService::warm_start_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw RecoveryError("cannot open recovery snapshot '" + path + "'");
  }
  warm_start(in, path);
}

}  // namespace gridsub::serve
