#pragma once

// Wire-format-agnostic request loop for the advisor service.
//
// The service's network story is deliberately split in two: RequestLoop
// owns the serve loop (drain requests, call the service, push responses)
// while Transport owns how request/response structs move — an in-process
// queue for tests and benches today, a socket or RPC binding tomorrow.
// Nothing in the loop knows about bytes on a wire, so every test and
// bench drives the *real* serving path without opening a socket.
//
// InProcessTransport is a bounded MPMC queue pair (requests in, responses
// out) guarded by one annotated mutex; multiple client threads may post
// concurrently and multiple RequestLoops may serve the same transport.
// close() unblocks everyone: posters see std::runtime_error, loops and
// reply-takers drain what is left and stop.

#include <atomic>
#include <cstdint>
#include <deque>
#include <thread>

#include "core/thread_annotations.hpp"
#include "serve/advisor.hpp"

namespace gridsub::serve {

struct AdvisorRequest {
  enum class Type {
    kAdvise,  ///< look up the key's current recommendation
    kStats,   ///< serving metadata (generation, staleness, key count)
  };
  Type type = Type::kAdvise;
  std::uint64_t id = 0;  ///< echoed into the response, caller-chosen
  AdvisorKey key;        ///< kAdvise only
};

struct AdvisorResponse {
  std::uint64_t id = 0;
  AdvisorRequest::Type type = AdvisorRequest::Type::kAdvise;
  Advice advice;       ///< kAdvise
  AdvisorStats stats;  ///< kStats
};

/// How requests and responses move. Implementations must be safe for
/// concurrent next()/reply() from several serving threads.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Blocks for the next request; false = transport closed and drained
  /// (the serve loop exits).
  virtual bool next(AdvisorRequest& out) = 0;

  /// Delivers one response.
  virtual void reply(const AdvisorResponse& response) = 0;
};

/// In-process Transport: the client half (post / take_reply / close) is
/// what tests and benches call; the Transport half is what RequestLoop
/// drains. Bounded: post() blocks once `capacity` requests are queued.
class InProcessTransport final : public Transport {
 public:
  explicit InProcessTransport(std::size_t capacity = 1024);

  // Client side.
  void post(AdvisorRequest request) GRIDSUB_EXCLUDES(mu_);
  /// Blocks for the next response; false = closed and fully drained.
  bool take_reply(AdvisorResponse& out) GRIDSUB_EXCLUDES(mu_);
  /// Idempotent; unblocks every waiter. Queued requests still get served.
  void close() GRIDSUB_EXCLUDES(mu_);

  // Transport side. Also called without mu_ held; the GRIDSUB_EXCLUDES
  // attribute cannot sit next to `override` syntactically, so the lock
  // discipline here is covered by the GUARDED_BY members alone.
  bool next(AdvisorRequest& out) override;
  void reply(const AdvisorResponse& response) override;

 private:
  mutable core::Mutex mu_;
  std::deque<AdvisorRequest> requests_ GRIDSUB_GUARDED_BY(mu_);
  std::deque<AdvisorResponse> responses_ GRIDSUB_GUARDED_BY(mu_);
  bool closed_ GRIDSUB_GUARDED_BY(mu_) = false;
  const std::size_t capacity_;
  core::CondVar request_ready_;
  core::CondVar response_ready_;
  core::CondVar space_free_;
};

/// Serves one AdvisorService over one Transport. The loop registers its
/// own lock-free Reader, so advise requests never touch the ingest mutex.
/// Several RequestLoops may share a Transport for multi-worker serving.
class RequestLoop {
 public:
  RequestLoop(AdvisorService& service, Transport& transport);

  RequestLoop(const RequestLoop&) = delete;
  RequestLoop& operator=(const RequestLoop&) = delete;

  /// Joins the serving thread if start() was used (the transport must
  /// already be closed, or the destructor would block forever — close
  /// first, as the tests do).
  ~RequestLoop();

  /// Serves on the calling thread until the transport closes.
  void run();

  /// Spawns a serving thread running run(). Call at most once.
  void start();

  /// Joins the serving thread started by start().
  void join();

  /// Requests answered so far.
  [[nodiscard]] std::uint64_t served() const {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  AdvisorService& service_;
  Transport& transport_;
  AdvisorService::Reader reader_;
  std::thread thread_;
  std::atomic<std::uint64_t> served_{0};
};

}  // namespace gridsub::serve
