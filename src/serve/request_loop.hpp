#pragma once

// Wire-format-agnostic request loop for the advisor service.
//
// The service's network story is deliberately split in two: RequestLoop
// owns the serve loop (drain requests, call the service, push responses)
// while Transport owns how request/response structs move — an in-process
// queue for tests and benches today, a socket or RPC binding tomorrow.
// Nothing in the loop knows about bytes on a wire, so every test and
// bench drives the *real* serving path without opening a socket.
//
// Failure semantics (docs/robustness.md):
//   * every response carries a ResponseStatus — the error taxonomy a
//     client sees instead of a hang or a silent wrong answer;
//   * requests may carry a deadline (a queue-age bound); the loop fails
//     them fast with kDeadlineExceeded instead of serving stale work;
//   * reply() may fail transiently; the loop retries a bounded number of
//     times with deterministic yield-doubling backoff, then abandons the
//     request so the transport's in-flight accounting still drains.
//
// InProcessTransport is a bounded MPMC queue pair (requests in, responses
// out) guarded by one annotated mutex; multiple client threads may post
// concurrently and multiple RequestLoops may serve the same transport.
// close() unblocks everyone: posters see std::runtime_error, loops and
// reply-takers drain what is left and stop. The shutdown contract is
// exact: take_reply() keeps returning responses until every request
// accepted before close() — queued *or* in flight — has been replied to
// or abandoned, then returns false. No lost replies, no hang.

#include <atomic>
#include <cstdint>
#include <deque>
#include <string_view>
#include <thread>

#include "core/thread_annotations.hpp"
#include "serve/advisor.hpp"

namespace gridsub::serve {

/// What happened to a request, surfaced in its response. The taxonomy is
/// ordered from healthy to broken; anything past kOk is countable
/// client-side without string matching.
enum class ResponseStatus : std::uint8_t {
  kOk = 0,             ///< fresh advice (or stats) served normally
  kDegraded = 1,       ///< served the documented fallback, not fitted state
  kDeadlineExceeded = 2,  ///< queue age exceeded the request's deadline
  kInternalError = 3,  ///< the service threw; response carries no payload
};

[[nodiscard]] constexpr std::string_view to_string(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk:
      return "ok";
    case ResponseStatus::kDegraded:
      return "degraded";
    case ResponseStatus::kDeadlineExceeded:
      return "deadline-exceeded";
    case ResponseStatus::kInternalError:
      return "internal-error";
  }
  return "unknown";
}

struct AdvisorRequest {
  enum class Type {
    kAdvise,  ///< look up the key's current recommendation
    kStats,   ///< serving metadata (generation, staleness, key count)
  };
  Type type = Type::kAdvise;
  std::uint64_t id = 0;  ///< echoed into the response, caller-chosen
  AdvisorKey key;        ///< kAdvise only
  /// Deadline as a queue-age bound, in transport hops (0 = none). The
  /// loop refuses the request with kDeadlineExceeded once queue_age
  /// exceeds this — logical time, not wall time, so deadline behaviour
  /// is deterministic under the fault harness.
  std::uint32_t deadline = 0;
  /// Hops this request has aged in transit; stamped by the transport
  /// (the in-process queue delivers at age 0, the fault injector's delay
  /// fault adds its deferral distance).
  std::uint32_t queue_age = 0;
};

struct AdvisorResponse {
  std::uint64_t id = 0;
  AdvisorRequest::Type type = AdvisorRequest::Type::kAdvise;
  ResponseStatus status = ResponseStatus::kOk;
  Advice advice;       ///< kAdvise
  AdvisorStats stats;  ///< kStats
};

/// How requests and responses move. Implementations must be safe for
/// concurrent next()/reply()/abandon() from several serving threads.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Blocks for the next request; false = transport closed and drained
  /// (the serve loop exits).
  virtual bool next(AdvisorRequest& out) = 0;

  /// Delivers one response. False = transient delivery failure: the
  /// response did NOT land and the caller may retry; the request is
  /// still accounted in flight. (The in-process queue never fails;
  /// fault-injecting wrappers do.)
  [[nodiscard]] virtual bool reply(const AdvisorResponse& response) = 0;

  /// Tells the transport one in-flight request will never be replied to
  /// (retries exhausted, or a fault wrapper dropped it). Keeps shutdown
  /// draining exact.
  virtual void abandon() {}

  /// Tells the transport one extra reply is coming for a request it
  /// handed out (a fault wrapper duplicated it).
  virtual void expect_duplicate() {}
};

/// In-process Transport: the client half (post / take_reply / close) is
/// what tests and benches call; the Transport half is what RequestLoop
/// drains. Bounded: post() blocks once `capacity` requests are queued.
class InProcessTransport final : public Transport {
 public:
  explicit InProcessTransport(std::size_t capacity = 1024);

  // Client side.
  void post(AdvisorRequest request) GRIDSUB_EXCLUDES(mu_);
  /// Blocks for the next response; false = closed and fully drained:
  /// every accepted request has been replied to or abandoned.
  bool take_reply(AdvisorResponse& out) GRIDSUB_EXCLUDES(mu_);
  /// Idempotent; unblocks every waiter. Requests already accepted —
  /// queued or handed to a serve loop — still get served and their
  /// replies still arrive; only *new* posts are refused.
  void close() GRIDSUB_EXCLUDES(mu_);

  // Transport side. Also called without mu_ held; the GRIDSUB_EXCLUDES
  // attribute cannot sit next to `override` syntactically, so the lock
  // discipline here is covered by the GUARDED_BY members alone.
  bool next(AdvisorRequest& out) override;
  [[nodiscard]] bool reply(const AdvisorResponse& response) override;
  void abandon() override;
  void expect_duplicate() override;

 private:
  mutable core::Mutex mu_;
  std::deque<AdvisorRequest> requests_ GRIDSUB_GUARDED_BY(mu_);
  std::deque<AdvisorResponse> responses_ GRIDSUB_GUARDED_BY(mu_);
  bool closed_ GRIDSUB_GUARDED_BY(mu_) = false;
  /// Requests handed out by next() whose reply/abandon has not arrived.
  std::size_t in_flight_ GRIDSUB_GUARDED_BY(mu_) = 0;
  const std::size_t capacity_;
  core::CondVar request_ready_;
  core::CondVar response_ready_;
  core::CondVar space_free_;
};

/// Serving knobs; all defaults preserve pre-fault-harness behaviour.
struct RequestLoopOptions {
  /// Delivery attempts per response before the loop abandons the
  /// request (counted in lost_replies()).
  std::uint32_t max_reply_attempts = 4;
};

/// Serves one AdvisorService over one Transport. The loop registers its
/// own lock-free Reader, so advise requests never touch the ingest mutex.
/// Several RequestLoops may share a Transport for multi-worker serving.
class RequestLoop {
 public:
  RequestLoop(AdvisorService& service, Transport& transport,
              RequestLoopOptions options = {});

  RequestLoop(const RequestLoop&) = delete;
  RequestLoop& operator=(const RequestLoop&) = delete;

  /// Joins the serving thread if start() was used (the transport must
  /// already be closed, or the destructor would block forever — close
  /// first, as the tests do).
  ~RequestLoop();

  /// Serves on the calling thread until the transport closes.
  void run();

  /// Spawns a serving thread running run(). Call at most once.
  void start();

  /// Joins the serving thread started by start().
  void join();

  /// Requests answered so far (any status).
  [[nodiscard]] std::uint64_t served() const {
    return served_.load(std::memory_order_relaxed);
  }
  /// Responses that carried kDegraded.
  [[nodiscard]] std::uint64_t degraded() const {
    return degraded_.load(std::memory_order_relaxed);
  }
  /// Responses that carried kDeadlineExceeded.
  [[nodiscard]] std::uint64_t deadline_expired() const {
    return deadline_expired_.load(std::memory_order_relaxed);
  }
  /// Responses that carried kInternalError.
  [[nodiscard]] std::uint64_t internal_errors() const {
    return internal_errors_.load(std::memory_order_relaxed);
  }
  /// Transient reply failures that were retried (not necessarily lost).
  [[nodiscard]] std::uint64_t reply_retries() const {
    return reply_retries_.load(std::memory_order_relaxed);
  }
  /// Requests abandoned after max_reply_attempts failed deliveries.
  [[nodiscard]] std::uint64_t lost_replies() const {
    return lost_replies_.load(std::memory_order_relaxed);
  }

 private:
  AdvisorService& service_;
  Transport& transport_;
  RequestLoopOptions options_;
  AdvisorService::Reader reader_;
  std::thread thread_;
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> deadline_expired_{0};
  std::atomic<std::uint64_t> internal_errors_{0};
  std::atomic<std::uint64_t> reply_retries_{0};
  std::atomic<std::uint64_t> lost_replies_{0};
};

}  // namespace gridsub::serve
