#include "serve/request_loop.hpp"

#include <stdexcept>
#include <utility>

namespace gridsub::serve {

// --------------------------------------------------------------------------
// InProcessTransport
// --------------------------------------------------------------------------

InProcessTransport::InProcessTransport(std::size_t capacity)
    : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("InProcessTransport: capacity == 0");
  }
}

void InProcessTransport::post(AdvisorRequest request) {
  {
    const core::MutexLock lock(mu_);
    space_free_.wait(mu_, [this]() GRIDSUB_REQUIRES(mu_) {
      return closed_ || requests_.size() < capacity_;
    });
    if (closed_) {
      throw std::runtime_error("InProcessTransport: post after close");
    }
    requests_.push_back(std::move(request));
  }
  request_ready_.notify_one();
}

bool InProcessTransport::next(AdvisorRequest& out) {
  const core::MutexLock lock(mu_);
  request_ready_.wait(mu_, [this]() GRIDSUB_REQUIRES(mu_) {
    return closed_ || !requests_.empty();
  });
  if (requests_.empty()) return false;  // closed and drained
  out = std::move(requests_.front());
  requests_.pop_front();
  space_free_.notify_one();
  return true;
}

void InProcessTransport::reply(const AdvisorResponse& response) {
  {
    const core::MutexLock lock(mu_);
    responses_.push_back(response);
  }
  response_ready_.notify_one();
}

bool InProcessTransport::take_reply(AdvisorResponse& out) {
  const core::MutexLock lock(mu_);
  response_ready_.wait(mu_, [this]() GRIDSUB_REQUIRES(mu_) {
    return closed_ || !responses_.empty();
  });
  if (responses_.empty()) return false;  // closed and drained
  out = responses_.front();
  responses_.pop_front();
  return true;
}

void InProcessTransport::close() {
  {
    const core::MutexLock lock(mu_);
    closed_ = true;
  }
  request_ready_.notify_all();
  response_ready_.notify_all();
  space_free_.notify_all();
}

// --------------------------------------------------------------------------
// RequestLoop
// --------------------------------------------------------------------------

RequestLoop::RequestLoop(AdvisorService& service, Transport& transport)
    : service_(service), transport_(transport), reader_(service) {}

RequestLoop::~RequestLoop() { join(); }

void RequestLoop::run() {
  AdvisorRequest request;
  while (transport_.next(request)) {
    AdvisorResponse response;
    response.id = request.id;
    response.type = request.type;
    switch (request.type) {
      case AdvisorRequest::Type::kAdvise:
        response.advice = reader_.advise(request.key);
        break;
      case AdvisorRequest::Type::kStats:
        response.stats = service_.stats();
        break;
    }
    transport_.reply(response);
    served_.fetch_add(1, std::memory_order_relaxed);
  }
}

void RequestLoop::start() {
  if (thread_.joinable()) {
    throw std::logic_error("RequestLoop: start() called twice");
  }
  thread_ = std::thread([this] { run(); });
}

void RequestLoop::join() {
  if (thread_.joinable()) thread_.join();
}

}  // namespace gridsub::serve
