#include "serve/request_loop.hpp"

#include <exception>
#include <stdexcept>
#include <utility>

namespace gridsub::serve {

// --------------------------------------------------------------------------
// InProcessTransport
// --------------------------------------------------------------------------

InProcessTransport::InProcessTransport(std::size_t capacity)
    : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("InProcessTransport: capacity == 0");
  }
}

void InProcessTransport::post(AdvisorRequest request) {
  {
    const core::MutexLock lock(mu_);
    space_free_.wait(mu_, [this]() GRIDSUB_REQUIRES(mu_) {
      return closed_ || requests_.size() < capacity_;
    });
    if (closed_) {
      throw std::runtime_error("InProcessTransport: post after close");
    }
    requests_.push_back(std::move(request));
  }
  request_ready_.notify_one();
}

bool InProcessTransport::next(AdvisorRequest& out) {
  const core::MutexLock lock(mu_);
  request_ready_.wait(mu_, [this]() GRIDSUB_REQUIRES(mu_) {
    return closed_ || !requests_.empty();
  });
  if (requests_.empty()) return false;  // closed and drained
  out = std::move(requests_.front());
  requests_.pop_front();
  ++in_flight_;  // the shutdown drain waits for this request's outcome
  space_free_.notify_one();
  return true;
}

bool InProcessTransport::reply(const AdvisorResponse& response) {
  {
    const core::MutexLock lock(mu_);
    responses_.push_back(response);
    if (in_flight_ > 0) --in_flight_;
  }
  response_ready_.notify_one();
  return true;  // the in-process queue never fails delivery
}

void InProcessTransport::abandon() {
  {
    const core::MutexLock lock(mu_);
    if (in_flight_ > 0) --in_flight_;
  }
  // An abandoned request may be the last thing a drain was waiting on.
  response_ready_.notify_all();
}

void InProcessTransport::expect_duplicate() {
  const core::MutexLock lock(mu_);
  ++in_flight_;
}

bool InProcessTransport::take_reply(AdvisorResponse& out) {
  const core::MutexLock lock(mu_);
  response_ready_.wait(mu_, [this]() GRIDSUB_REQUIRES(mu_) {
    // After close(), keep blocking while accepted requests are still
    // queued or in flight: their replies are coming. Returning false
    // earlier would lose them (the pre-PR-10 bug).
    return !responses_.empty() ||
           (closed_ && requests_.empty() && in_flight_ == 0);
  });
  if (responses_.empty()) return false;  // closed and fully drained
  out = responses_.front();
  responses_.pop_front();
  return true;
}

void InProcessTransport::close() {
  {
    const core::MutexLock lock(mu_);
    closed_ = true;
  }
  request_ready_.notify_all();
  response_ready_.notify_all();
  space_free_.notify_all();
}

// --------------------------------------------------------------------------
// RequestLoop
// --------------------------------------------------------------------------

RequestLoop::RequestLoop(AdvisorService& service, Transport& transport,
                         RequestLoopOptions options)
    : service_(service),
      transport_(transport),
      options_(options),
      reader_(service) {
  if (options_.max_reply_attempts == 0) {
    throw std::invalid_argument("RequestLoop: max_reply_attempts == 0");
  }
}

RequestLoop::~RequestLoop() { join(); }

void RequestLoop::run() {
  AdvisorRequest request;
  while (transport_.next(request)) {
    AdvisorResponse response;
    response.id = request.id;
    response.type = request.type;
    if (request.deadline != 0 && request.queue_age > request.deadline) {
      // Fail fast: stale work is refused before any lookup happens.
      response.status = ResponseStatus::kDeadlineExceeded;
      deadline_expired_.fetch_add(1, std::memory_order_relaxed);
    } else {
      try {
        switch (request.type) {
          case AdvisorRequest::Type::kAdvise:
            response.advice = reader_.advise(request.key);
            if (response.advice.degraded) {
              response.status = ResponseStatus::kDegraded;
              degraded_.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          case AdvisorRequest::Type::kStats:
            response.stats = service_.stats();
            break;
        }
      } catch (const std::exception&) {
        // The client gets a typed failure, never a vanished request.
        response.status = ResponseStatus::kInternalError;
        internal_errors_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    bool delivered = false;
    for (std::uint32_t attempt = 0; attempt < options_.max_reply_attempts;
         ++attempt) {
      if (attempt > 0) {
        // Deterministic backoff: double the yield count each retry. No
        // clock — logical pacing only, so fault runs replay exactly.
        reply_retries_.fetch_add(1, std::memory_order_relaxed);
        for (std::uint32_t spin = 0; spin < (1u << attempt); ++spin) {
          std::this_thread::yield();
        }
      }
      if (transport_.reply(response)) {
        delivered = true;
        break;
      }
    }
    if (delivered) {
      served_.fetch_add(1, std::memory_order_relaxed);
    } else {
      lost_replies_.fetch_add(1, std::memory_order_relaxed);
      transport_.abandon();
    }
  }
}

void RequestLoop::start() {
  if (thread_.joinable()) {
    throw std::logic_error("RequestLoop: start() called twice");
  }
  thread_ = std::thread([this] { run(); });
}

void RequestLoop::join() {
  if (thread_.joinable()) thread_.join();
}

}  // namespace gridsub::serve
