#include "numerics/integration.hpp"

#include <cmath>
#include <stdexcept>

#include "numerics/kahan.hpp"

namespace gridsub::numerics {

double trapezoid(const std::function<double(double)>& f, double a, double b,
                 std::size_t n) {
  if (n < 1) throw std::invalid_argument("trapezoid: n must be >= 1");
  if (b < a) throw std::invalid_argument("trapezoid: requires b >= a");
  if (a == b) return 0.0;
  const double h = (b - a) / static_cast<double>(n);
  KahanAccumulator acc(0.5 * (f(a) + f(b)));
  for (std::size_t i = 1; i < n; ++i) {
    acc.add(f(a + static_cast<double>(i) * h));
  }
  return acc.value() * h;
}

double trapezoid_tabulated(std::span<const double> y, double dx) {
  if (y.size() < 2) {
    throw std::invalid_argument("trapezoid_tabulated: need >= 2 samples");
  }
  if (!(dx > 0.0)) {
    throw std::invalid_argument("trapezoid_tabulated: dx must be > 0");
  }
  KahanAccumulator acc(0.5 * (y.front() + y.back()));
  for (std::size_t i = 1; i + 1 < y.size(); ++i) acc.add(y[i]);
  return acc.value() * dx;
}

double simpson(const std::function<double(double)>& f, double a, double b,
               std::size_t n) {
  if (n < 2) n = 2;
  if (n % 2 != 0) ++n;
  if (b < a) throw std::invalid_argument("simpson: requires b >= a");
  if (a == b) return 0.0;
  const double h = (b - a) / static_cast<double>(n);
  KahanAccumulator acc(f(a) + f(b));
  for (std::size_t i = 1; i < n; ++i) {
    const double x = a + static_cast<double>(i) * h;
    acc.add((i % 2 == 1 ? 4.0 : 2.0) * f(x));
  }
  return acc.value() * h / 3.0;
}

namespace {

double adaptive_simpson_impl(const std::function<double(double)>& f, double a,
                             double b, double fa, double fm, double fb,
                             double whole, double tol, int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double h = b - a;
  const double left = (h / 12.0) * (fa + 4.0 * flm + fm);
  const double right = (h / 12.0) * (fm + 4.0 * frm + fb);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return adaptive_simpson_impl(f, a, m, fa, flm, fm, left, 0.5 * tol,
                               depth - 1) +
         adaptive_simpson_impl(f, m, b, fm, frm, fb, right, 0.5 * tol,
                               depth - 1);
}

}  // namespace

double adaptive_simpson(const std::function<double(double)>& f, double a,
                        double b, double tol, int max_depth) {
  if (b < a) throw std::invalid_argument("adaptive_simpson: requires b >= a");
  if (a == b) return 0.0;
  const double m = 0.5 * (a + b);
  const double fa = f(a);
  const double fm = f(m);
  const double fb = f(b);
  const double whole = ((b - a) / 6.0) * (fa + 4.0 * fm + fb);
  return adaptive_simpson_impl(f, a, b, fa, fm, fb, whole, tol, max_depth);
}

std::vector<double> cumulative_trapezoid(std::span<const double> y,
                                         double dx) {
  std::vector<double> out;
  cumulative_trapezoid(y, dx, out);
  return out;
}

void cumulative_trapezoid(std::span<const double> y, double dx,
                          std::vector<double>& out) {
  if (y.empty()) {
    throw std::invalid_argument("cumulative_trapezoid: empty input");
  }
  if (!(dx > 0.0)) {
    throw std::invalid_argument("cumulative_trapezoid: dx must be > 0");
  }
  out.resize(y.size());
  out[0] = 0.0;
  KahanAccumulator acc;
  for (std::size_t i = 1; i < y.size(); ++i) {
    acc.add(0.5 * dx * (y[i - 1] + y[i]));
    out[i] = acc.value();
  }
}

}  // namespace gridsub::numerics
