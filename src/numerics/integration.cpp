#include "numerics/integration.hpp"

#include <cmath>
#include <stdexcept>

#include "numerics/kahan.hpp"

namespace gridsub::numerics {

double trapezoid(const std::function<double(double)>& f, double a, double b,
                 std::size_t n) {
  return detail::trapezoid_impl(f, a, b, n);
}

double trapezoid_tabulated(std::span<const double> y, double dx) {
  if (y.size() < 2) {
    throw std::invalid_argument("trapezoid_tabulated: need >= 2 samples");
  }
  if (!(dx > 0.0)) {
    throw std::invalid_argument("trapezoid_tabulated: dx must be > 0");
  }
  KahanAccumulator acc(0.5 * (y.front() + y.back()));
  for (std::size_t i = 1; i + 1 < y.size(); ++i) acc.add(y[i]);
  return acc.value() * dx;
}

double simpson(const std::function<double(double)>& f, double a, double b,
               std::size_t n) {
  return detail::simpson_impl(f, a, b, n);
}

double adaptive_simpson(const std::function<double(double)>& f, double a,
                        double b, double tol, int max_depth) {
  return detail::adaptive_simpson_impl(f, a, b, tol, max_depth);
}

std::vector<double> cumulative_trapezoid(std::span<const double> y,
                                         double dx) {
  std::vector<double> out;
  cumulative_trapezoid(y, dx, out);
  return out;
}

void cumulative_trapezoid(std::span<const double> y, double dx,
                          std::vector<double>& out) {
  if (y.empty()) {
    throw std::invalid_argument("cumulative_trapezoid: empty input");
  }
  if (!(dx > 0.0)) {
    throw std::invalid_argument("cumulative_trapezoid: dx must be > 0");
  }
  out.resize(y.size());
  out[0] = 0.0;
  KahanAccumulator acc;
  for (std::size_t i = 1; i < y.size(); ++i) {
    acc.add(0.5 * dx * (y[i - 1] + y[i]));
    out[i] = acc.value();
  }
}

}  // namespace gridsub::numerics
