#pragma once

// Two-dimensional minimization for the delayed-resubmission model.
//
// E_J(t0, t∞) must be minimized over the triangular feasible region
// 0 < t0 < t∞ < 2·t0 (paper §6), possibly with the ratio t∞/t0 fixed
// (paper §6.2) — the ratio-constrained case reduces to 1D and is handled in
// core/. The free 2D case uses a feasibility-masked grid scan followed by
// Nelder-Mead refinement with constraint penalties.

#include <array>
#include <functional>

namespace gridsub::numerics {

/// Result of a 2D minimization.
struct MinResult2D {
  double x = 0.0;
  double y = 0.0;
  double value = 0.0;
  int evaluations = 0;
};

/// Nelder-Mead simplex minimization started from `start` with initial step
/// sizes `step`. The objective may return +inf outside its feasible region
/// (the simplex contracts away from infeasible vertices).
MinResult2D nelder_mead(
    const std::function<double(double, double)>& f,
    std::array<double, 2> start, std::array<double, 2> step,
    double ftol = 1e-9, int max_iter = 2000);

/// Dense grid scan over [x_lo,x_hi] x [y_lo,y_hi] (nx x ny points) followed
/// by Nelder-Mead refinement from the best grid point. Infeasible points may
/// be signalled by the objective returning +inf.
MinResult2D grid_then_nelder_mead(
    const std::function<double(double, double)>& f, double x_lo, double x_hi,
    double y_lo, double y_hi, std::size_t nx, std::size_t ny,
    double ftol = 1e-9);

}  // namespace gridsub::numerics
