#include "numerics/interpolation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gridsub::numerics {

UniformGridInterpolant::UniformGridInterpolant(double x0, double dx,
                                               std::vector<double> y)
    : x0_(x0), dx_(dx), y_(std::move(y)) {
  if (y_.size() < 2) {
    throw std::invalid_argument("UniformGridInterpolant: need >= 2 samples");
  }
  if (!(dx_ > 0.0)) {
    throw std::invalid_argument("UniformGridInterpolant: dx must be > 0");
  }
}

double UniformGridInterpolant::x_max() const {
  return x0_ + dx_ * static_cast<double>(y_.size() - 1);
}

double UniformGridInterpolant::operator()(double x) const {
  if (y_.empty()) throw std::logic_error("UniformGridInterpolant: empty");
  const double s = (x - x0_) / dx_;
  if (s <= 0.0) return y_.front();
  const auto last = static_cast<double>(y_.size() - 1);
  if (s >= last) return y_.back();
  const auto i = static_cast<std::size_t>(s);
  const double frac = s - static_cast<double>(i);
  return y_[i] + frac * (y_[i + 1] - y_[i]);
}

double interp_sorted(std::span<const double> x, std::span<const double> y,
                     double xq) {
  if (x.size() != y.size() || x.size() < 1) {
    throw std::invalid_argument("interp_sorted: size mismatch or empty");
  }
  if (xq <= x.front()) return y.front();
  if (xq >= x.back()) return y.back();
  const auto it = std::upper_bound(x.begin(), x.end(), xq);
  const auto i = static_cast<std::size_t>(it - x.begin());
  const double x0 = x[i - 1];
  const double x1 = x[i];
  const double w = (x1 > x0) ? (xq - x0) / (x1 - x0) : 0.0;
  return y[i - 1] + w * (y[i] - y[i - 1]);
}

double inverse_monotone(double x0, double dx, std::span<const double> y,
                        double target) {
  if (y.size() < 2) throw std::invalid_argument("inverse_monotone: need >= 2");
  if (!(dx > 0.0)) throw std::invalid_argument("inverse_monotone: dx <= 0");
  if (target <= y.front()) return x0;
  const double x_end = x0 + dx * static_cast<double>(y.size() - 1);
  if (target >= y.back()) return x_end;
  const auto it = std::lower_bound(y.begin(), y.end(), target);
  const auto i = static_cast<std::size_t>(it - y.begin());
  // i >= 1 because target > y.front().
  const double y0 = y[i - 1];
  const double y1 = y[i];
  const double frac = (y1 > y0) ? (target - y0) / (y1 - y0) : 0.0;
  return x0 + dx * (static_cast<double>(i - 1) + frac);
}

}  // namespace gridsub::numerics
