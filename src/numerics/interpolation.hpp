#pragma once

// Interpolation on tabulated functions.
//
// DiscretizedLatencyModel caches F̃ and its prefix integrals on a uniform
// grid; evaluating E_J at arbitrary timeouts requires linear interpolation
// between grid nodes. A general sorted-abscissa interpolant is also provided
// for empirical CDF inversion.

#include <span>
#include <vector>

namespace gridsub::numerics {

/// Linear interpolation of samples y[i] = f(x0 + i*dx) on a uniform grid.
/// Values outside the grid clamp to the boundary samples.
class UniformGridInterpolant {
 public:
  UniformGridInterpolant() = default;

  /// Requires y.size() >= 2 and dx > 0.
  UniformGridInterpolant(double x0, double dx, std::vector<double> y);

  [[nodiscard]] double operator()(double x) const;

  [[nodiscard]] double x0() const { return x0_; }
  [[nodiscard]] double dx() const { return dx_; }
  [[nodiscard]] double x_max() const;
  [[nodiscard]] std::size_t size() const { return y_.size(); }
  [[nodiscard]] std::span<const double> samples() const { return y_; }

 private:
  double x0_ = 0.0;
  double dx_ = 1.0;
  std::vector<double> y_;
};

/// Piecewise-linear interpolation over sorted, strictly increasing
/// abscissae. Clamps outside [x.front(), x.back()].
double interp_sorted(std::span<const double> x, std::span<const double> y,
                     double xq);

/// Given a non-decreasing tabulation y over uniform grid x0 + i*dx, returns
/// the smallest x with y(x) >= target (linear interpolation between nodes);
/// clamps to the grid ends. Used for quantiles of discretized CDFs.
double inverse_monotone(double x0, double dx, std::span<const double> y,
                        double target);

}  // namespace gridsub::numerics
