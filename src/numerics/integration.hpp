#pragma once

// Quadrature routines used by the latency-model evaluators.
//
// The paper's expectation formulas (eqs. 1-5) are integral functionals of
// the defective latency CDF F̃_R. On empirical models F̃ is piecewise
// constant/linear, so composite trapezoid rules on uniform grids (with
// compensated summation) are both exact enough and fast; adaptive Simpson is
// provided for smooth parametric integrands and for cross-checking.
//
// The function-of-one-double routines are callable-generic templates:
// passing a lambda (or any callable) instantiates a direct-call kernel — no
// std::function construction, no type-erased indirection per sample, which
// matters when a tuning objective evaluates thousands of integrals per fit.
// Thin std::function overloads are kept as forwarders so existing callers
// (and out-of-line call sites that genuinely need type erasure) keep
// working unchanged.

#include <cmath>
#include <functional>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "numerics/kahan.hpp"

namespace gridsub::numerics {

namespace detail {

template <typename F>
double trapezoid_impl(F&& f, double a, double b, std::size_t n) {
  if (n < 1) throw std::invalid_argument("trapezoid: n must be >= 1");
  if (b < a) throw std::invalid_argument("trapezoid: requires b >= a");
  if (a == b) return 0.0;
  const double h = (b - a) / static_cast<double>(n);
  KahanAccumulator acc(0.5 * (f(a) + f(b)));
  for (std::size_t i = 1; i < n; ++i) {
    acc.add(f(a + static_cast<double>(i) * h));
  }
  return acc.value() * h;
}

template <typename F>
double simpson_impl(F&& f, double a, double b, std::size_t n) {
  if (n < 2) n = 2;
  if (n % 2 != 0) ++n;
  if (b < a) throw std::invalid_argument("simpson: requires b >= a");
  if (a == b) return 0.0;
  const double h = (b - a) / static_cast<double>(n);
  KahanAccumulator acc(f(a) + f(b));
  for (std::size_t i = 1; i < n; ++i) {
    const double x = a + static_cast<double>(i) * h;
    acc.add((i % 2 == 1 ? 4.0 : 2.0) * f(x));
  }
  return acc.value() * h / 3.0;
}

template <typename F>
double adaptive_simpson_step(F&& f, double a, double b, double fa, double fm,
                             double fb, double whole, double tol, int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double h = b - a;
  const double left = (h / 12.0) * (fa + 4.0 * flm + fm);
  const double right = (h / 12.0) * (fm + 4.0 * frm + fb);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return adaptive_simpson_step(f, a, m, fa, flm, fm, left, 0.5 * tol,
                               depth - 1) +
         adaptive_simpson_step(f, m, b, fm, frm, fb, right, 0.5 * tol,
                               depth - 1);
}

template <typename F>
double adaptive_simpson_impl(F&& f, double a, double b, double tol,
                             int max_depth) {
  if (b < a) throw std::invalid_argument("adaptive_simpson: requires b >= a");
  if (a == b) return 0.0;
  const double m = 0.5 * (a + b);
  const double fa = f(a);
  const double fm = f(m);
  const double fb = f(b);
  const double whole = ((b - a) / 6.0) * (fa + 4.0 * fm + fb);
  return adaptive_simpson_step(f, a, b, fa, fm, fb, whole, tol, max_depth);
}

}  // namespace detail

/// Composite trapezoid rule for a callable on [a, b] with n uniform
/// subintervals. Requires n >= 1 and b >= a.
template <typename F>
  requires std::is_invocable_r_v<double, F&, double>
double trapezoid(F&& f, double a, double b, std::size_t n) {
  return detail::trapezoid_impl(f, a, b, n);
}

/// Type-erased forwarder (prefer the template at new call sites).
double trapezoid(const std::function<double(double)>& f, double a, double b,
                 std::size_t n);

/// Trapezoid rule over tabulated samples y[i] = f(a + i*dx), i = 0..y.size()-1.
/// Requires y.size() >= 2 and dx > 0.
double trapezoid_tabulated(std::span<const double> y, double dx);

/// Composite Simpson rule (n is rounded up to the next even value).
template <typename F>
  requires std::is_invocable_r_v<double, F&, double>
double simpson(F&& f, double a, double b, std::size_t n) {
  return detail::simpson_impl(f, a, b, n);
}

/// Type-erased forwarder (prefer the template at new call sites).
double simpson(const std::function<double(double)>& f, double a, double b,
               std::size_t n);

/// Adaptive Simpson quadrature with absolute tolerance `tol` and a recursion
/// depth cap. Suitable for smooth integrands (parametric densities).
template <typename F>
  requires std::is_invocable_r_v<double, F&, double>
double adaptive_simpson(F&& f, double a, double b, double tol = 1e-9,
                        int max_depth = 30) {
  return detail::adaptive_simpson_impl(f, a, b, tol, max_depth);
}

/// Type-erased forwarder (prefer the template at new call sites).
double adaptive_simpson(const std::function<double(double)>& f, double a,
                        double b, double tol = 1e-9, int max_depth = 30);

/// Cumulative trapezoid integral of tabulated samples: returns c with
/// c[i] = integral of the linear interpolant of y over [0, i*dx];
/// c[0] = 0 and c.size() == y.size(). Uses compensated summation.
std::vector<double> cumulative_trapezoid(std::span<const double> y, double dx);

/// In-place variant writing into `out` (resized to y.size()).
void cumulative_trapezoid(std::span<const double> y, double dx,
                          std::vector<double>& out);

}  // namespace gridsub::numerics
