#pragma once

// Quadrature routines used by the latency-model evaluators.
//
// The paper's expectation formulas (eqs. 1-5) are integral functionals of
// the defective latency CDF F̃_R. On empirical models F̃ is piecewise
// constant/linear, so composite trapezoid rules on uniform grids (with
// compensated summation) are both exact enough and fast; adaptive Simpson is
// provided for smooth parametric integrands and for cross-checking.

#include <functional>
#include <span>
#include <vector>

namespace gridsub::numerics {

/// Composite trapezoid rule for a callable on [a, b] with n uniform
/// subintervals. Requires n >= 1 and b >= a.
double trapezoid(const std::function<double(double)>& f, double a, double b,
                 std::size_t n);

/// Trapezoid rule over tabulated samples y[i] = f(a + i*dx), i = 0..y.size()-1.
/// Requires y.size() >= 2 and dx > 0.
double trapezoid_tabulated(std::span<const double> y, double dx);

/// Composite Simpson rule (n is rounded up to the next even value).
double simpson(const std::function<double(double)>& f, double a, double b,
               std::size_t n);

/// Adaptive Simpson quadrature with absolute tolerance `tol` and a recursion
/// depth cap. Suitable for smooth integrands (parametric densities).
double adaptive_simpson(const std::function<double(double)>& f, double a,
                        double b, double tol = 1e-9, int max_depth = 30);

/// Cumulative trapezoid integral of tabulated samples: returns c with
/// c[i] = integral of the linear interpolant of y over [0, i*dx];
/// c[0] = 0 and c.size() == y.size(). Uses compensated summation.
std::vector<double> cumulative_trapezoid(std::span<const double> y, double dx);

/// In-place variant writing into `out` (resized to y.size()).
void cumulative_trapezoid(std::span<const double> y, double dx,
                          std::vector<double>& out);

}  // namespace gridsub::numerics
