#pragma once

// Scalar root finding, used by distribution quantile functions and by the
// truncated-moment calibration solver in stats/fit.

#include <functional>

namespace gridsub::numerics {

/// Result of a root search.
struct RootResult {
  double x = 0.0;
  double fx = 0.0;
  int evaluations = 0;
  bool converged = false;
};

/// Bisection on [a, b]; requires f(a) and f(b) to have opposite signs
/// (or one of them to be zero).
RootResult bisection(const std::function<double(double)>& f, double a,
                     double b, double xtol = 1e-10, int max_iter = 200);

/// Brent's root-finding method (inverse quadratic interpolation + secant +
/// bisection); same bracketing requirement as bisection, faster convergence.
RootResult brent_root(const std::function<double(double)>& f, double a,
                      double b, double xtol = 1e-12, int max_iter = 200);

/// Expands the interval [a, b] geometrically around its initial position
/// until f changes sign, then runs brent_root. Returns converged == false if
/// no sign change is found within `max_expansions`.
RootResult bracket_and_solve(const std::function<double(double)>& f, double a,
                             double b, int max_expansions = 60,
                             double xtol = 1e-12);

}  // namespace gridsub::numerics
