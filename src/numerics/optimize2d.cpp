#include "numerics/optimize2d.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace gridsub::numerics {

namespace {

struct Vertex {
  double x, y, f;
};

}  // namespace

MinResult2D nelder_mead(const std::function<double(double, double)>& f,
                        std::array<double, 2> start,
                        std::array<double, 2> step, double ftol,
                        int max_iter) {
  MinResult2D res;
  std::array<Vertex, 3> s{};
  s[0] = {start[0], start[1], f(start[0], start[1])};
  s[1] = {start[0] + step[0], start[1], f(start[0] + step[0], start[1])};
  s[2] = {start[0], start[1] + step[1], f(start[0], start[1] + step[1])};
  res.evaluations = 3;

  constexpr double alpha = 1.0;   // reflection
  constexpr double gamma = 2.0;   // expansion
  constexpr double rho = 0.5;     // contraction
  constexpr double sigma = 0.5;   // shrink

  for (int it = 0; it < max_iter; ++it) {
    std::sort(s.begin(), s.end(),
              [](const Vertex& a, const Vertex& b) { return a.f < b.f; });
    if (std::isfinite(s[2].f) &&
        std::abs(s[2].f - s[0].f) <=
            ftol * (std::abs(s[0].f) + std::abs(s[2].f) + 1e-30)) {
      break;
    }
    const double cx = 0.5 * (s[0].x + s[1].x);
    const double cy = 0.5 * (s[0].y + s[1].y);
    const double rx = cx + alpha * (cx - s[2].x);
    const double ry = cy + alpha * (cy - s[2].y);
    const double fr = f(rx, ry);
    ++res.evaluations;
    if (fr < s[0].f) {
      const double ex = cx + gamma * (rx - cx);
      const double ey = cy + gamma * (ry - cy);
      const double fe = f(ex, ey);
      ++res.evaluations;
      s[2] = (fe < fr) ? Vertex{ex, ey, fe} : Vertex{rx, ry, fr};
    } else if (fr < s[1].f) {
      s[2] = {rx, ry, fr};
    } else {
      const double kx = cx + rho * (s[2].x - cx);
      const double ky = cy + rho * (s[2].y - cy);
      const double fk = f(kx, ky);
      ++res.evaluations;
      if (fk < s[2].f) {
        s[2] = {kx, ky, fk};
      } else {
        for (int i = 1; i < 3; ++i) {
          s[i].x = s[0].x + sigma * (s[i].x - s[0].x);
          s[i].y = s[0].y + sigma * (s[i].y - s[0].y);
          s[i].f = f(s[i].x, s[i].y);
          ++res.evaluations;
        }
      }
    }
  }
  std::sort(s.begin(), s.end(),
            [](const Vertex& a, const Vertex& b) { return a.f < b.f; });
  res.x = s[0].x;
  res.y = s[0].y;
  res.value = s[0].f;
  return res;
}

MinResult2D grid_then_nelder_mead(
    const std::function<double(double, double)>& f, double x_lo, double x_hi,
    double y_lo, double y_hi, std::size_t nx, std::size_t ny, double ftol) {
  if (!(x_hi >= x_lo) || !(y_hi >= y_lo)) {
    throw std::invalid_argument("grid_then_nelder_mead: bad bounds");
  }
  if (nx < 2) nx = 2;
  if (ny < 2) ny = 2;
  MinResult2D best;
  best.value = std::numeric_limits<double>::infinity();
  const double hx = (x_hi - x_lo) / static_cast<double>(nx - 1);
  const double hy = (y_hi - y_lo) / static_cast<double>(ny - 1);
  for (std::size_t i = 0; i < nx; ++i) {
    const double x = x_lo + static_cast<double>(i) * hx;
    for (std::size_t j = 0; j < ny; ++j) {
      const double y = y_lo + static_cast<double>(j) * hy;
      const double v = f(x, y);
      ++best.evaluations;
      if (v < best.value) {
        best.value = v;
        best.x = x;
        best.y = y;
      }
    }
  }
  if (!std::isfinite(best.value)) return best;
  MinResult2D refined =
      nelder_mead(f, {best.x, best.y}, {0.5 * hx + 1e-9, 0.5 * hy + 1e-9},
                  ftol);
  refined.evaluations += best.evaluations;
  if (refined.value <= best.value && std::isfinite(refined.value)) {
    return refined;
  }
  best.evaluations = refined.evaluations;
  return best;
}

}  // namespace gridsub::numerics
