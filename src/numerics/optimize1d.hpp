#pragma once

// One-dimensional minimization.
//
// Optimal timeouts (t∞ for single/multiple submission) minimize E_J(t∞),
// a function that is piecewise-smooth on empirical models with possible
// plateaus. The robust recipe used throughout gridsub is: coarse grid scan
// to bracket the global minimum, then golden-section / Brent refinement
// inside the bracket.

#include <functional>

namespace gridsub::numerics {

/// Result of a scalar minimization.
struct MinResult1D {
  double x = 0.0;        ///< argmin
  double value = 0.0;    ///< f(argmin)
  int evaluations = 0;   ///< number of objective evaluations
};

/// Golden-section search on [a, b]; terminates when the bracket is smaller
/// than `xtol`. f must be unimodal on [a, b] for a guaranteed global result.
MinResult1D golden_section(const std::function<double(double)>& f, double a,
                           double b, double xtol = 1e-6, int max_iter = 200);

/// Brent's method (golden section + successive parabolic interpolation) on
/// [a, b]. Faster than pure golden section on smooth objectives.
MinResult1D brent_minimize(const std::function<double(double)>& f, double a,
                           double b, double xtol = 1e-8, int max_iter = 200);

/// Global strategy: evaluate f on `n_scan` uniform points of [a, b], then
/// refine around the best grid point with Brent inside the two neighbouring
/// cells. Handles multimodal objectives such as E_J on raw ECDF models.
MinResult1D scan_then_refine(const std::function<double(double)>& f, double a,
                             double b, std::size_t n_scan = 256,
                             double xtol = 1e-6);

}  // namespace gridsub::numerics
