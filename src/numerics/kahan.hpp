#pragma once

// Kahan/Neumaier compensated summation.
//
// The strategy-model evaluators accumulate hundreds of thousands of small
// trapezoid contributions over discretized CDF grids; naive summation loses
// several digits, which matters when comparing E_J values that differ by
// fractions of a second. All prefix-integral code in gridsub uses this
// accumulator.

#include <cmath>

namespace gridsub::numerics {

/// Neumaier variant of Kahan summation: like Kahan but also correct when the
/// next addend is larger in magnitude than the running sum.
class KahanAccumulator {
 public:
  constexpr KahanAccumulator() = default;
  constexpr explicit KahanAccumulator(double initial) : sum_(initial) {}

  /// Adds `value` with compensation.
  constexpr void add(double value) {
    const double t = sum_ + value;
    if (std::abs(sum_) >= std::abs(value)) {
      compensation_ += (sum_ - t) + value;
    } else {
      compensation_ += (value - t) + sum_;
    }
    sum_ = t;
  }

  constexpr KahanAccumulator& operator+=(double value) {
    add(value);
    return *this;
  }

  /// Current compensated total.
  [[nodiscard]] constexpr double value() const { return sum_ + compensation_; }

  constexpr void reset(double initial = 0.0) {
    sum_ = initial;
    compensation_ = 0.0;
  }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

}  // namespace gridsub::numerics
