#include "numerics/optimize1d.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace gridsub::numerics {

namespace {
constexpr double kGolden = 0.6180339887498949;  // (sqrt(5)-1)/2
}

MinResult1D golden_section(const std::function<double(double)>& f, double a,
                           double b, double xtol, int max_iter) {
  if (!(b >= a)) throw std::invalid_argument("golden_section: b < a");
  MinResult1D res;
  double x1 = b - kGolden * (b - a);
  double x2 = a + kGolden * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  res.evaluations = 2;
  for (int it = 0; it < max_iter && (b - a) > xtol; ++it) {
    if (f1 <= f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kGolden * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kGolden * (b - a);
      f2 = f(x2);
    }
    ++res.evaluations;
  }
  if (f1 <= f2) {
    res.x = x1;
    res.value = f1;
  } else {
    res.x = x2;
    res.value = f2;
  }
  return res;
}

MinResult1D brent_minimize(const std::function<double(double)>& f, double a,
                           double b, double xtol, int max_iter) {
  if (!(b >= a)) throw std::invalid_argument("brent_minimize: b < a");
  MinResult1D res;
  const double golden_step = 1.0 - kGolden;  // ~0.381966
  double x = a + golden_step * (b - a);
  double w = x, v = x;
  double fx = f(x);
  res.evaluations = 1;
  double fw = fx, fv = fx;
  double d = 0.0, e = 0.0;
  for (int it = 0; it < max_iter; ++it) {
    const double m = 0.5 * (a + b);
    const double tol1 = xtol * std::abs(x) + 1e-12;
    const double tol2 = 2.0 * tol1;
    if (std::abs(x - m) <= tol2 - 0.5 * (b - a)) break;
    bool use_golden = true;
    if (std::abs(e) > tol1) {
      // Parabolic fit through (v, fv), (w, fw), (x, fx).
      const double r = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::abs(q);
      const double e_old = e;
      e = d;
      if (std::abs(p) < std::abs(0.5 * q * e_old) && p > q * (a - x) &&
          p < q * (b - x)) {
        d = p / q;
        const double u = x + d;
        if (u - a < tol2 || b - u < tol2) d = (m > x) ? tol1 : -tol1;
        use_golden = false;
      }
    }
    if (use_golden) {
      e = (x < m) ? b - x : a - x;
      d = golden_step * e;
    }
    const double u =
        (std::abs(d) >= tol1) ? x + d : x + ((d > 0.0) ? tol1 : -tol1);
    const double fu = f(u);
    ++res.evaluations;
    if (fu <= fx) {
      if (u < x) {
        b = x;
      } else {
        a = x;
      }
      v = w;
      fv = fw;
      w = x;
      fw = fx;
      x = u;
      fx = fu;
    } else {
      if (u < x) {
        a = u;
      } else {
        b = u;
      }
      if (fu <= fw || w == x) {
        v = w;
        fv = fw;
        w = u;
        fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u;
        fv = fu;
      }
    }
  }
  res.x = x;
  res.value = fx;
  return res;
}

MinResult1D scan_then_refine(const std::function<double(double)>& f, double a,
                             double b, std::size_t n_scan, double xtol) {
  if (!(b >= a)) throw std::invalid_argument("scan_then_refine: b < a");
  if (n_scan < 2) n_scan = 2;
  MinResult1D best;
  best.value = std::numeric_limits<double>::infinity();
  const double h = (b - a) / static_cast<double>(n_scan - 1);
  std::size_t best_i = 0;
  for (std::size_t i = 0; i < n_scan; ++i) {
    const double x = a + static_cast<double>(i) * h;
    const double fx = f(x);
    ++best.evaluations;
    if (fx < best.value) {
      best.value = fx;
      best.x = x;
      best_i = i;
    }
  }
  if (!std::isfinite(best.value)) return best;
  const double lo = (best_i == 0) ? a : best.x - h;
  const double hi = (best_i == n_scan - 1) ? b : best.x + h;
  MinResult1D refined = brent_minimize(f, lo, hi, xtol);
  refined.evaluations += best.evaluations;
  if (refined.value <= best.value) return refined;
  best.evaluations = refined.evaluations;
  return best;
}

}  // namespace gridsub::numerics
