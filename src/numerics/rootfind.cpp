#include "numerics/rootfind.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace gridsub::numerics {

RootResult bisection(const std::function<double(double)>& f, double a,
                     double b, double xtol, int max_iter) {
  if (!(b >= a)) throw std::invalid_argument("bisection: b < a");
  RootResult res;
  double fa = f(a);
  double fb = f(b);
  res.evaluations = 2;
  if (fa == 0.0) {
    res.x = a;
    res.fx = 0.0;
    res.converged = true;
    return res;
  }
  if (fb == 0.0) {
    res.x = b;
    res.fx = 0.0;
    res.converged = true;
    return res;
  }
  if (fa * fb > 0.0) {
    throw std::invalid_argument("bisection: f(a) and f(b) have same sign");
  }
  for (int it = 0; it < max_iter; ++it) {
    const double m = 0.5 * (a + b);
    const double fm = f(m);
    ++res.evaluations;
    if (fm == 0.0 || (b - a) < xtol) {
      res.x = m;
      res.fx = fm;
      res.converged = true;
      return res;
    }
    if (fa * fm < 0.0) {
      b = m;
      fb = fm;
    } else {
      a = m;
      fa = fm;
    }
  }
  res.x = 0.5 * (a + b);
  res.fx = f(res.x);
  ++res.evaluations;
  res.converged = (b - a) < xtol * 8.0;
  return res;
}

RootResult brent_root(const std::function<double(double)>& f, double a,
                      double b, double xtol, int max_iter) {
  RootResult res;
  double fa = f(a);
  double fb = f(b);
  res.evaluations = 2;
  if (fa * fb > 0.0) {
    throw std::invalid_argument("brent_root: f(a) and f(b) have same sign");
  }
  if (std::abs(fa) < std::abs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a, fc = fa;
  bool mflag = true;
  double d = 0.0;
  for (int it = 0; it < max_iter; ++it) {
    if (fb == 0.0 || std::abs(b - a) < xtol) break;
    double s;
    if (fa != fc && fb != fc) {
      // Inverse quadratic interpolation.
      s = a * fb * fc / ((fa - fb) * (fa - fc)) +
          b * fa * fc / ((fb - fa) * (fb - fc)) +
          c * fa * fb / ((fc - fa) * (fc - fb));
    } else {
      // Secant.
      s = b - fb * (b - a) / (fb - fa);
    }
    const double lo = 0.25 * (3.0 * a + b);
    const bool cond =
        (s < std::min(lo, b) || s > std::max(lo, b)) ||
        (mflag && std::abs(s - b) >= 0.5 * std::abs(b - c)) ||
        (!mflag && std::abs(s - b) >= 0.5 * std::abs(c - d)) ||
        (mflag && std::abs(b - c) < xtol) ||
        (!mflag && std::abs(c - d) < xtol);
    if (cond) {
      s = 0.5 * (a + b);
      mflag = true;
    } else {
      mflag = false;
    }
    const double fs = f(s);
    ++res.evaluations;
    d = c;
    c = b;
    fc = fb;
    if (fa * fs < 0.0) {
      b = s;
      fb = fs;
    } else {
      a = s;
      fa = fs;
    }
    if (std::abs(fa) < std::abs(fb)) {
      std::swap(a, b);
      std::swap(fa, fb);
    }
  }
  res.x = b;
  res.fx = fb;
  res.converged = true;
  return res;
}

RootResult bracket_and_solve(const std::function<double(double)>& f, double a,
                             double b, int max_expansions, double xtol) {
  if (!(b > a)) throw std::invalid_argument("bracket_and_solve: b <= a");
  double fa = f(a);
  double fb = f(b);
  int evals = 2;
  for (int i = 0; i < max_expansions && fa * fb > 0.0; ++i) {
    const double width = b - a;
    if (std::abs(fa) < std::abs(fb)) {
      a -= width;
      fa = f(a);
    } else {
      b += width;
      fb = f(b);
    }
    ++evals;
  }
  if (fa * fb > 0.0) {
    RootResult res;
    res.converged = false;
    res.evaluations = evals;
    res.x = (std::abs(fa) < std::abs(fb)) ? a : b;
    res.fx = std::min(std::abs(fa), std::abs(fb));
    return res;
  }
  RootResult res = brent_root(f, a, b, xtol);
  res.evaluations += evals;
  return res;
}

}  // namespace gridsub::numerics
