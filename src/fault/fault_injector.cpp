#include "fault/fault_injector.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <utility>

namespace gridsub::fault {

// --------------------------------------------------------------------------
// FaultInjector
// --------------------------------------------------------------------------

FaultInjector::FaultInjector(const FaultScheduleConfig& config)
    : schedule_(config) {
  if (!config.validate()) {
    throw std::invalid_argument(
        "FaultInjector: rates outside [0,1] or a same-domain group sums "
        "past 1");
  }
}

std::function<void(std::size_t, std::uint64_t)> FaultInjector::ingest_hook() {
  return [this](std::size_t /*shard*/, std::uint64_t job_index) {
    if (!schedule_.ingest_stall(job_index)) return;
    record(FaultClass::kIngestStall, job_index);
    // Logical stall: yields, never a clock, so the run replays exactly
    // and the determinism linter stays clean over src/fault.
    for (std::uint32_t i = 0; i < schedule_.config().stall_yields; ++i) {
      std::this_thread::yield();
    }
  };
}

std::function<void(std::uint64_t)> FaultInjector::refresher_hook() {
  return [this](std::uint64_t generation) {
    if (!schedule_.refresher_pause(generation)) return;
    record(FaultClass::kRefresherPause, generation);
    for (std::uint32_t i = 0; i < schedule_.config().pause_yields; ++i) {
      std::this_thread::yield();
    }
  };
}

exp::IoFaultHook FaultInjector::io_hook() {
  return [this](std::uint64_t write_index,
                std::size_t payload_bytes) -> exp::IoFaultDirective {
    const exp::IoFaultDirective d =
        schedule_.io_fault(write_index, payload_bytes);
    switch (d.kind) {
      case exp::IoFaultDirective::Kind::kShortWrite:
        record(FaultClass::kIoShortWrite, write_index);
        break;
      case exp::IoFaultDirective::Kind::kEnospc:
        record(FaultClass::kIoEnospc, write_index);
        break;
      case exp::IoFaultDirective::Kind::kTornTail:
        record(FaultClass::kIoTornTail, write_index);
        break;
      case exp::IoFaultDirective::Kind::kNone:
        break;
    }
    return d;
  };
}

void FaultInjector::record(FaultClass cls, std::uint64_t id) {
  const core::MutexLock lock(mu_);
  events_.push_back(FaultEvent{cls, id});
}

std::vector<FaultEvent> FaultInjector::events() const {
  std::vector<FaultEvent> out;
  {
    const core::MutexLock lock(mu_);
    out = events_;
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t FaultInjector::count(FaultClass cls) const {
  const core::MutexLock lock(mu_);
  std::uint64_t n = 0;
  for (const FaultEvent& e : events_) {
    if (e.cls == cls) ++n;
  }
  return n;
}

void FaultInjector::write_events_json(std::ostream& os) const {
  const std::vector<FaultEvent> sorted = events();
  os << "{\"events\": [";
  bool first = true;
  for (const FaultEvent& e : sorted) {
    os << (first ? "\n" : ",\n") << "  {\"class\": \"" << to_string(e.cls)
       << "\", \"id\": " << e.id << "}";
    first = false;
  }
  os << (first ? "]}" : "\n]}") << "\n";
}

// --------------------------------------------------------------------------
// FaultyTransport
// --------------------------------------------------------------------------

FaultyTransport::FaultyTransport(serve::Transport& inner,
                                 FaultInjector& injector)
    : inner_(inner), injector_(injector) {}

bool FaultyTransport::pop_deferred(serve::AdvisorRequest& out, bool flush) {
  const core::MutexLock lock(mu_);
  if (deferred_.empty()) return false;
  const auto it = deferred_.begin();  // earliest due first
  if (!flush && it->first > seq_) return false;
  out = it->second;
  deferred_.erase(it);
  return true;
}

bool FaultyTransport::next(serve::AdvisorRequest& out) {
  for (;;) {
    // Deferred requests whose deferral elapsed are served before new
    // pulls so a delay fault reorders, never starves.
    if (pop_deferred(out, /*flush=*/false)) return true;
    if (!inner_.next(out)) {
      // Inner closed and drained: hand out whatever is still deferred
      // (delivered late rather than lost), then report closed.
      return pop_deferred(out, /*flush=*/true);
    }
    const std::uint64_t now = [&] {
      const core::MutexLock lock(mu_);
      return ++seq_;
    }();
    switch (injector_.schedule().request_fault(out.id)) {
      case RequestFault::kDrop:
        injector_.record(FaultClass::kDropRequest, out.id);
        inner_.abandon();  // this request will never be replied to
        continue;
      case RequestFault::kDelay: {
        injector_.record(FaultClass::kDelayRequest, out.id);
        const std::uint32_t ops = injector_.schedule().config().delay_ops;
        serve::AdvisorRequest delayed = out;
        delayed.queue_age += ops;
        const core::MutexLock lock(mu_);
        deferred_.emplace(now + ops, std::move(delayed));
        continue;
      }
      case RequestFault::kDuplicate: {
        injector_.record(FaultClass::kDuplicateRequest, out.id);
        inner_.expect_duplicate();  // two replies are coming for one pull
        const core::MutexLock lock(mu_);
        deferred_.emplace(now + 1, out);
        return true;  // the original is served immediately
      }
      case RequestFault::kNone:
        return true;
    }
  }
}

bool FaultyTransport::reply(const serve::AdvisorResponse& response) {
  switch (injector_.schedule().reply_fault(response.id)) {
    case ReplyFault::kDrop:
      // The reply vanishes. Tell the inner transport the request is
      // settled (abandon keeps the drain exact) and report success so
      // the loop does not retry a reply scheduled to always vanish.
      injector_.record(FaultClass::kDropReply, response.id);
      inner_.abandon();
      return true;
    case ReplyFault::kTransient: {
      const std::uint32_t budget =
          injector_.schedule().config().transient_attempts;
      bool fail = false;
      {
        const core::MutexLock lock(mu_);
        std::uint32_t& failures = reply_failures_[response.id];
        if (failures < budget) {
          ++failures;
          fail = true;
        }
      }
      if (fail) {
        injector_.record(FaultClass::kTransientReply, response.id);
        return false;  // the loop's bounded retry takes it from here
      }
      return inner_.reply(response);
    }
    case ReplyFault::kNone:
      return inner_.reply(response);
  }
  return inner_.reply(response);
}

void FaultyTransport::abandon() { inner_.abandon(); }

void FaultyTransport::expect_duplicate() { inner_.expect_duplicate(); }

}  // namespace gridsub::fault
