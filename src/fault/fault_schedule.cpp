#include "fault/fault_schedule.hpp"

#include <algorithm>

namespace gridsub::fault {

namespace {

// Distinct tags keep the decision streams of different fault classes
// independent even when their identity domains overlap (request-path and
// reply-path faults both key on the request id).
constexpr std::uint64_t kTagRequest = 0x7265717561736b31ULL;
constexpr std::uint64_t kTagReply = 0x7265706c79666c74ULL;
constexpr std::uint64_t kTagIngest = 0x696e676573747374ULL;
constexpr std::uint64_t kTagRefresher = 0x7265667265736872ULL;
constexpr std::uint64_t kTagIo = 0x696f6661756c7473ULL;
constexpr std::uint64_t kTagIoKeep = 0x696f6b6565706273ULL;

[[nodiscard]] bool in_unit(double p) { return p >= 0.0 && p <= 1.0; }

}  // namespace

bool FaultScheduleConfig::validate() const {
  return in_unit(drop_request) && in_unit(delay_request) &&
         in_unit(duplicate_request) && in_unit(drop_reply) &&
         in_unit(transient_reply) && in_unit(ingest_stall) &&
         in_unit(refresher_pause) && in_unit(io_short_write) &&
         in_unit(io_enospc) && in_unit(io_torn_tail) &&
         drop_request + delay_request + duplicate_request <= 1.0 &&
         drop_reply + transient_reply <= 1.0 &&
         io_short_write + io_enospc + io_torn_tail <= 1.0 && delay_ops > 0 &&
         transient_attempts > 0;
}

FaultSchedule::FaultSchedule(const FaultScheduleConfig& config)
    : config_(config) {}

std::uint64_t FaultSchedule::mix(std::uint64_t tag, std::uint64_t id) const {
  // splitmix64-style finalizer over (seed, tag, id). Own arithmetic, not
  // std::rand / <random>: the decision must be a portable pure function.
  std::uint64_t x = config_.seed ^ (tag * 0x9e3779b97f4a7c15ULL);
  x += id * 0xbf58476d1ce4e5b9ULL + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double FaultSchedule::unit(std::uint64_t tag, std::uint64_t id) const {
  return static_cast<double>(mix(tag, id) >> 11) * 0x1.0p-53;
}

RequestFault FaultSchedule::request_fault(std::uint64_t request_id) const {
  // One roll against cumulative thresholds: at most one fault per id.
  const double u = unit(kTagRequest, request_id);
  if (u < config_.drop_request) return RequestFault::kDrop;
  if (u < config_.drop_request + config_.delay_request) {
    return RequestFault::kDelay;
  }
  if (u < config_.drop_request + config_.delay_request +
              config_.duplicate_request) {
    return RequestFault::kDuplicate;
  }
  return RequestFault::kNone;
}

ReplyFault FaultSchedule::reply_fault(std::uint64_t request_id) const {
  const double u = unit(kTagReply, request_id);
  if (u < config_.drop_reply) return ReplyFault::kDrop;
  if (u < config_.drop_reply + config_.transient_reply) {
    return ReplyFault::kTransient;
  }
  return ReplyFault::kNone;
}

bool FaultSchedule::ingest_stall(std::uint64_t job_index) const {
  return unit(kTagIngest, job_index) < config_.ingest_stall;
}

bool FaultSchedule::refresher_pause(std::uint64_t generation) const {
  return unit(kTagRefresher, generation) < config_.refresher_pause;
}

exp::IoFaultDirective FaultSchedule::io_fault(std::uint64_t write_index,
                                              std::size_t payload_bytes) const {
  exp::IoFaultDirective d;
  const double u = unit(kTagIo, write_index);
  if (u < config_.io_short_write) {
    d.kind = exp::IoFaultDirective::Kind::kShortWrite;
  } else if (u < config_.io_short_write + config_.io_enospc) {
    d.kind = exp::IoFaultDirective::Kind::kEnospc;
    return d;
  } else if (u < config_.io_short_write + config_.io_enospc +
                     config_.io_torn_tail) {
    d.kind = exp::IoFaultDirective::Kind::kTornTail;
  } else {
    return d;
  }
  // Keep a strict prefix: at least one byte lands, the terminating
  // newline never does, so the artifact is exactly the clipped final
  // line the checkpoint crash model promises to repair.
  const std::size_t span = payload_bytes > 1 ? payload_bytes - 1 : 1;
  d.keep_bytes = 1 + static_cast<std::size_t>(mix(kTagIoKeep, write_index) %
                                              static_cast<std::uint64_t>(span));
  d.keep_bytes = std::min(d.keep_bytes, payload_bytes);
  return d;
}

}  // namespace gridsub::fault
