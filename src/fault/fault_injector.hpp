#pragma once

// Fault injection over the advisor serving stack.
//
// FaultInjector turns a FaultSchedule's pure decisions into side effects
// at the stack's chaos seams, and keeps a log of every injected event:
//
//   * FaultyTransport wraps any serve::Transport and applies the
//     request-path faults (drop / delay / duplicate) and reply-path
//     faults (drop / transient) the schedule dictates, while keeping the
//     inner transport's in-flight accounting exact via abandon() /
//     expect_duplicate() — shutdown still drains cleanly under faults;
//   * ingest_hook() plugs into ReplayFeedConfig::fault_hook and stalls
//     the owning ingest worker (yield loop — no clocks) on scheduled
//     job indices;
//   * refresher_hook() plugs into AdvisorConfig::refresh_fault and
//     pauses scheduled refresh generations the same way;
//   * io_hook() plugs into exp::CheckpointWriter and injects the three
//     disk-failure classes (short write / ENOSPC / torn tail).
//
// The injected-event log is the determinism witness: every event is
// (fault class, stable id), and events() returns them sorted, so two
// runs with the same seed produce byte-identical write_events_json()
// output at any thread count — exactly what test_fault_determinism pins.
//
// Delivery caveat for delayed requests: a deferral is measured in
// subsequent next() pulls, so when traffic stops before the deferral
// elapses the request is handed out during the close-drain instead.
// Either way it is served exactly once — never lost.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string_view>
#include <vector>

#include "core/thread_annotations.hpp"
#include "exp/checkpoint.hpp"
#include "fault/fault_schedule.hpp"
#include "serve/request_loop.hpp"

namespace gridsub::fault {

/// Every fault the harness can inject, across all seams.
enum class FaultClass : std::uint8_t {
  kDropRequest,
  kDelayRequest,
  kDuplicateRequest,
  kDropReply,
  kTransientReply,
  kIngestStall,
  kRefresherPause,
  kIoShortWrite,
  kIoEnospc,
  kIoTornTail,
};

[[nodiscard]] constexpr std::string_view to_string(FaultClass cls) {
  switch (cls) {
    case FaultClass::kDropRequest:
      return "drop-request";
    case FaultClass::kDelayRequest:
      return "delay-request";
    case FaultClass::kDuplicateRequest:
      return "duplicate-request";
    case FaultClass::kDropReply:
      return "drop-reply";
    case FaultClass::kTransientReply:
      return "transient-reply";
    case FaultClass::kIngestStall:
      return "ingest-stall";
    case FaultClass::kRefresherPause:
      return "refresher-pause";
    case FaultClass::kIoShortWrite:
      return "io-short-write";
    case FaultClass::kIoEnospc:
      return "io-enospc";
    case FaultClass::kIoTornTail:
      return "io-torn-tail";
  }
  return "unknown";
}

/// One injected fault: the class and the stable operation id the
/// schedule keyed the decision on (request id, job index, generation,
/// or write index — see FaultSchedule).
struct FaultEvent {
  FaultClass cls = FaultClass::kDropRequest;
  std::uint64_t id = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
  friend auto operator<=>(const FaultEvent&, const FaultEvent&) = default;
};

/// Applies a FaultSchedule at the stack's seams and logs what it did.
/// Thread-safe: hooks and the wrapped transport may fire from any
/// thread concurrently.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultScheduleConfig& config);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  [[nodiscard]] const FaultSchedule& schedule() const { return schedule_; }

  /// For ReplayFeedConfig::fault_hook: deterministic stall on scheduled
  /// global job indices (the shard argument is ignored on purpose — the
  /// stalled set must be thread-count invariant).
  [[nodiscard]] std::function<void(std::size_t, std::uint64_t)> ingest_hook();

  /// For AdvisorConfig::refresh_fault: deterministic pause on scheduled
  /// refresh generations.
  [[nodiscard]] std::function<void(std::uint64_t)> refresher_hook();

  /// For exp::CheckpointWriter: injects the scheduled I/O failure class
  /// per write index.
  [[nodiscard]] exp::IoFaultHook io_hook();

  /// Records one injected event (hooks and FaultyTransport call this).
  void record(FaultClass cls, std::uint64_t id) GRIDSUB_EXCLUDES(mu_);

  /// All injected events so far, sorted by (class, id) — the
  /// deterministic witness two same-seed runs must agree on.
  [[nodiscard]] std::vector<FaultEvent> events() const GRIDSUB_EXCLUDES(mu_);

  /// Injected events of one class so far.
  [[nodiscard]] std::uint64_t count(FaultClass cls) const
      GRIDSUB_EXCLUDES(mu_);

  /// Writes events() as JSON: {"events": [{"class": ..., "id": ...}]}.
  /// Byte-identical for the same seed at any thread count.
  void write_events_json(std::ostream& os) const GRIDSUB_EXCLUDES(mu_);

 private:
  FaultSchedule schedule_;
  mutable core::Mutex mu_;
  std::vector<FaultEvent> events_ GRIDSUB_GUARDED_BY(mu_);
};

/// serve::Transport decorator applying the schedule's request/reply
/// faults to an inner transport. Safe for several serving threads, like
/// the transport it wraps. The inner transport's client side is still
/// driven directly (post / take_reply / close on the inner object).
class FaultyTransport final : public serve::Transport {
 public:
  FaultyTransport(serve::Transport& inner, FaultInjector& injector);

  bool next(serve::AdvisorRequest& out) override;
  [[nodiscard]] bool reply(const serve::AdvisorResponse& response) override;
  void abandon() override;
  void expect_duplicate() override;

 private:
  /// Pops a deferred request that is due (or, when `flush`, any deferred
  /// request); false when none qualifies.
  bool pop_deferred(serve::AdvisorRequest& out, bool flush)
      GRIDSUB_EXCLUDES(mu_);

  serve::Transport& inner_;
  FaultInjector& injector_;
  mutable core::Mutex mu_;
  /// Pulls observed so far; the logical clock deferrals count against.
  std::uint64_t seq_ GRIDSUB_GUARDED_BY(mu_) = 0;
  /// Deferred (delayed / duplicated) requests keyed by due pull-count.
  /// Ordered map: the earliest-due request is served first.
  std::multimap<std::uint64_t, serve::AdvisorRequest> deferred_
      GRIDSUB_GUARDED_BY(mu_);
  /// Transient-reply failures already injected per request id.
  std::map<std::uint64_t, std::uint32_t> reply_failures_
      GRIDSUB_GUARDED_BY(mu_);
};

}  // namespace gridsub::fault
