#pragma once

// Seeded, deterministic fault decisions for the chaos harness.
//
// A FaultSchedule answers "does operation X suffer fault Y?" as a pure
// function of (seed, fault class, operation identity). Identity is a
// stable 64-bit id that does not depend on scheduling: the request id,
// the global workload job index, the refresh generation, or the
// checkpoint write index. Arrival order, thread ids, and wall time never
// enter a decision, so the *set* of injected faults — and therefore the
// sorted injected-event log — is byte-identical at any thread count.
// That is the property the determinism wall (test_fault_determinism)
// pins, and the reason this directory sits under
// scripts/lint_determinism.py with zero waivers: no wall clocks, no
// std::rand, no unordered-container iteration.
//
// Probabilities for one identity domain are rolled from a *single* hash
// draw against cumulative thresholds, so fault classes that share a
// domain (drop/delay/duplicate on requests) are mutually exclusive by
// construction — an operation suffers at most one of them.

#include <cstddef>
#include <cstdint>

#include "exp/checkpoint.hpp"

namespace gridsub::fault {

/// Per-class fault rates, all in [0, 1]. The defaults are all zero: a
/// default schedule injects nothing, so wiring the hooks is harmless.
struct FaultScheduleConfig {
  std::uint64_t seed = 0;

  // Request-path faults (mutually exclusive per request id).
  double drop_request = 0.0;       ///< request vanishes before the loop
  double delay_request = 0.0;      ///< request is deferred delay_ops pulls
  double duplicate_request = 0.0;  ///< request is delivered twice
  std::uint32_t delay_ops = 4;     ///< deferral distance, in next() pulls

  // Reply-path faults (mutually exclusive per request id).
  double drop_reply = 0.0;       ///< reply is discarded after compute
  double transient_reply = 0.0;  ///< reply fails transiently, retry succeeds
  std::uint32_t transient_attempts = 2;  ///< failures before delivery

  // Ingest stalls, keyed on the global workload job index.
  double ingest_stall = 0.0;
  std::uint32_t stall_yields = 64;  ///< yields per injected stall

  // Refresher pauses, keyed on the refresh generation.
  double refresher_pause = 0.0;
  std::uint32_t pause_yields = 256;  ///< yields per injected pause

  // Checkpoint I/O faults, keyed on the write index (mutually exclusive
  // per write; see exp::IoFaultDirective for the failure semantics).
  double io_short_write = 0.0;
  double io_enospc = 0.0;
  double io_torn_tail = 0.0;

  /// True when every rate is in [0, 1] and every same-domain group sums
  /// to at most 1 (the cumulative-threshold roll needs that).
  [[nodiscard]] bool validate() const;
};

/// What a request suffers on its way *into* the loop.
enum class RequestFault : std::uint8_t { kNone, kDrop, kDelay, kDuplicate };

/// What a reply suffers on its way *out*.
enum class ReplyFault : std::uint8_t { kNone, kDrop, kTransient };

/// Pure decision table over (seed, class, id). Copyable, no state: every
/// method may be called from any thread, any number of times, and
/// returns the same answer for the same arguments.
class FaultSchedule {
 public:
  FaultSchedule() = default;
  explicit FaultSchedule(const FaultScheduleConfig& config);

  [[nodiscard]] const FaultScheduleConfig& config() const { return config_; }

  /// Fault (if any) for the request with this id.
  [[nodiscard]] RequestFault request_fault(std::uint64_t request_id) const;

  /// Fault (if any) for the reply to the request with this id.
  [[nodiscard]] ReplyFault reply_fault(std::uint64_t request_id) const;

  /// True when the ingest worker must stall before feeding this job
  /// (identified by its global index in the workload, not by shard).
  [[nodiscard]] bool ingest_stall(std::uint64_t job_index) const;

  /// True when the refresher must pause before publishing this
  /// generation.
  [[nodiscard]] bool refresher_pause(std::uint64_t generation) const;

  /// I/O fault directive for the checkpoint write with this index; the
  /// kept-prefix length for short-write/torn-tail faults is itself a
  /// deterministic function of (seed, index) in [1, payload_bytes).
  [[nodiscard]] exp::IoFaultDirective io_fault(
      std::uint64_t write_index, std::size_t payload_bytes) const;

 private:
  /// Uniform draw in [0, 1) for (class tag, id) under this seed.
  [[nodiscard]] double unit(std::uint64_t tag, std::uint64_t id) const;
  [[nodiscard]] std::uint64_t mix(std::uint64_t tag, std::uint64_t id) const;

  FaultScheduleConfig config_;
};

}  // namespace gridsub::fault
