#include "workflow/makespan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "numerics/kahan.hpp"

namespace gridsub::workflow {

MakespanModel::MakespanModel(core::TotalLatencyDistribution dist)
    : dist_(std::move(dist)) {}

double MakespanModel::expected_max_latency(std::size_t n) const {
  if (n == 0) {
    throw std::invalid_argument("expected_max_latency: n == 0");
  }
  if (n == 1) return dist_.expectation();
  const double nd = static_cast<double>(n);
  // ∫ (1 - (1-S)^n) dt by trapezoid on the model grid step; the integrand
  // is bounded by min(1, n·S) and S decays geometrically per round, so the
  // cut at n·S < 1e-12 terminates after O(log n) rounds.
  const double h = dist_.latency_model().step();
  numerics::KahanAccumulator acc;
  double t = 0.0;
  double prev = 1.0;  // integrand at t = 0 (S(0) = 1)
  for (;;) {
    t += h;
    const double s = dist_.survival(t);
    const double integrand =
        s > 1e-8 ? 1.0 - std::pow(1.0 - s, nd)
                 : -std::expm1(nd * std::log1p(-s));
    acc.add(0.5 * h * (prev + integrand));
    prev = integrand;
    if (nd * s < 1e-12) break;
  }
  return acc.value();
}

double MakespanModel::max_latency_quantile(std::size_t n, double p) const {
  if (n == 0) {
    throw std::invalid_argument("max_latency_quantile: n == 0");
  }
  if (!(p >= 0.0) || p >= 1.0) {
    throw std::invalid_argument("max_latency_quantile: p outside [0, 1)");
  }
  if (p == 0.0) return 0.0;
  // P(max <= t) = F(t)^n  =>  Q_max(p) = Q_J(p^{1/n}).
  return dist_.quantile(std::pow(p, 1.0 / static_cast<double>(n)));
}

MakespanEstimate MakespanModel::estimate(const BagOfTasks& bag) const {
  validate(bag);
  MakespanEstimate e;
  e.expectation = expected_max_latency(bag.n_tasks) + bag.runtime;
  e.median = max_latency_quantile(bag.n_tasks, 0.5) + bag.runtime;
  e.p95 = max_latency_quantile(bag.n_tasks, 0.95) + bag.runtime;
  e.p99 = max_latency_quantile(bag.n_tasks, 0.99) + bag.runtime;
  const double n = static_cast<double>(bag.n_tasks);
  e.job_seconds = n * (dist_.expected_job_seconds() + bag.runtime);
  return e;
}

double MakespanModel::expected_chain_makespan(
    const WorkflowChain& chain) const {
  validate(chain);
  double total = 0.0;
  for (const BagOfTasks& stage : chain) {
    total += expected_max_latency(stage.n_tasks) + stage.runtime;
  }
  return total;
}

MakespanMcResult MakespanModel::simulate(const BagOfTasks& bag,
                                         std::size_t replications,
                                         std::uint64_t seed) const {
  validate(bag);
  if (replications == 0) {
    throw std::invalid_argument("MakespanModel::simulate: replications == 0");
  }
  stats::Rng rng(seed);
  numerics::KahanAccumulator sum, sum_sq;
  for (std::size_t r = 0; r < replications; ++r) {
    double worst = 0.0;
    for (std::size_t i = 0; i < bag.n_tasks; ++i) {
      worst = std::max(worst, dist_.sample(rng));
    }
    const double makespan = worst + bag.runtime;
    sum.add(makespan);
    sum_sq.add(makespan * makespan);
  }
  MakespanMcResult res;
  res.replications = replications;
  const double n = static_cast<double>(replications);
  res.mean = sum.value() / n;
  res.std_dev = std::sqrt(
      std::max(0.0, sum_sq.value() / n - res.mean * res.mean));
  return res;
}

}  // namespace gridsub::workflow
