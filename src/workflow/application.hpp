#pragma once

// Grid-application models (paper §8's future work).
//
// The applications that motivate the paper — medical image analysis and
// virtual screening on the biomed VO — are bags of independent tasks, often
// chained into stages with a barrier between them (registration -> analysis
// -> statistics). Each task needs one grid job whose start is delayed by
// the strategy-dependent total latency J; the paper assumes task runtimes
// are known (§3.2). These types describe such applications for the
// makespan model.

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace gridsub::workflow {

/// A bag of independent tasks, all submitted at the same instant to be run
/// fully in parallel (the grid has far more slots than any one user's bag).
struct BagOfTasks {
  std::size_t n_tasks = 1;  ///< number of independent tasks
  double runtime = 0.0;     ///< known per-task execution time (seconds)
};

/// Stages executed in sequence with a barrier: stage i+1 starts only when
/// every task of stage i has finished.
using WorkflowChain = std::vector<BagOfTasks>;

/// Throws std::invalid_argument on empty bags or negative runtimes.
inline void validate(const BagOfTasks& bag) {
  if (bag.n_tasks == 0) {
    throw std::invalid_argument("BagOfTasks: n_tasks == 0");
  }
  if (bag.runtime < 0.0) {
    throw std::invalid_argument("BagOfTasks: runtime < 0");
  }
}

inline void validate(const WorkflowChain& chain) {
  if (chain.empty()) {
    throw std::invalid_argument("WorkflowChain: no stages");
  }
  for (const BagOfTasks& stage : chain) validate(stage);
}

/// Total task count across stages.
[[nodiscard]] inline std::size_t total_tasks(const WorkflowChain& chain) {
  std::size_t n = 0;
  for (const BagOfTasks& stage : chain) n += stage.n_tasks;
  return n;
}

/// Lower bound on the chain makespan: the pure computation time that would
/// remain on a zero-latency, infinitely reliable grid.
[[nodiscard]] inline double compute_floor(const WorkflowChain& chain) {
  double total = 0.0;
  for (const BagOfTasks& stage : chain) total += stage.runtime;
  return total;
}

}  // namespace gridsub::workflow
