#pragma once

// Makespan of grid applications under a submission strategy.
//
// A bag of n independent tasks submitted in parallel finishes when the
// *slowest* task starts and completes: makespan = max_i(J_i) + runtime,
// with the J_i iid with the strategy's total-latency law. Expectations of
// maxima are governed by the tail of J, so strategies that mainly tame the
// tail (multiple submission) gain more at large n than their per-job E_J
// suggests — the quantitative version of the paper's motivation that
// "high latency and faults impact the performance of applications".
//
//   E[max_n J]   = ∫₀^∞ (1 - (1 - S(t))^n) dt
//   Q_max(p)     = Q_J(p^{1/n})      (quantiles of maxima are free)
//
// Chains of stages with barriers add stage makespans. Billed job-seconds
// scale linearly: n · E[W_strategy] + n · runtime.

#include <cstddef>

#include "core/total_latency.hpp"
#include "stats/rng.hpp"
#include "workflow/application.hpp"

namespace gridsub::workflow {

/// Point summary of a bag's makespan distribution.
struct MakespanEstimate {
  double expectation = 0.0;   ///< E[makespan] (s)
  double median = 0.0;        ///< 50th percentile (s)
  double p95 = 0.0;           ///< 95th percentile (s)
  double p99 = 0.0;           ///< 99th percentile (s)
  double job_seconds = 0.0;   ///< expected billed latency-phase job-seconds
                              ///< plus compute occupancy, whole bag
};

/// Empirical counterpart from Monte Carlo (for validation).
struct MakespanMcResult {
  std::size_t replications = 0;
  double mean = 0.0;
  double std_dev = 0.0;
};

class MakespanModel {
 public:
  /// Takes ownership of the strategy's total-latency distribution (the
  /// underlying DiscretizedLatencyModel must outlive this object).
  explicit MakespanModel(core::TotalLatencyDistribution dist);

  /// E[max of n iid J]; n >= 1. n == 1 gives E_J back.
  [[nodiscard]] double expected_max_latency(std::size_t n) const;

  /// p-quantile of max of n iid J: Q_J(p^{1/n}).
  [[nodiscard]] double max_latency_quantile(std::size_t n, double p) const;

  /// Full summary for one bag.
  [[nodiscard]] MakespanEstimate estimate(const BagOfTasks& bag) const;

  /// Expected makespan of a barrier-separated chain (sum of stages).
  [[nodiscard]] double expected_chain_makespan(
      const WorkflowChain& chain) const;

  /// Monte Carlo of max_i(J_i) + runtime (validates the quadrature).
  [[nodiscard]] MakespanMcResult simulate(const BagOfTasks& bag,
                                          std::size_t replications,
                                          std::uint64_t seed = 0xBA6) const;

  [[nodiscard]] const core::TotalLatencyDistribution& distribution() const {
    return dist_;
  }

 private:
  core::TotalLatencyDistribution dist_;
};

}  // namespace gridsub::workflow
