// Folds N shard checkpoint files of one campaign into the single
// canonical result JSON — the multi-host story: run each shard with
// `--shard i/N` (or CampaignRunner::run_shard) on its own machine, copy
// the .ckpt files together, merge here. The merged output is
// byte-identical to a single uninterrupted run of the whole campaign
// (see src/exp/campaign.hpp's determinism contract).
//
// The merge is a streamed k-way walk: each file is read line-by-line
// behind a bounded per-file reorder buffer, cells are emitted in global
// flat order through exp::JsonStreamSink, and memory stays
// O(files × window) instead of O(cells). The campaign runner bounds
// checkpoint record disorder to its own reorder window, so the default
// --window has orders-of-magnitude headroom; files shuffled harder than
// that (hand-edited, or from a pre-window gridsub) fail with a clean
// error and --buffered falls back to the load-everything path.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cli.hpp"
#include "exp/checkpoint.hpp"
#include "exp/fold.hpp"

namespace {

using namespace gridsub;

std::vector<std::string> split_commas(const std::string& list) {
  std::vector<std::string> out;
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// One checkpoint file being streamed: its header identity, the read
/// cursor, and a bounded flat-indexed buffer of parsed records.
struct ShardReader {
  std::string path;
  std::ifstream is;
  exp::CampaignShard shard;
  std::size_t lineno = 1;  // the header line is already consumed
  std::map<std::size_t, exp::CellResult> buffer;
  bool eof = false;
  bool dropped_partial_tail = false;
  std::size_t records = 0;  // parsed records, duplicates included
};

/// Ring of recently emitted cells, for verifying late duplicate records
/// without holding every emitted cell.
class EmittedRing {
 public:
  explicit EmittedRing(std::size_t window) : slots_(std::max<std::size_t>(
                                                 1, window)) {}

  void remember(std::size_t flat, const exp::CellMetrics& metrics) {
    slots_[flat % slots_.size()] = Entry{flat, metrics};
  }

  /// Verifies a duplicate of an already-emitted cell. Throws on conflict
  /// or when the duplicate is too old to still be in the ring.
  void verify(std::size_t flat, const exp::CellResult& cell,
              const std::string& where) const {
    const std::optional<Entry>& slot = slots_[flat % slots_.size()];
    if (!slot || slot->flat != flat) {
      throw exp::CheckpointError(
          where + ": duplicate record for cell " + std::to_string(flat) +
          " is older than the reorder window — raise --window or use "
          "--buffered");
    }
    if (!exp::same_cell_metrics(slot->metrics, cell.metrics)) {
      throw exp::CheckpointError(where + ": conflicting duplicate record "
                                 "for cell " + std::to_string(flat));
    }
  }

 private:
  struct Entry {
    std::size_t flat = 0;
    exp::CellMetrics metrics;
  };
  std::vector<std::optional<Entry>> slots_;
};

/// Reads the next record line of `reader` into its buffer (or verifies it
/// as a duplicate). Returns false when the file is exhausted.
bool advance(ShardReader& reader, const exp::CampaignAxes& axes,
             std::size_t next_flat, const EmittedRing& ring) {
  std::string line;
  while (true) {
    if (!std::getline(reader.is, line)) {
      reader.eof = true;
      return false;
    }
    ++reader.lineno;
    const bool unterminated = reader.is.eof();
    if (line.empty()) continue;
    const std::string where =
        reader.path + ":" + std::to_string(reader.lineno);
    exp::CellResult cell;
    try {
      cell = exp::parse_checkpoint_record(line, where, axes);
    } catch (const exp::CheckpointError&) {
      if (unterminated) {
        // The expected kill artifact: a clipped final line. Drop it —
        // that cell must exist, whole, in some shard for the merge to
        // complete.
        reader.dropped_partial_tail = true;
        reader.eof = true;
        return false;
      }
      throw;  // a terminated line that fails to parse is corruption
    }
    ++reader.records;
    const std::size_t flat = cell.context.flat;
    if (flat < next_flat) {
      ring.verify(flat, cell, where);  // late duplicate of an emitted cell
      continue;
    }
    const auto it = reader.buffer.find(flat);
    if (it != reader.buffer.end()) {
      if (!exp::same_cell_metrics(it->second.metrics, cell.metrics)) {
        throw exp::CheckpointError(where + ": conflicting duplicate record "
                                   "for cell " + std::to_string(flat));
      }
      continue;  // benign in-file duplicate
    }
    reader.buffer.emplace(flat, std::move(cell));
    return true;
  }
}

/// The streamed merge: k files in, canonical JSON out, O(k × window)
/// memory. Returns the fold summary for --summary.
exp::CampaignSummary merge_streamed(std::vector<ShardReader>& readers,
                                    const exp::CampaignAxes& axes,
                                    std::size_t window, std::ostream& out) {
  exp::JsonStreamSink sink(out);
  sink.begin(axes);
  EmittedRing ring(window);
  const std::size_t n = axes.cell_count();
  for (std::size_t flat = 0; flat < n; ++flat) {
    // Pull records until some reader's buffer holds the next cell; a
    // reader whose buffer hits the window without producing it is stalled
    // (its records are shuffled beyond the window).
    ShardReader* holder = nullptr;
    while (holder == nullptr) {
      for (ShardReader& r : readers) {
        if (r.buffer.count(flat) > 0) {
          holder = &r;
          break;
        }
      }
      if (holder != nullptr) break;
      bool progressed = false;
      for (ShardReader& r : readers) {
        if (r.eof || r.buffer.size() >= window) continue;
        if (advance(r, axes, flat, ring)) progressed = true;
      }
      if (progressed) continue;
      const bool stalled =
          std::any_of(readers.begin(), readers.end(),
                      [&](const ShardReader& r) {
                        return !r.eof && r.buffer.size() >= window;
                      });
      if (stalled) {
        throw exp::CheckpointError(
            "cell " + std::to_string(flat) + " of campaign '" + axes.name +
            "' not found within the reorder window — raise --window or "
            "use --buffered");
      }
      throw exp::CheckpointError(
          "campaign '" + axes.name + "' is incomplete: cell " +
          std::to_string(flat) +
          " is in no checkpoint (did every shard run to completion?)");
    }
    exp::CellResult cell = std::move(holder->buffer.at(flat));
    holder->buffer.erase(flat);
    // Sibling copies of the same cell in other buffers must agree.
    for (ShardReader& r : readers) {
      const auto it = r.buffer.find(flat);
      if (it == r.buffer.end()) continue;
      if (!exp::same_cell_metrics(it->second.metrics, cell.metrics)) {
        throw exp::CheckpointError(
            r.path + ": shards disagree on cell " + std::to_string(flat) +
            " of campaign '" + axes.name + "'");
      }
      r.buffer.erase(it);
    }
    ring.remember(flat, cell.metrics);
    sink.on_cell(cell);
  }
  // Drain the tails: every remaining record duplicates an emitted cell
  // and must still agree with it.
  for (ShardReader& r : readers) {
    while (!r.eof) (void)advance(r, axes, n, ring);
  }
  sink.end();
  return sink.take();
}

}  // namespace

int main(int argc, char** argv) {
  tools::Cli cli(
      "gridsub_campaign_merge",
      "merge campaign shard checkpoints into the canonical result JSON",
      {
          {"--in", "comma-separated checkpoint files to merge"},
          {"--dir", "directory: merge every *.ckpt inside (sorted)"},
          {"--name", "with --dir: only checkpoints of this campaign"},
          {"--out", "output JSON path (default: stdout)"},
          {"--summary", "also print the aggregate table to stderr"},
          {"--window", "streamed reorder window in records (default 65536)"},
          {"--buffered", "load everything in memory instead of streaming"},
      },
      {"--summary", "--buffered"});
  cli.parse(argc, argv);

  try {
    std::vector<std::string> paths;
    if (const auto in = cli.get("--in")) {
      paths = split_commas(*in);
    }
    if (const auto dir = cli.get("--dir")) {
      for (const auto& entry : std::filesystem::directory_iterator(*dir)) {
        if (entry.path().extension() == ".ckpt") {
          paths.push_back(entry.path().string());
        }
      }
    }
    std::sort(paths.begin(), paths.end());
    if (paths.empty()) {
      std::fprintf(stderr,
                   "gridsub_campaign_merge: no checkpoints (give --in or "
                   "--dir)\n");
      return 2;
    }

    std::size_t window = 65536;
    if (const auto w = cli.get("--window")) {
      window = static_cast<std::size_t>(std::stoull(*w));
      if (window == 0) {
        std::fprintf(stderr, "gridsub_campaign_merge: --window must be "
                     "positive\n");
        return 2;
      }
    }
    const auto name_filter = cli.get("--name");

    if (cli.flag("--buffered")) {
      // The pre-streaming path: materialize every checkpoint. Kept as the
      // fallback for files whose record order exceeds any window.
      std::vector<exp::CampaignCheckpoint> shards;
      for (const std::string& path : paths) {
        exp::CampaignCheckpoint shard = exp::load_checkpoint(path);
        if (name_filter && shard.axes.name != *name_filter) continue;
        std::fprintf(stderr, "[merge] %s: campaign '%s' shard %zu/%zu, %zu "
                     "cells%s\n",
                     path.c_str(), shard.axes.name.c_str(),
                     shard.shard.index, shard.shard.count,
                     shard.cells.size(),
                     shard.dropped_partial_tail ? " (partial tail dropped)"
                                                : "");
        shards.push_back(std::move(shard));
      }
      if (shards.empty()) {
        std::fprintf(stderr,
                     "gridsub_campaign_merge: no checkpoints matched "
                     "--name '%s'\n",
                     name_filter ? name_filter->c_str() : "");
        return 2;
      }
      const exp::CampaignResult result =
          exp::merge_checkpoints(std::move(shards));
      const std::string out = cli.get_or("--out", "-");
      if (out == "-") {
        result.write_json(std::cout);
      } else {
        std::ofstream os(out, std::ios::binary);
        if (!os) {
          std::fprintf(stderr, "gridsub_campaign_merge: cannot write "
                       "'%s'\n", out.c_str());
          return 1;
        }
        result.write_json(os);
        std::fprintf(stderr, "[merge] wrote %s (%zu cells, %zu aggregate "
                     "rows)\n",
                     out.c_str(), result.cells().size(),
                     result.aggregates().size());
      }
      if (cli.flag("--summary")) {
        std::ostringstream table;
        result.summary_table().print(table);
        std::fputs(table.str().c_str(), stderr);
      }
      return 0;
    }

    // Streamed path: open every file, read just the headers, verify they
    // all describe one campaign, then k-way merge in flat order.
    std::vector<ShardReader> readers;
    std::optional<exp::CampaignAxes> axes;
    for (const std::string& path : paths) {
      ShardReader reader;
      reader.path = path;
      reader.is.open(path, std::ios::binary);
      if (!reader.is) {
        throw exp::CheckpointError("cannot open checkpoint file '" + path +
                                   "'");
      }
      std::string header_line;
      if (!std::getline(reader.is, header_line)) {
        throw exp::CheckpointError(path + ": missing checkpoint header");
      }
      const exp::CheckpointHeader header =
          exp::parse_checkpoint_header(header_line, path);
      if (name_filter && header.axes.name != *name_filter) continue;
      reader.shard = header.shard;
      if (!axes) {
        axes = header.axes;
      } else if (!exp::same_campaign(*axes, header.axes)) {
        throw exp::CheckpointError(
            "merge: checkpoint '" + path + "' is for campaign '" +
            header.axes.name + "', not '" + axes->name +
            "' (axes, replications, and root seed must all agree)");
      }
      readers.push_back(std::move(reader));
    }
    if (readers.empty()) {
      std::fprintf(stderr,
                   "gridsub_campaign_merge: no checkpoints matched "
                   "--name '%s'\n",
                   name_filter ? name_filter->c_str() : "");
      return 2;
    }

    const std::string out = cli.get_or("--out", "-");
    exp::CampaignSummary summary;
    if (out == "-") {
      summary = merge_streamed(readers, *axes, window, std::cout);
    } else {
      std::ofstream os(out, std::ios::binary);
      if (!os) {
        std::fprintf(stderr, "gridsub_campaign_merge: cannot write '%s'\n",
                     out.c_str());
        return 1;
      }
      summary = merge_streamed(readers, *axes, window, os);
      if (!os.flush()) {
        std::fprintf(stderr, "gridsub_campaign_merge: write to '%s' "
                     "failed\n", out.c_str());
        return 1;
      }
    }
    for (const ShardReader& r : readers) {
      std::fprintf(stderr, "[merge] %s: campaign '%s' shard %zu/%zu, %zu "
                   "records%s\n",
                   r.path.c_str(), axes->name.c_str(), r.shard.index,
                   r.shard.count, r.records,
                   r.dropped_partial_tail ? " (partial tail dropped)" : "");
    }
    if (out != "-") {
      std::fprintf(stderr, "[merge] wrote %s (%zu cells, %zu aggregate "
                   "rows, streamed)\n",
                   out.c_str(), axes->cell_count(), summary.rows.size());
    }
    if (cli.flag("--summary")) {
      std::ostringstream table;
      summary.summary_table().print(table);
      std::fputs(table.str().c_str(), stderr);
    }
  } catch (const std::exception& e) {
    // CheckpointError, the folds' metric-consistency logic_error,
    // filesystem errors from --dir — all corruption/IO, all exit 1.
    std::fprintf(stderr, "gridsub_campaign_merge: %s\n", e.what());
    return 1;
  }
  return 0;
}
