// Folds N shard checkpoint files of one campaign into the single
// canonical result JSON — the multi-host story: run each shard with
// `--shard i/N` (or CampaignRunner::run_shard) on its own machine, copy
// the .ckpt files together, merge here. The merged output is
// byte-identical to a single uninterrupted run of the whole campaign
// (see src/exp/campaign.hpp's determinism contract).

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cli.hpp"
#include "exp/checkpoint.hpp"

namespace {

std::vector<std::string> split_commas(const std::string& list) {
  std::vector<std::string> out;
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gridsub;

  tools::Cli cli(
      "gridsub_campaign_merge",
      "merge campaign shard checkpoints into the canonical result JSON",
      {
          {"--in", "comma-separated checkpoint files to merge"},
          {"--dir", "directory: merge every *.ckpt inside (sorted)"},
          {"--name", "with --dir: only checkpoints of this campaign"},
          {"--out", "output JSON path (default: stdout)"},
          {"--summary", "also print the aggregate table to stderr"},
      },
      {"--summary"});
  cli.parse(argc, argv);

  try {
    std::vector<std::string> paths;
    if (const auto in = cli.get("--in")) {
      paths = split_commas(*in);
    }
    if (const auto dir = cli.get("--dir")) {
      for (const auto& entry : std::filesystem::directory_iterator(*dir)) {
        if (entry.path().extension() == ".ckpt") {
          paths.push_back(entry.path().string());
        }
      }
    }
    std::sort(paths.begin(), paths.end());
    if (paths.empty()) {
      std::fprintf(stderr,
                   "gridsub_campaign_merge: no checkpoints (give --in or "
                   "--dir)\n");
      return 2;
    }

    const auto name_filter = cli.get("--name");
    std::vector<exp::CampaignCheckpoint> shards;
    for (const std::string& path : paths) {
      exp::CampaignCheckpoint shard = exp::load_checkpoint(path);
      if (name_filter && shard.axes.name != *name_filter) continue;
      std::fprintf(stderr, "[merge] %s: campaign '%s' shard %zu/%zu, %zu "
                   "cells%s\n",
                   path.c_str(), shard.axes.name.c_str(), shard.shard.index,
                   shard.shard.count, shard.cells.size(),
                   shard.dropped_partial_tail ? " (partial tail dropped)"
                                              : "");
      shards.push_back(std::move(shard));
    }
    if (shards.empty()) {
      std::fprintf(stderr,
                   "gridsub_campaign_merge: no checkpoints matched "
                   "--name '%s'\n",
                   name_filter ? name_filter->c_str() : "");
      return 2;
    }
    const exp::CampaignResult result =
        exp::merge_checkpoints(std::move(shards));

    const std::string out = cli.get_or("--out", "-");
    if (out == "-") {
      result.write_json(std::cout);
    } else {
      std::ofstream os(out, std::ios::binary);
      if (!os) {
        std::fprintf(stderr, "gridsub_campaign_merge: cannot write '%s'\n",
                     out.c_str());
        return 1;
      }
      result.write_json(os);
      std::fprintf(stderr, "[merge] wrote %s (%zu cells, %zu aggregate "
                   "rows)\n",
                   out.c_str(), result.cells().size(),
                   result.aggregates().size());
    }
    if (cli.flag("--summary")) {
      std::ostringstream table;
      result.summary_table().print(table);
      std::fputs(table.str().c_str(), stderr);
    }
  } catch (const std::exception& e) {
    // CheckpointError, CampaignResult's metric-consistency logic_error,
    // filesystem errors from --dir — all corruption/IO, all exit 1.
    std::fprintf(stderr, "gridsub_campaign_merge: %s\n", e.what());
    return 1;
  }
  return 0;
}
