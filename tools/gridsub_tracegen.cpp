// gridsub-tracegen: generate synthetic EGEE-like probe traces as CSV.
//
//   gridsub-tracegen --dataset 2007-51 --out week51.csv
//   gridsub-tracegen --probes 2000 --mean 500 --stddev 700 --rho 0.1
//                    --seed 42 --out custom.csv   (one line)
//
// Either a named paper dataset (calibrated to Table 1) or a custom
// calibration; writes the CSV format read by gridsub-fit / gridsub-plan.

// gridsub-lint: allow-file(printf-float) CLI console diagnostics only

#include <cstdio>
#include <iostream>
#include <string>

#include "cli.hpp"
#include "traces/datasets.hpp"
#include "traces/trace_io.hpp"

int main(int argc, char** argv) {
  using namespace gridsub;
  tools::Cli cli(
      "gridsub-tracegen", "generate synthetic probe traces (CSV)",
      {
          {"--dataset", "paper dataset name (e.g. 2007-51, 2007/08)"},
          {"--out", "output CSV path (default: stdout)"},
          {"--probes", "custom: number of probes (default 1000)"},
          {"--mean", "custom: target mean latency below timeout (s)"},
          {"--stddev", "custom: target latency std deviation (s)"},
          {"--rho", "custom: outlier ratio in [0,1) (default 0.05)"},
          {"--shift", "custom: latency floor (default 100 s)"},
          {"--seed", "custom: RNG seed (default 1)"},
          {"--list", "list the named paper datasets and exit"},
      },
      {"--list"});
  cli.parse(argc, argv);

  if (cli.flag("--list")) {
    std::printf("%-10s %8s %10s %10s %8s\n", "name", "probes", "mean(s)",
                "sd(s)", "rho");
    for (const auto& c : traces::all_datasets()) {
      std::printf("%-10s %8zu %10.0f %10.0f %8.3f\n", c.name.c_str(),
                  c.n_probes, c.target_mean, c.target_stddev,
                  c.outlier_ratio);
    }
    std::printf("%-10s %8u (union of the 11 weekly sets)\n", "2007/08",
                8888u);
    return 0;
  }

  traces::Trace trace;
  if (const auto name = cli.get("--dataset")) {
    trace = traces::make_trace_by_name(*name);
  } else if (cli.get("--mean") && cli.get("--stddev")) {
    traces::DatasetConfig config;
    config.name = "custom";
    config.n_probes =
        static_cast<std::size_t>(cli.number_or("--probes", 1000));
    config.target_mean = cli.number_or("--mean", 500.0);
    config.target_stddev = cli.number_or("--stddev", 700.0);
    config.outlier_ratio = cli.number_or("--rho", 0.05);
    config.shift = cli.number_or("--shift", 100.0);
    config.seed =
        static_cast<std::uint64_t>(cli.number_or("--seed", 1.0));
    trace = traces::make_trace(config);
  } else {
    std::fprintf(stderr,
                 "need --dataset NAME or both --mean and --stddev "
                 "(see --help)\n");
    return 2;
  }

  if (const auto out = cli.get("--out")) {
    traces::write_csv_file(*out, trace);
    const auto s = trace.stats();
    std::fprintf(stderr,
                 "wrote %zu probes to %s (mean %.0f s, sd %.0f s, "
                 "outliers %.1f%%)\n",
                 trace.size(), out->c_str(), s.mean_completed,
                 s.stddev_completed, 100.0 * s.outlier_ratio);
  } else {
    traces::write_csv(std::cout, trace);
  }
  return 0;
}
