// gridsub-swfconvert: convert a Standard Workload Format archive into the
// repo's replayable workload CSV, optionally cutting a window,
// downsampling, and rescaling on the way.
//
//   gridsub-swfconvert --in LPC-EGEE.swf --out week.csv
//                      --window-start 604800 --window-length 604800
//                      --sample 0.25 --time-scale 0.25 --runtime-scale 1
//
// --sample p keeps each job with probability p (seeded, deterministic);
// --time-scale f multiplies arrivals by f (f < 1 compresses the timeline);
// --runtime-scale likewise for runtimes. A typical recipe scales a
// 1000-CPU cluster's week down to the bench grid: sample 0.25 to thin the
// job count, runtime-scale to match the grid's service capacity.

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>

#include "cli.hpp"
#include "stats/rng.hpp"
#include "traces/swf.hpp"
#include "traces/workload.hpp"

int main(int argc, char** argv) {
  using namespace gridsub;
  tools::Cli cli(
      "gridsub-swfconvert",
      "convert/downsample an SWF archive to replayable workload CSV",
      {
          {"--in", "input SWF file (required)"},
          {"--out", "output workload CSV path (default: stdout)"},
          {"--name", "workload name (default: input file name)"},
          {"--max-jobs", "stop after N accepted jobs (default: all)"},
          {"--window-start", "cut window start, seconds (default 0)"},
          {"--window-length", "cut window length, seconds (default: all)"},
          {"--sample", "keep each job with probability p in (0,1]"},
          {"--seed", "sampling seed (default 1)"},
          {"--time-scale", "multiply arrivals by f > 0 (default 1)"},
          {"--runtime-scale", "multiply runtimes by f > 0 (default 1)"},
          {"--stats", "print shape statistics of the result and exit"},
      },
      {"--stats"});
  cli.parse(argc, argv);

  const auto in = cli.get("--in");
  if (!in) {
    std::fprintf(stderr, "gridsub-swfconvert: --in is required\n");
    return 2;
  }

  traces::SwfReadOptions options;
  options.max_jobs =
      static_cast<std::size_t>(cli.number_or("--max-jobs", 0.0));
  traces::SwfReadReport report;
  traces::Workload w = traces::read_swf_file(*in, options, &report);
  if (const auto name = cli.get("--name")) w.set_name(*name);
  std::fprintf(stderr, "read %zu jobs from %s (%zu dropped%s)\n", w.size(),
               in->c_str(), report.dropped,
               report.truncated_at != 0 ? ", truncated by --max-jobs" : "");

  const double window_start = cli.number_or("--window-start", 0.0);
  if (const auto len = cli.get("--window-length")) {
    const double length = cli.number_or("--window-length", 0.0);
    w = w.window(window_start, window_start + length);
  } else if (window_start > 0.0) {
    w = w.window(window_start, w.duration() + 1.0);
  }

  if (const auto sample = cli.get("--sample")) {
    const double p = cli.number_or("--sample", 1.0);
    if (!(p > 0.0 && p <= 1.0)) {
      std::fprintf(stderr, "gridsub-swfconvert: --sample must be in (0,1]\n");
      return 2;
    }
    stats::Rng rng(static_cast<std::uint64_t>(cli.number_or("--seed", 1.0)));
    traces::Workload thinned(w.name());
    for (const auto& j : w.jobs()) {
      if (rng.bernoulli(p)) thinned.add_job(j);
    }
    w = std::move(thinned);
  }

  const double time_scale = cli.number_or("--time-scale", 1.0);
  if (time_scale != 1.0) w.scale_time(time_scale);
  const double runtime_scale = cli.number_or("--runtime-scale", 1.0);
  if (runtime_scale != 1.0) w.scale_runtime(runtime_scale);
  w.sort_by_arrival();
  w.rebase_to_zero();

  const auto stats = w.stats();
  std::fprintf(stderr,
               "result: %zu jobs over %.0f s — mean rate %.4f/s, peak "
               "hourly %.4f/s, burstiness %.2f, mean runtime %.0f s\n",
               stats.jobs, stats.duration, stats.mean_rate,
               stats.peak_hourly_rate, stats.burstiness, stats.mean_runtime);
  if (cli.flag("--stats")) return 0;

  if (const auto out = cli.get("--out")) {
    traces::write_workload_csv_file(*out, w);
    std::fprintf(stderr, "wrote %s\n", out->c_str());
  } else {
    traces::write_workload_csv(std::cout, w);
  }
  return 0;
}
