// gridsub-swfconvert: convert a Standard Workload Format archive into the
// repo's replayable workload CSV, optionally filtering by user/group,
// cutting a window, downsampling, and rescaling on the way.
//
//   gridsub-swfconvert --in LPC-EGEE.swf --out week.csv
//                      --user 42 --window-start 604800
//                      --window-length 604800 --sample 0.25
//                      --time-scale 0.25 --runtime-scale 1
//
// --user/--group N keep only that submitter's jobs (how VO-level
// submission patterns are isolated from a site archive);
// --sample p keeps each job with probability p (seeded, deterministic);
// --time-scale f multiplies arrivals by f (f < 1 compresses the timeline);
// --runtime-scale likewise for runtimes. A typical recipe scales a
// 1000-CPU cluster's week down to the bench grid: sample 0.25 to thin the
// job count, runtime-scale to match the grid's service capacity.
//
// The archive is streamed line by line and only the jobs that survive
// filter + window + sample are materialized, so month-long Parallel
// Workloads Archive files convert in O(kept) memory. Windowing is applied
// in archive time (SWF submit times are relative to the log start by
// spec); --max-jobs caps the *kept* jobs.

// gridsub-lint: allow-file(printf-float) CLI console diagnostics only

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>

#include "cli.hpp"
#include "stats/rng.hpp"
#include "traces/swf.hpp"
#include "traces/workload.hpp"

int main(int argc, char** argv) {
  using namespace gridsub;
  tools::Cli cli(
      "gridsub-swfconvert",
      "convert/downsample an SWF archive to replayable workload CSV",
      {
          {"--in", "input SWF file (required)"},
          {"--out", "output workload CSV path (default: stdout)"},
          {"--name", "workload name (default: input file name)"},
          {"--user", "keep only jobs of this user id"},
          {"--group", "keep only jobs of this group id"},
          {"--max-jobs", "stop after N kept jobs (default: all)"},
          {"--window-start", "cut window start, archive seconds (default 0)"},
          {"--window-length", "cut window length, seconds (default: all)"},
          {"--sample", "keep each job with probability p in (0,1]"},
          {"--seed", "sampling seed (default 1)"},
          {"--time-scale", "multiply arrivals by f > 0 (default 1)"},
          {"--runtime-scale", "multiply runtimes by f > 0 (default 1)"},
          {"--stats", "print shape statistics of the result and exit"},
      },
      {"--stats"});
  cli.parse(argc, argv);

  const auto in = cli.get("--in");
  if (!in) {
    std::fprintf(stderr, "gridsub-swfconvert: --in is required\n");
    return 2;
  }
  const double sample_p = cli.number_or("--sample", 1.0);
  if (cli.get("--sample") && !(sample_p > 0.0 && sample_p <= 1.0)) {
    std::fprintf(stderr, "gridsub-swfconvert: --sample must be in (0,1]\n");
    return 2;
  }

  traces::SwfReadOptions options;
  options.user = static_cast<int>(cli.number_or("--user", -1.0));
  options.group = static_cast<int>(cli.number_or("--group", -1.0));

  const double window_start = cli.number_or("--window-start", 0.0);
  const double window_end =
      cli.get("--window-length")
          ? window_start + cli.number_or("--window-length", 0.0)
          : std::numeric_limits<double>::infinity();
  const auto max_jobs =
      static_cast<std::size_t>(cli.number_or("--max-jobs", 0.0));

  std::ifstream is(*in);
  if (!is) {
    std::fprintf(stderr, "gridsub-swfconvert: cannot open %s\n", in->c_str());
    return 2;
  }
  const auto slash = in->find_last_of('/');
  traces::Workload w(cli.get_or(
      "--name", slash == std::string::npos ? *in : in->substr(slash + 1)));

  // One streaming pass: filter (reader) -> window -> sample -> cap. Only
  // kept jobs are materialized; everything else costs a line parse.
  stats::Rng rng(static_cast<std::uint64_t>(cli.number_or("--seed", 1.0)));
  traces::SwfReadReport report;
  traces::for_each_swf_job(
      is, options,
      [&](const traces::WorkloadJob& job) {
        if (job.arrival < window_start || job.arrival >= window_end) {
          return true;
        }
        if (sample_p < 1.0 && !rng.bernoulli(sample_p)) return true;
        w.add_job(job.arrival - window_start, job.runtime, job.user,
                  job.group);
        return max_jobs == 0 || w.size() < max_jobs;
      },
      &report);
  std::fprintf(
      stderr, "read %s: kept %zu of %zu jobs (%zu filtered, %zu dropped%s)\n",
      in->c_str(), w.size(), report.lines, report.filtered, report.dropped,
      max_jobs != 0 && w.size() >= max_jobs ? ", capped by --max-jobs" : "");

  const double time_scale = cli.number_or("--time-scale", 1.0);
  if (time_scale != 1.0) w.scale_time(time_scale);
  const double runtime_scale = cli.number_or("--runtime-scale", 1.0);
  if (runtime_scale != 1.0) w.scale_runtime(runtime_scale);
  w.sort_by_arrival();
  w.rebase_to_zero();

  if (w.empty()) {
    std::fprintf(stderr, "gridsub-swfconvert: no jobs survived the "
                         "filter/window/sample pipeline\n");
    return 1;
  }
  const auto stats = w.stats();
  std::fprintf(stderr,
               "result: %zu jobs over %.0f s — mean rate %.4f/s, peak "
               "hourly %.4f/s, burstiness %.2f, mean runtime %.0f s\n",
               stats.jobs, stats.duration, stats.mean_rate,
               stats.peak_hourly_rate, stats.burstiness, stats.mean_runtime);
  if (cli.flag("--stats")) return 0;

  if (const auto out = cli.get("--out")) {
    traces::write_workload_csv_file(*out, w);
    std::fprintf(stderr, "wrote %s\n", out->c_str());
  } else {
    traces::write_workload_csv(std::cout, w);
  }
  return 0;
}
