// gridsub-fit: characterize a probe trace — Table-1-style statistics plus
// parametric fits with goodness-of-fit, the workload-modeling step of the
// paper's §3.
//
//   gridsub-fit --in week51.csv
//   gridsub-tracegen --dataset 2006-IX --out - | gridsub-fit --in /dev/stdin

// gridsub-lint: allow-file(printf-float) CLI console diagnostics only

#include <cstdio>
#include <string>
#include <vector>

#include "cli.hpp"
#include "stats/fit.hpp"
#include "stats/lognormal.hpp"
#include "stats/weibull.hpp"
#include "traces/trace_io.hpp"

int main(int argc, char** argv) {
  using namespace gridsub;
  tools::Cli cli("gridsub-fit",
                 "trace statistics and parametric latency fits",
                 {{"--in", "input trace CSV (required)"}});
  cli.parse(argc, argv);
  const auto in = cli.get("--in");
  if (!in) {
    std::fprintf(stderr, "need --in FILE (see --help)\n");
    return 2;
  }

  const auto trace = traces::read_csv_file(*in);
  if (trace.count(traces::ProbeStatus::kCompleted) < 2) {
    std::fprintf(stderr, "trace has fewer than 2 completed probes\n");
    return 1;
  }
  const auto s = trace.stats();
  std::printf("trace: %s (%zu probes, timeout %.0f s)\n",
              trace.name().c_str(), trace.size(), trace.timeout());
  std::printf("  completed          %zu\n", s.completed);
  std::printf("  outlier ratio rho  %.4f\n", s.outlier_ratio);
  std::printf("  mean   (< timeout) %.1f s\n", s.mean_completed);
  std::printf("  sd     (< timeout) %.1f s\n", s.stddev_completed);
  std::printf("  censored mean      %.1f s  (outliers counted as timeout)\n",
              s.censored_mean);

  const auto xs = trace.completed_latencies();
  std::printf("\nparametric fits of the completed-latency bulk "
              "(MLE; lower KS & AIC are better):\n");
  std::printf("  %-12s %-28s %8s %12s\n", "family", "parameters", "KS",
              "AIC");

  const auto lognormal = stats::fit_lognormal_mle(xs);
  const double ll_ln = stats::log_likelihood(xs, lognormal);
  std::printf("  %-12s mu=%.3f sigma=%.3f          %8.4f %12.1f\n",
              "lognormal", lognormal.mu(), lognormal.sigma(),
              stats::ks_statistic(xs, lognormal), stats::aic(ll_ln, 2));

  const auto weibull = stats::fit_weibull_mle(xs);
  const double ll_wb = stats::log_likelihood(xs, weibull);
  std::printf("  %-12s shape=%.3f scale=%.1f      %8.4f %12.1f\n",
              "weibull", weibull.shape(), weibull.scale(),
              stats::ks_statistic(xs, weibull), stats::aic(ll_wb, 2));

  std::printf(
      "\nnote: strategy tuning (gridsub-plan) uses the raw ECDF — the "
      "paper's approach — so a mediocre parametric fit is informative, "
      "not blocking.\n");
  return 0;
}
