#pragma once

// Minimal command-line option parser shared by the gridsub tools.
//
// Supports --key value and --flag forms plus -h/--help; unknown options
// are an error so typos fail fast rather than being silently ignored.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace gridsub::tools {

class Cli {
 public:
  /// `spec`: option name -> help text. Options taking a value end their
  /// help text with the marker "<value>" convention in the description;
  /// parsing treats every option as value-taking unless listed in `flags`.
  Cli(std::string program, std::string summary,
      std::map<std::string, std::string> spec,
      std::set<std::string> flags = {})
      : program_(std::move(program)),
        summary_(std::move(summary)),
        spec_(std::move(spec)),
        flags_(std::move(flags)) {}

  /// Parses argv; on -h/--help prints usage and exits 0; on error prints
  /// usage and exits 2.
  void parse(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "-h" || arg == "--help") {
        usage(stdout);
        std::exit(0);
      }
      if (spec_.find(arg) == spec_.end()) {
        std::fprintf(stderr, "%s: unknown option '%s'\n\n", program_.c_str(),
                     arg.c_str());
        usage(stderr);
        std::exit(2);
      }
      if (flags_.count(arg) > 0) {
        values_[arg] = "true";
        continue;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: option '%s' needs a value\n",
                     program_.c_str(), arg.c_str());
        std::exit(2);
      }
      values_[arg] = argv[++i];
    }
  }

  [[nodiscard]] std::optional<std::string> get(
      const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] std::string get_or(const std::string& key,
                                   const std::string& fallback) const {
    return get(key).value_or(fallback);
  }

  [[nodiscard]] double number_or(const std::string& key,
                                 double fallback) const {
    const auto v = get(key);
    if (!v) return fallback;
    try {
      return std::stod(*v);
    } catch (...) {
      std::fprintf(stderr, "%s: option '%s' expects a number, got '%s'\n",
                   program_.c_str(), key.c_str(), v->c_str());
      std::exit(2);
    }
  }

  [[nodiscard]] bool flag(const std::string& key) const {
    return values_.count(key) > 0;
  }

  void usage(std::FILE* out) const {
    std::fprintf(out, "%s — %s\n\noptions:\n", program_.c_str(),
                 summary_.c_str());
    for (const auto& [key, help] : spec_) {
      std::fprintf(out, "  %-18s %s\n", key.c_str(), help.c_str());
    }
  }

 private:
  std::string program_;
  std::string summary_;
  std::map<std::string, std::string> spec_;
  std::set<std::string> flags_;
  std::map<std::string, std::string> values_;
};

}  // namespace gridsub::tools
