// gridsub-plan: tune a submission strategy from a probe trace — the
// client-side planner of the paper's §7, as a command-line tool.
//
//   gridsub-plan --in week51.csv                    # min-cost objective
//   gridsub-plan --in week51.csv --objective latency --budget 4
//   gridsub-plan --in week51.csv --stability        # Table-5-style ±5 s

// gridsub-lint: allow-file(printf-float) CLI console diagnostics only

#include <cstdio>
#include <string>

#include "cli.hpp"
#include "core/planner.hpp"
#include "core/uncertainty.hpp"
#include "model/discretized.hpp"
#include "traces/trace_io.hpp"

int main(int argc, char** argv) {
  using namespace gridsub;
  tools::Cli cli(
      "gridsub-plan", "recommend a submission strategy from a probe trace",
      {
          {"--in", "input trace CSV (required)"},
          {"--objective", "cost (default) or latency"},
          {"--budget", "max mean parallel jobs for --objective latency "
                       "(default 5)"},
          {"--max-b", "largest multiple-submission size tried (default 10)"},
          {"--step", "model grid step in seconds (default 1)"},
          {"--stability", "probe the optimum's +-5 s stability (Table 5)"},
      },
      {"--stability"});
  cli.parse(argc, argv);
  const auto in = cli.get("--in");
  if (!in) {
    std::fprintf(stderr, "need --in FILE (see --help)\n");
    return 2;
  }

  const auto trace = traces::read_csv_file(*in);
  const auto model = model::DiscretizedLatencyModel::from_trace(
      trace, cli.number_or("--step", 1.0));
  const core::StrategyPlanner planner(model);

  core::PlannerOptions options;
  const std::string objective = cli.get_or("--objective", "cost");
  if (objective == "latency") {
    options.objective = core::PlannerOptions::Objective::kMinLatency;
  } else if (objective == "cost") {
    options.objective = core::PlannerOptions::Objective::kMinCost;
  } else {
    std::fprintf(stderr, "--objective must be 'cost' or 'latency'\n");
    return 2;
  }
  options.max_parallel_jobs = cli.number_or("--budget", 5.0);
  options.max_b = static_cast<int>(cli.number_or("--max-b", 10.0));

  const auto rec = planner.recommend(options);
  std::printf("trace: %s (%zu probes)\n", trace.name().c_str(),
              trace.size());
  std::printf("recommendation: %s\n", rec.rationale.c_str());

  std::printf("\nall candidates scored:\n");
  std::printf("  %-24s %6s %6s %6s %10s %8s %8s\n", "strategy", "b", "t0",
              "t_inf", "E_J (s)", "N_par", "dcost");
  for (const auto& c : rec.candidates) {
    std::printf("  %-24s %6d %6.0f %6.0f %10.1f %8.2f %8.3f\n",
                std::string(core::to_string(c.kind)).c_str(), c.b, c.t0,
                c.t_inf, c.expectation, c.n_parallel, c.delta_cost);
  }

  // Finite-sample honesty: the DKW band of the chosen strategy's E_J.
  const core::UncertaintyAnalysis ua(model, trace.size());
  core::ExpectationBand band;
  switch (rec.choice.kind) {
    case core::StrategyKind::kSingleResubmission:
      band = ua.single(rec.choice.t_inf);
      break;
    case core::StrategyKind::kMultipleSubmission:
      band = ua.multiple(rec.choice.b, rec.choice.t_inf);
      break;
    case core::StrategyKind::kDelayedResubmission:
      band = ua.delayed(rec.choice.t0, rec.choice.t_inf);
      break;
  }
  std::printf("\n95%% DKW band on E_J from %zu probes: [%.0f, %.0f] s "
              "(eps = %.3f)\n",
              trace.size(), band.lower, band.upper, ua.epsilon());

  if (cli.flag("--stability") &&
      rec.choice.kind == core::StrategyKind::kDelayedResubmission) {
    const auto rep = planner.cost_model().stability(rec.choice.t0,
                                                    rec.choice.t_inf);
    std::printf("\nstability of the delayed optimum under +-5 s (Table 5):\n"
                "  base dcost %.3f, max %.3f (relative difference "
                "%+.1f%%)\n",
                rep.base_delta_cost, rep.max_delta_cost,
                100.0 * rep.max_rel_diff);
  }
  return 0;
}
