// Timer-wheel coverage: bucket/boundary placement on the raw TimerWheel,
// then the EventQueue-level contracts the wheel must preserve — FIFO
// tie-break across wheel->heap promotion, generation-checked cancel after
// slot recycling, the cancel-storm O(live) bound — and finally byte-trace
// identity of whole-grid runs against the heap-only configuration, alone
// and under concurrent execution at 1/2/8 threads.

#include "sim/timer_wheel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "sim/event_queue.hpp"
#include "sim/grid.hpp"
#include "sim/strategy_client.hpp"

namespace gridsub::sim {
namespace {

TimerWheelConfig small_wheel() {
  TimerWheelConfig config;
  config.tick_seconds = 10.0;
  config.near_ticks = 2;
  return config;
}

TimerEntry at(WheelTime time, std::uint64_t seq) {
  return TimerEntry{time, seq, static_cast<std::uint32_t>(seq), 1};
}

TEST(TimerWheel, NearEventsStayOnTheHeap) {
  TimerWheel wheel(small_wheel());
  EXPECT_FALSE(wheel.try_insert(at(0.0, 1)));
  EXPECT_FALSE(wheel.try_insert(at(19.999, 2)));  // just inside near horizon
  EXPECT_TRUE(wheel.try_insert(at(20.0, 3)));     // exactly on it: filed
  EXPECT_EQ(wheel.size(), 1u);
}

TEST(TimerWheel, DisabledAlwaysDeclines) {
  TimerWheelConfig config = small_wheel();
  config.enabled = false;
  TimerWheel wheel(config);
  EXPECT_FALSE(wheel.try_insert(at(1e6, 1)));
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheel, IdleWheelReanchorsForFarTargets) {
  TimerWheel wheel(small_wheel());
  // 1e9 s is far beyond the 64^3-tick range from cursor 0, but the wheel
  // is empty, so it restarts its window there instead of declining.
  EXPECT_TRUE(wheel.try_insert(at(1e9, 1)));
  EXPECT_GT(wheel.cursor_time(), 1e9 - 100.0);
  // A non-empty wheel must not move its cursor: earlier times decline.
  EXPECT_FALSE(wheel.try_insert(at(50.0, 2)));
  EXPECT_EQ(wheel.size(), 1u);
}

TEST(TimerWheel, AstronomicalTimesDecline) {
  TimerWheel wheel(small_wheel());
  // The 1e18 daemon sentinel some benches use: past tick 2^52, doubles
  // cannot resolve single ticks, so it must stay on the heap.
  EXPECT_FALSE(wheel.try_insert(at(1e18, 1)));
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheel, RotationDrainsBucketsInTimeOrder) {
  TimerWheel wheel(small_wheel());
  // Spread entries across all three levels (tick = 10 s): level 0 holds
  // <64 ticks, level 1 <64^2, level 2 <64^3 — including entries right at
  // level-window boundaries (ticks 63/64 and 4095/4096).
  const std::vector<double> times = {25.0,     630.0,   640.0,  645.0,
                                     40950.0,  40960.0, 40970.0, 2.5e6};
  std::uint64_t seq = 1;
  for (const double t : times) ASSERT_TRUE(wheel.try_insert(at(t, seq++)));
  ASSERT_EQ(wheel.size(), times.size());

  std::vector<double> drained;
  double last_batch_max = -1.0;
  while (!wheel.empty()) {
    std::vector<TimerEntry> batch;
    wheel.rotate_into(batch);
    ASSERT_FALSE(batch.empty());
    // Buckets come due in order: everything in this batch is later than
    // everything already drained...
    for (const TimerEntry& e : batch) {
      EXPECT_GT(e.time, last_batch_max - 1e-9);
      drained.push_back(e.time);
    }
    last_batch_max =
        *std::max_element(drained.begin(), drained.end());
    // ...and the cursor has moved past the drained bucket.
    for (const TimerEntry& e : batch) EXPECT_LT(e.time, wheel.cursor_time());
  }
  // ...with nothing lost.
  std::vector<double> sorted = drained;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, times);
}

TEST(TimerWheel, EraseIfDropsCanceledResidue) {
  TimerWheel wheel(small_wheel());
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(wheel.try_insert(at(100.0 + 37.0 * static_cast<double>(i), i)));
  }
  const std::size_t removed =
      wheel.erase_if([](const TimerEntry& e) { return e.seq % 2 == 0; });
  EXPECT_EQ(removed, 50u);
  EXPECT_EQ(wheel.size(), 50u);
}

// --- EventQueue with the wheel enabled --------------------------------

TEST(TimerWheelQueue, FifoTieBreakSurvivesPromotion) {
  EventQueue q(small_wheel());
  std::vector<int> order;
  // A is far (wheel), filler advances the cursor to 100, then B lands at
  // the same instant but inside the near horizon (heap). A was pushed
  // first, so it must still fire first.
  q.push(100.0, [&] { order.push_back(1); });  // -> wheel
  q.push(95.0, [&] { order.push_back(0); });   // -> wheel, earlier bucket
  q.pop().fn();                                // fires 95, cursor at 100
  q.push(100.0, [&] { order.push_back(2); });  // near now -> heap
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(TimerWheelQueue, MixedNearFarPopsInGlobalOrder) {
  EventQueue q(small_wheel());
  std::vector<double> fired;
  const std::vector<double> times = {5.0,    1000.0, 12.0,   640.0,
                                     2.5e6,  41000.0, 1e18,   30.0};
  for (const double t : times) {
    q.push(t, [&fired, t] { fired.push_back(t); }, /*daemon=*/t == 1e18);
  }
  while (q.live_size() > 0) q.pop().fn();
  std::vector<double> expected = times;
  std::sort(expected.begin(), expected.end());
  expected.pop_back();  // the 1e18 daemon is still pending when work ends
  EXPECT_EQ(fired, expected);
}

TEST(TimerWheelQueue, CanceledWheelEntryNeverFires) {
  EventQueue q(small_wheel());
  int fired = 0;
  const EventId far = q.push(5000.0, [&] { ++fired; });
  q.push(6000.0, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(far));
  EXPECT_FALSE(q.cancel(far));
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheelQueue, StaleGenerationCancelAfterRecycle) {
  EventQueue q(small_wheel());
  int fired = 0;
  const EventId old_id = q.push(5000.0, [&] { ++fired; });
  ASSERT_TRUE(q.cancel(old_id));
  // The slot is recycled for a new far event; the stale id must not be
  // able to cancel the new tenant.
  const EventId new_id = q.push(7000.0, [&] { fired += 10; });
  EXPECT_EQ(static_cast<std::uint32_t>(new_id),
            static_cast<std::uint32_t>(old_id));  // same slot...
  EXPECT_NE(new_id, old_id);                      // ...new generation
  EXPECT_FALSE(q.cancel(old_id));
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 10);
}

TEST(TimerWheelQueue, CancelStormKeepsQueuedBounded) {
  EventQueue q(small_wheel());
  // A far-future survivor plus a storm of armed-then-canceled wheel
  // entries: compaction must bound heap+wheel residue at
  // max(64, 2 * live), the same contract the heap-only build pins.
  q.push(2.0e6, [] {});
  std::size_t peak = 0;
  for (int i = 0; i < 100000; ++i) {
    const EventId id =
        q.push(1000.0 + static_cast<double>(i % 1000), [] {});
    peak = std::max(peak, q.queued());
    ASSERT_TRUE(q.cancel(id));
    ASSERT_LE(q.queued(), std::max<std::size_t>(64, 2 * q.size()));
  }
  EXPECT_LE(peak, 130u);
  EXPECT_EQ(q.size(), 1u);
}

// --- whole-grid byte-identity vs. the heap-only path ------------------

/// Runs the standard mixed-strategy mini-grid and serializes the full
/// observable trajectory: every client outcome in completion order plus
/// the grid counters and event totals.
std::string trajectory_digest(bool wheel_enabled) {
  GridConfig config = GridConfig::egee_like();
  config.timer_wheel.enabled = wheel_enabled;
  GridSimulation grid(config);
  grid.warm_up(1800.0);

  std::vector<std::unique_ptr<StrategyClient>> clients;
  StrategySpec single;
  single.kind = core::StrategyKind::kSingleResubmission;
  StrategySpec multiple;
  multiple.kind = core::StrategyKind::kMultipleSubmission;
  multiple.b = 3;
  StrategySpec delayed;
  delayed.kind = core::StrategyKind::kDelayedResubmission;
  delayed.t0 = 600.0;
  delayed.t_inf = 900.0;
  for (const auto& spec : {single, multiple, delayed}) {
    for (int i = 0; i < 2; ++i) {
      clients.push_back(std::make_unique<StrategyClient>(grid, spec, 6));
      clients.back()->start();
    }
  }
  // Bounded horizon: background arrivals reschedule forever, so run()
  // would never drain. 2e5 s is orders of magnitude beyond what 6 tasks
  // per client need; done() is asserted by the callers.
  grid.simulator().run_until(grid.simulator().now() + 2e5);

  std::ostringstream out;
  out.precision(17);
  for (const auto& client : clients) {
    EXPECT_TRUE(client->done());
    for (const TaskOutcome& o : client->outcomes()) {
      out << o.total_latency << ',' << o.submissions << ';';
    }
  }
  out << '|' << grid.simulator().processed_events() << '|'
      << grid.simulator().now() << '|' << grid.metrics().jobs_dispatched
      << '|' << grid.metrics().jobs_canceled;
  return out.str();
}

TEST(TimerWheelQueue, GridTrajectoryMatchesHeapOnlyBuild) {
  const std::string with_wheel = trajectory_digest(true);
  const std::string heap_only = trajectory_digest(false);
  EXPECT_FALSE(with_wheel.empty());
  EXPECT_EQ(with_wheel, heap_only);
}

TEST(TimerWheelQueue, GridTrajectoryStableAcrossThreadCounts) {
  const std::string reference = trajectory_digest(false);
  for (const std::size_t n_threads : {1u, 2u, 8u}) {
    par::ThreadPool pool(n_threads);
    std::vector<std::future<std::string>> futures;
    futures.reserve(n_threads);
    for (std::size_t i = 0; i < n_threads; ++i) {
      futures.push_back(pool.submit([] { return trajectory_digest(true); }));
    }
    for (auto& f : futures) EXPECT_EQ(f.get(), reference);
  }
}

}  // namespace
}  // namespace gridsub::sim
