#include "sim/computing_element.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gridsub::sim {
namespace {

TEST(ComputingElement, RunsJobsUpToSlotCount) {
  Simulator sim;
  GridMetrics metrics;
  ComputingElement ce(sim, "ce", 2, 0.0, stats::Rng(1), &metrics);
  std::vector<double> starts;
  for (int i = 0; i < 4; ++i) {
    ce.submit(100.0, [&] { starts.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(starts.size(), 4u);
  // Two start immediately, the next two when slots free at t = 100.
  EXPECT_DOUBLE_EQ(starts[0], 0.0);
  EXPECT_DOUBLE_EQ(starts[1], 0.0);
  EXPECT_DOUBLE_EQ(starts[2], 100.0);
  EXPECT_DOUBLE_EQ(starts[3], 100.0);
  EXPECT_EQ(metrics.jobs_started, 4u);
  EXPECT_EQ(metrics.jobs_completed, 4u);
}

TEST(ComputingElement, FifoOrderWithinQueue) {
  Simulator sim;
  ComputingElement ce(sim, "ce", 1, 0.0, stats::Rng(1));
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    ce.submit(10.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ComputingElement, CancelQueuedJobNeverStarts) {
  Simulator sim;
  ComputingElement ce(sim, "ce", 1, 0.0, stats::Rng(1));
  int started = 0;
  ce.submit(50.0, [&] { ++started; });
  const auto h = ce.submit(50.0, [&] { ++started; });
  EXPECT_TRUE(ce.cancel(h));
  sim.run();
  EXPECT_EQ(started, 1);
}

TEST(ComputingElement, CancelRunningJobFreesSlot) {
  Simulator sim;
  ComputingElement ce(sim, "ce", 1, 0.0, stats::Rng(1));
  std::vector<double> starts;
  const auto h = ce.submit(1000.0, [&] { starts.push_back(sim.now()); });
  ce.submit(10.0, [&] { starts.push_back(sim.now()); });
  sim.schedule_at(100.0, [&] { EXPECT_TRUE(ce.cancel(h)); });
  sim.run();
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_DOUBLE_EQ(starts[0], 0.0);
  EXPECT_DOUBLE_EQ(starts[1], 100.0);  // starts when the cancel frees it
}

TEST(ComputingElement, CancelUnknownHandleReturnsFalse) {
  Simulator sim;
  ComputingElement ce(sim, "ce", 1, 0.0, stats::Rng(1));
  EXPECT_FALSE(ce.cancel(42));
}

TEST(ComputingElement, FaultedJobsVanishSilently) {
  Simulator sim;
  GridMetrics metrics;
  ComputingElement ce(sim, "ce", 4, 1.0, stats::Rng(1), &metrics);
  int started = 0;
  ce.submit(10.0, [&] { ++started; });
  sim.run();
  EXPECT_EQ(started, 0);
  EXPECT_EQ(metrics.jobs_faulted, 1u);
}

TEST(ComputingElement, LoadReflectsQueueAndRunning) {
  Simulator sim;
  ComputingElement ce(sim, "ce", 2, 0.0, stats::Rng(1));
  EXPECT_DOUBLE_EQ(ce.load(), 0.0);
  ce.submit(100.0, nullptr);
  ce.submit(100.0, nullptr);
  ce.submit(100.0, nullptr);  // queued
  EXPECT_DOUBLE_EQ(ce.load(), 1.5);
  EXPECT_EQ(ce.running(), 2);
  EXPECT_EQ(ce.queue_length(), 1u);
  sim.run();
  EXPECT_DOUBLE_EQ(ce.load(), 0.0);
}

TEST(ComputingElement, QueueWaitIsAccounted) {
  Simulator sim;
  GridMetrics metrics;
  ComputingElement ce(sim, "ce", 1, 0.0, stats::Rng(1), &metrics);
  ce.submit(100.0, nullptr);
  ce.submit(10.0, nullptr);  // waits 100 s
  sim.run();
  EXPECT_DOUBLE_EQ(metrics.total_queue_wait, 100.0);
}

TEST(ComputingElement, RejectsBadConstruction) {
  Simulator sim;
  EXPECT_THROW(ComputingElement(sim, "x", 0, 0.0, stats::Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(ComputingElement(sim, "x", 1, 1.5, stats::Rng(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace gridsub::sim
