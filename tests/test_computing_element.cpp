#include "sim/computing_element.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gridsub::sim {
namespace {

TEST(ComputingElement, RunsJobsUpToSlotCount) {
  Simulator sim;
  GridMetrics metrics;
  ComputingElement ce(sim, "ce", 2, 0.0, stats::Rng(1), &metrics);
  std::vector<double> starts;
  for (int i = 0; i < 4; ++i) {
    ce.submit(100.0, [&] { starts.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(starts.size(), 4u);
  // Two start immediately, the next two when slots free at t = 100.
  EXPECT_DOUBLE_EQ(starts[0], 0.0);
  EXPECT_DOUBLE_EQ(starts[1], 0.0);
  EXPECT_DOUBLE_EQ(starts[2], 100.0);
  EXPECT_DOUBLE_EQ(starts[3], 100.0);
  EXPECT_EQ(metrics.jobs_started, 4u);
  EXPECT_EQ(metrics.jobs_completed, 4u);
}

TEST(ComputingElement, FifoOrderWithinQueue) {
  Simulator sim;
  ComputingElement ce(sim, "ce", 1, 0.0, stats::Rng(1));
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    ce.submit(10.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ComputingElement, CancelQueuedJobNeverStarts) {
  Simulator sim;
  ComputingElement ce(sim, "ce", 1, 0.0, stats::Rng(1));
  int started = 0;
  ce.submit(50.0, [&] { ++started; });
  const auto h = ce.submit(50.0, [&] { ++started; });
  EXPECT_TRUE(ce.cancel(h));
  sim.run();
  EXPECT_EQ(started, 1);
}

TEST(ComputingElement, CancelRunningJobFreesSlot) {
  Simulator sim;
  ComputingElement ce(sim, "ce", 1, 0.0, stats::Rng(1));
  std::vector<double> starts;
  const auto h = ce.submit(1000.0, [&] { starts.push_back(sim.now()); });
  ce.submit(10.0, [&] { starts.push_back(sim.now()); });
  sim.schedule_at(100.0, [&] { EXPECT_TRUE(ce.cancel(h)); });
  sim.run();
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_DOUBLE_EQ(starts[0], 0.0);
  EXPECT_DOUBLE_EQ(starts[1], 100.0);  // starts when the cancel frees it
}

TEST(ComputingElement, CancelUnknownHandleReturnsFalse) {
  Simulator sim;
  ComputingElement ce(sim, "ce", 1, 0.0, stats::Rng(1));
  EXPECT_FALSE(ce.cancel(42));
}

TEST(ComputingElement, FaultedJobsVanishSilently) {
  Simulator sim;
  GridMetrics metrics;
  ComputingElement ce(sim, "ce", 4, 1.0, stats::Rng(1), &metrics);
  int started = 0;
  ce.submit(10.0, [&] { ++started; });
  sim.run();
  EXPECT_EQ(started, 0);
  EXPECT_EQ(metrics.jobs_faulted, 1u);
}

TEST(ComputingElement, LoadReflectsQueueAndRunning) {
  Simulator sim;
  ComputingElement ce(sim, "ce", 2, 0.0, stats::Rng(1));
  EXPECT_DOUBLE_EQ(ce.load(), 0.0);
  ce.submit(100.0, nullptr);
  ce.submit(100.0, nullptr);
  ce.submit(100.0, nullptr);  // queued
  EXPECT_DOUBLE_EQ(ce.load(), 1.5);
  EXPECT_EQ(ce.running(), 2);
  EXPECT_EQ(ce.queue_length(), 1u);
  sim.run();
  EXPECT_DOUBLE_EQ(ce.load(), 0.0);
}

TEST(ComputingElement, QueueWaitIsAccounted) {
  Simulator sim;
  GridMetrics metrics;
  ComputingElement ce(sim, "ce", 1, 0.0, stats::Rng(1), &metrics);
  ce.submit(100.0, nullptr);
  ce.submit(10.0, nullptr);  // waits 100 s
  sim.run();
  EXPECT_DOUBLE_EQ(metrics.total_queue_wait, 100.0);
}

TEST(ComputingElement, StaleHandleOnRecycledSlotReturnsFalse) {
  // Handles are (generation, slot index); after a job finishes or is
  // canceled its slot is recycled, and the old handle must go stale
  // instead of resolving to the new tenant.
  Simulator sim;
  ComputingElement ce(sim, "ce", 1, 0.0, stats::Rng(1));
  const auto a = ce.submit(10.0, nullptr);
  sim.run();                    // a completed; slot free
  EXPECT_FALSE(ce.cancel(a));   // finished long ago
  int started = 0;
  ce.submit(1e6, nullptr);      // occupy the worker
  const auto b = ce.submit(10.0, [&] { ++started; });  // reuses a's slot
  EXPECT_NE(a, b);
  EXPECT_FALSE(ce.cancel(a));   // stale: must NOT cancel b
  EXPECT_TRUE(ce.cancel(b));
  EXPECT_FALSE(ce.cancel(b));   // double-cancel reports false
}

TEST(ComputingElement, FaultedHandleNeverResolves) {
  // A silently-faulted submission returns a handle that maps to no slot:
  // cancel() must report false now and forever, even after many real
  // submissions recycle storage.
  Simulator sim;
  ComputingElement ce(sim, "ce", 1, 1.0, stats::Rng(1));  // always faults
  const auto ghost = ce.submit(10.0, nullptr);
  EXPECT_FALSE(ce.cancel(ghost));
  Simulator sim2;
  ComputingElement ce2(sim2, "ce2", 1, 0.0, stats::Rng(1));
  for (int i = 0; i < 100; ++i) ce2.cancel(ce2.submit(1.0, nullptr));
  EXPECT_FALSE(ce2.cancel(ghost));
}

TEST(ComputingElement, CanceledQueuedJobStillCountsUntilDrain) {
  // Historical (deque-era) semantics the WMS load ranking depends on: a
  // job canceled while queued keeps inflating queue_length() until the
  // queue would have drained past it — here, never, because the worker
  // is pinned — and drains as soon as a slot frees.
  Simulator sim;
  ComputingElement ce(sim, "ce", 1, 0.0, stats::Rng(1));
  const auto pin = ce.submit(1000.0, nullptr);  // running
  const auto h1 = ce.submit(10.0, nullptr);
  const auto h2 = ce.submit(10.0, nullptr);
  EXPECT_EQ(ce.queue_length(), 2u);
  EXPECT_TRUE(ce.cancel(h1));
  EXPECT_TRUE(ce.cancel(h2));
  EXPECT_EQ(ce.queue_length(), 2u);  // ghosts still counted
  EXPECT_DOUBLE_EQ(ce.load(), 3.0);
  EXPECT_TRUE(ce.cancel(pin));  // frees the worker: lane drains the ghosts
  EXPECT_EQ(ce.queue_length(), 0u);
  EXPECT_DOUBLE_EQ(ce.load(), 0.0);
}

TEST(ComputingElement, GhostDrainPreservesFifoAndInterleaving) {
  // Cancel every other queued job under a pinned worker, then free it:
  // survivors must start in submission order and the ghosts must vanish
  // from queue_length() exactly when the lane drains.
  Simulator sim;
  ComputingElement ce(sim, "ce", 1, 0.0, stats::Rng(1));
  ce.submit(50.0, nullptr);  // running until t=50
  std::vector<int> order;
  std::vector<ComputingElement::JobHandle> handles;
  for (int i = 0; i < 8; ++i) {
    handles.push_back(ce.submit(1.0, [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 8; i += 2) EXPECT_TRUE(ce.cancel(handles[i]));
  EXPECT_EQ(ce.queue_length(), 8u);  // 4 live + 4 ghosts
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5, 7}));
  EXPECT_EQ(ce.queue_length(), 0u);
}

TEST(ComputingElement, RejectsBadConstruction) {
  Simulator sim;
  EXPECT_THROW(ComputingElement(sim, "x", 0, 0.0, stats::Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(ComputingElement(sim, "x", 1, 1.5, stats::Rng(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace gridsub::sim
