#include "numerics/interpolation.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gridsub::numerics {
namespace {

TEST(UniformGridInterpolant, ReproducesNodesExactly) {
  const std::vector<double> y{0.0, 1.0, 4.0, 9.0};
  UniformGridInterpolant interp(0.0, 2.0, y);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_DOUBLE_EQ(interp(2.0 * static_cast<double>(i)), y[i]);
  }
}

TEST(UniformGridInterpolant, LinearBetweenNodes) {
  UniformGridInterpolant interp(0.0, 1.0, {0.0, 10.0});
  EXPECT_DOUBLE_EQ(interp(0.25), 2.5);
  EXPECT_DOUBLE_EQ(interp(0.75), 7.5);
}

TEST(UniformGridInterpolant, ClampsOutsideTheGrid) {
  UniformGridInterpolant interp(5.0, 1.0, {2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(interp(0.0), 2.0);
  EXPECT_DOUBLE_EQ(interp(100.0), 4.0);
}

TEST(UniformGridInterpolant, NonZeroOrigin) {
  UniformGridInterpolant interp(10.0, 2.0, {1.0, 3.0});
  EXPECT_DOUBLE_EQ(interp(11.0), 2.0);
}

TEST(UniformGridInterpolant, RejectsBadConstruction) {
  EXPECT_THROW(UniformGridInterpolant(0.0, 1.0, {1.0}),
               std::invalid_argument);
  EXPECT_THROW(UniformGridInterpolant(0.0, 0.0, {1.0, 2.0}),
               std::invalid_argument);
}

TEST(InterpSorted, InterpolatesAndClamps) {
  const std::vector<double> x{0.0, 1.0, 3.0};
  const std::vector<double> y{0.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(interp_sorted(x, y, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(interp_sorted(x, y, 2.0), 4.0);
  EXPECT_DOUBLE_EQ(interp_sorted(x, y, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(interp_sorted(x, y, 9.0), 6.0);
}

TEST(InterpSorted, RejectsSizeMismatch) {
  const std::vector<double> x{0.0, 1.0};
  const std::vector<double> y{0.0};
  EXPECT_THROW(interp_sorted(x, y, 0.5), std::invalid_argument);
}

TEST(InverseMonotone, InvertsLinearTabulation) {
  // y(x) = x/10 on x in [0, 10].
  std::vector<double> y;
  for (int i = 0; i <= 10; ++i) y.push_back(static_cast<double>(i) / 10.0);
  EXPECT_NEAR(inverse_monotone(0.0, 1.0, y, 0.35), 3.5, 1e-12);
  EXPECT_DOUBLE_EQ(inverse_monotone(0.0, 1.0, y, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(inverse_monotone(0.0, 1.0, y, 2.0), 10.0);
}

TEST(InverseMonotone, HandlesFlatSegments) {
  // Plateau between nodes 1 and 3: inversion lands at the left edge.
  const std::vector<double> y{0.0, 0.5, 0.5, 0.5, 1.0};
  const double x = inverse_monotone(0.0, 1.0, y, 0.5);
  EXPECT_GE(x, 0.9);
  EXPECT_LE(x, 1.1);
}

TEST(InverseMonotone, RoundTripsWithInterpolant) {
  const std::vector<double> y{0.0, 0.1, 0.3, 0.7, 1.0};
  UniformGridInterpolant interp(0.0, 1.0, y);
  for (double target : {0.05, 0.2, 0.5, 0.9}) {
    const double x = inverse_monotone(0.0, 1.0, y, target);
    EXPECT_NEAR(interp(x), target, 1e-10);
  }
}

}  // namespace
}  // namespace gridsub::numerics
