// Cost criterion (paper §7, eq. 6) and the stability analysis of Table 5.

#include "core/cost.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.hpp"

namespace gridsub::core {
namespace {

model::DiscretizedLatencyModel shared_model() {
  static const auto m =
      testutil::discretize(testutil::make_heavy_model(0.05, 4000.0), 1.0);
  return m;
}

TEST(CostModel, SingleResubmissionCostsExactlyOne) {
  const auto m = shared_model();
  const CostModel cost(m);
  const auto single = cost.evaluate_single();
  EXPECT_DOUBLE_EQ(single.delta_cost, 1.0);
  EXPECT_DOUBLE_EQ(single.n_parallel, 1.0);
  EXPECT_EQ(single.kind, StrategyKind::kSingleResubmission);
}

TEST(CostModel, DeltaCostIsLinearInBothFactors) {
  const auto m = shared_model();
  const CostModel cost(m);
  const double base = cost.baseline().metrics.expectation;
  EXPECT_DOUBLE_EQ(cost.delta_cost(1.0, base), 1.0);
  EXPECT_DOUBLE_EQ(cost.delta_cost(2.0, base), 2.0);
  EXPECT_DOUBLE_EQ(cost.delta_cost(1.0, base / 2.0), 0.5);
}

TEST(CostModel, MultipleSubmissionCostGrowsWithB) {
  // Paper Table 4, right block: Δcost = b * E_J(b)/E_J(1) increases with b
  // because E_J saturates while N∥ = b keeps growing.
  const auto m = shared_model();
  const CostModel cost(m);
  double prev = 0.0;
  for (int b : {2, 3, 5, 10, 20}) {
    const auto e = cost.evaluate_multiple(b);
    EXPECT_GT(e.delta_cost, prev) << "b=" << b;
    EXPECT_DOUBLE_EQ(e.n_parallel, static_cast<double>(b));
    prev = e.delta_cost;
  }
  EXPECT_GT(prev, 1.0);  // many copies always cost more than the baseline
}

TEST(CostModel, EvaluateDelayedIsConsistentWithComponents) {
  const auto m = shared_model();
  const CostModel cost(m);
  const DelayedResubmission d(m);
  const double t0 = 400.0, t_inf = 700.0;
  const auto e = cost.evaluate_delayed(t0, t_inf);
  EXPECT_DOUBLE_EQ(e.expectation, d.expectation(t0, t_inf));
  EXPECT_DOUBLE_EQ(
      e.n_parallel,
      DelayedResubmission::parallel_jobs_at(e.expectation, t0, t_inf));
  EXPECT_NEAR(e.delta_cost,
              e.n_parallel * e.expectation /
                  cost.baseline().metrics.expectation,
              1e-12);
}

TEST(CostModel, DelayedCostOptimumBeatsOrMatchesBaseline) {
  // The paper's central §7 claim: a delayed configuration exists with
  // Δcost <= 1 (usually < 1) — less total load than plain resubmission.
  const auto m = shared_model();
  const CostModel cost(m);
  const auto opt = cost.optimize_delayed_cost();
  EXPECT_LE(opt.delta_cost, 1.0 + 1e-9);
  EXPECT_LT(opt.expectation, cost.baseline().metrics.expectation);
  // Integer parameters, as the paper requires for practical resubmission.
  EXPECT_DOUBLE_EQ(opt.t0, std::round(opt.t0));
  EXPECT_DOUBLE_EQ(opt.t_inf, std::round(opt.t_inf));
}

TEST(CostModel, CostOptimumIsNoWorseThanNearbyIntegerPoints) {
  const auto m = shared_model();
  const CostModel cost(m);
  const auto opt = cost.optimize_delayed_cost();
  for (int d0 = -3; d0 <= 3; ++d0) {
    for (int di = -3; di <= 3; ++di) {
      const double t0 = opt.t0 + d0;
      const double ti = opt.t_inf + di;
      if (!cost.delayed().feasible(t0, ti)) continue;
      EXPECT_GE(cost.evaluate_delayed(t0, ti).delta_cost,
                opt.delta_cost - 1e-9)
          << "offset " << d0 << "," << di;
    }
  }
}

TEST(CostModel, StabilityReportBoundsTheNeighbourhood) {
  const auto m = shared_model();
  const CostModel cost(m);
  const auto opt = cost.optimize_delayed_cost();
  const auto rep = cost.stability(opt.t0, opt.t_inf, 5);
  EXPECT_DOUBLE_EQ(rep.base_delta_cost, opt.delta_cost);
  EXPECT_GE(rep.max_delta_cost, rep.base_delta_cost);
  EXPECT_GE(rep.max_rel_diff, 0.0);
  // The paper reports <= 14% degradation within radius 5; allow slack but
  // catch pathological cliffs.
  EXPECT_LT(rep.max_rel_diff, 0.5);
}

TEST(CostModel, StabilityRadiusZeroIsBaseOnly) {
  const auto m = shared_model();
  const CostModel cost(m);
  const auto rep = cost.stability(400.0, 700.0, 0);
  EXPECT_DOUBLE_EQ(rep.max_delta_cost, rep.base_delta_cost);
  EXPECT_DOUBLE_EQ(rep.max_rel_diff, 0.0);
}

TEST(CostModel, StabilityRejectsNegativeRadius) {
  const auto m = shared_model();
  const CostModel cost(m);
  EXPECT_THROW((void)cost.stability(400.0, 700.0, -1), std::invalid_argument);
}

TEST(CostModel, OptimizeRejectsBadBounds) {
  const auto m = shared_model();
  const CostModel cost(m);
  EXPECT_THROW((void)cost.optimize_delayed_cost(500.0, 100.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace gridsub::core
