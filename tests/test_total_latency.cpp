// Total-latency distribution: closed survival forms, quantile inversion,
// and agreement with the strategy models and Monte Carlo.

#include "core/total_latency.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/delayed_resubmission.hpp"
#include "core/multiple_submission.hpp"
#include "core/single_resubmission.hpp"
#include "mc/mc_engine.hpp"
#include "model/discretized.hpp"
#include "traces/datasets.hpp"

namespace gridsub::core {
namespace {

const model::DiscretizedLatencyModel& test_model() {
  static const auto m = model::DiscretizedLatencyModel::from_trace(
      traces::make_trace_by_name("2006-IX"), 1.0);
  return m;
}

TEST(TotalLatency, SurvivalStartsAtOneAndDecreases) {
  const auto d = TotalLatencyDistribution::single(test_model(), 600.0);
  EXPECT_DOUBLE_EQ(d.survival(0.0), 1.0);
  EXPECT_DOUBLE_EQ(d.survival(-5.0), 1.0);
  double prev = 1.0;
  for (double t = 50.0; t <= 5000.0; t += 50.0) {
    const double s = d.survival(t);
    EXPECT_LE(s, prev + 1e-12) << "t=" << t;
    EXPECT_GT(s, 0.0);
    prev = s;
  }
}

TEST(TotalLatency, SurvivalIsContinuousAcrossRoundBoundaries) {
  const double t_inf = 700.0;
  const auto d = TotalLatencyDistribution::multiple(test_model(), 3, t_inf);
  for (int k = 1; k <= 4; ++k) {
    const double t = k * t_inf;
    EXPECT_NEAR(d.survival(t - 1e-6), d.survival(t + 1e-6), 1e-6)
        << "boundary k=" << k;
  }
}

TEST(TotalLatency, GeometricDecayPerRound) {
  const double t_inf = 600.0;
  const auto d = TotalLatencyDistribution::single(test_model(), t_inf);
  const double q = test_model().survival_at(t_inf);
  // S(k*t_inf) = q^k exactly.
  for (int k = 1; k <= 5; ++k) {
    EXPECT_NEAR(d.survival(k * t_inf), std::pow(q, k), 1e-12);
  }
}

TEST(TotalLatency, ExpectationMatchesStrategyModels) {
  const auto& m = test_model();
  const auto single = TotalLatencyDistribution::single(m, 596.0);
  EXPECT_NEAR(single.expectation(),
              SingleResubmission(m).expectation(596.0), 1e-9);

  const auto multi = TotalLatencyDistribution::multiple(m, 5, 887.0);
  EXPECT_NEAR(multi.expectation(),
              MultipleSubmission(m, 5).expectation(887.0), 1e-9);

  const auto del = TotalLatencyDistribution::delayed(m, 339.0, 485.0);
  EXPECT_NEAR(del.expectation(),
              DelayedResubmission(m).expectation(339.0, 485.0), 1e-9);
}

TEST(TotalLatency, ExpectationEqualsIntegralOfSurvival) {
  // E[J] = ∫ S(t) dt — ties the closed form to the survival form.
  const auto d = TotalLatencyDistribution::multiple(test_model(), 2, 880.0);
  double acc = 0.0;
  const double h = 0.5;
  double t = 0.0;
  double prev = 1.0;
  while (prev > 1e-10) {
    t += h;
    const double s = d.survival(t);
    acc += 0.5 * h * (prev + s);
    prev = s;
  }
  EXPECT_NEAR(acc, d.expectation(), 0.002 * d.expectation());
}

TEST(TotalLatency, QuantileInvertsCdf) {
  const auto d = TotalLatencyDistribution::multiple(test_model(), 2, 880.0);
  for (const double p : {0.05, 0.25, 0.5, 0.75, 0.9, 0.99, 0.9999}) {
    const double t = d.quantile(p);
    EXPECT_NEAR(d.cdf(t), p, 1e-6) << "p=" << p;
  }
}

TEST(TotalLatency, QuantileInvertsCdfForDelayed) {
  const auto d = TotalLatencyDistribution::delayed(test_model(), 339.0,
                                                   485.0);
  for (const double p : {0.1, 0.5, 0.9, 0.99, 0.9995}) {
    const double t = d.quantile(p);
    EXPECT_NEAR(d.cdf(t), p, 1e-6) << "p=" << p;
  }
}

TEST(TotalLatency, QuantileZeroIsZeroAndMonotone) {
  const auto d = TotalLatencyDistribution::single(test_model(), 600.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 0.0);
  double prev = 0.0;
  for (double p = 0.1; p < 1.0; p += 0.1) {
    const double t = d.quantile(p);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(TotalLatency, SamplingReproducesExpectation) {
  const auto d = TotalLatencyDistribution::multiple(test_model(), 3, 881.0);
  stats::Rng rng(42);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / n, d.expectation(), 0.03 * d.expectation());
}

TEST(TotalLatency, SurvivalMatchesMcTailFrequencies) {
  const auto& m = test_model();
  const auto d = TotalLatencyDistribution::delayed(m, 339.0, 485.0);
  mc::McOptions mo;
  mo.replications = 100000;
  const auto mc = mc::simulate_delayed(m, 339.0, 485.0, mo);
  // Compare E from the distribution with MC (they share no code path).
  EXPECT_NEAR(d.expectation(), mc.mean_latency, 0.02 * mc.mean_latency);
  EXPECT_NEAR(d.std_deviation(), mc.std_latency, 0.05 * mc.std_latency);
}

TEST(TotalLatency, JobSecondsAccounting) {
  const auto& m = test_model();
  const auto single = TotalLatencyDistribution::single(m, 596.0);
  EXPECT_DOUBLE_EQ(single.expected_job_seconds(), single.expectation());
  const auto multi = TotalLatencyDistribution::multiple(m, 4, 881.0);
  EXPECT_DOUBLE_EQ(multi.expected_job_seconds(), 4.0 * multi.expectation());
  const auto del = TotalLatencyDistribution::delayed(m, 339.0, 485.0);
  EXPECT_GT(del.expected_job_seconds(), del.expectation());
  EXPECT_LT(del.expected_job_seconds(), 2.0 * del.expectation());
}

TEST(TotalLatency, RejectsInvalidParameters) {
  const auto& m = test_model();
  EXPECT_THROW(TotalLatencyDistribution::single(m, 0.0),
               std::invalid_argument);
  EXPECT_THROW(TotalLatencyDistribution::single(m, m.horizon() * 2.0),
               std::invalid_argument);
  EXPECT_THROW(TotalLatencyDistribution::multiple(m, 0, 500.0),
               std::invalid_argument);
  EXPECT_THROW(TotalLatencyDistribution::delayed(m, 300.0, 700.0),
               std::invalid_argument);  // t_inf > 2*t0
  EXPECT_THROW(TotalLatencyDistribution::delayed(m, 300.0, 250.0),
               std::invalid_argument);  // t_inf < t0
  const auto ok = TotalLatencyDistribution::single(m, 600.0);
  EXPECT_THROW((void)ok.quantile(1.0), std::invalid_argument);
  EXPECT_THROW((void)ok.quantile(-0.1), std::invalid_argument);
}

TEST(TotalLatency, SingleEqualsMultipleWithBOne) {
  const auto& m = test_model();
  const auto a = TotalLatencyDistribution::single(m, 650.0);
  const auto b = TotalLatencyDistribution::multiple(m, 1, 650.0);
  for (double t = 100.0; t < 3000.0; t += 100.0) {
    EXPECT_DOUBLE_EQ(a.survival(t), b.survival(t));
  }
  EXPECT_DOUBLE_EQ(a.expectation(), b.expectation());
}

TEST(TotalLatency, MoreCopiesStochasticallyDominate) {
  // More parallel copies => J stochastically smaller at every t.
  const auto& m = test_model();
  const auto b2 = TotalLatencyDistribution::multiple(m, 2, 880.0);
  const auto b6 = TotalLatencyDistribution::multiple(m, 6, 880.0);
  for (double t = 50.0; t <= 4000.0; t += 50.0) {
    EXPECT_LE(b6.survival(t), b2.survival(t) + 1e-12) << "t=" << t;
  }
}

}  // namespace
}  // namespace gridsub::core
