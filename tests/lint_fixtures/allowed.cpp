// Fixture: the same violations as violations.cpp, every one waived with
// a reasoned allow — the linter must exit 0 on this file.

#include <cstdio>

namespace fixture {

void print_value(double v) {
  std::printf("%.3f\n", v);  // gridsub-lint: allow(printf-float) fixture
}

void print_percent(double v) {
  // gridsub-lint: allow(printf-float) fixture: directive-above form
  std::printf("%+.1f%%\n", v);
}

int raw_seed() {
  std::random_device rd;  // gridsub-lint: allow(raw-rand) fixture
  return static_cast<int>(rd());
}

long stamp() {
  // gridsub-lint: allow(wall-clock) fixture
  return static_cast<long>(time(nullptr));
}

}  // namespace fixture
