// Fixture: determinism-safe code the linter must pass untouched,
// including the look-alikes that trip naive regexes — rule names in
// comments and format conversions in comments or identifiers.

#include <string>
#include <unordered_map>

namespace fixture {

// Keyed lookup into an unordered_map is fine; only iteration is flagged.
double lookup(const std::unordered_map<int, double>& cells, int key) {
  const auto it = cells.find(key);
  return it == cells.end() ? 0.0 : it->second;
}

// A comment mentioning std::random_device or setprecision(12) is not a
// finding, and neither is "%.3f" appearing in this comment.
inline std::string printf_like_name() {
  return "literal %% percent, no conversion";
}

// Identifiers containing rule-ish substrings: randomize, timestamp.
int randomize_label(int timestamp) { return timestamp + 1; }

}  // namespace fixture
