// Fixture: broken waivers.  Each directive here is itself an error —
// an unknown rule name, an allow with no reason, a malformed directive,
// and allows that suppress nothing.

namespace fixture {

// gridsub-lint: allow(made-up-rule) this rule does not exist
int unknown_rule = 0;

// gridsub-lint: allow(printf-float)
int missing_reason = 0;

// gridsub-lint: allowed(printf-float) wrong verb
int malformed = 0;

// gridsub-lint: allow(wall-clock) nothing on the next line uses the clock
int unused_line_allow = 0;

// gridsub-lint: allow-file(locale) no locale call anywhere in this file
int unused_file_allow = 0;

}  // namespace fixture
