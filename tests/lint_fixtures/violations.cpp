// Fixture: one un-waived violation per determinism-lint rule.  This file
// is never compiled — it exists so scripts/test_lint_determinism.py can
// assert that every rule actually fires (and on the right line).

#include <cstdio>
#include <map>
#include <unordered_map>

namespace fixture {

double fold_unordered() {
  std::unordered_map<int, double> cells;
  double sum = 0.0;
  for (const auto& kv : cells) {  // unordered-container
    sum += kv.second;
  }
  return sum;
}

int raw_seed() {
  std::random_device rd;  // raw-rand
  return static_cast<int>(rd());
}

long stamp() {
  return static_cast<long>(time(nullptr));  // wall-clock
}

using ByAddress = std::map<int*, double>;  // pointer-key

void print_stream(double v) {
  // stream-float: setprecision reference lives in real code, not here.
  (void)v;
  std::setprecision(9);  // stream-float
}

void print_value(double v) {
  std::printf("%.3f\n", v);  // printf-float
}

void pin_locale() {
  setlocale(LC_ALL, "C");  // locale
}

}  // namespace fixture
