// Mixture, Shifted and Truncated wrappers.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "stats/exponential.hpp"
#include "stats/lognormal.hpp"
#include "stats/mixture.hpp"
#include "stats/pareto.hpp"
#include "stats/shifted.hpp"
#include "stats/truncated.hpp"
#include "stats/uniform.hpp"

namespace gridsub::stats {
namespace {

Mixture make_mixture() {
  std::vector<Mixture::Component> parts;
  parts.push_back({0.7, std::make_unique<LogNormal>(5.5, 0.6)});
  parts.push_back({0.3, std::make_unique<ParetoLomax>(2.5, 400.0)});
  return Mixture(std::move(parts));
}

TEST(MixtureDist, WeightsAreNormalized) {
  std::vector<Mixture::Component> parts;
  parts.push_back({2.0, std::make_unique<Exponential>(0.01)});
  parts.push_back({6.0, std::make_unique<Exponential>(0.02)});
  const Mixture m(std::move(parts));
  EXPECT_NEAR(m.weight(0), 0.25, 1e-15);
  EXPECT_NEAR(m.weight(1), 0.75, 1e-15);
}

TEST(MixtureDist, CdfIsWeightedSum) {
  const auto m = make_mixture();
  const LogNormal ln(5.5, 0.6);
  const ParetoLomax pl(2.5, 400.0);
  for (double x : {50.0, 300.0, 1500.0}) {
    EXPECT_NEAR(m.cdf(x), 0.7 * ln.cdf(x) + 0.3 * pl.cdf(x), 1e-12);
  }
}

TEST(MixtureDist, MeanAndVarianceByLawOfTotalMoments) {
  const auto m = make_mixture();
  const LogNormal ln(5.5, 0.6);
  const ParetoLomax pl(2.5, 400.0);
  const double mean = 0.7 * ln.mean() + 0.3 * pl.mean();
  EXPECT_NEAR(m.mean(), mean, 1e-9);
  const double ex2 = 0.7 * (ln.variance() + ln.mean() * ln.mean()) +
                     0.3 * (pl.variance() + pl.mean() * pl.mean());
  EXPECT_NEAR(m.variance(), ex2 - mean * mean, 1e-6);
}

TEST(MixtureDist, SamplingMatchesCdf) {
  const auto m = make_mixture();
  Rng rng(99);
  const int n = 200000;
  const double x_ref = 400.0;
  int below = 0;
  for (int i = 0; i < n; ++i) {
    if (m.sample(rng) <= x_ref) ++below;
  }
  EXPECT_NEAR(below / static_cast<double>(n), m.cdf(x_ref), 0.005);
}

TEST(MixtureDist, QuantileInvertsCdfViaBaseImplementation) {
  const auto m = make_mixture();
  for (double p : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(m.cdf(m.quantile(p)), p, 1e-7);
  }
}

TEST(MixtureDist, DeepCopySemantics) {
  auto m = std::make_unique<Mixture>(make_mixture());
  const auto c = m->clone();
  const double before = c->cdf(200.0);
  m.reset();  // destroying the original must not affect the clone
  EXPECT_DOUBLE_EQ(c->cdf(200.0), before);
}

TEST(MixtureDist, RejectsEmptyAndBadWeights) {
  EXPECT_THROW(Mixture({}), std::invalid_argument);
  std::vector<Mixture::Component> parts;
  parts.push_back({0.0, std::make_unique<Exponential>(1.0)});
  EXPECT_THROW(Mixture(std::move(parts)), std::invalid_argument);
}

TEST(ShiftedDist, TranslatesAllQuantities) {
  const Shifted s(std::make_unique<Exponential>(0.01), 100.0);
  const Exponential e(0.01);
  EXPECT_DOUBLE_EQ(s.mean(), e.mean() + 100.0);
  EXPECT_DOUBLE_EQ(s.variance(), e.variance());
  EXPECT_DOUBLE_EQ(s.cdf(150.0), e.cdf(50.0));
  EXPECT_DOUBLE_EQ(s.pdf(150.0), e.pdf(50.0));
  EXPECT_DOUBLE_EQ(s.quantile(0.5), e.quantile(0.5) + 100.0);
  EXPECT_DOUBLE_EQ(s.support_lower(), 100.0);
}

TEST(ShiftedDist, NothingBelowTheFloor) {
  const Shifted s(std::make_unique<LogNormal>(5.0, 1.0), 60.0);
  EXPECT_DOUBLE_EQ(s.cdf(59.9), 0.0);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(s.sample(rng), 60.0);
}

TEST(TruncatedDist, CdfSpansZeroToOneOnTheBand) {
  const Truncated t(std::make_unique<Exponential>(0.01), 0.0, 200.0);
  EXPECT_DOUBLE_EQ(t.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(t.cdf(200.0), 1.0);
  EXPECT_GT(t.cdf(100.0), 0.0);
  EXPECT_LT(t.cdf(100.0), 1.0);
}

TEST(TruncatedDist, MatchesConditionalProbability) {
  const Exponential e(0.01);
  const Truncated t(e.clone(), 0.0, 200.0);
  const double x = 80.0;
  EXPECT_NEAR(t.cdf(x), e.cdf(x) / e.cdf(200.0), 1e-12);
}

TEST(TruncatedDist, MeanViaQuadratureMatchesClosedForm) {
  // Uniform(0, 10) truncated to [2, 6] is Uniform(2, 6): mean 4, var 4/3.
  const Truncated t(std::make_unique<UniformDist>(0.0, 10.0), 2.0, 6.0);
  EXPECT_NEAR(t.mean(), 4.0, 1e-6);
  EXPECT_NEAR(t.variance(), 4.0 / 3.0, 1e-6);
}

TEST(TruncatedDist, SamplesStayInsideTheBand) {
  const Truncated t(std::make_unique<LogNormal>(6.0, 1.5), 100.0, 5000.0);
  Rng rng(77);
  for (int i = 0; i < 20000; ++i) {
    const double x = t.sample(rng);
    EXPECT_GE(x, 100.0);
    EXPECT_LE(x, 5000.0);
  }
}

TEST(TruncatedDist, RejectsZeroMassBand) {
  EXPECT_THROW(Truncated(std::make_unique<UniformDist>(0.0, 1.0), 5.0, 6.0),
               std::invalid_argument);
  EXPECT_THROW(Truncated(std::make_unique<UniformDist>(0.0, 1.0), 0.5, 0.5),
               std::invalid_argument);
}

TEST(Wrappers, ComposeShiftedTruncated) {
  // Shift then truncate: the composition used by the dataset calibration.
  auto bulk = std::make_unique<Shifted>(
      std::make_unique<LogNormal>(5.5, 1.0), 80.0);
  const Truncated t(std::move(bulk), 80.0, 10000.0);
  EXPECT_GE(t.quantile(0.001), 80.0);
  EXPECT_LE(t.quantile(0.999), 10000.0);
  EXPECT_NEAR(t.cdf(t.quantile(0.4)), 0.4, 1e-7);
}

}  // namespace
}  // namespace gridsub::stats
