#include "exp/campaign.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>
#include <string>

namespace gridsub::exp {
namespace {

CampaignAxes small_axes(std::size_t scenarios = 3, std::size_t strategies = 2,
                        std::size_t reps = 4) {
  CampaignAxes axes;
  axes.name = "test";
  for (std::size_t i = 0; i < scenarios; ++i) {
    axes.scenario_labels.push_back("sc" + std::to_string(i));
  }
  for (std::size_t i = 0; i < strategies; ++i) {
    axes.strategy_labels.push_back("st" + std::to_string(i));
  }
  axes.replications = reps;
  axes.root_seed = 42;
  return axes;
}

/// Analytic evaluator: cheap, deterministic in the context only.
CellMetrics analytic_cell(const CellContext& ctx) {
  return {{"value", static_cast<double>(ctx.seed % 1000)},
          {"index", static_cast<double>(ctx.flat)}};
}

TEST(CampaignAxes, FlatDecodeRoundTrips) {
  const CampaignAxes axes = small_axes();
  EXPECT_EQ(axes.cell_count(), 24u);
  for (std::size_t flat = 0; flat < axes.cell_count(); ++flat) {
    const CellContext ctx = axes.cell(flat);
    EXPECT_EQ(ctx.flat, flat);
    EXPECT_EQ((ctx.scenario * axes.strategy_labels.size() + ctx.strategy) *
                      axes.replications +
                  ctx.replication,
              flat);
  }
}

TEST(CampaignAxes, CellSeedsAreDistinctAndIndexOnly) {
  const CampaignAxes axes = small_axes(4, 3, 8);
  std::set<std::uint64_t> seeds;
  for (std::size_t flat = 0; flat < axes.cell_count(); ++flat) {
    seeds.insert(axes.cell(flat).seed);
  }
  EXPECT_EQ(seeds.size(), axes.cell_count());  // no collisions
  // Seed depends on indices only, not on any runner state.
  EXPECT_EQ(axes.cell_seed(1, 2, 3), axes.cell_seed(1, 2, 3));
  EXPECT_NE(axes.cell_seed(1, 2, 3), axes.cell_seed(2, 1, 3));
  // A different root produces a different stream.
  CampaignAxes other = axes;
  other.root_seed = 43;
  EXPECT_NE(axes.cell_seed(0, 0, 0), other.cell_seed(0, 0, 0));
}

TEST(CampaignAxes, ValidateRejectsDegenerateGrids) {
  CampaignAxes axes = small_axes();
  axes.scenario_labels.clear();
  EXPECT_THROW(axes.validate(), std::invalid_argument);
  axes = small_axes();
  axes.strategy_labels.clear();
  EXPECT_THROW(axes.validate(), std::invalid_argument);
  axes = small_axes();
  axes.replications = 0;
  EXPECT_THROW(axes.validate(), std::invalid_argument);
}

TEST(CampaignRunner, ResultsLandInFlatOrderAtAnyThreadCount) {
  const CampaignAxes axes = small_axes();
  par::ThreadPool one(1);
  CampaignOptions serial_options;
  serial_options.pool = &one;
  const CampaignResult serial =
      CampaignRunner(serial_options).run(axes, analytic_cell);
  ASSERT_EQ(serial.cells().size(), axes.cell_count());
  for (std::size_t flat = 0; flat < axes.cell_count(); ++flat) {
    EXPECT_EQ(serial.cells()[flat].context.flat, flat);
  }

  par::ThreadPool wide(8);
  CampaignOptions options;
  options.pool = &wide;
  const CampaignResult parallel = CampaignRunner(options).run(axes,
                                                              analytic_cell);
  EXPECT_EQ(serial.to_json(), parallel.to_json());  // byte-identical
}

TEST(CampaignRunner, AggregatesMeanAndStderr) {
  CampaignAxes axes = small_axes(1, 1, 4);
  // Replications produce 1, 2, 3, 4 -> mean 2.5, sem sqrt(5/3)/2.
  const CampaignResult result =
      CampaignRunner().run(axes, [](const CellContext& ctx) {
        return CellMetrics{
            {"x", static_cast<double>(ctx.replication + 1)}};
      });
  EXPECT_DOUBLE_EQ(result.mean(0, 0, "x"), 2.5);
  EXPECT_NEAR(result.sem(0, 0, "x"), std::sqrt(5.0 / 3.0) / 2.0, 1e-12);
  EXPECT_THROW((void)result.mean(0, 0, "nope"), std::out_of_range);
  // Single replication: sem is exactly zero.
  axes.replications = 1;
  const CampaignResult single =
      CampaignRunner().run(axes, [](const CellContext&) {
        return CellMetrics{{"x", 7.0}};
      });
  EXPECT_DOUBLE_EQ(single.sem(0, 0, "x"), 0.0);
}

TEST(CampaignRunner, MismatchedMetricNamesThrow) {
  const CampaignAxes axes = small_axes(1, 1, 2);
  EXPECT_THROW(
      (void)CampaignRunner().run(axes,
                                 [](const CellContext& ctx) {
                                   return CellMetrics{
                                       {ctx.replication == 0 ? "a" : "b",
                                        1.0}};
                                 }),
      std::logic_error);
}

TEST(CampaignRunner, CellExceptionsPropagateAfterAllCellsSettle) {
  const CampaignAxes axes = small_axes(2, 2, 2);
  std::atomic<int> evaluated{0};
  EXPECT_THROW(
      (void)CampaignRunner().run(axes,
                                 [&](const CellContext& ctx) -> CellMetrics {
                                   ++evaluated;
                                   if (ctx.flat == 3) {
                                     throw std::runtime_error("cell boom");
                                   }
                                   return {{"v", 1.0}};
                                 }),
      std::runtime_error);
  EXPECT_EQ(evaluated.load(), 8);  // no cell was abandoned mid-flight
}

TEST(CampaignRunner, ProgressSnapshotsAreMonotoneAndComplete) {
  const CampaignAxes axes = small_axes(2, 3, 2);
  std::vector<CampaignProgress> snapshots;
  CampaignOptions options;
  options.on_progress = [&snapshots](const CampaignProgress& p) {
    snapshots.push_back(p);
  };
  (void)CampaignRunner(options).run(axes, analytic_cell);
  // Baseline snapshot plus one per fresh cell; completed never regresses
  // and ends at total.
  ASSERT_EQ(snapshots.size(), axes.cell_count() + 1);
  EXPECT_EQ(snapshots.front().completed, 0u);
  EXPECT_EQ(snapshots.front().fresh, 0u);
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    EXPECT_EQ(snapshots[i].completed, i);
    EXPECT_EQ(snapshots[i].total, axes.cell_count());
    EXPECT_EQ(snapshots[i].shard.count, 1u);
  }
  EXPECT_EQ(snapshots.back().completed, axes.cell_count());
}

TEST(CampaignResult, SummaryTableHasOneRowPerGroup) {
  const CampaignAxes axes = small_axes(3, 2, 2);
  const CampaignResult result = CampaignRunner().run(axes, analytic_cell);
  EXPECT_EQ(result.summary_table().row_count(), 6u);
  EXPECT_EQ(result.summary_table({"value"}).row_count(), 6u);
}

TEST(CampaignResult, JsonIsStructuredAndStable) {
  const CampaignAxes axes = small_axes(2, 1, 2);
  const CampaignResult result = CampaignRunner().run(axes, analytic_cell);
  const std::string json = result.to_json();
  EXPECT_NE(json.find("\"schema\": \"gridsub-campaign-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"aggregates\""), std::string::npos);
  EXPECT_NE(json.find("\"stderr\""), std::string::npos);
  // Re-rendering is bit-stable.
  EXPECT_EQ(json, result.to_json());
}

}  // namespace
}  // namespace gridsub::exp
