#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <vector>

namespace gridsub::par {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter]() { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValuesThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([]() { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int {
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      (void)pool.submit([&counter]() {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++counter;
      });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, SharedPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
}

TEST(ThreadPool, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.submit([&]() {
      const int now = ++in_flight;
      int expected = max_in_flight.load();
      while (now > expected &&
             !max_in_flight.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      --in_flight;
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_GT(max_in_flight.load(), 1);
}

}  // namespace
}  // namespace gridsub::par
