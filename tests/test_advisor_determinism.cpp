// Determinism wall for the advisor service: the same replayed workload
// must produce a byte-identical final snapshot JSON no matter how many
// ingest threads ran (1/2/8) and no matter whether the background
// refresher was swapping snapshots along the way. This is the contract
// that makes the serving layer debuggable: any divergence between two
// runs is a real state change, never scheduler noise.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <sstream>
#include <string>

#include "serve/advisor.hpp"
#include "serve/replay_feed.hpp"
#include "traces/scenarios.hpp"

namespace gridsub::serve {
namespace {

online::OnlinePlannerConfig fast_planner() {
  online::OnlinePlannerConfig c;
  c.window = 80;
  c.min_observations = 30;
  c.refit_interval = 40;
  c.model_step = 50.0;
  c.timeout = 4000.0;
  return c;
}

AdvisorConfig fast_config() {
  AdvisorConfig c;
  c.planner = fast_planner();
  c.fallback_t_inf = 1200.0;
  c.refresh_pending = 16;
  return c;
}

/// A two-hour diurnal slice: ~1.4k jobs over the replay feed's synthetic
/// 24-user population, i.e. ~60 observations per key — enough for every
/// key to fit and re-fit at the fast planner settings.
const traces::Workload& workload() {
  static const traces::Workload w = [] {
    traces::ScenarioConfig scenario;
    scenario.duration = 7200.0;
    scenario.base_rate = 0.2;
    scenario.runtime_mean = 600.0;
    return traces::make_scenario("diurnal-week", scenario);
  }();
  return w;
}

struct ReplayResult {
  std::string json;
  ReplayFeedReport report;
  AdvisorStats stats;
};

ReplayResult run_replay(std::size_t ingest_threads,
                        bool background_refresher) {
  AdvisorService service(fast_config());
  if (background_refresher) service.start_refresher();

  ReplayFeedConfig feed;
  feed.ingest_threads = ingest_threads;
  ReplayResult result;
  result.report = replay_feed(service, workload(), feed);

  service.stop_refresher();
  service.refresh_now();
  result.stats = service.stats();
  std::ostringstream os;
  service.dump_json(os);
  result.json = os.str();
  return result;
}

TEST(AdvisorDeterminism, ByteIdenticalSnapshotAtOneTwoEightIngestThreads) {
  const ReplayResult one = run_replay(1, /*background_refresher=*/true);
  const ReplayResult two = run_replay(2, /*background_refresher=*/true);
  const ReplayResult eight = run_replay(8, /*background_refresher=*/true);

  ASSERT_FALSE(one.json.empty());
  // The run is only a meaningful witness if keys actually became ready.
  EXPECT_NE(one.json.find("\"ready\": true"), std::string::npos);
  EXPECT_EQ(one.json, two.json);
  EXPECT_EQ(one.json, eight.json);
}

TEST(AdvisorDeterminism, BackgroundRefresherDoesNotChangeTheFinalSnapshot) {
  const ReplayResult manual = run_replay(8, /*background_refresher=*/false);
  const ReplayResult live = run_replay(8, /*background_refresher=*/true);

  // The live run swapped while ingestion was still in flight; the manual
  // run published exactly once at the end. Same final bytes either way.
  EXPECT_EQ(manual.stats.swaps, 1u);
  EXPECT_GT(live.stats.swaps, 1u);
  EXPECT_EQ(manual.json, live.json);
}

TEST(AdvisorDeterminism, FeedAccountingMatchesAtEveryThreadCount) {
  const ReplayResult one = run_replay(1, /*background_refresher=*/true);
  const ReplayResult eight = run_replay(8, /*background_refresher=*/true);

  EXPECT_EQ(one.report.jobs, workload().jobs().size());
  EXPECT_EQ(one.report.jobs, eight.report.jobs);
  EXPECT_EQ(one.report.completed, eight.report.completed);
  EXPECT_EQ(one.report.outliers, eight.report.outliers);
  EXPECT_EQ(one.report.keys, eight.report.keys);
  EXPECT_EQ(one.stats.observations, eight.stats.observations);
  EXPECT_EQ(one.stats.keys, eight.stats.keys);

  // Every job lands in exactly one shard.
  const std::uint64_t sharded =
      std::accumulate(eight.report.per_thread.begin(),
                      eight.report.per_thread.end(), std::uint64_t{0});
  EXPECT_EQ(sharded, eight.report.completed + eight.report.outliers);
  EXPECT_EQ(eight.report.per_thread.size(), 8u);
}

}  // namespace
}  // namespace gridsub::serve
