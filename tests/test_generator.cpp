#include "traces/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "stats/lognormal.hpp"
#include "stats/shifted.hpp"
#include "stats/uniform.hpp"

namespace gridsub::traces {
namespace {

GeneratorConfig small_config() {
  GeneratorConfig c;
  c.name = "gen-test";
  c.n_probes = 500;
  c.concurrent_probes = 5;
  c.timeout = 10000.0;
  c.fault_ratio = 0.1;
  c.seed = 99;
  return c;
}

TEST(Generator, ProducesRequestedProbeCount) {
  const stats::LogNormal bulk(6.0, 1.0);
  const Trace t = generate_probe_campaign(bulk, small_config());
  EXPECT_EQ(t.size(), 500u);
  EXPECT_EQ(t.name(), "gen-test");
}

TEST(Generator, DeterministicInSeed) {
  const stats::LogNormal bulk(6.0, 1.0);
  const Trace a = generate_probe_campaign(bulk, small_config());
  const Trace b = generate_probe_campaign(bulk, small_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.records()[i].latency, b.records()[i].latency);
    EXPECT_EQ(a.records()[i].status, b.records()[i].status);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const stats::LogNormal bulk(6.0, 1.0);
  auto c1 = small_config();
  auto c2 = small_config();
  c2.seed = 100;
  const Trace a = generate_probe_campaign(bulk, c1);
  const Trace b = generate_probe_campaign(bulk, c2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size() && !any_diff; ++i) {
    any_diff = a.records()[i].latency != b.records()[i].latency;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generator, FaultRatioIsRespected) {
  const stats::UniformDist bulk(10.0, 100.0);  // never an outlier
  auto c = small_config();
  c.n_probes = 20000;
  c.fault_ratio = 0.25;
  const Trace t = generate_probe_campaign(bulk, c);
  const double observed =
      static_cast<double>(t.count(ProbeStatus::kFault)) /
      static_cast<double>(t.size());
  EXPECT_NEAR(observed, 0.25, 0.01);
  EXPECT_EQ(t.count(ProbeStatus::kOutlier), 0u);
}

TEST(Generator, BulkTailBecomesOutliers) {
  // Uniform(9000, 11000): about half the draws exceed the timeout.
  const stats::UniformDist bulk(9000.0, 11000.0);
  auto c = small_config();
  c.fault_ratio = 0.0;
  c.n_probes = 4000;
  const Trace t = generate_probe_campaign(bulk, c);
  const double outlier_share =
      static_cast<double>(t.count(ProbeStatus::kOutlier)) /
      static_cast<double>(t.size());
  EXPECT_NEAR(outlier_share, 0.5, 0.04);
}

TEST(Generator, SubmitTimesAreNonDecreasingPerCompletionOrder) {
  // The constant-in-flight protocol submits a replacement at each
  // completion, so submit times (in log order) never decrease.
  const stats::LogNormal bulk(5.0, 0.8);
  const Trace t = generate_probe_campaign(bulk, small_config());
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_LE(t.records()[i - 1].submit_time, t.records()[i].submit_time + 1e9);
  }
  // And the campaign spans a nontrivial duration.
  EXPECT_GT(t.records().back().submit_time, 0.0);
}

TEST(Generator, RejectsDegenerateConfigs) {
  const stats::LogNormal bulk(5.0, 0.8);
  auto c = small_config();
  c.n_probes = 0;
  EXPECT_THROW(generate_probe_campaign(bulk, c), std::invalid_argument);
  c = small_config();
  c.concurrent_probes = 0;
  EXPECT_THROW(generate_probe_campaign(bulk, c), std::invalid_argument);
}

}  // namespace
}  // namespace gridsub::traces
