#include "numerics/optimize2d.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace gridsub::numerics {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(NelderMead, QuadraticBowl) {
  const auto f = [](double x, double y) {
    return (x - 1.0) * (x - 1.0) + 2.0 * (y + 2.0) * (y + 2.0);
  };
  const auto res = nelder_mead(f, {0.0, 0.0}, {0.5, 0.5}, 1e-12, 4000);
  EXPECT_NEAR(res.x, 1.0, 1e-4);
  EXPECT_NEAR(res.y, -2.0, 1e-4);
}

TEST(NelderMead, RosenbrockValley) {
  const auto f = [](double x, double y) {
    const double a = 1.0 - x;
    const double b = y - x * x;
    return a * a + 100.0 * b * b;
  };
  const auto res = nelder_mead(f, {-1.2, 1.0}, {0.5, 0.5}, 1e-14, 8000);
  EXPECT_NEAR(res.x, 1.0, 2e-2);
  EXPECT_NEAR(res.y, 1.0, 4e-2);
}

TEST(NelderMead, ContractsAwayFromInfeasibleRegion) {
  // Objective is +inf for x < 0; minimum sits at the boundary-adjacent
  // feasible point (0.5, 0).
  const auto f = [](double x, double y) {
    if (x < 0.0) return kInf;
    return (x - 0.5) * (x - 0.5) + y * y;
  };
  const auto res = nelder_mead(f, {2.0, 1.0}, {0.5, 0.5}, 1e-12, 4000);
  EXPECT_NEAR(res.x, 0.5, 1e-3);
  EXPECT_NEAR(res.y, 0.0, 1e-3);
}

TEST(GridThenNelderMead, FindsGlobalAmongMultipleWells) {
  // Four wells; the deepest is at (3, -3).
  const auto f = [](double x, double y) {
    const auto well = [](double cx, double cy, double depth, double x0,
                         double y0) {
      const double d2 = (x0 - cx) * (x0 - cx) + (y0 - cy) * (y0 - cy);
      return -depth / (1.0 + d2);
    };
    return well(-3, -3, 1.0, x, y) + well(-3, 3, 1.5, x, y) +
           well(3, 3, 2.0, x, y) + well(3, -3, 3.0, x, y);
  };
  const auto res =
      grid_then_nelder_mead(f, -6.0, 6.0, -6.0, 6.0, 25, 25, 1e-12);
  EXPECT_NEAR(res.x, 3.0, 0.1);
  EXPECT_NEAR(res.y, -3.0, 0.1);
}

TEST(GridThenNelderMead, AllInfeasibleReturnsInf) {
  const auto f = [](double, double) { return kInf; };
  const auto res = grid_then_nelder_mead(f, 0.0, 1.0, 0.0, 1.0, 5, 5);
  EXPECT_FALSE(std::isfinite(res.value));
}

TEST(GridThenNelderMead, RejectsBadBounds) {
  const auto f = [](double x, double y) { return x + y; };
  EXPECT_THROW(grid_then_nelder_mead(f, 1.0, 0.0, 0.0, 1.0, 4, 4),
               std::invalid_argument);
}

}  // namespace
}  // namespace gridsub::numerics
