// Validates the synthetic counterparts of the paper's Table 1 datasets:
// every week must reproduce its calibration targets within sampling noise.

#include "traces/datasets.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "stats/truncated.hpp"

namespace gridsub::traces {
namespace {

TEST(Datasets, RegistryHasTheTwelvePaperSets) {
  const auto& all = all_datasets();
  EXPECT_EQ(all.size(), 12u);
  EXPECT_EQ(all.front().name, "2006-IX");
  EXPECT_EQ(all.back().name, "2008-03");
}

TEST(Datasets, TotalProbeCountMatchesThePaper) {
  std::size_t total = 0;
  for (const auto& c : all_datasets()) total += c.n_probes;
  EXPECT_EQ(total, 10893u);  // paper §3.2
}

TEST(Datasets, LookupByNameWorksAndThrowsOnUnknown) {
  EXPECT_EQ(dataset_by_name("2007-52").name, "2007-52");
  EXPECT_THROW(dataset_by_name("2031-01"), std::out_of_range);
}

TEST(Datasets, RhoDerivationMatchesCensoredMeanIdentity) {
  // rho = (mean_with - mean_less) / (timeout - mean_less); spot-check the
  // two weeks quoted in DESIGN.md.
  const auto& w2006 = dataset_by_name("2006-IX");
  EXPECT_NEAR(w2006.outlier_ratio, (1042.0 - 570.0) / (10000.0 - 570.0),
              1e-12);
  const auto& w37 = dataset_by_name("2007-37");
  EXPECT_NEAR(w37.outlier_ratio, (3639.0 - 506.0) / (10000.0 - 506.0),
              1e-12);
}

TEST(Datasets, UnionTraceConcatenatesElevenWeeks) {
  const Trace u = make_union_trace();
  EXPECT_EQ(u.name(), "2007/08");
  EXPECT_EQ(u.size(), 10893u - 2005u);
}

TEST(Datasets, MakeTraceByNameResolvesUnion) {
  EXPECT_EQ(make_trace_by_name("2007/08").size(), 8888u);
  EXPECT_EQ(make_trace_by_name("2006-IX").size(), 2005u);
}

TEST(Datasets, NamesWithUnionContainsThirteenLabels) {
  const auto names = all_dataset_names_with_union();
  EXPECT_EQ(names.size(), 13u);
  EXPECT_EQ(names[0], "2006-IX");
  EXPECT_EQ(names[1], "2007/08");
}

TEST(Datasets, TracesAreDeterministic) {
  const Trace a = make_trace(dataset_by_name("2007-51"));
  const Trace b = make_trace(dataset_by_name("2007-51"));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.records()[i].latency, b.records()[i].latency);
  }
}

class DatasetCalibration : public ::testing::TestWithParam<std::string> {};

TEST_P(DatasetCalibration, BulkMomentsMatchTargetsInExpectation) {
  const auto& config = dataset_by_name(GetParam());
  const auto bulk = calibrated_bulk(config);
  // Condition the bulk below the timeout and check moments analytically
  // via quadrature on the truncated wrapper.
  const stats::Truncated conditioned(bulk->clone(), config.shift - 1e-9,
                                     config.timeout);
  EXPECT_NEAR(conditioned.mean(), config.target_mean,
              0.005 * config.target_mean);
  EXPECT_NEAR(std::sqrt(conditioned.variance()), config.target_stddev,
              0.01 * config.target_stddev);
}

TEST_P(DatasetCalibration, GeneratedTraceMatchesTargetsWithinNoise) {
  const auto& config = dataset_by_name(GetParam());
  const Trace t = make_trace(config);
  const auto s = t.stats();
  EXPECT_EQ(s.total, config.n_probes);
  // The generator pins sample moments to the Table 1 targets (up to the
  // clamping residual of the affine correction).
  const double n = static_cast<double>(s.completed);
  EXPECT_NEAR(s.mean_completed, config.target_mean,
              0.005 * config.target_mean);
  EXPECT_NEAR(s.stddev_completed, config.target_stddev,
              0.02 * config.target_stddev);
  EXPECT_NEAR(s.outlier_ratio, config.outlier_ratio,
              5.0 * std::sqrt(config.outlier_ratio *
                              (1.0 - config.outlier_ratio) / n) + 0.01);
}

TEST_P(DatasetCalibration, FaultRatioAccountsForBulkTail) {
  const auto& config = dataset_by_name(GetParam());
  const double fr = fault_ratio_for(config);
  EXPECT_GE(fr, 0.0);
  EXPECT_LT(fr, config.outlier_ratio + 1e-12);
  // Total outlier mass = fr + (1 - fr) * tail.
  const auto bulk = calibrated_bulk(config);
  const double tail = 1.0 - bulk->cdf(config.timeout);
  EXPECT_NEAR(fr + (1.0 - fr) * tail, config.outlier_ratio, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllWeeks, DatasetCalibration,
    ::testing::Values("2006-IX", "2007-36", "2007-37", "2007-38", "2007-39",
                      "2007-50", "2007-51", "2007-52", "2007-53", "2008-01",
                      "2008-02", "2008-03"),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      std::string name = param_info.param;
      for (auto& ch : name) {
        if (ch == '-' || ch == '/') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace gridsub::traces
