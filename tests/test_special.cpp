#include "stats/special.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gridsub::stats {
namespace {

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(-1.0), 1.0 - 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-12);
}

TEST(NormalCdf, TailsAreAccurate) {
  EXPECT_NEAR(normal_cdf(-6.0), 9.865876450376946e-10, 1e-15);
  EXPECT_NEAR(1.0 - normal_cdf(6.0), 9.865876450376946e-10, 1e-15);
}

TEST(NormalPdf, SymmetricAndNormalized) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-15);
  EXPECT_DOUBLE_EQ(normal_pdf(2.0), normal_pdf(-2.0));
}

TEST(NormalQuantile, InvertsCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    const double x = normal_quantile(p);
    EXPECT_NEAR(normal_cdf(x), p, 1e-12) << "p=" << p;
  }
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-9);
}

TEST(NormalQuantile, RejectsBoundaries) {
  EXPECT_THROW(normal_quantile(0.0), std::domain_error);
  EXPECT_THROW(normal_quantile(1.0), std::domain_error);
  EXPECT_THROW(normal_quantile(-0.5), std::domain_error);
}

TEST(GammaP, MatchesExponentialCdf) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    EXPECT_NEAR(gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(GammaP, MatchesErlangCdf) {
  // P(2, x) = 1 - (1 + x) exp(-x).
  for (double x : {0.5, 1.0, 3.0, 8.0}) {
    EXPECT_NEAR(gamma_p(2.0, x), 1.0 - (1.0 + x) * std::exp(-x), 1e-12);
  }
}

TEST(GammaP, ComplementsGammaQ) {
  for (double a : {0.3, 1.0, 2.5, 10.0}) {
    for (double x : {0.1, 1.0, 5.0, 20.0}) {
      EXPECT_NEAR(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
    }
  }
}

TEST(GammaP, BoundaryBehaviour) {
  EXPECT_DOUBLE_EQ(gamma_p(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(gamma_q(2.0, 0.0), 1.0);
  EXPECT_NEAR(gamma_p(1.0, 700.0), 1.0, 1e-12);
}

TEST(GammaP, RejectsInvalidArguments) {
  EXPECT_THROW(gamma_p(0.0, 1.0), std::domain_error);
  EXPECT_THROW(gamma_p(1.0, -1.0), std::domain_error);
}

}  // namespace
}  // namespace gridsub::stats
