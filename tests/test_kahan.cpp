#include "numerics/kahan.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace gridsub::numerics {
namespace {

TEST(Kahan, SumsExactlyRepresentableValues) {
  KahanAccumulator acc;
  for (int i = 1; i <= 100; ++i) acc.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(acc.value(), 5050.0);
}

TEST(Kahan, InitialValueIsRespected) {
  KahanAccumulator acc(10.0);
  acc.add(2.5);
  EXPECT_DOUBLE_EQ(acc.value(), 12.5);
}

TEST(Kahan, CompensatesSmallAddendsAgainstLargeSum) {
  // Adding 1e-16 to 1.0 1e6 times: naive summation loses everything,
  // compensated summation retains the total.
  KahanAccumulator acc(1.0);
  double naive = 1.0;
  for (int i = 0; i < 1000000; ++i) {
    acc.add(1e-16);
    naive += 1e-16;
  }
  EXPECT_DOUBLE_EQ(naive, 1.0);  // demonstrates the naive failure
  EXPECT_NEAR(acc.value(), 1.0 + 1e-10, 1e-14);
}

TEST(Kahan, NeumaierHandlesLargeAddendAfterSmallSum) {
  KahanAccumulator acc;
  acc.add(1.0);
  acc.add(1e100);
  acc.add(1.0);
  acc.add(-1e100);
  EXPECT_DOUBLE_EQ(acc.value(), 2.0);
}

TEST(Kahan, ResetClearsCompensation) {
  KahanAccumulator acc;
  acc.add(1e100);
  acc.add(1.0);
  acc.reset(5.0);
  acc.add(1.0);
  EXPECT_DOUBLE_EQ(acc.value(), 6.0);
}

TEST(Kahan, OperatorPlusEquals) {
  KahanAccumulator acc;
  acc += 1.5;
  acc += 2.5;
  EXPECT_DOUBLE_EQ(acc.value(), 4.0);
}

TEST(Kahan, AlternatingCancellation) {
  KahanAccumulator acc;
  for (int i = 0; i < 10000; ++i) {
    acc.add(0.1);
    acc.add(-0.1);
  }
  EXPECT_NEAR(acc.value(), 0.0, 1e-12);
}

}  // namespace
}  // namespace gridsub::numerics
