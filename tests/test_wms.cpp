#include "sim/wms.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace gridsub::sim {
namespace {

struct WmsFixture {
  Simulator sim;
  GridMetrics metrics;
  std::vector<std::unique_ptr<ComputingElement>> ces;
  std::unique_ptr<WorkloadManager> wms;

  explicit WmsFixture(int n_ces, WmsConfig config = {}) {
    config.fault_prob = config.fault_prob;  // keep caller's value
    std::vector<ComputingElement*> raw;
    for (int i = 0; i < n_ces; ++i) {
      ces.push_back(std::make_unique<ComputingElement>(
          sim, "ce" + std::to_string(i), 4, 0.0, stats::Rng(100 + i),
          &metrics));
      raw.push_back(ces.back().get());
    }
    wms = std::make_unique<WorkloadManager>(sim, raw, config,
                                            stats::Rng(7), &metrics);
  }
};

WmsConfig reliable_config() {
  WmsConfig c;
  c.fault_prob = 0.0;
  c.network.hops = 2;
  c.network.hop_mean = 10.0;
  c.network.hop_shape = 4.0;
  return c;
}

TEST(Wms, JobsReachAComputingElementAndStart) {
  WmsFixture f(3, reliable_config());
  int started = 0;
  for (int i = 0; i < 10; ++i) {
    f.wms->submit(5.0, [&] { ++started; });
  }
  f.sim.run();
  EXPECT_EQ(started, 10);
  EXPECT_EQ(f.metrics.jobs_submitted, 10u);
  EXPECT_EQ(f.metrics.jobs_dispatched, 10u);
}

TEST(Wms, MatchmakingDelayIsPositive) {
  WmsFixture f(1, reliable_config());
  double start_time = -1.0;
  f.wms->submit(1.0, [&] { start_time = f.sim.now(); });
  f.sim.run();
  EXPECT_GT(start_time, 0.0);
  EXPECT_GT(f.metrics.total_matchmaking, 0.0);
}

TEST(Wms, CancelDuringMatchmakingStopsDispatch) {
  WmsFixture f(1, reliable_config());
  int started = 0;
  const auto ticket = f.wms->submit(1.0, [&] { ++started; });
  EXPECT_TRUE(f.wms->cancel(ticket));
  f.sim.run();
  EXPECT_EQ(started, 0);
  EXPECT_EQ(f.metrics.jobs_dispatched, 0u);
  EXPECT_EQ(f.metrics.jobs_canceled, 1u);
}

TEST(Wms, CancelAfterDispatchReachesTheCe) {
  WmsFixture f(1, reliable_config());
  int started = 0;
  // Fill all 4 slots with long jobs *first* (matchmaking delays are random,
  // so submitting five at once would not pin down which ticket queues).
  for (int i = 0; i < 4; ++i) f.wms->submit(10000.0, [&] { ++started; });
  f.sim.run_until(500.0);
  ASSERT_EQ(started, 4);
  // The fifth job must queue at the CE; cancel it there.
  int fifth_started = 0;
  const auto ticket = f.wms->submit(10000.0, [&] { ++fifth_started; });
  f.sim.schedule_at(1000.0, [&] { EXPECT_TRUE(f.wms->cancel(ticket)); });
  f.sim.run_until(2000.0);
  EXPECT_EQ(fifth_started, 0);  // the canceled job never started
}

TEST(Wms, FaultyChainLosesJobsSilently) {
  auto config = reliable_config();
  config.fault_prob = 1.0;
  WmsFixture f(2, config);
  int started = 0;
  for (int i = 0; i < 5; ++i) f.wms->submit(1.0, [&] { ++started; });
  f.sim.run();
  EXPECT_EQ(started, 0);
  EXPECT_EQ(f.metrics.jobs_faulted, 5u);
}

TEST(Wms, LeastLoadedSpreadsAcrossElements) {
  auto config = reliable_config();
  config.dispatch = WmsConfig::Dispatch::kLeastLoaded;
  config.info_refresh_period = 1.0;  // nearly fresh load info
  WmsFixture f(4, config);
  // Long jobs so load accumulates; 40 jobs over 4 CEs of 4 slots.
  for (int i = 0; i < 40; ++i) f.wms->submit(100000.0, nullptr);
  f.sim.run_until(50000.0);
  // Every CE should have received a fair share (no starvation).
  for (const auto& ce : f.ces) {
    EXPECT_GE(ce->running() + static_cast<int>(ce->queue_length()), 5);
  }
}

TEST(Wms, UniformRandomDispatchAlsoCoversAllElements) {
  auto config = reliable_config();
  config.dispatch = WmsConfig::Dispatch::kUniformRandom;
  WmsFixture f(4, config);
  for (int i = 0; i < 200; ++i) f.wms->submit(100000.0, nullptr);
  f.sim.run_until(10000.0);
  for (const auto& ce : f.ces) {
    EXPECT_GT(ce->running() + static_cast<int>(ce->queue_length()), 20);
  }
}

TEST(Wms, RejectsEmptyElementList) {
  Simulator sim;
  EXPECT_THROW(
      WorkloadManager(sim, {}, reliable_config(), stats::Rng(1), nullptr),
      std::invalid_argument);
}

}  // namespace
}  // namespace gridsub::sim
