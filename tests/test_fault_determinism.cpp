// Determinism wall for the fault framework itself: one seed fully
// determines the chaos. The same seeded run — replayed ingestion with
// stalls, refresh pauses, a faulted serving path, and faulted checkpoint
// appends — must produce a byte-identical injected-event log AND a
// byte-identical final advisor dump at 1, 2, and 8 threads. This is what
// makes a chaos failure reproducible: rerun the seed, get the same
// faults, in any debugger, at any parallelism.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/checkpoint.hpp"
#include "fault/fault_injector.hpp"
#include "serve/advisor.hpp"
#include "serve/replay_feed.hpp"
#include "serve/request_loop.hpp"
#include "traces/scenarios.hpp"

namespace gridsub::fault {
namespace {

using serve::AdvisorConfig;
using serve::AdvisorKey;
using serve::AdvisorRequest;
using serve::AdvisorResponse;
using serve::AdvisorService;
using serve::InProcessTransport;
using serve::RequestLoop;

FaultScheduleConfig det_schedule() {
  FaultScheduleConfig c;
  c.seed = 424242;
  c.drop_request = 0.05;
  c.delay_request = 0.08;
  c.duplicate_request = 0.04;
  c.drop_reply = 0.03;
  c.transient_reply = 0.06;
  c.ingest_stall = 0.02;
  c.refresher_pause = 0.5;
  c.io_short_write = 0.15;
  c.io_enospc = 0.10;
  c.io_torn_tail = 0.10;
  return c;
}

AdvisorConfig det_config() {
  AdvisorConfig c;
  c.planner.window = 80;
  c.planner.min_observations = 30;
  c.planner.refit_interval = 40;
  c.planner.model_step = 50.0;
  c.planner.timeout = 4000.0;
  c.fallback_t_inf = 1200.0;
  c.refresh_pending = 16;
  c.staleness_bound = 8;
  return c;
}

const traces::Workload& det_workload() {
  static const traces::Workload w = [] {
    traces::ScenarioConfig scenario;
    scenario.duration = 7200.0;
    scenario.base_rate = 0.2;
    scenario.runtime_mean = 600.0;
    return traces::make_scenario("diurnal-week", scenario);
  }();
  return w;
}

struct ChaosRun {
  std::string events_json;
  std::string dump_json;
  std::uint64_t served = 0;
  std::uint64_t responses = 0;
};

/// One full seeded chaos run at `threads` ingest workers and `threads`
/// serving loops. Every fault decision is keyed on a thread-count
/// invariant identity: global job index within each ingest window,
/// refresh generation (explicit refresh_now after each window, so
/// generations are 1, 2, 3 at any parallelism), request id, and
/// checkpoint write index.
ChaosRun run_chaos(std::size_t threads) {
  FaultInjector injector(det_schedule());

  AdvisorConfig config = det_config();
  config.refresh_fault = injector.refresher_hook();
  AdvisorService service(config);

  // Phase 1: ingest three workload windows under stalls, publishing a
  // snapshot after each — deterministic generations however many workers.
  serve::ReplayFeedConfig feed;
  feed.ingest_threads = threads;
  feed.fault_hook = injector.ingest_hook();
  const double third = det_workload().duration() / 3.0;
  for (int window = 0; window < 3; ++window) {
    const traces::Workload slice = det_workload().window(
        third * window, window == 2 ? det_workload().duration() + 1.0
                                    : third * (window + 1));
    (void)replay_feed(service, slice, feed);
    service.refresh_now();
  }

  // Phase 2: serve a fixed request id sequence through the faulty
  // transport with `threads` loops racing over it.
  ChaosRun out;
  {
    InProcessTransport inner(128);
    FaultyTransport faulty(inner, injector);
    std::vector<std::unique_ptr<RequestLoop>> loops;
    for (std::size_t i = 0; i < threads; ++i) {
      loops.push_back(std::make_unique<RequestLoop>(service, faulty));
      loops.back()->start();
    }
    std::uint64_t taken = 0;
    std::thread taker([&] {
      AdvisorResponse r;
      while (inner.take_reply(r)) ++taken;
    });
    const std::vector<AdvisorKey> keys = {
        {"vo0", "lpc", "uc0"}, {"vo1", "lpc", "uc1"}, {"vo2", "nikhef", "uc0"},
        {"vo0", "nikhef", "uc1"}};
    for (std::uint64_t id = 0; id < 400; ++id) {
      AdvisorRequest r;
      r.id = id;
      r.key = keys[id % keys.size()];
      if (id % 13 == 0) r.deadline = 2;
      inner.post(r);
    }
    inner.close();
    for (auto& loop : loops) loop->join();
    taker.join();
    for (const auto& loop : loops) out.served += loop->served();
    out.responses = taken;
  }

  // Phase 3: checkpoint appends under injected disk failures (write
  // index is the identity; a faulted append throws and the driver moves
  // on — the event log is what this wall compares).
  exp::CampaignAxes axes;
  axes.name = "fault-det";
  axes.scenario_labels = {"s0", "s1"};
  axes.strategy_labels = {"t0", "t1"};
  axes.replications = 3;
  const std::string path =
      (std::filesystem::temp_directory_path() / "gridsub_test_fault_det" /
       ("det" + std::to_string(threads) + ".ckpt"))
          .string();
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path());
  std::filesystem::remove(path);
  exp::CheckpointWriter writer(path, axes, {}, {}, injector.io_hook());
  for (std::size_t flat = 0; flat < axes.cell_count(); ++flat) {
    exp::CellResult cell;
    cell.context = axes.cell(flat);
    cell.metrics = {{"v", static_cast<double>(cell.context.seed % 31)}};
    try {
      writer.append(cell);
    } catch (const exp::CheckpointError&) {
      // Expected for faulted indices; the next append continues.
    }
  }

  service.refresh_now();
  std::ostringstream dump;
  service.dump_json(dump);
  out.dump_json = dump.str();
  std::ostringstream events;
  injector.write_events_json(events);
  out.events_json = events.str();
  return out;
}

TEST(FaultDeterminism, SameSeedSameFaultsAndSameDumpAtOneTwoEightThreads) {
  const ChaosRun one = run_chaos(1);
  const ChaosRun two = run_chaos(2);
  const ChaosRun eight = run_chaos(8);

  // The run must have been genuinely chaotic and genuinely served.
  ASSERT_FALSE(one.events_json.empty());
  EXPECT_NE(one.events_json.find("drop-request"), std::string::npos);
  EXPECT_NE(one.events_json.find("ingest-stall"), std::string::npos);
  EXPECT_NE(one.events_json.find("refresher-pause"), std::string::npos);
  EXPECT_NE(one.events_json.find("io-"), std::string::npos);
  EXPECT_NE(one.dump_json.find("\"ready\": true"), std::string::npos);
  EXPECT_GT(one.served, 0u);

  // The wall itself: byte-identical fault log and final state.
  EXPECT_EQ(one.events_json, two.events_json);
  EXPECT_EQ(one.events_json, eight.events_json);
  EXPECT_EQ(one.dump_json, two.dump_json);
  EXPECT_EQ(one.dump_json, eight.dump_json);

  // Delivery accounting is seed-determined too: drops and duplicates are
  // fixed by the schedule, so the loops' served totals agree.
  EXPECT_EQ(one.served, two.served);
  EXPECT_EQ(one.served, eight.served);
  EXPECT_EQ(one.responses, two.responses);
  EXPECT_EQ(one.responses, eight.responses);
}

TEST(FaultDeterminism, EventLogsFromSeparateInjectorsMatchExactly) {
  // Two injectors over the same schedule fed the same operation ids must
  // log identical events — there is no per-instance hidden state.
  FaultInjector a(det_schedule());
  FaultInjector b(det_schedule());
  for (std::uint64_t id = 0; id < 300; ++id) {
    a.ingest_hook()(0, id);
    b.ingest_hook()(0, id);
    a.refresher_hook()(id);
    b.refresher_hook()(id);
    (void)a.io_hook()(id, 80);
    (void)b.io_hook()(id, 80);
  }
  std::ostringstream ea;
  std::ostringstream eb;
  a.write_events_json(ea);
  b.write_events_json(eb);
  ASSERT_FALSE(ea.str().empty());
  EXPECT_EQ(ea.str(), eb.str());
}

}  // namespace
}  // namespace gridsub::fault
