// DKW-propagated uncertainty bands on strategy expectations.

#include "core/uncertainty.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/single_resubmission.hpp"
#include "model/discretized.hpp"
#include "traces/datasets.hpp"
#include "traces/generator.hpp"

namespace gridsub::core {
namespace {

const model::DiscretizedLatencyModel& base_model() {
  static const auto m = model::DiscretizedLatencyModel::from_trace(
      traces::make_trace_by_name("2006-IX"), 1.0);
  return m;
}

TEST(Uncertainty, BandsContainThePointEstimate) {
  const UncertaintyAnalysis ua(base_model(), 2005);
  const auto s = ua.single(600.0);
  EXPECT_LE(s.lower, s.estimate);
  EXPECT_LE(s.estimate, s.upper);
  const auto m = ua.multiple(4, 881.0);
  EXPECT_LE(m.lower, m.estimate);
  EXPECT_LE(m.estimate, m.upper);
  const auto d = ua.delayed(339.0, 485.0);
  EXPECT_LE(d.lower, d.estimate);
  EXPECT_LE(d.estimate, d.upper);
}

TEST(Uncertainty, BandsShrinkWithCampaignSize) {
  const UncertaintyAnalysis small(base_model(), 100);
  const UncertaintyAnalysis large(base_model(), 10000);
  const auto ws = small.single(600.0);
  const auto wl = large.single(600.0);
  EXPECT_LT(wl.upper - wl.lower, ws.upper - ws.lower);
  // DKW epsilon scales as 1/sqrt(n): 10x the width ratio for 100x probes.
  EXPECT_NEAR(small.epsilon() / large.epsilon(), 10.0, 1e-9);
}

TEST(Uncertainty, EdgeModelsBracketTheBase) {
  const UncertaintyAnalysis ua(base_model(), 500);
  for (double t = 100.0; t <= 5000.0; t += 250.0) {
    EXPECT_GE(ua.optimistic().ftilde(t) + 1e-12, base_model().ftilde(t));
    EXPECT_LE(ua.pessimistic().ftilde(t) - 1e-12, base_model().ftilde(t));
  }
  // F(0) stays pinned at zero on both edges.
  EXPECT_DOUBLE_EQ(ua.optimistic().ftilde(0.0), 0.0);
  EXPECT_DOUBLE_EQ(ua.pessimistic().ftilde(0.0), 0.0);
}

TEST(Uncertainty, TinyCampaignCannotCertifyShortTimeouts) {
  // With 20 probes, eps ~ 0.30: a timeout where F~ < eps has an infinite
  // pessimistic expectation — "not enough data", honestly reported.
  const UncertaintyAnalysis ua(base_model(), 20);
  const double t_small = 130.0;  // F~(130) is small on 2006-IX
  ASSERT_LT(base_model().ftilde(t_small), ua.epsilon());
  const auto band = ua.single(t_small);
  EXPECT_TRUE(std::isinf(band.upper));
  EXPECT_TRUE(std::isfinite(band.lower));
}

TEST(Uncertainty, CoversTheTruthAcrossResamples) {
  // Generate campaigns from a known ground-truth model; the 95% band from
  // each campaign must almost always contain the truth's E_J.
  const auto& truth = base_model();
  const SingleResubmission oracle(truth);
  const double t_inf = 800.0;
  const double true_ej = oracle.expectation(t_inf);
  int misses = 0;
  const int reps = 30;
  for (int r = 0; r < reps; ++r) {
    traces::GeneratorConfig gen;
    gen.name = "resample";
    gen.n_probes = 400;
    gen.seed = 1000 + static_cast<std::uint64_t>(r);
    gen.fault_ratio = 0.0;
    // Sample latencies straight from the truth's law.
    traces::Trace t("resample", 10000.0);
    stats::Rng rng(gen.seed);
    for (std::size_t i = 0; i < gen.n_probes; ++i) {
      const double latency = truth.sample(rng);
      if (latency < 10000.0) {
        t.add_completed(0.0, latency);
      } else {
        t.add_outlier(0.0);
      }
    }
    const auto est = model::DiscretizedLatencyModel::from_trace(t, 1.0);
    const UncertaintyAnalysis ua(est, gen.n_probes, 0.05);
    const auto band = ua.single(t_inf);
    if (true_ej < band.lower || true_ej > band.upper) ++misses;
  }
  // 95% nominal coverage, DKW conservative: a couple of misses at most.
  EXPECT_LE(misses, 2);
}

TEST(Uncertainty, FromGridValidation) {
  EXPECT_THROW((void)model::DiscretizedLatencyModel::from_grid({0.0}, 1.0,
                                                               "x"),
               std::invalid_argument);
  EXPECT_THROW((void)model::DiscretizedLatencyModel::from_grid(
                   {0.1, 0.5}, 1.0, "x"),
               std::invalid_argument);  // F(0) != 0
  EXPECT_THROW((void)model::DiscretizedLatencyModel::from_grid(
                   {0.0, 0.5, 0.4}, 1.0, "x"),
               std::invalid_argument);  // decreasing
  const auto m = model::DiscretizedLatencyModel::from_grid(
      {0.0, 0.5, 0.9}, 10.0, "toy");
  EXPECT_DOUBLE_EQ(m.horizon(), 20.0);
  EXPECT_NEAR(m.outlier_ratio(), 0.1, 1e-12);
  EXPECT_NEAR(m.ftilde(5.0), 0.25, 1e-12);
}

}  // namespace
}  // namespace gridsub::core
