// Forced-contention stress suite for every concurrent layer — the
// dynamic half of the correctness wall (docs/correctness.md).
//
// These tests are written to *collide*: many threads hammering the same
// pool, a reorder window far smaller than the in-flight cell count,
// checkpoint appends racing from every worker, and MC block write-backs
// across an 8-wide pool. Under the tsan preset (cmake --preset tsan)
// ThreadSanitizer checks every interleaving they reach; under the normal
// presets they still assert the user-visible invariants (ascending
// delivery order, byte-identical output, complete checkpoints,
// bit-identical MC folds).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/thread_annotations.hpp"
#include "exp/campaign.hpp"
#include "exp/checkpoint.hpp"
#include "exp/fold.hpp"
#include "mc/mc_engine.hpp"
#include "parallel/thread_pool.hpp"
#include "test_util.hpp"

namespace gridsub {
namespace {

// --------------------------------------------------------------------------
// par::ThreadPool: concurrent submit + claim gating
// --------------------------------------------------------------------------

TEST(ConcurrencyStress, ThreadPoolConcurrentSubmitters) {
  par::ThreadPool pool(4);
  constexpr std::size_t kSubmitters = 8;
  constexpr std::size_t kTasksEach = 64;

  // GUARDED_BY is a member annotation, so the guarded counter lives in a
  // small struct rather than as a bare local.
  struct Counter {
    core::Mutex mu;
    std::size_t value GRIDSUB_GUARDED_BY(mu) = 0;
  } counter;
  std::atomic<std::size_t> atomic_count{0};

  // Several external threads race ThreadPool::submit while the workers
  // race the queue from the other side.
  std::vector<std::thread> submitters;
  std::vector<std::future<void>> futures[kSubmitters];
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (std::size_t t = 0; t < kTasksEach; ++t) {
        futures[s].push_back(pool.submit([&] {
          atomic_count.fetch_add(1, std::memory_order_relaxed);
          const core::MutexLock lock(counter.mu);
          ++counter.value;
        }));
      }
    });
  }
  for (auto& s : submitters) s.join();
  for (auto& per_thread : futures) {
    for (auto& f : per_thread) f.get();
  }

  EXPECT_EQ(atomic_count.load(), kSubmitters * kTasksEach);
  const core::MutexLock lock(counter.mu);
  EXPECT_EQ(counter.value, kSubmitters * kTasksEach);
}

TEST(ConcurrencyStress, ThreadPoolDrainsQueueOnDestruction) {
  std::atomic<std::size_t> ran{0};
  constexpr std::size_t kTasks = 200;
  {
    par::ThreadPool pool(3);
    for (std::size_t t = 0; t < kTasks; ++t) {
      // Futures intentionally dropped: destruction must still run every
      // queued task (the pool drains, then joins).
      (void)pool.submit([&ran] {
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }
  EXPECT_EQ(ran.load(), kTasks);
}

// --------------------------------------------------------------------------
// Campaign runner: reorder window + sink delivery under contention
// --------------------------------------------------------------------------

exp::CampaignAxes stress_axes(std::size_t scenarios, std::size_t strategies,
                              std::size_t reps) {
  exp::CampaignAxes axes;
  axes.name = "stress";
  for (std::size_t i = 0; i < scenarios; ++i) {
    axes.scenario_labels.push_back("sc" + std::to_string(i));
  }
  for (std::size_t i = 0; i < strategies; ++i) {
    axes.strategy_labels.push_back("st" + std::to_string(i));
  }
  axes.replications = reps;
  axes.root_seed = 777;
  return axes;
}

/// Deterministic in the seed, with a seed-dependent amount of wasted
/// work so cells complete far out of claim order.
exp::CellMetrics jittered_cell(const exp::CellContext& ctx) {
  const std::uint64_t spin = ctx.seed % 2048;
  volatile double sink_value = 0.0;
  for (std::uint64_t i = 0; i < spin * 32; ++i) {
    sink_value = sink_value + static_cast<double>(i);
  }
  if ((ctx.seed & 1u) != 0u) std::this_thread::yield();
  return {{"value", static_cast<double>(ctx.seed % 100000) / 7.0},
          {"flat", static_cast<double>(ctx.flat)}};
}

/// Sink that asserts the runner's ascending-flat-order delivery contract
/// while the workers behind it complete cells in scrambled order.
class OrderCheckSink final : public exp::CampaignSink {
 public:
  void on_cell(const exp::CellResult& cell) override {
    EXPECT_EQ(cell.context.flat, next_);
    ++next_;
  }
  void end() override { ended_ = true; }

  [[nodiscard]] std::size_t delivered() const { return next_; }
  [[nodiscard]] bool ended() const { return ended_; }

 private:
  std::size_t next_ = 0;
  bool ended_ = false;
};

TEST(ConcurrencyStress, ReorderWindowDeliversAscendingUnderContention) {
  const exp::CampaignAxes axes = stress_axes(4, 2, 8);  // 64 cells
  par::ThreadPool pool(4);
  exp::CampaignOptions options;
  options.pool = &pool;
  options.reorder_window = 3;  // far smaller than the grid: constant gating
  OrderCheckSink sink;
  exp::CampaignRunner(options).run_with_sink(axes, jittered_cell, sink);
  EXPECT_EQ(sink.delivered(), axes.cell_count());
  EXPECT_TRUE(sink.ended());
}

TEST(ConcurrencyStress, CampaignJsonByteIdenticalAcrossWidths) {
  const exp::CampaignAxes axes = stress_axes(3, 2, 6);
  par::ThreadPool narrow(1);
  par::ThreadPool wide(4);

  exp::CampaignOptions serial_options;
  serial_options.pool = &narrow;
  exp::CampaignOptions contended_options;
  contended_options.pool = &wide;
  contended_options.reorder_window = 2;

  const std::string serial =
      exp::CampaignRunner(serial_options).run(axes, jittered_cell).to_json();
  const std::string contended = exp::CampaignRunner(contended_options)
                                    .run(axes, jittered_cell)
                                    .to_json();
  EXPECT_EQ(serial, contended);
}

// --------------------------------------------------------------------------
// Checkpoint writer: concurrent appends + resume
// --------------------------------------------------------------------------

std::string stress_temp_path(const std::string& name) {
  const auto dir =
      std::filesystem::temp_directory_path() / "gridsub_test_stress";
  std::filesystem::create_directories(dir);
  const auto path = dir / name;
  std::filesystem::remove(path);
  return path.string();
}

TEST(ConcurrencyStress, CheckpointWriterUnderConcurrentAppends) {
  const exp::CampaignAxes axes = stress_axes(5, 2, 6);  // 60 cells
  const std::string path = stress_temp_path("contended.ckpt");
  par::ThreadPool pool(4);
  exp::CampaignOptions options;
  options.pool = &pool;
  options.reorder_window = 4;
  options.checkpoint_path = path;

  const exp::CampaignResult first =
      exp::CampaignRunner(options).run(axes, jittered_cell);
  const exp::CampaignCheckpoint on_disk = exp::load_checkpoint(path);
  EXPECT_TRUE(on_disk.complete());
  EXPECT_FALSE(on_disk.dropped_partial_tail);

  // A rerun resumes every cell from disk (no fresh evaluation) and its
  // output is byte-identical to the straight run.
  const exp::CampaignResult resumed =
      exp::CampaignRunner(options).run(axes, jittered_cell);
  EXPECT_EQ(first.to_json(), resumed.to_json());
  std::filesystem::remove(path);
}

TEST(ConcurrencyStress, CheckpointWriterDirectContention) {
  const exp::CampaignAxes axes = stress_axes(4, 2, 8);  // 64 cells
  const std::string path = stress_temp_path("direct.ckpt");
  exp::CheckpointWriter writer(path, axes, exp::CampaignShard{},
                               exp::CheckpointWriter::Resume{});

  // 4 raw threads append interleaved slices of the grid with no runner
  // in between — the writer's own lock is the only serialization.
  constexpr std::size_t kThreads = 4;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t flat = t; flat < axes.cell_count();
           flat += kThreads) {
        exp::CellResult cell;
        cell.context = axes.cell(flat);
        cell.metrics = jittered_cell(cell.context);
        writer.append(cell);
      }
    });
  }
  for (auto& t : threads) t.join();

  const exp::CampaignCheckpoint on_disk = exp::load_checkpoint(path);
  EXPECT_TRUE(on_disk.complete());
  for (const exp::CellResult& cell : on_disk.cells) {
    EXPECT_TRUE(exp::same_cell_metrics(
        cell.metrics, jittered_cell(axes.cell(cell.context.flat))));
  }
  std::filesystem::remove(path);
}

// --------------------------------------------------------------------------
// MC engine: block write-back across pool widths
// --------------------------------------------------------------------------

TEST(ConcurrencyStress, McBlockWriteBackBitIdenticalAcrossWidths) {
  const auto model =
      testutil::discretize(testutil::make_heavy_model(0.05, 4000.0), 1.0);
  par::ThreadPool narrow(1);
  par::ThreadPool wide(8);

  mc::McOptions serial_options;
  serial_options.replications = 20000;  // ~5 blocks: real write-back traffic
  serial_options.seed = 4242;
  serial_options.pool = &narrow;
  mc::McOptions contended_options = serial_options;
  contended_options.pool = &wide;

  const mc::McResult serial =
      mc::simulate_delayed(model, 400.0, 700.0, serial_options);
  const mc::McResult contended =
      mc::simulate_delayed(model, 400.0, 700.0, contended_options);
  EXPECT_EQ(serial.replications, contended.replications);
  EXPECT_DOUBLE_EQ(serial.mean_latency, contended.mean_latency);
  EXPECT_DOUBLE_EQ(serial.std_latency, contended.std_latency);
  EXPECT_DOUBLE_EQ(serial.mean_submissions, contended.mean_submissions);
  EXPECT_DOUBLE_EQ(serial.mean_parallel_ratio,
                   contended.mean_parallel_ratio);
}

}  // namespace
}  // namespace gridsub
