// The scale-out acceptance criteria, proven on real simulation cells:
// a campaign killed mid-run and resumed from its checkpoint, and the same
// campaign run as 3 merged shards, both produce byte-identical JSON to
// the single uninterrupted run — at different worker-thread counts, so
// resume/shard determinism composes with thread determinism.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>

#include "exp/checkpoint.hpp"
#include "exp/experiment.hpp"
#include "traces/scenarios.hpp"

namespace gridsub::exp {
namespace {

sim::GridConfig tiny_grid() {
  sim::GridConfig config;
  config.elements = {{8, 0.01}, {8, 0.02}};
  config.background.arrival_rate = 0.0;
  return config;
}

/// Two scenarios (replayed burst week + Poisson background) × two
/// strategies × 3 replications of real DES cells — small enough for the
/// sim shard, real enough to catch any seeding or fold-order drift.
ExperimentSpec small_spec() {
  ExperimentSpec spec;
  spec.name = "resume";
  spec.root_seed = 4242;
  spec.replications = 3;
  spec.clients.tasks_per_client = 5;
  spec.clients.warm_up = 500.0;

  traces::ScenarioConfig scen;
  scen.base_rate = 0.02;
  scen.duration = 20000.0;
  scen.seed = 5;
  {
    ScenarioCase sc;
    sc.label = "burst";
    sc.grid = tiny_grid();
    sc.workload = std::make_shared<const traces::Workload>(
        traces::make_scenario("burst-week", scen));
    spec.scenarios.push_back(std::move(sc));
  }
  {
    ScenarioCase sc;
    sc.label = "poisson";
    sc.grid = tiny_grid();
    sc.grid.background.arrival_rate = 0.02;
    spec.scenarios.push_back(std::move(sc));
  }
  spec.clients.horizon = 20000.0;

  {
    sim::StrategySpec s;
    s.kind = core::StrategyKind::kSingleResubmission;
    s.t_inf = 800.0;
    spec.strategies.push_back({"single", s});
  }
  {
    sim::StrategySpec s;
    s.kind = core::StrategyKind::kMultipleSubmission;
    s.b = 2;
    s.t_inf = 800.0;
    spec.strategies.push_back({"multiple", s});
  }
  return spec;
}

std::string temp_path(const std::string& name) {
  const auto dir =
      std::filesystem::temp_directory_path() / "gridsub_test_resume";
  std::filesystem::create_directories(dir);
  const auto path = dir / name;
  std::filesystem::remove(path);
  return path.string();
}

TEST(CampaignResumeSim, KilledAndResumedMatchesStraightThroughByteForByte) {
  const ExperimentSpec spec = small_spec();
  const std::string reference = run_experiment(spec).to_json();

  const std::string path = temp_path("killed.ckpt");
  const CellEvaluator evaluate = make_cell_evaluator(spec);

  // "Kill" the first run after half the cells: the failing evaluator
  // stands in for SIGKILL (same observable state — the completed cells'
  // records are on disk, the rest never happened).
  par::ThreadPool two(2);
  CampaignOptions options;
  options.pool = &two;
  options.checkpoint_path = path;
  EXPECT_THROW(
      (void)CampaignRunner(options).run(
          spec.axes(),
          [&](const CellContext& ctx) {
            if (ctx.flat >= spec.axes().cell_count() / 2) {
              throw std::runtime_error("killed");
            }
            return evaluate(ctx);
          }),
      std::runtime_error);

  // Clip the checkpoint's final bytes too — the true kill artifact.
  {
    std::ifstream is(path, std::ios::binary);
    std::stringstream ss;
    ss << is.rdbuf();
    std::string bytes = ss.str();
    ASSERT_GT(bytes.size(), 10u);
    bytes.resize(bytes.size() - 10);
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << bytes;
  }

  // Resume on a *different* pool width; bytes must still match.
  par::ThreadPool eight(8);
  std::atomic<int> reran{0};
  CampaignOptions resume_options;
  resume_options.pool = &eight;
  resume_options.checkpoint_path = path;
  const CampaignResult resumed = CampaignRunner(resume_options)
                                     .run(spec.axes(),
                                          [&](const CellContext& ctx) {
                                            ++reran;
                                            return evaluate(ctx);
                                          });
  EXPECT_EQ(resumed.to_json(), reference);
  // Half the grid died, plus the one clipped record.
  EXPECT_EQ(static_cast<std::size_t>(reran.load()),
            spec.axes().cell_count() / 2 + 1);
}

TEST(CampaignResumeSim, ThreeShardsMergedMatchStraightThroughByteForByte) {
  const ExperimentSpec spec = small_spec();
  const std::string reference = run_experiment(spec).to_json();
  const CellEvaluator evaluate = make_cell_evaluator(spec);

  // Each "host" runs its shard at a different thread count, like a real
  // heterogeneous cluster would.
  std::vector<CampaignCheckpoint> shards;
  for (std::size_t i = 0; i < 3; ++i) {
    par::ThreadPool pool(1 + i * 3);
    CampaignOptions options;
    options.pool = &pool;
    options.checkpoint_path =
        temp_path("shard" + std::to_string(i) + "of3.ckpt");
    options.shard = {i, 3};
    (void)CampaignRunner(options).run_shard(spec.axes(), evaluate);
    shards.push_back(load_checkpoint(options.checkpoint_path));
  }
  EXPECT_EQ(merge_checkpoints(std::move(shards)).to_json(), reference);
}

}  // namespace
}  // namespace gridsub::exp
