#include "numerics/integration.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace gridsub::numerics {
namespace {

TEST(Trapezoid, ExactForLinearFunctions) {
  const auto f = [](double x) { return 3.0 * x + 2.0; };
  EXPECT_NEAR(trapezoid(f, 0.0, 4.0, 7), 3.0 * 8.0 + 8.0, 1e-12);
}

TEST(Trapezoid, ConvergesForQuadratic) {
  const auto f = [](double x) { return x * x; };
  EXPECT_NEAR(trapezoid(f, 0.0, 1.0, 2000), 1.0 / 3.0, 1e-6);
}

TEST(Trapezoid, ZeroWidthIntervalIsZero) {
  EXPECT_EQ(trapezoid([](double) { return 42.0; }, 2.0, 2.0, 10), 0.0);
}

TEST(Trapezoid, RejectsBadArguments) {
  EXPECT_THROW(trapezoid([](double) { return 0.0; }, 0.0, 1.0, 0),
               std::invalid_argument);
  EXPECT_THROW(trapezoid([](double) { return 0.0; }, 1.0, 0.0, 4),
               std::invalid_argument);
}

TEST(TrapezoidTabulated, MatchesCallableVersion) {
  std::vector<double> y;
  const double dx = 0.01;
  for (int i = 0; i <= 100; ++i) {
    const double x = dx * i;
    y.push_back(std::sin(x));
  }
  const double expected =
      trapezoid([](double x) { return std::sin(x); }, 0.0, 1.0, 100);
  EXPECT_NEAR(trapezoid_tabulated(y, dx), expected, 1e-12);
}

TEST(Simpson, ExactForCubicPolynomials) {
  const auto f = [](double x) { return x * x * x - 2.0 * x * x + x; };
  // Exact integral over [0, 2]: 4 - 16/3 + 2 = 2/3.
  EXPECT_NEAR(simpson(f, 0.0, 2.0, 4), 2.0 / 3.0, 1e-12);
}

TEST(AdaptiveSimpson, HandlesPeakedIntegrand) {
  // N(0, 0.01) density integrates to ~1 over [-1, 1].
  const auto f = [](double x) {
    return std::exp(-0.5 * x * x / 1e-4) / std::sqrt(2.0 * M_PI * 1e-4);
  };
  EXPECT_NEAR(adaptive_simpson(f, -1.0, 1.0, 1e-10), 1.0, 1e-7);
}

TEST(AdaptiveSimpson, MatchesClosedFormExponential) {
  const auto f = [](double x) { return std::exp(-x); };
  EXPECT_NEAR(adaptive_simpson(f, 0.0, 10.0, 1e-12),
              1.0 - std::exp(-10.0), 1e-10);
}

TEST(CumulativeTrapezoid, PrefixValuesMatchDirectIntegrals) {
  std::vector<double> y;
  const double dx = 0.5;
  for (int i = 0; i <= 20; ++i) y.push_back(static_cast<double>(i) * dx);
  const auto c = cumulative_trapezoid(y, dx);
  ASSERT_EQ(c.size(), y.size());
  EXPECT_EQ(c[0], 0.0);
  // Integral of identity up to x is x^2/2 (trapezoid is exact on linears).
  for (std::size_t i = 0; i < c.size(); ++i) {
    const double x = static_cast<double>(i) * dx;
    EXPECT_NEAR(c[i], 0.5 * x * x, 1e-12) << "i=" << i;
  }
}

TEST(CumulativeTrapezoid, IsMonotoneForNonNegativeIntegrand) {
  std::vector<double> y(101, 0.25);
  const auto c = cumulative_trapezoid(y, 1.0);
  for (std::size_t i = 1; i < c.size(); ++i) EXPECT_GE(c[i], c[i - 1]);
  EXPECT_NEAR(c.back(), 25.0, 1e-12);
}

TEST(CumulativeTrapezoid, RejectsEmptyAndBadStep) {
  std::vector<double> empty;
  std::vector<double> ok{1.0, 2.0};
  std::vector<double> out;
  EXPECT_THROW(cumulative_trapezoid(empty, 1.0, out),
               std::invalid_argument);
  EXPECT_THROW(cumulative_trapezoid(ok, 0.0, out), std::invalid_argument);
}

// Property sweep: trapezoid error decreases roughly like n^-2 on smooth f.
class TrapezoidConvergence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TrapezoidConvergence, ErrorShrinksWithResolution) {
  const std::size_t n = GetParam();
  const auto f = [](double x) { return std::exp(x); };
  const double exact = std::exp(1.0) - 1.0;
  const double err = std::abs(trapezoid(f, 0.0, 1.0, n) - exact);
  const double err2 = std::abs(trapezoid(f, 0.0, 1.0, 2 * n) - exact);
  EXPECT_LT(err2, err);
  EXPECT_NEAR(err / err2, 4.0, 0.6);  // second-order convergence
}

INSTANTIATE_TEST_SUITE_P(Resolutions, TrapezoidConvergence,
                         ::testing::Values(8, 16, 32, 64, 128));

}  // namespace
}  // namespace gridsub::numerics
