#include "traces/swf.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace gridsub::traces {
namespace {

// Two jobs in SWF's 18-field layout: submit=100/160, runtime=300/120,
// uid=7/8, gid=1/1.
constexpr const char* kTwoJobs =
    "; Version: 2.2\n"
    "; Computer: LPC cluster\n"
    "1 100 5 300 1 -1 -1 1 600 -1 1 7 1 -1 1 -1 -1 -1\n"
    "2 160 9 120 1 -1 -1 1 600 -1 1 8 1 -1 1 -1 -1 -1\n";

TEST(Swf, ParsesJobsAndRebasesToZero) {
  std::stringstream ss(kTwoJobs);
  SwfReadReport report;
  const Workload w = read_swf(ss, "lpc", {}, &report);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w.name(), "lpc");
  // First arrival rebased to 0; the 60 s gap is preserved.
  EXPECT_DOUBLE_EQ(w.jobs()[0].arrival, 0.0);
  EXPECT_DOUBLE_EQ(w.jobs()[1].arrival, 60.0);
  EXPECT_DOUBLE_EQ(w.jobs()[0].runtime, 300.0);
  EXPECT_EQ(w.jobs()[0].user, 7);
  EXPECT_EQ(w.jobs()[1].user, 8);
  EXPECT_EQ(w.jobs()[0].group, 1);
  EXPECT_EQ(report.accepted, 2u);
  EXPECT_EQ(report.dropped, 0u);
}

TEST(Swf, ToleratesCrlfBlankLinesAndIndentedComments) {
  std::stringstream ss(
      "; header\r\n"
      "\r\n"
      "   ; indented comment\r\n"
      "1 10 0 50 1 -1 -1 1 100 -1 1 3 2 -1 1 -1 -1 -1\r\n");
  const Workload w = read_swf(ss, "crlf");
  ASSERT_EQ(w.size(), 1u);
  EXPECT_DOUBLE_EQ(w.jobs()[0].runtime, 50.0);
  EXPECT_EQ(w.jobs()[0].user, 3);
  EXPECT_EQ(w.jobs()[0].group, 2);
}

TEST(Swf, MissingRuntimeFallsBackToRequestedTime) {
  std::stringstream ss(
      "1 10 0 -1 1 -1 -1 1 450 -1 1 3 2 -1 1 -1 -1 -1\n");
  const Workload w = read_swf(ss, "fallback");
  ASSERT_EQ(w.size(), 1u);
  EXPECT_DOUBLE_EQ(w.jobs()[0].runtime, 450.0);
}

TEST(Swf, DropsJobsWithNoUsableRuntimeOrSubmit) {
  std::stringstream ss(
      "1 10 0 -1 1 -1 -1 1 -1 -1 1 3 2 -1 1 -1 -1 -1\n"   // no runtime at all
      "2 -5 0 60 1 -1 -1 1 100 -1 1 3 2 -1 1 -1 -1 -1\n"  // negative submit
      "3 20 0 60 1 -1 -1 1 100 -1 1 3 2 -1 1 -1 -1 -1\n");
  SwfReadReport report;
  const Workload w = read_swf(ss, "drops", {}, &report);
  EXPECT_EQ(w.size(), 1u);
  EXPECT_EQ(report.dropped, 2u);
  EXPECT_EQ(report.accepted, 1u);

  SwfReadOptions strict;
  strict.requested_time_fallback = false;
  std::stringstream ss2("1 10 0 -1 1 -1 -1 1 450 -1 1 3 2 -1 1 -1 -1 -1\n");
  const Workload w2 = read_swf(ss2, "strict", strict);
  EXPECT_TRUE(w2.empty());
}

TEST(Swf, ThrowsOnTruncatedLine) {
  std::stringstream ss("1 10 0\n");
  EXPECT_THROW(read_swf(ss, "short"), std::runtime_error);
}

TEST(Swf, ThrowsOnNonNumericField) {
  std::stringstream ss("1 10 0 abc 1 -1 -1 1 100 -1 1 3 2 -1 1 -1 -1 -1\n");
  EXPECT_THROW(read_swf(ss, "junk"), std::runtime_error);
}

TEST(Swf, ShortButUsableLineParses) {
  // Only the first four fields are required for replay.
  std::stringstream ss("1 10 0 60\n");
  const Workload w = read_swf(ss, "minimal");
  ASSERT_EQ(w.size(), 1u);
  EXPECT_DOUBLE_EQ(w.jobs()[0].runtime, 60.0);
  EXPECT_EQ(w.jobs()[0].user, -1);
  EXPECT_EQ(w.jobs()[0].group, -1);
}

TEST(Swf, OutOfRangeIdsMapToUnknown) {
  // A corrupt archive with a uid beyond int range must not hit the UB of
  // an out-of-range double->int cast.
  std::stringstream ss(
      "1 10 0 60 1 -1 -1 1 100 -1 1 5000000000 2 -1 1 -1 -1 -1\n");
  const Workload w = read_swf(ss, "corrupt");
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w.jobs()[0].user, -1);
  EXPECT_EQ(w.jobs()[0].group, 2);
}

TEST(Swf, UserFilterIsolatesOneSubmitter) {
  std::stringstream ss(kTwoJobs);
  SwfReadOptions options;
  options.user = 8;
  SwfReadReport report;
  const Workload w = read_swf(ss, "vo", options, &report);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w.jobs()[0].user, 8);
  EXPECT_EQ(report.accepted, 1u);
  EXPECT_EQ(report.filtered, 1u);
  EXPECT_EQ(report.dropped, 0u);
}

TEST(Swf, GroupFilterAndCombinedFilters) {
  std::stringstream ss(
      "1 10 0 60 1 -1 -1 1 100 -1 1 3 2 -1 1 -1 -1 -1\n"
      "2 20 0 60 1 -1 -1 1 100 -1 1 3 9 -1 1 -1 -1 -1\n"
      "3 30 0 60 1 -1 -1 1 100 -1 1 4 2 -1 1 -1 -1 -1\n");
  SwfReadOptions by_group;
  by_group.group = 2;
  std::stringstream ss2(ss.str());
  EXPECT_EQ(read_swf(ss2, "g", by_group).size(), 2u);

  SwfReadOptions both;
  both.user = 3;
  both.group = 2;
  SwfReadReport report;
  const Workload w = read_swf(ss, "ug", both, &report);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(report.filtered, 2u);
}

TEST(Swf, ForEachStreamsWithoutMaterializingAndStopsEarly) {
  std::stringstream ss(
      "1 500 0 60 1 -1 -1 1 100 -1 1 3 2 -1 1 -1 -1 -1\n"
      "2 100 0 60 1 -1 -1 1 100 -1 1 3 2 -1 1 -1 -1 -1\n"
      "3 200 0 60 1 -1 -1 1 100 -1 1 3 2 -1 1 -1 -1 -1\n");
  std::size_t seen = 0;
  double first_submit = -1.0;
  for_each_swf_job(
      ss, {},
      [&](const WorkloadJob& job) {
        if (seen++ == 0) first_submit = job.arrival;
        return seen < 2;  // stop after the second job
      },
      nullptr);
  EXPECT_EQ(seen, 2u);
  // Streaming hands out raw archive times in file order: no sort, no
  // rebase (those are read_swf's post-passes).
  EXPECT_DOUBLE_EQ(first_submit, 500.0);
}

TEST(Swf, FilteredJobsDoNotCountTowardsMaxJobs) {
  std::stringstream ss(
      "1 10 0 60 1 -1 -1 1 100 -1 1 9 2 -1 1 -1 -1 -1\n"
      "2 20 0 60 1 -1 -1 1 100 -1 1 3 2 -1 1 -1 -1 -1\n"
      "3 30 0 60 1 -1 -1 1 100 -1 1 3 2 -1 1 -1 -1 -1\n");
  SwfReadOptions options;
  options.user = 3;
  options.max_jobs = 2;
  SwfReadReport report;
  const Workload w = read_swf(ss, "cap", options, &report);
  EXPECT_EQ(w.size(), 2u);  // both user-3 jobs, despite the user-9 lead-in
  EXPECT_EQ(report.filtered, 1u);
}

TEST(Swf, MaxJobsTruncates) {
  std::stringstream ss(
      "1 10 0 60 1 -1 -1 1 100 -1 1 3 2 -1 1 -1 -1 -1\n"
      "2 20 0 60 1 -1 -1 1 100 -1 1 3 2 -1 1 -1 -1 -1\n"
      "3 30 0 60 1 -1 -1 1 100 -1 1 3 2 -1 1 -1 -1 -1\n");
  SwfReadOptions options;
  options.max_jobs = 2;
  SwfReadReport report;
  const Workload w = read_swf(ss, "cap", options, &report);
  EXPECT_EQ(w.size(), 2u);
  EXPECT_EQ(report.truncated_at, 3u);
}

TEST(Swf, UnsortedSubmitsComeOutSorted) {
  std::stringstream ss(
      "1 500 0 60 1 -1 -1 1 100 -1 1 3 2 -1 1 -1 -1 -1\n"
      "2 100 0 60 1 -1 -1 1 100 -1 1 3 2 -1 1 -1 -1 -1\n");
  const Workload w = read_swf(ss, "unsorted");
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w.jobs()[0].arrival, 0.0);
  EXPECT_DOUBLE_EQ(w.jobs()[1].arrival, 400.0);
}

TEST(Swf, MissingFileThrows) {
  EXPECT_THROW(read_swf_file("/nonexistent/archive.swf"),
               std::runtime_error);
}

}  // namespace
}  // namespace gridsub::traces
