// FaultSchedule contract tests: decisions are pure functions of
// (seed, class, id), same-domain fault classes are mutually exclusive,
// configured rates are actually realized, and a different seed draws a
// different fault set. Nothing here spawns a thread — purity is what
// makes the chaos wall's thread-count invariance possible at all.

#include "fault/fault_schedule.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace gridsub::fault {
namespace {

FaultScheduleConfig standard() {
  FaultScheduleConfig c;
  c.seed = 1234;
  c.drop_request = 0.05;
  c.delay_request = 0.10;
  c.duplicate_request = 0.05;
  c.drop_reply = 0.03;
  c.transient_reply = 0.07;
  c.ingest_stall = 0.02;
  c.refresher_pause = 0.5;
  c.io_short_write = 0.05;
  c.io_enospc = 0.05;
  c.io_torn_tail = 0.05;
  return c;
}

TEST(FaultScheduleConfig, ValidatesRatesAndGroupSums) {
  EXPECT_TRUE(FaultScheduleConfig{}.validate());
  EXPECT_TRUE(standard().validate());

  FaultScheduleConfig bad = standard();
  bad.drop_request = -0.1;
  EXPECT_FALSE(bad.validate());

  bad = standard();
  bad.drop_request = 0.6;
  bad.delay_request = 0.6;  // request group sums past 1
  EXPECT_FALSE(bad.validate());

  bad = standard();
  bad.io_torn_tail = 1.0;  // io group sums past 1
  EXPECT_FALSE(bad.validate());

  bad = standard();
  bad.delay_ops = 0;
  EXPECT_FALSE(bad.validate());

  bad = standard();
  bad.transient_attempts = 0;
  EXPECT_FALSE(bad.validate());
}

TEST(FaultSchedule, DecisionsArePureAndInstanceIndependent) {
  const FaultSchedule a(standard());
  const FaultSchedule b(standard());
  for (std::uint64_t id = 0; id < 2000; ++id) {
    EXPECT_EQ(a.request_fault(id), b.request_fault(id));
    EXPECT_EQ(a.request_fault(id), a.request_fault(id));  // repeatable
    EXPECT_EQ(a.reply_fault(id), b.reply_fault(id));
    EXPECT_EQ(a.ingest_stall(id), b.ingest_stall(id));
    EXPECT_EQ(a.refresher_pause(id), b.refresher_pause(id));
    const auto da = a.io_fault(id, 100);
    const auto db = b.io_fault(id, 100);
    EXPECT_EQ(da.kind, db.kind);
    EXPECT_EQ(da.keep_bytes, db.keep_bytes);
  }
}

TEST(FaultSchedule, DefaultScheduleInjectsNothing) {
  const FaultSchedule none{FaultScheduleConfig{}};
  for (std::uint64_t id = 0; id < 500; ++id) {
    EXPECT_EQ(none.request_fault(id), RequestFault::kNone);
    EXPECT_EQ(none.reply_fault(id), ReplyFault::kNone);
    EXPECT_FALSE(none.ingest_stall(id));
    EXPECT_FALSE(none.refresher_pause(id));
    EXPECT_EQ(none.io_fault(id, 64).kind,
              exp::IoFaultDirective::Kind::kNone);
  }
}

TEST(FaultSchedule, RealizedRatesMatchConfiguredRates) {
  const FaultSchedule s(standard());
  constexpr std::uint64_t kIds = 20000;
  std::uint64_t drop = 0;
  std::uint64_t delay = 0;
  std::uint64_t dup = 0;
  std::uint64_t stall = 0;
  for (std::uint64_t id = 0; id < kIds; ++id) {
    switch (s.request_fault(id)) {
      case RequestFault::kDrop: ++drop; break;
      case RequestFault::kDelay: ++delay; break;
      case RequestFault::kDuplicate: ++dup; break;
      case RequestFault::kNone: break;
    }
    if (s.ingest_stall(id)) ++stall;
  }
  const double n = static_cast<double>(kIds);
  EXPECT_NEAR(static_cast<double>(drop) / n, 0.05, 0.01);
  EXPECT_NEAR(static_cast<double>(delay) / n, 0.10, 0.01);
  EXPECT_NEAR(static_cast<double>(dup) / n, 0.05, 0.01);
  EXPECT_NEAR(static_cast<double>(stall) / n, 0.02, 0.01);
}

TEST(FaultSchedule, DifferentSeedsDrawDifferentFaultSets) {
  FaultScheduleConfig other = standard();
  other.seed = 99;
  const FaultSchedule a(standard());
  const FaultSchedule b(other);
  std::uint64_t differing = 0;
  for (std::uint64_t id = 0; id < 2000; ++id) {
    if (a.request_fault(id) != b.request_fault(id)) ++differing;
  }
  EXPECT_GT(differing, 0u);
}

TEST(FaultSchedule, ClassStreamsAreIndependent) {
  // Request and reply decisions share the id domain but must not be
  // correlated: a dropped request id should not systematically imply a
  // dropped reply for the same id.
  FaultScheduleConfig c;
  c.seed = 7;
  c.drop_request = 0.5;
  c.drop_reply = 0.5;
  const FaultSchedule s(c);
  std::uint64_t both = 0;
  std::uint64_t req = 0;
  for (std::uint64_t id = 0; id < 20000; ++id) {
    const bool dreq = s.request_fault(id) == RequestFault::kDrop;
    const bool drep = s.reply_fault(id) == ReplyFault::kDrop;
    if (dreq) ++req;
    if (dreq && drep) ++both;
  }
  ASSERT_GT(req, 0u);
  // Conditional P(drop reply | drop request) should be ~0.5, not ~1.
  const double cond = static_cast<double>(both) / static_cast<double>(req);
  EXPECT_NEAR(cond, 0.5, 0.05);
}

TEST(FaultSchedule, IoFaultKeepsAStrictPrefix) {
  FaultScheduleConfig c;
  c.seed = 11;
  c.io_short_write = 0.4;
  c.io_torn_tail = 0.4;
  c.io_enospc = 0.2;
  const FaultSchedule s(c);
  for (std::uint64_t idx = 0; idx < 1000; ++idx) {
    const auto d = s.io_fault(idx, 120);
    switch (d.kind) {
      case exp::IoFaultDirective::Kind::kShortWrite:
      case exp::IoFaultDirective::Kind::kTornTail:
        // At least one byte lands, the newline never does.
        EXPECT_GE(d.keep_bytes, 1u);
        EXPECT_LT(d.keep_bytes, 120u);
        break;
      case exp::IoFaultDirective::Kind::kEnospc:
        EXPECT_EQ(d.keep_bytes, 0u);
        break;
      case exp::IoFaultDirective::Kind::kNone:
        ADD_FAILURE() << "rates sum to 1; kNone impossible";
        break;
    }
  }
}

}  // namespace
}  // namespace gridsub::fault
