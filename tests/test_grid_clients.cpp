// Integration tests: probe campaigns and strategy clients on the full
// simulated grid.

#include <gtest/gtest.h>

#include "sim/grid.hpp"
#include "sim/probe_client.hpp"
#include "sim/strategy_client.hpp"

namespace gridsub::sim {
namespace {

GridConfig small_grid() {
  GridConfig config = GridConfig::egee_like();
  // Shrink for test speed: fewer sites, lighter background load.
  config.elements = {{40, 0.01}, {24, 0.02}, {16, 0.03}};
  config.background.arrival_rate = 0.03;
  config.background.runtime_mean = 1500.0;
  return config;
}

TEST(GridSimulation, BuildsAndWarmsUp) {
  GridSimulation grid(small_grid());
  grid.warm_up(5000.0);
  EXPECT_GT(grid.simulator().processed_events(), 10u);
  EXPECT_GT(grid.metrics().jobs_submitted, 0u);
}

TEST(GridSimulation, DeterministicForFixedSeed) {
  GridConfig config = small_grid();
  GridSimulation a(config), b(config);
  a.warm_up(20000.0);
  b.warm_up(20000.0);
  EXPECT_EQ(a.metrics().jobs_submitted, b.metrics().jobs_submitted);
  EXPECT_EQ(a.metrics().jobs_started, b.metrics().jobs_started);
}

TEST(ProbeClient, CollectsTheRequestedNumberOfProbes) {
  GridSimulation grid(small_grid());
  grid.warm_up(10000.0);
  ProbeCampaignConfig pc;
  pc.n_probes = 200;
  pc.concurrent = 5;
  pc.timeout = 8000.0;
  ProbeClient probe(grid, pc, "sim-campaign");
  probe.start();
  grid.simulator().run_until(grid.simulator().now() + 3e6);
  EXPECT_TRUE(probe.done());
  EXPECT_EQ(probe.trace().size(), 200u);
  EXPECT_EQ(probe.trace().name(), "sim-campaign");
}

TEST(ProbeClient, LatenciesAreInTheGridRegime) {
  GridSimulation grid(small_grid());
  grid.warm_up(10000.0);
  ProbeCampaignConfig pc;
  pc.n_probes = 300;
  pc.concurrent = 10;
  ProbeClient probe(grid, pc);
  probe.start();
  grid.simulator().run_until(grid.simulator().now() + 5e6);
  ASSERT_TRUE(probe.done());
  const auto stats = probe.trace().stats();
  // Matchmaking alone is ~5 hops × 25 s; latencies must exceed that and
  // stay within the campaign timeout by construction.
  EXPECT_GT(stats.mean_completed, 30.0);
  EXPECT_LT(stats.mean_completed, 10000.0);
  EXPECT_LT(stats.outlier_ratio, 0.5);
}

TEST(StrategyClient, SingleResubmissionCompletesTasks) {
  GridSimulation grid(small_grid());
  grid.warm_up(10000.0);
  StrategySpec spec;
  spec.kind = core::StrategyKind::kSingleResubmission;
  spec.t_inf = 2000.0;
  StrategyClient client(grid, spec, 50);
  client.start();
  grid.simulator().run_until(grid.simulator().now() + 5e6);
  ASSERT_TRUE(client.done());
  EXPECT_EQ(client.outcomes().size(), 50u);
  EXPECT_GT(client.mean_latency(), 0.0);
  EXPECT_GE(client.mean_submissions(), 1.0);
}

TEST(StrategyClient, MultipleSubmissionUsesBCopies) {
  GridSimulation grid(small_grid());
  grid.warm_up(10000.0);
  StrategySpec spec;
  spec.kind = core::StrategyKind::kMultipleSubmission;
  spec.b = 3;
  spec.t_inf = 2000.0;
  StrategyClient client(grid, spec, 40);
  client.start();
  grid.simulator().run_until(grid.simulator().now() + 5e6);
  ASSERT_TRUE(client.done());
  // Submissions per task are a multiple of b per round.
  EXPECT_GE(client.mean_submissions(), 3.0);
  for (const auto& o : client.outcomes()) {
    EXPECT_EQ(o.submissions % 3, 0);
  }
}

TEST(StrategyClient, MultipleIsFasterThanSingleOnTheSameGrid) {
  // The paper's core observation, reproduced end-to-end in the DES: with
  // identical seeds and load, b = 3 beats b = 1 on mean latency.
  const auto run = [](int b) {
    GridSimulation grid(small_grid());
    grid.warm_up(10000.0);
    StrategySpec spec;
    spec.kind = b == 1 ? core::StrategyKind::kSingleResubmission
                       : core::StrategyKind::kMultipleSubmission;
    spec.b = b;
    spec.t_inf = 1500.0;
    StrategyClient client(grid, spec, 120);
    client.start();
    grid.simulator().run_until(grid.simulator().now() + 2e7);
    EXPECT_TRUE(client.done());
    return client.mean_latency();
  };
  const double single = run(1);
  const double multi = run(3);
  EXPECT_LT(multi, single);
}

TEST(StrategyClient, DelayedKeepsAtMostTwoCopies) {
  GridSimulation grid(small_grid());
  grid.warm_up(10000.0);
  StrategySpec spec;
  spec.kind = core::StrategyKind::kDelayedResubmission;
  spec.t0 = 700.0;
  spec.t_inf = 1200.0;
  StrategyClient client(grid, spec, 40);
  client.start();
  grid.simulator().run_until(grid.simulator().now() + 5e6);
  ASSERT_TRUE(client.done());
  EXPECT_GE(client.mean_submissions(), 1.0);
  // Every task terminates with J >= 0 and a plausible copy count.
  for (const auto& o : client.outcomes()) {
    EXPECT_GE(o.total_latency, 0.0);
    EXPECT_GE(o.submissions, 1);
  }
}

TEST(StrategyClient, RejectsInvalidSpecs) {
  GridSimulation grid(small_grid());
  StrategySpec bad;
  bad.kind = core::StrategyKind::kDelayedResubmission;
  bad.t0 = 500.0;
  bad.t_inf = 1200.0;  // > 2 * t0
  EXPECT_THROW(StrategyClient(grid, bad, 5), std::invalid_argument);
  StrategySpec bad2;
  bad2.t_inf = -1.0;
  EXPECT_THROW(StrategyClient(grid, bad2, 5), std::invalid_argument);
  StrategySpec ok;
  EXPECT_THROW(StrategyClient(grid, ok, 0), std::invalid_argument);
}

TEST(GridMetrics, CancellationsAreVisibleToAdministrators) {
  // Aggressive strategies cancel jobs; the metrics must expose that load.
  GridSimulation grid(small_grid());
  grid.warm_up(5000.0);
  StrategySpec spec;
  spec.kind = core::StrategyKind::kMultipleSubmission;
  spec.b = 5;
  spec.t_inf = 1000.0;
  StrategyClient client(grid, spec, 60);
  client.start();
  grid.simulator().run_until(grid.simulator().now() + 1e7);
  ASSERT_TRUE(client.done());
  EXPECT_GT(grid.metrics().jobs_canceled, 0u);
  EXPECT_GT(grid.metrics().cancel_fraction(), 0.0);
}

}  // namespace
}  // namespace gridsub::sim
