#include <gtest/gtest.h>

#include <sstream>

#include "report/series.hpp"
#include "report/table.hpp"

namespace gridsub::report {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"week", "EJ", "delta"});
  t.row().cell(std::string("2006-IX")).cell(471.2, 1).percent(-0.083);
  t.row().cell(std::string("2007-36")).cell(510.0, 1).percent(0.001);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("week"), std::string::npos);
  EXPECT_NE(out.find("471.2"), std::string::npos);
  EXPECT_NE(out.find("-8.3%"), std::string::npos);
  EXPECT_NE(out.find("+0.1%"), std::string::npos);
}

TEST(Table, MarkdownRendering) {
  Table t({"a", "b"});
  t.row().cell(1LL).cell(2LL);
  std::ostringstream os;
  t.print_markdown(os);
  EXPECT_NE(os.str().find("| a | b |"), std::string::npos);
  EXPECT_NE(os.str().find("| 1 | 2 |"), std::string::npos);
}

TEST(Table, InfinityRendersAsInf) {
  Table t({"x"});
  t.row().cell(std::numeric_limits<double>::infinity(), 2);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("inf"), std::string::npos);
}

TEST(Table, CellBeforeRowThrows) {
  Table t({"x"});
  EXPECT_THROW(t.cell(1.0), std::logic_error);
}

TEST(Table, OverfullRowThrows) {
  Table t({"x"});
  t.row().cell(1.0);
  EXPECT_THROW(t.cell(2.0), std::logic_error);
}

TEST(Table, SecondsFormatter) {
  EXPECT_EQ(seconds(471.23), "471s");
  EXPECT_EQ(seconds(std::numeric_limits<double>::infinity()), "inf");
}

TEST(Figure, PrintsSeriesBlocks) {
  Figure fig("test figure", "t", "EJ");
  fig.add("b=1", {1.0, 2.0}, {10.0, 20.0});
  fig.add("b=2", {1.0, 2.0}, {5.0, 15.0});
  std::ostringstream os;
  fig.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("# test figure"), std::string::npos);
  EXPECT_NE(out.find("# series: b=1"), std::string::npos);
  EXPECT_NE(out.find("# series: b=2"), std::string::npos);
  EXPECT_NE(out.find("2 20"), std::string::npos);
}

TEST(Figure, RowLimitStillIncludesLastPoint) {
  std::vector<double> x, y;
  for (int i = 0; i <= 100; ++i) {
    x.push_back(i);
    y.push_back(2 * i);
  }
  Figure fig("dense", "x", "y");
  fig.add("s", x, y);
  std::ostringstream os;
  fig.print(os, 10);
  EXPECT_NE(os.str().find("100 200"), std::string::npos);
}

TEST(Figure, MismatchedSeriesThrows) {
  Figure fig("bad", "x", "y");
  EXPECT_THROW(fig.add("s", {1.0}, {1.0, 2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace gridsub::report
