// Forced-contention suite for the advisor's snapshot publication
// (concurrency label; runs under the tsan preset in CI): 8 readers
// hammering advise() across snapshot swaps while 2 writers ingest and
// force additional swaps, plus request loops serving a shared transport
// under concurrent posters. Assertions are the user-visible invariants:
// no torn reads (every answer's stamp recomputes — it was copied from
// exactly one published entry), generations non-decreasing per reader,
// and a final snapshot that is byte-identical no matter how many readers
// were hammering the service while it was built.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/advisor.hpp"
#include "serve/request_loop.hpp"

namespace gridsub::serve {
namespace {

online::OnlinePlannerConfig fast_planner() {
  online::OnlinePlannerConfig c;
  c.window = 80;
  c.min_observations = 30;
  c.refit_interval = 100;
  c.model_step = 50.0;
  c.timeout = 4000.0;
  return c;
}

AdvisorConfig fast_config() {
  AdvisorConfig c;
  c.planner = fast_planner();
  c.fallback_t_inf = 1200.0;
  c.refresh_pending = 32;
  return c;
}

constexpr std::size_t kKeys = 8;
constexpr int kObsPerKey = 240;

AdvisorKey nth_key(std::size_t i) {
  return AdvisorKey{"vo" + std::to_string(i % 3), "site",
                    "uc" + std::to_string(i)};
}

/// Two writers own disjoint key halves (per-key order stays
/// deterministic) and force a snapshot swap every 64 observations on top
/// of whatever the background refresher publishes.
void run_writers(AdvisorService& service) {
  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < 2; ++w) {
    writers.emplace_back([&service, w] {
      int since_swap = 0;
      for (int round = 0; round < kObsPerKey; ++round) {
        for (std::size_t k = w; k < kKeys; k += 2) {
          const double base = 200.0 + 40.0 * static_cast<double>(k);
          service.ingest(nth_key(k), base + static_cast<double>(round % 30));
          if (++since_swap == 64) {
            since_swap = 0;
            service.refresh_now();
          }
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
}

/// Runs the full contended scenario with `n_readers` hammering advise()
/// throughout, then drains and returns the final canonical snapshot.
std::string run_contended(std::size_t n_readers,
                          std::uint64_t* lookups_out = nullptr) {
  AdvisorService service(fast_config());
  service.start_refresher();

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> lookups{0};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> regressions{0};
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < n_readers; ++r) {
    readers.emplace_back([&, r] {
      AdvisorService::Reader reader(service);
      std::uint64_t last_generation = 0;
      std::uint64_t count = 0;
      while (!done.load(std::memory_order_relaxed)) {
        const Advice a = reader.advise(nth_key((r + count) % kKeys));
        // Torn-read canary: the stamp only ever exists writer-side for
        // one published (payload, entry_generation) combination.
        if (advice_stamp(a) != a.stamp) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
        if (a.generation < last_generation ||
            a.entry_generation > a.generation) {
          regressions.fetch_add(1, std::memory_order_relaxed);
        }
        last_generation = a.generation;
        ++count;
      }
      lookups.fetch_add(count, std::memory_order_relaxed);
    });
  }

  run_writers(service);
  done.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(regressions.load(), 0u);

  service.stop_refresher();
  service.refresh_now();
  const AdvisorStats stats = service.stats();
  EXPECT_EQ(stats.observations, kKeys * static_cast<std::uint64_t>(kObsPerKey));
  EXPECT_GE(stats.swaps, kKeys * kObsPerKey / 64);  // forced swaps at least
  EXPECT_EQ(stats.pending, 0u);
  if (lookups_out != nullptr) *lookups_out = lookups.load();

  std::ostringstream os;
  service.dump_json(os);
  return os.str();
}

TEST(AdvisorConcurrency, ReadersAcrossSwapsSeeUntornMonotoneAnswers) {
  std::uint64_t lookups = 0;
  const std::string json = run_contended(8, &lookups);
  EXPECT_GT(lookups, 0u);
  EXPECT_NE(json.find("\"ready\": true"), std::string::npos);
}

TEST(AdvisorConcurrency, FinalSnapshotByteIdenticalRegardlessOfReaders) {
  const std::string quiet = run_contended(0);
  const std::string hammered = run_contended(8);
  EXPECT_EQ(quiet, hammered);
}

TEST(AdvisorConcurrency, ReaderSlotsRecycleUnderChurn) {
  AdvisorService service(fast_config());
  // Register/destroy readers from several threads while lookups run:
  // slot claim/release is all CAS traffic, no locks to leak.
  std::vector<std::thread> churners;
  for (std::size_t t = 0; t < 4; ++t) {
    churners.emplace_back([&service] {
      for (int i = 0; i < 200; ++i) {
        AdvisorService::Reader reader(service);
        (void)reader.advise(AdvisorKey{"vo0", "site", "uc0"});
      }
    });
  }
  for (std::thread& t : churners) t.join();
  EXPECT_EQ(service.stats().readers, 0u);
}

TEST(AdvisorConcurrency, RequestLoopsShareATransportUnderContention) {
  AdvisorService service(fast_config());
  service.start_refresher();
  InProcessTransport transport(256);
  RequestLoop loop_a(service, transport);
  RequestLoop loop_b(service, transport);
  loop_a.start();
  loop_b.start();

  constexpr std::size_t kPosters = 4;
  constexpr std::uint64_t kPostsEach = 200;
  std::thread writer([&service] {
    for (int round = 0; round < 60; ++round) {
      for (std::size_t k = 0; k < kKeys; ++k) {
        service.ingest(nth_key(k),
                       300.0 + static_cast<double>((round + 7 * k) % 30));
      }
    }
  });
  std::vector<std::thread> posters;
  for (std::size_t p = 0; p < kPosters; ++p) {
    posters.emplace_back([&transport, p] {
      for (std::uint64_t i = 0; i < kPostsEach; ++i) {
        AdvisorRequest request;
        request.type = AdvisorRequest::Type::kAdvise;
        request.id = p * kPostsEach + i;
        request.key = nth_key(i % kKeys);
        transport.post(request);
      }
    });
  }

  std::uint64_t replies = 0;
  std::uint64_t torn = 0;
  AdvisorResponse response;
  while (replies < kPosters * kPostsEach) {
    ASSERT_TRUE(transport.take_reply(response));
    if (advice_stamp(response.advice) != response.advice.stamp) ++torn;
    ++replies;
  }
  for (std::thread& t : posters) t.join();
  writer.join();
  transport.close();
  loop_a.join();
  loop_b.join();
  EXPECT_EQ(torn, 0u);
  EXPECT_EQ(loop_a.served() + loop_b.served(), kPosters * kPostsEach);
}

}  // namespace
}  // namespace gridsub::serve
