#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

namespace gridsub::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFifo) {
  EventQueue q;
  std::vector<int> order;
  q.push(5.0, [&] { order.push_back(1); });
  q.push(5.0, [&] { order.push_back(2); });
  q.push(5.0, [&] { order.push_back(3); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  const EventId a = q.push(1.0, [&] { ++fired; });
  q.push(2.0, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(a));
  EXPECT_FALSE(q.cancel(a));  // double-cancel reports false
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  q.push(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeSkipsCanceledHead) {
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  q.push(7.0, [] {});
  q.cancel(a);
  EXPECT_DOUBLE_EQ(q.next_time(), 7.0);
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), std::logic_error);
  EXPECT_THROW((void)q.next_time(), std::logic_error);
}

TEST(EventQueue, PushEmptyCallbackThrows) {
  // std::function deferred this mistake to a bad_function_call when the
  // event fired; the slot map rejects it at the call site instead.
  EventQueue q;
  EXPECT_THROW(q.push(1.0, nullptr), std::invalid_argument);
  EXPECT_THROW(q.push(1.0, SmallFn{}), std::invalid_argument);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelHeavyLoopKeepsHeapBounded) {
  // A timeout strategy cancels and reschedules constantly; before
  // compaction the heap kept every canceled entry until popped, growing
  // without bound over a simulated week. The heap must stay O(live).
  EventQueue q;
  q.push(1e12, [] {});  // one long-lived survivor
  std::size_t peak = 0;
  for (int i = 0; i < 100000; ++i) {
    const EventId id = q.push(1.0 + i, [] {});
    q.cancel(id);
    peak = std::max(peak, q.queued());
  }
  EXPECT_EQ(q.size(), 1u);
  EXPECT_LE(peak, 130u);  // compaction floor (64) + slack, not 100k
}

TEST(EventQueue, OrderingSurvivesCompaction) {
  // Interleave live timers with a storm of cancel/reschedule churn, then
  // check the survivors still fire in (time, insertion) order.
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    q.push(1000.0 - i, [&order, i] { order.push_back(i); });
    for (int j = 0; j < 40; ++j) {
      q.cancel(q.push(5.0 + j, [] {}));  // forces repeated compactions
    }
  }
  while (!q.empty()) q.pop().fn();
  ASSERT_EQ(order.size(), 50u);
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GT(order[i - 1], order[i]);  // later-pushed fire earlier
  }
}

TEST(EventQueue, StaleCancelOnRecycledSlotReturnsFalse) {
  // The slot map recycles storage: after cancel(a), a new push may land in
  // a's slot. The generation check must reject the stale id instead of
  // cancelling the new tenant.
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  EXPECT_TRUE(q.cancel(a));
  int fired = 0;
  const EventId b = q.push(2.0, [&] { ++fired; });
  EXPECT_NE(a, b);
  EXPECT_FALSE(q.cancel(a));  // stale id, possibly recycled slot
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 1);  // b survived the stale cancel
}

TEST(EventQueue, StaleCancelAfterPopReturnsFalse) {
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  q.pop();  // a ran; its slot is free for reuse
  int fired = 0;
  const EventId b = q.push(2.0, [&] { ++fired; });
  EXPECT_FALSE(q.cancel(a));
  EXPECT_TRUE(q.cancel(b));
  EXPECT_EQ(fired, 0);
}

TEST(EventQueue, IdsStayUniqueUnderSlotReuse) {
  // Heavy churn reuses a handful of slots; the (generation, index) ids
  // must still never repeat — and never be 0, the callers' sentinel.
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    const EventId id = q.push(1.0, [] {});
    EXPECT_NE(id, 0u);
    ids.push_back(id);
    q.cancel(id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(EventQueue, HeapBoundHoldsWithLiveDaemonMix) {
  // Cancel storm interleaved with live regular and daemon events: the
  // queued() <= max(floor, 2 * size()) compaction bound must still hold.
  EventQueue q;
  for (int i = 0; i < 10; ++i) {
    q.push(1e9 + i, [] {});
    q.push(60.0 * i, [] {}, /*daemon=*/true);
  }
  for (int i = 0; i < 50000; ++i) {
    q.cancel(q.push(1.0 + i, [] {}));
    const std::size_t bound = std::max<std::size_t>(64, 2 * q.size());
    ASSERT_LE(q.queued(), bound);
  }
  EXPECT_EQ(q.size(), 20u);
}

TEST(EventQueue, InlineCallbackBufferCoversHotCaptures) {
  // The no-allocation guarantee for the hot events only holds while the
  // real capture sets fit SmallFn's inline buffer; pin it so a future
  // capture-set growth fails loudly here instead of silently regressing.
  struct HotCapture {
    void* self;
    std::uint64_t handle;
    std::function<void()> stored;  // CE completion carries one of these
    void operator()() const {}
  };
  static_assert(SmallFn::stores_inline<HotCapture>());

  // Oversized captures must transparently fall back to the heap and still
  // run (correctness never depends on the capture size).
  struct BigCapture {
    double padding[16];
    int* counter;
    void operator()() const { ++*counter; }
  };
  static_assert(!SmallFn::stores_inline<BigCapture>());
  EventQueue q;
  int fired = 0;
  BigCapture big{};
  big.counter = &fired;
  q.push(1.0, big);
  q.pop().fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue q;
  std::vector<double> times;
  for (int i = 0; i < 2000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000);
    q.push(t, [&times, t] { times.push_back(t); });
  }
  while (!q.empty()) q.pop().fn();
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_LE(times[i - 1], times[i]);
  }
}

}  // namespace
}  // namespace gridsub::sim
