// Cross-strategy property sweeps over all 13 datasets: the ordering and
// monotonicity claims the paper states in prose, verified as invariants
// on every synthetic week (not just 2006-IX).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/delayed_resubmission.hpp"
#include "core/multiple_submission.hpp"
#include "core/single_resubmission.hpp"
#include "core/total_latency.hpp"
#include "model/discretized.hpp"
#include "stats/rng.hpp"
#include "traces/datasets.hpp"

namespace gridsub::core {
namespace {

class AllDatasets : public ::testing::TestWithParam<std::string> {
 protected:
  static const model::DiscretizedLatencyModel& model() {
    static std::map<std::string, model::DiscretizedLatencyModel> cache;
    const auto name = GetParam();
    auto it = cache.find(name);
    if (it == cache.end()) {
      it = cache
               .emplace(name, model::DiscretizedLatencyModel::from_trace(
                                  traces::make_trace_by_name(name), 2.0))
               .first;
    }
    return it->second;
  }
};

TEST_P(AllDatasets, OptimalEjDecreasesWithB) {
  // Paper §5: "the higher the value of b, the smaller the minimal
  // expectation" — on every week.
  double prev = std::numeric_limits<double>::infinity();
  for (const int b : {1, 2, 3, 5, 8}) {
    const double ej =
        MultipleSubmission(model(), b).optimize().metrics.expectation;
    EXPECT_LT(ej, prev * (1.0 + 1e-12)) << "b=" << b;
    prev = ej;
  }
}

TEST_P(AllDatasets, MarginalGainOfBShrinks) {
  // Paper Table 2, last column: adding one copy matters less the more
  // copies there already are.
  const double e1 =
      MultipleSubmission(model(), 1).optimize().metrics.expectation;
  const double e2 =
      MultipleSubmission(model(), 2).optimize().metrics.expectation;
  const double e5 =
      MultipleSubmission(model(), 5).optimize().metrics.expectation;
  const double e6 =
      MultipleSubmission(model(), 6).optimize().metrics.expectation;
  EXPECT_GT(e1 - e2, e5 - e6);
}

TEST_P(AllDatasets, DelayedOptimumBeatsSingleOptimum) {
  // Paper Table 3: "All E_J values are below E_J from the single
  // resubmission strategy" — the delayed global optimum in particular.
  const double single =
      SingleResubmission(model()).optimize().metrics.expectation;
  const auto delayed = DelayedResubmission(model()).optimize();
  EXPECT_LE(delayed.metrics.expectation, single * (1.0 + 1e-9));
}

TEST_P(AllDatasets, DelayedSitsBetweenSingleAndDouble) {
  // Paper §6: delayed beats single but not multiple with b >= 2, at the
  // respective latency optima.
  const double single =
      SingleResubmission(model()).optimize().metrics.expectation;
  const double twin =
      MultipleSubmission(model(), 2).optimize().metrics.expectation;
  const auto delayed = DelayedResubmission(model()).optimize();
  EXPECT_LE(delayed.metrics.expectation, single * (1.0 + 1e-9));
  EXPECT_GE(delayed.metrics.expectation, twin * (1.0 - 1e-9));
}

TEST_P(AllDatasets, SigmaShrinksWithB) {
  // Paper Table 2: sigma_J decreases with b, concentrating J around E_J.
  double prev = std::numeric_limits<double>::infinity();
  for (const int b : {1, 3, 6, 10}) {
    const auto opt = MultipleSubmission(model(), b).optimize();
    EXPECT_LT(opt.metrics.std_deviation, prev * (1.0 + 1e-12))
        << "b=" << b;
    prev = opt.metrics.std_deviation;
  }
}

TEST_P(AllDatasets, ExpectedSubmissionsMatchesRoundFailureGeometry) {
  // Single resubmission submits Geometric(F~(t_inf)) jobs: 1/F~(t_inf).
  const auto& m = model();
  const SingleResubmission s(m);
  for (const double t_inf : {500.0, 1000.0, 3000.0}) {
    const double f = m.ftilde(t_inf);
    if (f <= 0.0) continue;
    EXPECT_NEAR(s.expected_submissions(t_inf), 1.0 / f, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Weeks, AllDatasets,
    ::testing::ValuesIn(traces::all_dataset_names_with_union()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      std::string name = param_info.param;
      for (auto& ch : name) {
        if (ch == '-' || ch == '/') ch = '_';
      }
      return name;
    });

TEST(ParallelJobsFormula, StaysWithinThePaperBounds) {
  // Paper §6.1: N∥ in [1, 2 - 1/(n+1)] with n = floor(l / t0).
  stats::Rng rng(77);
  for (int trial = 0; trial < 2000; ++trial) {
    const double t0 = rng.uniform(10.0, 1000.0);
    const double t_inf = rng.uniform(t0 * (1.0 + 1e-6), 2.0 * t0);
    const double l = rng.uniform(1.0, 20.0 * t0);
    const double n_par = DelayedResubmission::parallel_jobs_at(l, t0, t_inf);
    const double n = std::floor(l / t0);
    EXPECT_GE(n_par, 1.0 - 1e-9) << "t0=" << t0 << " tinf=" << t_inf
                                 << " l=" << l;
    EXPECT_LE(n_par, 2.0 - 1.0 / (n + 1.0) + 1e-9)
        << "t0=" << t0 << " tinf=" << t_inf << " l=" << l;
  }
}

TEST(ParallelJobsFormula, ApproachesTheRatioAsymptote) {
  // Paper §6.1: lim_{n->inf} N∥ = t_inf / t0.
  const double t0 = 100.0, t_inf = 170.0;
  const double far = DelayedResubmission::parallel_jobs_at(1e7, t0, t_inf);
  EXPECT_NEAR(far, t_inf / t0, 1e-3);
}

TEST(ParallelJobsFormula, MatchesThePaperCaseSplit) {
  // Hand-checked instances of the four §6.1 cases.
  const double t0 = 100.0, t_inf = 150.0;
  // n = 0: l < t0.
  EXPECT_DOUBLE_EQ(DelayedResubmission::parallel_jobs_at(60.0, t0, t_inf),
                   1.0);
  // n = 1, l < t_inf: N = 2 - t0/l.
  EXPECT_NEAR(DelayedResubmission::parallel_jobs_at(120.0, t0, t_inf),
              2.0 - t0 / 120.0, 1e-12);
  // n = 1, l >= t_inf: (t0 + 2(t_inf - t0) + (l - t_inf)) / l.
  EXPECT_NEAR(DelayedResubmission::parallel_jobs_at(180.0, t0, t_inf),
              (t0 + 2.0 * (t_inf - t0) + (180.0 - t_inf)) / 180.0, 1e-12);
  // n = 2, l in I0 = [2 t0, t0 + t_inf): t0 + t_inf + 2(l - 2 t0), over l.
  EXPECT_NEAR(DelayedResubmission::parallel_jobs_at(230.0, t0, t_inf),
              (t0 + t_inf + 2.0 * (230.0 - 2.0 * t0)) / 230.0, 1e-12);
  // n = 2, l in I1 = [t0 + t_inf, 3 t0): one extra lone stretch.
  EXPECT_NEAR(
      DelayedResubmission::parallel_jobs_at(270.0, t0, t_inf),
      (t0 + t_inf + 2.0 * (t_inf - t0) + (270.0 - t0 - t_inf)) / 270.0,
      1e-12);
}

TEST(TotalLatencyOrdering, DelayedDominatesSingleAtSameTimeout) {
  // Adding the staggered copy can only speed things up: P(J > t) for
  // delayed <= P(J > t) for single resubmission with the same t_inf.
  const auto m = model::DiscretizedLatencyModel::from_trace(
      traces::make_trace_by_name("2006-IX"), 2.0);
  const double t0 = 400.0, t_inf = 700.0;
  const auto single = TotalLatencyDistribution::single(m, t_inf);
  const auto delayed = TotalLatencyDistribution::delayed(m, t0, t_inf);
  for (double t = 100.0; t <= 6000.0; t += 100.0) {
    EXPECT_LE(delayed.survival(t), single.survival(t) + 1e-9) << "t=" << t;
  }
}

}  // namespace
}  // namespace gridsub::core
