// Fault-injection mechanics, seam by seam: FaultyTransport's
// drop/delay/duplicate/reply faults keep the in-process transport's
// shutdown drain exact; RequestLoop's deadline, retry, and error
// taxonomy respond as documented; CheckpointWriter survives all three
// injected disk-failure classes with its crash model intact; and the
// InProcessTransport close-while-in-flight contract (the pre-PR-10
// lost-replies bug) stays pinned.

#include "fault/fault_injector.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/checkpoint.hpp"
#include "serve/advisor.hpp"
#include "serve/request_loop.hpp"

namespace gridsub::fault {
namespace {

using serve::AdvisorRequest;
using serve::AdvisorResponse;
using serve::AdvisorService;
using serve::InProcessTransport;
using serve::RequestLoop;
using serve::ResponseStatus;

/// One-class schedule at rate 1: every request suffers exactly `set`.
FaultScheduleConfig only(double FaultScheduleConfig::* rate) {
  FaultScheduleConfig c;
  c.seed = 5;
  c.*rate = 1.0;
  return c;
}

struct LoopRun {
  std::vector<AdvisorResponse> responses;
  std::uint64_t served = 0;
  std::uint64_t degraded = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t reply_retries = 0;
  std::uint64_t lost_replies = 0;
};

/// Posts `requests` through a FaultyTransport into one RequestLoop and
/// drains every reply. The close happens after all posts, so delayed
/// requests flush during the drain.
LoopRun run_loop(const FaultScheduleConfig& schedule,
                 std::vector<AdvisorRequest> requests,
                 serve::RequestLoopOptions options = {}) {
  AdvisorService service;  // default config; every key answers fallback
  FaultInjector injector(schedule);
  InProcessTransport inner(256);
  FaultyTransport faulty(inner, injector);
  RequestLoop loop(service, faulty, options);
  loop.start();

  LoopRun out;
  std::thread taker([&] {
    AdvisorResponse r;
    while (inner.take_reply(r)) out.responses.push_back(r);
  });
  for (AdvisorRequest& r : requests) inner.post(r);
  inner.close();
  loop.join();
  taker.join();
  out.served = loop.served();
  out.degraded = loop.degraded();
  out.deadline_expired = loop.deadline_expired();
  out.reply_retries = loop.reply_retries();
  out.lost_replies = loop.lost_replies();
  return out;
}

std::vector<AdvisorRequest> advise_requests(std::size_t n) {
  std::vector<AdvisorRequest> reqs(n);
  for (std::size_t i = 0; i < n; ++i) {
    reqs[i].id = i;
    reqs[i].key = {"vo0", "lpc", "uc0"};
  }
  return reqs;
}

TEST(FaultyTransport, DroppedRequestsStillDrainCleanly) {
  const LoopRun run =
      run_loop(only(&FaultScheduleConfig::drop_request), advise_requests(32));
  // Every request vanished before the loop; the drain still terminates
  // and nobody hangs — abandon() settled the in-flight accounting.
  EXPECT_TRUE(run.responses.empty());
  EXPECT_EQ(run.served, 0u);
}

TEST(FaultyTransport, DuplicatedRequestsAreAnsweredTwice) {
  const LoopRun run = run_loop(only(&FaultScheduleConfig::duplicate_request),
                               advise_requests(16));
  EXPECT_EQ(run.responses.size(), 32u);
  std::map<std::uint64_t, int> per_id;
  for (const AdvisorResponse& r : run.responses) ++per_id[r.id];
  for (const auto& [id, count] : per_id) EXPECT_EQ(count, 2) << "id " << id;
}

TEST(FaultyTransport, DelayedRequestsArriveAgedButNeverLost) {
  FaultScheduleConfig c = only(&FaultScheduleConfig::delay_request);
  c.delay_ops = 3;
  const LoopRun run = run_loop(c, advise_requests(16));
  ASSERT_EQ(run.responses.size(), 16u);
  for (const AdvisorResponse& r : run.responses) {
    EXPECT_EQ(r.status, ResponseStatus::kOk);
  }
}

TEST(FaultyTransport, DelayPlusDeadlineYieldsDeadlineExceeded) {
  FaultScheduleConfig c = only(&FaultScheduleConfig::delay_request);
  c.delay_ops = 4;
  std::vector<AdvisorRequest> reqs = advise_requests(16);
  for (AdvisorRequest& r : reqs) r.deadline = 2;  // < delay_ops
  const LoopRun run = run_loop(c, std::move(reqs));
  ASSERT_EQ(run.responses.size(), 16u);
  for (const AdvisorResponse& r : run.responses) {
    EXPECT_EQ(r.status, ResponseStatus::kDeadlineExceeded);
  }
  EXPECT_EQ(run.deadline_expired, 16u);
}

TEST(FaultyTransport, TransientReplyFailuresAreRetriedToDelivery) {
  FaultScheduleConfig c = only(&FaultScheduleConfig::transient_reply);
  c.transient_attempts = 2;
  serve::RequestLoopOptions options;
  options.max_reply_attempts = 4;  // > transient_attempts: always recovers
  const LoopRun run = run_loop(c, advise_requests(16), options);
  EXPECT_EQ(run.responses.size(), 16u);
  EXPECT_EQ(run.served, 16u);
  EXPECT_EQ(run.lost_replies, 0u);
  EXPECT_EQ(run.reply_retries, 32u);  // two failures per reply
}

TEST(FaultyTransport, ExhaustedRetriesAbandonWithoutHanging) {
  FaultScheduleConfig c = only(&FaultScheduleConfig::transient_reply);
  c.transient_attempts = 10;
  serve::RequestLoopOptions options;
  options.max_reply_attempts = 2;  // < transient_attempts: always loses
  const LoopRun run = run_loop(c, advise_requests(8), options);
  EXPECT_TRUE(run.responses.empty());
  EXPECT_EQ(run.lost_replies, 8u);
}

TEST(FaultyTransport, DroppedRepliesSettleTheDrain) {
  const LoopRun run =
      run_loop(only(&FaultScheduleConfig::drop_reply), advise_requests(24));
  EXPECT_TRUE(run.responses.empty());
  EXPECT_EQ(run.served, 24u);  // the loop believes it delivered
  EXPECT_EQ(run.lost_replies, 0u);
}

TEST(FaultyTransport, EventLogRecordsEveryInjection) {
  FaultScheduleConfig c;
  c.seed = 21;
  c.drop_request = 0.25;
  c.duplicate_request = 0.25;
  FaultInjector injector(c);
  AdvisorService service;
  InProcessTransport inner(256);
  FaultyTransport faulty(inner, injector);
  RequestLoop loop(service, faulty);
  loop.start();
  std::thread taker([&] {
    AdvisorResponse r;
    while (inner.take_reply(r)) {
    }
  });
  for (const AdvisorRequest& r : advise_requests(64)) inner.post(r);
  inner.close();
  loop.join();
  taker.join();

  const FaultSchedule schedule(c);
  std::uint64_t drops = 0;
  std::uint64_t dups = 0;
  for (std::uint64_t id = 0; id < 64; ++id) {
    if (schedule.request_fault(id) == RequestFault::kDrop) ++drops;
    if (schedule.request_fault(id) == RequestFault::kDuplicate) ++dups;
  }
  EXPECT_EQ(injector.count(FaultClass::kDropRequest), drops);
  EXPECT_EQ(injector.count(FaultClass::kDuplicateRequest), dups);
  EXPECT_GT(drops + dups, 0u);
}

// --------------------------------------------------------------------------
// InProcessTransport shutdown contract
// --------------------------------------------------------------------------

TEST(InProcessTransportShutdown, CloseWhileInFlightLosesNoReplies) {
  // The pinned contract: requests already handed to a server via next()
  // when close() lands must still be answered, and take_reply() must
  // keep blocking for them instead of reporting "drained".
  InProcessTransport transport(8);
  AdvisorRequest a;
  a.id = 1;
  AdvisorRequest b;
  b.id = 2;
  transport.post(a);
  transport.post(b);

  AdvisorRequest got;
  ASSERT_TRUE(transport.next(got));
  ASSERT_TRUE(transport.next(got));  // both now in flight, none replied
  transport.close();

  std::vector<std::uint64_t> ids;
  std::thread taker([&] {
    AdvisorResponse r;
    while (transport.take_reply(r)) ids.push_back(r.id);
  });
  AdvisorResponse r1;
  r1.id = 1;
  AdvisorResponse r2;
  r2.id = 2;
  EXPECT_TRUE(transport.reply(r1));
  EXPECT_TRUE(transport.reply(r2));
  taker.join();
  EXPECT_EQ(ids.size(), 2u);  // the old predicate returned false with 0
}

TEST(InProcessTransportShutdown, AbandonSettlesTheLastInFlightRequest) {
  InProcessTransport transport(8);
  AdvisorRequest a;
  a.id = 7;
  transport.post(a);
  AdvisorRequest got;
  ASSERT_TRUE(transport.next(got));
  transport.close();
  std::thread taker([&] {
    AdvisorResponse r;
    EXPECT_FALSE(transport.take_reply(r));  // unblocked by abandon below
  });
  transport.abandon();
  taker.join();
}

TEST(InProcessTransportShutdown, CloseOnIdleTransportDrainsImmediately) {
  InProcessTransport transport(8);
  transport.close();
  AdvisorResponse r;
  EXPECT_FALSE(transport.take_reply(r));
  AdvisorRequest q;
  EXPECT_FALSE(transport.next(q));
  EXPECT_THROW(transport.post(AdvisorRequest{}), std::runtime_error);
}

// --------------------------------------------------------------------------
// CheckpointWriter I/O faults
// --------------------------------------------------------------------------

exp::CampaignAxes tiny_axes() {
  exp::CampaignAxes axes;
  axes.name = "fault-io";
  axes.scenario_labels = {"s0", "s1"};
  axes.strategy_labels = {"t0"};
  axes.replications = 2;
  axes.root_seed = 9;
  return axes;
}

exp::CellMetrics cell_metrics(const exp::CellContext& ctx) {
  return {{"v", static_cast<double>(ctx.seed % 97) / 3.0}};
}

std::string temp_path(const std::string& name) {
  const auto dir =
      std::filesystem::temp_directory_path() / "gridsub_test_fault_io";
  std::filesystem::create_directories(dir);
  const auto path = dir / name;
  std::filesystem::remove(path);
  return path.string();
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

/// Appends every cell of tiny_axes() through a writer with `hook`,
/// restarting the writer through the resume path after each injected
/// failure — the retry discipline a campaign driver follows. Returns the
/// final file content.
std::string write_all_cells_with_faults(const std::string& path,
                                        const exp::IoFaultHook& hook,
                                        int max_restarts = 64) {
  const exp::CampaignAxes axes = tiny_axes();
  int restarts = 0;
  std::size_t next_cell = 0;
  auto make_writer = [&]() {
    exp::CheckpointWriter::Resume resume;
    if (std::filesystem::exists(path)) {
      const exp::CampaignCheckpoint ck = exp::load_checkpoint(path);
      resume.fresh = false;
      resume.valid_bytes = ck.valid_bytes;
      resume.missing_final_newline = ck.missing_final_newline;
      next_cell = ck.cells.size();
    }
    return std::make_unique<exp::CheckpointWriter>(path, axes,
                                                   exp::CampaignShard{}, resume,
                                                   hook);
  };
  auto writer = make_writer();
  while (next_cell < axes.cell_count()) {
    exp::CellResult cell;
    cell.context = axes.cell(next_cell);
    cell.metrics = cell_metrics(cell.context);
    try {
      writer->append(cell);
      ++next_cell;
    } catch (const exp::CheckpointError&) {
      // Injected failure: reopen through the resume path, which must
      // truncate any torn tail before the cell is retried.
      if (++restarts > max_restarts) throw;
      writer = make_writer();
    }
  }
  return slurp(path);
}

TEST(CheckpointIoFaults, EveryFailureClassRecoversByteIdentically) {
  // Reference: an uninterrupted run.
  const std::string clean_path = temp_path("clean.ckpt");
  const std::string reference =
      write_all_cells_with_faults(clean_path, exp::IoFaultHook{});

  FaultScheduleConfig c;
  c.seed = 31;
  c.io_short_write = 0.2;
  c.io_enospc = 0.2;
  c.io_torn_tail = 0.2;
  FaultInjector injector(c);

  // A fresh CheckpointWriter restarts its write index at 0, so a fault
  // scheduled at index 0 would re-fire on every restart and wedge the
  // retry loop. Key decisions on a monotone append counter instead: each
  // retried append draws a fresh decision, so the loop always progresses.
  std::uint64_t append_no = 0;
  const exp::IoFaultHook base = injector.io_hook();
  const exp::IoFaultHook hook = [&](std::uint64_t /*write_index*/,
                                    std::size_t bytes) {
    return base(append_no++, bytes);
  };

  const std::string faulty_path = temp_path("faulty.ckpt");
  const std::string recovered =
      write_all_cells_with_faults(faulty_path, hook);
  EXPECT_EQ(recovered, reference);
  EXPECT_GT(injector.count(FaultClass::kIoShortWrite) +
                injector.count(FaultClass::kIoEnospc) +
                injector.count(FaultClass::kIoTornTail),
            0u);
}

TEST(CheckpointIoFaults, TornTailLeavesExactlyTheDocumentedArtifact) {
  const std::string path = temp_path("torn.ckpt");
  const exp::CampaignAxes axes = tiny_axes();
  // Deterministic single-fault hook: the second record is torn mid-line.
  const exp::IoFaultHook hook = [](std::uint64_t index,
                                   std::size_t bytes) -> exp::IoFaultDirective {
    exp::IoFaultDirective d;
    if (index == 1) {
      d.kind = exp::IoFaultDirective::Kind::kTornTail;
      d.keep_bytes = bytes / 2;
    }
    return d;
  };
  exp::CheckpointWriter writer(path, axes, {}, {}, hook);
  exp::CellResult cell;
  cell.context = axes.cell(0);
  cell.metrics = cell_metrics(cell.context);
  writer.append(cell);
  cell.context = axes.cell(1);
  cell.metrics = cell_metrics(cell.context);
  EXPECT_THROW(writer.append(cell), exp::CheckpointError);

  // The reader sees the torn tail, drops it, and keeps the clean prefix.
  const exp::CampaignCheckpoint ck = exp::load_checkpoint(path);
  EXPECT_TRUE(ck.dropped_partial_tail);
  ASSERT_EQ(ck.cells.size(), 1u);
  EXPECT_EQ(ck.cells[0].context.flat, 0u);
}

}  // namespace
}  // namespace gridsub::fault
