#include "stats/fit.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/exponential.hpp"
#include "stats/summary.hpp"
#include "stats/truncated.hpp"

namespace gridsub::stats {
namespace {

std::vector<double> draw(const Distribution& d, std::size_t n,
                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = d.sample(rng);
  return xs;
}

TEST(FitLogNormal, RecoversParameters) {
  const LogNormal truth(5.8, 0.9);
  const auto xs = draw(truth, 50000, 1);
  const auto fit = fit_lognormal_mle(xs);
  EXPECT_NEAR(fit.mu(), 5.8, 0.02);
  EXPECT_NEAR(fit.sigma(), 0.9, 0.02);
}

TEST(FitLogNormal, RejectsNonPositiveData) {
  const std::vector<double> xs{1.0, -2.0, 3.0};
  EXPECT_THROW(fit_lognormal_mle(xs), std::invalid_argument);
}

TEST(FitWeibull, RecoversParameters) {
  const Weibull truth(1.4, 300.0);
  const auto xs = draw(truth, 50000, 2);
  const auto fit = fit_weibull_mle(xs);
  EXPECT_NEAR(fit.shape(), 1.4, 0.03);
  EXPECT_NEAR(fit.scale(), 300.0, 5.0);
}

TEST(FitWeibull, HeavyShapeBelowOne) {
  const Weibull truth(0.6, 200.0);
  const auto xs = draw(truth, 50000, 3);
  const auto fit = fit_weibull_mle(xs);
  EXPECT_NEAR(fit.shape(), 0.6, 0.02);
}

TEST(FitExponential, RateIsInverseMean) {
  const std::vector<double> xs{1.0, 3.0};
  EXPECT_DOUBLE_EQ(fit_exponential_rate_mle(xs), 0.5);
}

TEST(LogLikelihood, PrefersTheGeneratingModel) {
  const LogNormal truth(5.0, 0.8);
  const auto xs = draw(truth, 20000, 4);
  const double ll_truth = log_likelihood(xs, truth);
  const double ll_wrong = log_likelihood(xs, LogNormal(5.6, 0.8));
  EXPECT_GT(ll_truth, ll_wrong);
}

TEST(LogLikelihood, MinusInfinityOnImpossibleData) {
  const Exponential e(1.0);
  const std::vector<double> xs{-1.0};
  EXPECT_TRUE(std::isinf(log_likelihood(xs, e)));
}

TEST(Aic, PenalizesParameters) {
  EXPECT_DOUBLE_EQ(aic(-100.0, 2), 204.0);
  EXPECT_LT(aic(-100.0, 1), aic(-100.0, 3));
}

TEST(KsStatistic, SmallForMatchingModelLargeForWrongModel) {
  const LogNormal truth(5.0, 0.7);
  const auto xs = draw(truth, 5000, 5);
  const double d_match = ks_statistic(xs, truth);
  const double d_wrong = ks_statistic(xs, LogNormal(6.0, 0.7));
  EXPECT_LT(d_match, 0.03);
  EXPECT_GT(d_wrong, 0.25);
}

TEST(KsStatistic, ZeroImpossible) {
  const std::vector<double> empty;
  EXPECT_THROW(ks_statistic(empty, LogNormal(0.0, 1.0)),
               std::invalid_argument);
}

// ---- truncated-moment calibration (the Table 1 machinery) --------------

struct CalibCase {
  double mean, sd;
};

class TruncatedCalibration : public ::testing::TestWithParam<CalibCase> {};

TEST_P(TruncatedCalibration, HitsTargetConditionalMoments) {
  const auto [target_mean, target_sd] = GetParam();
  const double t_cut = 10000.0;
  const auto fit =
      calibrate_truncated_lognormal(target_mean, target_sd, t_cut);
  ASSERT_TRUE(fit.converged)
      << "mean=" << target_mean << " sd=" << target_sd;
  const LogNormal d(fit.mu, fit.sigma);
  const double m1 = d.truncated_raw_moment(1, t_cut);
  const double m2 = d.truncated_raw_moment(2, t_cut);
  EXPECT_NEAR(m1, target_mean, 1e-3 * target_mean);
  EXPECT_NEAR(std::sqrt(m2 - m1 * m1), target_sd, 1e-3 * target_sd);
}

TEST_P(TruncatedCalibration, EmpiricalCheckBySampling) {
  const auto [target_mean, target_sd] = GetParam();
  const double t_cut = 10000.0;
  const auto fit =
      calibrate_truncated_lognormal(target_mean, target_sd, t_cut);
  ASSERT_TRUE(fit.converged);
  const Truncated t(std::make_unique<LogNormal>(fit.mu, fit.sigma), 0.0,
                    t_cut);
  const auto xs = draw(t, 200000, 6);
  EXPECT_NEAR(mean(xs), target_mean, 0.02 * target_mean);
  EXPECT_NEAR(stddev(xs), target_sd, 0.05 * target_sd);
}

// Covers the paper's Table 1 extremes: 2008-01 (sd < mean) through 2008-03
// (sd ≈ 2.2 × mean).
INSTANTIATE_TEST_SUITE_P(
    Table1Regimes, TruncatedCalibration,
    ::testing::Values(CalibCase{434.0, 317.0}, CalibCase{570.0, 886.0},
                      CalibCase{660.0, 1046.0}, CalibCase{538.0, 1196.0},
                      CalibCase{418.0, 547.0}));

TEST(TruncatedCalibrationErrors, RejectsImpossibleTargets) {
  EXPECT_THROW(calibrate_truncated_lognormal(-5.0, 100.0, 1000.0),
               std::invalid_argument);
  EXPECT_THROW(calibrate_truncated_lognormal(2000.0, 100.0, 1000.0),
               std::invalid_argument);
  EXPECT_THROW(calibrate_truncated_lognormal(500.0, 0.0, 1000.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace gridsub::stats
