#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "model/discretized.hpp"
#include "model/empirical_latency.hpp"
#include "model/parametric_latency.hpp"
#include "stats/exponential.hpp"
#include "stats/lognormal.hpp"
#include "test_util.hpp"
#include "traces/datasets.hpp"

namespace gridsub::model {
namespace {

TEST(ParametricModel, FtildeSaturatesBelowOne) {
  const auto m = testutil::make_heavy_model(0.1, 4000.0);
  EXPECT_DOUBLE_EQ(m.ftilde(0.0), 0.0);
  const double sat = m.ftilde(1e9);
  EXPECT_LT(sat, 1.0);
  EXPECT_NEAR(sat, 1.0 - m.outlier_ratio(), 1e-12);
}

TEST(ParametricModel, FtildeIsScaledBulkCdf) {
  auto bulk = std::make_unique<stats::Exponential>(0.01);
  const stats::Exponential ref(0.01);
  const ParametricLatencyModel m(std::move(bulk), 0.2, 5000.0);
  for (double t : {10.0, 100.0, 800.0}) {
    EXPECT_NEAR(m.ftilde(t), 0.8 * ref.cdf(t), 1e-12);
  }
}

TEST(ParametricModel, OutlierRatioCombinesFaultsAndTail) {
  // Exponential(mean 1000) with horizon 1000: tail mass e^-1.
  auto bulk = std::make_unique<stats::Exponential>(0.001);
  const ParametricLatencyModel m(std::move(bulk), 0.1, 1000.0);
  const double expected = 1.0 - 0.9 * (1.0 - std::exp(-1.0));
  EXPECT_NEAR(m.outlier_ratio(), expected, 1e-12);
}

TEST(ParametricModel, SamplesOutliersAtTheRightRate) {
  const auto m = testutil::make_heavy_model(0.15, 2000.0);
  stats::Rng rng(3);
  int outliers = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (is_outlier_sample(m.sample(rng))) ++outliers;
  }
  EXPECT_NEAR(outliers / static_cast<double>(n), m.outlier_ratio(), 0.01);
}

TEST(ParametricModel, RejectsBadArguments) {
  EXPECT_THROW(ParametricLatencyModel(nullptr, 0.0, 100.0),
               std::invalid_argument);
  EXPECT_THROW(ParametricLatencyModel(
                   std::make_unique<stats::Exponential>(1.0), 1.0, 100.0),
               std::invalid_argument);
  EXPECT_THROW(ParametricLatencyModel(
                   std::make_unique<stats::Exponential>(1.0), 0.0, 0.0),
               std::invalid_argument);
}

TEST(EmpiricalModel, MatchesTraceCountsExactly) {
  traces::Trace t("unit", 1000.0);
  t.add_completed(0.0, 100.0);
  t.add_completed(0.0, 200.0);
  t.add_completed(0.0, 300.0);
  t.add_outlier(0.0);
  const EmpiricalLatencyModel m(t);
  EXPECT_DOUBLE_EQ(m.outlier_ratio(), 0.25);
  EXPECT_DOUBLE_EQ(m.ftilde(99.0), 0.0);
  EXPECT_DOUBLE_EQ(m.ftilde(100.0), 0.25);
  EXPECT_DOUBLE_EQ(m.ftilde(250.0), 0.5);
  EXPECT_DOUBLE_EQ(m.ftilde(1e9), 0.75);
}

TEST(EmpiricalModel, SampleReproducesOutlierShare) {
  const auto trace = traces::make_trace_by_name("2007-52");
  const EmpiricalLatencyModel m(trace);
  stats::Rng rng(17);
  int outliers = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (is_outlier_sample(m.sample(rng))) ++outliers;
  }
  EXPECT_NEAR(outliers / static_cast<double>(n), m.outlier_ratio(), 0.005);
}

TEST(EmpiricalModel, RequiresCompletedProbes) {
  traces::Trace t("empty", 1000.0);
  t.add_outlier(0.0);
  EXPECT_THROW(EmpiricalLatencyModel{t}, std::invalid_argument);
}

TEST(DiscretizedModel, InterpolatesSourceFtilde) {
  const auto src = testutil::make_heavy_model();
  const DiscretizedLatencyModel d(src, 1.0);
  for (double t : {0.0, 61.0, 155.5, 700.25, 3999.0}) {
    EXPECT_NEAR(d.ftilde(t), src.ftilde(t), 5e-4) << "t=" << t;
  }
  EXPECT_NEAR(d.outlier_ratio(), src.outlier_ratio(), 1e-6);
  EXPECT_DOUBLE_EQ(d.horizon(), src.horizon());
}

TEST(DiscretizedModel, GridIsMonotone) {
  const auto src = testutil::make_heavy_model();
  const DiscretizedLatencyModel d(src, 2.0);
  const auto grid = d.ftilde_grid();
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_GE(grid[i], grid[i - 1]);
  }
}

TEST(DiscretizedModel, DensityIntegratesBackToFtilde) {
  const auto src = testutil::make_heavy_model(0.0, 4000.0);
  const DiscretizedLatencyModel d(src, 1.0);
  // Riemann sum of the finite-difference density over [0, 1000] should
  // recover F̃(1000).
  double acc = 0.0;
  for (double t = 0.5; t < 1000.0; t += 1.0) acc += d.density(t);
  EXPECT_NEAR(acc, d.ftilde(1000.0), 0.01);
}

TEST(DiscretizedModel, InverseTransformSamplingMatchesFtilde) {
  const auto src = testutil::make_heavy_model(0.08, 4000.0);
  const DiscretizedLatencyModel d(src, 1.0);
  stats::Rng rng(23);
  const int n = 200000;
  int below_500 = 0, outliers = 0;
  for (int i = 0; i < n; ++i) {
    const double x = d.sample(rng);
    if (is_outlier_sample(x)) {
      ++outliers;
    } else if (x <= 500.0) {
      ++below_500;
    }
  }
  EXPECT_NEAR(below_500 / static_cast<double>(n), d.ftilde(500.0), 0.005);
  EXPECT_NEAR(outliers / static_cast<double>(n), d.outlier_ratio(), 0.005);
}

TEST(DiscretizedModel, FromTraceAgreesWithEmpiricalModel) {
  const auto trace = traces::make_trace_by_name("2007-53");
  const EmpiricalLatencyModel e(trace);
  const auto d = DiscretizedLatencyModel::from_trace(trace, 1.0);
  for (double t : {50.0, 250.0, 900.0, 5000.0}) {
    EXPECT_NEAR(d.ftilde(t), e.ftilde(t), 2e-3);
  }
}

TEST(DiscretizedModel, RejectsBadStep) {
  const auto src = testutil::make_heavy_model();
  EXPECT_THROW(DiscretizedLatencyModel(src, 0.0), std::invalid_argument);
  EXPECT_THROW(DiscretizedLatencyModel(src, 1e9), std::invalid_argument);
}

TEST(LatencyModels, CloneIsDeepAndEquivalent) {
  const auto src = testutil::make_heavy_model();
  const auto clone = src.clone();
  EXPECT_DOUBLE_EQ(clone->ftilde(321.0), src.ftilde(321.0));
  const DiscretizedLatencyModel d(src, 4.0);
  const auto dclone = d.clone();
  EXPECT_DOUBLE_EQ(dclone->ftilde(321.0), d.ftilde(321.0));
}

}  // namespace
}  // namespace gridsub::model
