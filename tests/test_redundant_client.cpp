// Related-work baselines (K-distributed, K-dual, K-random) on the DES grid,
// plus the dual-lane computing-element semantics they rely on.

#include "sched/redundant_client.hpp"

#include <gtest/gtest.h>

#include "sim/grid.hpp"

namespace gridsub::sched {
namespace {

sim::GridConfig small_grid() {
  sim::GridConfig config = sim::GridConfig::egee_like();
  config.elements = {{30, 0.01}, {20, 0.02}, {16, 0.01}, {12, 0.02}};
  config.background.arrival_rate = 0.05;
  config.background.runtime_mean = 1200.0;
  return config;
}

TEST(RedundantClient, CompletesAllTasks) {
  sim::GridSimulation grid(small_grid());
  grid.warm_up(5000.0);
  BaselineSpec spec;
  spec.scheme = BaselineScheme::kKDistributed;
  spec.k = 2;
  RedundantClient client(grid, spec, 40, 600.0);
  client.start();
  grid.simulator().run_until(grid.simulator().now() + 1e7);
  ASSERT_TRUE(client.done());
  EXPECT_EQ(client.outcomes().size(), 40u);
  for (const auto& o : client.outcomes()) {
    EXPECT_GE(o.latency, 0.0);
    EXPECT_GE(o.slowdown, 1.0);
    EXPECT_GE(o.submissions, 2);
  }
}

TEST(RedundantClient, SlowdownDefinitionHolds) {
  sim::GridSimulation grid(small_grid());
  grid.warm_up(5000.0);
  BaselineSpec spec;
  spec.k = 1;
  RedundantClient client(grid, spec, 25, 300.0);
  client.start();
  grid.simulator().run_until(grid.simulator().now() + 1e7);
  ASSERT_TRUE(client.done());
  for (const auto& o : client.outcomes()) {
    EXPECT_NEAR(o.slowdown, (o.latency + 300.0) / 300.0, 1e-12);
  }
}

TEST(RedundantClient, KClampedToSiteCount) {
  sim::GridSimulation grid(small_grid());
  grid.warm_up(2000.0);
  BaselineSpec spec;
  spec.k = 50;  // only 4 sites exist
  RedundantClient client(grid, spec, 10, 500.0);
  client.start();
  grid.simulator().run_until(grid.simulator().now() + 5e6);
  ASSERT_TRUE(client.done());
  for (const auto& o : client.outcomes()) {
    EXPECT_LE(o.submissions, 4 * o.rounds);
  }
}

TEST(RedundantClient, MoreCopiesReduceMeanSlowdown) {
  // Subramani's headline: slowdown decreases as K grows 1 -> 4. The gain
  // exists because dispatch-time load information is uncertain: here the
  // background lands unevenly (random dispatch over heterogeneous sites)
  // and the client's load view is minutes-stale, so a single "least
  // loaded" pick often queues behind a burst while K copies hedge it.
  const auto run = [](int k) {
    sim::GridConfig config = small_grid();
    config.wms.dispatch = sim::WmsConfig::Dispatch::kUniformRandom;
    // ~85% utilization: busy but stable queues (capacity is 78 slots).
    config.background.arrival_rate = 0.055;
    sim::GridSimulation grid(config);
    grid.warm_up(40000.0);
    BaselineSpec spec;
    spec.scheme = BaselineScheme::kKDistributed;
    spec.k = k;
    spec.info_staleness = 600.0;
    RedundantClient client(grid, spec, 120, 400.0);
    client.start();
    grid.simulator().run_until(grid.simulator().now() + 6e7);
    EXPECT_TRUE(client.done()) << "k=" << k;
    return client.mean_slowdown();
  };
  const double s1 = run(1);
  const double s4 = run(4);
  EXPECT_LT(s4, s1);
}

TEST(RedundantClient, DualQueueDuplicatesYieldToLocalWork) {
  // With every foreign queue saturated by local work, K-dual duplicates
  // (remote lane) never start; the home copy always wins.
  sim::GridConfig config = small_grid();
  config.background.arrival_rate = 0.0;
  sim::GridSimulation grid(config);
  // Saturate sites 1..3 with local jobs far outlasting the test horizon;
  // leave site 0 (home) free.
  for (std::size_t s = 1; s < grid.elements().size(); ++s) {
    auto& ce = *grid.elements()[s];
    for (int i = 0; i < ce.slots() + 10; ++i) {
      ce.submit(5e6, nullptr, nullptr);
    }
  }
  BaselineSpec spec;
  spec.scheme = BaselineScheme::kKDualQueue;
  spec.k = 3;
  spec.home_site = 0;
  RedundantClient client(grid, spec, 20, 100.0);
  client.start();
  grid.simulator().run_until(grid.simulator().now() + 1e6);
  ASSERT_TRUE(client.done());
  // Home site is idle: every task starts instantly there.
  EXPECT_LT(client.mean_latency(), 1.0);
  // Remote lanes stayed behind local work the whole time.
  for (std::size_t s = 1; s < grid.elements().size(); ++s) {
    EXPECT_EQ(grid.elements()[s]->running(), grid.elements()[s]->slots());
  }
}

TEST(RedundantClient, RandomSchemeUsesDistinctSites) {
  sim::GridSimulation grid(small_grid());
  grid.warm_up(2000.0);
  BaselineSpec spec;
  spec.scheme = BaselineScheme::kKRandom;
  spec.k = 4;
  RedundantClient client(grid, spec, 30, 200.0);
  client.start();
  grid.simulator().run_until(grid.simulator().now() + 1e7);
  ASSERT_TRUE(client.done());
  EXPECT_GE(client.mean_submissions(), 4.0);
}

TEST(RedundantClient, SafetyTimeoutRetriesLostRounds) {
  // All CEs 100% faulty for one grid: every round is lost, the safety
  // timeout must fire and re-round until the cap of this test's horizon.
  sim::GridConfig config = small_grid();
  for (auto& ce : config.elements) ce.fault_prob = 1.0;
  config.background.arrival_rate = 0.0;
  sim::GridSimulation grid(config);
  BaselineSpec spec;
  spec.k = 2;
  spec.safety_timeout = 100.0;
  RedundantClient client(grid, spec, 1, 50.0);
  client.start();
  grid.simulator().run_until(grid.simulator().now() + 1e4);
  EXPECT_FALSE(client.done());  // can never finish
  // ... but it kept trying: ~ horizon / safety_timeout rounds.
  EXPECT_GT(grid.metrics().jobs_dispatched, 50u);
}

TEST(RedundantClient, RejectsInvalidSpecs) {
  sim::GridSimulation grid(small_grid());
  BaselineSpec bad_k;
  bad_k.k = 0;
  EXPECT_THROW(RedundantClient(grid, bad_k, 5, 100.0),
               std::invalid_argument);
  BaselineSpec bad_home;
  bad_home.home_site = 99;
  EXPECT_THROW(RedundantClient(grid, bad_home, 5, 100.0),
               std::invalid_argument);
  BaselineSpec ok;
  EXPECT_THROW(RedundantClient(grid, ok, 0, 100.0), std::invalid_argument);
  EXPECT_THROW(RedundantClient(grid, ok, 5, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace gridsub::sched

namespace gridsub::sim {
namespace {

TEST(ComputingElementLanes, RemoteLaneWaitsForLocalWork) {
  Simulator sim;
  ComputingElement ce(sim, "ce", 1, 0.0, stats::Rng(3));
  int order = 0, local_started = 0, remote_started = 0;
  // Occupy the slot.
  ce.submit(100.0, nullptr, nullptr);
  // Remote job enqueued first, local job second: local must still win.
  ce.submit(
      10.0, [&] { remote_started = ++order; }, nullptr,
      ComputingElement::Lane::kRemote);
  ce.submit(
      10.0, [&] { local_started = ++order; }, nullptr,
      ComputingElement::Lane::kLocal);
  EXPECT_EQ(ce.queue_length(ComputingElement::Lane::kLocal), 1u);
  EXPECT_EQ(ce.queue_length(ComputingElement::Lane::kRemote), 1u);
  sim.run();
  EXPECT_EQ(local_started, 1);
  EXPECT_EQ(remote_started, 2);
}

TEST(ComputingElementLanes, QueueLengthSumsBothLanes) {
  Simulator sim;
  ComputingElement ce(sim, "ce", 1, 0.0, stats::Rng(3));
  ce.submit(100.0, nullptr, nullptr);  // running
  ce.submit(1.0, nullptr, nullptr, ComputingElement::Lane::kLocal);
  ce.submit(1.0, nullptr, nullptr, ComputingElement::Lane::kRemote);
  ce.submit(1.0, nullptr, nullptr, ComputingElement::Lane::kRemote);
  EXPECT_EQ(ce.queue_length(), 3u);
  EXPECT_DOUBLE_EQ(ce.load(), 4.0);
}

TEST(ComputingElementLanes, CancelWorksInRemoteLane) {
  Simulator sim;
  ComputingElement ce(sim, "ce", 1, 0.0, stats::Rng(3));
  ce.submit(100.0, nullptr, nullptr);
  int started = 0;
  const auto h = ce.submit(
      1.0, [&] { ++started; }, nullptr, ComputingElement::Lane::kRemote);
  EXPECT_TRUE(ce.cancel(h));
  sim.run();
  EXPECT_EQ(started, 0);
}

}  // namespace
}  // namespace gridsub::sim
