// Single-resubmission strategy (paper §4, eqs. 1-2).

#include "core/single_resubmission.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "numerics/integration.hpp"
#include "test_util.hpp"

namespace gridsub::core {
namespace {

TEST(SingleResubmission, MatchesEquation1ByDirectQuadrature) {
  const auto src = testutil::make_heavy_model(0.05, 4000.0);
  const auto m = testutil::discretize(src, 1.0);
  const SingleResubmission s(m);
  for (double t_inf : {200.0, 500.0, 1000.0, 3000.0}) {
    const double direct =
        numerics::adaptive_simpson(
            [&](double u) { return 1.0 - m.ftilde(u); }, 0.0, t_inf, 1e-9) /
        m.ftilde(t_inf);
    EXPECT_NEAR(s.expectation(t_inf), direct, 0.5) << "t_inf=" << t_inf;
  }
}

TEST(SingleResubmission, ExponentialLatencyIsTimeoutIndifferent) {
  // Memorylessness: E_J(t∞) == mean for every t∞ when rho == 0. This is
  // the sharp analytic sanity check — resubmission can't help (or hurt).
  const auto src = testutil::make_exponential_model(300.0, 0.0, 20000.0);
  const auto m = testutil::discretize(src, 1.0);
  const SingleResubmission s(m);
  for (double t_inf : {50.0, 300.0, 1000.0, 5000.0}) {
    EXPECT_NEAR(s.expectation(t_inf), 300.0, 2.0) << "t_inf=" << t_inf;
  }
}

TEST(SingleResubmission, FaultsMakeLargeTimeoutsExpensive) {
  // With outliers, E_J explodes as t∞ grows (each fault costs t∞), so the
  // optimum is interior.
  const auto src = testutil::make_exponential_model(300.0, 0.2, 20000.0);
  const auto m = testutil::discretize(src, 1.0);
  const SingleResubmission s(m);
  const auto opt = s.optimize();
  EXPECT_LT(opt.t_inf, 19000.0);
  EXPECT_LT(opt.metrics.expectation, s.expectation(19000.0));
  EXPECT_LT(opt.metrics.expectation, s.expectation(60.0));
}

TEST(SingleResubmission, ExpectationInfiniteWhenNoMassBeforeTimeout) {
  const auto src = testutil::make_heavy_model(0.05, 4000.0);
  const auto m = testutil::discretize(src, 1.0);
  const SingleResubmission s(m);
  // The latency floor is 60 s; F̃(10) == 0.
  EXPECT_TRUE(std::isinf(s.expectation(10.0)));
  EXPECT_TRUE(std::isinf(s.expectation(-5.0)));
}

TEST(SingleResubmission, OptimumBeatsArbitraryTimeouts) {
  const auto src = testutil::make_heavy_model(0.05, 4000.0);
  const auto m = testutil::discretize(src, 1.0);
  const SingleResubmission s(m);
  const auto opt = s.optimize();
  for (double t : {150.0, 400.0, 900.0, 2500.0, 3900.0}) {
    EXPECT_LE(opt.metrics.expectation, s.expectation(t) + 1e-6);
  }
}

TEST(SingleResubmission, ExpectedSubmissionsIsInverseSuccessProbability) {
  const auto src = testutil::make_heavy_model(0.05, 4000.0);
  const auto m = testutil::discretize(src, 1.0);
  const SingleResubmission s(m);
  const double t_inf = 800.0;
  EXPECT_NEAR(s.expected_submissions(t_inf), 1.0 / m.ftilde(t_inf), 1e-9);
  EXPECT_GT(s.expected_submissions(200.0), s.expected_submissions(2000.0));
}

TEST(SingleResubmission, StdDeviationMatchesEquation2) {
  // Eq. 2 transcribed directly, compared against the moment-form
  // implementation.
  const auto src = testutil::make_heavy_model(0.05, 4000.0);
  const auto m = testutil::discretize(src, 1.0);
  const SingleResubmission s(m);
  const double t_inf = 700.0;
  const double p = m.ftilde(t_inf);
  const auto surv = [&](double u) { return 1.0 - m.ftilde(u); };
  const double i0 =
      numerics::adaptive_simpson(surv, 0.0, t_inf, 1e-10);
  const double i1 = numerics::adaptive_simpson(
      [&](double u) { return u * surv(u); }, 0.0, t_inf, 1e-10);
  const double var_eq2 = -i0 * i0 / (p * p) + 2.0 * i1 / p +
                         2.0 * t_inf * (1.0 - p) * i0 / (p * p);
  EXPECT_NEAR(s.std_deviation(t_inf), std::sqrt(var_eq2), 1.0);
}

TEST(SingleResubmission, Table1PatternSigmaJBelowSigmaR) {
  // The paper's Table 1 observation: sigma_J at the optimum is smaller
  // than the raw latency sigma (outlier impact suppressed).
  const auto src = testutil::make_heavy_model(0.05, 4000.0);
  const auto m = testutil::discretize(src, 1.0);
  const SingleResubmission s(m);
  const auto opt = s.optimize();
  // sigma of the conditioned latency: estimate from the model by sampling.
  stats::Rng rng(5);
  double sum = 0.0, sum2 = 0.0;
  int n = 0;
  for (int i = 0; i < 200000; ++i) {
    const double x = src.sample(rng);
    if (!model::is_outlier_sample(x)) {
      sum += x;
      sum2 += x * x;
      ++n;
    }
  }
  const double mean = sum / n;
  const double sigma_r = std::sqrt(sum2 / n - mean * mean);
  EXPECT_LT(opt.metrics.std_deviation, sigma_r);
}

class SingleTimeoutSweep : public ::testing::TestWithParam<double> {};

TEST_P(SingleTimeoutSweep, EvaluateIsConsistentWithComponents) {
  const auto src = testutil::make_heavy_model(0.05, 4000.0);
  const auto m = testutil::discretize(src, 1.0);
  const SingleResubmission s(m);
  const double t_inf = GetParam();
  const auto metrics = s.evaluate(t_inf);
  EXPECT_DOUBLE_EQ(metrics.expectation, s.expectation(t_inf));
  EXPECT_DOUBLE_EQ(metrics.std_deviation, s.std_deviation(t_inf));
  if (std::isfinite(metrics.expectation)) {
    EXPECT_GT(metrics.expectation, 0.0);
    EXPECT_GE(metrics.std_deviation, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Timeouts, SingleTimeoutSweep,
                         ::testing::Values(100.0, 250.0, 500.0, 1000.0,
                                           2000.0, 3999.0));

}  // namespace
}  // namespace gridsub::core
