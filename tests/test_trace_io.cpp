#include "traces/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace gridsub::traces {
namespace {

Trace sample_trace() {
  Trace t("round-trip", 8000.0);
  t.add_completed(0.0, 123.25);
  t.add_completed(50.5, 456.0);
  t.add_outlier(100.0);
  t.add_fault(150.75);
  return t;
}

TEST(TraceIo, RoundTripsThroughCsv) {
  const Trace original = sample_trace();
  std::stringstream ss;
  write_csv(ss, original);
  const Trace restored = read_csv(ss);
  EXPECT_EQ(restored.name(), original.name());
  EXPECT_DOUBLE_EQ(restored.timeout(), original.timeout());
  ASSERT_EQ(restored.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(restored.records()[i].submit_time,
                     original.records()[i].submit_time);
    EXPECT_DOUBLE_EQ(restored.records()[i].latency,
                     original.records()[i].latency);
    EXPECT_EQ(restored.records()[i].status, original.records()[i].status);
  }
}

TEST(TraceIo, FileRoundTrip) {
  const Trace original = sample_trace();
  const std::string path = ::testing::TempDir() + "/gridsub_trace_test.csv";
  write_csv_file(path, original);
  const Trace restored = read_csv_file(path);
  EXPECT_EQ(restored.size(), original.size());
  EXPECT_EQ(restored.name(), original.name());
}

TEST(TraceIo, CrlfFileRoundTrips) {
  // A CSV written on Windows terminates lines with \r\n; getline leaves
  // the \r on the status field, which used to throw "unknown status
  // 'completed\r'". The whole fixture uses CRLF, including the comment
  // headers.
  std::stringstream ss;
  ss << "# name=crlf-week\r\n"
     << "# timeout=9000\r\n"
     << "submit_time,latency,status\r\n"
     << "0,123.25,completed\r\n"
     << "50.5,456,completed\r\n"
     << "100,9000,outlier\r\n"
     << "150.75,9000,fault\r\n";
  const Trace t = read_csv(ss);
  EXPECT_EQ(t.name(), "crlf-week");
  EXPECT_DOUBLE_EQ(t.timeout(), 9000.0);
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t.records()[0].status, ProbeStatus::kCompleted);
  EXPECT_EQ(t.records()[2].status, ProbeStatus::kOutlier);
  EXPECT_EQ(t.records()[3].status, ProbeStatus::kFault);
  EXPECT_DOUBLE_EQ(t.records()[1].latency, 456.0);
}

TEST(TraceIo, TrimsNameValueLikeKey) {
  std::stringstream ss;
  ss << "#  name =  padded-name  \n"
     << "submit_time,latency,status\n"
     << "0,1,completed\n";
  const Trace t = read_csv(ss);
  EXPECT_EQ(t.name(), "padded-name");
}

TEST(TraceIo, StatusWithTrailingSpacesParses) {
  std::stringstream ss;
  ss << "submit_time,latency,status\n0,1,completed  \n";
  const Trace t = read_csv(ss);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.records()[0].status, ProbeStatus::kCompleted);
}

TEST(TraceIo, RejectsUnknownStatus) {
  std::stringstream ss;
  ss << "submit_time,latency,status\n0,1,weird\n";
  EXPECT_THROW(read_csv(ss), std::runtime_error);
}

TEST(TraceIo, RejectsMalformedLine) {
  std::stringstream ss;
  ss << "submit_time,latency,status\n0,1\n";
  EXPECT_THROW(read_csv(ss), std::runtime_error);
}

TEST(TraceIo, RejectsMissingHeader) {
  std::stringstream ss;
  ss << "0,1,completed\n";
  EXPECT_THROW(read_csv(ss), std::runtime_error);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/dir/trace.csv"),
               std::runtime_error);
}

TEST(TraceIo, StatsSurviveRoundTrip) {
  const Trace original = sample_trace();
  std::stringstream ss;
  write_csv(ss, original);
  const Trace restored = read_csv(ss);
  const auto s0 = original.stats();
  const auto s1 = restored.stats();
  EXPECT_DOUBLE_EQ(s0.mean_completed, s1.mean_completed);
  EXPECT_DOUBLE_EQ(s0.outlier_ratio, s1.outlier_ratio);
  EXPECT_DOUBLE_EQ(s0.censored_mean, s1.censored_mean);
}

}  // namespace
}  // namespace gridsub::traces
