// Unit wall for the advisor snapshot path (ISSUE 9): keyed isolation,
// documented fallback for not-ready keys, drift stamping, monotone
// generation-numbered swaps, the torn-read stamp, the request loop, and
// the replay-feed key projection.

#include "serve/advisor.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "serve/replay_feed.hpp"
#include "serve/request_loop.hpp"
#include "traces/scenarios.hpp"

namespace gridsub::serve {
namespace {

/// Cheap per-key planner: coarse model grid and a small window, so a
/// refit costs milliseconds instead of the default config's hundreds.
online::OnlinePlannerConfig fast_planner() {
  online::OnlinePlannerConfig c;
  c.window = 80;
  c.min_observations = 30;
  c.refit_interval = 40;
  c.model_step = 50.0;
  c.timeout = 4000.0;
  return c;
}

AdvisorConfig fast_config() {
  AdvisorConfig c;
  c.planner = fast_planner();
  c.fallback_t_inf = 1200.0;
  c.refresh_pending = 16;
  return c;
}

AdvisorKey key(const std::string& vo, const std::string& site = "lpc",
               const std::string& uc = "uc0") {
  return AdvisorKey{vo, site, uc};
}

/// Ingests `n` completed observations around `center`. The period-30
/// spread keeps 30-observation window halves distribution-identical, so
/// stationary feeds stay under the drift threshold.
void feed(AdvisorService& service, const AdvisorKey& k, int n,
          double center) {
  for (int i = 0; i < n; ++i) {
    service.ingest(k, center + static_cast<double>(i % 30));
  }
}

TEST(Advisor, FallbackBeforeAnyData) {
  AdvisorService service(fast_config());
  AdvisorService::Reader reader(service);
  const Advice a = reader.advise(key("vo0"));
  EXPECT_FALSE(a.ready);
  EXPECT_EQ(a.kind, core::StrategyKind::kSingleResubmission);
  EXPECT_DOUBLE_EQ(a.t_inf, 1200.0);
  EXPECT_EQ(a.generation, 0u);
  EXPECT_EQ(a.entry_generation, 0u);
  EXPECT_EQ(advice_stamp(a), a.stamp);
}

TEST(Advisor, NotReadyKeyReturnsDocumentedFallback) {
  AdvisorService service(fast_config());
  AdvisorService::Reader reader(service);
  feed(service, key("vo0"), 10, 400.0);  // below min_observations = 30
  service.refresh_now();
  const Advice a = reader.advise(key("vo0"));
  EXPECT_FALSE(a.ready);
  EXPECT_EQ(a.kind, core::StrategyKind::kSingleResubmission);
  EXPECT_DOUBLE_EQ(a.t_inf, 1200.0);
  // The key *is* registered: its entry carries the publishing generation.
  EXPECT_EQ(a.generation, 1u);
  EXPECT_EQ(a.entry_generation, 1u);
  EXPECT_EQ(advice_stamp(a), a.stamp);
  EXPECT_EQ(service.stats().keys, 1u);
}

TEST(Advisor, ReadyKeyServesItsTunedRecommendation) {
  AdvisorService service(fast_config());
  AdvisorService::Reader reader(service);
  feed(service, key("vo0"), 60, 400.0);
  service.refresh_now();
  const Advice a = reader.advise(key("vo0"));
  EXPECT_TRUE(a.ready);
  EXPECT_GT(a.t_inf, 0.0);
  EXPECT_GT(a.expectation, 0.0);
  EXPECT_EQ(advice_stamp(a), a.stamp);
}

TEST(Advisor, KeyedIsolation) {
  AdvisorService service(fast_config());
  AdvisorService::Reader reader(service);
  feed(service, key("voA"), 60, 300.0);
  feed(service, key("voB"), 60, 1500.0);
  service.refresh_now();
  const Advice b_before = reader.advise(key("voB"));
  ASSERT_TRUE(b_before.ready);

  // A stream of new observations for A must not move B's recommendation:
  // same payload, same stamp, same entry generation.
  feed(service, key("voA"), 80, 900.0);
  service.refresh_now();
  const Advice a_after = reader.advise(key("voA"));
  const Advice b_after = reader.advise(key("voB"));
  EXPECT_EQ(b_after.stamp, b_before.stamp);
  EXPECT_EQ(b_after.entry_generation, b_before.entry_generation);
  EXPECT_DOUBLE_EQ(b_after.t_inf, b_before.t_inf);
  EXPECT_DOUBLE_EQ(b_after.expectation, b_before.expectation);
  // ...while A's entry was rebuilt by the new generation.
  EXPECT_EQ(a_after.entry_generation, 2u);
  EXPECT_EQ(b_after.generation, 2u);  // served from the new snapshot
}

TEST(Advisor, DriftFlagIsStampedIntoTheSnapshot) {
  AdvisorConfig config = fast_config();
  config.planner.window = 120;
  config.planner.refit_interval = 200;  // no refit between the regimes
  AdvisorService service(config);
  AdvisorService::Reader reader(service);
  const AdvisorKey k = key("vo0");
  feed(service, k, 60, 200.0);    // old regime
  feed(service, k, 60, 2800.0);   // new regime: halves separate
  service.refresh_now();
  const Advice a = reader.advise(k);
  EXPECT_TRUE(a.drifted);
  EXPECT_EQ(advice_stamp(a), a.stamp);

  // A stationary key in the same snapshot stays quiet.
  feed(service, key("vo1"), 60, 400.0);
  service.refresh_now();
  EXPECT_FALSE(reader.advise(key("vo1")).drifted);
}

TEST(Advisor, GenerationIsMonotoneAndSwapsOnlyWhenDirty) {
  AdvisorService service(fast_config());
  EXPECT_EQ(service.refresh_now(), 0u);  // nothing pending: no swap
  feed(service, key("vo0"), 5, 400.0);
  EXPECT_EQ(service.refresh_now(), 1u);
  EXPECT_EQ(service.refresh_now(), 1u);  // clean again: generation holds
  feed(service, key("vo0"), 1, 400.0);
  EXPECT_EQ(service.refresh_now(), 2u);
  const AdvisorStats stats = service.stats();
  EXPECT_EQ(stats.generation, 2u);
  EXPECT_EQ(stats.swaps, 2u);
  EXPECT_EQ(stats.staleness_last, 1u);
  EXPECT_EQ(stats.staleness_max, 5u);
  EXPECT_EQ(stats.pending, 0u);
}

TEST(Advisor, StampBindsThePayload) {
  AdvisorService service(fast_config());
  AdvisorService::Reader reader(service);
  feed(service, key("vo0"), 60, 400.0);
  service.refresh_now();
  Advice a = reader.advise(key("vo0"));
  EXPECT_EQ(advice_stamp(a), a.stamp);
  Advice tampered = a;
  tampered.t_inf += 1.0;
  EXPECT_NE(advice_stamp(tampered), a.stamp);
  tampered = a;
  tampered.entry_generation += 1;
  EXPECT_NE(advice_stamp(tampered), a.stamp);
  // generation is serving metadata, deliberately outside the stamp.
  tampered = a;
  tampered.generation += 1;
  EXPECT_EQ(advice_stamp(tampered), a.stamp);
}

TEST(Advisor, DumpJsonIsDeterministicAndSorted) {
  const auto run = [] {
    AdvisorService service(fast_config());
    feed(service, key("voB", "siteX"), 60, 700.0);
    feed(service, key("voA", "siteY"), 60, 300.0);
    feed(service, key("voA", "siteA"), 10, 500.0);  // not ready
    service.refresh_now();
    std::ostringstream os;
    service.dump_json(os);
    return os.str();
  };
  const std::string first = run();
  EXPECT_EQ(first, run());
  // Keys come out sorted: voA/siteA before voA/siteY before voB/siteX.
  const auto a = first.find("\"siteA\"");
  const auto y = first.find("\"siteY\"");
  const auto x = first.find("\"siteX\"");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(y, std::string::npos);
  ASSERT_NE(x, std::string::npos);
  EXPECT_LT(a, y);
  EXPECT_LT(y, x);
  EXPECT_NE(first.find("\"fallback_t_inf\": 1200"), std::string::npos);
}

TEST(Advisor, ReaderCapacityIsEnforced) {
  AdvisorService service(fast_config());
  std::vector<std::unique_ptr<AdvisorService::Reader>> readers;
  for (std::size_t i = 0; i < AdvisorService::kMaxReaders; ++i) {
    readers.push_back(std::make_unique<AdvisorService::Reader>(service));
  }
  EXPECT_THROW(AdvisorService::Reader extra(service), std::runtime_error);
  readers.pop_back();  // a freed slot is reusable
  EXPECT_NO_THROW(AdvisorService::Reader again(service));
}

TEST(Advisor, ValidatesConfig) {
  AdvisorConfig bad;
  bad.fallback_t_inf = 0.0;
  EXPECT_THROW(AdvisorService{bad}, std::invalid_argument);
  AdvisorConfig bad2;
  bad2.refresh_pending = 0;
  EXPECT_THROW(AdvisorService{bad2}, std::invalid_argument);
  AdvisorConfig bad3;
  bad3.planner.refit_interval = 0;  // planner config checked eagerly
  EXPECT_THROW(AdvisorService{bad3}, std::invalid_argument);
  AdvisorService service(fast_config());
  EXPECT_THROW(service.ingest(key("vo0"), -1.0), std::invalid_argument);
  EXPECT_THROW(service.ingest(key("vo0"), 4000.0), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Request loop over the in-process transport
// --------------------------------------------------------------------------

TEST(RequestLoop, ServesAdviseAndStats) {
  AdvisorService service(fast_config());
  feed(service, key("vo0"), 60, 400.0);
  service.refresh_now();

  InProcessTransport transport;
  RequestLoop loop(service, transport);
  loop.start();

  AdvisorRequest advise;
  advise.type = AdvisorRequest::Type::kAdvise;
  advise.id = 7;
  advise.key = key("vo0");
  transport.post(advise);
  AdvisorRequest stats;
  stats.type = AdvisorRequest::Type::kStats;
  stats.id = 8;
  transport.post(stats);

  bool saw_advise = false;
  bool saw_stats = false;
  for (int i = 0; i < 2; ++i) {
    AdvisorResponse response;
    ASSERT_TRUE(transport.take_reply(response));
    if (response.type == AdvisorRequest::Type::kAdvise) {
      EXPECT_EQ(response.id, 7u);
      EXPECT_TRUE(response.advice.ready);
      EXPECT_EQ(advice_stamp(response.advice), response.advice.stamp);
      saw_advise = true;
    } else {
      EXPECT_EQ(response.id, 8u);
      EXPECT_EQ(response.stats.keys, 1u);
      EXPECT_EQ(response.stats.generation, 1u);
      saw_stats = true;
    }
  }
  EXPECT_TRUE(saw_advise);
  EXPECT_TRUE(saw_stats);

  transport.close();
  loop.join();
  EXPECT_EQ(loop.served(), 2u);
  EXPECT_THROW(transport.post(advise), std::runtime_error);
}

TEST(RequestLoop, CloseUnblocksAnIdleLoop) {
  AdvisorService service(fast_config());
  InProcessTransport transport;
  RequestLoop loop(service, transport);
  loop.start();
  transport.close();
  loop.join();
  EXPECT_EQ(loop.served(), 0u);
  AdvisorResponse response;
  EXPECT_FALSE(transport.take_reply(response));
}

// --------------------------------------------------------------------------
// Replay-feed key projection + single-threaded feed accounting
// --------------------------------------------------------------------------

TEST(ReplayFeed, KeyProjectionUsesRecordedIds) {
  ReplayFeedConfig config;
  config.user_classes = 2;
  config.sites = {"lpc", "nikhef"};
  traces::WorkloadJob job;
  job.user = 5;
  job.group = 3;
  const AdvisorKey k = key_for_job(job, 999, config);
  EXPECT_EQ(k.vo, "vo3");
  EXPECT_EQ(k.user_class, "uc1");       // 5 % 2
  EXPECT_EQ(k.site, "lpc");             // (5 / 2) % 2 = 0
}

TEST(ReplayFeed, SyntheticPopulationIsDeterministicInTheIndex) {
  ReplayFeedConfig config;
  traces::WorkloadJob job;  // user = group = -1
  const AdvisorKey a = key_for_job(job, 4, config);
  const AdvisorKey b = key_for_job(job, 4, config);
  EXPECT_EQ(a, b);
  // index 4 → user 4, group 4 % 3 = 1.
  EXPECT_EQ(a.vo, "vo1");
  // Shard assignment is a pure function of the key.
  EXPECT_EQ(shard_for_key(a, config), shard_for_key(b, config));
  EXPECT_LT(shard_for_key(a, config), config.ingest_threads);
}

TEST(ReplayFeed, FeedsAScenarioAndAccountsEveryJob) {
  AdvisorService service(fast_config());
  traces::ScenarioConfig scenario;
  scenario.duration = 3600.0;
  scenario.base_rate = 0.1;  // ~360 jobs
  scenario.runtime_mean = 600.0;
  const traces::Workload week =
      traces::make_scenario("stationary-week", scenario);
  ReplayFeedConfig config;
  const ReplayFeedReport report = replay_feed(service, week, config);
  EXPECT_EQ(report.jobs, week.size());
  EXPECT_EQ(report.completed + report.outliers, report.jobs);
  EXPECT_GT(report.keys, 1u);
  ASSERT_EQ(report.per_thread.size(), 1u);
  EXPECT_EQ(report.per_thread[0], report.jobs);
  const AdvisorStats stats = service.stats();
  EXPECT_EQ(stats.observations, report.jobs);
  EXPECT_EQ(stats.keys, report.keys);
}

TEST(ReplayFeed, ValidatesConfig) {
  AdvisorService service(fast_config());
  const traces::Workload empty("empty");
  ReplayFeedConfig bad;
  bad.ingest_threads = 0;
  EXPECT_THROW(replay_feed(service, empty, bad), std::invalid_argument);
  ReplayFeedConfig bad2;
  bad2.sites.clear();
  EXPECT_THROW(replay_feed(service, empty, bad2), std::invalid_argument);
  ReplayFeedConfig bad3;
  bad3.latency_scale = 0.0;
  EXPECT_THROW(replay_feed(service, empty, bad3), std::invalid_argument);
}

}  // namespace
}  // namespace gridsub::serve
