#pragma once

// Shared fixtures for the gridsub test suite: small, fast latency models
// with known structure.

#include <memory>

#include "model/discretized.hpp"
#include "model/parametric_latency.hpp"
#include "stats/exponential.hpp"
#include "stats/lognormal.hpp"
#include "stats/shifted.hpp"

namespace gridsub::testutil {

/// Shifted log-normal bulk + faults: the EGEE-like regime at small scale.
inline model::ParametricLatencyModel make_heavy_model(
    double fault_ratio = 0.05, double horizon = 4000.0) {
  auto bulk = std::make_unique<stats::Shifted>(
      std::make_unique<stats::LogNormal>(5.0, 1.0), 60.0);
  return model::ParametricLatencyModel(std::move(bulk), fault_ratio,
                                       horizon);
}

/// Memoryless latency: single resubmission is timeout-indifferent here.
inline model::ParametricLatencyModel make_exponential_model(
    double mean = 300.0, double fault_ratio = 0.0,
    double horizon = 20000.0) {
  return model::ParametricLatencyModel(
      std::make_unique<stats::Exponential>(1.0 / mean), fault_ratio,
      horizon);
}

inline model::DiscretizedLatencyModel discretize(
    const model::LatencyModel& m, double step = 1.0) {
  return model::DiscretizedLatencyModel(m, step);
}

}  // namespace gridsub::testutil
