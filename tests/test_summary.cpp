#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace gridsub::stats {
namespace {

TEST(Summary, MeanAndVariance) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(variance(xs), 2.5);
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(2.5));
}

TEST(Summary, QuantileType7) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Summary, QuantileUnsortedInput) {
  const std::vector<double> xs{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(median(xs), 5.0);
  EXPECT_DOUBLE_EQ(min(xs), 1.0);
  EXPECT_DOUBLE_EQ(max(xs), 9.0);
}

TEST(Summary, SkewnessSigns) {
  const std::vector<double> right{1, 1, 1, 2, 2, 3, 5, 9, 20};
  EXPECT_GT(skewness(right), 0.5);
  const std::vector<double> sym{-3, -2, -1, 0, 1, 2, 3};
  EXPECT_NEAR(skewness(sym), 0.0, 1e-12);
}

TEST(Summary, SummarizeFillsAllFields) {
  const std::vector<double> xs{4.0, 8.0, 15.0, 16.0, 23.0, 42.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 6u);
  EXPECT_DOUBLE_EQ(s.min, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 42.0);
  EXPECT_DOUBLE_EQ(s.mean, 18.0);
  EXPECT_DOUBLE_EQ(s.median, 15.5);
  EXPECT_GT(s.q75, s.q25);
}

TEST(Summary, ErrorsOnDegenerateInput) {
  const std::vector<double> empty;
  const std::vector<double> one{1.0};
  EXPECT_THROW(mean(empty), std::invalid_argument);
  EXPECT_THROW(variance(one), std::invalid_argument);
  EXPECT_THROW(quantile(empty, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile(one, 2.0), std::invalid_argument);
  EXPECT_THROW(skewness(one), std::invalid_argument);
}

TEST(Bootstrap, MeanCiCoversTruthAndShrinks) {
  Rng rng(123);
  std::vector<double> xs(400);
  for (auto& x : xs) x = rng.normal(10.0, 2.0);
  Rng boot_rng(456);
  const auto ci = bootstrap_ci(
      xs, [](std::span<const double> s) { return mean(s); }, 2000, 0.95,
      boot_rng);
  EXPECT_LT(ci.lo, ci.estimate);
  EXPECT_GT(ci.hi, ci.estimate);
  EXPECT_NEAR(ci.estimate, 10.0, 0.5);
  // Width should be about 4 * se = 4 * 2/20 = 0.4.
  EXPECT_LT(ci.hi - ci.lo, 0.8);
  EXPECT_GT(ci.hi - ci.lo, 0.15);
}

TEST(Bootstrap, RejectsBadLevel) {
  const std::vector<double> xs{1.0, 2.0};
  Rng rng(1);
  const auto stat = [](std::span<const double> s) { return mean(s); };
  EXPECT_THROW(bootstrap_ci(xs, stat, 10, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(bootstrap_ci(xs, stat, 10, 1.0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace gridsub::stats
