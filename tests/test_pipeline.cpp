// End-to-end pipeline tests: the full loop the paper describes —
// measure probes -> estimate F̃ -> optimize a strategy -> validate the
// prediction — executed entirely inside the repository, twice:
//  (a) on a synthetic calibrated dataset, validated by Monte Carlo;
//  (b) on the DES grid, with probes measured in simulation and the tuned
//      strategy executed by a live client.

#include <gtest/gtest.h>

#include <cmath>

#include "core/cost.hpp"
#include "core/planner.hpp"
#include "mc/mc_engine.hpp"
#include "model/discretized.hpp"
#include "sim/grid.hpp"
#include "sim/probe_client.hpp"
#include "sim/strategy_client.hpp"
#include "traces/datasets.hpp"
#include "traces/trace_io.hpp"

namespace gridsub {
namespace {

TEST(Pipeline, SyntheticDatasetToValidatedOptimum) {
  const auto trace = traces::make_trace_by_name("2006-IX");
  const auto m = model::DiscretizedLatencyModel::from_trace(trace, 1.0);

  const core::CostModel cost(m);
  const auto opt = cost.optimize_delayed_cost();
  ASSERT_LE(opt.delta_cost, 1.0 + 1e-9);

  // The predicted E_J must match a Monte Carlo execution of the strategy.
  mc::McOptions mo;
  mo.replications = 200000;
  const auto mc = mc::simulate_delayed(m, opt.t0, opt.t_inf, mo);
  EXPECT_NEAR(mc.mean_latency, opt.expectation, 0.02 * opt.expectation);

  // The *fleet* load (billed job-seconds per task) must match the exact
  // expected-job-seconds formula — this is the honest accounting; the
  // paper's N∥(E_J) point estimate is below it by Jensen's inequality.
  const double mc_job_seconds = mc.aggregate_parallel * mc.mean_latency;
  const double predicted_job_seconds =
      cost.delayed().expected_job_seconds(opt.t0, opt.t_inf);
  EXPECT_NEAR(mc_job_seconds, predicted_job_seconds,
              0.02 * predicted_job_seconds);
  EXPECT_LE(opt.n_parallel, opt.n_parallel_fleet + 1e-9);

  // The single-resubmission baseline bills exactly its own latency.
  const auto base = cost.baseline();
  const auto mc_base = mc::simulate_single(m, base.t_inf, mo);
  const double single_job_seconds =
      mc_base.aggregate_parallel * mc_base.mean_latency;
  EXPECT_NEAR(single_job_seconds, base.metrics.expectation,
              0.02 * base.metrics.expectation);

  // Under fleet accounting the delayed optimum may or may not beat the
  // baseline (paper's claim holds under its own accounting); what must
  // hold is consistency between the two Δcost values we report.
  EXPECT_NEAR(opt.delta_cost_fleet,
              mc_job_seconds / single_job_seconds,
              0.04 * opt.delta_cost_fleet);
}

TEST(Pipeline, PlannerChoiceIsConsistentWithMc) {
  const auto trace = traces::make_trace_by_name("2008-02");
  const auto m = model::DiscretizedLatencyModel::from_trace(trace, 1.0);
  const core::StrategyPlanner planner(m);
  core::PlannerOptions options;
  options.objective = core::PlannerOptions::Objective::kMinLatency;
  options.max_parallel_jobs = 5.0;
  options.max_b = 5;
  const auto rec = planner.recommend(options);
  ASSERT_EQ(rec.choice.kind, core::StrategyKind::kMultipleSubmission);
  mc::McOptions mo;
  mo.replications = 150000;
  const auto mc =
      mc::simulate_multiple(m, rec.choice.b, rec.choice.t_inf, mo);
  EXPECT_NEAR(mc.mean_latency, rec.choice.expectation,
              0.02 * rec.choice.expectation);
}

TEST(Pipeline, DesProbesFeedTheModelingChain) {
  // Measure the simulated grid with probes, fit the empirical model, find
  // the optimal single-resubmission timeout, then run a strategy client
  // with that timeout on a fresh copy of the same grid and compare.
  sim::GridConfig config = sim::GridConfig::egee_like();
  config.elements.resize(6);  // trim for speed
  config.background.arrival_rate = 0.12;

  sim::GridSimulation measured(config);
  measured.warm_up(20000.0);
  sim::ProbeCampaignConfig pc;
  pc.n_probes = 500;
  pc.concurrent = 10;
  sim::ProbeClient probe(measured, pc, "des-campaign");
  probe.start();
  measured.simulator().run_until(measured.simulator().now() + 8e6);
  ASSERT_TRUE(probe.done());

  const auto m =
      model::DiscretizedLatencyModel::from_trace(probe.trace(), 2.0);
  const core::SingleResubmission single(m);
  const auto opt = single.optimize();
  ASSERT_TRUE(std::isfinite(opt.metrics.expectation));

  // Execute the tuned strategy on an identically-seeded grid.
  sim::GridSimulation fresh(config);
  fresh.warm_up(20000.0);
  sim::StrategySpec spec;
  spec.kind = core::StrategyKind::kSingleResubmission;
  spec.t_inf = opt.t_inf;
  sim::StrategyClient client(fresh, spec, 150);
  client.start();
  fresh.simulator().run_until(fresh.simulator().now() + 3e7);
  ASSERT_TRUE(client.done());

  // The model was estimated from probes on the *same* infrastructure, so
  // the measured mean should be in the predicted ballpark (the strategy
  // client adds its own load, so allow a generous band).
  EXPECT_GT(client.mean_latency(), 0.3 * opt.metrics.expectation);
  EXPECT_LT(client.mean_latency(), 3.0 * opt.metrics.expectation);
}

TEST(Pipeline, TraceCsvRoundTripPreservesModelDecisions) {
  const auto trace = traces::make_trace_by_name("2007-51");
  const std::string path = ::testing::TempDir() + "/pipeline_trace.csv";
  traces::write_csv_file(path, trace);
  const auto restored = traces::read_csv_file(path);
  const auto m1 = model::DiscretizedLatencyModel::from_trace(trace, 1.0);
  const auto m2 = model::DiscretizedLatencyModel::from_trace(restored, 1.0);
  const core::SingleResubmission s1(m1), s2(m2);
  EXPECT_DOUBLE_EQ(s1.optimize().t_inf, s2.optimize().t_inf);
}

}  // namespace
}  // namespace gridsub
