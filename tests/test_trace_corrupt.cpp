// Malformed-input wall for the traces readers: every corruption class in
// tests/corrupt_traces/ — garbled fields, mid-record EOF, garbage
// suffixes, missing headers, unknown enum labels — must surface as a
// typed TraceFormatError naming the offending line, never as a silently
// shortened or subtly wrong workload. Oversized lines (the no-newline
// multi-GB "line" case) are generated in memory rather than committed.

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "traces/csv_util.hpp"
#include "traces/swf.hpp"
#include "traces/trace_error.hpp"
#include "traces/trace_io.hpp"
#include "traces/workload.hpp"

namespace gridsub::traces {
namespace {

std::string fixture(const std::string& name) {
  return std::string(GRIDSUB_CORRUPT_DIR) + "/" + name;
}

/// EXPECT_THROW plus a message check: errors must name where to look.
template <typename Fn>
void expect_format_error(Fn&& fn, const std::string& expected_fragment) {
  try {
    fn();
    FAIL() << "expected TraceFormatError (" << expected_fragment << ")";
  } catch (const TraceFormatError& e) {
    EXPECT_NE(std::string(e.what()).find(expected_fragment),
              std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(TraceCorrupt, GarbledSwfFieldIsATypedErrorWithALineNumber) {
  expect_format_error([] { (void)read_swf_file(fixture("garbled.swf")); },
                      "non-numeric field on line 4");
}

TEST(TraceCorrupt, MidRecordSwfEofIsATypedError) {
  expect_format_error([] { (void)read_swf_file(fixture("truncated.swf")); },
                      "truncated line 3");
}

TEST(TraceCorrupt, WorkloadGarbageSuffixIsRejectedNotTruncated) {
  // std::stod would have parsed "12.5abc" as 12.5 — plausible, wrong.
  expect_format_error(
      [] { (void)read_workload_csv_file(fixture("garbage_suffix.csv")); },
      "unparseable line 4");
}

TEST(TraceCorrupt, WorkloadMidRecordEofIsATypedError) {
  expect_format_error(
      [] { (void)read_workload_csv_file(fixture("midrecord.csv")); },
      "malformed line 4");
}

TEST(TraceCorrupt, WorkloadMissingHeaderIsATypedError) {
  expect_format_error(
      [] { (void)read_workload_csv_file(fixture("missing_header.csv")); },
      "missing header");
}

TEST(TraceCorrupt, UnknownProbeStatusIsATypedError) {
  expect_format_error(
      [] { (void)read_csv_file(fixture("bad_status.trace.csv")); },
      "unknown status 'comppleted'");
}

TEST(TraceCorrupt, BadTimeoutMetadataIsATypedError) {
  std::istringstream is(
      "# timeout=soon\n"
      "submit_time,latency,status\n"
      "0.5,120,completed\n");
  expect_format_error([&] { (void)read_csv(is); }, "bad timeout");
}

TEST(TraceCorrupt, OversizedLinesAreRefusedByEveryReader) {
  // A "line" past the cap means a corrupt or hostile file (e.g. gigabytes
  // with no newline); readers must refuse instead of buffering it.
  const std::string huge(detail::kMaxLineBytes + 1, 'x');

  std::istringstream swf("1 0.0 10 3600\n" + huge + "\n");
  expect_format_error([&] { (void)read_swf(swf, "oversized"); },
                      "oversized line 2");

  std::istringstream workload("arrival_time,runtime,user,group\n" + huge +
                              "\n");
  expect_format_error([&] { (void)read_workload_csv(workload); },
                      "oversized line 2");

  std::istringstream trace("submit_time,latency,status\n" + huge + "\n");
  expect_format_error([&] { (void)read_csv(trace); }, "oversized line 2");
}

TEST(TraceCorrupt, TraceFormatErrorIsCatchableAsRuntimeError) {
  // Pre-existing catch (std::runtime_error) sites keep working: the
  // typed error refines, not breaks, the old contract.
  bool caught = false;
  try {
    (void)read_workload_csv_file(fixture("midrecord.csv"));
  } catch (const std::runtime_error&) {
    caught = true;
  }
  EXPECT_TRUE(caught);
}

TEST(TraceCorrupt, CleanPrefixesOfCorruptFilesAreNotSilentlyReturned) {
  // The corrupt fixtures all carry one valid row before the corruption;
  // a reader returning that prefix instead of throwing would look green
  // while dropping data. The throws above prove none does. This test
  // pins the complement: fully valid input still parses.
  std::istringstream ok(
      "# name=clean\n"
      "arrival_time,runtime,user,group\n"
      "0.5,600,3,1\n"
      "300.5,60,4,1\r\n");  // CRLF stays tolerated
  const Workload w = read_workload_csv(ok);
  EXPECT_EQ(w.size(), 2u);
  EXPECT_EQ(w.name(), "clean");

  std::istringstream swf(
      "; comment\n"
      "1 0.0 10 3600 8 -1 -1 8 7200 -1 1 5 2 -1 -1 -1 -1 -1\n");
  const Workload jobs = read_swf(swf, "clean");
  EXPECT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs.jobs()[0].user, 5);
  EXPECT_EQ(jobs.jobs()[0].group, 2);
}

}  // namespace
}  // namespace gridsub::traces
