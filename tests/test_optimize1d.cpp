#include "numerics/optimize1d.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gridsub::numerics {
namespace {

TEST(GoldenSection, FindsQuadraticMinimum) {
  const auto f = [](double x) { return (x - 3.0) * (x - 3.0) + 1.0; };
  const auto res = golden_section(f, 0.0, 10.0, 1e-8);
  EXPECT_NEAR(res.x, 3.0, 1e-6);
  EXPECT_NEAR(res.value, 1.0, 1e-10);
}

TEST(GoldenSection, HandlesBoundaryMinimum) {
  const auto f = [](double x) { return x; };
  const auto res = golden_section(f, 2.0, 5.0, 1e-8);
  EXPECT_NEAR(res.x, 2.0, 1e-5);
}

TEST(BrentMinimize, FindsSmoothMinimumFast) {
  const auto f = [](double x) { return std::cos(x); };  // min at pi
  const auto res = brent_minimize(f, 2.0, 4.0, 1e-10);
  EXPECT_NEAR(res.x, M_PI, 1e-6);
  // Brent should use far fewer evaluations than golden section.
  const auto golden = golden_section(f, 2.0, 4.0, 1e-10);
  EXPECT_LT(res.evaluations, golden.evaluations);
}

TEST(BrentMinimize, QuarticWithFlatBottom) {
  const auto f = [](double x) { return std::pow(x - 1.5, 4.0); };
  const auto res = brent_minimize(f, -10.0, 10.0, 1e-10);
  EXPECT_NEAR(res.x, 1.5, 1e-2);  // quartic flatness limits x accuracy
  EXPECT_NEAR(res.value, 0.0, 1e-9);
}

TEST(ScanThenRefine, EscapesLocalMinima) {
  // Two wells: local at x=-1 (depth 1), global at x=2 (depth 2). A pure
  // descent from the wrong bracket would find the local one.
  const auto f = [](double x) {
    return -1.0 / (1.0 + (x + 1.0) * (x + 1.0)) -
           2.0 / (1.0 + 4.0 * (x - 2.0) * (x - 2.0));
  };
  const auto res = scan_then_refine(f, -6.0, 6.0, 256, 1e-8);
  EXPECT_NEAR(res.x, 2.0, 0.05);
}

TEST(ScanThenRefine, WorksOnPiecewiseConstantPlateaus) {
  const auto f = [](double x) { return std::floor(std::abs(x - 4.0)); };
  const auto res = scan_then_refine(f, 0.0, 10.0, 128, 1e-6);
  EXPECT_NEAR(res.value, 0.0, 1e-12);
  EXPECT_NEAR(res.x, 4.0, 1.0);
}

TEST(Optimize1D, RejectsInvertedBounds) {
  const auto f = [](double x) { return x * x; };
  EXPECT_THROW(golden_section(f, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(brent_minimize(f, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(scan_then_refine(f, 1.0, 0.0), std::invalid_argument);
}

class KnownMinimaSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(KnownMinimaSweep, ShiftedParabolas) {
  const auto [center, scale] = GetParam();
  const auto f = [center, scale](double x) {
    return scale * (x - center) * (x - center);
  };
  const auto res = scan_then_refine(f, center - 50.0, center + 75.0, 64,
                                    1e-9);
  EXPECT_NEAR(res.x, center, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KnownMinimaSweep,
    ::testing::Combine(::testing::Values(-20.0, 0.0, 3.7, 150.0),
                       ::testing::Values(0.01, 1.0, 250.0)));

}  // namespace
}  // namespace gridsub::numerics
