// Online estimation (§7.2): sliding-window refits, drift detection, and
// transfer quality against the oracle tuned on the full week.

#include "online/online_planner.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "stats/fit.hpp"
#include "traces/datasets.hpp"

namespace gridsub::online {
namespace {

/// Feeds a full synthetic week into a planner, in trace order.
void feed_trace(OnlinePlanner& planner, const traces::Trace& trace) {
  for (const auto& r : trace.records()) {
    if (r.status == traces::ProbeStatus::kCompleted) {
      planner.observe_completed(r.latency);
    } else {
      planner.observe_outlier();
    }
  }
}

TEST(OnlinePlanner, NotReadyBeforeMinObservations) {
  OnlinePlannerConfig config;
  config.min_observations = 50;
  OnlinePlanner planner(config);
  for (int i = 0; i < 49; ++i) planner.observe_completed(400.0 + i);
  EXPECT_FALSE(planner.ready());
  EXPECT_THROW((void)planner.current(), std::logic_error);
  EXPECT_THROW((void)planner.model(), std::logic_error);
  planner.observe_completed(300.0);
  EXPECT_TRUE(planner.ready());
}

TEST(OnlinePlanner, RefitsAtTheConfiguredInterval) {
  OnlinePlannerConfig config;
  config.min_observations = 50;
  config.refit_interval = 25;
  OnlinePlanner planner(config);
  const auto trace = traces::make_trace_by_name("2007-51");
  feed_trace(planner, trace);
  ASSERT_TRUE(planner.ready());
  // 808 observations: first fit at 50, then every 25.
  EXPECT_GE(planner.refits(), (trace.size() - 50) / 25);
}

TEST(OnlinePlanner, WindowIsBounded) {
  OnlinePlannerConfig config;
  config.window = 100;
  config.min_observations = 10;
  OnlinePlanner planner(config);
  for (int i = 0; i < 500; ++i) planner.observe_completed(100.0 + i % 50);
  EXPECT_EQ(planner.window_size(), 100u);
}

TEST(OnlinePlanner, OutlierRatioTracksTheWindow) {
  OnlinePlannerConfig config;
  config.window = 100;
  config.min_observations = 10;
  OnlinePlanner planner(config);
  for (int i = 0; i < 90; ++i) planner.observe_completed(400.0);
  for (int i = 0; i < 10; ++i) planner.observe_outlier();
  EXPECT_NEAR(planner.window_outlier_ratio(), 0.1, 1e-12);
}

TEST(OnlinePlanner, ModelReflectsRecentObservations) {
  OnlinePlannerConfig config;
  config.window = 200;
  config.min_observations = 100;
  config.refit_interval = 10;
  OnlinePlanner planner(config);
  // Stationary 400 s latencies: the fitted F~ must place its mass there.
  for (int i = 0; i < 200; ++i) {
    planner.observe_completed(380.0 + (i % 41));
  }
  ASSERT_TRUE(planner.ready());
  EXPECT_NEAR(planner.model().ftilde(500.0), 1.0, 1e-9);
  EXPECT_NEAR(planner.model().ftilde(300.0), 0.0, 1e-9);
}

TEST(OnlinePlanner, StationaryWeekShowsNoDrift) {
  OnlinePlannerConfig config;
  config.window = 400;
  OnlinePlanner planner(config);
  feed_trace(planner, traces::make_trace_by_name("2007-52"));
  // Stay under the two-sample KS noise ceiling for half-windows of ~200
  // (1.36 * sqrt(2/200) = 0.136) — i.e. indistinguishable from iid.
  EXPECT_LT(planner.drift_statistic(), 0.14);
  EXPECT_FALSE(planner.drifted());
}

TEST(OnlinePlanner, RegimeChangeTripsTheDriftDetector) {
  OnlinePlannerConfig config;
  config.window = 400;
  config.min_observations = 100;
  OnlinePlanner planner(config);
  // Old regime ~ 300 s, new regime ~ 1500 s: halves must separate.
  for (int i = 0; i < 200; ++i) planner.observe_completed(280.0 + i % 40);
  for (int i = 0; i < 200; ++i) planner.observe_completed(1480.0 + i % 40);
  EXPECT_GT(planner.drift_statistic(), 0.9);
  EXPECT_TRUE(planner.drifted());
}

TEST(OnlinePlanner, TransferPenaltyIsSmallOnNeighbouringWeeks) {
  // The paper's Table 6 headline: parameters estimated on week w-1 cost at
  // most a few percent on week w. Replay week 51 into the planner, then
  // score its delayed recommendation against week 52's oracle.
  OnlinePlannerConfig config;
  config.window = 810;
  config.planner.objective = core::PlannerOptions::Objective::kMinCost;
  OnlinePlanner planner(config);
  feed_trace(planner, traces::make_trace_by_name("2007-51"));
  ASSERT_TRUE(planner.ready());
  const auto& rec = planner.current();

  const auto next_week = traces::make_trace_by_name("2007-52");
  const auto next_model =
      model::DiscretizedLatencyModel::from_trace(next_week, 2.0);
  const core::StrategyPlanner oracle(next_model);
  const auto oracle_rec = oracle.recommend(config.planner);

  // Evaluate the transferred parameters on next week's model.
  double transferred_cost = rec.choice.delta_cost;
  if (rec.choice.kind == core::StrategyKind::kDelayedResubmission) {
    transferred_cost =
        oracle.evaluate_delayed_params(rec.choice.t0, rec.choice.t_inf)
            .delta_cost;
  }
  EXPECT_LT(transferred_cost, oracle_rec.choice.delta_cost * 1.10)
      << "week-ahead parameters must be within 10% of the oracle";
}

TEST(OnlinePlanner, ValidatesConfigAndInputs) {
  OnlinePlannerConfig bad;
  bad.window = 1;
  EXPECT_THROW(OnlinePlanner{bad}, std::invalid_argument);
  OnlinePlannerConfig bad2;
  bad2.min_observations = 1;
  EXPECT_THROW(OnlinePlanner{bad2}, std::invalid_argument);
  OnlinePlannerConfig bad3;
  bad3.refit_interval = 0;
  EXPECT_THROW(OnlinePlanner{bad3}, std::invalid_argument);

  OnlinePlanner planner{OnlinePlannerConfig{}};
  EXPECT_THROW(planner.observe_completed(-1.0), std::invalid_argument);
  EXPECT_THROW(planner.observe_completed(20000.0), std::invalid_argument);
}

TEST(OnlinePlanner, MoveKeepsFitStateThroughContainerRehash) {
  // Keyed registries (serve::AdvisorService) hold planners by value, so a
  // container move/rehash must not reset fit state or dangle the internal
  // model reference. Regression for the planner being copy-deleted *and*
  // move-less, which forced registries onto unique_ptr indirection.
  OnlinePlannerConfig config;
  config.window = 100;
  config.min_observations = 30;
  config.refit_interval = 25;
  config.model_step = 50.0;
  config.timeout = 4000.0;

  std::vector<OnlinePlanner> planners;
  planners.reserve(1);  // force reallocation on the second emplace
  planners.emplace_back(config);
  for (int i = 0; i < 60; ++i) {
    planners[0].observe_completed(300.0 + i % 30);
  }
  ASSERT_TRUE(planners[0].ready());
  const std::size_t refits = planners[0].refits();
  const std::size_t window = planners[0].window_size();
  const core::Recommendation before = planners[0].current();

  planners.emplace_back(config);  // reallocates: moves planners[0]
  OnlinePlanner moved = std::move(planners[0]);

  EXPECT_TRUE(moved.ready());
  EXPECT_EQ(moved.refits(), refits);
  EXPECT_EQ(moved.window_size(), window);
  EXPECT_EQ(moved.current().choice.t_inf, before.choice.t_inf);
  EXPECT_EQ(moved.current().choice.t0, before.choice.t0);

  // The moved-to planner keeps working: its planner_ must still see the
  // model it owns, so further observations and refits stay coherent.
  for (int i = 0; i < 50; ++i) {
    moved.observe_completed(300.0 + i % 30);
  }
  EXPECT_GT(moved.refits(), refits);
  EXPECT_TRUE(moved.ready());
  EXPECT_GT(moved.model().horizon(), 0.0);
}

TEST(KsTwoSample, BasicProperties) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> b{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_NEAR(stats::ks_two_sample(a, b), 0.0, 1e-12);
  const std::vector<double> c{11.0, 12.0, 13.0};
  EXPECT_NEAR(stats::ks_two_sample(a, c), 1.0, 1e-12);
  const std::vector<double> half{3.5, 11.0};
  // F_a jumps to 0.6 by 3.5; F_half is 0.5 there: D >= 0.5 region checks.
  EXPECT_GT(stats::ks_two_sample(a, half), 0.4);
  EXPECT_THROW((void)stats::ks_two_sample({}, a), std::invalid_argument);
}

}  // namespace
}  // namespace gridsub::online
