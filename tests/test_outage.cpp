// Site-outage injection: availability semantics and the effect on probe
// campaigns.

#include "sim/outage_injector.hpp"

#include <gtest/gtest.h>

#include "sim/grid.hpp"
#include "sim/probe_client.hpp"

namespace gridsub::sim {
namespace {

TEST(ComputingElementAvailability, DownSiteSwallowsSubmissions) {
  Simulator sim;
  GridMetrics metrics;
  ComputingElement ce(sim, "ce", 4, 0.0, stats::Rng(1), &metrics);
  ce.set_available(false);
  int started = 0;
  const auto h = ce.submit(10.0, [&] { ++started; });
  sim.run();
  EXPECT_EQ(started, 0);
  EXPECT_EQ(metrics.jobs_faulted, 1u);
  EXPECT_FALSE(ce.cancel(h));  // the job never existed site-side
}

TEST(ComputingElementAvailability, RunningJobsSurviveAnOutage) {
  Simulator sim;
  ComputingElement ce(sim, "ce", 1, 0.0, stats::Rng(1));
  int completed = 0;
  ce.submit(50.0, nullptr, [&] { ++completed; });
  sim.schedule_at(10.0, [&] { ce.set_available(false); });
  sim.schedule_at(20.0, [&] { ce.set_available(true); });
  sim.run();
  EXPECT_EQ(completed, 1);
}

TEST(OutageInjector, TogglesSitesOverTime) {
  Simulator sim;
  std::vector<std::unique_ptr<ComputingElement>> owned;
  std::vector<ComputingElement*> ces;
  for (int i = 0; i < 6; ++i) {
    owned.push_back(std::make_unique<ComputingElement>(
        sim, "ce" + std::to_string(i), 4, 0.0, stats::Rng(10 + i)));
    ces.push_back(owned.back().get());
  }
  OutageConfig oc;
  oc.mean_time_to_failure = 5000.0;
  oc.mean_outage_duration = 1000.0;
  OutageInjector injector(sim, ces, oc, stats::Rng(99));
  sim.run_until(200000.0);
  // Expected ~ 6 * 200000/6000 = 200 outages; verify the process ran.
  EXPECT_GT(injector.outages(), 50u);
  EXPECT_LE(injector.down_count(), 6u);
}

TEST(OutageInjector, DaemonEventsDoNotKeepTheSimulationAlive) {
  Simulator sim;
  auto ce = std::make_unique<ComputingElement>(sim, "ce", 2, 0.0,
                                               stats::Rng(1));
  OutageInjector injector(sim, {ce.get()}, {}, stats::Rng(2));
  int fired = 0;
  sim.schedule_at(100.0, [&] { ++fired; });
  sim.run();  // must terminate despite the injector's self-renewal
  EXPECT_EQ(fired, 1);
}

TEST(OutageInjector, RaisesTheObservedFaultRatio) {
  const auto run = [](bool with_outages) {
    GridConfig config = GridConfig::egee_like();
    config.elements.resize(4);
    config.background.arrival_rate = 0.05;
    GridSimulation grid(config);
    std::vector<ComputingElement*> ces;
    for (const auto& ce : grid.elements()) ces.push_back(ce.get());
    std::unique_ptr<OutageInjector> injector;
    if (with_outages) {
      OutageConfig oc;
      oc.mean_time_to_failure = 30000.0;  // frequent
      oc.mean_outage_duration = 15000.0;  // long
      injector = std::make_unique<OutageInjector>(grid.simulator(), ces, oc,
                                                  grid.make_rng());
    }
    grid.warm_up(10000.0);
    ProbeCampaignConfig pc;
    pc.n_probes = 250;
    pc.concurrent = 10;
    pc.timeout = 4000.0;
    ProbeClient probe(grid, pc);
    probe.start();
    grid.simulator().run_until(grid.simulator().now() + 5e6);
    EXPECT_TRUE(probe.done());
    return probe.trace().stats().outlier_ratio;
  };
  const double baseline = run(false);
  const double with_outages = run(true);
  EXPECT_GT(with_outages, baseline);
}

TEST(OutageInjector, ValidatesArguments) {
  Simulator sim;
  EXPECT_THROW(OutageInjector(sim, {}, {}, stats::Rng(1)),
               std::invalid_argument);
  auto ce =
      std::make_unique<ComputingElement>(sim, "ce", 1, 0.0, stats::Rng(1));
  OutageConfig bad;
  bad.mean_time_to_failure = 0.0;
  EXPECT_THROW(OutageInjector(sim, {ce.get()}, bad, stats::Rng(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace gridsub::sim
