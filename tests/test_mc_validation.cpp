// Monte Carlo cross-validation of every analytic formula in core/:
// the MC engine executes the client protocol directly; analytic and
// simulated E_J / sigma_J / N∥ / submission counts must agree within MC
// error. This is the repository's ground-truth test.

#include <gtest/gtest.h>

#include <cmath>

#include "core/delayed_resubmission.hpp"
#include "core/multiple_submission.hpp"
#include "core/single_resubmission.hpp"
#include "mc/mc_engine.hpp"
#include "test_util.hpp"

namespace gridsub::mc {
namespace {

const model::DiscretizedLatencyModel& shared_model() {
  static const auto m =
      testutil::discretize(testutil::make_heavy_model(0.05, 4000.0), 1.0);
  return m;
}

McOptions fast_options() {
  McOptions o;
  o.replications = 150000;
  o.seed = 2009;
  return o;
}

TEST(McEngine, DeterministicAcrossRuns) {
  const auto& m = shared_model();
  const auto a = simulate_single(m, 700.0, fast_options());
  const auto b = simulate_single(m, 700.0, fast_options());
  EXPECT_DOUBLE_EQ(a.mean_latency, b.mean_latency);
  EXPECT_DOUBLE_EQ(a.std_latency, b.std_latency);
}

TEST(McEngine, DeterministicAcrossThreadCounts) {
  const auto& m = shared_model();
  par::ThreadPool pool1(1);
  par::ThreadPool pool8(8);
  auto o1 = fast_options();
  o1.pool = &pool1;
  auto o8 = fast_options();
  o8.pool = &pool8;
  const auto a = simulate_single(m, 700.0, o1);
  const auto b = simulate_single(m, 700.0, o8);
  EXPECT_DOUBLE_EQ(a.mean_latency, b.mean_latency);
}

TEST(McEngine, RejectsBadArguments) {
  const auto& m = shared_model();
  EXPECT_THROW(simulate_single(m, 0.0), std::invalid_argument);
  EXPECT_THROW(simulate_multiple(m, 0, 100.0), std::invalid_argument);
  EXPECT_THROW(simulate_delayed(m, 100.0, 50.0), std::invalid_argument);
  EXPECT_THROW(simulate_delayed(m, 100.0, 250.0), std::invalid_argument);
  McOptions o;
  o.replications = 0;
  EXPECT_THROW(simulate_single(m, 100.0, o), std::invalid_argument);
}

class SingleAgreement : public ::testing::TestWithParam<double> {};

TEST_P(SingleAgreement, ExpectationSigmaAndSubmissions) {
  const double t_inf = GetParam();
  const auto& m = shared_model();
  const core::SingleResubmission s(m);
  const auto mc = simulate_single(m, t_inf, fast_options());
  const double ej = s.expectation(t_inf);
  const double se = mc.std_latency / std::sqrt(mc.replications);
  EXPECT_NEAR(mc.mean_latency, ej, 6.0 * se + 0.01 * ej);
  EXPECT_NEAR(mc.std_latency, s.std_deviation(t_inf),
              0.03 * s.std_deviation(t_inf));
  EXPECT_NEAR(mc.mean_submissions, s.expected_submissions(t_inf),
              0.02 * s.expected_submissions(t_inf));
  // Single resubmission keeps exactly one copy in flight.
  EXPECT_NEAR(mc.aggregate_parallel, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Timeouts, SingleAgreement,
                         ::testing::Values(250.0, 500.0, 900.0, 2000.0));

class MultiAgreement
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(MultiAgreement, ExpectationSigmaAndLoad) {
  const auto [b, t_inf] = GetParam();
  const auto& m = shared_model();
  const core::MultipleSubmission multi(m, b);
  const auto mc = simulate_multiple(m, b, t_inf, fast_options());
  const double ej = multi.expectation(t_inf);
  const double se = mc.std_latency / std::sqrt(mc.replications);
  EXPECT_NEAR(mc.mean_latency, ej, 6.0 * se + 0.01 * ej);
  EXPECT_NEAR(mc.std_latency, multi.std_deviation(t_inf),
              0.04 * multi.std_deviation(t_inf));
  EXPECT_NEAR(mc.mean_submissions, multi.expected_submissions(t_inf),
              0.02 * multi.expected_submissions(t_inf));
  // All b copies stay in flight until the first start: N∥ == b exactly.
  EXPECT_NEAR(mc.aggregate_parallel, static_cast<double>(b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MultiAgreement,
    ::testing::Combine(::testing::Values(2, 3, 5, 10),
                       ::testing::Values(400.0, 800.0, 1600.0)));

struct DelayedCase {
  double t0, t_inf;
};

class DelayedAgreement : public ::testing::TestWithParam<DelayedCase> {};

TEST_P(DelayedAgreement, ExpectationSigmaSubmissionsAndParallelism) {
  const auto [t0, t_inf] = GetParam();
  const auto& m = shared_model();
  const core::DelayedResubmission d(m);
  const auto mc = simulate_delayed(m, t0, t_inf, fast_options());
  const double ej = d.expectation(t0, t_inf);
  const double se = mc.std_latency / std::sqrt(mc.replications);
  EXPECT_NEAR(mc.mean_latency, ej, 6.0 * se + 0.01 * ej);
  EXPECT_NEAR(mc.std_latency, d.std_deviation(t0, t_inf),
              0.04 * d.std_deviation(t0, t_inf));
  EXPECT_NEAR(mc.mean_submissions, d.expected_submissions(t0, t_inf),
              0.02 * d.expected_submissions(t0, t_inf));
  // E[N∥(J)] (expectation of the per-run ratio).
  EXPECT_NEAR(mc.mean_parallel_ratio, d.expected_parallel_jobs(t0, t_inf),
              0.03 * d.expected_parallel_jobs(t0, t_inf));
}

TEST_P(DelayedAgreement, PaperEq5SidesWithSurvivalFormOnlyWhenExact) {
  // Monte Carlo arbitration of the eq. 5 discrepancy (DESIGN.md §5).
  const auto [t0, t_inf] = GetParam();
  const auto& m = shared_model();
  const core::DelayedResubmission d(m);
  const auto mc = simulate_delayed(m, t0, t_inf, fast_options());
  const double survival_form = d.expectation(t0, t_inf);
  EXPECT_NEAR(mc.mean_latency, survival_form, 0.02 * survival_form);
  const double eq5 = d.expectation_paper_eq5(t0, t_inf);
  if (m.ftilde(t_inf - t0) == 0.0) {
    EXPECT_NEAR(eq5, mc.mean_latency, 0.02 * mc.mean_latency);
  } else {
    // eq5-as-printed over-estimates; it must NOT be closer to MC than the
    // survival form is.
    EXPECT_GE(std::abs(eq5 - mc.mean_latency),
              std::abs(survival_form - mc.mean_latency));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DelayedAgreement,
    ::testing::Values(DelayedCase{200.0, 360.0}, DelayedCase{300.0, 580.0},
                      DelayedCase{400.0, 640.0}, DelayedCase{500.0, 700.0},
                      DelayedCase{700.0, 1100.0}));

TEST(McEngine, ExponentialBaselineHasKnownMean) {
  // Closed-form anchor: exponential latency, no faults -> E_J == mean
  // regardless of timeout.
  const auto src = testutil::make_exponential_model(300.0, 0.0, 20000.0);
  const auto m = testutil::discretize(src, 2.0);
  const auto mc = simulate_single(m, 450.0, fast_options());
  EXPECT_NEAR(mc.mean_latency, 300.0, 3.0);
}

}  // namespace
}  // namespace gridsub::mc
