// Family-wide property tests over every parametric distribution, plus
// family-specific closed-form checks.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <string>

#include "numerics/integration.hpp"
#include "stats/distribution.hpp"
#include "stats/exponential.hpp"
#include "stats/gamma.hpp"
#include "stats/lognormal.hpp"
#include "stats/pareto.hpp"
#include "stats/uniform.hpp"
#include "stats/weibull.hpp"

namespace gridsub::stats {
namespace {

struct Case {
  std::string label;
  std::function<DistributionPtr()> make;
};

class DistributionProperties : public ::testing::TestWithParam<Case> {};

TEST_P(DistributionProperties, CdfIsMonotoneFromZeroToOne) {
  const auto d = GetParam().make();
  double prev = -1.0;
  for (double x = 0.0; x <= 5000.0; x += 25.0) {
    const double c = d->cdf(x);
    EXPECT_GE(c, prev - 1e-15);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_NEAR(d->cdf(1e12), 1.0, 1e-6);
}

TEST_P(DistributionProperties, QuantileInvertsCdf) {
  const auto d = GetParam().make();
  for (double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double x = d->quantile(p);
    EXPECT_NEAR(d->cdf(x), p, 1e-6) << "p=" << p;
  }
}

TEST_P(DistributionProperties, PdfIntegratesToCdfDifference) {
  const auto d = GetParam().make();
  const double lo = d->quantile(0.1);
  const double hi = d->quantile(0.9);
  const double integral = numerics::adaptive_simpson(
      [&](double x) { return d->pdf(x); }, lo, hi, 1e-10);
  EXPECT_NEAR(integral, 0.8, 1e-5);
}

TEST_P(DistributionProperties, SampleMomentsMatchTheory) {
  const auto d = GetParam().make();
  Rng rng(314159);
  const int n = 400000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = d->sample(rng);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  const double sd = d->stddev();
  EXPECT_NEAR(mean, d->mean(), 6.0 * sd / std::sqrt(n) + 1e-9)
      << d->name();
  // Variance estimate needs a looser band (4th-moment dependent).
  EXPECT_NEAR(var, d->variance(), 0.12 * d->variance() + 1e-9) << d->name();
}

TEST_P(DistributionProperties, CloneIsIndependentAndEquivalent) {
  const auto d = GetParam().make();
  const auto c = d->clone();
  for (double x : {0.5, 10.0, 333.0}) {
    EXPECT_DOUBLE_EQ(d->pdf(x), c->pdf(x));
    EXPECT_DOUBLE_EQ(d->cdf(x), c->cdf(x));
  }
  EXPECT_EQ(d->name(), c->name());
}

INSTANTIATE_TEST_SUITE_P(
    Families, DistributionProperties,
    ::testing::Values(
        Case{"lognormal",
             [] { return DistributionPtr(new LogNormal(5.5, 0.8)); }},
        Case{"lognormal_heavy",
             [] { return DistributionPtr(new LogNormal(5.0, 1.6)); }},
        Case{"weibull_light",
             [] { return DistributionPtr(new Weibull(1.8, 400.0)); }},
        Case{"weibull_heavy",
             [] { return DistributionPtr(new Weibull(0.7, 300.0)); }},
        Case{"pareto",
             [] { return DistributionPtr(new ParetoLomax(3.5, 500.0)); }},
        Case{"exponential",
             [] { return DistributionPtr(new Exponential(1.0 / 350.0)); }},
        Case{"gamma_small_shape",
             [] { return DistributionPtr(new GammaDist(0.6, 200.0)); }},
        Case{"gamma_large_shape",
             [] { return DistributionPtr(new GammaDist(6.0, 80.0)); }},
        Case{"uniform",
             [] { return DistributionPtr(new UniformDist(10.0, 900.0)); }}),
    [](const ::testing::TestParamInfo<Case>& param_info) {
      return param_info.param.label;
    });

// ---- family-specific checks -------------------------------------------

TEST(LogNormalDist, FromMomentsRoundTrips) {
  const auto d = LogNormal::from_moments(570.0, 886.0);
  EXPECT_NEAR(d.mean(), 570.0, 1e-9);
  EXPECT_NEAR(d.stddev(), 886.0, 1e-9);
}

TEST(LogNormalDist, TruncatedMomentConvergesToFullMoment) {
  const LogNormal d(6.0, 1.0);
  EXPECT_NEAR(d.truncated_raw_moment(1, 1e9), d.mean(), 1e-6);
  const double m2 = d.variance() + d.mean() * d.mean();
  EXPECT_NEAR(d.truncated_raw_moment(2, 1e12), m2, 1e-3);
}

TEST(LogNormalDist, TruncatedMomentIsBelowFullMoment) {
  const LogNormal d(6.0, 1.2);
  EXPECT_LT(d.truncated_raw_moment(1, d.mean()), d.mean());
}

TEST(LogNormalDist, RejectsBadSigma) {
  EXPECT_THROW(LogNormal(0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(LogNormal(0.0, -1.0), std::invalid_argument);
}

TEST(WeibullDist, ShapeOneIsExponential) {
  const Weibull w(1.0, 250.0);
  const Exponential e(1.0 / 250.0);
  for (double x : {10.0, 100.0, 500.0, 2000.0}) {
    EXPECT_NEAR(w.cdf(x), e.cdf(x), 1e-12);
  }
}

TEST(ParetoDist, InfiniteMomentsThrow) {
  EXPECT_THROW(static_cast<void>(ParetoLomax(0.9, 100.0).mean()),
               std::domain_error);
  EXPECT_THROW(static_cast<void>(ParetoLomax(1.5, 100.0).variance()),
               std::domain_error);
  EXPECT_NO_THROW(static_cast<void>(ParetoLomax(2.5, 100.0).variance()));
}

TEST(ParetoDist, SurvivalIsPowerLaw) {
  const ParetoLomax p(2.0, 100.0);
  // S(x) = (1 + x/100)^-2: doubling (1+x/lambda) quarters the survival.
  const double s1 = 1.0 - p.cdf(100.0);   // (2)^-2
  const double s2 = 1.0 - p.cdf(300.0);   // (4)^-2
  EXPECT_NEAR(s1 / s2, 4.0, 1e-9);
}

TEST(ExponentialDist, Memorylessness) {
  const Exponential e(0.01);
  // P(X > s + t | X > s) == P(X > t).
  const double s = 50.0, t = 120.0;
  const double lhs = (1.0 - e.cdf(s + t)) / (1.0 - e.cdf(s));
  EXPECT_NEAR(lhs, 1.0 - e.cdf(t), 1e-12);
}

TEST(UniformDist, SupportBounds) {
  const UniformDist u(3.0, 9.0);
  EXPECT_DOUBLE_EQ(u.support_lower(), 3.0);
  EXPECT_DOUBLE_EQ(u.support_upper(), 9.0);
  EXPECT_DOUBLE_EQ(u.quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(u.quantile(1.0), 9.0);
}

TEST(GammaDistTest, MeanVarianceClosedForm) {
  const GammaDist g(3.0, 50.0);
  EXPECT_DOUBLE_EQ(g.mean(), 150.0);
  EXPECT_DOUBLE_EQ(g.variance(), 7500.0);
}

}  // namespace
}  // namespace gridsub::stats
