#include "exp/fold.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exp/campaign.hpp"
#include "parallel/thread_pool.hpp"

namespace gridsub::exp {
namespace {

CampaignAxes small_axes(std::size_t scenarios = 2, std::size_t strategies = 2,
                        std::size_t reps = 3) {
  CampaignAxes axes;
  axes.name = "fold_test";
  for (std::size_t i = 0; i < scenarios; ++i) {
    axes.scenario_labels.push_back("sc" + std::to_string(i));
  }
  for (std::size_t i = 0; i < strategies; ++i) {
    axes.strategy_labels.push_back("st" + std::to_string(i));
  }
  axes.replications = reps;
  axes.root_seed = 7;
  return axes;
}

CellResult make_cell(const CampaignAxes& axes, std::size_t flat,
                     CellMetrics metrics) {
  CellResult cell;
  cell.context = axes.cell(flat);
  cell.metrics = std::move(metrics);
  return cell;
}

TEST(MomentFold, MatchesNaiveOnTameData) {
  MomentFold fold;
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  double naive = 0.0;
  for (const double x : xs) {
    fold.add(x);
    naive += x;
  }
  EXPECT_EQ(fold.count(), xs.size());
  EXPECT_DOUBLE_EQ(fold.mean(), naive / 4.0);
  // Sample sem of {1,2,3,4}: sqrt(5/3)/2.
  EXPECT_NEAR(fold.sem(), std::sqrt(5.0 / 3.0) / 2.0, 1e-15);
  EXPECT_DOUBLE_EQ(fold.min(), 1.0);
  EXPECT_DOUBLE_EQ(fold.max(), 4.0);
}

TEST(MomentFold, CompensationSurvivesAdversarialMagnitudeSpread) {
  // Naive left-to-right summation annihilates the small term: 1e16 + 1
  // rounds back to 1e16, so (1e16 + 1) - 1e16 == 0 in double. The
  // compensated fold keeps the lost low-order bits.
  MomentFold fold;
  double naive = 0.0;
  for (const double x : {1e16, 1.0, -1e16}) {
    fold.add(x);
    naive += x;
  }
  EXPECT_DOUBLE_EQ(naive, 0.0);  // demonstrates the naive failure mode
  EXPECT_DOUBLE_EQ(fold.mean() * 3.0, 1.0);

  // A longer adversarial mix: many tiny terms under a huge alternating
  // carrier. The carrier cancels exactly; the tiny terms must survive.
  MomentFold fine;
  double expected = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double carrier = (i % 2 == 0) ? 1e15 : -1e15;
    fine.add(carrier);
    fine.add(1e-3);
    expected += 1e-3;
  }
  EXPECT_NEAR(fine.mean() * 2000.0, expected, 1e-9);
}

TEST(MomentFold, WelfordSemMatchesTwoPass) {
  // Spread values around a large offset: the textbook one-pass
  // sum-of-squares formula loses all significance here; Welford must not.
  std::vector<double> xs;
  const double offset = 1e9;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(offset + static_cast<double>(i % 7) - 3.0);
  }
  MomentFold fold;
  for (const double x : xs) fold.add(x);

  double mean = 0.0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double m2 = 0.0;
  for (const double x : xs) m2 += (x - mean) * (x - mean);
  const double n = static_cast<double>(xs.size());
  const double two_pass_sem = std::sqrt(m2 / (n - 1.0) / n);

  // Welford carries a few ULPs of the *offset* into M2 (deviations are
  // ~1e-9 of the values here), so match to 1e-7 relative — still eight
  // orders tighter than the textbook sum-of-squares, which loses every
  // significant digit at this offset:
  double sq = 0.0, lin = 0.0;
  for (const double x : xs) {
    sq += x * x;
    lin += x;
  }
  const double naive_var = (sq - lin * lin / n) / (n - 1.0);
  const double true_var = m2 / (n - 1.0);
  EXPECT_GT(std::abs(naive_var - true_var), 0.1 * true_var);

  EXPECT_NEAR(fold.sem(), two_pass_sem, two_pass_sem * 1e-7);
}

TEST(MomentFold, DegenerateCounts) {
  MomentFold fold;
  EXPECT_EQ(fold.count(), 0u);
  EXPECT_DOUBLE_EQ(fold.mean(), 0.0);
  EXPECT_DOUBLE_EQ(fold.sem(), 0.0);
  fold.add(7.5);
  EXPECT_DOUBLE_EQ(fold.mean(), 7.5);
  EXPECT_DOUBLE_EQ(fold.sem(), 0.0);  // n < 2: exactly zero, not NaN
  fold.reset();
  EXPECT_EQ(fold.count(), 0u);
  EXPECT_DOUBLE_EQ(fold.mean(), 0.0);
}

TEST(AggregateFold, EmitsOneRowPerGroupInOrder) {
  const CampaignAxes axes = small_axes(2, 2, 3);
  AggregateFold fold(axes);
  std::size_t rows_emitted = 0;
  for (std::size_t flat = 0; flat < axes.cell_count(); ++flat) {
    const AggregateRow* row = fold.add(make_cell(
        axes, flat, {{"x", static_cast<double>(flat)}}));
    if ((flat + 1) % axes.replications == 0) {
      ASSERT_NE(row, nullptr);
      ++rows_emitted;
      // The row covers the three contiguous flats of its group.
      const double first = static_cast<double>(flat - 2);
      EXPECT_DOUBLE_EQ(find_metric(*row, "x").mean, first + 1.0);
      EXPECT_DOUBLE_EQ(find_metric(*row, "x").min, first);
      EXPECT_DOUBLE_EQ(find_metric(*row, "x").max, first + 2.0);
    } else {
      EXPECT_EQ(row, nullptr);
    }
  }
  EXPECT_EQ(rows_emitted, 4u);
  EXPECT_EQ(fold.rows().size(), 4u);
}

TEST(AggregateFold, RejectsOutOfOrderAndMismatchedMetrics) {
  const CampaignAxes axes = small_axes(1, 1, 3);
  AggregateFold fold(axes);
  (void)fold.add(make_cell(axes, 0, {{"x", 1.0}}));
  // Skipping flat 1 is a delivery-contract violation, not data corruption.
  EXPECT_THROW((void)fold.add(make_cell(axes, 2, {{"x", 1.0}})),
               std::logic_error);

  AggregateFold renamed(axes);
  (void)renamed.add(make_cell(axes, 0, {{"x", 1.0}}));
  EXPECT_THROW((void)renamed.add(make_cell(axes, 1, {{"y", 1.0}})),
               std::logic_error);
}

TEST(CampaignSummary, AccessorsMatchCampaignResult) {
  const CampaignAxes axes = small_axes(2, 2, 4);
  const auto evaluate = [](const CellContext& ctx) {
    return CellMetrics{{"v", static_cast<double>(ctx.seed % 1000)}};
  };
  const CampaignResult result = CampaignRunner().run(axes, evaluate);

  FoldSink sink;
  CampaignRunner().run_with_sink(axes, evaluate, sink);
  const CampaignSummary summary = sink.take();

  ASSERT_EQ(summary.rows.size(), result.aggregates().size());
  for (std::size_t sc = 0; sc < 2; ++sc) {
    for (std::size_t st = 0; st < 2; ++st) {
      EXPECT_DOUBLE_EQ(summary.mean(sc, st, "v"), result.mean(sc, st, "v"));
      EXPECT_DOUBLE_EQ(summary.sem(sc, st, "v"), result.sem(sc, st, "v"));
      EXPECT_LE(summary.min(sc, st, "v"), summary.mean(sc, st, "v"));
      EXPECT_GE(summary.max(sc, st, "v"), summary.mean(sc, st, "v"));
    }
  }
  EXPECT_THROW((void)summary.mean(0, 0, "nope"), std::out_of_range);
  EXPECT_EQ(summary.summary_table().row_count(), 4u);
  const report::Series series = summary.metric_series(0, "v");
  ASSERT_EQ(series.x.size(), 2u);  // one point per scenario
  EXPECT_DOUBLE_EQ(series.y[0], summary.mean(0, 0, "v"));
  EXPECT_DOUBLE_EQ(series.y[1], summary.mean(1, 0, "v"));
}

/// Sink that records delivery order, for the window-boundedness tests.
class RecordingSink final : public CampaignSink {
 public:
  void on_cell(const CellResult& cell) override {
    flats.push_back(cell.context.flat);
  }
  std::vector<std::size_t> flats;
};

TEST(CampaignRunner, DeliversInAscendingFlatOrderUnderContention) {
  const CampaignAxes axes = small_axes(4, 2, 4);
  par::ThreadPool pool(8);
  CampaignOptions options;
  options.pool = &pool;
  RecordingSink sink;
  CampaignRunner(options).run_with_sink(
      axes,
      [](const CellContext& ctx) {
        // Jitter completion order: later cells finish sooner.
        if (ctx.flat % 7 == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        return CellMetrics{{"v", 1.0}};
      },
      sink);
  ASSERT_EQ(sink.flats.size(), axes.cell_count());
  for (std::size_t i = 0; i < sink.flats.size(); ++i) {
    EXPECT_EQ(sink.flats[i], i);
  }
}

TEST(CampaignRunner, ReorderWindowBoundsInFlightCells) {
  // Cell 0 blocks until released; with reorder_window = 4 the claim gate
  // must stop any cell beyond flat 3 from even *starting* while cell 0 is
  // open, no matter how many workers are idle.
  const CampaignAxes axes = small_axes(4, 2, 2);  // 16 cells
  constexpr std::size_t kWindow = 4;
  par::ThreadPool pool(8);
  CampaignOptions options;
  options.pool = &pool;
  options.reorder_window = kWindow;

  std::atomic<std::size_t> started{0};
  std::atomic<std::size_t> started_while_blocked{0};
  std::atomic<bool> released{false};
  RecordingSink sink;
  CampaignRunner(options).run_with_sink(
      axes,
      [&](const CellContext& ctx) {
        started.fetch_add(1);
        if (ctx.flat == 0) {
          // Give stragglers a chance to (incorrectly) start, then record
          // how many did.
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
          started_while_blocked.store(started.load());
          released.store(true);
        }
        return CellMetrics{{"v", static_cast<double>(ctx.flat)}};
      },
      sink);

  EXPECT_TRUE(released.load());
  EXPECT_EQ(started.load(), axes.cell_count());
  // While cell 0 (claim 0) was undelivered, only claims < window could
  // start: at most `kWindow` cells including cell 0 itself.
  EXPECT_LE(started_while_blocked.load(), kWindow);
  EXPECT_GE(started_while_blocked.load(), 1u);
  // And delivery order is still exactly flat order.
  ASSERT_EQ(sink.flats.size(), axes.cell_count());
  for (std::size_t i = 0; i < sink.flats.size(); ++i) {
    EXPECT_EQ(sink.flats[i], i);
  }
}

}  // namespace
}  // namespace gridsub::exp
