// Makespan model: order statistics of the total latency across a bag of
// tasks, chains with barriers, and Monte Carlo validation.

#include "workflow/makespan.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "model/discretized.hpp"
#include "traces/datasets.hpp"

namespace gridsub::workflow {
namespace {

const model::DiscretizedLatencyModel& test_model() {
  static const auto m = model::DiscretizedLatencyModel::from_trace(
      traces::make_trace_by_name("2006-IX"), 1.0);
  return m;
}

MakespanModel single_model(double t_inf = 596.0) {
  return MakespanModel(
      core::TotalLatencyDistribution::single(test_model(), t_inf));
}

TEST(Makespan, SingleTaskReducesToExpectedLatency) {
  const auto m = single_model();
  EXPECT_NEAR(m.expected_max_latency(1), m.distribution().expectation(),
              1e-9);
  const BagOfTasks bag{1, 1800.0};
  EXPECT_NEAR(m.estimate(bag).expectation,
              m.distribution().expectation() + 1800.0, 1e-9);
}

TEST(Makespan, ExpectedMaxIsMonotoneInBagSize) {
  const auto m = single_model();
  double prev = 0.0;
  for (const std::size_t n : {1u, 2u, 5u, 10u, 50u, 100u, 500u}) {
    const double v = m.expected_max_latency(n);
    EXPECT_GT(v, prev) << "n=" << n;
    prev = v;
  }
}

TEST(Makespan, MaxGrowsSubLinearly) {
  // Doubling the bag must add less than the one-task expectation.
  const auto m = single_model();
  const double e100 = m.expected_max_latency(100);
  const double e200 = m.expected_max_latency(200);
  EXPECT_LT(e200 - e100, m.distribution().expectation());
}

TEST(Makespan, QuantileOfMaxUsesRootTransform) {
  const auto m = single_model();
  const auto& d = m.distribution();
  const std::size_t n = 25;
  const double p = 0.9;
  const double q = m.max_latency_quantile(n, p);
  // P(max <= q) = F(q)^n must equal p.
  EXPECT_NEAR(std::pow(d.cdf(q), static_cast<double>(n)), p, 1e-6);
}

TEST(Makespan, EstimateQuantilesAreOrdered) {
  const auto m = single_model();
  const BagOfTasks bag{50, 900.0};
  const auto e = m.estimate(bag);
  EXPECT_LT(bag.runtime, e.median);
  EXPECT_LT(e.median, e.p95);
  EXPECT_LE(e.p95, e.p99);
  EXPECT_GT(e.expectation, bag.runtime);
}

TEST(Makespan, McAgreesWithQuadrature) {
  const auto m = single_model();
  const BagOfTasks bag{20, 0.0};
  const auto mc = m.simulate(bag, 20000, 7);
  const auto analytic = m.expected_max_latency(20);
  EXPECT_NEAR(mc.mean, analytic, 0.03 * analytic);
}

TEST(Makespan, McAgreesForMultipleSubmission) {
  MakespanModel m(
      core::TotalLatencyDistribution::multiple(test_model(), 3, 881.0));
  const BagOfTasks bag{64, 0.0};
  const auto mc = m.simulate(bag, 15000, 11);
  EXPECT_NEAR(mc.mean, m.expected_max_latency(64),
              0.04 * m.expected_max_latency(64));
}

TEST(Makespan, McAgreesForDelayed) {
  MakespanModel m(
      core::TotalLatencyDistribution::delayed(test_model(), 339.0, 485.0));
  const BagOfTasks bag{32, 0.0};
  const auto mc = m.simulate(bag, 15000, 13);
  EXPECT_NEAR(mc.mean, m.expected_max_latency(32),
              0.04 * m.expected_max_latency(32));
}

TEST(Makespan, MultipleSubmissionShrinksTheTailFasterThanTheMean) {
  // The headline application-level effect: at the per-job level b=5 halves
  // E_J; at the bag level (n large) the gain is driven by the tail and is
  // at least as large.
  const auto& lm = test_model();
  MakespanModel single(core::TotalLatencyDistribution::single(lm, 596.0));
  MakespanModel multi(core::TotalLatencyDistribution::multiple(lm, 5,
                                                               887.0));
  const double gain_1 = single.expected_max_latency(1) /
                        multi.expected_max_latency(1);
  const double gain_100 = single.expected_max_latency(100) /
                          multi.expected_max_latency(100);
  EXPECT_GT(gain_100, gain_1);
}

TEST(Makespan, ChainAddsStageMakespans) {
  const auto m = single_model();
  const WorkflowChain chain{{10, 600.0}, {40, 300.0}, {1, 100.0}};
  const double total = m.expected_chain_makespan(chain);
  double manual = 0.0;
  for (const auto& stage : chain) {
    manual += m.expected_max_latency(stage.n_tasks) + stage.runtime;
  }
  EXPECT_NEAR(total, manual, 1e-9);
  EXPECT_GT(total, compute_floor(chain));
}

TEST(Makespan, JobSecondsScaleLinearlyWithBagSize) {
  MakespanModel m(
      core::TotalLatencyDistribution::multiple(test_model(), 4, 881.0));
  const auto small = m.estimate({10, 120.0});
  const auto big = m.estimate({100, 120.0});
  EXPECT_NEAR(big.job_seconds, 10.0 * small.job_seconds, 1e-6);
}

TEST(Makespan, ValidatesInputs) {
  const auto m = single_model();
  EXPECT_THROW((void)m.expected_max_latency(0), std::invalid_argument);
  EXPECT_THROW((void)m.estimate({0, 10.0}), std::invalid_argument);
  EXPECT_THROW((void)m.estimate({5, -1.0}), std::invalid_argument);
  EXPECT_THROW((void)m.expected_chain_makespan({}), std::invalid_argument);
  EXPECT_THROW((void)m.simulate({5, 0.0}, 0), std::invalid_argument);
  EXPECT_THROW((void)m.max_latency_quantile(5, 1.0), std::invalid_argument);
}

TEST(Makespan, ApplicationHelpers) {
  const WorkflowChain chain{{10, 600.0}, {40, 300.0}};
  EXPECT_EQ(total_tasks(chain), 50u);
  EXPECT_DOUBLE_EQ(compute_floor(chain), 900.0);
}

class MakespanStrategySweep
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MakespanStrategySweep, MoreRedundancyNeverHurtsTheBag) {
  // Property: for any bag size, E[makespan] is non-increasing in b at a
  // fixed collection timeout.
  const std::size_t n = GetParam();
  const auto& lm = test_model();
  double prev = std::numeric_limits<double>::infinity();
  for (const int b : {1, 2, 4, 8}) {
    MakespanModel m(
        core::TotalLatencyDistribution::multiple(lm, b, 900.0));
    const double v = m.expected_max_latency(n);
    EXPECT_LE(v, prev * (1.0 + 1e-9)) << "b=" << b << " n=" << n;
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(BagSizes, MakespanStrategySweep,
                         ::testing::Values(1, 4, 16, 64, 256, 1024));

}  // namespace
}  // namespace gridsub::workflow
