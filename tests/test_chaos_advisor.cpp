// Chaos wall for the advisor stack: the full serving path — replay-feed
// ingestion, background refresher, lock-free readers behind RequestLoops,
// an in-process transport — runs under every fault class at once, and the
// robustness contracts of docs/robustness.md must hold anyway:
//
//   * no torn advice: every response's stamp recomputes (advice_stamp);
//   * bounded staleness: no kOk ready answer is older than the bound,
//     and past the bound the service degrades loudly (kDegraded, counted);
//   * exact shutdown: the reply drain terminates with no lost replies
//     beyond the ones the loop itself counted;
//   * crash-restart: dump -> warm_start -> dump is byte-identical, even
//     for a state built under chaos.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault_injector.hpp"
#include "serve/advisor.hpp"
#include "serve/replay_feed.hpp"
#include "serve/request_loop.hpp"
#include "traces/scenarios.hpp"

namespace gridsub::fault {
namespace {

using serve::Advice;
using serve::advice_stamp;
using serve::AdvisorConfig;
using serve::AdvisorKey;
using serve::AdvisorRequest;
using serve::AdvisorResponse;
using serve::AdvisorService;
using serve::InProcessTransport;
using serve::RequestLoop;
using serve::ResponseStatus;

constexpr std::uint64_t kStalenessBound = 8;

online::OnlinePlannerConfig fast_planner() {
  online::OnlinePlannerConfig c;
  c.window = 80;
  c.min_observations = 30;
  c.refit_interval = 40;
  c.model_step = 50.0;
  c.timeout = 4000.0;
  return c;
}

AdvisorConfig chaos_config() {
  AdvisorConfig c;
  c.planner = fast_planner();
  c.fallback_t_inf = 1200.0;
  c.refresh_pending = 16;
  c.staleness_bound = kStalenessBound;
  return c;
}

/// Every fault class at once — the schedule the chaos wall runs under.
FaultScheduleConfig chaos_schedule() {
  FaultScheduleConfig c;
  c.seed = 20090611;
  c.drop_request = 0.04;
  c.delay_request = 0.06;
  c.duplicate_request = 0.03;
  c.drop_reply = 0.02;
  c.transient_reply = 0.05;
  c.ingest_stall = 0.01;
  c.refresher_pause = 0.25;
  return c;
}

/// A two-hour diurnal slice (~1.4k jobs over the synthetic 24-user
/// population, ~60 observations per key): enough for every key to become
/// ready at fast_planner() settings — the same sizing the determinism
/// wall uses — while staying fast under the tsan preset.
const traces::Workload& chaos_workload() {
  static const traces::Workload w = [] {
    traces::ScenarioConfig scenario;
    scenario.duration = 7200.0;
    scenario.base_rate = 0.2;
    scenario.runtime_mean = 600.0;
    return traces::make_scenario("diurnal-week", scenario);
  }();
  return w;
}

/// The synthetic-population key universe the replay feed files jobs
/// under, reproduced through the same projection (key_for_job).
std::vector<AdvisorKey> key_universe() {
  const serve::ReplayFeedConfig feed;
  std::vector<AdvisorKey> keys;
  traces::WorkloadJob synthetic;  // user = group = -1
  for (std::size_t i = 0; i < feed.synthetic_users; ++i) {
    const AdvisorKey key = serve::key_for_job(synthetic, i, feed);
    bool seen = false;
    for (const AdvisorKey& k : keys) seen = seen || k == key;
    if (!seen) keys.push_back(key);
  }
  return keys;
}

TEST(ChaosAdvisor, ServesUntornBoundedAdviceUnderEveryFaultClass) {
  FaultInjector injector(chaos_schedule());

  AdvisorConfig config = chaos_config();
  config.refresh_fault = injector.refresher_hook();
  AdvisorService service(config);
  service.start_refresher();

  InProcessTransport inner(256);
  FaultyTransport faulty(inner, injector);
  constexpr std::size_t kLoops = 2;
  constexpr std::size_t kPosters = 2;
  constexpr std::uint64_t kRequestsPerPoster = 400;
  std::vector<std::unique_ptr<RequestLoop>> loops;
  for (std::size_t i = 0; i < kLoops; ++i) {
    loops.push_back(std::make_unique<RequestLoop>(service, faulty));
    loops.back()->start();
  }

  // Taker: verify every response inline while the race is live.
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> overstale{0};
  std::atomic<std::uint64_t> taken{0};
  std::atomic<std::uint64_t> degraded_seen{0};
  std::thread taker([&] {
    AdvisorResponse r;
    while (inner.take_reply(r)) {
      taken.fetch_add(1, std::memory_order_relaxed);
      if (r.type != AdvisorRequest::Type::kAdvise) continue;
      if (r.status == ResponseStatus::kDeadlineExceeded ||
          r.status == ResponseStatus::kInternalError) {
        continue;  // no advice payload to check
      }
      if (advice_stamp(r.advice) != r.advice.stamp) {
        torn.fetch_add(1, std::memory_order_relaxed);
      }
      if (r.status == ResponseStatus::kDegraded) {
        degraded_seen.fetch_add(1, std::memory_order_relaxed);
        if (!r.advice.degraded) torn.fetch_add(1, std::memory_order_relaxed);
      }
      if (r.status == ResponseStatus::kOk && r.advice.ready &&
          r.advice.generation - r.advice.entry_generation > kStalenessBound) {
        overstale.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  // Posters race the ingestion below; ids are partitioned per poster so
  // the injected request-fault set is a pure function of the schedule.
  const std::vector<AdvisorKey> keys = key_universe();
  std::vector<std::thread> posters;
  for (std::size_t p = 0; p < kPosters; ++p) {
    posters.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kRequestsPerPoster; ++i) {
        AdvisorRequest r;
        r.id = p * kRequestsPerPoster + i;
        if (i % 97 == 0) {
          r.type = AdvisorRequest::Type::kStats;
        } else {
          r.key = keys[(p + i) % keys.size()];
          if (i % 11 == 0) r.deadline = 2;  // some requests carry deadlines
        }
        inner.post(r);
      }
    });
  }

  // Ingest the whole workload under stalls while serving is in flight.
  serve::ReplayFeedConfig feed;
  feed.ingest_threads = 4;
  feed.fault_hook = injector.ingest_hook();
  const serve::ReplayFeedReport report =
      replay_feed(service, chaos_workload(), feed);

  for (std::thread& t : posters) t.join();
  inner.close();
  for (auto& loop : loops) loop->join();
  taker.join();
  service.stop_refresher();
  service.refresh_now();

  EXPECT_EQ(torn.load(), 0u) << "advice stamps must always recompute";
  EXPECT_EQ(overstale.load(), 0u)
      << "no kOk ready answer may exceed the staleness bound";
  EXPECT_EQ(report.jobs, chaos_workload().jobs().size());

  // Reply accounting is exact: everything posted was either answered,
  // dropped by a request/reply fault, or abandoned after retries.
  std::uint64_t served = 0;
  std::uint64_t lost = 0;
  for (const auto& loop : loops) {
    served += loop->served();
    lost += loop->lost_replies();
  }
  const std::uint64_t posted = kPosters * kRequestsPerPoster;
  const std::uint64_t dropped_requests =
      injector.count(FaultClass::kDropRequest);
  const std::uint64_t duplicated =
      injector.count(FaultClass::kDuplicateRequest);
  const std::uint64_t dropped_replies = injector.count(FaultClass::kDropReply);
  EXPECT_EQ(served + lost, posted + duplicated - dropped_requests);
  EXPECT_EQ(taken.load(), served - dropped_replies);

  // The run must actually have been chaotic to mean anything.
  EXPECT_GT(dropped_requests, 0u);
  EXPECT_GT(injector.count(FaultClass::kDelayRequest), 0u);
  EXPECT_GT(injector.count(FaultClass::kTransientReply), 0u);
  EXPECT_GT(injector.count(FaultClass::kIngestStall), 0u);
  EXPECT_GT(injector.count(FaultClass::kRefresherPause), 0u);

  // Every degraded response a client saw is on the service's books.
  const serve::AdvisorStats stats = service.stats();
  EXPECT_GT(stats.lookups, 0u);
  EXPECT_GE(stats.degraded, degraded_seen.load());

  // Crash-restart under chaos: the recovered dump is byte-identical.
  std::ostringstream before;
  service.dump_json(before);
  AdvisorService recovered(chaos_config());
  std::istringstream dump(before.str());
  recovered.warm_start(dump, "chaos-dump");
  std::ostringstream after;
  recovered.dump_json(after);
  EXPECT_EQ(before.str(), after.str());
}

// --------------------------------------------------------------------------
// Deterministic degradation: the staleness bound, exercised without races
// --------------------------------------------------------------------------

AdvisorKey key_a() { return {"vo0", "lpc", "uc0"}; }
AdvisorKey key_b() { return {"vo1", "nikhef", "uc1"}; }

/// Ingests enough observations for `key` to be ready at fast_planner()
/// settings.
void make_ready(AdvisorService& service, const AdvisorKey& key) {
  for (int i = 0; i < 40; ++i) {
    service.ingest(key, 500.0 + 10.0 * static_cast<double>(i % 7));
  }
}

TEST(ChaosAdvisor, StalenessBoundDegradesLoudlyAndDeterministically) {
  AdvisorService service(chaos_config());
  make_ready(service, key_a());
  ASSERT_EQ(service.refresh_now(), 1u);

  AdvisorService::Reader reader(service);
  const Advice fresh = reader.advise(key_a());
  ASSERT_TRUE(fresh.ready);
  EXPECT_FALSE(fresh.degraded);
  EXPECT_EQ(fresh.entry_generation, 1u);

  // Age key A past the bound: each round dirties only key B, so every
  // refresh advances the generation while A's entry stays at 1.
  for (std::uint64_t g = 2; g <= 1 + kStalenessBound; ++g) {
    service.ingest(key_b(), 700.0);
    ASSERT_EQ(service.refresh_now(), g);
    const Advice a = reader.advise(key_a());
    EXPECT_TRUE(a.ready);
    EXPECT_FALSE(a.degraded) << "within the bound at generation " << g;
  }

  // One more generation tips A over the bound: degraded fallback, loudly.
  service.ingest(key_b(), 700.0);
  ASSERT_EQ(service.refresh_now(), 2 + kStalenessBound);
  const Advice stale = reader.advise(key_a());
  EXPECT_TRUE(stale.degraded);
  EXPECT_FALSE(stale.ready);  // the documented fallback, not fitted state
  EXPECT_DOUBLE_EQ(stale.t_inf, chaos_config().fallback_t_inf);
  EXPECT_EQ(advice_stamp(stale), stale.stamp);

  // Key B was just rebuilt: still served fresh.
  const Advice b = reader.advise(key_b());
  EXPECT_FALSE(b.degraded);

  const serve::AdvisorStats stats = service.stats();
  EXPECT_EQ(stats.degraded, 1u);
  EXPECT_GE(stats.lookups, 4u);

  // health() agrees: A is the stalest entry, and the degraded rate counts
  // the one degraded lookup.
  const serve::AdvisorHealth health = service.health();
  EXPECT_EQ(health.generation, 2 + kStalenessBound);
  EXPECT_EQ(health.max_entry_age, 1 + kStalenessBound);
  EXPECT_EQ(health.backlog, 0u);
  EXPECT_EQ(health.degraded, 1u);
  EXPECT_GT(health.degraded_rate, 0.0);
}

TEST(ChaosAdvisor, RequestLoopSurfacesDegradationInTheTaxonomy) {
  AdvisorService service(chaos_config());
  make_ready(service, key_a());
  service.refresh_now();
  for (std::uint64_t g = 0; g < 1 + kStalenessBound; ++g) {
    service.ingest(key_b(), 700.0);
    service.refresh_now();
  }

  InProcessTransport transport(8);
  RequestLoop loop(service, transport);
  loop.start();
  AdvisorRequest req;
  req.id = 1;
  req.key = key_a();
  transport.post(req);
  transport.close();
  AdvisorResponse resp;
  ASSERT_TRUE(transport.take_reply(resp));
  loop.join();

  EXPECT_EQ(resp.status, ResponseStatus::kDegraded);
  EXPECT_TRUE(resp.advice.degraded);
  EXPECT_EQ(loop.degraded(), 1u);
}

// --------------------------------------------------------------------------
// Crash-restart recovery
// --------------------------------------------------------------------------

std::string dump_of(const AdvisorService& service) {
  std::ostringstream os;
  service.dump_json(os);
  return os.str();
}

/// A service with replayed state and a final published snapshot.
void build_state(AdvisorService& service) {
  serve::ReplayFeedConfig feed;
  feed.ingest_threads = 2;
  (void)replay_feed(service, chaos_workload(), feed);
  service.refresh_now();
}

TEST(ChaosAdvisor, WarmStartRoundTripsByteIdentically) {
  AdvisorService crashed(chaos_config());
  build_state(crashed);
  const std::string before = dump_of(crashed);
  ASSERT_NE(before.find("\"ready\": true"), std::string::npos);

  AdvisorService restarted(chaos_config());
  std::istringstream dump(before);
  restarted.warm_start(dump, "test-dump");
  EXPECT_EQ(dump_of(restarted), before);

  // Recovered advice is served, stamped, and marked ready.
  AdvisorService::Reader reader(restarted);
  const Advice a = reader.advise(key_a());
  EXPECT_TRUE(a.ready);
  EXPECT_EQ(advice_stamp(a), a.stamp);
  EXPECT_EQ(a.generation, 1u);

  // A second round-trip is a fixpoint.
  AdvisorService again(chaos_config());
  std::istringstream dump2(dump_of(restarted));
  again.warm_start(dump2, "second-dump");
  EXPECT_EQ(dump_of(again), before);
}

TEST(ChaosAdvisor, SnapshotFileRoundTripMatchesInMemoryDump) {
  const auto dir =
      std::filesystem::temp_directory_path() / "gridsub_test_chaos";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "advisor.snapshot.json").string();
  std::filesystem::remove(path);

  AdvisorService crashed(chaos_config());
  build_state(crashed);
  crashed.save_snapshot_file(path);

  AdvisorService restarted(chaos_config());
  restarted.warm_start_file(path);
  EXPECT_EQ(dump_of(restarted), dump_of(crashed));
}

TEST(ChaosAdvisor, WarmStartRejectsTruncatedDumps) {
  AdvisorService source(chaos_config());
  build_state(source);
  const std::string full = dump_of(source);

  AdvisorService fresh(chaos_config());
  std::istringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(fresh.warm_start(truncated, "truncated"), serve::RecoveryError);
}

TEST(ChaosAdvisor, WarmStartRejectsMismatchedFallback) {
  AdvisorService source(chaos_config());
  build_state(source);
  const std::string full = dump_of(source);

  AdvisorConfig other = chaos_config();
  other.fallback_t_inf = 999.0;  // disagrees with the dump's fallback
  AdvisorService fresh(other);
  std::istringstream dump(full);
  EXPECT_THROW(fresh.warm_start(dump, "mismatched"), serve::RecoveryError);
}

TEST(ChaosAdvisor, WarmStartRejectsNonVirginServices) {
  AdvisorService source(chaos_config());
  build_state(source);
  const std::string full = dump_of(source);

  AdvisorService used(chaos_config());
  used.ingest(key_a(), 500.0);  // any prior state disqualifies recovery
  std::istringstream dump(full);
  EXPECT_THROW(used.warm_start(dump, "non-virgin"), serve::RecoveryError);
}

}  // namespace
}  // namespace gridsub::fault
