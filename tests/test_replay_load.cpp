#include "sim/replay_load.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "sim/grid.hpp"
#include "traces/scenarios.hpp"

namespace gridsub::sim {
namespace {

GridConfig small_grid_config(std::uint64_t seed = 99) {
  GridConfig config;
  config.elements = {{8, 0.0}, {8, 0.0}};
  config.background.arrival_rate = 0.0;  // replay provides all load
  config.wms.fault_prob = 0.0;
  config.seed = seed;
  return config;
}

traces::Workload even_workload(std::size_t n = 10, double gap = 100.0) {
  traces::Workload w("even");
  for (std::size_t i = 0; i < n; ++i) {
    w.add_job(static_cast<double>(i) * gap, 1.0);
  }
  return w;
}

TEST(ReplayLoad, EmitsEveryJobExactlyOnce) {
  GridSimulation grid(small_grid_config());
  auto& replay = grid.attach_replay(even_workload());
  grid.simulator().run();
  EXPECT_EQ(replay.emitted(), 10u);
  EXPECT_EQ(replay.consumed(), 10u);
  EXPECT_TRUE(replay.exhausted());
  EXPECT_EQ(grid.metrics().jobs_submitted, 10u);
}

TEST(ReplayLoad, DeterministicUnderFixedSeed) {
  traces::ScenarioConfig scen;
  scen.base_rate = 0.02;
  scen.duration = 20000.0;
  scen.seed = 5;
  const auto workload = traces::make_scenario("burst-week", scen);

  auto run_once = [&]() {
    GridSimulation grid(small_grid_config(123));
    ReplayLoadConfig config;
    config.load_multiplier = 1.5;  // exercises the RNG path too
    auto& replay = grid.attach_replay(workload, config);
    grid.simulator().run_until(scen.duration);
    return std::tuple{replay.emitted(), grid.metrics().jobs_submitted,
                      grid.metrics().jobs_started,
                      grid.simulator().processed_events()};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
}

TEST(ReplayLoad, TimeScaleCompressesTheTimeline) {
  // Jobs at 0,100,...,900. At time_scale 2 every arrival lands by t=450.
  GridSimulation fast_grid(small_grid_config());
  ReplayLoadConfig fast;
  fast.time_scale = 2.0;
  auto& fast_replay = fast_grid.attach_replay(even_workload(), fast);
  fast_grid.simulator().run_until(460.0);
  EXPECT_EQ(fast_replay.emitted(), 10u);

  GridSimulation slow_grid(small_grid_config());
  auto& slow_replay = slow_grid.attach_replay(even_workload());
  slow_grid.simulator().run_until(460.0);
  EXPECT_EQ(slow_replay.emitted(), 5u);
}

TEST(ReplayLoad, LoadMultiplierScalesSubmissions) {
  GridSimulation doubled(small_grid_config());
  ReplayLoadConfig x2;
  x2.load_multiplier = 2.0;
  auto& r2 = doubled.attach_replay(even_workload(), x2);
  doubled.simulator().run();
  EXPECT_EQ(r2.emitted(), 20u);
  EXPECT_EQ(r2.consumed(), 10u);

  GridSimulation fractional(small_grid_config());
  ReplayLoadConfig x15;
  x15.load_multiplier = 1.5;
  auto& r15 = fractional.attach_replay(even_workload(100), x15);
  fractional.simulator().run();
  EXPECT_GT(r15.emitted(), 100u);
  EXPECT_LT(r15.emitted(), 200u);

  GridSimulation silent(small_grid_config());
  ReplayLoadConfig x0;
  x0.load_multiplier = 0.0;
  auto& r0 = silent.attach_replay(even_workload(), x0);
  silent.simulator().run();
  EXPECT_EQ(r0.emitted(), 0u);
  EXPECT_EQ(r0.consumed(), 10u);
}

TEST(ReplayLoad, LoopRestartsFromTheTop) {
  GridSimulation grid(small_grid_config());
  ReplayLoadConfig config;
  config.loop = true;
  auto& replay = grid.attach_replay(even_workload(), config);
  // Each pass spans 900 s + a 90 s seam; 3 passes fit in 3100 s.
  grid.simulator().run_until(3100.0);
  EXPECT_GT(replay.consumed(), 20u);
  EXPECT_FALSE(replay.exhausted());
  replay.stop();
}

TEST(ReplayLoad, LoopingDegenerateWorkloadStillAdvancesTime) {
  // Every arrival at t=0 (duration 0): looping must not reschedule forever
  // at one sim instant — run_until would otherwise never return.
  traces::Workload w("instant");
  w.add_job(0.0, 1.0);
  GridSimulation grid(small_grid_config());
  ReplayLoadConfig config;
  config.loop = true;
  auto& replay = grid.attach_replay(w, config);
  grid.simulator().run_until(10.5);
  EXPECT_EQ(replay.consumed(), 11u);  // one per 1 s seam, t=0..10
  replay.stop();
}

TEST(ReplayLoad, StopHaltsEmission) {
  GridSimulation grid(small_grid_config());
  auto& replay = grid.attach_replay(even_workload());
  grid.simulator().run_until(250.0);
  const auto before = replay.emitted();
  EXPECT_EQ(before, 3u);
  replay.stop();
  grid.simulator().run();
  EXPECT_EQ(replay.emitted(), before);
  EXPECT_FALSE(replay.exhausted());
}

TEST(ReplayLoad, RejectsBadConfig) {
  GridSimulation grid(small_grid_config());
  ReplayLoadConfig bad_scale;
  bad_scale.time_scale = 0.0;
  EXPECT_THROW(grid.attach_replay(even_workload(), bad_scale),
               std::invalid_argument);
  ReplayLoadConfig bad_mult;
  bad_mult.load_multiplier = -1.0;
  EXPECT_THROW(grid.attach_replay(even_workload(), bad_mult),
               std::invalid_argument);
  EXPECT_THROW(grid.attach_replay(traces::Workload("empty")),
               std::invalid_argument);
}

TEST(ReplayLoad, UnsortedWorkloadIsReplayedInTimeOrder) {
  traces::Workload w("shuffled");
  w.add_job(500.0, 1.0);
  w.add_job(0.0, 1.0);
  w.add_job(250.0, 1.0);
  GridSimulation grid(small_grid_config());
  auto& replay = grid.attach_replay(w);
  grid.simulator().run_until(300.0);
  EXPECT_EQ(replay.emitted(), 2u);
  grid.simulator().run();
  EXPECT_EQ(replay.emitted(), 3u);
}

// The stationary Poisson source shares the bug class the replay subsystem
// was audited against: runtime_mean <= 0 used to silently poison the
// log-normal's mu with log(<=0) instead of failing fast.
TEST(BackgroundLoadValidation, RejectsNonPositiveRuntimeMean) {
  auto config = small_grid_config();
  config.background.arrival_rate = 0.1;
  config.background.runtime_mean = 0.0;
  EXPECT_THROW(GridSimulation{config}, std::invalid_argument);
  config.background.runtime_mean = -5.0;
  EXPECT_THROW(GridSimulation{config}, std::invalid_argument);
}

TEST(BackgroundLoadValidation, RejectsNegativeSigmaLog) {
  auto config = small_grid_config();
  config.background.runtime_sigma_log = -0.1;
  EXPECT_THROW(GridSimulation{config}, std::invalid_argument);
}

TEST(BackgroundLoadValidation, AcceptsZeroSigmaLog) {
  // sigma_log == 0 means deterministic runtimes; the log-normal factory
  // floors it instead of crashing in the LogNormal constructor.
  auto config = small_grid_config();
  config.background.arrival_rate = 0.5;
  config.background.runtime_mean = 100.0;
  config.background.runtime_sigma_log = 0.0;
  GridSimulation grid(config);
  grid.warm_up(50.0);
  EXPECT_GT(grid.background().emitted(), 0u);
}

}  // namespace
}  // namespace gridsub::sim
