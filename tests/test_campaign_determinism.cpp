// The campaign engine's headline guarantee, proven on real simulation
// cells: the same ExperimentSpec + root seed produces byte-identical
// CampaignResult JSON at 1, 2, and 8 worker threads. This is what lets
// every scaling PR shard campaigns harder without re-validating results.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "exp/experiment.hpp"
#include "traces/scenarios.hpp"

namespace gridsub::exp {
namespace {

sim::GridConfig tiny_grid() {
  sim::GridConfig config;
  config.elements = {{8, 0.01}, {8, 0.02}};
  config.background.arrival_rate = 0.0;
  return config;
}

ExperimentSpec small_spec() {
  ExperimentSpec spec;
  spec.name = "determinism";
  spec.root_seed = 777;
  spec.replications = 3;
  spec.clients.tasks_per_client = 5;
  spec.clients.warm_up = 500.0;

  traces::ScenarioConfig scen;
  scen.base_rate = 0.02;
  scen.duration = 20000.0;
  scen.seed = 5;
  {
    ScenarioCase sc;
    sc.label = "burst";
    sc.grid = tiny_grid();
    sc.workload = std::make_shared<const traces::Workload>(
        traces::make_scenario("burst-week", scen));
    spec.scenarios.push_back(std::move(sc));
  }
  {
    // A workload-less scenario exercises the Poisson-background path.
    ScenarioCase sc;
    sc.label = "poisson";
    sc.grid = tiny_grid();
    sc.grid.background.arrival_rate = 0.02;
    spec.scenarios.push_back(std::move(sc));
  }
  spec.clients.horizon = 20000.0;

  {
    sim::StrategySpec s;
    s.kind = core::StrategyKind::kSingleResubmission;
    s.t_inf = 800.0;
    spec.strategies.push_back({"single", s});
  }
  {
    sim::StrategySpec s;
    s.kind = core::StrategyKind::kMultipleSubmission;
    s.b = 2;
    s.t_inf = 800.0;
    spec.strategies.push_back({"multiple", s});
  }
  return spec;
}

std::string run_at(const ExperimentSpec& spec, std::size_t threads) {
  par::ThreadPool pool(threads);
  CampaignOptions options;
  options.pool = &pool;
  return run_experiment(spec, options).to_json();
}

TEST(CampaignDeterminism, ByteIdenticalJsonAt1And2And8Threads) {
  const ExperimentSpec spec = small_spec();
  const std::string at1 = run_at(spec, 1);
  const std::string at2 = run_at(spec, 2);
  const std::string at8 = run_at(spec, 8);
  EXPECT_EQ(at1, at2);
  EXPECT_EQ(at1, at8);
  // And re-running the whole campaign reproduces the bytes too.
  EXPECT_EQ(at1, run_at(spec, 8));
}

TEST(CampaignDeterminism, DifferentRootSeedChangesResults) {
  ExperimentSpec spec = small_spec();
  const std::string a = run_at(spec, 2);
  spec.root_seed = 778;
  EXPECT_NE(a, run_at(spec, 2));
}

TEST(RunStrategyCell, EmitsTheStandardMetricSet) {
  const ExperimentSpec spec = small_spec();
  const CellMetrics metrics = run_strategy_cell(
      spec.scenarios[0], spec.strategies[0].spec, spec.clients, 12345);
  ASSERT_EQ(metrics.size(), 7u);
  EXPECT_EQ(metrics[0].first, "tasks_done");
  EXPECT_EQ(metrics[1].first, "mean_J");
  EXPECT_LE(metrics[0].second,
            static_cast<double>(spec.clients.tasks_per_client));
  EXPECT_GT(metrics[0].second, 0.0);
  EXPECT_GT(metrics[1].second, 0.0);
}

TEST(ExperimentSpec, ValidatesClientAndScenarioKnobs) {
  ExperimentSpec spec = small_spec();
  spec.clients.horizon = 0.0;  // poisson scenario now has no horizon
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = small_spec();
  spec.strategies.clear();
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = small_spec();
  spec.clients.clients_per_cell = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = small_spec();
  spec.scenarios[0].workload =
      std::make_shared<const traces::Workload>(traces::Workload("empty"));
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace gridsub::exp
